# Repo verification pipeline. `make check` is the full gate every
# change must pass; the individual targets exist for quick iteration.

GO ?= go

.PHONY: check vet build test race

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive layers run under the race detector:
# the distributed evaluation substrate (pooled client, breakers,
# chaos failover), the serialized-evaluation core, the shared-Disk
# pager, and the metrics/tracing subsystem. CI additionally runs
# `go test -race ./...` over the whole module.
race:
	$(GO) test -race ./internal/dirserver/ ./internal/faultnet/ ./internal/core/ ./internal/pager/ ./internal/obs/
