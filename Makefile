# Repo verification pipeline. `make check` is the full gate every
# change must pass; the individual targets exist for quick iteration.

GO ?= go

.PHONY: check vet build test race docs

check: vet build test race docs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive layers run under the race detector:
# the distributed evaluation substrate (pooled client, breakers,
# chaos failover), the serialized-evaluation core, the shared-Disk
# pager, the parallel engine and external sorter, and the
# metrics/tracing subsystem. CI additionally runs
# `go test -race ./...` over the whole module.
race:
	$(GO) test -race ./internal/dirserver/ ./internal/faultnet/ ./internal/core/ ./internal/pager/ ./internal/obs/ ./internal/engine/ ./internal/extsort/

# Documentation gate: intra-repo markdown links must resolve, and the
# packages docslint lists must document every exported identifier.
docs:
	$(GO) run ./tools/docslint
