# Repo verification pipeline. `make check` is the full gate every
# change must pass; the individual targets exist for quick iteration.

GO ?= go

.PHONY: check vet build test race fuzz docs

check: vet build test race docs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive layers run under the race detector:
# the distributed evaluation substrate (pooled client, breakers,
# chaos failover), the snapshot-swap core (lock-free reads during
# copy-on-write updates, internal/core/swap_test.go), the shared-Disk
# pager and per-query arenas, the parallel engine and external sorter,
# and the metrics/tracing subsystem. CI additionally runs
# `go test -race ./...` over the whole module.
race:
	$(GO) test -race ./internal/dirserver/ ./internal/faultnet/ ./internal/core/ ./internal/pager/ ./internal/obs/ ./internal/engine/ ./internal/extsort/

# Short-budget fuzzing of the parser/matcher surfaces that each carry a
# differential oracle: the wildcard matcher vs a reference matcher and
# a regexp, the filter parser's print/parse fixpoint, and the query
# canonicalizer's cache-key invariance. CI runs this on every push;
# longer local runs just raise FUZZTIME.
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./internal/filter/ -run=^$$ -fuzz=FuzzWildcardMatch -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/filter/ -run=^$$ -fuzz=FuzzParseFilter -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/query/ -run=^$$ -fuzz=FuzzCanonical -fuzztime=$(FUZZTIME)

# Documentation gate: intra-repo markdown links must resolve, and the
# packages docslint lists must document every exported identifier.
docs:
	$(GO) run ./tools/docslint
