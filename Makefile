# Repo verification pipeline. `make check` is the full gate every
# change must pass; the individual targets exist for quick iteration.

GO ?= go

.PHONY: check vet build test race fuzz docs crash bench-smoke obs-smoke plan-smoke

check: vet build test race docs bench-smoke plan-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive layers run under the race detector:
# the distributed evaluation substrate (pooled client, breakers,
# chaos failover), the snapshot-swap core (lock-free reads during
# copy-on-write updates, internal/core/swap_test.go), the shared-Disk
# pager and per-query arenas, the parallel engine and external sorter,
# the durable checkpoint store (checkpoint-during-swap chaos), the
# metrics/tracing subsystem, the query-statistics store (concurrent
# folds from traced evaluations), and the vector index plus its
# store-level knn paths (concurrent searches against copy-on-write
# swaps). The dirserver package includes the cross-process trace-merge
# chaos tests (trace_chaos_test.go), so the merged-tree conservation
# invariant runs under the race detector here. The copy-on-write B-tree
# (concurrent readers of a shared immutable tree during fork mutation)
# rides along. CI additionally runs `go test -race ./...` over the
# whole module.
race:
	$(GO) test -race ./internal/dirserver/ ./internal/faultnet/ ./internal/core/ ./internal/pager/ ./internal/obs/ ./internal/engine/ ./internal/extsort/ ./internal/durable/ ./internal/faultfs/ ./internal/vindex/ ./internal/store/ ./internal/qstats/ ./internal/planner/ ./internal/cowtree/

# Short-budget fuzzing of the parser/matcher surfaces that each carry a
# differential oracle: the wildcard matcher vs a reference matcher and
# a regexp, the filter parser's print/parse fixpoint, the query
# canonicalizer's cache-key invariance, the durable-store decode
# paths (checksum envelopes, the manifest, and the full snapshot open
# path must never panic or overallocate on hostile bytes), and the
# LDIF binary-vector round trip (base64 wire form and textual form
# must both be bit-lossless). CI runs this on every push; longer local
# runs just raise FUZZTIME.
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./internal/filter/ -run=^$$ -fuzz=FuzzWildcardMatch -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/filter/ -run=^$$ -fuzz=FuzzParseFilter -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/query/ -run=^$$ -fuzz=FuzzCanonical -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/durable/ -run=^$$ -fuzz=FuzzOpenEnvelope -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/durable/ -run=^$$ -fuzz=FuzzManifest -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core/ -run=^$$ -fuzz=FuzzOpenSnapshot -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/cowtree/ -run=^$$ -fuzz=FuzzNodeRoundTrip -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/ldif/ -run=^$$ -fuzz=FuzzVectorRoundTrip -fuzztime=$(FUZZTIME)

# The kill -9 soak: a child dirserve under a live write stream is
# SIGKILLed at random points and must recover to at least the last
# durably acknowledged generation, answering queries byte-identically
# to a reference reconstruction. Rounds cycle through full-image and
# incremental page-delta checkpointing, with and without storage fault
# injection, so recovery routinely replays mixed full/delta segment
# histories. CRASH_ITERS crash cycles per run.
CRASH_ITERS ?= 30
crash:
	DIRKIT_CRASH_ITERS=$(CRASH_ITERS) $(GO) test ./internal/durable/crashtest/ -count=1 -v

# Documentation gate: intra-repo markdown links must resolve, and the
# packages docslint lists must document every exported identifier.
docs:
	$(GO) run ./tools/docslint

# Benchmark smoke: the scoped-knn experiment runs end to end at the
# quick preset. E22 self-checks — scoped recall != 1.0 against the
# brute-force oracle panics the run — so this doubles as an exactness
# gate on the vector index.
bench-smoke:
	$(GO) run ./cmd/dirbench -quick -only E22 >/dev/null
	$(GO) run ./cmd/dirbench -quick -only E23 >/dev/null

# Planner smoke: EXPLAIN under the adaptive planner must print the
# costed rejected-alternatives block on the E15 crossover workload
# (the PR-9 acceptance criterion, checked end to end through the CLI).
plan-smoke:
	$(GO) run ./cmd/dirq -gen tops -n 400 -adaptive -explain -quiet -q '(dc=com ? sub ? priority<=1)' | grep 'alternatives (rejected' >/dev/null

# Observability smoke: boot a real dirserve child with the flight
# recorder and admin listener on, run 50 traced queries against it,
# and assert the flight recorder, /metrics, and the slow-query log all
# agree on what happened (counts, trace IDs, span trees).
obs-smoke:
	$(GO) run ./tools/obssmoke
