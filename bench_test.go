package repro

// One benchmark per experiment of DESIGN.md (E1–E16, A1–A3), each
// regenerating its EXPERIMENTS.md table at reduced scale, plus
// fine-grained operator benchmarks for the individual algorithms of the
// paper's figures. Run with:
//
//	go test -bench=. -benchmem
//
// cmd/dirbench prints the full-scale tables.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plist"
	"repro/internal/query"
	"repro/internal/workload"
)

// tiny is the benchmark-sized preset: one size point per experiment.
var tiny = bench.Preset{
	Linear:   []int{1500},
	Super:    []int{1000},
	Cross:    []int{300},
	AcSizes:  []int{1000},
	Dist:     []int{10},
	IndexN:   200,
	AppScale: 40,
	StackN:   120,
	CacheN:   800,
	CacheOps: 200,
}

func runSpec(b *testing.B, id string) {
	b.Helper()
	for _, s := range bench.Specs {
		if s.ID != id {
			continue
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := s.Run(tiny)
			if len(t.Rows) == 0 {
				b.Fatalf("%s produced no rows", id)
			}
		}
		return
	}
	b.Fatalf("no experiment %q", id)
}

func BenchmarkE1BooleanMerge(b *testing.B)  { runSpec(b, "E1") }
func BenchmarkE2HSPC(b *testing.B)          { runSpec(b, "E2") }
func BenchmarkE3HSAD(b *testing.B)          { runSpec(b, "E3") }
func BenchmarkE4HSADc(b *testing.B)         { runSpec(b, "E4") }
func BenchmarkE5SimpleAgg(b *testing.B)     { runSpec(b, "E5") }
func BenchmarkE6HSAgg(b *testing.B)         { runSpec(b, "E6") }
func BenchmarkE7ERDV(b *testing.B)          { runSpec(b, "E7") }
func BenchmarkE8PipelineL2(b *testing.B)    { runSpec(b, "E8") }
func BenchmarkE9PipelineL3(b *testing.B)    { runSpec(b, "E9") }
func BenchmarkE10NaiveVsStack(b *testing.B) { runSpec(b, "E10") }
func BenchmarkE11Hierarchy(b *testing.B)    { runSpec(b, "E11") }
func BenchmarkE12AcEncodesP(b *testing.B)   { runSpec(b, "E12") }
func BenchmarkE14Distributed(b *testing.B)  { runSpec(b, "E14") }
func BenchmarkE15AtomicIndex(b *testing.B)  { runSpec(b, "E15") }
func BenchmarkE16Apps(b *testing.B)         { runSpec(b, "E16") }
func BenchmarkE17Operators(b *testing.B)    { runSpec(b, "E17") }
func BenchmarkE18CacheZipf(b *testing.B)    { runSpec(b, "E18") }
func BenchmarkE19Parallel(b *testing.B)     { runSpec(b, "E19") }

func BenchmarkAblationStackWindow(b *testing.B) { runSpec(b, "A1") }
func BenchmarkAblationBlockSize(b *testing.B)   { runSpec(b, "A2") }
func BenchmarkAblationResort(b *testing.B)      { runSpec(b, "A3") }
func BenchmarkAblationPlanner(b *testing.B)     { runSpec(b, "A4") }

// ---- fine-grained operator benchmarks -------------------------------

type opEnv struct {
	dir *core.Directory
	eng *engine.Engine
	ls  []*plist.List
}

func newOpEnv(b *testing.B, atoms ...string) *opEnv {
	b.Helper()
	in := workload.RandomForest(workload.ForestConfig{N: 3000, Seed: 99})
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	env := &opEnv{dir: dir, eng: dir.Engine()}
	for _, a := range atoms {
		l, err := dir.Engine().Store().Eval(query.MustParse(a).(*query.Atomic))
		if err != nil {
			b.Fatal(err)
		}
		env.ls = append(env.ls, l)
	}
	return env
}

func (e *opEnv) run(b *testing.B, fn func() (*plist.List, error)) {
	b.Helper()
	before := e.dir.Disk().Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if err := out.Free(); err != nil {
			b.Fatal(err)
		}
	}
	io := e.dir.Disk().Stats().Sub(before).IO()
	b.ReportMetric(float64(io)/float64(b.N), "pageIO/op")
}

func BenchmarkOpBooleanAnd(b *testing.B) {
	e := newOpEnv(b, "( ? sub ? tag=a)", "( ? sub ? val<4)")
	e.run(b, func() (*plist.List, error) { return e.eng.EvalBool(query.OpAnd, e.ls[0], e.ls[1]) })
}

func BenchmarkOpHSPCChildren(b *testing.B) {
	e := newOpEnv(b, "( ? sub ? tag=a)", "( ? sub ? tag=b)")
	e.run(b, func() (*plist.List, error) { return e.eng.ComputeHSPC(query.OpChildren, e.ls[0], e.ls[1]) })
}

func BenchmarkOpHSADAncestors(b *testing.B) {
	e := newOpEnv(b, "( ? sub ? tag=a)", "( ? sub ? tag=b)")
	e.run(b, func() (*plist.List, error) { return e.eng.ComputeHSAD(query.OpAncestors, e.ls[0], e.ls[1]) })
}

func BenchmarkOpHSADcDescendants(b *testing.B) {
	e := newOpEnv(b, "( ? sub ? tag=a)", "( ? sub ? tag=b)", "( ? sub ? tag=c)")
	e.run(b, func() (*plist.List, error) {
		return e.eng.ComputeHSADc(query.OpDescendantsC, e.ls[0], e.ls[1], e.ls[2])
	})
}

func BenchmarkOpHSAggMaxCount(b *testing.B) {
	e := newOpEnv(b, "( ? sub ? tag=a)", "( ? sub ? tag=b)")
	sel, err := query.ParseAggSel("count($2) = max(count($2))")
	if err != nil {
		b.Fatal(err)
	}
	e.run(b, func() (*plist.List, error) {
		return e.eng.ComputeHSAgg(query.OpDescendants, e.ls[0], e.ls[1], nil, sel)
	})
}

func BenchmarkOpSimpleAgg(b *testing.B) {
	e := newOpEnv(b, "( ? sub ? objectClass=node)")
	sel, err := query.ParseAggSel("count(val) > 1")
	if err != nil {
		b.Fatal(err)
	}
	e.run(b, func() (*plist.List, error) { return e.eng.EvalSimpleAgg(e.ls[0], sel) })
}

func BenchmarkOpERDV(b *testing.B) {
	e := newOpEnv(b, "( ? sub ? tag=a)", "( ? sub ? tag=b)")
	e.run(b, func() (*plist.List, error) {
		return e.eng.ComputeERAggDV(e.ls[0], e.ls[1], "ref", nil)
	})
}

func BenchmarkOpERVD(b *testing.B) {
	e := newOpEnv(b, "( ? sub ? tag=a)", "( ? sub ? tag=b)")
	e.run(b, func() (*plist.List, error) {
		return e.eng.ComputeERAggVD(e.ls[0], e.ls[1], "ref", nil)
	})
}

func BenchmarkOpNaiveHier(b *testing.B) {
	in := workload.RandomForest(workload.ForestConfig{N: 400, Seed: 99})
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := &opEnv{dir: dir, eng: dir.Engine()}
	for _, a := range []string{"( ? sub ? tag=a)", "( ? sub ? tag=b)"} {
		l, err := dir.Engine().Store().Eval(query.MustParse(a).(*query.Atomic))
		if err != nil {
			b.Fatal(err)
		}
		e.ls = append(e.ls, l)
	}
	e.run(b, func() (*plist.List, error) {
		return e.eng.NaiveHier(query.OpAncestors, e.ls[0], e.ls[1], nil, nil)
	})
}

func BenchmarkFullQueryL2(b *testing.B) {
	in := workload.GenTOPS(workload.TOPSConfig{Subscribers: 300, Seed: 99})
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	q := query.MustParse(`(c (dc=com ? sub ? objectClass=TOPSSubscriber)
	                         (dc=com ? sub ? objectClass=QHP)
	                         count($2) >= 3)`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := dir.Engine().Eval(q)
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Free(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullQueryL3(b *testing.B) {
	in := workload.GenQoS(workload.QoSConfig{Domains: 2, PoliciesPerDomain: 100, Seed: 99})
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	q := query.MustParse(`(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
	                          (dc=att, dc=com ? sub ? objectClass=trafficProfile)
	                          SLATPRef
	                          count($2) >= 1)`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := dir.Engine().Eval(q)
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Free(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAtomicIndexedEval(b *testing.B) {
	in := workload.GenTOPS(workload.TOPSConfig{Subscribers: 500, Seed: 99})
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	q := query.MustParse("(dc=com ? sub ? surName=jagadish)").(*query.Atomic)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := dir.Engine().Store().Eval(q)
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Free(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseQuery(b *testing.B) {
	text := `(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)
	            (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
	                   (& (dc=att, dc=com ? sub ? sourcePort=25)
	                      (dc=att, dc=com ? sub ? objectClass=trafficProfile))
	                   SLATPRef)
	               min(SLARulePriority)=min(min(SLARulePriority)))
	            SLADSActRef)`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}
