// Command docslint is the documentation gate wired into `make docs`
// and the CI docs job. It fails (exit 1, one line per finding) when
//
//   - a markdown file in the repository links to a repository-relative
//     target that does not exist (broken intra-repo links are how
//     ARCHITECTURE.md, DESIGN.md and README.md drift apart), or
//   - an exported identifier in the packages listed in docPackages is
//     missing its doc comment (go doc output is documentation too).
//
// External links (http/https/mailto) and pure #anchor links are not
// checked — this tool runs offline and anchors vary by renderer.
//
// Usage: go run ./tools/docslint [repo root]   (default ".")
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// docPackages are the directories whose exported identifiers must all
// carry doc comments.
var docPackages = []string{
	"internal/obs",
	"internal/engine",
	"internal/vindex",
	"internal/qstats",
	"internal/planner",
	"internal/store",
	"internal/cowtree",
}

// skipDirs are never scanned for markdown.
var skipDirs = map[string]bool{".git": true, "node_modules": true}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkMarkdownLinks(root)...)
	for _, pkg := range docPackages {
		problems = append(problems, checkDocComments(root, pkg)...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docslint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docslint: ok")
}

// linkRe matches inline markdown links [text](target). Images and
// reference-style links are out of scope for this repository.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies every repository-relative link target in
// every tracked markdown file resolves to an existing file or
// directory.
func checkMarkdownLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				// Strip any #anchor; the file half must exist.
				if j := strings.IndexByte(target, '#'); j >= 0 {
					target = target[:j]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems,
						fmt.Sprintf("%s:%d: broken link %q", path, i+1, m[1]))
				}
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("docslint: walking %s: %v", root, err))
	}
	return problems
}

// checkDocComments parses one package directory (tests excluded) and
// reports every exported type, function, method, const and var that
// lacks a doc comment. Grouped const/var blocks count as documented
// when the block carries a doc comment.
func checkDocComments(root, pkg string) []string {
	dir := filepath.Join(root, filepath.FromSlash(pkg))
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("docslint: parsing %s: %v", dir, err)}
	}
	var problems []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		problems = append(problems,
			fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && !isExportedMethodOfUnexported(d) {
						what := "function"
						if d.Recv != nil {
							what = "method"
						}
						report(d.Pos(), what, d.Name.Name)
					}
				case *ast.GenDecl:
					blockDocumented := d.Doc != nil
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil && !blockDocumented {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							if blockDocumented || s.Doc != nil {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									report(n.Pos(), kindWord(d.Tok), n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return problems
}

// isExportedMethodOfUnexported reports whether d is a method on an
// unexported receiver type — godoc hides those, so they are exempt.
func isExportedMethodOfUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && !id.IsExported()
}

func kindWord(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
