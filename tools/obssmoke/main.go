// Command obssmoke is the end-to-end observability smoke test behind
// `make obs-smoke`. It builds the real dirserve binary, boots it with
// the flight recorder, admin listener, and a firehose slow-query log,
// drives 50 traced queries through the wire protocol, and then asserts
// that every ledger the system keeps agrees on what happened:
//
//   - every reply carries a well-formed span subtree whose I/O
//     conservation check passes,
//   - /metrics reports exactly 50 queries served,
//   - /debug/queries retains exactly 50 traces, each under the trace
//     ID the client minted, and serves the full span tree per trace,
//   - the slow-query log recorded one line per query, each with its
//     trace ID.
//
// Any disagreement exits non-zero — the point is that the tracing,
// flight-recorder, and metrics paths cannot drift apart silently.
//
// Usage: go run ./tools/obssmoke   (from the repository root)
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/dirserver"
	"repro/internal/obs"
	"repro/internal/workload"
)

const (
	queries = 50
	forestN = 500 // must match the -gen forest -n flag handed to the child
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: ok")
}

func run() error {
	tmp, err := os.MkdirTemp("", "obssmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "dirserve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/dirserve")
	if out, err := build.CombinedOutput(); err != nil {
		return fmt.Errorf("building dirserve: %v\n%s", err, out)
	}

	slowPath := filepath.Join(tmp, "slow.jsonl")
	child := exec.Command(bin,
		"-gen", "forest", "-n", strconv.Itoa(forestN), "-seed", "1",
		"-addr", "127.0.0.1:0", "-admin", "127.0.0.1:0",
		"-flight", "256", "-grace", "300ms",
		"-slowlog", slowPath, "-slow-ms", "0", // thresholds zero: log every query
	)
	stdout, err := child.StdoutPipe()
	if err != nil {
		return err
	}
	child.Stderr = os.Stderr
	if err := child.Start(); err != nil {
		return err
	}
	defer func() {
		_ = child.Process.Kill()
		_, _ = child.Process.Wait()
	}()

	serveAddr, adminAddr, err := awaitBoot(stdout)
	if err != nil {
		return err
	}
	fmt.Printf("obssmoke: dirserve on %s, admin on %s\n", serveAddr, adminAddr)

	// The client needs the served schema to decode wire entries; the
	// generator parameters must match the child's flags (forestSfx).
	schema := workload.RandomForest(workload.ForestConfig{N: forestN, Seed: 1}).Schema()
	cl := dirserver.NewClient(schema, dirserver.ClientConfig{RequestTimeout: 10 * time.Second})
	defer cl.Close()

	// Drive the workload: every query minted its own 128-bit trace ID,
	// and every reply must bring back a conservation-clean span tree.
	tags := []string{"a", "b", "c"} // the forest generator's default tag alphabet
	traceIDs := make(map[string]bool, queries)
	var firstID string
	ctx := context.Background()
	for i := 0; i < queries; i++ {
		id := obs.NewTraceID()
		q := fmt.Sprintf("( ? sub ? tag=%s)", tags[i%len(tags)])
		entries, _, rt, err := cl.CallTraced(ctx, serveAddr, "query", q, id, 0)
		if err != nil {
			return fmt.Errorf("query %d (%s): %v", i, q, err)
		}
		if len(entries) == 0 {
			return fmt.Errorf("query %d (%s): empty answer", i, q)
		}
		if rt == nil || rt.Span == nil {
			return fmt.Errorf("query %d: no span subtree came back over the wire", i)
		}
		if err := rt.Span.CheckConservation(); err != nil {
			return fmt.Errorf("query %d: remote span tree: %v", i, err)
		}
		if rt.Span.Host != serveAddr {
			return fmt.Errorf("query %d: span subtree host %q, served by %q", i, rt.Span.Host, serveAddr)
		}
		traceIDs[id] = true
		if firstID == "" {
			firstID = id
		}
	}

	// Ledger 1: /metrics. The server and flight-recorder counters must
	// both equal the workload size exactly.
	metrics, err := get("http://" + adminAddr + "/metrics")
	if err != nil {
		return err
	}
	for _, m := range []string{"dirkit_server_queries_total", "dirkit_flight_recorded_total", "dirkit_flight_retained"} {
		got, err := promValue(metrics, m)
		if err != nil {
			return err
		}
		if got != queries {
			return fmt.Errorf("%s = %d, flight recorder and /metrics disagree (want %d)", m, got, queries)
		}
	}

	// Ledger 2: /debug/queries. Exactly the minted trace IDs, and the
	// full record round-trips with its span tree.
	body, err := get("http://" + adminAddr + "/debug/queries")
	if err != nil {
		return err
	}
	var list []struct {
		TraceID string `json:"trace"`
		Spans   int    `json:"spans"`
		Err     string `json:"err"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		return fmt.Errorf("decoding /debug/queries: %v", err)
	}
	if len(list) != queries {
		return fmt.Errorf("/debug/queries retained %d traces, want %d", len(list), queries)
	}
	for _, rec := range list {
		if !traceIDs[rec.TraceID] {
			return fmt.Errorf("/debug/queries holds trace %q the client never minted", rec.TraceID)
		}
		if rec.Spans == 0 {
			return fmt.Errorf("trace %s retained without its span tree", rec.TraceID)
		}
		if rec.Err != "" {
			return fmt.Errorf("trace %s recorded an error: %s", rec.TraceID, rec.Err)
		}
	}
	body, err = get("http://" + adminAddr + "/debug/queries?trace=" + firstID)
	if err != nil {
		return err
	}
	var rec struct {
		TraceID string    `json:"trace"`
		Root    *obs.Span `json:"root"`
	}
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		return fmt.Errorf("decoding per-trace record: %v", err)
	}
	if rec.TraceID != firstID || rec.Root == nil {
		return fmt.Errorf("?trace=%s returned trace %q, root present: %v", firstID, rec.TraceID, rec.Root != nil)
	}

	// Ledger 3: the slow-query log (thresholds zero = firehose) has one
	// line per query, each carrying its trace ID.
	slow, err := os.ReadFile(slowPath)
	if err != nil {
		return err
	}
	lines := strings.Split(strings.TrimSpace(string(slow)), "\n")
	if len(lines) != queries {
		return fmt.Errorf("slow log has %d lines, want %d", len(lines), queries)
	}
	for i, ln := range lines {
		var sl struct {
			Trace string `json:"trace"`
		}
		if err := json.Unmarshal([]byte(ln), &sl); err != nil {
			return fmt.Errorf("slow log line %d: %v", i, err)
		}
		if !traceIDs[sl.Trace] {
			return fmt.Errorf("slow log line %d carries unknown trace %q", i, sl.Trace)
		}
	}

	// Clean shutdown so the child's drain path runs too.
	if err := child.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- child.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		return fmt.Errorf("child did not exit within 10s of SIGTERM")
	}
}

// awaitBoot scans the child's stdout for the serve and admin addresses.
func awaitBoot(stdout io.Reader) (serveAddr, adminAddr string, err error) {
	deadline := time.After(30 * time.Second)
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			default:
			}
		}
		close(lines)
	}()
	for {
		select {
		case ln, ok := <-lines:
			if !ok {
				return "", "", fmt.Errorf("dirserve exited before announcing its listeners")
			}
			if i := strings.Index(ln, " entries on "); i >= 0 {
				serveAddr = strings.TrimSpace(ln[i+len(" entries on "):])
			}
			if i := strings.Index(ln, "admin on http://"); i >= 0 {
				rest := ln[i+len("admin on http://"):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				adminAddr = rest
			}
			if serveAddr != "" && adminAddr != "" {
				return serveAddr, adminAddr, nil
			}
		case <-deadline:
			return "", "", fmt.Errorf("dirserve did not finish booting within 30s")
		}
	}
}

// get fetches a URL and returns its body, insisting on HTTP 200.
func get(url string) (string, error) {
	res, err := http.Get(url)
	if err != nil {
		return "", err
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		return "", err
	}
	if res.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: HTTP %d: %s", url, res.StatusCode, body)
	}
	return string(body), nil
}

// promValue extracts a bare (unlabeled) sample from a Prometheus text
// exposition.
func promValue(body, name string) (int64, error) {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			return 0, fmt.Errorf("parsing %q: %v", line, err)
		}
		return int64(f), nil
	}
	return 0, fmt.Errorf("metric %s not found in exposition", name)
}
