// Package repro is a from-scratch Go reproduction of "Querying Network
// Directories" (H. V. Jagadish, Laks V. S. Lakshmanan, Tova Milo,
// Divesh Srivastava, Dimitra Vista; SIGMOD 1999): the network directory
// data model, the query languages L0–L3, the external-memory evaluation
// algorithms with counted page I/O, the LDAP baseline, the distributed
// evaluation strategy, and the paper's two directory-enabled-network
// applications (QoS policy administration and TOPS dial-by-name).
//
// Layout:
//
//	internal/model      the directory data model (Section 3)
//	internal/filter     atomic and LDAP filters (Section 4.1)
//	internal/query      L0..L3 abstract syntax, parser, validation (Figs 7-10)
//	internal/pager      simulated block device with I/O accounting
//	internal/plist      paged record lists, spillable stack, merging
//	internal/extsort    external merge sort
//	internal/btree      page-based B+tree indexes
//	internal/strindex   trie and suffix-array string indexes
//	internal/store      the disk-resident instance + atomic evaluation
//	internal/engine     the paper's algorithms (Figs 2-6) + naive baselines
//	internal/core       the public Directory facade (search, explain,
//	                    updates, snapshots, concurrency)
//	internal/planner    answer-preserving algebraic rewrites
//	internal/ldif       LDIF-like persistence (self-describing schema)
//	internal/workload   the figures' data + synthetic generators
//	internal/apps/...   the QoS and TOPS applications (Section 2)
//	internal/dirserver  namespace delegation + distributed evaluation (8.3)
//	internal/bench      the reproduction experiments of DESIGN.md
//	cmd/...             dirq, dirgen, dirserve, dirbench
//	examples/...        runnable walkthroughs
//
// The benchmarks in bench_test.go regenerate, at reduced scale, every
// experiment recorded in EXPERIMENTS.md; cmd/dirbench runs the full
// suite.
package repro
