package qstats

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/pager"
)

// sampleTrace builds the span tree of one distributed conjunction:
// a local index atomic, a remote-shipped atomic, and a cache-answered
// atomic under an & root.
func sampleTrace() *obs.Span {
	local := &obs.Span{
		Op: "atomic", Detail: "(sn=smith*)", Dur: 2 * time.Millisecond,
		Out: 12, IO: pager.Stats{Reads: 3},
		Tags: []obs.Tag{{Key: "path", Value: "index"}, {Key: "est", Value: "10"},
			{Key: "depth", Value: "2"}, {Key: "attr", Value: "sn"}},
	}
	remote := &obs.Span{
		Op: "atomic", Detail: "(qos=gold)", Dur: 5 * time.Millisecond, Out: 4,
		Tags: []obs.Tag{{Key: "resolve", Value: "replica"}, {Key: "replica", Value: "10.0.0.2:1"},
			{Key: "depth", Value: "3"}, {Key: "attr", Value: "qos"}},
	}
	cached := &obs.Span{
		Op: "atomic", Detail: "(qos=gold)", Dur: 10 * time.Microsecond, Out: 4,
		Tags: []obs.Tag{{Key: "resolve", Value: "cache"}},
	}
	return &obs.Span{
		Op: "&", Dur: 8 * time.Millisecond, Out: 2,
		IO:       pager.Stats{Reads: 5},
		Children: []*obs.Span{local, remote, cached},
	}
}

func TestFoldProfilesAndSelectivity(t *testing.T) {
	s := New()
	s.Fold(sampleTrace())
	s.Fold(sampleTrace())

	if s.Folded() != 2 {
		t.Fatalf("Folded = %d, want 2", s.Folded())
	}
	sum := s.Snapshot()
	if sum.CacheHits != 2 || sum.CacheMisses != 2 {
		t.Fatalf("cache hits/misses = %d/%d, want 2/2", sum.CacheHits, sum.CacheMisses)
	}
	// Keys: &/-, atomic/d2/index, atomic/d3/remote, atomic/cache.
	if sum.Profiles != 4 {
		t.Fatalf("profiles = %d, want 4: %+v", sum.Profiles, sum.Top)
	}
	var indexed *ProfileSummary
	for i := range sum.Top {
		if sum.Top[i].Key == "atomic/d2/index" {
			indexed = &sum.Top[i]
		}
	}
	if indexed == nil {
		t.Fatalf("no atomic/d2/index profile in %+v", sum.Top)
	}
	if indexed.Count != 2 || indexed.Out.Count != 2 {
		t.Fatalf("index profile: %+v", indexed)
	}
	// The & root's self I/O excludes its children's.
	var root *ProfileSummary
	for i := range sum.Top {
		if strings.HasPrefix(sum.Top[i].Key, "&") {
			root = &sum.Top[i]
		}
	}
	if root == nil || root.IO.Sum != 2*2 { // self = 5 - 3 per trace
		t.Fatalf("root profile IO: %+v", root)
	}

	// Selectivity: sn had est 10 and actual 12, twice.
	var sn *AttrSummary
	for i := range sum.Selectivity {
		if sum.Selectivity[i].Attr == "sn" {
			sn = &sum.Selectivity[i]
		}
	}
	if sn == nil || sn.N != 2 || sn.EstMean != 10 || sn.ActMean != 12 {
		t.Fatalf("sn selectivity: %+v", sn)
	}

	// EXPLAIN's observed summary for the exact atomic.
	ob, ok := s.ObservedFor("(sn=smith*)")
	if !ok || ob.N != 2 {
		t.Fatalf("ObservedFor = %+v, %v", ob, ok)
	}
	if ob.P50Hits < 8 || ob.P50Hits > 16 {
		t.Fatalf("P50Hits = %v, want within the [8,16) log₂ bucket", ob.P50Hits)
	}
	if _, ok := s.ObservedFor("(never=seen)"); ok {
		t.Fatal("unseen atomic reported observations")
	}
}

func TestFoldErrorsAndKNN(t *testing.T) {
	s := New()
	s.Fold(&obs.Span{Op: "atomic", Detail: "(a=b)", Err: "boom",
		Tags: []obs.Tag{{Key: "path", Value: "scan"}, {Key: "depth", Value: "1"}}})
	s.Fold(&obs.Span{Op: "atomic", Detail: "(v~[1]:1)", Out: 1,
		Tags: []obs.Tag{{Key: "knn", Value: "knn-index"}, {Key: "depth", Value: "0"}}})
	s.Fold(&obs.Span{Op: "atomic", Detail: "(v~[1]:1)", Out: 1,
		Tags: []obs.Tag{{Key: "knn", Value: "knn-scan"}, {Key: "depth", Value: "0"}}})

	sum := s.Snapshot()
	if sum.KnnIndex != 1 || sum.KnnScan != 1 {
		t.Fatalf("knn index/scan = %d/%d", sum.KnnIndex, sum.KnnScan)
	}
	var errs int64
	for _, p := range sum.Top {
		errs += p.Errors
	}
	if errs != 1 {
		t.Fatalf("errors folded = %d, want 1", errs)
	}
	// Errored spans contribute no latency observation.
	if _, ok := s.ObservedFor("(a=b)"); ok {
		t.Fatal("errored atomic produced an observed summary")
	}
}

func TestNilStoreIsNoOp(t *testing.T) {
	var s *Store
	s.Fold(sampleTrace())
	if s.Folded() != 0 {
		t.Fatal("nil store folded")
	}
	if _, ok := s.ObservedFor("x"); ok {
		t.Fatal("nil store observed")
	}
	if sum := s.Snapshot(); sum.Folded != 0 {
		t.Fatal("nil store snapshot")
	}
}

func TestAtomCap(t *testing.T) {
	s := New()
	for i := 0; i < maxAtoms+50; i++ {
		s.Fold(&obs.Span{Op: "atomic", Detail: "(a=" + strconv.Itoa(i) + ")", Out: 1})
	}
	if got := len(s.atoms); got > maxAtoms {
		t.Fatalf("atom map grew to %d, cap is %d", got, maxAtoms)
	}
}

func openStore(t *testing.T, dir string) *durable.Store {
	t.Helper()
	fs, err := pager.DirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := durable.Open(fs, durable.Options{Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds := openStore(t, dir)

	s := New()
	s.Fold(sampleTrace())
	s.Fold(sampleTrace())
	gen, err := s.Checkpoint(ds)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("first checkpoint gen = %d, want 1", gen)
	}
	// Nothing new folded: checkpoint is a no-op at the same generation.
	gen2, err := s.Checkpoint(ds)
	if err != nil || gen2 != gen {
		t.Fatalf("idle checkpoint: gen %d err %v", gen2, err)
	}
	s.Fold(sampleTrace())
	gen3, err := s.Checkpoint(ds)
	if err != nil || gen3 != gen+1 {
		t.Fatalf("post-fold checkpoint: gen %d err %v", gen3, err)
	}

	// A fresh process recovers the accumulated history...
	ds2 := openStore(t, dir)
	r := New()
	rgen, err := r.Recover(ds2)
	if err != nil {
		t.Fatal(err)
	}
	if rgen != gen3 {
		t.Fatalf("recovered gen %d, want %d", rgen, gen3)
	}
	if r.Folded() != 3 {
		t.Fatalf("recovered folded = %d, want 3", r.Folded())
	}
	ob, ok := r.ObservedFor("(sn=smith*)")
	if !ok || ob.N != 3 {
		t.Fatalf("recovered observed = %+v, %v", ob, ok)
	}
	sum := r.Snapshot()
	if sum.CacheHits != 3 || sum.Profiles != 4 {
		t.Fatalf("recovered summary: %+v", sum)
	}

	// ...and keeps accumulating on the same lineage.
	r.Fold(sampleTrace())
	gen4, err := r.Checkpoint(ds2)
	if err != nil || gen4 != gen3+1 {
		t.Fatalf("post-recover checkpoint: gen %d err %v", gen4, err)
	}
}

func TestRecoverEmptyStore(t *testing.T) {
	ds := openStore(t, t.TempDir())
	s := New()
	gen, err := s.Recover(ds)
	if err != nil || gen != 0 {
		t.Fatalf("empty recover: gen %d err %v", gen, err)
	}
}

func TestRegisterMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := New()
	s.RegisterMetrics(reg, "dirkit_qstats")
	s.Fold(sampleTrace())
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"dirkit_qstats_traces_folded_total 1",
		"dirkit_qstats_cache_hits_total 1",
		"dirkit_qstats_profiles 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}
