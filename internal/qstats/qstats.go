// Package qstats is the self-maintaining statistics store that closes
// the observe → estimate loop: every completed query trace is folded
// into durable per-(operator, scope-depth, access-path-class) profiles
// — latency, page-I/O, and output-cardinality log₂ histograms —
// per-attribute selectivity (the optimizer's estimated hits next to
// what the operator actually produced), remote-result cache outcomes,
// and knn index-versus-scan decisions.
//
// The paper's cost model (Sections 8–9) predicts per-operator I/O from
// catalog statistics; PR 3's tracer measures the same quantities on
// live queries. This package is the third leg: it accumulates those
// measurements across queries and feeds them back — EXPLAIN prints the
// observed hit distribution beside the catalog estimate (obs=N/p50
// columns, core.Explain), and a future cost-based planner reads the
// same profiles (ROADMAP "cost-based optimization"). State survives
// restarts through the durable envelope layer: Checkpoint serializes
// the whole store into a generation-numbered checksummed segment,
// Recover folds the newest intact one back in (DESIGN.md §13).
//
// A Store is safe for concurrent use and a nil *Store is a valid no-op
// receiver for Fold and Observed, so serving paths pay one nil check
// when statistics are off.
package qstats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"repro/internal/durable"
	"repro/internal/obs"
)

// maxAtoms caps the per-atomic-text map: beyond it new atomics fold
// into the keyed profiles but are not individually tracked, so an
// adversarial query stream cannot grow the store without bound.
const maxAtoms = 4096

// Key identifies one profile: the operator mnemonic, the scope depth
// of the atomic's base DN (-1 for non-atomic operators, which have no
// base), and the access-path class the operator actually used —
// base-point, index, scan, knn-index, knn-scan for local atomics,
// "remote" when a coordinator shipped the atomic to a replica,
// "cache" when the remote-result cache answered, "" when unknown.
type Key struct {
	Op    string `json:"op"`
	Depth int    `json:"depth"`
	Class string `json:"class,omitempty"`
}

// String renders the key as "op/dN/class", omitting absent parts —
// the label used in summaries and failure messages.
func (k Key) String() string {
	s := k.Op
	if k.Depth >= 0 {
		s += "/d" + strconv.Itoa(k.Depth)
	}
	if k.Class != "" {
		s += "/" + k.Class
	}
	return s
}

// Profile accumulates one key's observations.
type Profile struct {
	Count   int64
	Errors  int64
	Latency *obs.Histogram // span wall time, microseconds (subtree)
	IO      *obs.Histogram // span self page I/O (the operator's own)
	Out     *obs.Histogram // output cardinality
}

func newProfile() *Profile {
	return &Profile{
		Latency: obs.NewHistogram("latency_us", ""),
		IO:      obs.NewHistogram("io_pages", ""),
		Out:     obs.NewHistogram("out", ""),
	}
}

// AttrStats accumulates selectivity evidence for one attribute:
// estimated hits (when the catalog had an estimate) against actual
// hits, across every atomic filtering on that attribute.
type AttrStats struct {
	N      int64          // atomics observed on this attribute
	EstN   int64          // of those, how many had a catalog estimate
	EstSum int64          // Σ estimated hits over EstN
	ActSum int64          // Σ actual hits over N
	Act    *obs.Histogram // actual-hits distribution
}

// AtomStats tracks one exact atomic (keyed by its canonical optimized
// text): the distribution of actual hits plus the last catalog
// estimate, which is what EXPLAIN prints as observed-vs-estimated.
type AtomStats struct {
	N       int64
	EstLast int64          // last catalog estimate seen (-1 = unknown)
	Class   string         // access-path class of the newest evaluation
	Act     *obs.Histogram // actual hits
	IOPages *obs.Histogram // self page I/O
	Lat     *obs.Histogram // wall time, microseconds
}

// Observed is the per-atomic summary EXPLAIN and the cost-based
// planner consume: the observed answer to the catalog's estimate.
type Observed struct {
	N       int64   // times this exact atomic was evaluated traced
	P50Hits float64 // median actual hits
	P95Hits float64
	P50IO   float64 // median self page I/O
	// P50LatUS is the median wall time of the atomic's evaluation in
	// microseconds (EXPLAIN renders it in ms).
	P50LatUS float64
	// Class is the access path the newest evaluation actually used
	// (index, scan, knn-index, knn-scan, base-point, remote, cache) —
	// the path the P50IO figure describes, and the anchor the planner
	// calibrates against.
	Class string
}

// ClassProfile aggregates every atomic evaluation that shared a scope
// depth and an access-path class: the per-class prior the cost model
// consults when an exact atomic was never observed.
type ClassProfile struct {
	N      int64   // atomic spans folded for this (depth, class)
	P50IO  float64 // median self page I/O
	P50Out float64 // median output cardinality
}

// Store is the statistics store. Zero value is not usable; construct
// with New.
type Store struct {
	mu       sync.Mutex
	profiles map[Key]*Profile
	attrs    map[string]*AttrStats
	atoms    map[string]*AtomStats

	folded      int64 // traces folded in
	cacheHits   int64 // remote-result cache answered
	cacheMisses int64 // atomic resolved without the cache
	knnIndex    int64 // knn served from the vector index
	knnScan     int64 // knn fell back to a scan
	ckptGen     int64 // newest generation checkpointed or recovered
	foldedAtCk  int64 // folded counter at the last checkpoint
}

// New creates an empty store.
func New() *Store {
	return &Store{
		profiles: make(map[Key]*Profile),
		attrs:    make(map[string]*AttrStats),
		atoms:    make(map[string]*AtomStats),
	}
}

// Fold accumulates one completed query trace into the store
// (nil-safe for both receiver and root). Every span in the tree —
// remote subtrees included, since their per-operator accounting is as
// exact as the local one — lands in its (op, depth, class) profile;
// atomic spans additionally feed attribute selectivity, the per-atomic
// observed-hits map, cache outcome counters, and knn path counters.
func (s *Store) Fold(root *obs.Span) {
	if s == nil || root == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.folded++
	root.Walk(func(sp *obs.Span) { s.foldSpan(sp) })
}

// foldSpan accumulates one span; the caller holds s.mu.
func (s *Store) foldSpan(sp *obs.Span) {
	depth := -1
	if v, ok := sp.TagValue("depth"); ok {
		if d, err := strconv.Atoi(v); err == nil {
			depth = d
		}
	}
	class, _ := sp.TagValue("path")
	if resolve, ok := sp.TagValue("resolve"); ok {
		switch resolve {
		case "cache":
			class = "cache"
			s.cacheHits++
		default:
			s.cacheMisses++
		}
	}
	if _, ok := sp.TagValue("replica"); ok && class == "" {
		class = "remote"
	}
	if knn, ok := sp.TagValue("knn"); ok {
		switch knn {
		case "knn-index":
			s.knnIndex++
		case "knn-scan":
			s.knnScan++
		}
		if class == "" {
			class = knn
		}
	}

	key := Key{Op: sp.Op, Depth: depth, Class: class}
	p := s.profiles[key]
	if p == nil {
		p = newProfile()
		s.profiles[key] = p
	}
	p.Count++
	if sp.Err != "" {
		p.Errors++
		return
	}
	p.Latency.ObserveDuration(sp.Dur)
	selfIO := sp.SelfIO().IO()
	p.IO.Observe(selfIO)
	p.Out.Observe(sp.Out)

	est := int64(-1)
	if v, ok := sp.TagValue("est"); ok {
		if e, err := strconv.ParseInt(v, 10, 64); err == nil {
			est = e
		}
	}
	if attr, ok := sp.TagValue("attr"); ok {
		a := s.attrs[attr]
		if a == nil {
			a = &AttrStats{Act: obs.NewHistogram("act", "")}
			s.attrs[attr] = a
		}
		a.N++
		a.ActSum += sp.Out
		a.Act.Observe(sp.Out)
		if est >= 0 {
			a.EstN++
			a.EstSum += est
		}
	}
	if sp.Op == "atomic" && sp.Detail != "" {
		at := s.atoms[sp.Detail]
		if at == nil {
			if len(s.atoms) >= maxAtoms {
				return
			}
			at = newAtomStats()
			s.atoms[sp.Detail] = at
		}
		at.N++
		if est >= 0 || at.N == 1 {
			at.EstLast = est
		}
		if class != "" {
			at.Class = class
		}
		at.Act.Observe(sp.Out)
		at.IOPages.Observe(selfIO)
		at.Lat.ObserveDuration(sp.Dur)
	}
}

// newAtomStats allocates an empty per-atomic accumulator.
func newAtomStats() *AtomStats {
	return &AtomStats{
		EstLast: -1,
		Act:     obs.NewHistogram("act", ""),
		IOPages: obs.NewHistogram("io", ""),
		Lat:     obs.NewHistogram("lat_us", ""),
	}
}

// ObservedFor returns the observed summary for one exact atomic, keyed
// by its canonical (optimized, printed) text. ok is false when the
// atomic was never folded — EXPLAIN then prints estimates alone
// (nil-safe).
func (s *Store) ObservedFor(atomText string) (Observed, bool) {
	if s == nil {
		return Observed{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	at := s.atoms[atomText]
	if at == nil || at.N == 0 {
		return Observed{}, false
	}
	return Observed{
		N:        at.N,
		P50Hits:  at.Act.Quantile(0.50),
		P95Hits:  at.Act.Quantile(0.95),
		P50IO:    at.IOPages.Quantile(0.50),
		P50LatUS: at.Lat.Quantile(0.50),
		Class:    at.Class,
	}, true
}

// ClassProfile returns the aggregate profile of every atomic span
// folded with the given scope depth and access-path class. ok is false
// when no such span was ever observed (nil-safe) — the planner then
// falls back to pure catalog estimates.
func (s *Store) ClassProfile(depth int, class string) (ClassProfile, bool) {
	if s == nil {
		return ClassProfile{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.profiles[Key{Op: "atomic", Depth: depth, Class: class}]
	if p == nil || p.Count == 0 {
		return ClassProfile{}, false
	}
	return ClassProfile{
		N:      p.Count,
		P50IO:  p.IO.Quantile(0.50),
		P50Out: p.Out.Quantile(0.50),
	}, true
}

// Folded returns how many traces were folded in (recovered history
// included).
func (s *Store) Folded() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.folded
}

// Summary is the point-in-time aggregate view served on /statusz.
type Summary struct {
	Folded      int64            `json:"folded"`
	Profiles    int              `json:"profiles"`
	Atoms       int              `json:"atoms"`
	Attrs       int              `json:"attrs"`
	CacheHits   int64            `json:"cache_hits"`
	CacheMisses int64            `json:"cache_misses"`
	KnnIndex    int64            `json:"knn_index"`
	KnnScan     int64            `json:"knn_scan"`
	Gen         int64            `json:"gen"`
	Top         []ProfileSummary `json:"top,omitempty"`
	Selectivity []AttrSummary    `json:"selectivity,omitempty"`
}

// ProfileSummary is one key's aggregate, quantiles precomputed.
type ProfileSummary struct {
	Key     string           `json:"key"`
	Count   int64            `json:"count"`
	Errors  int64            `json:"errors,omitempty"`
	Latency obs.HistSnapshot `json:"latency_us"`
	IO      obs.HistSnapshot `json:"io_pages"`
	Out     obs.HistSnapshot `json:"out"`
}

// AttrSummary is one attribute's selectivity evidence: mean estimated
// hits next to mean actual hits.
type AttrSummary struct {
	Attr    string  `json:"attr"`
	N       int64   `json:"n"`
	EstMean float64 `json:"est_mean"` // over atomics that had an estimate
	ActMean float64 `json:"act_mean"`
	ActP95  float64 `json:"act_p95"`
}

// Snapshot returns the aggregate view, profiles sorted by observation
// count descending.
func (s *Store) Snapshot() Summary {
	if s == nil {
		return Summary{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := Summary{
		Folded: s.folded, Profiles: len(s.profiles), Atoms: len(s.atoms),
		Attrs: len(s.attrs), CacheHits: s.cacheHits, CacheMisses: s.cacheMisses,
		KnnIndex: s.knnIndex, KnnScan: s.knnScan, Gen: s.ckptGen,
	}
	for k, p := range s.profiles {
		sum.Top = append(sum.Top, ProfileSummary{
			Key: k.String(), Count: p.Count, Errors: p.Errors,
			Latency: p.Latency.Snapshot(), IO: p.IO.Snapshot(), Out: p.Out.Snapshot(),
		})
	}
	sort.Slice(sum.Top, func(i, j int) bool {
		if sum.Top[i].Count != sum.Top[j].Count {
			return sum.Top[i].Count > sum.Top[j].Count
		}
		return sum.Top[i].Key < sum.Top[j].Key
	})
	for attr, a := range s.attrs {
		as := AttrSummary{Attr: attr, N: a.N, ActP95: a.Act.Quantile(0.95)}
		if a.EstN > 0 {
			as.EstMean = float64(a.EstSum) / float64(a.EstN)
		}
		if a.N > 0 {
			as.ActMean = float64(a.ActSum) / float64(a.N)
		}
		sum.Selectivity = append(sum.Selectivity, as)
	}
	sort.Slice(sum.Selectivity, func(i, j int) bool {
		return sum.Selectivity[i].Attr < sum.Selectivity[j].Attr
	})
	return sum
}

// RegisterMetrics exposes the store's aggregate counters on reg under
// the given prefix.
func (s *Store) RegisterMetrics(reg *obs.Registry, prefix string) {
	pull := func(f func() int64) func() int64 { return f }
	reg.GaugeFunc(prefix+"_traces_folded_total", "query traces folded into the statistics store",
		pull(func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.folded }))
	reg.GaugeFunc(prefix+"_profiles", "distinct (op, depth, class) profiles",
		pull(func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return int64(len(s.profiles)) }))
	reg.GaugeFunc(prefix+"_atoms_tracked", "distinct atomics individually tracked",
		pull(func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return int64(len(s.atoms)) }))
	reg.GaugeFunc(prefix+"_cache_hits_total", "atomics answered by the remote-result cache",
		pull(func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.cacheHits }))
	reg.GaugeFunc(prefix+"_cache_misses_total", "atomics resolved without the remote-result cache",
		pull(func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.cacheMisses }))
	reg.GaugeFunc(prefix+"_knn_index_total", "knn atomics served from the vector index",
		pull(func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.knnIndex }))
	reg.GaugeFunc(prefix+"_knn_scan_total", "knn atomics that fell back to a scan",
		pull(func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.knnScan }))
	reg.GaugeFunc(prefix+"_checkpoint_gen", "newest statistics generation checkpointed or recovered",
		pull(func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.ckptGen }))
}

// ---- durable persistence ----------------------------------------------

// payload is the store's full serializable state. Histograms travel as
// obs.HistState (sparse log₂ buckets), so recovered state folds back in
// with AddState and a recovered store keeps accumulating seamlessly.
type payload struct {
	Folded      int64             `json:"folded"`
	CacheHits   int64             `json:"cache_hits"`
	CacheMisses int64             `json:"cache_misses"`
	KnnIndex    int64             `json:"knn_index"`
	KnnScan     int64             `json:"knn_scan"`
	Profiles    []profileState    `json:"profiles"`
	Attrs       map[string]attrSt `json:"attrs,omitempty"`
	Atoms       map[string]atomSt `json:"atoms,omitempty"`
}

type profileState struct {
	Key     Key           `json:"key"`
	Count   int64         `json:"count"`
	Errors  int64         `json:"errors,omitempty"`
	Latency obs.HistState `json:"latency"`
	IO      obs.HistState `json:"io"`
	Out     obs.HistState `json:"out"`
}

type attrSt struct {
	N      int64         `json:"n"`
	EstN   int64         `json:"est_n"`
	EstSum int64         `json:"est_sum"`
	ActSum int64         `json:"act_sum"`
	Act    obs.HistState `json:"act"`
}

type atomSt struct {
	N       int64         `json:"n"`
	EstLast int64         `json:"est_last"`
	Class   string        `json:"class,omitempty"`
	Act     obs.HistState `json:"act"`
	IO      obs.HistState `json:"io"`
	// Lat is absent in pre-PR-9 checkpoints; folding its zero value is
	// a no-op, so old generations recover cleanly.
	Lat obs.HistState `json:"lat,omitempty"`
}

// Checkpoint durably persists the store's state into ds as the next
// generation after the newest one present, reporting the generation
// written. Folding continues concurrently; the image is the state at
// serialization time. Checkpointing with nothing folded since the last
// checkpoint is a no-op returning the previous generation — the common
// case for periodic loops on an idle server.
func (s *Store) Checkpoint(ds *durable.Store) (int64, error) {
	s.mu.Lock()
	if s.folded == s.foldedAtCk {
		if gen, ok := ds.Newest(); ok {
			s.mu.Unlock()
			return gen, nil
		}
	}
	p := s.payloadLocked()
	folded := s.folded
	s.mu.Unlock()

	gen := int64(1)
	if newest, ok := ds.Newest(); ok {
		gen = newest + 1
	}
	err := ds.Commit(gen, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(p)
	})
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.ckptGen = gen
	s.foldedAtCk = folded
	s.mu.Unlock()
	return gen, nil
}

// payloadLocked captures the store state; the caller holds s.mu.
func (s *Store) payloadLocked() payload {
	p := payload{
		Folded: s.folded, CacheHits: s.cacheHits, CacheMisses: s.cacheMisses,
		KnnIndex: s.knnIndex, KnnScan: s.knnScan,
	}
	for k, pr := range s.profiles {
		p.Profiles = append(p.Profiles, profileState{
			Key: k, Count: pr.Count, Errors: pr.Errors,
			Latency: pr.Latency.State(), IO: pr.IO.State(), Out: pr.Out.State(),
		})
	}
	sort.Slice(p.Profiles, func(i, j int) bool {
		return p.Profiles[i].Key.String() < p.Profiles[j].Key.String()
	})
	if len(s.attrs) > 0 {
		p.Attrs = make(map[string]attrSt, len(s.attrs))
		for attr, a := range s.attrs {
			p.Attrs[attr] = attrSt{N: a.N, EstN: a.EstN, EstSum: a.EstSum, ActSum: a.ActSum, Act: a.Act.State()}
		}
	}
	if len(s.atoms) > 0 {
		p.Atoms = make(map[string]atomSt, len(s.atoms))
		for text, at := range s.atoms {
			p.Atoms[text] = atomSt{
				N: at.N, EstLast: at.EstLast, Class: at.Class,
				Act: at.Act.State(), IO: at.IOPages.State(), Lat: at.Lat.State(),
			}
		}
	}
	return p
}

// Recover folds the newest intact generation in ds into the store,
// walking the recovery ladder past corrupt generations exactly like
// core.Recover, and reports the generation restored. An empty store
// recovers to generation 0 with no error; a store whose every
// generation is corrupt returns durable.ErrNoIntactGeneration. State
// folded before Recover is kept — recovery adds history, it does not
// replace observations made since boot.
func (s *Store) Recover(ds *durable.Store) (int64, error) {
	gens := ds.Generations()
	if len(gens) == 0 {
		return 0, nil
	}
	for i := len(gens) - 1; i >= 0; i-- {
		gen := gens[i]
		raw, err := ds.Load(gen)
		if err != nil {
			continue
		}
		var p payload
		if err := json.Unmarshal(raw, &p); err != nil {
			continue
		}
		if i != len(gens)-1 {
			if err := ds.Rollback(gen); err != nil {
				return 0, fmt.Errorf("qstats: pruning corrupt generations: %w", err)
			}
		}
		s.fold(p)
		s.mu.Lock()
		s.ckptGen = gen
		s.foldedAtCk = s.folded
		s.mu.Unlock()
		return gen, nil
	}
	return 0, fmt.Errorf("qstats: recover: %w", durable.ErrNoIntactGeneration)
}

// fold merges a recovered payload into the live store.
func (s *Store) fold(p payload) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.folded += p.Folded
	s.cacheHits += p.CacheHits
	s.cacheMisses += p.CacheMisses
	s.knnIndex += p.KnnIndex
	s.knnScan += p.KnnScan
	for _, ps := range p.Profiles {
		pr := s.profiles[ps.Key]
		if pr == nil {
			pr = newProfile()
			s.profiles[ps.Key] = pr
		}
		pr.Count += ps.Count
		pr.Errors += ps.Errors
		pr.Latency.AddState(ps.Latency)
		pr.IO.AddState(ps.IO)
		pr.Out.AddState(ps.Out)
	}
	for attr, as := range p.Attrs {
		a := s.attrs[attr]
		if a == nil {
			a = &AttrStats{Act: obs.NewHistogram("act", "")}
			s.attrs[attr] = a
		}
		a.N += as.N
		a.EstN += as.EstN
		a.EstSum += as.EstSum
		a.ActSum += as.ActSum
		a.Act.AddState(as.Act)
	}
	for text, as := range p.Atoms {
		at := s.atoms[text]
		if at == nil {
			if len(s.atoms) >= maxAtoms {
				continue
			}
			at = newAtomStats()
			s.atoms[text] = at
		}
		at.N += as.N
		if at.EstLast < 0 {
			at.EstLast = as.EstLast
		}
		if at.Class == "" {
			at.Class = as.Class
		}
		at.Act.AddState(as.Act)
		at.IOPages.AddState(as.IO)
		at.Lat.AddState(as.Lat)
	}
}
