package query

import (
	"fmt"
	"sort"
	"strings"
)

// Canonical renders q as a canonical cache key: semantically identical
// queries produce byte-identical strings. Two normalizations compose:
//
//   - Parse-time normalization. Attribute names in DNs, filters and
//     aggregate selections are lower-cased by the parser, and String()
//     prints one canonical spacing, so whitespace and attribute-case
//     variants of the same query text already collapse after a
//     parse/print round trip.
//
//   - Commutative-operand sorting. Set intersection and union are
//     commutative and associative (they are pure set operations on the
//     operand answers, Section 4.1), so maximal chains of the same
//     operator are flattened and their operands sorted by canonical
//     string: (& A B), (& B A), and (& B (& A C)) all share a key with
//     their reassociations. Difference is not commutative and keeps
//     operand order.
//
// The result is not necessarily re-parseable (flattened chains print
// n-ary); it is a key, not a query.
func Canonical(q Query) string {
	switch n := q.(type) {
	case *Bool:
		if n.Op == OpDiff {
			return fmt.Sprintf("(- %s %s)", Canonical(n.Q1), Canonical(n.Q2))
		}
		var ops []string
		flattenBool(n.Op, n, &ops)
		sort.Strings(ops)
		return "(" + n.Op.String() + " " + strings.Join(ops, " ") + ")"

	case *Hier:
		var b strings.Builder
		fmt.Fprintf(&b, "(%s %s %s", n.Op, Canonical(n.Q1), Canonical(n.Q2))
		if n.Q3 != nil {
			fmt.Fprintf(&b, " %s", Canonical(n.Q3))
		}
		if n.AggSel != nil {
			fmt.Fprintf(&b, " %s", n.AggSel)
		}
		b.WriteByte(')')
		return b.String()

	case *SimpleAgg:
		return fmt.Sprintf("(g %s %s)", Canonical(n.Q), n.AggSel)

	case *EmbedRef:
		var b strings.Builder
		fmt.Fprintf(&b, "(%s %s %s %s", n.Op, Canonical(n.Q1), Canonical(n.Q2), n.Attr)
		if n.AggSel != nil {
			fmt.Fprintf(&b, " %s", n.AggSel)
		}
		b.WriteByte(')')
		return b.String()

	case *Atomic:
		// The base prints by its normalized reverse-DN key (attribute
		// case folded, RDN sets ordered) — DN.String preserves input
		// case, which must not split cache slots.
		return fmt.Sprintf("(%s ? %s ? %s)", n.Base.Key(), n.Scope, n.Filter)

	case *LDAP:
		return fmt.Sprintf("(ldap %s ? %s ? %s)", n.Base.Key(), n.Scope, n.Filter)

	default:
		return q.String()
	}
}

// flattenBool collects the operands of the maximal same-operator chain
// rooted at q, in canonical form.
func flattenBool(op BoolOp, q Query, out *[]string) {
	if b, ok := q.(*Bool); ok && b.Op == op {
		flattenBool(op, b.Q1, out)
		flattenBool(op, b.Q2, out)
		return
	}
	*out = append(*out, Canonical(q))
}

// CanonicalText parses text and returns its canonical key — the form
// cache layers use on raw query strings.
func CanonicalText(text string) (string, error) {
	q, err := Parse(text)
	if err != nil {
		return "", err
	}
	return Canonical(q), nil
}
