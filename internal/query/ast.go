// Package query defines the abstract syntax of the query languages of
// "Querying Network Directories": the LDAP baseline and the strict
// hierarchy L0 ⊂ L1 ⊂ L2 ⊂ L3 given by the grammars of Figures 7–10,
// together with a parser for the paper's surface syntax, printers, a
// language classifier, and schema validation.
//
// Every query denotes a function from a directory instance to a sub-
// instance: a set of directory entries (Section 4.1). The concrete
// evaluation algorithms live in internal/engine.
package query

import (
	"fmt"
	"strings"

	"repro/internal/filter"
	"repro/internal/model"
)

// Language identifies the smallest language of the paper's hierarchy
// that contains a query (Theorem 8.1: LDAP ⊊ L0 ⊊ L1 ⊊ L2 ⊊ L3).
type Language int

// The languages, in increasing expressive power.
const (
	LangLDAP Language = iota // single base+scope, boolean filter
	LangL0                   // atomic queries + boolean set operators (Fig 7)
	LangL1                   // + hierarchical selection (Fig 8)
	LangL2                   // + aggregate selection (Fig 9)
	LangL3                   // + embedded references (Fig 10)
)

func (l Language) String() string {
	switch l {
	case LangLDAP:
		return "LDAP"
	case LangL0:
		return "L0"
	case LangL1:
		return "L1"
	case LangL2:
		return "L2"
	case LangL3:
		return "L3"
	default:
		return fmt.Sprintf("Language(%d)", int(l))
	}
}

// Scope is the search scope of an atomic query (Section 4.1).
type Scope uint8

// The three scopes: only the base entry; the base entry and its
// children; the base entry and all its descendants.
const (
	ScopeBase Scope = iota
	ScopeOne
	ScopeSub
)

func (s Scope) String() string {
	switch s {
	case ScopeBase:
		return "base"
	case ScopeOne:
		return "one"
	case ScopeSub:
		return "sub"
	default:
		return "?"
	}
}

// ParseScope parses "base", "one" or "sub".
func ParseScope(s string) (Scope, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "base":
		return ScopeBase, nil
	case "one":
		return ScopeOne, nil
	case "sub":
		return ScopeSub, nil
	default:
		return 0, fmt.Errorf("query: unknown scope %q", s)
	}
}

// Query is a node of a directory query tree.
type Query interface {
	// String renders the query in the paper's surface syntax.
	String() string
	// Language returns the smallest language containing this query.
	Language() Language
	// Subqueries returns the operand queries, outermost first.
	Subqueries() []Query
}

// Atomic is an atomic query (B ? Scope ? F) — Definition 4.1. Its filter
// is a single atomic comparison; this is the leaf of every L0..L3 query.
type Atomic struct {
	Base   model.DN
	Scope  Scope
	Filter *filter.Atom
}

// NewAtomic builds an atomic query from text parts.
func NewAtomic(base string, scope Scope, atom string) (*Atomic, error) {
	dn, err := model.ParseDN(base)
	if err != nil {
		return nil, err
	}
	f, err := filter.ParseAtom(atom)
	if err != nil {
		return nil, err
	}
	return &Atomic{Base: dn, Scope: scope, Filter: f}, nil
}

func (q *Atomic) String() string {
	return fmt.Sprintf("(%s ? %s ? %s)", q.Base, q.Scope, q.Filter)
}

// Language returns L0: atomic queries are the base case of Fig 7.
func (q *Atomic) Language() Language { return LangL0 }

// Subqueries returns nil.
func (q *Atomic) Subqueries() []Query { return nil }

// LDAP is the paper's formalization of the LDAP query language
// (Section 4.2): one base entry, one scope, and a boolean combination of
// atomic *filters* (not queries). It is not itself a node of L0..L3; it
// exists as the baseline for the expressiveness and evaluation
// comparisons of Section 8.
type LDAP struct {
	Base   model.DN
	Scope  Scope
	Filter filter.Filter
}

func (q *LDAP) String() string {
	return fmt.Sprintf("(%s ? %s ? %s)", q.Base, q.Scope, q.Filter)
}

// Language returns LangLDAP.
func (q *LDAP) Language() Language { return LangLDAP }

// Subqueries returns nil.
func (q *LDAP) Subqueries() []Query { return nil }

// BoolOp is a set-level boolean operator of L0 (Fig 7).
type BoolOp uint8

// The L0 boolean operators: intersection, union, difference. Note LDAP
// has filter-level not (!) but no query-level difference; Example 4.1
// exploits this gap.
const (
	OpAnd BoolOp = iota
	OpOr
	OpDiff
)

func (o BoolOp) String() string {
	switch o {
	case OpAnd:
		return "&"
	case OpOr:
		return "|"
	case OpDiff:
		return "-"
	default:
		return "?"
	}
}

// Bool is a binary boolean query (& Q1 Q2), (| Q1 Q2) or (- Q1 Q2).
type Bool struct {
	Op BoolOp
	Q1 Query
	Q2 Query
}

func (q *Bool) String() string {
	return fmt.Sprintf("(%s %s %s)", q.Op, q.Q1, q.Q2)
}

// Language returns the maximum of L0 and the operands' languages.
func (q *Bool) Language() Language { return maxLang(LangL0, q.Q1, q.Q2) }

// Subqueries returns the two operands.
func (q *Bool) Subqueries() []Query { return []Query{q.Q1, q.Q2} }

// HierOp is a hierarchical selection operator of L1 (Fig 8).
type HierOp uint8

// The six hierarchical selection operators of Definition 5.1.
const (
	OpParents HierOp = iota
	OpChildren
	OpAncestors
	OpDescendants
	OpAncestorsC   // path-constrained ancestors (ternary)
	OpDescendantsC // path-constrained descendants (ternary)
)

func (o HierOp) String() string {
	switch o {
	case OpParents:
		return "p"
	case OpChildren:
		return "c"
	case OpAncestors:
		return "a"
	case OpDescendants:
		return "d"
	case OpAncestorsC:
		return "ac"
	case OpDescendantsC:
		return "dc"
	default:
		return "?"
	}
}

// Ternary reports whether the operator takes a third (path-constraint)
// operand.
func (o HierOp) Ternary() bool { return o == OpAncestorsC || o == OpDescendantsC }

// Hier is a hierarchical selection query, optionally carrying an
// aggregate selection filter (the structural aggregate selection of
// Section 6.2, which makes it an L2 node). Q3 is nil unless the operator
// is ternary.
type Hier struct {
	Op     HierOp
	Q1, Q2 Query
	Q3     Query // ac/dc only
	AggSel *AggSel
}

func (q *Hier) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s %s %s", q.Op, q.Q1, q.Q2)
	if q.Q3 != nil {
		fmt.Fprintf(&b, " %s", q.Q3)
	}
	if q.AggSel != nil {
		fmt.Fprintf(&b, " %s", q.AggSel)
	}
	b.WriteByte(')')
	return b.String()
}

// Language returns L1 (plain hierarchical selection) or L2 (with an
// aggregate selection filter), joined with the operands' languages.
func (q *Hier) Language() Language {
	base := LangL1
	if q.AggSel != nil {
		base = LangL2
	}
	if q.Q3 != nil {
		return maxLang(base, q.Q1, q.Q2, q.Q3)
	}
	return maxLang(base, q.Q1, q.Q2)
}

// Subqueries returns the operands.
func (q *Hier) Subqueries() []Query {
	if q.Q3 != nil {
		return []Query{q.Q1, q.Q2, q.Q3}
	}
	return []Query{q.Q1, q.Q2}
}

// SimpleAgg is the simple aggregate selection query (g Q AggSelFilter) of
// Section 6 — an L2 node.
type SimpleAgg struct {
	Q      Query
	AggSel *AggSel
}

func (q *SimpleAgg) String() string {
	return fmt.Sprintf("(g %s %s)", q.Q, q.AggSel)
}

// Language returns L2 joined with the operand's language.
func (q *SimpleAgg) Language() Language { return maxLang(LangL2, q.Q) }

// Subqueries returns the single operand.
func (q *SimpleAgg) Subqueries() []Query { return []Query{q.Q} }

// RefOp is an embedded reference operator of L3 (Fig 10).
type RefOp uint8

// The two symmetric embedded-reference operators of Section 7: valueDN
// selects entries of Q1 whose Attr holds the DN of a Q2 entry; DNvalue
// selects entries of Q1 whose DN is held in the Attr of a Q2 entry.
const (
	OpValueDN RefOp = iota
	OpDNValue
)

func (o RefOp) String() string {
	if o == OpValueDN {
		return "vd"
	}
	return "dv"
}

// EmbedRef is an embedded reference query, optionally with aggregate
// selection over the witness sets (Definition 7.1).
type EmbedRef struct {
	Op     RefOp
	Q1, Q2 Query
	Attr   string
	AggSel *AggSel
}

func (q *EmbedRef) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s %s %s %s", q.Op, q.Q1, q.Q2, q.Attr)
	if q.AggSel != nil {
		fmt.Fprintf(&b, " %s", q.AggSel)
	}
	b.WriteByte(')')
	return b.String()
}

// Language returns L3 joined with the operands' languages.
func (q *EmbedRef) Language() Language { return maxLang(LangL3, q.Q1, q.Q2) }

// Subqueries returns the two operands.
func (q *EmbedRef) Subqueries() []Query { return []Query{q.Q1, q.Q2} }

func maxLang(base Language, qs ...Query) Language {
	for _, q := range qs {
		if l := q.Language(); l > base {
			base = l
		}
	}
	return base
}

// Walk visits q and every descendant query node in preorder.
func Walk(q Query, fn func(Query)) {
	fn(q)
	for _, c := range q.Subqueries() {
		Walk(c, fn)
	}
}

// Size returns the number of nodes in the query tree — the |Q| of
// Theorems 8.3 and 8.4.
func Size(q Query) int {
	n := 0
	Walk(q, func(Query) { n++ })
	return n
}
