package query

import (
	"errors"
	"fmt"

	"repro/internal/filter"
	"repro/internal/model"
)

// ErrValidate reports a query that is grammatical but ill-formed with
// respect to a schema or the languages' typing rules.
var ErrValidate = errors.New("query: validation error")

// Validate checks q against a schema: filter attributes must exist,
// integer comparisons must target int-typed attributes, vd/dv attributes
// must be distinguishedName-typed, numeric aggregates (min/max/sum/
// average) must target int attributes, and witness-relative aggregate
// terms ($2, $1) may appear only under structural operators.
func Validate(s *model.Schema, q Query) error {
	var err error
	Walk(q, func(node Query) {
		if err != nil {
			return
		}
		switch n := node.(type) {
		case *Atomic:
			err = validateFilterAtom(s, n.Filter)
		case *Hier:
			if n.AggSel != nil {
				err = validateAggSel(s, n.AggSel, true)
			}
		case *SimpleAgg:
			err = validateAggSel(s, n.AggSel, false)
		case *EmbedRef:
			t, ok := s.AttrType(n.Attr)
			if !ok {
				err = fmt.Errorf("%w: %s references unknown attribute %q", ErrValidate, n.Op, n.Attr)
				return
			}
			if t != model.TypeDN {
				err = fmt.Errorf("%w: %s attribute %q has type %s, need %s",
					ErrValidate, n.Op, n.Attr, t, model.TypeDN)
				return
			}
			if n.AggSel != nil {
				err = validateAggSel(s, n.AggSel, true)
			}
		}
	})
	return err
}

func validateFilterAttr(s *model.Schema, attr string) error {
	if _, ok := s.AttrType(attr); !ok {
		return fmt.Errorf("%w: unknown attribute %q in filter", ErrValidate, attr)
	}
	return nil
}

// validateFilterAtom type-checks one atomic filter. Beyond attribute
// existence, knn filters must target a vector-typed attribute whose
// declared dimension matches the query vector, with a positive k.
func validateFilterAtom(s *model.Schema, a *filter.Atom) error {
	t, ok := s.AttrType(a.Attr)
	if !ok {
		return fmt.Errorf("%w: unknown attribute %q in filter", ErrValidate, a.Attr)
	}
	if a.Op != filter.OpKNN {
		return nil
	}
	dim, isVec := model.VectorDim(t)
	if !isVec {
		return fmt.Errorf("%w: knn attribute %q has type %s, need a vector type", ErrValidate, a.Attr, t)
	}
	if len(a.Vec) != dim {
		return fmt.Errorf("%w: knn vector has %d components, attribute %q wants %d",
			ErrValidate, len(a.Vec), a.Attr, dim)
	}
	if a.K < 1 {
		return fmt.Errorf("%w: knn count %d must be positive", ErrValidate, a.K)
	}
	return nil
}

func validateAggSel(s *model.Schema, sel *AggSel, structural bool) error {
	for _, a := range []AggAttr{sel.Left, sel.Right} {
		if err := validateAggAttr(s, a, structural); err != nil {
			return err
		}
	}
	return nil
}

func validateAggAttr(s *model.Schema, a AggAttr, structural bool) error {
	switch a.Kind {
	case KindConst:
		return nil
	case KindEntry:
		return validateEntryAgg(s, a.Entry, structural)
	default: // KindEntrySet
		switch a.Form {
		case SetCount1:
			if !structural {
				return fmt.Errorf("%w: count($1) requires a structural operator", ErrValidate)
			}
			return nil
		case SetCountAll:
			return nil
		default:
			return validateEntryAgg(s, a.Entry, structural)
		}
	}
}

func validateEntryAgg(s *model.Schema, ea EntryAgg, structural bool) error {
	if ea.Over == VarWitness && !structural {
		return fmt.Errorf("%w: $2 terms require a structural operator", ErrValidate)
	}
	if ea.Attr == "" {
		return nil // count($2)
	}
	t, ok := s.AttrType(ea.Attr)
	if !ok {
		return fmt.Errorf("%w: unknown attribute %q in aggregate", ErrValidate, ea.Attr)
	}
	if ea.Fn != AggCount && t != model.TypeInt {
		return fmt.Errorf("%w: %s(%s) needs an int attribute, %q has type %s",
			ErrValidate, ea.Fn, ea.Attr, ea.Attr, t)
	}
	return nil
}
