package query

import (
	"fmt"

	"repro/internal/filter"
	"repro/internal/model"
)

// CompileLDAP constructively witnesses the LDAP ⊆ L0 inclusion of
// Theorem 8.1: any LDAP query — one base, one scope, a boolean
// combination of atomic filters — translates to an equivalent L0 query.
//
// Filter-level connectives become set-level operators over atomic
// queries sharing the LDAP query's base and scope:
//
//	(& F1 F2)  ->  (& (B?s?F1) (B?s?F2))
//	(| F1 F2)  ->  (| (B?s?F1) (B?s?F2))
//	(! F)      ->  (- (B?s?objectClass=*) (B?s?F))
//
// The complement uses the presence filter objectClass=*, which every
// directory entry satisfies: Definition 3.2(b)+(c)2 force class(r) to be
// non-empty and stored in objectClass. This is the same observation that
// makes the Section 8.1 encoding of p through ac work.
func CompileLDAP(q *LDAP) (Query, error) {
	return compileFilter(q.Base, q.Scope, q.Filter)
}

func compileFilter(base model.DN, scope Scope, f filter.Filter) (Query, error) {
	switch ff := f.(type) {
	case *filter.Atom:
		return &Atomic{Base: base, Scope: scope, Filter: ff}, nil
	case filter.And:
		return compileFold(base, scope, OpAnd, ff)
	case filter.Or:
		return compileFold(base, scope, OpOr, ff)
	case filter.Not:
		inner, err := compileFilter(base, scope, ff.F)
		if err != nil {
			return nil, err
		}
		all := &Atomic{Base: base, Scope: scope, Filter: filter.Present(model.ObjectClass)}
		return &Bool{Op: OpDiff, Q1: all, Q2: inner}, nil
	default:
		return nil, fmt.Errorf("query: cannot compile filter %T", f)
	}
}

func compileFold(base model.DN, scope Scope, op BoolOp, fs []filter.Filter) (Query, error) {
	if len(fs) == 0 {
		return nil, fmt.Errorf("query: empty %s filter", op)
	}
	acc, err := compileFilter(base, scope, fs[0])
	if err != nil {
		return nil, err
	}
	for _, f := range fs[1:] {
		next, err := compileFilter(base, scope, f)
		if err != nil {
			return nil, err
		}
		acc = &Bool{Op: op, Q1: acc, Q2: next}
	}
	return acc, nil
}
