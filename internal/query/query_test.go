package query

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/model"
)

// The worked queries of the paper, by example number.
var paperQueries = map[string]struct {
	text string
	lang Language
}{
	"Ex4.1 difference": {
		text: `(- (dc=att, dc=com ? sub ? surName=jagadish)
		          (dc=research, dc=att, dc=com ? sub ? surName=jagadish))`,
		lang: LangL0,
	},
	"Ex5.1 children": {
		text: `(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)
		          (dc=att, dc=com ? sub ? surName=jagadish))`,
		lang: LangL1,
	},
	"Ex5.2 ancestors": {
		text: `(a (dc=att, dc=com ? sub ? objectClass=trafficProfile)
		          (dc=att, dc=com ? sub ? ou=networkPolicies))`,
		lang: LangL1,
	},
	"Ex5.3 path-constrained descendants": {
		text: `(dc (dc=att, dc=com ? sub ? objectClass=dcObject)
		           (& (dc=att, dc=com ? sub ? sourcePort=25)
		              (dc=att, dc=com ? sub ? objectClass=trafficProfile))
		           (dc=att, dc=com ? sub ? objectClass=dcObject))`,
		lang: LangL1,
	},
	"Ex6.1 simple aggregate": {
		text: `(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		          count(SLAPVPRef) > 1)`,
		lang: LangL2,
	},
	"Ex6.2 structural aggregate": {
		text: `(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber)
		          (dc=att, dc=com ? sub ? objectClass=QHP)
		          count($2) > 10)`,
		lang: LangL2,
	},
	"Ex7.1 valueDN": {
		text: `(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		           (& (dc=att, dc=com ? sub ? sourcePort=25)
		              (dc=att, dc=com ? sub ? objectClass=trafficProfile))
		           SLATPRef)`,
		lang: LangL3,
	},
	"Ex7.1 full dv composition": {
		text: `(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)
		           (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		                  (& (dc=att, dc=com ? sub ? sourcePort=25)
		                     (dc=att, dc=com ? sub ? objectClass=trafficProfile))
		                  SLATPRef)
		              min(SLARulePriority)=min(min(SLARulePriority)))
		           SLADSActRef)`,
		lang: LangL3,
	},
}

func TestParsePaperQueries(t *testing.T) {
	s := model.DefaultSchema()
	for name, c := range paperQueries {
		q, err := Parse(c.text)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := q.Language(); got != c.lang {
			t.Errorf("%s: language = %v, want %v", name, got, c.lang)
		}
		if err := Validate(s, q); err != nil {
			t.Errorf("%s: validate: %v", name, err)
		}
		// Round trip: print and re-parse, structure stable.
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("%s: re-parse of %q: %v", name, q.String(), err)
		}
		if q.String() != q2.String() {
			t.Errorf("%s: unstable printing:\n%q\n%q", name, q.String(), q2.String())
		}
	}
}

func TestAtomicParts(t *testing.T) {
	q, err := Parse("(dc=research, dc=att, dc=com ? one ? SLARulePriority<3)")
	if err != nil {
		t.Fatal(err)
	}
	a, ok := q.(*Atomic)
	if !ok {
		t.Fatalf("got %T", q)
	}
	if a.Base.String() != "dc=research, dc=att, dc=com" {
		t.Errorf("base = %q", a.Base)
	}
	if a.Scope != ScopeOne {
		t.Errorf("scope = %v", a.Scope)
	}
	if a.Filter.Attr != "slarulepriority" {
		t.Errorf("filter attr = %q", a.Filter.Attr)
	}
}

func TestScopes(t *testing.T) {
	for _, sc := range []string{"base", "one", "sub"} {
		q, err := Parse("(dc=com ? " + sc + " ? dc=*)")
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if got := q.(*Atomic).Scope.String(); got != sc {
			t.Errorf("scope %s round trip = %s", sc, got)
		}
	}
	if _, err := ParseScope("tree"); err == nil {
		t.Error("bad scope accepted")
	}
}

func TestRootBaseDN(t *testing.T) {
	// The null-dn of Section 8.1: an empty base names the forest root.
	q, err := Parse("( ? sub ? objectClass=*)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.(*Atomic).Base) != 0 {
		t.Errorf("base = %v, want empty", q.(*Atomic).Base)
	}
}

func TestParseAggSelForms(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"count($2) > 10", "count($2) > 10"},
		{"count(SLAPVPRef)>1", "count(slapvpref) > 1"},
		{"min(SLARulePriority)=min(min(SLARulePriority))", "min(slarulepriority) = min(min(slarulepriority))"},
		{"count($2)=max(count($2))", "count($2) = max(count($2))"},
		{"count($$) != 0", "count($$) != 0"},
		{"count($1) >= 5", "count($1) >= 5"},
		{"sum($2.priority) <= 100", "sum($2.priority) <= 100"},
		{"average($1.priority) < 3", "average(priority) < 3"},
		{"7 = count($2)", "7 = count($2)"},
	}
	for _, c := range cases {
		sel, err := ParseAggSel(c.in)
		if err != nil {
			t.Fatalf("ParseAggSel(%q): %v", c.in, err)
		}
		if sel.String() != c.want {
			t.Errorf("ParseAggSel(%q) = %q, want %q", c.in, sel, c.want)
		}
	}
}

func TestParseAggSelErrors(t *testing.T) {
	for _, bad := range []string{
		"", "count($2)", "min($2)", "sum($$)", "max($1) = 3",
		"frob(x) > 1", "count() > 1", "count($2) >", "min(count(x)) = min(min(min(x)))",
	} {
		if _, err := ParseAggSel(bad); err == nil {
			t.Errorf("ParseAggSel(%q): expected error", bad)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"(dc=com ? sub)",             // missing filter
		"(dc=com ? sub ? a=1 ? b=2)", // too many parts
		"(& (dc=com ? sub ? a=1))",   // & is binary
		"(p (dc=com ? sub ? a=1))",   // p is binary
		"(ac (dc=com ? sub ? a=1) (dc=com ? sub ? a=1))", // ac is ternary
		"(g (dc=com ? sub ? a=1))",                       // g needs a filter
		"(vd (dc=com ? sub ? a=1) (dc=com ? sub ? a=1))", // vd needs attr
		"(dc=com ? tree ? a=1)",                          // bad scope
		"(& (dc=com ? sub ? a=1) (dc=com ? sub ? a=1)",   // unbalanced
		"(dc=com ? sub ? a=1) junk",                      // trailing
		"(zz (dc=com ? sub ? a=1) (dc=com ? sub ? a=1))", // unknown op... parsed as atomic, fails on '?' count
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		} else if !errors.Is(err, ErrParse) {
			t.Errorf("Parse(%q): error not ErrParse: %v", bad, err)
		}
	}
}

func TestParseLDAP(t *testing.T) {
	q, err := ParseLDAP("(dc=att, dc=com ? sub ? (&(surName=jagadish)(!(objectClass=ntUser))))")
	if err != nil {
		t.Fatal(err)
	}
	if q.Language() != LangLDAP {
		t.Errorf("language = %v", q.Language())
	}
	if q.Scope != ScopeSub || q.Base.Depth() != 2 {
		t.Errorf("base/scope wrong: %v %v", q.Base, q.Scope)
	}
	if _, err := ParseLDAP("no parens"); err == nil {
		t.Error("bad LDAP accepted")
	}
}

func TestLanguageLattice(t *testing.T) {
	// Nesting an L2 node under a boolean keeps L2; nesting L3 anywhere
	// yields L3.
	l2 := `(g (dc=com ? sub ? dc=*) count($$) > 0)`
	q := MustParse(`(& ` + l2 + ` (dc=com ? sub ? dc=*))`)
	if q.Language() != LangL2 {
		t.Errorf("boolean over L2 = %v", q.Language())
	}
	l3 := `(vd (dc=com ? sub ? objectClass=*) (dc=com ? sub ? dc=*) SLATPRef)`
	q = MustParse(`(c ` + l3 + ` (dc=com ? sub ? dc=*))`)
	if q.Language() != LangL3 {
		t.Errorf("hier over L3 = %v", q.Language())
	}
}

func TestSizeAndWalk(t *testing.T) {
	q := MustParse(paperQueries["Ex7.1 full dv composition"].text)
	// dv(atomic, g(vd(atomic, &(atomic, atomic)))) = dv,atomic,g,vd,atomic,&,atomic,atomic = 8
	if got := Size(q); got != 8 {
		t.Errorf("Size = %d, want 8", got)
	}
	atoms := 0
	Walk(q, func(n Query) {
		if _, ok := n.(*Atomic); ok {
			atoms++
		}
	})
	if atoms != 4 {
		t.Errorf("atoms = %d, want 4", atoms)
	}
}

func TestValidateErrors(t *testing.T) {
	s := model.DefaultSchema()
	cases := []string{
		"(dc=com ? sub ? noSuchAttr=1)",
		"(vd (dc=com ? sub ? dc=*) (dc=com ? sub ? dc=*) surName)", // surName not DN-typed
		"(vd (dc=com ? sub ? dc=*) (dc=com ? sub ? dc=*) nosuch)",  // unknown
		"(g (dc=com ? sub ? dc=*) min(surName) > 1)",               // min on string
		"(g (dc=com ? sub ? dc=*) count($2) > 1)",                  // $2 outside structural op
		"(g (dc=com ? sub ? dc=*) count($1) > 1)",                  // $1 outside structural op
		"(g (dc=com ? sub ? dc=*) sum($2.priority) > 1)",           // $2 outside structural op
		"(c (dc=com ? sub ? dc=*) (dc=com ? sub ? dc=*) min(nosuch) > 1)",
	}
	for _, c := range cases {
		q, err := Parse(c)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c, err)
		}
		if err := Validate(s, q); !errors.Is(err, ErrValidate) {
			t.Errorf("Validate(%q) = %v, want ErrValidate", c, err)
		}
	}
	// Structural $2 is fine.
	ok := MustParse("(c (dc=com ? sub ? dc=*) (dc=com ? sub ? dc=*) sum($2.priority) > 1)")
	if err := Validate(s, ok); err != nil {
		t.Errorf("structural $2 rejected: %v", err)
	}
}

func TestHierOpProperties(t *testing.T) {
	if OpParents.Ternary() || OpChildren.Ternary() || OpAncestors.Ternary() || OpDescendants.Ternary() {
		t.Error("binary ops claim ternary")
	}
	if !OpAncestorsC.Ternary() || !OpDescendantsC.Ternary() {
		t.Error("ternary ops claim binary")
	}
	ops := []HierOp{OpParents, OpChildren, OpAncestors, OpDescendants, OpAncestorsC, OpDescendantsC}
	names := []string{"p", "c", "a", "d", "ac", "dc"}
	for i, op := range ops {
		if op.String() != names[i] {
			t.Errorf("op %d string = %q", i, op)
		}
	}
}

func TestCmpOpCompare(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b int64
		want bool
	}{
		{CmpEQ, 3, 3, true}, {CmpEQ, 3, 4, false},
		{CmpNE, 3, 4, true}, {CmpNE, 3, 3, false},
		{CmpLT, 2, 3, true}, {CmpLT, 3, 3, false},
		{CmpLE, 3, 3, true}, {CmpLE, 4, 3, false},
		{CmpGT, 4, 3, true}, {CmpGT, 3, 3, false},
		{CmpGE, 3, 3, true}, {CmpGE, 2, 3, false},
	}
	for _, c := range cases {
		if got := c.op.Compare(c.a, c.b); got != c.want {
			t.Errorf("%d %s %d = %v", c.a, c.op, c.b, got)
		}
	}
}

func TestAggSelPredicates(t *testing.T) {
	sel, _ := ParseAggSel("count($2) = max(count($2))")
	if !sel.UsesWitness() || !sel.UsesEntrySet() {
		t.Error("count($2)=max(count($2)) uses both witness and entry-set terms")
	}
	sel, _ = ParseAggSel("count(SLAPVPRef) > 1")
	if sel.UsesWitness() || sel.UsesEntrySet() {
		t.Error("count(attr) > 1 is purely entry-local")
	}
	sel, _ = ParseAggSel("min(priority) = min(min(priority))")
	if sel.UsesWitness() {
		t.Error("no $2 here")
	}
	if !sel.UsesEntrySet() {
		t.Error("min(min(..)) is an entry-set aggregate")
	}
}

func TestWhitespaceTolerance(t *testing.T) {
	q, err := Parse("  (\n\t- (dc=com ? sub ? dc=*)\n\t  (dc=org ? sub ? dc=*)\n)  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.(*Bool); !ok {
		t.Fatalf("got %T", q)
	}
}

func TestStringContainsOperands(t *testing.T) {
	q := MustParse(paperQueries["Ex6.2 structural aggregate"].text)
	s := q.String()
	for _, want := range []string{"(c ", "count($2) > 10", "objectclass=topssubscriber", "objectclass=qhp"} {
		if !strings.Contains(strings.ToLower(s), want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
