package query

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/filter"
	"repro/internal/model"
)

// ErrParse reports a malformed query string.
var ErrParse = errors.New("query: parse error")

// Parse parses a query written in the paper's surface syntax, e.g.
//
//	(- (dc=att, dc=com ? sub ? surName=jagadish)
//	   (dc=research, dc=att, dc=com ? sub ? surName=jagadish))
//	(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber)
//	   (dc=att, dc=com ? sub ? objectClass=QHP)
//	   count($2) > 10)
//	(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
//	    (dc=att, dc=com ? sub ? sourcePort=25)
//	    SLATPRef)
//	(g (dc=com ? sub ? objectClass=QHP) count(daysOfWeek) > 1)
//
// The grammar is exactly Figures 7–10: boolean operators are binary,
// hierarchy operators are binary (p, c, a, d) or ternary (ac, dc), all
// optionally followed by an aggregate selection filter; g takes a query
// and a filter; vd/dv take two queries, an attribute name, and an
// optional filter.
func Parse(s string) (Query, error) {
	p := &parser{s: s}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.i != len(p.s) {
		return nil, fmt.Errorf("%w: trailing input %q", ErrParse, p.s[p.i:])
	}
	return q, nil
}

// MustParse is Parse for statically-known queries; it panics on error.
func MustParse(s string) Query {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseLDAP parses an LDAP query "(base ? scope ? filter)" where filter
// may be a full RFC 2254-style boolean combination of atomic filters —
// the baseline language of Section 8.
func ParseLDAP(s string) (*LDAP, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return nil, fmt.Errorf("%w: LDAP query must be parenthesized", ErrParse)
	}
	parts := splitTop(s[1:len(s)-1], '?')
	if len(parts) != 3 {
		return nil, fmt.Errorf("%w: LDAP query needs base ? scope ? filter", ErrParse)
	}
	dn, err := model.ParseDN(strings.TrimSpace(parts[0]))
	if err != nil {
		return nil, err
	}
	scope, err := ParseScope(parts[1])
	if err != nil {
		return nil, err
	}
	f, err := filter.Parse(strings.TrimSpace(parts[2]))
	if err != nil {
		return nil, err
	}
	if err := rejectKNN(f); err != nil {
		return nil, err
	}
	return &LDAP{Base: dn, Scope: scope, Filter: f}, nil
}

// rejectKNN refuses knn atoms inside LDAP composite filters. LDAP
// filters are per-entry predicates; knn is a property of the whole
// candidate set (its top k), so it only composes as an L1–L3 atomic
// query, never under &, |, !.
func rejectKNN(f filter.Filter) error {
	switch g := f.(type) {
	case *filter.Atom:
		if g.Op == filter.OpKNN {
			return fmt.Errorf("%w: knn is not allowed in LDAP filters (use an atomic query)", ErrParse)
		}
	case filter.And:
		for _, k := range g {
			if err := rejectKNN(k); err != nil {
				return err
			}
		}
	case filter.Or:
		for _, k := range g {
			if err := rejectKNN(k); err != nil {
				return err
			}
		}
	case filter.Not:
		return rejectKNN(g.F)
	}
	return nil
}

type parser struct {
	s string
	i int
}

func (p *parser) skipSpace() {
	for p.i < len(p.s) {
		switch p.s[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *parser) fail(format string, args ...any) error {
	return fmt.Errorf("%w at offset %d: %s", ErrParse, p.i, fmt.Sprintf(format, args...))
}

var operators = map[string]bool{
	"&": true, "|": true, "-": true,
	"p": true, "c": true, "a": true, "d": true, "ac": true, "dc": true,
	"g": true, "vd": true, "dv": true,
}

func (p *parser) parseQuery() (Query, error) {
	p.skipSpace()
	if p.i >= len(p.s) || p.s[p.i] != '(' {
		return nil, p.fail("expected '('")
	}
	p.i++ // consume '('
	p.skipSpace()
	// Peek the operator token: letters/symbols up to space or '('.
	start := p.i
	for p.i < len(p.s) && p.s[p.i] != ' ' && p.s[p.i] != '\t' && p.s[p.i] != '\n' && p.s[p.i] != '(' && p.s[p.i] != ')' {
		p.i++
	}
	tok := p.s[start:p.i]
	if operators[tok] {
		return p.parseOperator(tok)
	}
	// Not an operator: atomic query. Rewind and consume to the matching ')'.
	p.i = start
	body, err := p.consumeBalanced()
	if err != nil {
		return nil, err
	}
	return p.parseAtomicBody(body)
}

// consumeBalanced reads up to (and past) the ')' matching the already-
// consumed '(' and returns the content in between.
func (p *parser) consumeBalanced() (string, error) {
	start := p.i
	depth := 0
	for p.i < len(p.s) {
		switch p.s[p.i] {
		case '(':
			depth++
		case ')':
			if depth == 0 {
				body := p.s[start:p.i]
				p.i++
				return body, nil
			}
			depth--
		}
		p.i++
	}
	return "", p.fail("unterminated '('")
}

func (p *parser) parseAtomicBody(body string) (Query, error) {
	parts := splitTop(body, '?')
	if len(parts) != 3 {
		return nil, p.fail("atomic query needs base ? scope ? filter, got %q", body)
	}
	dn, err := model.ParseDN(strings.TrimSpace(parts[0]))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	scope, err := ParseScope(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	atom, err := filter.ParseAtom(strings.TrimSpace(parts[2]))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	return &Atomic{Base: dn, Scope: scope, Filter: atom}, nil
}

func (p *parser) parseOperator(tok string) (Query, error) {
	switch tok {
	case "&", "|", "-":
		q1, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		q2, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectClose(); err != nil {
			return nil, err
		}
		op := map[string]BoolOp{"&": OpAnd, "|": OpOr, "-": OpDiff}[tok]
		return &Bool{Op: op, Q1: q1, Q2: q2}, nil

	case "p", "c", "a", "d", "ac", "dc":
		op := map[string]HierOp{
			"p": OpParents, "c": OpChildren, "a": OpAncestors,
			"d": OpDescendants, "ac": OpAncestorsC, "dc": OpDescendantsC,
		}[tok]
		q1, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		q2, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		h := &Hier{Op: op, Q1: q1, Q2: q2}
		if op.Ternary() {
			if h.Q3, err = p.parseQuery(); err != nil {
				return nil, err
			}
		}
		rest, err := p.consumeBalanced()
		if err != nil {
			return nil, err
		}
		if rest = strings.TrimSpace(rest); rest != "" {
			if h.AggSel, err = ParseAggSel(rest); err != nil {
				return nil, err
			}
		}
		return h, nil

	case "g":
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		rest, err := p.consumeBalanced()
		if err != nil {
			return nil, err
		}
		sel, err := ParseAggSel(strings.TrimSpace(rest))
		if err != nil {
			return nil, err
		}
		return &SimpleAgg{Q: q, AggSel: sel}, nil

	case "vd", "dv":
		op := OpValueDN
		if tok == "dv" {
			op = OpDNValue
		}
		q1, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		q2, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		rest, err := p.consumeBalanced()
		if err != nil {
			return nil, err
		}
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return nil, p.fail("%s needs an attribute name", tok)
		}
		attr := rest
		var sel *AggSel
		if i := strings.IndexAny(rest, " \t\n"); i >= 0 {
			attr = rest[:i]
			selText := strings.TrimSpace(rest[i:])
			if selText != "" {
				if sel, err = ParseAggSel(selText); err != nil {
					return nil, err
				}
			}
		}
		return &EmbedRef{Op: op, Q1: q1, Q2: q2, Attr: model.NormalizeAttr(attr), AggSel: sel}, nil
	}
	return nil, p.fail("unknown operator %q", tok)
}

func (p *parser) expectClose() error {
	p.skipSpace()
	if p.i >= len(p.s) || p.s[p.i] != ')' {
		return p.fail("expected ')'")
	}
	p.i++
	return nil
}

// splitTop splits s on sep occurring at paren depth zero.
func splitTop(s string, sep byte) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

// ParseAggSel parses an aggregate selection filter such as
// "count($2) > 10", "count(SLAPVPRef) > 1", or
// "min(SLARulePriority) = min(min(SLARulePriority))".
func ParseAggSel(s string) (*AggSel, error) {
	s = strings.TrimSpace(s)
	opPos, opLen, op := -1, 0, CmpEQ
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case '<', '>', '=', '!':
			if depth != 0 {
				continue
			}
			switch {
			case strings.HasPrefix(s[i:], "<="):
				op, opLen = CmpLE, 2
			case strings.HasPrefix(s[i:], ">="):
				op, opLen = CmpGE, 2
			case strings.HasPrefix(s[i:], "!="):
				op, opLen = CmpNE, 2
			case s[i] == '<':
				op, opLen = CmpLT, 1
			case s[i] == '>':
				op, opLen = CmpGT, 1
			case s[i] == '=':
				op, opLen = CmpEQ, 1
			default:
				continue // lone '!' is not an operator
			}
			opPos = i
		}
		if opPos >= 0 {
			break
		}
	}
	if opPos < 0 {
		return nil, fmt.Errorf("%w: no comparison in aggregate filter %q", ErrParse, s)
	}
	left, err := parseAggAttr(strings.TrimSpace(s[:opPos]))
	if err != nil {
		return nil, err
	}
	right, err := parseAggAttr(strings.TrimSpace(s[opPos+opLen:]))
	if err != nil {
		return nil, err
	}
	return &AggSel{Left: left, Op: op, Right: right}, nil
}

func parseAggAttr(s string) (AggAttr, error) {
	if s == "" {
		return AggAttr{}, fmt.Errorf("%w: empty aggregate attribute", ErrParse)
	}
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return ConstAttr(v), nil
	}
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return AggAttr{}, fmt.Errorf("%w: bad aggregate attribute %q", ErrParse, s)
	}
	fn, err := ParseAggFunc(s[:open])
	if err != nil {
		return AggAttr{}, fmt.Errorf("%w: %v", ErrParse, err)
	}
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	switch inner {
	case "$2":
		if fn != AggCount {
			return AggAttr{}, fmt.Errorf("%w: only count($2) is allowed, not %s($2)", ErrParse, fn)
		}
		return CountWitness(), nil
	case "$1":
		if fn != AggCount {
			return AggAttr{}, fmt.Errorf("%w: only count($1) is allowed, not %s($1)", ErrParse, fn)
		}
		return AggAttr{Kind: KindEntrySet, Form: SetCount1}, nil
	case "$$":
		if fn != AggCount {
			return AggAttr{}, fmt.Errorf("%w: only count($$) is allowed, not %s($$)", ErrParse, fn)
		}
		return AggAttr{Kind: KindEntrySet, Form: SetCountAll}, nil
	}
	if strings.ContainsRune(inner, '(') {
		// Entry-set aggregate agg1(entry-agg).
		ea, err := parseAggAttr(inner)
		if err != nil {
			return AggAttr{}, err
		}
		if ea.Kind != KindEntry {
			return AggAttr{}, fmt.Errorf("%w: %q must wrap an entry aggregate", ErrParse, s)
		}
		return SetAttr(fn, ea.Entry), nil
	}
	over := VarSelf
	attr := inner
	switch {
	case strings.HasPrefix(inner, "$1."):
		attr = inner[3:]
	case strings.HasPrefix(inner, "$2."):
		over, attr = VarWitness, inner[3:]
	}
	if attr == "" {
		return AggAttr{}, fmt.Errorf("%w: missing attribute in %q", ErrParse, s)
	}
	return EntryAttr(fn, over, model.NormalizeAttr(attr)), nil
}
