package query

import (
	"testing"
)

func TestCompileLDAPShapes(t *testing.T) {
	cases := []struct {
		ldap string
		lang Language
	}{
		{"(dc=com ? sub ? surName=jagadish)", LangL0},
		{"(dc=com ? sub ? (&(surName=jagadish)(priority<3)))", LangL0},
		{"(dc=com ? one ? (|(a=1)(b=2)(c=3)))", LangL0},
		{"(dc=com ? sub ? (!(telephoneNumber=*)))", LangL0},
		{"(dc=com ? base ? (&(|(a=1)(b=2))(!(c=3))))", LangL0},
	}
	for _, c := range cases {
		lq, err := ParseLDAP(c.ldap)
		if err != nil {
			t.Fatalf("%s: %v", c.ldap, err)
		}
		q, err := CompileLDAP(lq)
		if err != nil {
			t.Fatalf("compile %s: %v", c.ldap, err)
		}
		if q.Language() != c.lang {
			t.Errorf("%s compiled into %v", c.ldap, q.Language())
		}
		// The compilation must round-trip through the parser.
		if _, err := Parse(q.String()); err != nil {
			t.Errorf("%s: compiled query unparseable: %s", c.ldap, q)
		}
	}
}

func TestCompileLDAPNotUsesComplement(t *testing.T) {
	lq, err := ParseLDAP("(dc=com ? sub ? (!(mail=*)))")
	if err != nil {
		t.Fatal(err)
	}
	q, err := CompileLDAP(lq)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := q.(*Bool)
	if !ok || b.Op != OpDiff {
		t.Fatalf("negation compiled to %T %s", q, q)
	}
	all, ok := b.Q1.(*Atomic)
	if !ok || all.Filter.Attr != "objectclass" {
		t.Fatalf("complement base = %s", b.Q1)
	}
}
