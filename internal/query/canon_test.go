package query

import (
	"strings"
	"testing"
)

func canon(t *testing.T, text string) string {
	t.Helper()
	key, err := CanonicalText(text)
	if err != nil {
		t.Fatalf("canonicalizing %q: %v", text, err)
	}
	return key
}

func TestCanonicalWhitespaceAndCase(t *testing.T) {
	variants := []string{
		"(dc=att, dc=com ? sub ? objectClass=QHP)",
		"(dc=att,dc=com ? sub ? objectclass=QHP)",
		"(  dc=att ,   dc=com   ?  SUB  ? objectClass=QHP )",
		"(DC=att, DC=com ? Sub ? OBJECTCLASS=QHP)",
	}
	want := canon(t, variants[0])
	for _, v := range variants[1:] {
		if got := canon(t, v); got != want {
			t.Errorf("canonical(%q) = %q, want %q", v, got, want)
		}
	}
}

func TestCanonicalCommutativeSorting(t *testing.T) {
	a := "(dc=com ? sub ? tag=a)"
	b := "(dc=com ? sub ? tag=b)"
	c := "(dc=com ? sub ? tag=c)"
	for _, op := range []string{"&", "|"} {
		ab := canon(t, "("+op+" "+a+" "+b+")")
		ba := canon(t, "("+op+" "+b+" "+a+")")
		if ab != ba {
			t.Errorf("%s not commutative: %q vs %q", op, ab, ba)
		}
		// Associative reassociations share a key too.
		left := canon(t, "("+op+" ("+op+" "+a+" "+b+") "+c+")")
		right := canon(t, "("+op+" "+a+" ("+op+" "+c+" "+b+"))")
		if left != right {
			t.Errorf("%s chain not flattened: %q vs %q", op, left, right)
		}
	}
}

func TestCanonicalDifferenceKeepsOrder(t *testing.T) {
	a := "(dc=com ? sub ? tag=a)"
	b := "(dc=com ? sub ? tag=b)"
	if canon(t, "(- "+a+" "+b+")") == canon(t, "(- "+b+" "+a+")") {
		t.Error("difference operands were commuted")
	}
}

func TestCanonicalDistinguishesDifferentQueries(t *testing.T) {
	pairs := [][2]string{
		{"(dc=com ? sub ? tag=a)", "(dc=com ? sub ? tag=b)"},
		{"(dc=com ? sub ? tag=a)", "(dc=com ? one ? tag=a)"},
		{"(dc=com ? sub ? tag=a)", "(dc=att, dc=com ? sub ? tag=a)"},
		{
			"(d (dc=com ? sub ? tag=a) (dc=com ? sub ? tag=b))",
			"(a (dc=com ? sub ? tag=a) (dc=com ? sub ? tag=b))",
		},
		{
			"(g (dc=com ? sub ? tag=a) count(val) > 1)",
			"(g (dc=com ? sub ? tag=a) count(val) > 2)",
		},
	}
	for _, p := range pairs {
		if canon(t, p[0]) == canon(t, p[1]) {
			t.Errorf("distinct queries share a key: %q vs %q", p[0], p[1])
		}
	}
}

func TestCanonicalNestedOperators(t *testing.T) {
	// Sorting applies below non-commutative operators too.
	q1 := `(d (& (dc=com ? sub ? tag=a) (dc=com ? sub ? tag=b)) (dc=com ? sub ? val>=1) count($2) > 1)`
	q2 := `(d (& (dc=com ? sub ? tag=b) (dc=com ? sub ? tag=a)) (dc=com ? sub ? val>=1) count($2) > 1)`
	if canon(t, q1) != canon(t, q2) {
		t.Errorf("nested commutative operands not sorted:\n%q\n%q", canon(t, q1), canon(t, q2))
	}
	// The embedded-reference form canonicalizes its operands as well.
	r1 := `(vd (| (dc=com ? sub ? tag=a) (dc=com ? sub ? tag=b)) (dc=com ? sub ? val=1) ref)`
	r2 := `(vd (| (dc=com ? sub ? tag=b) (dc=com ? sub ? tag=a)) (dc=com ? sub ? val=1) Ref)`
	if canon(t, r1) != canon(t, r2) {
		t.Errorf("embedref operands not canonical:\n%q\n%q", canon(t, r1), canon(t, r2))
	}
}

func TestCanonicalIsDeterministic(t *testing.T) {
	q := `(| (& (dc=com ? sub ? tag=c) (dc=com ? sub ? tag=a)) (dc=com ? sub ? val<3))`
	first := canon(t, q)
	for i := 0; i < 5; i++ {
		if got := canon(t, q); got != first {
			t.Fatalf("nondeterministic canonical form: %q vs %q", got, first)
		}
	}
	if !strings.Contains(first, "|") {
		t.Fatalf("canonical form lost the operator: %q", first)
	}
}
