package query

import (
	"fmt"
	"strings"
)

// AggFunc is one of the aggregate functions of the Fig 9 grammar. All
// five are "distributive or algebraic" in the sense of Section 6.4, so
// the stack algorithms compute them incrementally.
type AggFunc uint8

// The aggregate functions.
const (
	AggMin AggFunc = iota
	AggMax
	AggCount
	AggSum
	AggAvg
)

func (f AggFunc) String() string {
	switch f {
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "average"
	default:
		return "?"
	}
}

// ParseAggFunc parses an aggregate function name.
func ParseAggFunc(s string) (AggFunc, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "count":
		return AggCount, nil
	case "sum":
		return AggSum, nil
	case "average", "avg":
		return AggAvg, nil
	default:
		return 0, fmt.Errorf("query: unknown aggregate %q", s)
	}
}

// Var identifies what an entry aggregate ranges over inside a structural
// aggregate selection (Definition 6.2): the entry itself ($1 — also the
// implicit target in simple aggregate selection), or its witness set
// ($2).
type Var uint8

// Aggregation targets.
const (
	VarSelf    Var = iota // agg(a) or agg($1.a): values of a in the entry
	VarWitness            // agg($2.a): values of a across the witness set
)

// EntryAgg is an entry aggregate of the Fig 9 grammar: one of
// agg(attr), agg($1.attr), agg($2.attr), or count($2) (Attr empty,
// Fn AggCount, Over VarWitness).
type EntryAgg struct {
	Fn   AggFunc
	Over Var
	Attr string // normalized; empty only for count($2)
}

func (e EntryAgg) String() string {
	switch {
	case e.Attr == "" && e.Over == VarWitness:
		return "count($2)"
	case e.Over == VarWitness:
		return fmt.Sprintf("%s($2.%s)", e.Fn, e.Attr)
	default:
		return fmt.Sprintf("%s(%s)", e.Fn, e.Attr)
	}
}

// AggAttrKind discriminates AggAttr.
type AggAttrKind uint8

// Aggregate attribute kinds (Fig 9: AggAttribute := IntConstant |
// EntryAggAttr | EntrySetAggAttr).
const (
	KindConst AggAttrKind = iota
	KindEntry
	KindEntrySet
)

// SetForm discriminates the entry-set aggregate special forms.
type SetForm uint8

// Entry-set aggregate forms: agg1(ea), count($1), count($$).
const (
	SetOfEntry  SetForm = iota // OuterFn(Entry)
	SetCount1                  // count($1): size of M(Q1)
	SetCountAll                // count($$): size of M(Q) (simple agg selection)
)

// AggAttr is an aggregate attribute: an integer constant, an entry
// aggregate, or an entry-set aggregate.
type AggAttr struct {
	Kind    AggAttrKind
	Const   int64    // KindConst
	Entry   EntryAgg // KindEntry, or operand of KindEntrySet SetOfEntry
	OuterFn AggFunc  // KindEntrySet SetOfEntry
	Form    SetForm  // KindEntrySet
}

func (a AggAttr) String() string {
	switch a.Kind {
	case KindConst:
		return fmt.Sprint(a.Const)
	case KindEntry:
		return a.Entry.String()
	default:
		switch a.Form {
		case SetCount1:
			return "count($1)"
		case SetCountAll:
			return "count($$)"
		default:
			return fmt.Sprintf("%s(%s)", a.OuterFn, a.Entry)
		}
	}
}

// ConstAttr builds an integer-constant aggregate attribute.
func ConstAttr(v int64) AggAttr { return AggAttr{Kind: KindConst, Const: v} }

// EntryAttr builds an entry aggregate attribute.
func EntryAttr(fn AggFunc, over Var, attr string) AggAttr {
	return AggAttr{Kind: KindEntry, Entry: EntryAgg{Fn: fn, Over: over, Attr: attr}}
}

// CountWitness builds count($2).
func CountWitness() AggAttr { return EntryAttr(AggCount, VarWitness, "") }

// SetAttr builds the entry-set aggregate agg1(ea).
func SetAttr(outer AggFunc, ea EntryAgg) AggAttr {
	return AggAttr{Kind: KindEntrySet, OuterFn: outer, Entry: ea, Form: SetOfEntry}
}

// CmpOp is the integer comparison of an aggregate selection filter.
type CmpOp uint8

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (o CmpOp) String() string {
	switch o {
	case CmpEQ:
		return "="
	case CmpNE:
		return "!="
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	default:
		return "?"
	}
}

// Compare applies the operator to two int64 operands.
func (o CmpOp) Compare(a, b int64) bool {
	switch o {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	default:
		return false
	}
}

// AggSel is an aggregate selection filter: an arithmetic condition
// between two aggregate attributes (Section 6.2).
type AggSel struct {
	Left  AggAttr
	Op    CmpOp
	Right AggAttr
}

func (s *AggSel) String() string {
	return fmt.Sprintf("%s %s %s", s.Left, s.Op, s.Right)
}

// UsesWitness reports whether either side aggregates over $2 — only
// meaningful (and only legal) on structural operators.
func (s *AggSel) UsesWitness() bool {
	return aggUsesWitness(s.Left) || aggUsesWitness(s.Right)
}

// UsesEntrySet reports whether either side is an entry-set aggregate,
// which forces a global pre-pass over the whole operand list.
func (s *AggSel) UsesEntrySet() bool {
	return s.Left.Kind == KindEntrySet || s.Right.Kind == KindEntrySet
}

func aggUsesWitness(a AggAttr) bool {
	switch a.Kind {
	case KindEntry:
		return a.Entry.Over == VarWitness
	case KindEntrySet:
		return a.Form == SetOfEntry && a.Entry.Over == VarWitness
	default:
		return false
	}
}
