package query

import (
	"testing"
)

// FuzzCanonical checks the cache-key invariants on anything the parser
// accepts: a parsed query's String() must itself parse, printing must
// not change the canonical key (else semantically identical queries
// split cache slots), and canonicalization must be deterministic.
func FuzzCanonical(f *testing.F) {
	f.Add("(dc=att, dc=com ? sub ? objectClass=QHP)")
	f.Add("(& (dc=com ? sub ? tag=a) (dc=com ? sub ? tag=b))")
	f.Add("(- (dc=com ? sub ? tag=a) (dc=com ? base ? tag=b))")
	f.Add("(> (dc=com ? sub ? objectClass=QHP) (dc=com ? sub ? priority<=2))")
	f.Add("(g (dc=com ? sub ? objectClass=QHP) min(priority))")
	f.Add("(ldap dc=com ? sub ? (&(objectClass=QHP)(priority<=2)))")
	f.Fuzz(func(t *testing.T, text string) {
		q, err := Parse(text)
		if err != nil {
			return
		}
		key := Canonical(q)
		if key != Canonical(q) {
			t.Fatalf("Canonical not deterministic for %q", text)
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("String() %q of accepted query %q does not re-parse: %v", rendered, text, err)
		}
		if key2 := Canonical(q2); key2 != key {
			t.Fatalf("print/parse changed canonical key:\n  input  %q\n  render %q\n  key    %q\n  key2   %q", text, rendered, key, key2)
		}
	})
}
