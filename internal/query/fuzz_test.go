package query

import (
	"testing"
)

// FuzzCanonical checks the cache-key invariants on anything the parser
// accepts: a parsed query's String() must itself parse, printing must
// not change the canonical key (else semantically identical queries
// split cache slots), and canonicalization must be deterministic.
func FuzzCanonical(f *testing.F) {
	f.Add("(dc=att, dc=com ? sub ? objectClass=QHP)")
	f.Add("(& (dc=com ? sub ? tag=a) (dc=com ? sub ? tag=b))")
	f.Add("(- (dc=com ? sub ? tag=a) (dc=com ? base ? tag=b))")
	f.Add("(> (dc=com ? sub ? objectClass=QHP) (dc=com ? sub ? priority<=2))")
	f.Add("(g (dc=com ? sub ? objectClass=QHP) min(priority))")
	f.Add("(ldap dc=com ? sub ? (&(objectClass=QHP)(priority<=2)))")
	f.Add("(dc=com ? sub ? knn(embedding,[0.5,-1.25],3))")
	f.Add("(& (dc=com ? sub ? knn(embedding,[1,2],5)) (dc=com ? sub ? tag=a))")
	f.Add("(dc=com ? one ? knn(embedding,[1e30,-0],1))")
	f.Add("(dc=com ? sub ? knn(embedding,[1,2],99999999999999999999))") // k overflow: reject
	f.Add("(dc=com ? sub ? knn(embedding,[Inf],1))")                    // non-finite: reject
	f.Add("(ldap dc=com ? sub ? knn(embedding,[1],1))")                 // knn not in LDAP: reject
	f.Fuzz(func(t *testing.T, text string) {
		q, err := Parse(text)
		if err != nil {
			return
		}
		key := Canonical(q)
		if key != Canonical(q) {
			t.Fatalf("Canonical not deterministic for %q", text)
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("String() %q of accepted query %q does not re-parse: %v", rendered, text, err)
		}
		if key2 := Canonical(q2); key2 != key {
			t.Fatalf("print/parse changed canonical key:\n  input  %q\n  render %q\n  key    %q\n  key2   %q", text, rendered, key, key2)
		}
	})
}
