package engine

import (
	"context"
	"errors"
	"sync"

	"repro/internal/obs"
	"repro/internal/plist"
	"repro/internal/query"
)

// evalChildren evaluates the operands of one operator and returns their
// result lists in operand order. This is the engine's only scheduling
// point (DESIGN.md §9): with Workers > 1 and no tracer attached, each
// operand after the first is handed to a pool goroutine when a worker
// slot is free, and evaluated inline otherwise; the first operand always
// runs inline so the calling goroutine does useful work instead of
// blocking. Slot acquisition never blocks, so nested operators cannot
// deadlock on the pool however deep the plan is.
//
// The serial path is taken when the engine has no pool or when the
// context carries an obs.Tracer: spans attribute exact per-operator I/O
// deltas, which is only sound when operators run one at a time (the
// ownership rule in pager.Stats), and the tracer itself is
// single-goroutine. EXPLAIN therefore observes the serial plan; plain
// evaluation runs parallel. Results are identical either way.
//
// On error, sibling evaluations are cancelled, every already-produced
// list is freed, and the first non-cancellation error is returned (so a
// real failure is not masked by the context.Canceled its cancellation
// induced in siblings).
func (e *Engine) evalChildren(ctx context.Context, qs ...query.Query) ([]*plist.List, error) {
	if e.sem == nil || len(qs) < 2 || obs.FromContext(ctx) != nil {
		out := make([]*plist.List, len(qs))
		for i, q := range qs {
			l, err := e.EvalContext(ctx, q)
			if err != nil {
				freeAll(out...)
				return nil, err
			}
			out[i] = l
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]*plist.List, len(qs))
	errs := make([]error, len(qs))
	var wg sync.WaitGroup
	for i := 1; i < len(qs); i++ {
		// Under cost-based hints only subtrees the planner marked as
		// worth a goroutine are offloaded; tiny operands run inline so
		// the handoff overhead is never paid for a one-page list.
		if e.hints != nil && e.hints.Offload != nil && !e.hints.Offload[qs[i]] {
			out[i], errs[i] = e.EvalContext(ctx, qs[i])
			if errs[i] != nil {
				cancel()
			}
			continue
		}
		select {
		case e.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-e.sem }()
				out[i], errs[i] = e.EvalContext(ctx, qs[i])
				if errs[i] != nil {
					cancel()
				}
			}(i)
		default:
			out[i], errs[i] = e.EvalContext(ctx, qs[i])
			if errs[i] != nil {
				cancel()
			}
		}
	}
	out[0], errs[0] = e.EvalContext(ctx, qs[0])
	if errs[0] != nil {
		cancel()
	}
	wg.Wait()

	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		freeAll(out...)
		return nil, firstErr
	}
	return out, nil
}
