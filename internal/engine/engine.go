// Package engine evaluates L0–L3 query trees against a directory store
// using the external-memory operators of "Querying Network Directories":
// sort-merge set operations (Section 4.2), the hierarchy stack
// algorithms HSPC/HSAD/HSADc (Sections 5–6), and embedded-reference
// joins (Section 7), all over sorted reverse-DN-key lists so no
// intermediate re-sorting is ever needed (Section 8.2).
//
// With Config.Workers > 1 the engine evaluates independent plan
// subtrees — the operands of &, |, - and of the hierarchy and
// embedded-reference operators — concurrently on a bounded worker
// pool, joining at the existing sort-merge points (DESIGN.md §9).
// Results are byte-identical at any worker count.
package engine

import (
	"context"
	"fmt"
	"io"
	"strconv"

	"repro/internal/extsort"
	"repro/internal/filter"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pager"
	"repro/internal/planner"
	"repro/internal/plist"
	"repro/internal/query"
	"repro/internal/store"
)

// Config tunes the engine's constant-memory budget.
type Config struct {
	// StackWindow is the number of resident pages per algorithm stack
	// (default 4). Smaller windows spill more; Theorem 5.1's linearity
	// holds for any constant window.
	StackWindow int
	// AnnPoolPages is the buffer-pool capacity for annotation files
	// (default 16).
	AnnPoolPages int
	// SortMemBytes bounds the external sorter's run-formation memory
	// (default: extsort's own default).
	SortMemBytes int
	// Naive switches every operator to its quadratic "straightforward
	// way" baseline (Sections 5.3 and 7.2) — for the crossover
	// experiments.
	Naive bool
	// Workers bounds the number of goroutines evaluating independent
	// plan subtrees concurrently (and the external sorter's
	// parallelism). 0 or 1 evaluates serially. Results are identical
	// at any setting; see DESIGN.md §9.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.StackWindow < 2 {
		c.StackWindow = 4
	}
	if c.AnnPoolPages < 2 {
		c.AnnPoolPages = 16
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// Engine evaluates L0..L3 query trees bottom-up against a directory
// store, pipelining sorted intermediate lists between operators
// (Section 8.2): atomic queries evaluate through the store's indexes,
// every operator consumes sorted lists and emits a sorted list, and no
// intermediate re-sorting is ever needed.
type Engine struct {
	st       *store.Store
	cfg      Config
	resolver func(context.Context, *query.Atomic) (*plist.List, error)
	// sem holds Workers-1 grantable worker slots (nil when serial).
	// Acquisition is always non-blocking with an inline-evaluation
	// fallback, so nested operators can never deadlock on it.
	sem chan struct{}
	// arena, when set, is the per-query workspace of a Session:
	// intermediates and results are written to its scratch disk and
	// store reads are charged to its meter, leaving the store's disk
	// read-only. Nil on the base engine (legacy shared-disk evaluation).
	arena *pager.Arena
	// hints, when set, carries the cost-based planner's per-node
	// decisions for the exact tree being evaluated: forced access paths
	// per atomic and the operand subtrees worth a pool goroutine. Nil
	// evaluates with the store's own path choices and opportunistic
	// offload (the pre-cost-planner behavior).
	hints *planner.Hints
}

// SetResolver installs an atomic-query resolver consulted instead of the
// local store. The distributed evaluator of Section 8.3 uses this to
// ship atomic sub-queries to the directory server owning their base DN
// and feed the returned sorted lists into the local operator pipeline.
// The context passed to EvalContext flows through unchanged, so remote
// resolution honors the caller's deadline and cancellation.
func (e *Engine) SetResolver(r func(context.Context, *query.Atomic) (*plist.List, error)) {
	e.resolver = r
}

// New creates an engine over a store.
func New(st *store.Store, cfg Config) *Engine {
	e := &Engine{st: st, cfg: cfg.withDefaults()}
	if e.cfg.Workers > 1 {
		e.sem = make(chan struct{}, e.cfg.Workers-1)
	}
	return e
}

// Store returns the engine's store.
func (e *Engine) Store() *store.Store { return e.st }

// Session returns a per-query view of the engine bound to the given
// arena: atomic queries evaluate through the store's arena path, every
// intermediate and result list lands on the arena's scratch disk, and
// the store's disk is only read (with reads charged to the arena's
// meter). Sessions share the base engine's store, configuration,
// resolver, and worker semaphore — the worker budget is global across
// concurrent sessions — so creating one is a struct copy. Each arena
// must be used by at most one evaluation at a time; concurrent queries
// take one session each.
func (e *Engine) Session(a *pager.Arena) *Engine {
	s := *e
	s.arena = a
	return &s
}

// WithHints returns a view of the engine that evaluates under the
// cost-based planner's decisions: atomics listed in h.Path run their
// chosen access path (store.EvalPath) instead of the store's own
// choice, and when h.Offload is non-nil only marked operand subtrees
// are handed to the worker pool. Hints are keyed by node pointer, so
// the view must evaluate the exact tree the planner returned. A nil h
// returns the engine unchanged.
func (e *Engine) WithHints(h *planner.Hints) *Engine {
	if h == nil {
		return e
	}
	s := *e
	s.hints = h
	return &s
}

// disk returns the device operator intermediates are written to: the
// session's scratch disk, or (legacy shared-disk evaluation) the
// store's own disk.
func (e *Engine) disk() *pager.Disk {
	if e.arena != nil {
		return e.arena.Scratch()
	}
	return e.st.Disk()
}

func (e *Engine) sortCfg() extsort.Config {
	return extsort.Config{MemBytes: e.cfg.SortMemBytes, Workers: e.cfg.Workers}
}

// Eval evaluates a query tree and returns the result list, sorted by
// reverse-DN key. Intermediate lists are freed as they are consumed.
func (e *Engine) Eval(q query.Query) (*plist.List, error) {
	return e.EvalContext(context.Background(), q)
}

// EvalContext is Eval with deadline and cancellation propagation: the
// context is checked before each operator and handed to the atomic
// resolver, so a distributed evaluation stops promptly when the caller
// gives up (Section 8.3 queries must fail cleanly, never hang, when
// remote servers are unreachable).
//
// When the context carries an obs.Tracer, every operator is wrapped in
// a span recording its wall time, input/output cardinalities, and exact
// pager.Stats delta — the per-operator cost breakdown the paper's
// Section 9 tables report, measured live. Without a tracer the
// instrumentation is a nil check per node.
func (e *Engine) EvalContext(ctx context.Context, q query.Query) (*plist.List, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := obs.FromContext(ctx)
	sp := tr.Start(opName(q), opDetail(q))
	if sp != nil && e.cfg.Naive {
		sp.Tag("impl", "naive")
	}
	l, err := e.evalNode(ctx, sp, q)
	if err != nil {
		tr.Fail(sp, err)
		return nil, err
	}
	tr.End(sp, l.Count())
	return l, nil
}

// opName returns the span mnemonic for a query node — the paper's
// operator names: atomic, ldap, the L0 set operators, p/c/a/d/ac/dc,
// g, and vd/dv.
func opName(q query.Query) string {
	switch n := q.(type) {
	case *query.Atomic:
		return "atomic"
	case *query.LDAP:
		return "ldap"
	case *query.Bool:
		return n.Op.String()
	case *query.Hier:
		return n.Op.String()
	case *query.SimpleAgg:
		return "g"
	case *query.EmbedRef:
		return n.Op.String()
	default:
		return fmt.Sprintf("%T", q)
	}
}

// opDetail returns the span detail: leaves carry their query text
// (interior operators are identified by structure), embedded
// references carry the join attribute.
func opDetail(q query.Query) string {
	switch n := q.(type) {
	case *query.Atomic:
		return n.String()
	case *query.LDAP:
		return n.String()
	case *query.EmbedRef:
		return n.Attr
	default:
		return ""
	}
}

// evalNode dispatches one operator under an open span (sp may be nil).
// Children recurse through EvalContext, so their spans nest under sp
// and sp's I/O delta covers the whole subtree.
func (e *Engine) evalNode(ctx context.Context, sp *obs.Span, q query.Query) (*plist.List, error) {
	switch n := q.(type) {
	case *query.Atomic:
		if e.resolver != nil {
			return e.resolver(ctx, n)
		}
		forced := ""
		if e.hints != nil {
			forced = e.hints.Path[n]
		}
		if sp != nil {
			// Surface the plan on the operator's span — access path,
			// catalog estimate, scope depth, filter attribute — so trace
			// trees show which plan ran next to its exact page I/O, and
			// qstats can fold estimated-vs-actual selectivity per
			// attribute and per (op, depth, path) class.
			plan := e.st.ExplainAtomic(n)
			path := plan.Path
			if forced != "" {
				path = forced
				sp.Tag("forced", "cost")
			}
			sp.Tag("path", path)
			sp.Tag("est", strconv.FormatInt(plan.EstHits, 10))
			sp.Tag("depth", strconv.Itoa(n.Base.Depth()))
			sp.Tag("attr", n.Filter.Attr)
			if n.Filter.Op == filter.OpKNN {
				sp.Tag("knn", path)
			}
		}
		if forced != "" {
			if e.arena != nil {
				return e.st.EvalPathArena(e.arena, n, forced)
			}
			return e.st.EvalPath(n, forced)
		}
		if e.arena != nil {
			return e.st.EvalArena(e.arena, n)
		}
		return e.st.Eval(n)

	case *query.LDAP:
		if e.arena != nil {
			return e.st.EvalLDAPArena(e.arena, n)
		}
		return e.st.EvalLDAP(n)

	case *query.Bool:
		ls, err := e.evalChildren(ctx, n.Q1, n.Q2)
		if err != nil {
			return nil, err
		}
		l1, l2 := ls[0], ls[1]
		defer freeAll(l1, l2)
		sp.SetIn(l1.Count(), l2.Count())
		if e.cfg.Naive {
			return e.NaiveBool(n.Op, l1, l2)
		}
		return e.EvalBool(n.Op, l1, l2)

	case *query.Hier:
		qs := []query.Query{n.Q1, n.Q2}
		if n.Q3 != nil {
			qs = append(qs, n.Q3)
		}
		ls, err := e.evalChildren(ctx, qs...)
		if err != nil {
			return nil, err
		}
		l1, l2 := ls[0], ls[1]
		var l3 *plist.List
		if len(ls) == 3 {
			l3 = ls[2]
		}
		defer freeAll(l1, l2, l3)
		if l3 != nil {
			sp.SetIn(l1.Count(), l2.Count(), l3.Count())
		} else {
			sp.SetIn(l1.Count(), l2.Count())
		}
		if e.cfg.Naive {
			return e.NaiveHier(n.Op, l1, l2, l3, n.AggSel)
		}
		return e.EvalHier(n.Op, l1, l2, l3, n.AggSel)

	case *query.SimpleAgg:
		l1, err := e.EvalContext(ctx, n.Q)
		if err != nil {
			return nil, err
		}
		defer freeAll(l1)
		sp.SetIn(l1.Count())
		return e.EvalSimpleAgg(l1, n.AggSel)

	case *query.EmbedRef:
		ls, err := e.evalChildren(ctx, n.Q1, n.Q2)
		if err != nil {
			return nil, err
		}
		l1, l2 := ls[0], ls[1]
		defer freeAll(l1, l2)
		sp.SetIn(l1.Count(), l2.Count())
		if e.cfg.Naive {
			return e.NaiveEmbedRef(n.Op, l1, l2, n.Attr, n.AggSel)
		}
		return e.EvalEmbedRef(n.Op, l1, l2, n.Attr, n.AggSel)

	default:
		return nil, fmt.Errorf("engine: unknown query node %T", q)
	}
}

// EvalString parses, validates, and evaluates a query in the paper's
// surface syntax.
func (e *Engine) EvalString(text string) (*plist.List, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	if err := query.Validate(e.st.Schema(), q); err != nil {
		return nil, err
	}
	return e.Eval(q)
}

// Entries evaluates a query and drains the result into memory — for
// small results, tools, and tests.
func (e *Engine) Entries(q query.Query) ([]*model.Entry, error) {
	l, err := e.Eval(q)
	if err != nil {
		return nil, err
	}
	recs, err := plist.Drain(l)
	if err != nil {
		return nil, err
	}
	out := make([]*model.Entry, len(recs))
	for i, r := range recs {
		out[i] = r.Entry
	}
	return out, l.Free()
}

func freeAll(ls ...*plist.List) {
	for _, l := range ls {
		if l != nil {
			_ = l.Free()
		}
	}
}

// clean strips merge labels and operator annotations so results compose.
func clean(rec *plist.Record) *plist.Record {
	return &plist.Record{Key: rec.Key, Entry: rec.Entry}
}

// EvalBool computes the L0 boolean operators by the linear list-merge
// technique of Section 4.2 (after Jacobson et al. [21]): one synchronized
// scan of both sorted inputs, output written in sorted order.
func (e *Engine) EvalBool(op query.BoolOp, l1, l2 *plist.List) (*plist.List, error) {
	m := plist.NewMerge(l1.Reader(), l2.Reader())
	w := plist.NewWriter(e.disk())
	for {
		rec, err := m.Next()
		if err == io.EOF {
			return w.Close()
		}
		if err != nil {
			return nil, err
		}
		in1, in2 := rec.HasLabel(1), rec.HasLabel(2)
		keep := false
		switch op {
		case query.OpAnd:
			keep = in1 && in2
		case query.OpOr:
			keep = in1 || in2
		case query.OpDiff:
			keep = in1 && !in2
		}
		if keep {
			if err := w.Append(clean(rec)); err != nil {
				return nil, err
			}
		}
	}
}
