package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/query"
)

// TestTheorem82d verifies Theorem 8.2(d) constructively on randomized
// strict forests: L0 + {ac, dc} expresses all of p, c, a, d.
//
//	(p Q1 Q2) = (ac Q1 Q2 ALL)    ALL = (null-dn ? sub ? objectClass=*)
//	(c Q1 Q2) = (dc Q1 Q2 ALL)    — every entry blocks, so only the
//	                                immediate relative survives
//	(a Q1 Q2) = (ac Q1 Q2 NONE)   NONE = a self-difference: no blockers
//	(d Q1 Q2) = (dc Q1 Q2 NONE)
//
// The ALL encodings additionally require the strict-forest property
// (every parent present), which the random generator guarantees by
// construction.
func TestTheorem82d(t *testing.T) {
	const all = `( ? sub ? objectClass=*)`
	const none = `(- ( ? base ? objectClass=*) ( ? base ? objectClass=*))`
	q1, q2 := `( ? sub ? tag=a)`, `( ? sub ? tag=b)`

	encodings := []struct {
		native, encoded string
	}{
		{fmt.Sprintf("(p %s %s)", q1, q2), fmt.Sprintf("(ac %s %s %s)", q1, q2, all)},
		{fmt.Sprintf("(c %s %s)", q1, q2), fmt.Sprintf("(dc %s %s %s)", q1, q2, all)},
		{fmt.Sprintf("(a %s %s)", q1, q2), fmt.Sprintf("(ac %s %s %s)", q1, q2, none)},
		{fmt.Sprintf("(d %s %s)", q1, q2), fmt.Sprintf("(dc %s %s %s)", q1, q2, none)},
	}
	r := rand.New(rand.NewSource(121))
	for trial := 0; trial < 5; trial++ {
		in := randForest(t, r, 80)
		if err := in.Validate(true); err != nil {
			t.Fatalf("random forest not strict: %v", err)
		}
		e := newEngine(t, in, Config{})
		for _, enc := range encodings {
			ln, err := e.Eval(query.MustParse(enc.native))
			if err != nil {
				t.Fatal(err)
			}
			le, err := e.Eval(query.MustParse(enc.encoded))
			if err != nil {
				t.Fatal(err)
			}
			kn, ke := resultKeys(t, ln), resultKeys(t, le)
			if fmt.Sprint(kn) != fmt.Sprint(ke) {
				t.Errorf("trial %d: %s != %s (%d vs %d entries)",
					trial, enc.native, enc.encoded, len(kn), len(ke))
			}
		}
	}
}
