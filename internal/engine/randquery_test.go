package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/filter"
	"repro/internal/model"
	"repro/internal/query"
)

// randQuery generates a random query tree of bounded depth over the
// random-forest vocabulary, covering every node type and aggregate
// form. Together with TestQuickRandomQueriesMatchOracle it extends the
// fixed query pool to the full AST space.
func randQuery(r *rand.Rand, depth int) query.Query {
	if depth <= 0 || r.Intn(3) == 0 {
		return randAtomic(r)
	}
	switch r.Intn(8) {
	case 0, 1:
		return &query.Bool{
			Op: query.BoolOp(r.Intn(3)),
			Q1: randQuery(r, depth-1),
			Q2: randQuery(r, depth-1),
		}
	case 2, 3, 4:
		op := query.HierOp(r.Intn(6))
		h := &query.Hier{Op: op, Q1: randQuery(r, depth-1), Q2: randQuery(r, depth-1)}
		if op.Ternary() {
			h.Q3 = randQuery(r, depth-1)
		}
		if r.Intn(2) == 0 {
			h.AggSel = randAggSel(r, true)
		}
		return h
	case 5:
		return &query.SimpleAgg{Q: randQuery(r, depth-1), AggSel: randAggSel(r, false)}
	default:
		e := &query.EmbedRef{
			Op:   query.RefOp(r.Intn(2)),
			Q1:   randQuery(r, depth-1),
			Q2:   randQuery(r, depth-1),
			Attr: "ref",
		}
		if r.Intn(2) == 0 {
			e.AggSel = randAggSel(r, true)
		}
		return e
	}
}

func randAtomic(r *rand.Rand) *query.Atomic {
	bases := []string{"", "n=e0", "n=e1, n=e0"}
	scopes := []query.Scope{query.ScopeBase, query.ScopeOne, query.ScopeSub, query.ScopeSub}
	atoms := []func() *filter.Atom{
		func() *filter.Atom { return filter.Eq("tag", string(rune('a'+r.Intn(3)))) },
		func() *filter.Atom { return filter.Present("val") },
		func() *filter.Atom { return filter.NewAtom("val", filter.OpLT, fmt.Sprint(r.Intn(8))) },
		func() *filter.Atom { return filter.NewAtom("val", filter.OpGE, fmt.Sprint(r.Intn(8))) },
		func() *filter.Atom { return filter.Eq("n", fmt.Sprintf("e%d*", r.Intn(3))) },
		func() *filter.Atom { return filter.Present("objectclass") },
	}
	return &query.Atomic{
		Base:   model.MustParseDN(bases[r.Intn(len(bases))]),
		Scope:  scopes[r.Intn(len(scopes))],
		Filter: atoms[r.Intn(len(atoms))](),
	}
}

func randAggSel(r *rand.Rand, structural bool) *query.AggSel {
	fns := []query.AggFunc{query.AggMin, query.AggMax, query.AggCount, query.AggSum, query.AggAvg}
	mkSide := func() query.AggAttr {
		k := r.Intn(4)
		if !structural && k >= 2 {
			k = r.Intn(2)
		}
		switch k {
		case 0:
			return query.ConstAttr(int64(r.Intn(6)))
		case 1:
			return query.EntryAttr(fns[r.Intn(len(fns))], query.VarSelf, "val")
		case 2:
			if r.Intn(2) == 0 {
				return query.CountWitness()
			}
			return query.EntryAttr(fns[r.Intn(len(fns))], query.VarWitness, "val")
		default:
			if r.Intn(3) == 0 {
				return query.AggAttr{Kind: query.KindEntrySet, Form: query.SetCountAll}
			}
			inner := query.EntryAgg{Fn: fns[r.Intn(len(fns))], Over: query.Var(r.Intn(2)), Attr: "val"}
			if r.Intn(4) == 0 {
				inner = query.EntryAgg{Fn: query.AggCount, Over: query.VarWitness} // count($2)
			}
			return query.SetAttr(fns[r.Intn(len(fns))], inner)
		}
	}
	return &query.AggSel{Left: mkSide(), Op: query.CmpOp(r.Intn(6)), Right: mkSide()}
}

func TestQuickRandomQueriesMatchOracle(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		in := randForest(t, r, 15+r.Intn(60))
		e := newEngine(t, in, Config{StackWindow: 2})
		q := randQuery(r, 1+r.Intn(2))
		if err := query.Validate(in.Schema(), q); err != nil {
			t.Fatalf("generator produced invalid query %s: %v", q, err)
		}
		// Round-trip through the parser too: the printed form must mean
		// the same thing.
		q2, err := query.Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse of %s: %v", q, err)
		}
		want := oracleEval(in, q).sortedKeys()
		for i, qq := range []query.Query{q, q2} {
			l, err := e.Eval(qq)
			if err != nil {
				t.Fatalf("trial %d variant %d eval %s: %v", trial, i, qq, err)
			}
			got := resultKeys(t, l)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d variant %d: %s\n got %v\nwant %v", trial, i, qq, got, want)
			}
		}
	}
}

func TestRandomQueriesNaiveAgreesToo(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	trials := 25
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		in := randForest(t, r, 10+r.Intn(40))
		e := newEngine(t, in, Config{Naive: true})
		q := randQuery(r, 1+r.Intn(2))
		want := oracleEval(in, q).sortedKeys()
		l, err := e.Eval(q)
		if err != nil {
			t.Fatalf("trial %d naive eval %s: %v", trial, q, err)
		}
		got := resultKeys(t, l)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: %s\n got %v\nwant %v", trial, q, got, want)
		}
	}
}
