package engine

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pager"
)

// annFile is the "associate values with entry rt in list L1" step of the
// stack algorithms: a fixed-slot array of per-entry annotations, slot i
// belonging to the i-th record of L1 in key order. Phase 1 writes slots
// in pop (post-) order through a small pinning pool — the paper's
// in-place annotation of L1 — and phase 2 reads them sequentially
// alongside a rescan of L1. Pops have strong page locality, so total
// annotation I/O stays proportional to |L1|/B_ann.
type annFile struct {
	pool     *pager.Pool
	disk     *pager.Disk
	slotSize int
	perPage  int
	pages    []pager.PageID
}

func newAnnFile(disk *pager.Disk, poolPages, slotSize int, nSlots int64) (*annFile, error) {
	if slotSize <= 0 || slotSize > disk.PageSize() {
		return nil, fmt.Errorf("engine: bad annotation slot size %d", slotSize)
	}
	f := &annFile{
		pool:     pager.NewPool(disk, poolPages),
		disk:     disk,
		slotSize: slotSize,
		perPage:  disk.PageSize() / slotSize,
	}
	nPages := (nSlots + int64(f.perPage) - 1) / int64(f.perPage)
	for i := int64(0); i < nPages; i++ {
		id, err := disk.Alloc()
		if err != nil {
			return nil, err
		}
		f.pages = append(f.pages, id)
	}
	return f, nil
}

func (f *annFile) frame(slot int64) (*pager.Frame, int, error) {
	pi := int(slot / int64(f.perPage))
	if pi < 0 || pi >= len(f.pages) {
		return nil, 0, fmt.Errorf("engine: annotation slot %d out of range", slot)
	}
	fr, err := f.pool.Get(f.pages[pi])
	if err != nil {
		return nil, 0, err
	}
	return fr, int(slot%int64(f.perPage)) * f.slotSize, nil
}

// setStats writes the per-spec statistics for one slot.
func (f *annFile) setStats(slot int64, stats []aggStats) error {
	fr, off, err := f.frame(slot)
	if err != nil {
		return err
	}
	defer f.pool.Unpin(fr)
	b := fr.Data[off : off+f.slotSize]
	i := 0
	for _, s := range stats {
		for _, v := range s.encode(nil) {
			binary.LittleEndian.PutUint64(b[i:], uint64(v))
			i += 8
		}
	}
	fr.SetDirty()
	return nil
}

// getStats reads the per-spec statistics for one slot.
func (f *annFile) getStats(slot int64, nSpecs int) ([]aggStats, error) {
	fr, off, err := f.frame(slot)
	if err != nil {
		return nil, err
	}
	defer f.pool.Unpin(fr)
	b := fr.Data[off : off+f.slotSize]
	out := make([]aggStats, nSpecs)
	ints := make([]int64, statsInts)
	i := 0
	for si := 0; si < nSpecs; si++ {
		for j := 0; j < statsInts; j++ {
			ints[j] = int64(binary.LittleEndian.Uint64(b[i:]))
			i += 8
		}
		out[si] = decodeStats(ints)
	}
	return out, nil
}

// free releases the annotation pages.
func (f *annFile) free() {
	for _, id := range f.pages {
		_ = f.disk.Free(id)
	}
	f.pages = nil
}

// annSlotSize returns the slot size for nSpecs tracked aggregates.
func annSlotSize(nSpecs int) int { return nSpecs * statsInts * 8 }
