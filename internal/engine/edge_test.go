package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/query"
)

// TestOperatorEdgeCases pins down the degenerate shapes: empty
// operands on either side, identical operands, and whole-instance
// operands, for every operator family.
func TestOperatorEdgeCases(t *testing.T) {
	r := rand.New(rand.NewSource(141))
	in := randForest(t, r, 60)
	e := newEngine(t, in, Config{})

	const (
		empty = `(- ( ? base ? objectClass=*) ( ? base ? objectClass=*))`
		all   = `( ? sub ? objectClass=*)`
		some  = `( ? sub ? tag=a)`
	)
	cases := []string{
		// Boolean with empties.
		fmt.Sprintf("(& %s %s)", empty, all),
		fmt.Sprintf("(| %s %s)", empty, some),
		fmt.Sprintf("(- %s %s)", some, empty),
		fmt.Sprintf("(- %s %s)", empty, some),
		// Hierarchy with empty operands on each side.
		fmt.Sprintf("(a %s %s)", empty, all),
		fmt.Sprintf("(a %s %s)", all, empty),
		fmt.Sprintf("(d %s %s)", empty, empty),
		fmt.Sprintf("(c %s %s)", all, empty),
		fmt.Sprintf("(p %s %s)", empty, all),
		fmt.Sprintf("(ac %s %s %s)", all, all, empty),
		fmt.Sprintf("(dc %s %s %s)", all, empty, all),
		fmt.Sprintf("(ac %s %s %s)", empty, all, all),
		// Identical operands.
		fmt.Sprintf("(a %s %s)", all, all),
		fmt.Sprintf("(d %s %s)", some, some),
		fmt.Sprintf("(c %s %s)", all, all),
		// Aggregates over empties and identities.
		fmt.Sprintf("(g %s count(val) >= 0)", empty),
		fmt.Sprintf("(c %s %s count($2) = 0)", all, empty), // zero-witness still compares
		fmt.Sprintf("(d %s %s min($2.val) <= 100)", all, empty),
		fmt.Sprintf("(g %s min(val) = min(min(val)))", empty),
		// Embedded references with empties.
		fmt.Sprintf("(vd %s %s ref)", empty, all),
		fmt.Sprintf("(vd %s %s ref)", all, empty),
		fmt.Sprintf("(dv %s %s ref)", all, empty),
		fmt.Sprintf("(dv %s %s ref count($2) >= 0)", empty, all),
	}
	for _, qs := range cases {
		q := query.MustParse(qs)
		want := oracleEval(in, q).sortedKeys()
		l, err := e.Eval(q)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		got := resultKeys(t, l)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s:\n got %d entries\nwant %d entries", qs, len(got), len(want))
		}
	}
}

// TestCountZeroSelectsWitnessless pins the subtle count($2)=0 case: the
// structural operators evaluate the condition for every L1 entry, so a
// zero-witness comparison selects exactly the entries with no
// witnesses — not the empty set.
func TestCountZeroSelectsWitnessless(t *testing.T) {
	r := rand.New(rand.NewSource(142))
	in := randForest(t, r, 50)
	e := newEngine(t, in, Config{})
	withW, err := e.Eval(query.MustParse("(d ( ? sub ? objectClass=*) ( ? sub ? tag=a))"))
	if err != nil {
		t.Fatal(err)
	}
	without, err := e.Eval(query.MustParse("(d ( ? sub ? objectClass=*) ( ? sub ? tag=a) count($2) = 0)"))
	if err != nil {
		t.Fatal(err)
	}
	kw, kwo := resultKeys(t, withW), resultKeys(t, without)
	if len(kw)+len(kwo) != in.Len() {
		t.Fatalf("witnessed (%d) + witnessless (%d) != all (%d)", len(kw), len(kwo), in.Len())
	}
	seen := map[string]bool{}
	for _, k := range kw {
		seen[k] = true
	}
	for _, k := range kwo {
		if seen[k] {
			t.Fatalf("entry %q in both partitions", k)
		}
	}
}
