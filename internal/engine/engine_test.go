package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/plist"
	"repro/internal/query"
	"repro/internal/store"
)

// testSchema is a compact schema for randomized forests.
func testSchema() *model.Schema {
	s := model.NewSchema()
	s.MustDefineAttr("n", model.TypeString)   // node name (RDN attribute)
	s.MustDefineAttr("tag", model.TypeString) // random label
	s.MustDefineAttr("val", model.TypeInt)    // random multi-valued int
	s.MustDefineAttr("ref", model.TypeDN)     // random entry reference
	s.MustDefineClass("node", "n", "tag", "val", "ref")
	return s
}

// randForest builds a random instance of ~n entries with fanout bias,
// random tags/vals, and random DN-valued refs between entries.
func randForest(t testing.TB, r *rand.Rand, n int) *model.Instance {
	t.Helper()
	s := testSchema()
	in := model.NewInstance(s)
	dns := []model.DN{nil} // start from the virtual root
	for i := 0; i < n; i++ {
		parent := dns[r.Intn(len(dns))]
		if len(parent) > 6 { // cap depth
			parent = nil
		}
		dn := parent.Child(model.RDN{{Attr: "n", Value: fmt.Sprintf("e%d", i)}})
		e, err := model.NewEntryFromDN(s, dn)
		if err != nil {
			t.Fatal(err)
		}
		e.AddClass("node")
		e.Add("tag", model.String(string(rune('a'+r.Intn(3)))))
		for j := r.Intn(3); j > 0; j-- {
			e.Add("val", model.Int(int64(r.Intn(5))))
		}
		in.MustAdd(e)
		dns = append(dns, dn)
	}
	// Random references to existing entries (added after all exist).
	es := in.Entries()
	for _, e := range es {
		for j := r.Intn(3); j > 0; j-- {
			target := es[r.Intn(len(es))]
			e.Add("ref", model.DNValue(target.DN()))
		}
	}
	return in
}

func newEngine(t testing.TB, in *model.Instance, cfg Config) *Engine {
	t.Helper()
	d := pager.NewDisk(512)
	st, err := store.Build(d, in, store.Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	return New(st, cfg)
}

func resultKeys(t testing.TB, l *plist.List) []string {
	t.Helper()
	recs, err := plist.Drain(l)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Key
		if i > 0 && out[i-1] >= out[i] {
			t.Fatal("engine output not strictly sorted")
		}
		if r.Entry == nil {
			t.Fatal("engine output record lacks entry")
		}
	}
	return out
}

// The aggregate selection filters exercised against random data.
var aggSelPool = []string{
	"",
	"count($2) > 0",
	"count($2) >= 2",
	"count($2) = max(count($2))",
	"min($2.val) <= 1",
	"max($2.val) >= 3",
	"sum($2.val) > 2",
	"average($2.val) >= 2",
	"count($2.val) != 1",
	"count(val) > 1",
	"min(val) = min(min(val))",
	"count($$) > 3",
	"count($1) <= 100",
	"sum(val) < count($$)",
}

func buildQueries(t testing.TB) []string {
	t.Helper()
	atoms := []string{
		"( ? sub ? tag=a)",
		"( ? sub ? tag=b)",
		"( ? sub ? val<3)",
		"( ? sub ? val>=2)",
		"( ? sub ? n=e1*)",
		"( ? sub ? objectClass=node)",
	}
	var qs []string
	// Booleans.
	for _, op := range []string{"&", "|", "-"} {
		qs = append(qs, fmt.Sprintf("(%s %s %s)", op, atoms[0], atoms[2]))
	}
	// Hierarchy ops with each aggregate selection.
	for _, op := range []string{"p", "c", "a", "d"} {
		for _, sel := range aggSelPool {
			qs = append(qs, fmt.Sprintf("(%s %s %s %s)", op, atoms[0], atoms[2], sel))
		}
	}
	for _, op := range []string{"ac", "dc"} {
		for _, sel := range aggSelPool {
			qs = append(qs, fmt.Sprintf("(%s %s %s %s %s)", op, atoms[0], atoms[2], atoms[1], sel))
		}
	}
	// Simple aggregate selection.
	for _, sel := range aggSelPool {
		if sel == "" || (&aggSelLike{sel}).usesWitness() {
			continue
		}
		qs = append(qs, fmt.Sprintf("(g %s %s)", atoms[5], sel))
	}
	// Embedded references.
	for _, op := range []string{"vd", "dv"} {
		for _, sel := range aggSelPool {
			qs = append(qs, fmt.Sprintf("(%s %s %s ref %s)", op, atoms[0], atoms[2], sel))
		}
	}
	// Nested compositions.
	qs = append(qs,
		fmt.Sprintf("(a (& %s %s) (| %s %s))", atoms[0], atoms[2], atoms[1], atoms[3]),
		fmt.Sprintf("(c (d %s %s) %s count($2) > 0)", atoms[5], atoms[0], atoms[1]),
		fmt.Sprintf("(vd (g %s count(val) >= 1) %s ref)", atoms[5], atoms[1]),
		fmt.Sprintf("(dv %s (dc %s %s %s) ref count($2) = max(count($2)))", atoms[0], atoms[5], atoms[1], atoms[2]),
	)
	return qs
}

// aggSelLike lets the query builder skip witness filters for g.
type aggSelLike struct{ s string }

func (a *aggSelLike) usesWitness() bool {
	sel, err := query.ParseAggSel(a.s)
	if err != nil {
		return false
	}
	return sel.UsesWitness() || containsCount1(sel)
}

func containsCount1(sel *query.AggSel) bool {
	for _, s := range []query.AggAttr{sel.Left, sel.Right} {
		if s.Kind == query.KindEntrySet && s.Form == query.SetCount1 {
			return true
		}
	}
	return false
}

func TestEngineMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 4; trial++ {
		in := randForest(t, r, 120)
		e := newEngine(t, in, Config{})
		for _, qs := range buildQueries(t) {
			q, err := query.Parse(qs)
			if err != nil {
				t.Fatalf("parse %q: %v", qs, err)
			}
			want := oracleEval(in, q).sortedKeys()
			l, err := e.Eval(q)
			if err != nil {
				t.Fatalf("trial %d, eval %q: %v", trial, qs, err)
			}
			got := resultKeys(t, l)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("trial %d: %s\n got %d: %v\nwant %d: %v", trial, qs, len(got), got, len(want), want)
			}
		}
	}
}

func TestNaiveMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	in := randForest(t, r, 70)
	e := newEngine(t, in, Config{Naive: true})
	for _, qs := range buildQueries(t) {
		q, err := query.Parse(qs)
		if err != nil {
			t.Fatalf("parse %q: %v", qs, err)
		}
		want := oracleEval(in, q).sortedKeys()
		l, err := e.Eval(q)
		if err != nil {
			t.Fatalf("naive eval %q: %v", qs, err)
		}
		got := resultKeys(t, l)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("naive %s\n got %v\nwant %v", qs, got, want)
		}
	}
}

func TestQuickEngineEqualsOracleOnRandomForests(t *testing.T) {
	// Property: across many random instances, the stack/sort-merge
	// engine agrees with the denotational oracle on every query shape.
	r := rand.New(rand.NewSource(23))
	queries := buildQueries(t)
	for trial := 0; trial < 12; trial++ {
		in := randForest(t, r, 20+r.Intn(100))
		e := newEngine(t, in, Config{StackWindow: 2})
		qs := queries[r.Intn(len(queries))]
		q := query.MustParse(qs)
		want := oracleEval(in, q).sortedKeys()
		l, err := e.Eval(q)
		if err != nil {
			t.Fatalf("trial %d eval %q: %v", trial, qs, err)
		}
		got := resultKeys(t, l)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: %s\n got %v\nwant %v", trial, qs, got, want)
		}
	}
}

func TestPaperWorkedHierExamples(t *testing.T) {
	// A hand-built fragment mirroring Example 5.1: org units directly
	// containing a person with surName=jagadish.
	s := model.DefaultSchema()
	in := model.NewInstance(s)
	mk := func(dn string, cls string, avs ...model.AV) {
		e, err := model.NewEntryFromDN(s, model.MustParseDN(dn))
		if err != nil {
			t.Fatal(err)
		}
		e.AddClass(cls)
		for _, av := range avs {
			e.Add(av.Attr, av.Value)
		}
		in.MustAdd(e)
	}
	mk("dc=com", "dcObject")
	mk("dc=att, dc=com", "dcObject")
	mk("ou=research, dc=att, dc=com", "organizationalUnit")
	mk("ou=labs, dc=att, dc=com", "organizationalUnit")
	mk("ou=deep, ou=labs, dc=att, dc=com", "organizationalUnit")
	mk("uid=jag, ou=research, dc=att, dc=com", "inetOrgPerson",
		model.AV{Attr: "surName", Value: model.String("jagadish")})
	mk("uid=x, ou=deep, ou=labs, dc=att, dc=com", "inetOrgPerson",
		model.AV{Attr: "surName", Value: model.String("jagadish")})

	d := pager.NewDisk(512)
	st, err := store.Build(d, in, store.Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	e := New(st, Config{})

	// children: ou=research and ou=deep directly contain a jagadish;
	// ou=labs only transitively, so it must be excluded.
	got, err := e.Entries(query.MustParse(
		`(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)
		    (dc=att, dc=com ? sub ? surName=jagadish))`))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("children: %v", got)
	}
	for _, e := range got {
		if ou, _ := e.First("ou"); ou.Str() == "labs" {
			t.Fatal("children leaked transitive containment (labs)")
		}
	}

	// ancestors (d-style, Example 5.2 shape): org units with some
	// jagadish descendant: research, labs, deep.
	got, err = e.Entries(query.MustParse(
		`(d (dc=att, dc=com ? sub ? objectClass=organizationalUnit)
		    (dc=att, dc=com ? sub ? surName=jagadish))`))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("descendants: %d entries", len(got))
	}
}

func TestDifferenceExample41(t *testing.T) {
	// Example 4.1: jagadish in AT&T except Research — inexpressible in
	// LDAP, expressible in L0.
	s := model.DefaultSchema()
	in := model.NewInstance(s)
	mk := func(dn string, cls string, sn string) {
		e, err := model.NewEntryFromDN(s, model.MustParseDN(dn))
		if err != nil {
			t.Fatal(err)
		}
		e.AddClass(cls)
		if sn != "" {
			e.Add("surName", model.String(sn))
		}
		in.MustAdd(e)
	}
	mk("dc=com", "dcObject", "")
	mk("dc=att, dc=com", "dcObject", "")
	mk("dc=research, dc=att, dc=com", "dcObject", "")
	mk("uid=j1, dc=att, dc=com", "inetOrgPerson", "jagadish")
	mk("uid=j2, dc=research, dc=att, dc=com", "inetOrgPerson", "jagadish")

	e := newEngineFromInstance(t, in)
	got, err := e.Entries(query.MustParse(
		`(- (dc=att, dc=com ? sub ? surName=jagadish)
		    (dc=research, dc=att, dc=com ? sub ? surName=jagadish))`))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].DN().String() != "uid=j1, dc=att, dc=com" {
		t.Fatalf("difference: %v", got)
	}
}

func newEngineFromInstance(t testing.TB, in *model.Instance) *Engine {
	t.Helper()
	d := pager.NewDisk(512)
	st, err := store.Build(d, in, store.Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	return New(st, Config{})
}

func TestEvalStringValidates(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	in := randForest(t, r, 10)
	e := newEngine(t, in, Config{})
	if _, err := e.EvalString("( ? sub ? nosuch=1)"); err == nil {
		t.Error("unknown attribute accepted")
	}
	l, err := e.EvalString("( ? sub ? tag=a)")
	if err != nil {
		t.Fatal(err)
	}
	if l.Count() == 0 {
		t.Error("expected matches")
	}
}

func TestStackWindowInvariance(t *testing.T) {
	// Results must not depend on the stack's resident window (only I/O
	// counts may change).
	r := rand.New(rand.NewSource(31))
	in := randForest(t, r, 150)
	q := query.MustParse("(d ( ? sub ? tag=a) ( ? sub ? tag=b) count($2) >= 1)")
	var ref []string
	for i, win := range []int{2, 3, 8, 64} {
		e := newEngine(t, in, Config{StackWindow: win})
		l, err := e.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		got := resultKeys(t, l)
		if i == 0 {
			ref = got
		} else if fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Fatalf("window %d changed results", win)
		}
	}
}

func TestHierLinearIOvsNaiveQuadratic(t *testing.T) {
	// E10 smoke test: growing N, stack I/O per input page stays bounded
	// while naive I/O per input page grows.
	measure := func(naive bool, n int) (io int64, pages int) {
		r := rand.New(rand.NewSource(40))
		in := randForest(t, r, n)
		e := newEngine(t, in, Config{Naive: naive})
		q := query.MustParse("(a ( ? sub ? tag=a) ( ? sub ? tag=b))")
		l1, err := e.Eval(q.(*query.Hier).Q1)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := e.Eval(q.(*query.Hier).Q2)
		if err != nil {
			t.Fatal(err)
		}
		pages = l1.Pages() + l2.Pages()
		e.disk().ResetStats()
		var out *plist.List
		if naive {
			out, err = e.NaiveHier(query.OpAncestors, l1, l2, nil, nil)
		} else {
			out, err = e.ComputeHSAD(query.OpAncestors, l1, l2)
		}
		if err != nil {
			t.Fatal(err)
		}
		_ = out
		return e.disk().Stats().IO(), pages
	}
	fastSmall, pSmall := measure(false, 200)
	fastBig, pBig := measure(false, 1600)
	ratioSmall := float64(fastSmall) / float64(pSmall)
	ratioBig := float64(fastBig) / float64(pBig)
	if ratioBig > ratioSmall*3 {
		t.Errorf("stack algorithm I/O per page grew: %.1f -> %.1f", ratioSmall, ratioBig)
	}
	naiveSmall, _ := measure(true, 200)
	naiveBig, _ := measure(true, 1600)
	// Naive is quadratic: 8x the input must cost much more than 8x.
	if naiveBig < naiveSmall*16 {
		t.Errorf("naive I/O did not grow quadratically: %d -> %d", naiveSmall, naiveBig)
	}
	if fastBig*4 > naiveBig {
		t.Errorf("stack algorithm (%d) not clearly cheaper than naive (%d) at N=1600", fastBig, naiveBig)
	}
}

func TestEngineFreesIntermediates(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	in := randForest(t, r, 80)
	e := newEngine(t, in, Config{})
	before := e.disk().NumPages()
	q := query.MustParse("(c (& ( ? sub ? tag=a) ( ? sub ? val<4)) (| ( ? sub ? tag=b) ( ? sub ? tag=c)) count($2) > 0)")
	l, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	after := e.disk().NumPages()
	if after > before+l.Pages() {
		t.Errorf("leaked pages: %d before, %d after, result %d", before, after, l.Pages())
	}
}
