package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/query"
)

// TestCompiledLDAPEqualsNative verifies the constructive LDAP ⊆ L0
// inclusion end to end: for randomized instances and a family of LDAP
// queries, evaluating the compiled L0 query yields exactly the native
// LDAP evaluation's answer.
func TestCompiledLDAPEqualsNative(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	ldapQueries := []string{
		"( ? sub ? tag=a)",
		"( ? sub ? (&(tag=a)(val<4)))",
		"( ? sub ? (|(tag=a)(tag=b)))",
		"( ? sub ? (!(tag=a)))",
		"( ? sub ? (&(objectClass=node)(!(val>=3))))",
		"( ? one ? (|(tag=a)(!(tag=b))))",
		"( ? sub ? (&(|(tag=a)(tag=b))(!(&(val>=2)(val<=3)))))",
	}
	for trial := 0; trial < 3; trial++ {
		in := randForest(t, r, 100)
		e := newEngine(t, in, Config{})
		for _, qs := range ldapQueries {
			lq, err := query.ParseLDAP(qs)
			if err != nil {
				t.Fatalf("%s: %v", qs, err)
			}
			native, err := e.Eval(lq)
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := query.CompileLDAP(lq)
			if err != nil {
				t.Fatal(err)
			}
			viaL0, err := e.Eval(compiled)
			if err != nil {
				t.Fatalf("%s compiled %s: %v", qs, compiled, err)
			}
			nk, ck := resultKeys(t, native), resultKeys(t, viaL0)
			if fmt.Sprint(nk) != fmt.Sprint(ck) {
				t.Errorf("trial %d %s:\nnative %d entries\ncompiled (%s) %d entries",
					trial, qs, len(nk), compiled, len(ck))
			}
		}
	}
}
