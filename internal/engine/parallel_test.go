package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ldif"
	"repro/internal/plist"
	"repro/internal/query"
)

// resultBytes drains a list into its byte-identity witness: every
// record's key and full LDIF serialization, in list order.
func resultBytes(t testing.TB, l *plist.List) []string {
	t.Helper()
	recs, err := plist.Drain(l)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Key + "\x00" + ldif.MarshalEntry(r.Entry)
	}
	return out
}

// TestParallelMatchesSerial is the DESIGN.md §9 oracle: every L0–L3
// query over random forests evaluates byte-identically at Workers=1
// and Workers=8 — same keys, same entries, same order.
func TestParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(201))
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		in := randForest(t, r, 15+r.Intn(60))
		serial := newEngine(t, in, Config{StackWindow: 2, Workers: 1})
		par := newEngine(t, in, Config{StackWindow: 2, Workers: 8, SortMemBytes: 1024})
		q := randQuery(r, 2+r.Intn(2))
		if err := query.Validate(in.Schema(), q); err != nil {
			t.Fatalf("generator produced invalid query %s: %v", q, err)
		}
		ls, err := serial.Eval(q)
		if err != nil {
			t.Fatalf("trial %d serial eval %s: %v", trial, q, err)
		}
		want := resultBytes(t, ls)
		lp, err := par.Eval(q)
		if err != nil {
			t.Fatalf("trial %d parallel eval %s: %v", trial, q, err)
		}
		got := resultBytes(t, lp)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: %s\nWorkers=8 diverges from Workers=1\n got %v\nwant %v", trial, q, got, want)
		}
	}
}

// TestParallelFixedQueriesMatchSerial runs the package's fixed query
// pool (every operator and aggregate form) through both engines.
func TestParallelFixedQueriesMatchSerial(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	in := randForest(t, r, 80)
	serial := newEngine(t, in, Config{Workers: 1})
	par := newEngine(t, in, Config{Workers: 8})
	for _, text := range buildQueries(t) {
		q, err := query.Parse(text)
		if err != nil {
			t.Fatalf("parse %s: %v", text, err)
		}
		ls, err := serial.Eval(q)
		if err != nil {
			t.Fatalf("serial %s: %v", text, err)
		}
		want := resultBytes(t, ls)
		lp, err := par.Eval(q)
		if err != nil {
			t.Fatalf("parallel %s: %v", text, err)
		}
		if got := resultBytes(t, lp); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: Workers=8 diverges from Workers=1", text)
		}
	}
}

// TestParallelResolverErrorWins verifies the scheduler's error
// contract: when one subtree fails, siblings are cancelled but the
// reported error is the real failure, never the context.Canceled the
// cancellation induced.
func TestParallelResolverErrorWins(t *testing.T) {
	r := rand.New(rand.NewSource(203))
	in := randForest(t, r, 40)
	e := newEngine(t, in, Config{Workers: 8})
	boom := errors.New("boom")
	var calls int32
	var mu sync.Mutex
	e.SetResolver(func(ctx context.Context, q *query.Atomic) (*plist.List, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			return nil, boom
		}
		return e.st.Eval(q)
	})
	q := query.MustParse("(| (& ( ? sub ? tag=a) ( ? sub ? tag=b)) (& ( ? sub ? val<3) ( ? sub ? val>=1)))")
	if _, err := e.Eval(q); !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
}

// TestParallelCancellation verifies that a cancelled context surfaces
// promptly as context.Canceled from a parallel evaluation.
func TestParallelCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(204))
	in := randForest(t, r, 40)
	e := newEngine(t, in, Config{Workers: 8})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := query.MustParse("(& ( ? sub ? tag=a) ( ? sub ? tag=b))")
	if _, err := e.EvalContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

// TestParallelStress hammers one parallel engine with deep, wide
// queries — the -race exercise for the worker pool, the shared buffer
// pools, and the pager's concurrent read path.
func TestParallelStress(t *testing.T) {
	r := rand.New(rand.NewSource(205))
	in := randForest(t, r, 120)
	e := newEngine(t, in, Config{Workers: 8, SortMemBytes: 1024})
	wide := "(| (| (& ( ? sub ? tag=a) ( ? sub ? val>=1)) (d ( ? sub ? tag=b) ( ? sub ? val<2)))" +
		" (| (& ( ? sub ? tag=c) ( ? sub ? val>=3)) (d ( ? sub ? val>=0) ( ? sub ? tag=a))))"
	q := query.MustParse(wide)
	var want []string
	iters := 20
	if testing.Short() {
		iters = 4
	}
	for i := 0; i < iters; i++ {
		l, err := e.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		got := resultBytes(t, l)
		if i == 0 {
			want = got
		} else if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("iteration %d diverged", i)
		}
	}
}
