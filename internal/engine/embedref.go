package engine

import (
	"io"

	"repro/internal/extsort"
	"repro/internal/model"
	"repro/internal/plist"
	"repro/internal/query"
)

// EvalEmbedRef evaluates the L3 embedded-reference operators by the
// sort-merge technique of Section 7.2 (Algorithm ComputeERAggDV, Fig 3,
// and its symmetric vd counterpart), with or without aggregate
// selection. A nil sel means the plain semijoin semantics (count($2)>0).
func (e *Engine) EvalEmbedRef(op query.RefOp, l1, l2 *plist.List, attr string, sel *query.AggSel) (*plist.List, error) {
	if op == query.OpDNValue {
		return e.ComputeERAggDV(l1, l2, attr, sel)
	}
	return e.ComputeERAggVD(l1, l2, attr, sel)
}

// dnValuesOf returns the distinct DN-valued entries of attr in e, as
// reverse keys. Witness sets are sets: duplicate pairs in one entry must
// not double-count.
func dnValuesOf(e *model.Entry, attr string) []string {
	var out []string
	last := ""
	for _, v := range e.Values(attr) { // sorted, so duplicates are adjacent
		if v.Kind() != model.KindDN {
			continue
		}
		k := v.DN().Key()
		if len(out) > 0 && k == last {
			continue
		}
		out = append(out, k)
		last = k
	}
	return out
}

// ComputeERAggDV is Algorithm ComputeERAggDV (Figure 3) generalized to
// arbitrary aggregate selections: dv selects the entries of L1 whose DN
// is embedded in attribute A of some L2 entry.
//
// Phase 1 creates the list of pairs LP — one record per embedded DN
// value, carrying the referencing L2 entry — and sorts it by the
// lexicographic ordering of the reverse of the embedded DNs. Phase 2
// merge-joins LP against L1 (both sorted the same way), folding witness
// statistics per L1 entry. Phase 3 applies the aggregate selection.
func (e *Engine) ComputeERAggDV(l1, l2 *plist.List, attr string, sel *query.AggSel) (*plist.List, error) {
	attr = model.NormalizeAttr(attr)
	specs := witnessSpecs(sel)

	// Phase 1: build and sort LP.
	spool := plist.NewWriter(e.disk()).Unordered()
	rd := l2.Reader()
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for _, k := range dnValuesOf(rec.Entry, attr) {
			if err := spool.Append(&plist.Record{Key: k, Entry: rec.Entry}); err != nil {
				return nil, err
			}
		}
	}
	raw, err := spool.Close()
	if err != nil {
		return nil, err
	}
	lp, err := extsort.Sort(e.disk(), raw.Reader(), e.sortCfg())
	if err != nil {
		return nil, err
	}
	if err := raw.Free(); err != nil {
		return nil, err
	}
	defer freeAll(lp)

	// Phase 2: merge-join LP with L1, emitting one annotated record per
	// L1 entry that has at least one witness.
	annotated := plist.NewWriter(e.disk())
	l1rd := l1.Reader()
	lprd := lp.Reader()
	lpHead, lpErr := lprd.Next()
	for {
		r1, err := l1rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for lpErr == nil && lpHead.Key < r1.Key {
			lpHead, lpErr = lprd.Next()
		}
		if lpErr != nil && lpErr != io.EOF {
			return nil, lpErr
		}
		stats := make([]aggStats, len(specs))
		n := 0
		for lpErr == nil && lpHead.Key == r1.Key {
			for si, a := range specs {
				s := foldEntryValues(lpHead.Entry, a)
				stats[si].merge(s)
			}
			n++
			lpHead, lpErr = lprd.Next()
		}
		if lpErr != nil && lpErr != io.EOF {
			return nil, lpErr
		}
		if n == 0 {
			continue
		}
		out := &plist.Record{Key: r1.Key}
		for _, s := range stats {
			out.Aux = s.encode(out.Aux)
		}
		if err := annotated.Append(out); err != nil {
			return nil, err
		}
	}
	al, err := annotated.Close()
	if err != nil {
		return nil, err
	}
	defer freeAll(al)

	return e.finishAnnotated(l1, al, specs, sel)
}

// ComputeERAggVD is the symmetric valueDN algorithm: vd selects the
// entries of L1 holding, in attribute A, the DN of some L2 entry.
//
// LP is built from L1 (one record per embedded value, tagged with the
// referencing entry's DN), sorted by embedded-DN reverse key, and
// merge-joined with L2; each match yields a witness contribution keyed
// by the referencing entry, which a second sort brings back into L1
// order for aggregation and selection.
func (e *Engine) ComputeERAggVD(l1, l2 *plist.List, attr string, sel *query.AggSel) (*plist.List, error) {
	attr = model.NormalizeAttr(attr)
	specs := witnessSpecs(sel)

	// Phase 1: LP from L1.
	spool := plist.NewWriter(e.disk()).Unordered()
	rd := l1.Reader()
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for _, k := range dnValuesOf(rec.Entry, attr) {
			// Carry only the referencing entry's identity.
			stub := model.NewEntry(rec.Entry.DN())
			if err := spool.Append(&plist.Record{Key: k, Entry: stub}); err != nil {
				return nil, err
			}
		}
	}
	raw, err := spool.Close()
	if err != nil {
		return nil, err
	}
	lp, err := extsort.Sort(e.disk(), raw.Reader(), e.sortCfg())
	if err != nil {
		return nil, err
	}
	if err := raw.Free(); err != nil {
		return nil, err
	}

	// Phase 2: merge-join LP with L2; emit one contribution per
	// (referencing entry, witness) pair, keyed by the referencing entry.
	contribs := plist.NewWriter(e.disk()).Unordered()
	l2rd := l2.Reader()
	lprd := lp.Reader()
	r2, r2Err := l2rd.Next()
	for {
		pair, err := lprd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for r2Err == nil && r2.Key < pair.Key {
			r2, r2Err = l2rd.Next()
		}
		if r2Err != nil && r2Err != io.EOF {
			return nil, r2Err
		}
		if r2Err == nil && r2.Key == pair.Key {
			out := &plist.Record{Key: pair.Entry.Key()}
			for _, a := range specs {
				s := foldEntryValues(r2.Entry, a)
				out.Aux = s.encode(out.Aux)
			}
			if err := contribs.Append(out); err != nil {
				return nil, err
			}
		}
	}
	if err := lp.Free(); err != nil {
		return nil, err
	}
	rawC, err := contribs.Close()
	if err != nil {
		return nil, err
	}
	sortedC, err := extsort.Sort(e.disk(), rawC.Reader(), e.sortCfg())
	if err != nil {
		return nil, err
	}
	if err := rawC.Free(); err != nil {
		return nil, err
	}

	// Phase 3: group contributions per referencing entry.
	annotated := plist.NewWriter(e.disk())
	crd := sortedC.Reader()
	var cur *plist.Record
	var curStats []aggStats
	flush := func() error {
		if cur == nil {
			return nil
		}
		out := &plist.Record{Key: cur.Key}
		for _, s := range curStats {
			out.Aux = s.encode(out.Aux)
		}
		cur = nil
		return annotated.Append(out)
	}
	for {
		c, err := crd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if cur == nil || cur.Key != c.Key {
			if err := flush(); err != nil {
				return nil, err
			}
			cur = c
			curStats = make([]aggStats, len(specs))
		}
		for si := range specs {
			curStats[si].merge(decodeStats(c.Aux[si*statsInts : (si+1)*statsInts]))
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if err := sortedC.Free(); err != nil {
		return nil, err
	}
	al, err := annotated.Close()
	if err != nil {
		return nil, err
	}
	defer freeAll(al)

	return e.finishAnnotated(l1, al, specs, sel)
}

// finishAnnotated joins L1 with its sorted annotation list (one record
// per entry with witnesses, Aux = per-spec statistics), computes the
// entry-set accumulators if the selection needs them, and emits the
// entries satisfying the selection.
func (e *Engine) finishAnnotated(l1, al *plist.List, specs []string, sel *query.AggSel) (*plist.List, error) {
	sa := &setAccs{n1: l1.Count()}
	empty := make([]aggStats, len(specs))

	scan := func(fn func(rec *plist.Record, wstats []aggStats) error) error {
		l1rd := l1.Reader()
		ard := al.Reader()
		aHead, aErr := ard.Next()
		for {
			rec, err := l1rd.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			wstats := empty
			if aErr == nil && aHead.Key == rec.Key {
				wstats = make([]aggStats, len(specs))
				for si := range specs {
					wstats[si] = decodeStats(aHead.Aux[si*statsInts : (si+1)*statsInts])
				}
				aHead, aErr = ard.Next()
			}
			if aErr != nil && aErr != io.EOF {
				return aErr
			}
			if err := fn(rec, wstats); err != nil {
				return err
			}
		}
	}

	if sel != nil && sel.UsesEntrySet() {
		err := scan(func(rec *plist.Record, wstats []aggStats) error {
			sa.foldSelf(sel, rec.Entry)
			sa.foldWitness(sel, specs, wstats)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	w := plist.NewWriter(e.disk())
	err := scan(func(rec *plist.Record, wstats []aggStats) error {
		if evalAggSel(sel, rec.Entry, specs, wstats, sa) {
			return w.Append(clean(rec))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return w.Close()
}
