package engine

// An independent reference implementation of the denotational semantics
// of Definitions 4.1, 5.1, 6.1, 6.2 and 7.1, computed naively over the
// in-memory instance. The engine (stack/sort-merge algorithms) and the
// naive disk baselines are both tested against it; agreement of three
// independently-written evaluators is the correctness argument.

import (
	"sort"

	"repro/internal/model"
	"repro/internal/query"
)

type oracleSet map[string]*model.Entry // reverse key -> entry

func (s oracleSet) sortedKeys() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func oracleEval(in *model.Instance, q query.Query) oracleSet {
	switch n := q.(type) {
	case *query.Atomic:
		out := oracleSet{}
		k := n.Base.Key()
		depth := n.Base.Depth()
		in.Range(k, model.SubtreeHigh(k), func(e *model.Entry) bool {
			switch n.Scope {
			case query.ScopeBase:
				if e.Key() != k {
					return true
				}
			case query.ScopeOne:
				if model.KeyDepth(e.Key())-depth > 1 {
					return true
				}
			}
			if n.Filter.Matches(in.Schema(), e) {
				out[e.Key()] = e
			}
			return true
		})
		return out

	case *query.Bool:
		s1, s2 := oracleEval(in, n.Q1), oracleEval(in, n.Q2)
		out := oracleSet{}
		switch n.Op {
		case query.OpAnd:
			for k, e := range s1 {
				if _, ok := s2[k]; ok {
					out[k] = e
				}
			}
		case query.OpOr:
			for k, e := range s1 {
				out[k] = e
			}
			for k, e := range s2 {
				out[k] = e
			}
		case query.OpDiff:
			for k, e := range s1 {
				if _, ok := s2[k]; !ok {
					out[k] = e
				}
			}
		}
		return out

	case *query.Hier:
		s1, s2 := oracleEval(in, n.Q1), oracleEval(in, n.Q2)
		var s3 oracleSet
		if n.Q3 != nil {
			s3 = oracleEval(in, n.Q3)
		}
		witnesses := func(r1 string) []*model.Entry {
			var ws []*model.Entry
			for r2, e2 := range s2 {
				ok := false
				switch n.Op {
				case query.OpParents:
					ok = model.KeyIsParent(r2, r1)
				case query.OpChildren:
					ok = model.KeyIsParent(r1, r2)
				case query.OpAncestors:
					ok = model.KeyIsAncestor(r2, r1)
				case query.OpDescendants:
					ok = model.KeyIsAncestor(r1, r2)
				case query.OpAncestorsC:
					ok = model.KeyIsAncestor(r2, r1)
					if ok {
						for r3 := range s3 {
							if model.KeyIsAncestor(r3, r1) && model.KeyIsAncestor(r2, r3) {
								ok = false
								break
							}
						}
					}
				case query.OpDescendantsC:
					ok = model.KeyIsAncestor(r1, r2)
					if ok {
						for r3 := range s3 {
							if model.KeyIsAncestor(r1, r3) && model.KeyIsAncestor(r3, r2) {
								ok = false
								break
							}
						}
					}
				}
				if ok {
					ws = append(ws, e2)
				}
			}
			return ws
		}
		return oracleStructuralSelect(s1, witnesses, n.AggSel)

	case *query.SimpleAgg:
		s1 := oracleEval(in, n.Q)
		out := oracleSet{}
		sa := oracleSetAccs(s1, nil, n.AggSel)
		for k, e := range s1 {
			if oracleCond(n.AggSel, e, nil, sa, int64(len(s1))) {
				out[k] = e
			}
		}
		return out

	case *query.EmbedRef:
		s1, s2 := oracleEval(in, n.Q1), oracleEval(in, n.Q2)
		witnesses := func(r1 string) []*model.Entry {
			var ws []*model.Entry
			e1 := s1[r1]
			for r2, e2 := range s2 {
				match := false
				if n.Op == query.OpValueDN {
					for _, v := range e1.Values(n.Attr) {
						if v.Kind() == model.KindDN && v.DN().Key() == r2 {
							match = true
							break
						}
					}
				} else {
					for _, v := range e2.Values(n.Attr) {
						if v.Kind() == model.KindDN && v.DN().Key() == r1 {
							match = true
							break
						}
					}
				}
				if match {
					ws = append(ws, e2)
				}
			}
			return ws
		}
		return oracleStructuralSelect(s1, witnesses, n.AggSel)
	}
	return nil
}

func oracleStructuralSelect(s1 oracleSet, witnesses func(string) []*model.Entry, sel *query.AggSel) oracleSet {
	out := oracleSet{}
	ws := map[string][]*model.Entry{}
	for k := range s1 {
		ws[k] = witnesses(k)
	}
	if sel == nil {
		for k, e := range s1 {
			if len(ws[k]) > 0 {
				out[k] = e
			}
		}
		return out
	}
	sa := oracleSetAccs(s1, ws, sel)
	for k, e := range s1 {
		if oracleCond(sel, e, ws[k], sa, int64(len(s1))) {
			out[k] = e
		}
	}
	return out
}

// oracleEntryAgg computes an entry aggregate per Definitions 6.1/6.2.
func oracleEntryAgg(ea query.EntryAgg, e *model.Entry, ws []*model.Entry) (int64, bool) {
	var vals []int64  // integer values (numeric folds)
	total := int64(0) // all values regardless of kind (count folds)
	collect := func(src *model.Entry) {
		for _, v := range src.Values(ea.Attr) {
			total++
			if v.Kind() == model.KindInt {
				vals = append(vals, v.Int())
			}
		}
	}
	switch {
	case ea.Over == query.VarWitness && ea.Attr == "": // count($2)
		return int64(len(ws)), true
	case ea.Over == query.VarWitness:
		for _, w := range ws {
			collect(w)
		}
	default:
		collect(e)
	}
	if ea.Fn == query.AggCount {
		return total, true
	}
	return oracleFold(ea.Fn, vals)
}

func oracleFold(fn query.AggFunc, vals []int64) (int64, bool) {
	if fn == query.AggCount {
		return int64(len(vals)), true
	}
	if len(vals) == 0 {
		return 0, false
	}
	mn, mx, sum := vals[0], vals[0], int64(0)
	for _, v := range vals {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		sum += v
	}
	switch fn {
	case query.AggMin:
		return mn, true
	case query.AggMax:
		return mx, true
	case query.AggSum:
		return sum, true
	case query.AggAvg:
		return sum / int64(len(vals)), true
	}
	return 0, false
}

type oracleAccs struct {
	vals [2][]int64 // per-side folded inner values
}

func oracleSetAccs(s1 oracleSet, ws map[string][]*model.Entry, sel *query.AggSel) *oracleAccs {
	acc := &oracleAccs{}
	if sel == nil {
		return acc
	}
	for i, side := range []query.AggAttr{sel.Left, sel.Right} {
		if side.Kind != query.KindEntrySet || side.Form != query.SetOfEntry {
			continue
		}
		for k, e := range s1 {
			var w []*model.Entry
			if ws != nil {
				w = ws[k]
			}
			if v, ok := oracleEntryAgg(side.Entry, e, w); ok {
				acc.vals[i] = append(acc.vals[i], v)
			}
		}
	}
	return acc
}

func oracleCond(sel *query.AggSel, e *model.Entry, ws []*model.Entry, acc *oracleAccs, n1 int64) bool {
	side := func(i int, a query.AggAttr) (int64, bool) {
		switch a.Kind {
		case query.KindConst:
			return a.Const, true
		case query.KindEntry:
			return oracleEntryAgg(a.Entry, e, ws)
		default:
			switch a.Form {
			case query.SetCount1, query.SetCountAll:
				return n1, true
			default:
				return oracleFold(a.OuterFn, acc.vals[i])
			}
		}
	}
	lv, lok := side(0, sel.Left)
	rv, rok := side(1, sel.Right)
	return lok && rok && sel.Op.Compare(lv, rv)
}
