package engine

import (
	"io"

	"repro/internal/extsort"
	"repro/internal/model"
	"repro/internal/plist"
	"repro/internal/query"
)

// This file implements the "straightforward way" each evaluation section
// of the paper starts from: testing independently whether each entry of
// the first operand is in the output by searching the second operand for
// witnesses (Sections 5.3, 6.4 and 7.2 call this approach quadratic).
// None of these operators exploit the sorted representation; they exist
// as baselines for the crossover experiments (E10) and as oracles for
// correctness tests of the stack and sort-merge algorithms.

// NaiveBool computes the boolean operators by nested-loop membership
// tests (and, for or, a concatenate-sort-dedupe pass).
func (e *Engine) NaiveBool(op query.BoolOp, l1, l2 *plist.List) (*plist.List, error) {
	member := func(l *plist.List, key string) (bool, error) {
		rd := l.Reader()
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				return false, nil
			}
			if err != nil {
				return false, err
			}
			if rec.Key == key {
				return true, nil
			}
		}
	}
	switch op {
	case query.OpAnd, query.OpDiff:
		w := plist.NewWriter(e.disk())
		rd := l1.Reader()
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				return w.Close()
			}
			if err != nil {
				return nil, err
			}
			in2, err := member(l2, rec.Key)
			if err != nil {
				return nil, err
			}
			if (op == query.OpAnd) == in2 {
				if err := w.Append(clean(rec)); err != nil {
					return nil, err
				}
			}
		}
	default: // OpOr
		spool := plist.NewWriter(e.disk()).Unordered()
		copyAll := func(l *plist.List, skipIfIn *plist.List) error {
			rd := l.Reader()
			for {
				rec, err := rd.Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				if skipIfIn != nil {
					dup, err := member(skipIfIn, rec.Key)
					if err != nil {
						return err
					}
					if dup {
						continue
					}
				}
				if err := spool.Append(clean(rec)); err != nil {
					return err
				}
			}
		}
		if err := copyAll(l1, nil); err != nil {
			return nil, err
		}
		if err := copyAll(l2, l1); err != nil {
			return nil, err
		}
		raw, err := spool.Close()
		if err != nil {
			return nil, err
		}
		out, err := extsort.Sort(e.disk(), raw.Reader(), e.sortCfg())
		if err != nil {
			return nil, err
		}
		return out, raw.Free()
	}
}

// NaiveHier computes hierarchical selection (with optional aggregate
// selection) by re-scanning L2 — and, for the path-constrained
// operators, L3 per candidate witness — for every entry of L1.
func (e *Engine) NaiveHier(op query.HierOp, l1, l2, l3 *plist.List, sel *query.AggSel) (*plist.List, error) {
	specs := witnessSpecs(sel)
	related := func(r1, r2 string) bool {
		switch op {
		case query.OpParents:
			return model.KeyIsParent(r2, r1)
		case query.OpChildren:
			return model.KeyIsParent(r1, r2)
		case query.OpAncestors, query.OpAncestorsC:
			return model.KeyIsAncestor(r2, r1)
		default:
			return model.KeyIsAncestor(r1, r2)
		}
	}
	blocked := func(r1, r2 string) (bool, error) {
		if l3 == nil {
			return false, nil
		}
		rd := l3.Reader()
		for {
			r3, err := rd.Next()
			if err == io.EOF {
				return false, nil
			}
			if err != nil {
				return false, err
			}
			var between bool
			if op == query.OpAncestorsC {
				between = model.KeyIsAncestor(r3.Key, r1) && model.KeyIsAncestor(r2, r3.Key)
			} else {
				between = model.KeyIsAncestor(r1, r3.Key) && model.KeyIsAncestor(r3.Key, r2)
			}
			if between {
				return true, nil
			}
		}
	}

	annotated := plist.NewWriter(e.disk())
	rd1 := l1.Reader()
	for {
		r1, err := rd1.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		stats := make([]aggStats, len(specs))
		found := false
		rd2 := l2.Reader()
		for {
			r2, err := rd2.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			if !related(r1.Key, r2.Key) {
				continue
			}
			if op.Ternary() {
				b, err := blocked(r1.Key, r2.Key)
				if err != nil {
					return nil, err
				}
				if b {
					continue
				}
			}
			found = true
			for si, a := range specs {
				s := foldEntryValues(r2.Entry, a)
				stats[si].merge(s)
			}
		}
		if !found {
			continue
		}
		out := &plist.Record{Key: r1.Key}
		for _, s := range stats {
			out.Aux = s.encode(out.Aux)
		}
		if err := annotated.Append(out); err != nil {
			return nil, err
		}
	}
	al, err := annotated.Close()
	if err != nil {
		return nil, err
	}
	defer freeAll(al)
	return e.finishAnnotated(l1, al, specs, sel)
}

// NaiveEmbedRef computes the embedded-reference operators by a nested
// loop over (L1, L2) pairs.
func (e *Engine) NaiveEmbedRef(op query.RefOp, l1, l2 *plist.List, attr string, sel *query.AggSel) (*plist.List, error) {
	attr = model.NormalizeAttr(attr)
	specs := witnessSpecs(sel)
	annotated := plist.NewWriter(e.disk())
	rd1 := l1.Reader()
	for {
		r1, err := rd1.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		var refs []string
		if op == query.OpValueDN {
			refs = dnValuesOf(r1.Entry, attr)
		}
		stats := make([]aggStats, len(specs))
		found := false
		rd2 := l2.Reader()
		for {
			r2, err := rd2.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			match := false
			if op == query.OpValueDN {
				for _, k := range refs {
					if k == r2.Key {
						match = true
						break
					}
				}
			} else {
				for _, k := range dnValuesOf(r2.Entry, attr) {
					if k == r1.Key {
						match = true
						break
					}
				}
			}
			if !match {
				continue
			}
			found = true
			for si, a := range specs {
				s := foldEntryValues(r2.Entry, a)
				stats[si].merge(s)
			}
		}
		if !found {
			continue
		}
		out := &plist.Record{Key: r1.Key}
		for _, s := range stats {
			out.Aux = s.encode(out.Aux)
		}
		if err := annotated.Append(out); err != nil {
			return nil, err
		}
	}
	al, err := annotated.Close()
	if err != nil {
		return nil, err
	}
	defer freeAll(al)
	return e.finishAnnotated(l1, al, specs, sel)
}
