package engine

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/pager"
	"repro/internal/query"
)

// TestFaultInjectionPropagates drives every operator over a disk that
// fails after a budget of operations and asserts the failure surfaces
// as an error (never a panic, never a silent wrong answer).
func TestFaultInjectionPropagates(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	in := randForest(t, r, 120)

	queries := []string{
		"(& ( ? sub ? tag=a) ( ? sub ? tag=b))",
		"(a ( ? sub ? tag=a) ( ? sub ? tag=b))",
		"(dc ( ? sub ? tag=a) ( ? sub ? tag=b) ( ? sub ? tag=c))",
		"(g ( ? sub ? objectClass=node) count(val) > 1)",
		"(c ( ? sub ? tag=a) ( ? sub ? tag=b) count($2) = max(count($2)))",
		"(vd ( ? sub ? tag=a) ( ? sub ? tag=b) ref)",
		"(dv ( ? sub ? tag=a) ( ? sub ? tag=b) ref count($2) >= 1)",
	}
	boom := errors.New("injected disk fault")

	for _, qs := range queries {
		q := query.MustParse(qs)
		// Find the fault-free operation count, then fail at a few points
		// inside it.
		e := newEngine(t, in, Config{StackWindow: 2})
		d := e.disk()
		var total int64
		d.SetFault(func(op string, _ pager.PageID) error {
			total++
			return nil
		})
		if _, err := e.Eval(q); err != nil {
			t.Fatalf("%s: fault-free eval failed: %v", qs, err)
		}
		d.SetFault(nil)

		for _, frac := range []float64{0.1, 0.5, 0.9} {
			budget := int64(float64(total) * frac)
			if budget == 0 {
				continue
			}
			e := newEngine(t, in, Config{StackWindow: 2})
			var n int64
			e.disk().SetFault(func(op string, _ pager.PageID) error {
				n++
				if n > budget {
					return boom
				}
				return nil
			})
			_, err := e.Eval(q)
			// The budget is measured on a different engine instance, so
			// counts shift slightly; either the query finished before the
			// fault or the fault must propagate.
			if err != nil && !errors.Is(err, boom) {
				t.Errorf("%s at %.0f%%: foreign error %v", qs, frac*100, err)
			}
		}
	}
}

// TestFaultDuringAtomicEval exercises the store's index paths under
// failure.
func TestFaultDuringAtomicEval(t *testing.T) {
	r := rand.New(rand.NewSource(112))
	in := randForest(t, r, 200)
	e := newEngine(t, in, Config{})
	boom := errors.New("boom")
	var n int
	e.disk().SetFault(func(op string, _ pager.PageID) error {
		n++
		if op == "read" && n > 10 {
			return boom
		}
		return nil
	})
	_, err := e.Eval(query.MustParse("( ? sub ? n=e1*)"))
	if err != nil && !errors.Is(err, boom) {
		t.Fatalf("foreign error: %v", err)
	}
	if err == nil {
		t.Log("query finished under budget; acceptable")
	}
}
