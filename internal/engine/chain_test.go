package engine

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/workload"
)

// chainInstance builds a single path of depth n: the adversarial shape
// for the stack algorithms (the whole merge lives on the stack at once,
// forcing spills through the resident window).
func chainInstance(t testing.TB, n int) *model.Instance {
	t.Helper()
	in := model.NewInstance(workload.ForestSchema())
	dn := model.DN{}
	for i := 0; i < n; i++ {
		dn = dn.Child(model.RDN{{Attr: "n", Value: fmt.Sprintf("c%d", i)}})
		e, err := model.NewEntryFromDN(in.Schema(), dn)
		if err != nil {
			t.Fatal(err)
		}
		e.AddClass("node")
		e.Add("tag", model.String(string(rune('a'+i%3))))
		e.Add("val", model.Int(int64(i%5)))
		in.MustAdd(e)
	}
	return in
}

// TestDeepChainCorrectness drives every hierarchy operator over a path
// deep enough that the stack spills at the smallest window, and checks
// against the oracle.
func TestDeepChainCorrectness(t *testing.T) {
	in := chainInstance(t, 100)
	d := pager.NewDisk(4096)
	st, err := store.Build(d, in, store.Options{AttrIndex: false}) // deep keys: skip attr index
	if err != nil {
		t.Fatal(err)
	}
	e := New(st, Config{StackWindow: 2})

	queries := []string{
		"(a ( ? sub ? tag=a) ( ? sub ? tag=b))",
		"(d ( ? sub ? tag=a) ( ? sub ? tag=b))",
		"(p ( ? sub ? tag=a) ( ? sub ? tag=b))",
		"(c ( ? sub ? tag=a) ( ? sub ? tag=b))",
		"(ac ( ? sub ? tag=a) ( ? sub ? tag=b) ( ? sub ? tag=c))",
		"(dc ( ? sub ? tag=a) ( ? sub ? tag=b) ( ? sub ? tag=c))",
		"(d ( ? sub ? tag=a) ( ? sub ? tag=b) count($2) = max(count($2)))",
		"(a ( ? sub ? tag=a) ( ? sub ? tag=b) sum($2.val) >= 10)",
	}
	spilled := false
	for _, qs := range queries {
		q := query.MustParse(qs)
		before := d.Stats()
		l, err := e.Eval(q)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if d.Stats().Sub(before).Writes > int64(l.Pages())+20 {
			spilled = true // wrote noticeably more than the output: stack spill
		}
		got := resultKeys(t, l)
		want := oracleEval(in, q).sortedKeys()
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s:\n got %d\nwant %d", qs, len(got), len(want))
		}
	}
	if !spilled {
		t.Error("depth-100 chain never spilled the window-2 stack; test not exercising spills")
	}
}

// TestChainAgainstWideForest cross-checks the two extreme shapes at the
// same size: a flat forest (stack depth ~1) and a chain (stack depth N)
// must both match the oracle.
func TestChainAgainstWideForest(t *testing.T) {
	flat := model.NewInstance(workload.ForestSchema())
	for i := 0; i < 100; i++ {
		e, err := model.NewEntryFromDN(flat.Schema(),
			model.DN{model.RDN{{Attr: "n", Value: fmt.Sprintf("w%d", i)}}})
		if err != nil {
			t.Fatal(err)
		}
		e.AddClass("node")
		e.Add("tag", model.String(string(rune('a'+i%2))))
		flat.MustAdd(e)
	}
	for name, in := range map[string]*model.Instance{"flat": flat, "chain": chainInstance(t, 100)} {
		d := pager.NewDisk(4096)
		// Deep-chain composite index keys exceed the 512-byte page's item
		// bound; scan-based atomics are the point here anyway.
		st, err := store.Build(d, in, store.Options{AttrIndex: name == "flat"})
		if err != nil {
			t.Fatal(err)
		}
		e := New(st, Config{StackWindow: 2})
		q := query.MustParse("(d ( ? sub ? tag=a) ( ? sub ? tag=b))")
		l, err := e.Eval(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := resultKeys(t, l)
		want := oracleEval(in, q).sortedKeys()
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s shape disagrees with oracle", name)
		}
	}
}
