// Package engine implements the evaluation algorithms of "Querying
// Network Directories": table-driven boolean list merges (Section 4.2),
// the stack-based hierarchical selection algorithms ComputeHSPC (Fig 2),
// ComputeHSAD (Fig 4) and ComputeHSADc (Fig 5), their aggregate
// generalizations ComputeHSAgg (Fig 6, Section 6.4), simple aggregate
// selection (Section 6.3), the sort-merge embedded-reference algorithms
// ComputeERAggDV/VD (Fig 3, Section 7.2), the naive quadratic baselines
// each of those sections starts from, and the pipelined bottom-up
// query-tree executor of Section 8.2.
//
// All operators consume and produce lists sorted by reverse-DN key, use
// O(1) buffered pages (stacks spill through plist.Stack), and perform
// only counted page I/O, so Theorems 5.1–8.4 can be checked empirically
// against pager statistics.
package engine

import (
	"repro/internal/model"
	"repro/internal/query"
)

// aggStats is the incremental state of one aggregate computation: enough
// to answer any of the five "distributive or algebraic" functions of the
// Fig 9 grammar (min, max, count, sum, average — Section 6.4 notes all
// such aggregates admit this treatment).
type aggStats struct {
	count int64 // folded items (entries for count($2), values otherwise)
	sum   int64
	min   int64
	max   int64
	has   bool // at least one *value* folded (min/max/sum validity)
}

// addValue folds one integer value.
func (s *aggStats) addValue(v int64) {
	s.count++
	s.sum += v
	if !s.has || v < s.min {
		s.min = v
	}
	if !s.has || v > s.max {
		s.max = v
	}
	s.has = true
}

// addEntry folds one witness entry for a value-less count($2).
func (s *aggStats) addEntry() { s.count++ }

// merge folds another state into s (the ⊕ of the stack algorithms).
func (s *aggStats) merge(t aggStats) {
	s.count += t.count
	s.sum += t.sum
	if t.has {
		if !s.has || t.min < s.min {
			s.min = t.min
		}
		if !s.has || t.max > s.max {
			s.max = t.max
		}
		s.has = true
	}
}

// value evaluates fn over the folded items. ok is false when the
// aggregate is undefined (min/max/sum/average over an empty set).
func (s aggStats) value(fn query.AggFunc) (v int64, ok bool) {
	switch fn {
	case query.AggCount:
		return s.count, true
	case query.AggSum:
		return s.sum, s.count > 0
	case query.AggMin:
		return s.min, s.has
	case query.AggMax:
		return s.max, s.has
	case query.AggAvg:
		if s.count == 0 {
			return 0, false
		}
		return s.sum / s.count, true // integer semantics, floored
	default:
		return 0, false
	}
}

// encode appends the state as 5 int64s; decode reverses it.
func (s aggStats) encode(dst []int64) []int64 {
	h := int64(0)
	if s.has {
		h = 1
	}
	return append(dst, s.count, s.sum, s.min, s.max, h)
}

const statsInts = 5

func decodeStats(src []int64) aggStats {
	return aggStats{count: src[0], sum: src[1], min: src[2], max: src[3], has: src[4] != 0}
}

// foldEntryValues folds the values of attr in e: every value counts
// (count(SLAPVPRef) counts DN references too — Example 6.1), while the
// numeric statistics fold only integer values. An empty attr folds the
// entry itself (count($2) semantics).
func foldEntryValues(e *model.Entry, attr string) aggStats {
	var s aggStats
	if attr == "" {
		s.addEntry()
		return s
	}
	for _, v := range e.Values(attr) {
		if v.Kind() == model.KindInt {
			s.addValue(v.Int())
		} else {
			s.count++
		}
	}
	return s
}

// witnessSpecs returns the distinct witness-side fold targets an
// aggregate selection needs: "" for count($2) plus any $2.attr names.
// A nil selection (a plain L1 operator) needs only the entry count —
// the paper's count($2) > 0 special case.
func witnessSpecs(sel *query.AggSel) []string {
	if sel == nil {
		return []string{""}
	}
	seen := map[string]bool{}
	var out []string
	add := func(attr string) {
		if !seen[attr] {
			seen[attr] = true
			out = append(out, attr)
		}
	}
	for _, side := range []query.AggAttr{sel.Left, sel.Right} {
		switch side.Kind {
		case query.KindEntry:
			if side.Entry.Over == query.VarWitness {
				add(side.Entry.Attr)
			}
		case query.KindEntrySet:
			if side.Form == query.SetOfEntry && side.Entry.Over == query.VarWitness {
				add(side.Entry.Attr)
			}
		}
	}
	if len(out) == 0 {
		out = []string{""} // still track the witness count for count($2)>0 fallbacks
	}
	return out
}

// specIndex returns the position of attr in specs.
func specIndex(specs []string, attr string) int {
	for i, s := range specs {
		if s == attr {
			return i
		}
	}
	return -1
}

// setAccs tracks the entry-set accumulators of an aggregate selection:
// one per side that is an entry-set aggregate, plus the count of R1.
type setAccs struct {
	acc [2]aggStats // folded inner entry-aggregate values, per side
	n1  int64       // count($1) / count($$): |R1|
}

// foldSelf folds the self-based (non-witness) entry-set sides for one
// R1 entry; used by the pre-pass of simple aggregate selection and
// phase 2a of structural operators.
func (sa *setAccs) foldSelf(sel *query.AggSel, e *model.Entry) {
	if sel == nil {
		return
	}
	for i, side := range []query.AggAttr{sel.Left, sel.Right} {
		if side.Kind != query.KindEntrySet || side.Form != query.SetOfEntry {
			continue
		}
		if side.Entry.Over != query.VarSelf {
			continue
		}
		inner := foldEntryValues(e, side.Entry.Attr)
		if v, ok := inner.value(side.Entry.Fn); ok {
			sa.acc[i].addValue(v)
		}
	}
}

// foldWitness folds the witness-based entry-set sides for one R1 entry
// whose per-spec witness statistics are known (at finalize time in the
// stack pass or at join time in the ER pass).
func (sa *setAccs) foldWitness(sel *query.AggSel, specs []string, wstats []aggStats) {
	if sel == nil {
		return
	}
	for i, side := range []query.AggAttr{sel.Left, sel.Right} {
		if side.Kind != query.KindEntrySet || side.Form != query.SetOfEntry {
			continue
		}
		if side.Entry.Over != query.VarWitness {
			continue
		}
		si := specIndex(specs, side.Entry.Attr)
		if si < 0 {
			continue
		}
		if v, ok := wstats[si].value(side.Entry.Fn); ok {
			sa.acc[i].addValue(v)
		}
	}
}

// needsSelfPrePass reports whether the selection has a self-based
// entry-set side, requiring an extra scan of R1 before selection.
func needsSelfPrePass(sel *query.AggSel) bool {
	if sel == nil {
		return false
	}
	for _, side := range []query.AggAttr{sel.Left, sel.Right} {
		if side.Kind == query.KindEntrySet && side.Form == query.SetOfEntry &&
			side.Entry.Over == query.VarSelf {
			return true
		}
	}
	return false
}

// evalSide evaluates one aggregate attribute for an R1 entry. wstats
// holds the entry's witness statistics per spec (nil when the operator
// has no witness notion, i.e. simple aggregate selection).
func evalSide(sideIdx int, side query.AggAttr, e *model.Entry, specs []string, wstats []aggStats, sa *setAccs) (int64, bool) {
	switch side.Kind {
	case query.KindConst:
		return side.Const, true
	case query.KindEntry:
		if side.Entry.Over == query.VarWitness {
			si := specIndex(specs, side.Entry.Attr)
			if si < 0 || wstats == nil {
				return 0, false
			}
			return wstats[si].value(side.Entry.Fn)
		}
		return foldEntryValues(e, side.Entry.Attr).value(side.Entry.Fn)
	default: // KindEntrySet
		switch side.Form {
		case query.SetCount1, query.SetCountAll:
			return sa.n1, true
		default:
			return sa.acc[sideIdx].value(side.OuterFn)
		}
	}
}

// evalAggSel applies the selection condition to one R1 entry. A nil
// selection is the count($2) > 0 of the plain hierarchical operators.
func evalAggSel(sel *query.AggSel, e *model.Entry, specs []string, wstats []aggStats, sa *setAccs) bool {
	if sel == nil {
		si := specIndex(specs, "")
		return si >= 0 && wstats != nil && wstats[si].count > 0
	}
	lv, lok := evalSide(0, sel.Left, e, specs, wstats, sa)
	rv, rok := evalSide(1, sel.Right, e, specs, wstats, sa)
	if !lok || !rok {
		return false
	}
	return sel.Op.Compare(lv, rv)
}
