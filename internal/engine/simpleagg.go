package engine

import (
	"io"

	"repro/internal/plist"
	"repro/internal/query"
)

// EvalSimpleAgg evaluates the simple aggregate selection query
// (g L1 AggSelFilter) in at most two scans of L1 (Theorem 6.1): an
// optional first scan computes the entry-set aggregates (count($$) and
// agg1(agg2(attr)) accumulated incrementally, as in Ross et al. [27]);
// the second scan evaluates the per-entry condition and emits.
func (e *Engine) EvalSimpleAgg(l1 *plist.List, sel *query.AggSel) (*plist.List, error) {
	sa := &setAccs{n1: l1.Count()}
	if needsSelfPrePass(sel) {
		rd := l1.Reader()
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			sa.foldSelf(sel, rec.Entry)
		}
	}
	w := plist.NewWriter(e.disk())
	rd := l1.Reader()
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return w.Close()
		}
		if err != nil {
			return nil, err
		}
		if evalAggSel(sel, rec.Entry, nil, nil, sa) {
			if err := w.Append(clean(rec)); err != nil {
				return nil, err
			}
		}
	}
}
