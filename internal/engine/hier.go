package engine

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/plist"
	"repro/internal/query"
)

// hsKind selects the propagation rules of the three stack algorithms.
type hsKind uint8

const (
	kindPC  hsKind = iota // Fig 2: parents/children — immediate relation only
	kindAD                // Fig 4: ancestors/descendants — transitive roll-down
	kindADc               // Fig 5: path-constrained — L3 entries block propagation
)

// hsFrame is one stack entry of the algorithms: the element's key and
// labels plus, per tracked aggregate spec, its own contribution and the
// running above/below statistics. Frames live on the spillable stack;
// the current top is kept decoded in a register.
type hsFrame struct {
	key     string
	label   uint8
	depth   int
	slot    int64 // index into L1 (annotation slot), -1 if not in L1
	contrib []aggStats
	above   []aggStats
	below   []aggStats
}

func encodeFrame(f *hsFrame) []byte {
	b := make([]byte, 0, 64+len(f.key))
	var tmp [binary.MaxVarintLen64]byte
	put := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		b = append(b, tmp[:n]...)
	}
	put(int64(len(f.key)))
	b = append(b, f.key...)
	b = append(b, f.label)
	put(int64(f.depth))
	put(f.slot)
	var ints []int64
	for si := range f.contrib {
		ints = f.contrib[si].encode(ints[:0])
		ints = f.above[si].encode(ints)
		ints = f.below[si].encode(ints)
		for _, v := range ints {
			put(v)
		}
	}
	return b
}

func decodeFrame(b []byte, nSpecs int) (*hsFrame, error) {
	i := 0
	get := func() (int64, error) {
		v, n := binary.Varint(b[i:])
		if n <= 0 {
			return 0, fmt.Errorf("engine: corrupt stack frame")
		}
		i += n
		return v, nil
	}
	klen, err := get()
	if err != nil {
		return nil, err
	}
	if i+int(klen) > len(b) {
		return nil, fmt.Errorf("engine: corrupt stack frame key")
	}
	f := &hsFrame{key: string(b[i : i+int(klen)])}
	i += int(klen)
	if i >= len(b) {
		return nil, fmt.Errorf("engine: corrupt stack frame label")
	}
	f.label = b[i]
	i++
	d, err := get()
	if err != nil {
		return nil, err
	}
	f.depth = int(d)
	if f.slot, err = get(); err != nil {
		return nil, err
	}
	f.contrib = make([]aggStats, nSpecs)
	f.above = make([]aggStats, nSpecs)
	f.below = make([]aggStats, nSpecs)
	ints := make([]int64, statsInts)
	read := func() (aggStats, error) {
		for j := range ints {
			v, err := get()
			if err != nil {
				return aggStats{}, err
			}
			ints[j] = v
		}
		return decodeStats(ints), nil
	}
	for si := 0; si < nSpecs; si++ {
		if f.contrib[si], err = read(); err != nil {
			return nil, err
		}
		if f.above[si], err = read(); err != nil {
			return nil, err
		}
		if f.below[si], err = read(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// ComputeHSPC is Algorithm ComputeHSPC (Figure 2): the stack-based
// computation of the parents and children operators.
func (e *Engine) ComputeHSPC(op query.HierOp, l1, l2 *plist.List) (*plist.List, error) {
	if op != query.OpParents && op != query.OpChildren {
		return nil, fmt.Errorf("engine: ComputeHSPC does not handle %s", op)
	}
	return e.EvalHier(op, l1, l2, nil, nil)
}

// ComputeHSAD is Algorithm ComputeHSAD (Figure 4): ancestors and
// descendants.
func (e *Engine) ComputeHSAD(op query.HierOp, l1, l2 *plist.List) (*plist.List, error) {
	if op != query.OpAncestors && op != query.OpDescendants {
		return nil, fmt.Errorf("engine: ComputeHSAD does not handle %s", op)
	}
	return e.EvalHier(op, l1, l2, nil, nil)
}

// ComputeHSADc is Algorithm ComputeHSADc (Figure 5): the path-
// constrained ancestorsc and descendantsc operators.
func (e *Engine) ComputeHSADc(op query.HierOp, l1, l2, l3 *plist.List) (*plist.List, error) {
	if !op.Ternary() {
		return nil, fmt.Errorf("engine: ComputeHSADc does not handle %s", op)
	}
	return e.EvalHier(op, l1, l2, l3, nil)
}

// ComputeHSAgg is the family of Section 6.4 (Figure 6 shows the
// count($2)=max(count($2)) instantiation): the stack algorithms extended
// to compute arbitrary distributive/algebraic aggregate selections.
func (e *Engine) ComputeHSAgg(op query.HierOp, l1, l2, l3 *plist.List, sel *query.AggSel) (*plist.List, error) {
	return e.EvalHier(op, l1, l2, l3, sel)
}

// EvalHier evaluates any hierarchical selection operator, with or
// without an aggregate selection filter, in a single stack pass over the
// lexicographic merge of the operand lists followed by one or two scans
// of L1. A nil sel means the plain L1 semantics (count($2) > 0).
func (e *Engine) EvalHier(op query.HierOp, l1, l2, l3 *plist.List, sel *query.AggSel) (*plist.List, error) {
	if op.Ternary() != (l3 != nil) {
		return nil, fmt.Errorf("engine: %s needs %sthird operand", op, map[bool]string{true: "a ", false: "no "}[op.Ternary()])
	}
	var kind hsKind
	switch op {
	case query.OpParents, query.OpChildren:
		kind = kindPC
	case query.OpAncestors, query.OpDescendants:
		kind = kindAD
	default:
		kind = kindADc
	}
	// Witnesses of p/a/ac are ancestors: stack "below". c/d/dc: "above".
	useBelow := op == query.OpParents || op == query.OpAncestors || op == query.OpAncestorsC

	specs := witnessSpecs(sel)
	nSpecs := len(specs)
	sa := &setAccs{n1: l1.Count()}

	ann, err := newAnnFile(e.disk(), e.cfg.AnnPoolPages, annSlotSize(nSpecs), l1.Count())
	if err != nil {
		return nil, err
	}
	defer ann.free()

	// Phase 1: the stack pass over the lexicographic merge.
	var m *plist.Merge
	if l3 != nil {
		m = plist.NewMerge(l1.Reader(), l2.Reader(), l3.Reader())
	} else {
		m = plist.NewMerge(l1.Reader(), l2.Reader())
	}
	stack := plist.NewStack(e.disk(), e.cfg.StackWindow)
	defer stack.Release()

	var top *hsFrame
	nextSlot := int64(0)

	finalize := func(f *hsFrame) error {
		if f.label&1 == 0 {
			return nil
		}
		dir := f.above
		if useBelow {
			dir = f.below
		}
		if err := ann.setStats(f.slot, dir); err != nil {
			return err
		}
		sa.foldWitness(sel, specs, dir)
		return nil
	}

	// pop finalizes the top frame, restores the previous frame from the
	// stack, and applies the kind's roll-down rule.
	pop := func() error {
		t := top
		if err := finalize(t); err != nil {
			return err
		}
		if stack.Empty() {
			top = nil
			return nil
		}
		raw, err := stack.Pop()
		if err != nil {
			return err
		}
		nt, err := decodeFrame(raw, nSpecs)
		if err != nil {
			return err
		}
		switch kind {
		case kindAD:
			for si := range nt.above {
				nt.above[si].merge(t.above[si])
			}
		case kindADc:
			if t.label&4 == 0 { // not a blocker: roll down
				for si := range nt.above {
					nt.above[si].merge(t.above[si])
				}
			}
		}
		top = nt
		return nil
	}

	for {
		rec, err := m.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		f := &hsFrame{
			key:     rec.Key,
			label:   rec.Label,
			depth:   model.KeyDepth(rec.Key),
			slot:    -1,
			contrib: make([]aggStats, nSpecs),
			above:   make([]aggStats, nSpecs),
			below:   make([]aggStats, nSpecs),
		}
		if rec.Label&1 != 0 {
			f.slot = nextSlot
			nextSlot++
		}
		if rec.Label&2 != 0 {
			for si, attr := range specs {
				f.contrib[si] = foldEntryValues(rec.Entry, attr)
			}
		}
		// Pop non-ancestors of the new element.
		for top != nil && !model.KeyIsAncestor(top.key, f.key) {
			if err := pop(); err != nil {
				return nil, err
			}
		}
		if top != nil {
			t := top
			switch kind {
			case kindPC:
				if t.depth+1 == f.depth { // immediate parent on stack
					if f.label&2 != 0 {
						for si := range t.above {
							t.above[si].merge(f.contrib[si])
						}
					}
					if t.label&2 != 0 {
						for si := range f.below {
							f.below[si].merge(t.contrib[si])
						}
					}
				}
			case kindAD:
				if f.label&2 != 0 {
					for si := range t.above {
						t.above[si].merge(f.contrib[si])
					}
				}
				for si := range f.below {
					f.below[si].merge(t.below[si])
					if t.label&2 != 0 {
						f.below[si].merge(t.contrib[si])
					}
				}
			case kindADc:
				if f.label&2 != 0 {
					for si := range t.above {
						t.above[si].merge(f.contrib[si])
					}
				}
				blocker := t.label&4 != 0
				for si := range f.below {
					if !blocker {
						f.below[si].merge(t.below[si])
					}
					if t.label&2 != 0 {
						f.below[si].merge(t.contrib[si])
					}
				}
			}
			if err := stack.Push(encodeFrame(t)); err != nil {
				return nil, err
			}
		}
		top = f
	}
	for top != nil {
		if err := pop(); err != nil {
			return nil, err
		}
	}

	// Phase 2a: self-based entry-set accumulators need one L1 scan.
	if needsSelfPrePass(sel) {
		rd := l1.Reader()
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			sa.foldSelf(sel, rec.Entry)
		}
	}

	// Phase 2: scan L1 in order, apply the selection, emit.
	w := plist.NewWriter(e.disk())
	rd := l1.Reader()
	slot := int64(0)
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		wstats, err := ann.getStats(slot, nSpecs)
		if err != nil {
			return nil, err
		}
		slot++
		if evalAggSel(sel, rec.Entry, specs, wstats, sa) {
			if err := w.Append(clean(rec)); err != nil {
				return nil, err
			}
		}
	}
	return w.Close()
}
