package cowtree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/pager"
)

// Node layout (one page, default 4 KB):
//
//	| header | pointers | offsets | kv-cells |
//
// header (4 bytes): btype uint16, nkeys uint16.
// pointers (internal nodes only): nkeys × 4-byte child PageIDs.
// offsets: nkeys × 2-byte end offsets of each kv-cell, relative to the
// cells section, so cell i spans [off(i-1), off(i)) with off(-1) = 0.
// kv-cell: | klen uint16 | vlen uint16 | key | val |. Internal nodes
// carry empty vals; key i is the minimum key of child i.
//
// The layout is the SIGMOD-era slotted-page idiom: fixed-width lookup
// tables up front so the i-th key is found with two loads, variable
// bytes packed behind. Mutations never edit a node in place — they
// build a fresh image (nodeAppend*) and write it to a fresh page,
// which is what makes the tree copy-on-write.

// Node types.
const (
	leafNode     = 1
	internalNode = 2
)

const headerSize = 4

// node is one page image. All accessors assume a validated image
// (validateNode) or one built by this package.
type node []byte

func (n node) btype() uint16 { return binary.LittleEndian.Uint16(n[0:2]) }
func (n node) nkeys() int    { return int(binary.LittleEndian.Uint16(n[2:4])) }

func (n node) setHeader(btype uint16, nkeys int) {
	binary.LittleEndian.PutUint16(n[0:2], btype)
	binary.LittleEndian.PutUint16(n[2:4], uint16(nkeys))
}

// ptrPos returns the byte position of child pointer i.
func (n node) ptrPos(i int) int { return headerSize + 4*i }

func (n node) ptr(i int) pager.PageID {
	return pager.PageID(binary.LittleEndian.Uint32(n[n.ptrPos(i):]))
}

func (n node) setPtr(i int, id pager.PageID) {
	binary.LittleEndian.PutUint32(n[n.ptrPos(i):], uint32(id))
}

// ptrSectionLen returns the size of the pointers section.
func (n node) ptrSectionLen() int {
	if n.btype() == internalNode {
		return 4 * n.nkeys()
	}
	return 0
}

// offPos returns the byte position of the i-th cell end offset.
func (n node) offPos(i int) int { return headerSize + n.ptrSectionLen() + 2*i }

// off returns the end offset of cell i relative to the cells section;
// off(-1) is 0.
func (n node) off(i int) int {
	if i < 0 {
		return 0
	}
	return int(binary.LittleEndian.Uint16(n[n.offPos(i):]))
}

func (n node) setOff(i, v int) {
	binary.LittleEndian.PutUint16(n[n.offPos(i):], uint16(v))
}

// cellsStart returns the byte position of the kv-cells section.
func (n node) cellsStart() int { return headerSize + n.ptrSectionLen() + 2*n.nkeys() }

// cell returns the raw bytes of cell i.
func (n node) cell(i int) []byte {
	s := n.cellsStart()
	return n[s+n.off(i-1) : s+n.off(i)]
}

func (n node) key(i int) []byte {
	c := n.cell(i)
	klen := int(binary.LittleEndian.Uint16(c[0:2]))
	return c[4 : 4+klen]
}

func (n node) val(i int) []byte {
	c := n.cell(i)
	klen := int(binary.LittleEndian.Uint16(c[0:2]))
	vlen := int(binary.LittleEndian.Uint16(c[2:4]))
	return c[4+klen : 4+klen+vlen]
}

// nbytes returns the encoded size of the node image.
func (n node) nbytes() int { return n.cellsStart() + n.off(n.nkeys()-1) }

// cellSize returns the encoded size of a cell holding key and val.
func cellSize(key, val []byte) int { return 4 + len(key) + len(val) }

// lookupLE returns the greatest index whose key is <= key, or -1 if
// every key is greater. Binary search over the offset table.
func (n node) lookupLE(key []byte) int {
	lo, hi := 0, n.nkeys() // invariant: keys[<lo] <= key < keys[>=hi]
	for lo < hi {
		mid := (lo + hi) / 2
		if cmp(n.key(mid), key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

func cmp(a, b []byte) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// newNode returns an empty node image with room for an oversized
// (pre-split) build: capacity is twice the page size so an insert into
// a full node can be materialized before splitting.
func newNode(pageSize int, btype uint16, nkeys int) node {
	n := node(make([]byte, 2*pageSize))
	n.setHeader(btype, nkeys)
	return n
}

// appendCell writes cell i (and, for internal nodes, child pointer i)
// into a node being built left to right. Cells must be appended in
// ascending i order.
func (n node) appendCell(i int, ptr pager.PageID, key, val []byte) {
	if n.btype() == internalNode {
		n.setPtr(i, ptr)
	}
	s := n.cellsStart()
	pos := s + n.off(i-1)
	binary.LittleEndian.PutUint16(n[pos:], uint16(len(key)))
	binary.LittleEndian.PutUint16(n[pos+2:], uint16(len(val)))
	copy(n[pos+4:], key)
	copy(n[pos+4+len(key):], val)
	n.setOff(i, n.off(i-1)+cellSize(key, val))
}

// appendRange copies cells [srcLo, srcLo+count) of old into positions
// starting at dstLo of n (same node type assumed).
func (n node) appendRange(old node, dstLo, srcLo, count int) {
	for i := 0; i < count; i++ {
		var p pager.PageID
		if old.btype() == internalNode {
			p = old.ptr(srcLo + i)
		}
		n.appendCell(dstLo+i, p, old.key(srcLo+i), old.val(srcLo+i))
	}
}

// trim returns the node image cut to its encoded length.
func (n node) trim() node { return n[:n.nbytes()] }

// validateNode checks that an untrusted page image is a structurally
// sound node for the given page size: sane type and key count, offset
// table strictly increasing, every cell in bounds with consistent
// key/val lengths, and total size within the page. It never panics on
// hostile bytes (FuzzNodeRoundTrip feeds it arbitrary input).
func validateNode(b []byte, pageSize int) error {
	if len(b) < headerSize {
		return errors.New("cowtree: node shorter than header")
	}
	n := node(b)
	t := n.btype()
	if t != leafNode && t != internalNode {
		return fmt.Errorf("cowtree: bad node type %d", t)
	}
	nk := n.nkeys()
	if t == internalNode && nk == 0 {
		return errors.New("cowtree: internal node with no children")
	}
	fixed := n.cellsStart()
	if fixed > len(b) || fixed > pageSize {
		return errors.New("cowtree: lookup tables exceed page")
	}
	prev := 0
	for i := 0; i < nk; i++ {
		end := n.off(i)
		if end <= prev {
			return fmt.Errorf("cowtree: offset table not increasing at %d", i)
		}
		if fixed+end > len(b) || fixed+end > pageSize {
			return fmt.Errorf("cowtree: cell %d out of bounds", i)
		}
		c := b[fixed+prev : fixed+end]
		if len(c) < 4 {
			return fmt.Errorf("cowtree: cell %d shorter than its header", i)
		}
		klen := int(binary.LittleEndian.Uint16(c[0:2]))
		vlen := int(binary.LittleEndian.Uint16(c[2:4]))
		if 4+klen+vlen != len(c) {
			return fmt.Errorf("cowtree: cell %d length mismatch", i)
		}
		if t == internalNode && vlen != 0 {
			return fmt.Errorf("cowtree: internal cell %d carries a value", i)
		}
		prev = end
	}
	for i := 1; i < nk; i++ {
		if cmp(n.key(i-1), n.key(i)) >= 0 {
			return fmt.Errorf("cowtree: keys not strictly ascending at %d", i)
		}
	}
	return nil
}
