package cowtree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/pager"
)

func testTree(t *testing.T, pageSize int) (*Tree, *pager.Disk) {
	t.Helper()
	d := pager.NewDisk(pageSize)
	return New(DiskIO(d), pageSize), d
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d-%s", i, string(make([]byte, i%50)))) }

func TestInsertGetDelete(t *testing.T) {
	tr, _ := testTree(t, 512)
	const N = 2000
	perm := rand.New(rand.NewSource(1)).Perm(N)
	for _, i := range perm {
		added, err := tr.Insert(key(i), val(i))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if !added {
			t.Fatalf("insert %d: reported replace on fresh key", i)
		}
	}
	if tr.Len() != N {
		t.Fatalf("Len = %d, want %d", tr.Len(), N)
	}
	for i := 0; i < N; i++ {
		v, ok, err := tr.Get(key(i), nil)
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("get %d: wrong value", i)
		}
	}
	// Upsert half the keys.
	for i := 0; i < N; i += 2 {
		added, err := tr.Insert(key(i), []byte("replaced"))
		if err != nil || added {
			t.Fatalf("upsert %d: added=%v err=%v", i, added, err)
		}
	}
	if tr.Len() != N {
		t.Fatalf("Len after upserts = %d, want %d", tr.Len(), N)
	}
	// Delete in random order, verifying presence flags.
	for _, i := range perm {
		found, err := tr.Delete(key(i))
		if err != nil || !found {
			t.Fatalf("delete %d: found=%v err=%v", i, found, err)
		}
		if found, err = tr.Delete(key(i)); err != nil || found {
			t.Fatalf("re-delete %d: found=%v err=%v", i, found, err)
		}
	}
	if tr.Len() != 0 || tr.Root() != 0 {
		t.Fatalf("after full delete: len=%d root=%d", tr.Len(), tr.Root())
	}
}

func TestScanOrderAndRange(t *testing.T) {
	tr, _ := testTree(t, 512)
	const N = 1000
	for _, i := range rand.New(rand.NewSource(2)).Perm(N) {
		if _, err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := tr.Scan(nil, nil, nil, func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != N {
		t.Fatalf("full scan returned %d keys, want %d", len(got), N)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("scan out of order")
	}
	// Half-open range [key(100), key(200)).
	var rng []string
	if err := tr.Scan(key(100), key(200), nil, func(k, _ []byte) bool {
		rng = append(rng, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(rng) != 100 || rng[0] != string(key(100)) || rng[99] != string(key(199)) {
		t.Fatalf("range scan wrong: n=%d first=%q last=%q", len(rng), rng[0], rng[len(rng)-1])
	}
	// Seek between keys lands on the next one.
	it := tr.Seek([]byte("key-000100x"), nil)
	if !it.Valid() || string(it.Key()) != string(key(101)) {
		t.Fatalf("seek between keys: valid=%v", it.Valid())
	}
}

func TestCopyOnWritePreservesOldRoot(t *testing.T) {
	pageSize := 512
	d := pager.NewDisk(pageSize)
	tr := New(DiskIO(d), pageSize)
	const N = 300
	for i := 0; i < N; i++ {
		if _, err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Publish: freeze the root, keep mutating through a snapshot-style
	// second handle. Old pages must not be freed while the old root is
	// live, so mutate on a fork of the disk — the overlay usage pattern.
	oldRoot, oldLen := tr.Root(), tr.Len()
	fork := d.Fork()
	tr2 := Open(DiskIO(fork), pageSize, oldRoot, oldLen)
	for i := 0; i < N; i += 3 {
		if _, err := tr2.Insert(key(i), []byte("mutated")); err != nil {
			t.Fatal(err)
		}
	}
	for i := N; i < N+50; i++ {
		if _, err := tr2.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The old root over the old disk still reads the original values.
	old := Open(DiskIO(d), pageSize, oldRoot, oldLen)
	for i := 0; i < N; i++ {
		v, ok, err := old.Get(key(i), nil)
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("old root key %d: ok=%v err=%v", i, ok, err)
		}
	}
	if _, ok, _ := old.Get(key(N+1), nil); ok {
		t.Fatal("old root sees a key inserted after publish")
	}
	// And the new root sees the mutations.
	for i := 0; i < N; i += 3 {
		v, ok, err := tr2.Get(key(i), nil)
		if err != nil || !ok || string(v) != "mutated" {
			t.Fatalf("new root key %d: %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

func TestMutationTouchesLogNPages(t *testing.T) {
	pageSize := pager.DefaultPageSize
	d := pager.NewDisk(pageSize)
	tr := New(DiskIO(d), pageSize)
	const N = 20000
	for i := 0; i < N; i++ {
		if _, err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	fork := d.Fork()
	tf := Open(DiskIO(fork), pageSize, tr.Root(), tr.Len())
	if _, err := tf.Insert([]byte("key-0100005"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Path copy: at most the root→leaf path plus one split per level.
	if n := fork.DirtyCount(); n > 10 {
		t.Fatalf("single insert dirtied %d pages; want O(log N)", n)
	}
}

func TestFreeListRecyclesPages(t *testing.T) {
	pageSize := 512
	d := pager.NewDisk(pageSize)
	tr := New(DiskIO(d), pageSize)
	for i := 0; i < 500; i++ {
		if _, err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	live := d.NumPages()
	// Steady-state churn must not grow the device: every COW'd page is
	// Del'd back to the free list and reused.
	for round := 0; round < 20; round++ {
		for i := 0; i < 500; i += 7 {
			if _, err := tr.Insert(key(i), val(i+round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if after := d.NumPages(); after > live+2 {
		t.Fatalf("page churn leaked: %d live pages before, %d after", live, after)
	}
}

func TestItemLimits(t *testing.T) {
	tr, _ := testTree(t, 512)
	if _, err := tr.Insert(nil, []byte("v")); err != ErrEmptyKey {
		t.Fatalf("empty key: %v", err)
	}
	big := make([]byte, tr.MaxItem()+1)
	if _, err := tr.Insert([]byte("k"), big); err != ErrItemTooLarge {
		t.Fatalf("oversized item: %v", err)
	}
	// Exactly MaxItem fits.
	k := []byte("k")
	if _, err := tr.Insert(k, make([]byte, tr.MaxItem()-len(k))); err != nil {
		t.Fatalf("max item insert: %v", err)
	}
}

func TestDifferentialAgainstMap(t *testing.T) {
	tr, _ := testTree(t, 1024)
	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 30000; step++ {
		k := fmt.Sprintf("k%04d", rng.Intn(3000))
		switch rng.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("v%d", step)
			added, err := tr.Insert([]byte(k), []byte(v))
			if err != nil {
				t.Fatal(err)
			}
			_, existed := oracle[k]
			if added == existed {
				t.Fatalf("step %d: added=%v but existed=%v", step, added, existed)
			}
			oracle[k] = v
		case 2:
			found, err := tr.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			_, existed := oracle[k]
			if found != existed {
				t.Fatalf("step %d: delete found=%v existed=%v", step, found, existed)
			}
			delete(oracle, k)
		}
	}
	if tr.Len() != len(oracle) {
		t.Fatalf("Len=%d oracle=%d", tr.Len(), len(oracle))
	}
	got := map[string]string{}
	if err := tr.Scan(nil, nil, nil, func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(oracle) {
		t.Fatalf("scan size %d != oracle %d", len(got), len(oracle))
	}
	for k, v := range oracle {
		if got[k] != v {
			t.Fatalf("key %q: got %q want %q", k, got[k], v)
		}
	}
}
