package cowtree

import "repro/internal/pager"

// Iter walks the tree in ascending key order. Because COW nodes carry
// no sibling links (path copying would invalidate them), the iterator
// keeps the root→leaf descent stack and climbs it when a leaf is
// exhausted. The usual snapshot guarantee applies: an Iter over a
// published root stays valid forever, even across later mutations of
// a forked tree.
type Iter struct {
	t     *Tree
	m     *pager.Meter
	stack []iterFrame
	err   error
}

type iterFrame struct {
	n   node
	idx int
}

// Seek positions an iterator at the first key >= lo. Reads along the
// descent (and all subsequent Next reads) are charged to m.
func (t *Tree) Seek(lo []byte, m *pager.Meter) *Iter {
	it := &Iter{t: t, m: m}
	id := t.root
	for id != 0 {
		n, err := t.getNode(id, m)
		if err != nil {
			it.err = err
			return it
		}
		i := n.lookupLE(lo)
		if n.btype() == leafNode {
			if i < 0 || cmp(n.key(i), lo) != 0 {
				i++ // first key strictly greater than lo
			}
			it.stack = append(it.stack, iterFrame{n: n, idx: i})
			if i >= n.nkeys() {
				it.climb()
			}
			return it
		}
		if i < 0 {
			i = 0
		}
		it.stack = append(it.stack, iterFrame{n: n, idx: i})
		id = n.ptr(i)
	}
	return it
}

// Valid reports whether the iterator is positioned on a key.
func (it *Iter) Valid() bool {
	return it.err == nil && len(it.stack) > 0
}

// Err returns the read error that stopped the iterator, if any.
func (it *Iter) Err() error { return it.err }

// Key returns the current key (aliases the page buffer; valid until
// the tree's pages are freed).
func (it *Iter) Key() []byte {
	f := &it.stack[len(it.stack)-1]
	return f.n.key(f.idx)
}

// Val returns the current value (same aliasing as Key).
func (it *Iter) Val() []byte {
	f := &it.stack[len(it.stack)-1]
	return f.n.val(f.idx)
}

// Next advances to the following key; the iterator becomes invalid at
// the end of the tree.
func (it *Iter) Next() {
	if !it.Valid() {
		return
	}
	f := &it.stack[len(it.stack)-1]
	f.idx++
	if f.idx >= f.n.nkeys() {
		it.climb()
	}
}

// climb pops exhausted frames, advances the nearest ancestor with
// remaining children, and descends to the leftmost leaf below it.
func (it *Iter) climb() {
	for len(it.stack) > 0 {
		f := &it.stack[len(it.stack)-1]
		if f.idx < f.n.nkeys() {
			if f.n.btype() == leafNode {
				return
			}
			id := f.n.ptr(f.idx)
			n, err := it.t.getNode(id, it.m)
			if err != nil {
				it.err = err
				it.stack = nil
				return
			}
			it.stack = append(it.stack, iterFrame{n: n, idx: 0})
			if n.btype() == leafNode && n.nkeys() > 0 {
				return
			}
			continue
		}
		it.stack = it.stack[:len(it.stack)-1]
		if len(it.stack) > 0 {
			it.stack[len(it.stack)-1].idx++
		}
	}
}

// Scan calls fn for every key in [lo, hi) in ascending order, stopping
// early if fn returns false. A nil hi means "to the end".
func (t *Tree) Scan(lo, hi []byte, m *pager.Meter, fn func(key, val []byte) bool) error {
	it := t.Seek(lo, m)
	for ; it.Valid(); it.Next() {
		if hi != nil && cmp(it.Key(), hi) >= 0 {
			break
		}
		if !fn(it.Key(), it.Val()) {
			break
		}
	}
	return it.Err()
}
