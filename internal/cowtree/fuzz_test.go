package cowtree

import (
	"bytes"
	"testing"
)

// FuzzNodeRoundTrip drives the 4 KB node encoding from two directions:
// the fuzz input is first decoded as a hostile page image (validateNode
// must reject or accept without panicking), then re-interpreted as a
// stream of kv items that are appended into a fresh node, which must
// validate and read back bit-identically.
func FuzzNodeRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte("\x01\x00\x02\x00some page bytes"))
	seed := newNode(256, leafNode, 2)
	seed.appendCell(0, 0, []byte("a"), []byte("1"))
	seed.appendCell(1, 0, []byte("b"), []byte("22"))
	f.Add([]byte(seed.trim()))
	f.Fuzz(func(t *testing.T, data []byte) {
		const pageSize = 4096
		// Direction 1: hostile image. Must never panic; if it validates,
		// every accessor must stay in bounds (exercised via re-encode).
		if err := validateNode(data, pageSize); err == nil {
			n := node(data)
			out := newNode(pageSize, n.btype(), n.nkeys())
			out.appendRange(n, 0, 0, n.nkeys())
			if out.nbytes() != n.nbytes() {
				t.Fatalf("re-encode size %d != original %d", out.nbytes(), n.nbytes())
			}
			if !bytes.Equal(out.trim()[headerSize:], node(data).trim()[headerSize:]) &&
				n.btype() == leafNode {
				t.Fatal("leaf re-encode not bit-identical")
			}
		}
		// Direction 2: build a node from the input interpreted as kv
		// items, then decode it back.
		type kv struct{ k, v []byte }
		var items []kv
		prev := []byte(nil)
		for i := 0; i+2 <= len(data) && len(items) < 64; {
			klen := int(data[i]%8) + 1
			vlen := int(data[i+1] % 16)
			i += 2
			if i+klen+vlen > len(data) {
				break
			}
			k := data[i : i+klen]
			v := data[i+klen : i+klen+vlen]
			i += klen + vlen
			if prev != nil && cmp(prev, k) >= 0 {
				continue // keys must be strictly ascending
			}
			prev = k
			items = append(items, kv{k, v})
		}
		if len(items) == 0 {
			return
		}
		n := newNode(pageSize, leafNode, len(items))
		for i, it := range items {
			n.appendCell(i, 0, it.k, it.v)
		}
		img := n.trim()
		if err := validateNode(img, pageSize); err != nil {
			t.Fatalf("built node fails validation: %v", err)
		}
		dec := node(img)
		if dec.nkeys() != len(items) {
			t.Fatalf("nkeys %d != %d", dec.nkeys(), len(items))
		}
		for i, it := range items {
			if !bytes.Equal(dec.key(i), it.k) || !bytes.Equal(dec.val(i), it.v) {
				t.Fatalf("item %d did not round-trip", i)
			}
			if got := dec.lookupLE(it.k); got != i {
				t.Fatalf("lookupLE(%q) = %d, want %d", it.k, got, i)
			}
		}
	})
}
