// Package cowtree implements a copy-on-write B-tree over a paged
// device: mutations path-copy root→leaf, writing O(log N) fresh pages
// and freeing the replaced ones, so an entry-level update of a large
// store dirties a handful of pages instead of rebuilding O(N). The
// published root is never edited in place, which is exactly the
// property the snapshot-swap core and the page-delta checkpoints need:
// an old root keeps describing the old tree forever, and the dirty
// page set between two roots is a valid checkpoint delta.
//
// The tree talks to storage through three callbacks (get/new/del), so
// it runs over pager.Disk, a fork of one, or a test harness alike.
// Node layout is the 4 KB slotted-page encoding documented in node.go.
package cowtree

import (
	"errors"
	"fmt"

	"repro/internal/pager"
)

// PageIO is the callback triple the tree uses for page storage. Get
// reads a page image (charging the optional meter), New allocates a
// fresh page holding data, Del returns a page to the device's free
// list. DiskIO adapts a pager.Disk.
type PageIO struct {
	Get func(id pager.PageID, m *pager.Meter) ([]byte, error)
	New func(data []byte) (pager.PageID, error)
	Del func(id pager.PageID) error
}

// DiskIO returns the PageIO triple over a pager.Disk: reads count on
// the disk's stats (plus the caller's meter, the arena idiom), New is
// Alloc+Write, Del is Free — so freed COW pages recycle through the
// disk's free list.
func DiskIO(d *pager.Disk) PageIO {
	return PageIO{
		Get: func(id pager.PageID, m *pager.Meter) ([]byte, error) {
			buf := make([]byte, d.PageSize())
			if err := d.Read(id, buf); err != nil {
				return nil, err
			}
			m.Add(pager.Stats{Reads: 1})
			return buf, nil
		},
		New: func(data []byte) (pager.PageID, error) {
			id, err := d.Alloc()
			if err != nil {
				return 0, err
			}
			if err := d.Write(id, data); err != nil {
				return 0, err
			}
			return id, nil
		},
		Del: d.Free,
	}
}

// Tree is a copy-on-write B-tree. Not safe for concurrent mutation;
// concurrent readers of an already-published root are safe because no
// mutation ever edits a reachable page.
type Tree struct {
	io       PageIO
	pageSize int
	root     pager.PageID
	n        int
}

// Tree-level errors.
var (
	ErrItemTooLarge = errors.New("cowtree: key+value exceeds MaxItem")
	ErrEmptyKey     = errors.New("cowtree: empty key")
)

// New creates an empty tree (root 0) over io with the given page size.
func New(io PageIO, pageSize int) *Tree {
	if pageSize <= 0 {
		pageSize = pager.DefaultPageSize
	}
	return &Tree{io: io, pageSize: pageSize}
}

// Open resumes a tree from a persisted root pointer and key count.
func Open(io PageIO, pageSize int, root pager.PageID, n int) *Tree {
	t := New(io, pageSize)
	t.root, t.n = root, n
	return t
}

// Root returns the current root page (0 when empty). Persisting the
// root and Len is all a snapshot manifest needs.
func (t *Tree) Root() pager.PageID { return t.root }

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.n }

// MaxItem returns the largest len(key)+len(value) the tree accepts —
// a quarter page, so a post-insert split always yields halves that fit.
func (t *Tree) MaxItem() int { return t.pageSize/4 - 16 }

// splitTarget is the byte size the left half of a split aims for.
func (t *Tree) splitTarget() int { return t.pageSize * 3 / 4 }

func (t *Tree) getNode(id pager.PageID, m *pager.Meter) (node, error) {
	b, err := t.io.Get(id, m)
	if err != nil {
		return nil, err
	}
	if err := validateNode(b, t.pageSize); err != nil {
		return nil, fmt.Errorf("page %d: %w", id, err)
	}
	return node(b), nil
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte, m *pager.Meter) ([]byte, bool, error) {
	id := t.root
	for id != 0 {
		n, err := t.getNode(id, m)
		if err != nil {
			return nil, false, err
		}
		i := n.lookupLE(key)
		if n.btype() == leafNode {
			if i >= 0 && cmp(n.key(i), key) == 0 {
				return n.val(i), true, nil
			}
			return nil, false, nil
		}
		if i < 0 {
			i = 0
		}
		id = n.ptr(i)
	}
	return nil, false, nil
}

// link is one (min key, page) edge handed up the copy path: the
// replacement(s) for the subtree a recursive call rewrote.
type link struct {
	key []byte
	id  pager.PageID
}

// Insert upserts key → val, path-copying from root to leaf. It reports
// whether the key was newly added (false: an existing value was
// replaced).
func (t *Tree) Insert(key, val []byte) (bool, error) {
	if len(key) == 0 {
		return false, ErrEmptyKey
	}
	if len(key)+len(val) > t.MaxItem() {
		return false, ErrItemTooLarge
	}
	if t.root == 0 {
		n := newNode(t.pageSize, leafNode, 1)
		n.appendCell(0, 0, key, val)
		id, err := t.io.New(n.trim())
		if err != nil {
			return false, err
		}
		t.root = id
		t.n = 1
		return true, nil
	}
	links, added, err := t.insertR(t.root, key, val)
	if err != nil {
		return false, err
	}
	if err := t.setRoot(links); err != nil {
		return false, err
	}
	if added {
		t.n++
	}
	return added, nil
}

// setRoot installs the links returned by a root-level rewrite: one
// link becomes the root directly, two grow the tree by a level.
func (t *Tree) setRoot(links []link) error {
	switch len(links) {
	case 0:
		t.root = 0
	case 1:
		t.root = links[0].id
	default:
		n := newNode(t.pageSize, internalNode, len(links))
		for i, l := range links {
			n.appendCell(i, l.id, l.key, nil)
		}
		id, err := t.io.New(n.trim())
		if err != nil {
			return err
		}
		t.root = id
	}
	return nil
}

func (t *Tree) insertR(id pager.PageID, key, val []byte) ([]link, bool, error) {
	n, err := t.getNode(id, nil)
	if err != nil {
		return nil, false, err
	}
	var out node
	added := false
	if n.btype() == leafNode {
		i := n.lookupLE(key)
		replace := i >= 0 && cmp(n.key(i), key) == 0
		nk := n.nkeys()
		if replace {
			out = newNode(t.pageSize, leafNode, nk)
			out.appendRange(n, 0, 0, i)
			out.appendCell(i, 0, key, val)
			out.appendRange(n, i+1, i+1, nk-i-1)
		} else {
			added = true
			out = newNode(t.pageSize, leafNode, nk+1)
			out.appendRange(n, 0, 0, i+1)
			out.appendCell(i+1, 0, key, val)
			out.appendRange(n, i+2, i+1, nk-i-1)
		}
	} else {
		i := n.lookupLE(key)
		if i < 0 {
			i = 0
		}
		var links []link
		links, added, err = t.insertR(n.ptr(i), key, val)
		if err != nil {
			return nil, false, err
		}
		out, err = t.replaceChild(n, i, 1, links)
		if err != nil {
			return nil, false, err
		}
	}
	if err := t.io.Del(id); err != nil {
		return nil, false, err
	}
	links, err := t.writeSplit(out)
	return links, added, err
}

// replaceChild builds a copy of internal node n with cells
// [i, i+count) replaced by links.
func (t *Tree) replaceChild(n node, i, count int, links []link) (node, error) {
	nk := n.nkeys()
	out := newNode(t.pageSize, internalNode, nk-count+len(links))
	out.appendRange(n, 0, 0, i)
	for j, l := range links {
		out.appendCell(i+j, l.id, l.key, nil)
	}
	out.appendRange(n, i+len(links), i+count, nk-i-count)
	return out, nil
}

// writeSplit writes a (possibly oversized) node image to fresh pages,
// splitting byte-balanced into two when it exceeds the page, and
// returns the resulting links.
func (t *Tree) writeSplit(n node) ([]link, error) {
	if n.nbytes() <= t.pageSize {
		id, err := t.io.New(n.trim())
		if err != nil {
			return nil, err
		}
		return []link{{key: append([]byte(nil), n.key(0)...), id: id}}, nil
	}
	// Largest prefix whose encoded size stays within splitTarget. The
	// MaxItem bound guarantees both halves then fit a page.
	nk := n.nkeys()
	perCell := 2
	if n.btype() == internalNode {
		perCell = 6
	}
	cut := nk - 1
	for i := 1; i < nk; i++ {
		if headerSize+perCell*i+n.off(i-1) > t.splitTarget() {
			cut = i
			break
		}
	}
	left := newNode(t.pageSize, n.btype(), cut)
	left.appendRange(n, 0, 0, cut)
	right := newNode(t.pageSize, n.btype(), nk-cut)
	right.appendRange(n, 0, cut, nk-cut)
	if left.nbytes() > t.pageSize || right.nbytes() > t.pageSize {
		return nil, fmt.Errorf("cowtree: split halves exceed page (%d/%d)", left.nbytes(), right.nbytes())
	}
	lid, err := t.io.New(left.trim())
	if err != nil {
		return nil, err
	}
	rid, err := t.io.New(right.trim())
	if err != nil {
		return nil, err
	}
	return []link{
		{key: append([]byte(nil), left.key(0)...), id: lid},
		{key: append([]byte(nil), right.key(0)...), id: rid},
	}, nil
}

// Delete removes key, path-copying the route to it. It reports whether
// the key was present; an absent key touches no pages. Emptied nodes
// are removed (and the tree height collapses at the root), but no
// rebalancing below that is attempted — the overlay workload is
// insert-mostly and the tree is rebuilt at every compaction.
func (t *Tree) Delete(key []byte) (bool, error) {
	if t.root == 0 {
		return false, nil
	}
	links, found, err := t.deleteR(t.root, key)
	if err != nil || !found {
		return false, err
	}
	// Collapse a single-child internal root so height tracks content.
	for len(links) == 1 {
		n, err := t.getNode(links[0].id, nil)
		if err != nil {
			return false, err
		}
		if n.btype() != internalNode || n.nkeys() != 1 {
			break
		}
		child := n.ptr(0)
		if err := t.io.Del(links[0].id); err != nil {
			return false, err
		}
		links = []link{{key: links[0].key, id: child}}
	}
	if err := t.setRoot(links); err != nil {
		return false, err
	}
	t.n--
	return true, nil
}

func (t *Tree) deleteR(id pager.PageID, key []byte) ([]link, bool, error) {
	n, err := t.getNode(id, nil)
	if err != nil {
		return nil, false, err
	}
	i := n.lookupLE(key)
	if n.btype() == leafNode {
		if i < 0 || cmp(n.key(i), key) != 0 {
			return nil, false, nil
		}
		nk := n.nkeys()
		if err := t.io.Del(id); err != nil {
			return nil, false, err
		}
		if nk == 1 {
			return nil, true, nil
		}
		out := newNode(t.pageSize, leafNode, nk-1)
		out.appendRange(n, 0, 0, i)
		out.appendRange(n, i, i+1, nk-i-1)
		links, err := t.writeSplit(out)
		return links, true, err
	}
	if i < 0 {
		i = 0
	}
	links, found, err := t.deleteR(n.ptr(i), key)
	if err != nil || !found {
		return nil, found, err
	}
	if err := t.io.Del(id); err != nil {
		return nil, false, err
	}
	if n.nkeys()-1+len(links) == 0 {
		return nil, true, nil
	}
	out, err := t.replaceChild(n, i, 1, links)
	if err != nil {
		return nil, false, err
	}
	up, err := t.writeSplit(out)
	return up, true, err
}
