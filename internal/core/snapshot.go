package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/ldif"
	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/plist"
	"repro/internal/qcache"
	"repro/internal/store"
)

// Snapshot format: magic, then three length-prefixed sections — the
// schema (as #schema directives), the store manifest (JSON), and the
// raw disk image. Opening a snapshot skips the Build step entirely:
// the master list, DN index and attribute index come back as written;
// only the in-memory string indexes and catalog are rebuilt (one master
// scan).
var snapshotMagic = [8]byte{'D', 'I', 'R', 'K', 'I', 'T', 'S', '1'}

// ErrCorruptSnapshot marks a snapshot stream whose structure is broken:
// truncated or wrong magic, a truncated section header, a section body
// shorter than its declared length, or an implausible declared size.
// I/O failures of the underlying reader are wrapped but keep their own
// identity; structural damage is always errors.Is-able as this.
// internal/durable's recovery ladder relies on the distinction to
// count corrupt-segment skips separately from transport problems.
var ErrCorruptSnapshot = errors.New("core: corrupt snapshot")

// SaveSnapshot writes the directory's disk image and metadata. It
// captures the read snapshot current at call time; because store disks
// are immutable once published (Update builds its replacement on a
// fresh disk), the image is consistent even while queries and a
// background Update run concurrently.
func (d *Directory) SaveSnapshot(w io.Writer) error {
	return writeSnapshot(d.snap.Load(), w)
}

// writeSnapshot serializes one immutable read snapshot. Taking the
// snapshot as a parameter (rather than re-loading d.snap) is what makes
// checkpointing non-blocking: Checkpoint pins one generation and
// serializes it while readers and writers proceed on the atomic
// pointer.
func writeSnapshot(snap *snapshot, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("core: write snapshot magic: %w", err)
	}
	if err := writeSection(bw, []byte(ldif.MarshalSchema(snap.st.Schema()))); err != nil {
		return fmt.Errorf("core: write schema section: %w", err)
	}
	manifest, err := snap.st.Manifest()
	if err != nil {
		return fmt.Errorf("core: marshal store manifest: %w", err)
	}
	if err := writeSection(bw, manifest); err != nil {
		return fmt.Errorf("core: write manifest section: %w", err)
	}
	if _, err := snap.st.Disk().WriteTo(bw); err != nil {
		return fmt.Errorf("core: write disk image: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: flush snapshot: %w", err)
	}
	return nil
}

// OpenSnapshot reconstructs a queryable Directory from a snapshot.
// Options must agree with the snapshot's layout where it matters
// (PageSize is taken from the image; NoAttrIndex from the manifest).
// Structural damage — truncation anywhere, wrong magic, lying section
// lengths — is reported as ErrCorruptSnapshot.
//
// The restored Directory starts at generation 1 like any fresh Open
// (nothing cached against other contents can ever match). Recover is
// the restore path that instead preserves the on-disk generation, for
// callers continuing a durable lineage.
func OpenSnapshot(r io.Reader, opts Options) (*Directory, error) {
	return openSnapshotGen(r, opts, 1)
}

// openSnapshotGen is OpenSnapshot with an explicit starting generation.
func openSnapshotGen(r io.Reader, opts Options, gen int64) (*Directory, error) {
	p, err := decodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	return assembleSnapshot(p, opts, gen)
}

// snapshotParts is a decoded full-snapshot payload before store
// assembly. Decode and assembly are split so delta recovery can replay
// page deltas onto the base image (and substitute the newest payload's
// schema and manifest) between the two steps.
type snapshotParts struct {
	schema   *model.Schema
	manifest []byte
	disk     *pager.Disk
}

// decodeSnapshot reads a full-snapshot payload: magic, schema section,
// manifest section, disk image.
func decodeSnapshot(r io.Reader) (*snapshotParts, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated magic: %v", ErrCorruptSnapshot, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptSnapshot, magic[:])
	}
	schemaText, err := readSection(br)
	if err != nil {
		return nil, fmt.Errorf("schema section: %w", err)
	}
	schema, err := ldif.UnmarshalSchema(string(schemaText))
	if err != nil {
		return nil, fmt.Errorf("%w: undecodable schema: %v", ErrCorruptSnapshot, err)
	}
	manifest, err := readSection(br)
	if err != nil {
		return nil, fmt.Errorf("manifest section: %w", err)
	}
	disk, err := pager.ReadDisk(br)
	if err != nil {
		return nil, fmt.Errorf("%w: disk image: %v", ErrCorruptSnapshot, err)
	}
	return &snapshotParts{schema: schema, manifest: manifest, disk: disk}, nil
}

// assembleSnapshot builds the queryable Directory from decoded parts.
func assembleSnapshot(p *snapshotParts, opts Options, gen int64) (*Directory, error) {
	schema, manifest, disk := p.schema, p.manifest, p.disk
	st, err := store.Reopen(disk, schema, manifest)
	if err != nil {
		return nil, fmt.Errorf("%w: reopen store: %v", ErrCorruptSnapshot, err)
	}
	// Rebuild the in-memory instance from the master list so updates
	// (mutate + rebuild) keep working after a restore.
	inst := model.NewInstance(schema)
	if err := loadInstanceFromStore(st, inst); err != nil {
		return nil, fmt.Errorf("%w: master list: %v", ErrCorruptSnapshot, err)
	}
	d := &Directory{opts: opts}
	if opts.CacheBytes > 0 {
		d.cache = qcache.New(opts.CacheBytes)
	}
	d.snap.Store(&snapshot{
		inst:   inst,
		st:     st,
		eng:    engine.New(st, opts.Engine),
		strict: inst.Validate(true) == nil,
		gen:    gen,
	})
	return d, nil
}

// Delta snapshot format (generation deltas, DESIGN.md §15): magic, the
// base generation as 8 bytes little-endian, then the schema and store
// manifest sections exactly as in a full snapshot — but describing THIS
// generation — and finally a pager page delta (pager.WriteDeltaTo)
// carrying only the pages that differ from the base generation's image.
// Recovery chases base links down to a full DIRKITS1 image, replays the
// page deltas oldest-first, and assembles with the newest payload's
// schema and manifest.
var snapshotDeltaMagic = [8]byte{'D', 'I', 'R', 'K', 'I', 'T', 'S', '2'}

// writeDeltaSnapshot serializes snap as a delta against baseGen, where
// dirty is the union of fork dirty sets along the update lineage from
// baseGen to snap (ascending page order — WriteDeltaTo's contract).
func writeDeltaSnapshot(snap *snapshot, baseGen int64, dirty []pager.PageID, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotDeltaMagic[:]); err != nil {
		return fmt.Errorf("core: write delta magic: %w", err)
	}
	var g [8]byte
	binary.LittleEndian.PutUint64(g[:], uint64(baseGen))
	if _, err := bw.Write(g[:]); err != nil {
		return fmt.Errorf("core: write delta base generation: %w", err)
	}
	if err := writeSection(bw, []byte(ldif.MarshalSchema(snap.st.Schema()))); err != nil {
		return fmt.Errorf("core: write schema section: %w", err)
	}
	manifest, err := snap.st.Manifest()
	if err != nil {
		return fmt.Errorf("core: marshal store manifest: %w", err)
	}
	if err := writeSection(bw, manifest); err != nil {
		return fmt.Errorf("core: write manifest section: %w", err)
	}
	if _, err := snap.st.Disk().WriteDeltaTo(bw, dirty); err != nil {
		return fmt.Errorf("core: write page delta: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: flush delta snapshot: %w", err)
	}
	return nil
}

// deltaParts is a decoded delta payload: the metadata sections plus the
// raw pager delta stream, held unparsed for replay onto the base image.
type deltaParts struct {
	gen      int64 // the generation this payload encodes (set by the caller)
	baseGen  int64
	schema   *model.Schema
	manifest []byte
	pages    *bytes.Reader // positioned at the pager delta stream
}

// decodeDeltaSnapshot parses a DIRKITS2 payload's header and sections,
// leaving the reader at the pager delta stream.
func decodeDeltaSnapshot(payload []byte) (*deltaParts, error) {
	r := bytes.NewReader(payload)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated delta magic: %v", ErrCorruptSnapshot, err)
	}
	if magic != snapshotDeltaMagic {
		return nil, fmt.Errorf("%w: bad delta magic %q", ErrCorruptSnapshot, magic[:])
	}
	var g [8]byte
	if _, err := io.ReadFull(r, g[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated delta base generation: %v", ErrCorruptSnapshot, err)
	}
	baseGen := int64(binary.LittleEndian.Uint64(g[:]))
	if baseGen <= 0 {
		return nil, fmt.Errorf("%w: delta base generation %d", ErrCorruptSnapshot, baseGen)
	}
	schemaText, err := readSection(r)
	if err != nil {
		return nil, fmt.Errorf("schema section: %w", err)
	}
	schema, err := ldif.UnmarshalSchema(string(schemaText))
	if err != nil {
		return nil, fmt.Errorf("%w: undecodable schema: %v", ErrCorruptSnapshot, err)
	}
	manifest, err := readSection(r)
	if err != nil {
		return nil, fmt.Errorf("manifest section: %w", err)
	}
	return &deltaParts{baseGen: baseGen, schema: schema, manifest: manifest, pages: r}, nil
}

func loadInstanceFromStore(st *store.Store, inst *model.Instance) error {
	l, err := st.EvalString("( ? sub ? objectClass=*)")
	if err != nil {
		return err
	}
	recs, err := plist.Drain(l)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := inst.Add(r.Entry); err != nil {
			return err
		}
	}
	return l.Free()
}

func writeSection(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// readSection reads one length-prefixed section. The declared length is
// never trusted with an up-front allocation: the body is copied
// incrementally, so a lying header on a truncated stream costs only
// the bytes actually present (FuzzOpenSnapshot leans on this — a
// 4-byte header must not be able to demand a gigabyte).
func readSection(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated section header: %v", ErrCorruptSnapshot, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > 1<<30 {
		return nil, fmt.Errorf("%w: section declares %d bytes", ErrCorruptSnapshot, n)
	}
	var buf bytes.Buffer
	copied, err := io.CopyN(&buf, r, int64(n))
	if err != nil {
		return nil, fmt.Errorf("%w: section truncated at %d of %d bytes: %v", ErrCorruptSnapshot, copied, n, err)
	}
	return buf.Bytes(), nil
}
