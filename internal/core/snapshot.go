package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/ldif"
	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/plist"
	"repro/internal/qcache"
	"repro/internal/store"
)

// Snapshot format: magic, then three length-prefixed sections — the
// schema (as #schema directives), the store manifest (JSON), and the
// raw disk image. Opening a snapshot skips the Build step entirely:
// the master list, DN index and attribute index come back as written;
// only the in-memory string indexes and catalog are rebuilt (one master
// scan).
var snapshotMagic = [8]byte{'D', 'I', 'R', 'K', 'I', 'T', 'S', '1'}

// SaveSnapshot writes the directory's disk image and metadata. It
// captures the read snapshot current at call time; because store disks
// are immutable once published (Update builds its replacement on a
// fresh disk), the image is consistent even while queries and a
// background Update run concurrently.
func (d *Directory) SaveSnapshot(w io.Writer) error {
	snap := d.snap.Load()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	if err := writeSection(bw, []byte(ldif.MarshalSchema(snap.st.Schema()))); err != nil {
		return err
	}
	manifest, err := snap.st.Manifest()
	if err != nil {
		return err
	}
	if err := writeSection(bw, manifest); err != nil {
		return err
	}
	if _, err := snap.st.Disk().WriteTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// OpenSnapshot reconstructs a queryable Directory from a snapshot.
// Options must agree with the snapshot's layout where it matters
// (PageSize is taken from the image; NoAttrIndex from the manifest).
func OpenSnapshot(r io.Reader, opts Options) (*Directory, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != snapshotMagic {
		return nil, errors.New("core: not a directory snapshot")
	}
	schemaText, err := readSection(br)
	if err != nil {
		return nil, err
	}
	schema, err := ldif.UnmarshalSchema(string(schemaText))
	if err != nil {
		return nil, err
	}
	manifest, err := readSection(br)
	if err != nil {
		return nil, err
	}
	disk, err := pager.ReadDisk(br)
	if err != nil {
		return nil, err
	}
	st, err := store.Reopen(disk, schema, manifest)
	if err != nil {
		return nil, err
	}
	// Rebuild the in-memory instance from the master list so updates
	// (mutate + rebuild) keep working after a restore.
	inst := model.NewInstance(schema)
	if err := loadInstanceFromStore(st, inst); err != nil {
		return nil, err
	}
	d := &Directory{opts: opts}
	if opts.CacheBytes > 0 {
		d.cache = qcache.New(opts.CacheBytes)
	}
	// A restore starts at generation 1 like any fresh Open: the
	// restored Directory has an empty cache, so nothing cached against
	// other contents can ever match.
	d.snap.Store(&snapshot{
		inst:   inst,
		st:     st,
		eng:    engine.New(st, opts.Engine),
		strict: inst.Validate(true) == nil,
		gen:    1,
	})
	return d, nil
}

func loadInstanceFromStore(st *store.Store, inst *model.Instance) error {
	l, err := st.EvalString("( ? sub ? objectClass=*)")
	if err != nil {
		return err
	}
	recs, err := plist.Drain(l)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := inst.Add(r.Entry); err != nil {
			return err
		}
	}
	return l.Free()
}

func writeSection(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readSection(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > 1<<30 {
		return nil, fmt.Errorf("core: snapshot section too large (%d bytes)", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
