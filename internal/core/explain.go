package core

import (
	"fmt"
	"strings"

	"repro/internal/planner"
	"repro/internal/query"
)

// Explain describes how a query would be evaluated, without running it:
// its language level, the planner rewrites that would fire (when the
// directory was opened with Optimize or Adaptive), the access path and
// catalog estimate for each atomic leaf, and — under Adaptive — the
// cost model's root estimate with every priced alternative, rejected
// ones included.
type Explain struct {
	Language  query.Language
	Original  string
	Optimized string
	Rules     []string
	Atoms     []AtomPlan
	// Cost is the cost model's root estimate (zero unless the directory
	// was opened with Adaptive).
	Cost planner.Estimate
	// Alternatives lists every candidate the cost model priced — the
	// chosen plan per decision point and the rejected competitors with
	// their estimates (empty unless Adaptive).
	Alternatives []planner.Alternative
}

// AtomPlan is the plan for one atomic leaf: the catalog's estimate
// and, when a statistics store is attached (SetQueryStats) and has seen
// this exact atomic, the observed distribution beside it.
type AtomPlan struct {
	Query     string
	Path      string // base-point | index | scan | knn-index | knn-scan
	EstHits   int64  // -1 if the catalog cannot estimate; k for knn
	ScanBytes int64
	// ObsN is how many traced evaluations of this exact atomic the
	// statistics store has folded (0 = never observed, Obs* unset).
	ObsN int64
	// ObsP50Hits is the median actual hit count over those evaluations —
	// the observed answer to EstHits's estimate.
	ObsP50Hits float64
	// ObsP50IO is the median self page I/O the atomic performed.
	ObsP50IO float64
	// ObsP50LatMS is the median wall time of the atomic in milliseconds.
	ObsP50LatMS float64
	// ObsClass is the access-path class of the newest observed
	// evaluation — the path ObsP50IO describes.
	ObsClass string
}

// String renders a compact multi-line report. Each atom line pairs the
// catalog estimate with the observed profile when one exists; an
// unobserved atom prints obs=— rather than misleading zeros. Under
// Adaptive the report ends with the plan's root cost and the rejected
// alternatives, each beside its estimate and the reason it lost.
func (e *Explain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "language: %s\n", e.Language)
	if e.Optimized != e.Original {
		fmt.Fprintf(&b, "rewritten: %s\n", e.Optimized)
	}
	if len(e.Rules) > 0 {
		fmt.Fprintf(&b, "rules: %s\n", strings.Join(e.Rules, ", "))
	}
	for _, a := range e.Atoms {
		fmt.Fprintf(&b, "atom %-10s est=%-6d scope=%dB", a.Path, a.EstHits, a.ScanBytes)
		if a.ObsN > 0 {
			fmt.Fprintf(&b, "  obs=%d: %.0f hits, %.1f pages, %.2f ms [%s]",
				a.ObsN, a.ObsP50Hits, a.ObsP50IO, a.ObsP50LatMS, a.ObsClass)
		} else {
			b.WriteString("  obs=—")
		}
		fmt.Fprintf(&b, "  %s\n", a.Query)
	}
	if e.Cost != (planner.Estimate{}) {
		fmt.Fprintf(&b, "plan cost: %s\n", e.Cost)
	}
	var rejected []planner.Alternative
	for _, alt := range e.Alternatives {
		if !alt.Chosen {
			rejected = append(rejected, alt)
		}
	}
	if len(rejected) > 0 {
		fmt.Fprintf(&b, "alternatives (rejected %d):\n", len(rejected))
		for _, alt := range rejected {
			fmt.Fprintf(&b, "  %-24s %s", alt.Plan, alt.Est)
			if alt.Why != "" {
				fmt.Fprintf(&b, " — %s", alt.Why)
			}
			fmt.Fprintf(&b, "  %s\n", alt.Node)
		}
	}
	return b.String()
}

// ExplainQuery plans a query string without evaluating it. Lock-free
// like Search: it plans against the snapshot loaded at call time.
func (d *Directory) ExplainQuery(text string) (*Explain, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	snap := d.snap.Load()
	if err := query.Validate(snap.st.Schema(), q); err != nil {
		return nil, err
	}
	ex := &Explain{Language: q.Language(), Original: q.String(), Optimized: q.String()}
	var hints *planner.Hints
	switch {
	case d.opts.Adaptive:
		cr := planner.Plan(q, d.planEnv(snap))
		q = cr.Query
		ex.Optimized = q.String()
		ex.Rules = cr.Rules
		ex.Cost = cr.Root
		ex.Alternatives = cr.Alternatives
		hints = cr.Hints
	case d.opts.Optimize:
		res := planner.Optimize(q, planner.Info{StrictForest: snap.strict})
		q = res.Query
		ex.Optimized = q.String()
		ex.Rules = res.Rules
	}
	qs := d.qstats.Load()
	query.Walk(q, func(node query.Query) {
		a, ok := node.(*query.Atomic)
		if !ok {
			return
		}
		p := snap.st.ExplainAtomic(a)
		plan := AtomPlan{
			Query:     a.String(),
			Path:      p.Path,
			EstHits:   p.EstHits,
			ScanBytes: p.ScanBytes,
		}
		// Under Adaptive the cost model's choice supersedes the store's
		// own; report the path that would actually run.
		if hints != nil {
			if forced, ok := hints.Path[a]; ok {
				plan.Path = forced
			}
		}
		// The statistics store keys observations by the optimized
		// atomic's printed text — exactly the span Detail the engine
		// records — so the lookup matches what Fold accumulated.
		if ob, ok := qs.ObservedFor(plan.Query); ok {
			plan.ObsN = ob.N
			plan.ObsP50Hits = ob.P50Hits
			plan.ObsP50IO = ob.P50IO
			plan.ObsP50LatMS = ob.P50LatUS / 1000
			plan.ObsClass = ob.Class
		}
		ex.Atoms = append(ex.Atoms, plan)
	})
	return ex, nil
}
