package core

import (
	"fmt"
	"strings"

	"repro/internal/planner"
	"repro/internal/query"
)

// Explain describes how a query would be evaluated, without running it:
// its language level, the planner rewrites that would fire (when the
// directory was opened with Optimize), and the access path and catalog
// estimate for each atomic leaf.
type Explain struct {
	Language  query.Language
	Original  string
	Optimized string
	Rules     []string
	Atoms     []AtomPlan
}

// AtomPlan is the plan for one atomic leaf: the catalog's estimate
// and, when a statistics store is attached (SetQueryStats) and has seen
// this exact atomic, the observed distribution beside it.
type AtomPlan struct {
	Query     string
	Path      string // base-point | index | scan | knn-index | knn-scan
	EstHits   int64  // -1 if the catalog cannot estimate; k for knn
	ScanBytes int64
	// ObsN is how many traced evaluations of this exact atomic the
	// statistics store has folded (0 = never observed, Obs* unset).
	ObsN int64
	// ObsP50Hits is the median actual hit count over those evaluations —
	// the observed answer to EstHits's estimate.
	ObsP50Hits float64
	// ObsP50IO is the median self page I/O the atomic performed.
	ObsP50IO float64
}

// String renders a compact multi-line report.
func (e *Explain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "language: %s\n", e.Language)
	if e.Optimized != e.Original {
		fmt.Fprintf(&b, "rewritten: %s\n", e.Optimized)
		fmt.Fprintf(&b, "rules: %s\n", strings.Join(e.Rules, ", "))
	}
	for _, a := range e.Atoms {
		fmt.Fprintf(&b, "atom %-10s est=%-6d scope=%dB", a.Path, a.EstHits, a.ScanBytes)
		if a.ObsN > 0 {
			fmt.Fprintf(&b, "  obs=%d/p50=%.0f/io=%.0f", a.ObsN, a.ObsP50Hits, a.ObsP50IO)
		}
		fmt.Fprintf(&b, "  %s\n", a.Query)
	}
	return b.String()
}

// ExplainQuery plans a query string without evaluating it. Lock-free
// like Search: it plans against the snapshot loaded at call time.
func (d *Directory) ExplainQuery(text string) (*Explain, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	snap := d.snap.Load()
	if err := query.Validate(snap.st.Schema(), q); err != nil {
		return nil, err
	}
	ex := &Explain{Language: q.Language(), Original: q.String(), Optimized: q.String()}
	if d.opts.Optimize {
		res := planner.Optimize(q, planner.Info{StrictForest: snap.strict})
		q = res.Query
		ex.Optimized = q.String()
		ex.Rules = res.Rules
	}
	qs := d.qstats.Load()
	query.Walk(q, func(node query.Query) {
		a, ok := node.(*query.Atomic)
		if !ok {
			return
		}
		p := snap.st.ExplainAtomic(a)
		plan := AtomPlan{
			Query:     a.String(),
			Path:      p.Path,
			EstHits:   p.EstHits,
			ScanBytes: p.ScanBytes,
		}
		// The statistics store keys observations by the optimized
		// atomic's printed text — exactly the span Detail the engine
		// records — so the lookup matches what Fold accumulated.
		if ob, ok := qs.ObservedFor(plan.Query); ok {
			plan.ObsN = ob.N
			plan.ObsP50Hits = ob.P50Hits
			plan.ObsP50IO = ob.P50IO
		}
		ex.Atoms = append(ex.Atoms, plan)
	})
	return ex, nil
}
