package core

import (
	"fmt"
	"strings"

	"repro/internal/planner"
	"repro/internal/query"
)

// Explain describes how a query would be evaluated, without running it:
// its language level, the planner rewrites that would fire (when the
// directory was opened with Optimize), and the access path and catalog
// estimate for each atomic leaf.
type Explain struct {
	Language  query.Language
	Original  string
	Optimized string
	Rules     []string
	Atoms     []AtomPlan
}

// AtomPlan is the plan for one atomic leaf.
type AtomPlan struct {
	Query     string
	Path      string // base-point | index | scan | knn-index | knn-scan
	EstHits   int64  // -1 if the catalog cannot estimate; k for knn
	ScanBytes int64
}

// String renders a compact multi-line report.
func (e *Explain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "language: %s\n", e.Language)
	if e.Optimized != e.Original {
		fmt.Fprintf(&b, "rewritten: %s\n", e.Optimized)
		fmt.Fprintf(&b, "rules: %s\n", strings.Join(e.Rules, ", "))
	}
	for _, a := range e.Atoms {
		fmt.Fprintf(&b, "atom %-10s est=%-6d scope=%dB  %s\n", a.Path, a.EstHits, a.ScanBytes, a.Query)
	}
	return b.String()
}

// ExplainQuery plans a query string without evaluating it. Lock-free
// like Search: it plans against the snapshot loaded at call time.
func (d *Directory) ExplainQuery(text string) (*Explain, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	snap := d.snap.Load()
	if err := query.Validate(snap.st.Schema(), q); err != nil {
		return nil, err
	}
	ex := &Explain{Language: q.Language(), Original: q.String(), Optimized: q.String()}
	if d.opts.Optimize {
		res := planner.Optimize(q, planner.Info{StrictForest: snap.strict})
		q = res.Query
		ex.Optimized = q.String()
		ex.Rules = res.Rules
	}
	query.Walk(q, func(node query.Query) {
		a, ok := node.(*query.Atomic)
		if !ok {
			return
		}
		p := snap.st.ExplainAtomic(a)
		ex.Atoms = append(ex.Atoms, AtomPlan{
			Query:     a.String(),
			Path:      p.Path,
			EstHits:   p.EstHits,
			ScanBytes: p.ScanBytes,
		})
	})
	return ex, nil
}
