package core

import (
	"testing"

	"repro/internal/query"
)

// TestClosureProperty exercises Section 10's composability claim: a
// query answer, materialized as an instance and reopened, can be
// queried again — including the case where the answer is a proper
// forest (footnote 3: "in the formal model we develop, this could be a
// forest. We need this extension to obtain the closure property").
func TestClosureProperty(t *testing.T) {
	d := smallDirectory(t, Options{})

	// Select entries from two disconnected regions: the result has no
	// single root.
	res, err := d.Search(`(| (dc=com ? sub ? objectClass=QHP)
	                         (dc=com ? sub ? objectClass=dcObject))`)
	if err != nil {
		t.Fatal(err)
	}
	in, err := res.AsInstance(d.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Roots()) < 2 {
		t.Fatalf("answer should be a forest, got %d roots", len(in.Roots()))
	}
	if err := in.Validate(false); err != nil {
		t.Fatalf("answer instance invalid: %v", err)
	}
	if err := in.Validate(true); err == nil {
		t.Fatal("forest answer unexpectedly parent-closed")
	}

	// Re-open and re-query the answer.
	d2, err := Open(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := d2.Search("(dc=com ? sub ? objectClass=dcObject)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Entries) != 3 {
		t.Fatalf("re-query over answer: %v", res2.DNs())
	}
	// Hierarchy operators still work over the (orphaned) QHP entries.
	res3, err := d2.Search(`(g ( ? sub ? objectClass=QHP) count(priority) > 0)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Entries) != 1 {
		t.Fatalf("aggregate over answer: %v", res3.DNs())
	}
	if q := query.MustParse("( ? sub ? objectClass=*)"); q.Language() != query.LangL0 {
		t.Fatal("sanity")
	}
}
