// Package core is the public face of the library: a Directory couples
// the network directory data model of "Querying Network Directories"
// (SIGMOD 1999) with its disk-resident store and the L0–L3 evaluation
// engine, behind a small build-then-query API.
//
// Usage:
//
//	dir, err := core.NewBuilder(model.DefaultSchema()).
//		MustAdd("dc=com", "dcObject").
//		MustAdd("dc=att, dc=com", "dcObject").
//		Build(core.Options{})
//	res, err := dir.Search(`(dc=com ? sub ? objectClass=dcObject)`)
//
// Search accepts the full surface syntax of the paper's languages —
// atomic queries, boolean operators, the six hierarchical selection
// operators, aggregate selection, and the embedded-reference operators —
// and returns entries in reverse-DN order along with the exact page I/O
// the evaluation performed.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pager"
	"repro/internal/planner"
	"repro/internal/plist"
	"repro/internal/qcache"
	"repro/internal/query"
	"repro/internal/store"
)

// Options configures how a Directory is laid out and evaluated.
type Options struct {
	// PageSize is the simulated disk's page size (default 4096).
	PageSize int
	// NoAttrIndex disables the attribute/string indexes; every atomic
	// query then scans its scope range.
	NoAttrIndex bool
	// Optimize runs the algebraic planner on every query before
	// evaluation (scope narrowing, disjointness, the ac/dc collapse —
	// see internal/planner).
	Optimize bool
	// Engine tunes the evaluation engine (stack window etc.).
	Engine engine.Config
	// CacheBytes, when positive, enables the query-result cache: up to
	// this many bytes of materialized results, keyed by (canonical
	// query, generation) with single-flight deduplication. A cache hit
	// performs zero page I/O; every Update invalidates all cached
	// results by bumping the generation (see internal/qcache and
	// DESIGN.md §7). Entries of cached results are shared between hits
	// and must be treated as read-only.
	CacheBytes int64
}

// Builder accumulates entries for a Directory.
type Builder struct {
	schema *model.Schema
	inst   *model.Instance
	err    error
}

// NewBuilder starts a directory over the given schema.
func NewBuilder(schema *model.Schema) *Builder {
	return &Builder{schema: schema, inst: model.NewInstance(schema)}
}

// Add inserts a pre-built entry.
func (b *Builder) Add(e *model.Entry) error {
	if b.err != nil {
		return b.err
	}
	return b.inst.Add(e)
}

// AddEntry creates and inserts an entry: the DN's RDN attributes are
// typed per the schema, classes are attached, and each (attr, textValue)
// pair is parsed per the attribute's type.
func (b *Builder) AddEntry(dn string, classes []string, avs ...[2]string) error {
	if b.err != nil {
		return b.err
	}
	parsed, err := model.ParseDN(dn)
	if err != nil {
		return err
	}
	e, err := model.NewEntryFromDN(b.schema, parsed)
	if err != nil {
		return err
	}
	for _, c := range classes {
		e.AddClass(c)
	}
	for _, av := range avs {
		t, ok := b.schema.AttrType(av[0])
		if !ok {
			return fmt.Errorf("core: unknown attribute %q", av[0])
		}
		v, err := model.ParseValue(t, av[1])
		if err != nil {
			return err
		}
		e.Add(av[0], v)
	}
	return b.inst.Add(e)
}

// MustAdd is AddEntry chaining for statically-known data; the first
// error is deferred to Build.
func (b *Builder) MustAdd(dn string, classes ...string) *Builder {
	if err := b.AddEntry(dn, classes); err != nil && b.err == nil {
		b.err = err
	}
	return b
}

// Instance exposes the staged in-memory instance (e.g. for direct
// entry manipulation before Build).
func (b *Builder) Instance() *model.Instance { return b.inst }

// Build lays the staged instance out on a fresh simulated disk and
// returns the queryable Directory.
func (b *Builder) Build(opts Options) (*Directory, error) {
	if b.err != nil {
		return nil, b.err
	}
	return Open(b.inst, opts)
}

// Open builds a Directory from an existing instance.
func Open(inst *model.Instance, opts Options) (*Directory, error) {
	d := &Directory{inst: inst, opts: opts}
	if opts.CacheBytes > 0 {
		d.cache = qcache.New(opts.CacheBytes)
	}
	if err := d.rebuild(); err != nil {
		return nil, err
	}
	return d, nil
}

// Directory is a queryable network directory. It is safe for concurrent
// use: evaluation mutates shared engine state (buffer pools, scratch
// pages on the simulated disk), so queries and updates are serialized
// internally — one evaluation at a time, the same discipline a single
// directory server process applies. Scale-out concurrency is the
// distributed layer's job (internal/dirserver).
type Directory struct {
	mu     sync.Mutex
	inst   *model.Instance
	opts   Options
	st     *store.Store
	eng    *engine.Engine
	strict bool // parent-closed forest (enables the ac/dc collapse)

	// gen is the store generation: a monotonic counter bumped by every
	// rebuild (Build, Update, snapshot restore). Cache keys embed it,
	// so one Update invalidates every cached result with a single
	// integer bump — no tracking of which entries changed.
	gen   atomic.Int64
	cache *qcache.Cache // nil unless Options.CacheBytes > 0
}

// rebuild lays the current instance out on a fresh disk. The store is
// read-optimized (contiguous master list, packed indexes), so updates
// trade a full rebuild for scan-speed reads — the paper's directories
// are read-mostly, populated by administrators and queried by the
// network.
func (d *Directory) rebuild() error {
	disk := pager.NewDisk(d.opts.PageSize)
	st, err := store.Build(disk, d.inst, store.Options{AttrIndex: !d.opts.NoAttrIndex})
	if err != nil {
		return err
	}
	d.st = st
	d.eng = engine.New(st, d.opts.Engine)
	d.strict = d.inst.Validate(true) == nil
	d.gen.Add(1)
	if d.cache != nil {
		// Every cached result is stale now (its key embeds the old
		// generation); reclaim the budget eagerly rather than letting
		// dead entries age out of the LRU.
		d.cache.Clear()
	}
	return nil
}

// Update applies a mutation to the backing instance and rebuilds the
// disk layout. The mutation sees the live instance; if it returns an
// error the rebuild is skipped but any partial changes it already made
// remain (mutate transactionally or not at all).
func (d *Directory) Update(fn func(in *model.Instance) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := fn(d.inst); err != nil {
		return err
	}
	return d.rebuild()
}

// Result is a materialized query answer. Per Section 4.1, an answer is
// itself a directory instance: a subset of the input's entries, which —
// like any instance — can exhibit the full heterogeneity of the model.
type Result struct {
	Entries []*model.Entry
	// IO is the page I/O the evaluation performed (reads + writes of
	// intermediate and result lists, stacks, sort runs and index pages).
	IO pager.Stats
}

// DNs returns the distinguished names of the result entries, in order.
func (r *Result) DNs() []string {
	out := make([]string, len(r.Entries))
	for i, e := range r.Entries {
		out[i] = e.DN().String()
	}
	return out
}

// AsInstance materializes the answer as a directory instance of the
// given schema — the closure property of Section 10: "answers to
// queries can exhibit the same kinds of heterogeneity as directory
// instances", and a materialized answer can itself be opened and
// queried. Note the result is in general a forest even when the queried
// directory was a tree (the reason the formal model is a forest,
// footnote 3).
func (r *Result) AsInstance(schema *model.Schema) (*model.Instance, error) {
	in := model.NewInstance(schema)
	for _, e := range r.Entries {
		if err := in.Add(e.Clone()); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// Schema returns the directory's schema.
func (d *Directory) Schema() *model.Schema {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.st.Schema()
}

// Count returns the number of entries.
func (d *Directory) Count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.st.Count()
}

// Engine exposes the evaluation engine (for benchmarks and tools that
// need streaming results or custom configurations). Callers using it
// directly bypass the Directory's query serialization and must provide
// their own.
func (d *Directory) Engine() *engine.Engine {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.eng
}

// Instance returns the in-memory instance backing the directory.
func (d *Directory) Instance() *model.Instance { return d.inst }

// Disk exposes the simulated device for I/O accounting.
func (d *Directory) Disk() *pager.Disk {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.st.Disk()
}

// Get fetches one entry by DN.
func (d *Directory) Get(dn string) (*model.Entry, error) {
	parsed, err := model.ParseDN(dn)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.st.Get(parsed)
}

// Generation returns the store generation: it starts at 1 and
// increments on every Update (and is fresh after a snapshot restore).
// Equal generations imply identical store contents, which is what
// makes it a one-integer cache-invalidation token — locally and echoed
// over the wire to remote coordinators (internal/dirserver).
func (d *Directory) Generation() int64 { return d.gen.Load() }

// CacheStats snapshots the query-result cache's counters (zero when
// caching is disabled).
func (d *Directory) CacheStats() qcache.Stats {
	if d.cache == nil {
		return qcache.Stats{}
	}
	return d.cache.Stats()
}

// Search parses, validates, and evaluates a query in the paper's
// surface syntax, materializing the result.
func (d *Directory) Search(text string) (*Result, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	return d.SearchQuery(q)
}

// SearchQuery evaluates a parsed query tree, consulting the result
// cache first when one is configured: semantically identical queries
// (same canonical form, internal/query.Canonical) at the same store
// generation share one cached answer, and concurrent identical misses
// evaluate once. A cache hit performs zero page I/O.
func (d *Directory) SearchQuery(q query.Query) (*Result, error) {
	return d.searchCached("", q, true)
}

// SearchLDAP evaluates an LDAP baseline query: a single base and scope
// with a boolean combination of atomic filters.
func (d *Directory) SearchLDAP(text string) (*Result, error) {
	q, err := query.ParseLDAP(text)
	if err != nil {
		return nil, err
	}
	// LDAP evaluation skips L0-level validation, so its slots are kept
	// apart from Search's even when the printed forms coincide.
	return d.searchCached("ldap|", q, false)
}

func (d *Directory) searchCached(keyPrefix string, q query.Query, validate bool) (*Result, error) {
	if d.cache == nil {
		res, _, err := d.evalLocked(q, validate)
		return res, err
	}
	// The generation is read before evaluation; an Update racing this
	// search serializes against it on d.mu either way, so a result
	// stored under the older key is at worst promptly unreachable.
	key := fmt.Sprintf("%sg%d|%s", keyPrefix, d.gen.Load(), query.Canonical(q))
	v, hit, err := d.cache.Do(key, func() (any, int64, error) {
		res, size, err := d.evalLocked(q, validate)
		if err != nil {
			return nil, 0, err
		}
		return res, size, nil
	})
	if err != nil {
		return nil, err
	}
	res := v.(*Result)
	if hit {
		// Fresh header, shared (read-only) entries: a hit re-executes
		// no I/O, and the Result must say so.
		return &Result{Entries: res.Entries}, nil
	}
	return res, nil
}

// evalLocked evaluates q under the directory lock and returns the
// materialized result plus its size in list-stream bytes (the result
// cache's cost measure).
func (d *Directory) evalLocked(q query.Query, validate bool) (*Result, int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if validate {
		if err := query.Validate(d.st.Schema(), q); err != nil {
			return nil, 0, err
		}
		if d.opts.Optimize {
			q = planner.Optimize(q, planner.Info{StrictForest: d.strict}).Query
		}
	}
	disk := d.st.Disk()
	before := disk.Stats()
	l, err := d.eng.Eval(q)
	if err != nil {
		return nil, 0, err
	}
	size := l.Size()
	recs, err := plist.Drain(l)
	if err != nil {
		return nil, 0, err
	}
	res := &Result{IO: disk.Stats().Sub(before)}
	res.Entries = make([]*model.Entry, len(recs))
	for i, r := range recs {
		res.Entries[i] = r.Entry
	}
	return res, size, l.Free()
}

// SearchTraced evaluates a query with per-operator tracing: alongside
// the materialized result it returns the span tree recording, for
// every plan operator, its wall time, input/output cardinalities, and
// exact pager.Stats delta (dirq -explain renders it; DESIGN.md §8).
//
// Two deliberate differences from Search: the result cache is
// bypassed (a cache hit has no operator tree — tracing answers "what
// would this query cost", so it always evaluates), and Result.IO
// covers evaluation only, excluding the final result drain, so that
// it equals the root span's IO exactly and the per-operator self
// deltas sum to it — the conservation law TestTraceIOConservation
// asserts.
func (d *Directory) SearchTraced(text string) (*Result, *obs.Span, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := query.Validate(d.st.Schema(), q); err != nil {
		return nil, nil, err
	}
	if d.opts.Optimize {
		q = planner.Optimize(q, planner.Info{StrictForest: d.strict}).Query
	}
	disk := d.st.Disk()
	tr := obs.NewTracer(disk)
	ctx := obs.WithTracer(context.Background(), tr)
	before := disk.Stats()
	l, err := d.eng.EvalContext(ctx, q)
	if err != nil {
		return nil, tr.Root(), err
	}
	evalIO := disk.Stats().Sub(before)
	recs, err := plist.Drain(l)
	if err != nil {
		return nil, tr.Root(), err
	}
	res := &Result{IO: evalIO, Entries: make([]*model.Entry, len(recs))}
	for i, r := range recs {
		res.Entries[i] = r.Entry
	}
	return res, tr.Root(), l.Free()
}

// RegisterMetrics exposes the directory's state on reg as pull-based
// gauges: entry count, store generation, live pages, and — when the
// result cache is enabled — its hit/miss/byte counters. Metric names
// are listed in DESIGN.md §8.
func (d *Directory) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("dirkit_dir_entries", "entries in the directory", func() int64 { return int64(d.Count()) })
	reg.GaugeFunc("dirkit_dir_generation", "store generation (bumps on every Update)", d.Generation)
	reg.GaugeFunc("dirkit_dir_pages", "live pages on the simulated disk", func() int64 { return int64(d.Disk().NumPages()) })
	if d.cache != nil {
		d.cache.RegisterMetrics(reg, "dirkit_dir_cache")
	}
}

// Language classifies a query string into the paper's hierarchy.
func Language(text string) (query.Language, error) {
	q, err := query.Parse(text)
	if err != nil {
		return 0, err
	}
	return q.Language(), nil
}
