// Package core is the public face of the library: a Directory couples
// the network directory data model of "Querying Network Directories"
// (SIGMOD 1999) with its disk-resident store and the L0–L3 evaluation
// engine, behind a small build-then-query API.
//
// Usage:
//
//	dir, err := core.NewBuilder(model.DefaultSchema()).
//		MustAdd("dc=com", "dcObject").
//		MustAdd("dc=att, dc=com", "dcObject").
//		Build(core.Options{})
//	res, err := dir.Search(`(dc=com ? sub ? objectClass=dcObject)`)
//
// Search accepts the full surface syntax of the paper's languages —
// atomic queries, boolean operators, the six hierarchical selection
// operators, aggregate selection, and the embedded-reference operators —
// and returns entries in reverse-DN order along with the exact page I/O
// the evaluation performed.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pager"
	"repro/internal/planner"
	"repro/internal/plist"
	"repro/internal/qcache"
	"repro/internal/qstats"
	"repro/internal/query"
	"repro/internal/store"
)

// Options configures how a Directory is laid out and evaluated.
type Options struct {
	// PageSize is the simulated disk's page size (default 4096).
	PageSize int
	// NoAttrIndex disables the attribute/string indexes; every atomic
	// query then scans its scope range.
	NoAttrIndex bool
	// Optimize runs the algebraic planner on every query before
	// evaluation (scope narrowing, disjointness, the ac/dc collapse —
	// see internal/planner).
	Optimize bool
	// Adaptive runs the cost-based planner on every query before
	// evaluation: the algebraic rewrites of Optimize plus a cost pass
	// that chooses access paths, operand evaluation order, and worker-
	// pool offload by estimated pages, calibrated online from the
	// attached statistics store (SetQueryStats). Every chosen plan is
	// byte-identical to the naive evaluation; the cost model only moves
	// I/O. Implies Optimize. See internal/planner and DESIGN.md §14.
	Adaptive bool
	// Engine tunes the evaluation engine (stack window etc.).
	Engine engine.Config
	// DeltaCheckpoints, when set, lets Checkpoint persist a page delta
	// against the previous durable generation instead of a full disk
	// image whenever the in-memory lineage (recorded by UpdateEntries)
	// links the two. Deltas shrink checkpoint bytes to the dirty page
	// set — O(log N) pages for an entry-level update — at the cost of a
	// base-chain replay on recovery. Full images are still written
	// whenever the chain would grow past the durable store's retention
	// window, the dirty set covers most of the device, or the lineage is
	// broken (any full-rebuild Update). Off by default: checkpoints are
	// then always self-contained full images, exactly as before.
	DeltaCheckpoints bool
	// CacheBytes, when positive, enables the query-result cache: up to
	// this many bytes of materialized results, keyed by (canonical
	// query, generation) with single-flight deduplication. A cache hit
	// performs zero page I/O; every Update invalidates all cached
	// results by bumping the generation embedded in the keys — stale
	// entries become unreachable instantly and age out of the LRU under
	// byte pressure (see internal/qcache and DESIGN.md §7). Entries of
	// cached results are shared between hits and must be treated as
	// read-only.
	CacheBytes int64
}

// Builder accumulates entries for a Directory.
type Builder struct {
	schema *model.Schema
	inst   *model.Instance
	err    error
}

// NewBuilder starts a directory over the given schema.
func NewBuilder(schema *model.Schema) *Builder {
	return &Builder{schema: schema, inst: model.NewInstance(schema)}
}

// Add inserts a pre-built entry.
func (b *Builder) Add(e *model.Entry) error {
	if b.err != nil {
		return b.err
	}
	return b.inst.Add(e)
}

// AddEntry creates and inserts an entry: the DN's RDN attributes are
// typed per the schema, classes are attached, and each (attr, textValue)
// pair is parsed per the attribute's type.
func (b *Builder) AddEntry(dn string, classes []string, avs ...[2]string) error {
	if b.err != nil {
		return b.err
	}
	parsed, err := model.ParseDN(dn)
	if err != nil {
		return err
	}
	e, err := model.NewEntryFromDN(b.schema, parsed)
	if err != nil {
		return err
	}
	for _, c := range classes {
		e.AddClass(c)
	}
	for _, av := range avs {
		t, ok := b.schema.AttrType(av[0])
		if !ok {
			return fmt.Errorf("core: unknown attribute %q", av[0])
		}
		v, err := model.ParseValue(t, av[1])
		if err != nil {
			return err
		}
		e.Add(av[0], v)
	}
	return b.inst.Add(e)
}

// MustAdd is AddEntry chaining for statically-known data; the first
// error is deferred to Build.
func (b *Builder) MustAdd(dn string, classes ...string) *Builder {
	if err := b.AddEntry(dn, classes); err != nil && b.err == nil {
		b.err = err
	}
	return b
}

// Instance exposes the staged in-memory instance (e.g. for direct
// entry manipulation before Build).
func (b *Builder) Instance() *model.Instance { return b.inst }

// Build lays the staged instance out on a fresh simulated disk and
// returns the queryable Directory.
func (b *Builder) Build(opts Options) (*Directory, error) {
	if b.err != nil {
		return nil, b.err
	}
	return Open(b.inst, opts)
}

// Open builds a Directory from an existing instance.
func Open(inst *model.Instance, opts Options) (*Directory, error) {
	d := &Directory{opts: opts}
	if opts.CacheBytes > 0 {
		d.cache = qcache.New(opts.CacheBytes)
	}
	snap, err := buildSnapshot(inst, opts, 1)
	if err != nil {
		return nil, err
	}
	d.snap.Store(snap)
	return d, nil
}

// Directory is a queryable network directory, safe for concurrent use
// with lock-free reads: the whole read state — instance, store, engine,
// strictness, generation — lives in one immutable snapshot behind an
// atomic pointer. Search/Get/Explain load the pointer and evaluate on a
// per-query scratch arena (pager.Arena), touching the shared store disk
// only with reads, so any number of queries run concurrently without a
// directory-level lock. Update clones the instance, applies the
// mutation to the clone, builds a new store on a fresh disk off-line,
// and atomically swaps the snapshot in — readers mid-flight finish
// against the snapshot they loaded, new readers see the new generation,
// and a failure at any point (mutation error, store build error) leaves
// the live directory bit-for-bit untouched. See DESIGN.md §10.
type Directory struct {
	// snap is the current immutable read state. Readers Load it exactly
	// once per operation and never look back; writers Store a fully
	// built replacement.
	snap atomic.Pointer[snapshot]
	// writeMu serializes writers (Update). Writers exclude only each
	// other: a rebuild runs entirely off-line on a fresh disk, so
	// readers proceed throughout.
	writeMu sync.Mutex
	opts    Options
	cache   *qcache.Cache // nil unless Options.CacheBytes > 0

	swaps     atomic.Int64  // completed store swaps (successful Updates)
	rebuildNS atomic.Int64  // wall time of the last successful off-line rebuild
	readers   readerTracker // in-flight evaluations per generation (lag gauge)

	// qstats, when set, receives every completed traced evaluation's
	// span tree and feeds observed-vs-estimated columns back into
	// ExplainQuery.
	qstats atomic.Pointer[qstats.Store]

	// lineage links each generation produced by the UpdateEntries fast
	// path to its parent, with the page set the fork dirtied — exactly
	// what a delta checkpoint against any ancestor must carry (the union
	// along the chain). Only maintained under Options.DeltaCheckpoints;
	// a full-rebuild Update simply records nothing, which breaks the
	// chain and forces the next checkpoint back to a full image.
	lineageMu sync.Mutex
	lineage   map[int64]lineageRec
}

// lineageRec is one hop of the fast-path update lineage.
type lineageRec struct {
	parent int64
	dirty  []pager.PageID
}

// maxLineage bounds the lineage map between checkpoints. Past it the
// history is dropped wholesale: the next checkpoint degrades to a full
// image, which is the correct failure mode for a checkpointer that has
// fallen that far behind the write stream.
const maxLineage = 4096

// snapshot bundles the immutable per-generation read state. Once
// published via Directory.snap it is never mutated: Update builds a
// whole new snapshot (new instance, new disk, new store, new engine)
// and swaps the pointer.
type snapshot struct {
	inst   *model.Instance
	st     *store.Store
	eng    *engine.Engine
	strict bool // parent-closed forest (enables the ac/dc collapse)
	// gen is the store generation: 1 for a freshly opened directory,
	// +1 per successful Update. Equal generations imply identical store
	// contents, which is what makes it a one-integer cache-invalidation
	// token — locally and echoed over the wire (internal/dirserver).
	gen int64
}

// buildSnapshot lays inst out on a fresh disk. The store is
// read-optimized (contiguous master list, packed indexes), so updates
// trade a full rebuild for scan-speed reads — the paper's directories
// are read-mostly, populated by administrators and queried by the
// network.
func buildSnapshot(inst *model.Instance, opts Options, gen int64) (*snapshot, error) {
	disk := pager.NewDisk(opts.PageSize)
	st, err := store.Build(disk, inst, store.Options{AttrIndex: !opts.NoAttrIndex})
	if err != nil {
		return nil, err
	}
	return &snapshot{
		inst:   inst,
		st:     st,
		eng:    engine.New(st, opts.Engine),
		strict: inst.Validate(true) == nil,
		gen:    gen,
	}, nil
}

// Update applies a mutation to a deep copy of the backing instance,
// builds the new disk layout off-line, and atomically swaps it in.
//
// The call is failure-atomic: fn runs against a clone, so an error
// (from fn or from the store build) leaves the live directory
// bit-for-bit untouched — same generation, same query answers, cached
// results intact. Queries run lock-free throughout; they see either
// the old snapshot or the new one, never a mix.
func (d *Directory) Update(fn func(in *model.Instance) error) error {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	cur := d.snap.Load()
	next := cur.inst.Clone()
	if err := fn(next); err != nil {
		return err // clone discarded; nothing published
	}
	start := time.Now()
	snap, err := buildSnapshot(next, d.opts, cur.gen+1)
	if err != nil {
		return err // build failed off-line; the old snapshot still serves
	}
	d.rebuildNS.Store(int64(time.Since(start)))
	d.snap.Store(snap)
	d.swaps.Add(1)
	return nil
}

// UpdateEntries applies a batch of entry-level adds and removes through
// the store's copy-on-write overlay: the new generation's disk is a
// fork of the current one sharing every untouched page, so the write
// cost is O(log N) dirty pages instead of the full-device rebuild
// Update performs. The batch is failure-atomic and all-or-nothing,
// exactly like Update: every op is validated against a clone of the
// instance first, and any error — a duplicate add, a missing remove, a
// store failure — leaves the live directory untouched.
//
// Ops the overlay cannot represent (vector-indexed entries, records
// larger than an overlay leaf) transparently fall back to the full
// rebuild; the result is identical, only the write cost differs.
func (d *Directory) UpdateEntries(ops ...store.EntryOp) error {
	if len(ops) == 0 {
		return nil
	}
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	cur := d.snap.Load()
	next := cur.inst.Clone()
	for _, op := range ops {
		if op.Add != nil {
			if err := next.Add(op.Add.Clone()); err != nil {
				return err // clone discarded; nothing published
			}
		} else if !next.Remove(op.Remove) {
			return fmt.Errorf("core: %w: %s", store.ErrNoEntry, op.Remove)
		}
	}
	start := time.Now()
	fork := cur.st.Disk().Fork()
	st, err := cur.st.ApplyOps(fork, ops)
	if err != nil {
		if errors.Is(err, store.ErrNeedsRebuild) {
			snap, err := buildSnapshot(next, d.opts, cur.gen+1)
			if err != nil {
				return err
			}
			d.rebuildNS.Store(int64(time.Since(start)))
			d.snap.Store(snap)
			d.swaps.Add(1)
			return nil
		}
		return err
	}
	snap := &snapshot{
		inst:   next,
		st:     st,
		eng:    engine.New(st, d.opts.Engine),
		strict: next.Validate(true) == nil,
		gen:    cur.gen + 1,
	}
	if d.opts.DeltaCheckpoints {
		d.recordLineage(snap.gen, cur.gen, fork.Dirty())
	}
	d.rebuildNS.Store(int64(time.Since(start)))
	d.snap.Store(snap)
	d.swaps.Add(1)
	return nil
}

// recordLineage notes that gen was produced from parent by dirtying
// exactly the given pages (called under writeMu).
func (d *Directory) recordLineage(gen, parent int64, dirty []pager.PageID) {
	d.lineageMu.Lock()
	defer d.lineageMu.Unlock()
	if len(d.lineage) >= maxLineage {
		d.lineage = nil // drop history; the next checkpoint ships a full image
	}
	if d.lineage == nil {
		d.lineage = make(map[int64]lineageRec)
	}
	d.lineage[gen] = lineageRec{parent: parent, dirty: dirty}
}

// pruneLineage drops lineage at or below the newest durable generation:
// future delta chains only ever walk back to it, never past it.
func (d *Directory) pruneLineage(persisted int64) {
	d.lineageMu.Lock()
	defer d.lineageMu.Unlock()
	for g := range d.lineage {
		if g <= persisted {
			delete(d.lineage, g)
		}
	}
}

// Result is a materialized query answer. Per Section 4.1, an answer is
// itself a directory instance: a subset of the input's entries, which —
// like any instance — can exhibit the full heterogeneity of the model.
type Result struct {
	Entries []*model.Entry
	// IO is the page I/O the evaluation performed (reads of the shared
	// store plus all scratch-arena traffic: intermediate and result
	// lists, stacks, sort runs and index-page misses).
	IO pager.Stats
	// Gen is the store generation the query evaluated against — the
	// snapshot loaded at the start of the search, even if an Update
	// swapped in a newer store mid-evaluation.
	Gen int64
}

// DNs returns the distinguished names of the result entries, in order.
func (r *Result) DNs() []string {
	out := make([]string, len(r.Entries))
	for i, e := range r.Entries {
		out[i] = e.DN().String()
	}
	return out
}

// AsInstance materializes the answer as a directory instance of the
// given schema — the closure property of Section 10: "answers to
// queries can exhibit the same kinds of heterogeneity as directory
// instances", and a materialized answer can itself be opened and
// queried. Note the result is in general a forest even when the queried
// directory was a tree (the reason the formal model is a forest,
// footnote 3).
func (r *Result) AsInstance(schema *model.Schema) (*model.Instance, error) {
	in := model.NewInstance(schema)
	for _, e := range r.Entries {
		if err := in.Add(e.Clone()); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// Schema returns the directory's schema.
func (d *Directory) Schema() *model.Schema { return d.snap.Load().st.Schema() }

// Count returns the number of entries.
func (d *Directory) Count() int { return d.snap.Load().st.Count() }

// Engine exposes the current snapshot's evaluation engine (for
// benchmarks and tools that need streaming results or custom
// configurations). The returned engine evaluates on the shared store
// disk; callers using it directly bypass the per-query arenas and must
// serialize their own evaluations (or wrap the engine in Session with
// an arena of their own). It keeps describing the snapshot current at
// call time even after later Updates swap in new stores.
func (d *Directory) Engine() *engine.Engine { return d.snap.Load().eng }

// Instance returns the in-memory instance backing the current
// snapshot. Treat it as read-only: mutations belong in Update.
func (d *Directory) Instance() *model.Instance { return d.snap.Load().inst }

// Disk exposes the current snapshot's simulated device for I/O
// accounting. Like Engine, it is pinned to the snapshot current at
// call time.
func (d *Directory) Disk() *pager.Disk { return d.snap.Load().st.Disk() }

// Get fetches one entry by DN. Lock-free: the lookup reads the loaded
// snapshot's store, which no writer ever mutates.
func (d *Directory) Get(dn string) (*model.Entry, error) {
	parsed, err := model.ParseDN(dn)
	if err != nil {
		return nil, err
	}
	return d.snap.Load().st.Get(parsed)
}

// Generation returns the store generation: it starts at 1 and
// increments on every successful Update (and is fresh after a snapshot
// restore). Equal generations imply identical store contents, which is
// what makes it a one-integer cache-invalidation token — locally and
// echoed over the wire to remote coordinators (internal/dirserver).
func (d *Directory) Generation() int64 { return d.snap.Load().gen }

// CacheStats snapshots the query-result cache's counters (zero when
// caching is disabled).
func (d *Directory) CacheStats() qcache.Stats {
	if d.cache == nil {
		return qcache.Stats{}
	}
	return d.cache.Stats()
}

// Search parses, validates, and evaluates a query in the paper's
// surface syntax, materializing the result.
func (d *Directory) Search(text string) (*Result, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	return d.SearchQuery(q)
}

// SearchQuery evaluates a parsed query tree, consulting the result
// cache first when one is configured: semantically identical queries
// (same canonical form, internal/query.Canonical) at the same store
// generation share one cached answer, and concurrent identical misses
// evaluate once. A cache hit performs zero page I/O.
func (d *Directory) SearchQuery(q query.Query) (*Result, error) {
	return d.searchCached("", q, true)
}

// SearchLDAP evaluates an LDAP baseline query: a single base and scope
// with a boolean combination of atomic filters.
func (d *Directory) SearchLDAP(text string) (*Result, error) {
	q, err := query.ParseLDAP(text)
	if err != nil {
		return nil, err
	}
	// LDAP evaluation skips L0-level validation, so its slots are kept
	// apart from Search's even when the printed forms coincide.
	return d.searchCached("ldap|", q, false)
}

func (d *Directory) searchCached(keyPrefix string, q query.Query, validate bool) (*Result, error) {
	// One snapshot load covers the whole search: the cache key's
	// generation, the evaluation, and the Result's Gen all describe the
	// same store, even if an Update swaps mid-flight.
	snap := d.snap.Load()
	if d.cache == nil {
		res, _, err := d.evalSnapshot(snap, q, validate)
		return res, err
	}
	key := fmt.Sprintf("%sg%d|%s", keyPrefix, snap.gen, query.Canonical(q))
	v, hit, err := d.cache.Do(key, func() (any, int64, error) {
		res, size, err := d.evalSnapshot(snap, q, validate)
		if err != nil {
			return nil, 0, err
		}
		return res, size, nil
	})
	if err != nil {
		return nil, err
	}
	res := v.(*Result)
	if hit {
		// Fresh header, shared (read-only) entries: a hit re-executes
		// no I/O, and the Result must say so.
		return &Result{Entries: res.Entries, Gen: res.Gen}, nil
	}
	return res, nil
}

// evalSnapshot evaluates q against one loaded snapshot on a fresh
// per-query arena and returns the materialized result plus its size in
// list-stream bytes (the result cache's cost measure). No directory
// lock is taken: the snapshot's store disk is only read, and all
// writes land on the arena's private scratch disk, so any number of
// evaluations run concurrently with exact per-query I/O accounting.
func (d *Directory) evalSnapshot(snap *snapshot, q query.Query, validate bool) (*Result, int64, error) {
	var hints *planner.Hints
	if validate {
		if err := query.Validate(snap.st.Schema(), q); err != nil {
			return nil, 0, err
		}
		q, hints = d.planQuery(snap, q)
	}
	d.readers.enter(snap.gen)
	defer d.readers.exit(snap.gen)
	arena := pager.NewArena(snap.st.Disk())
	l, err := snap.eng.Session(arena).WithHints(hints).Eval(q)
	if err != nil {
		return nil, 0, err
	}
	size := l.Size()
	recs, err := plist.Drain(l)
	if err != nil {
		return nil, 0, err
	}
	res := &Result{IO: arena.Stats(), Gen: snap.gen}
	res.Entries = make([]*model.Entry, len(recs))
	for i, r := range recs {
		res.Entries[i] = r.Entry
	}
	return res, size, l.Free()
}

// SearchTraced evaluates a query with per-operator tracing: alongside
// the materialized result it returns the span tree recording, for
// every plan operator, its wall time, input/output cardinalities, and
// exact pager.Stats delta (dirq -explain renders it; DESIGN.md §8).
// The tracer windows the per-query arena's counters, so the recorded
// deltas stay exact even while other queries run concurrently.
//
// Two deliberate differences from Search: the result cache is
// bypassed (a cache hit has no operator tree — tracing answers "what
// would this query cost", so it always evaluates), and Result.IO
// covers evaluation only, excluding the final result drain, so that
// it equals the root span's IO exactly and the per-operator self
// deltas sum to it — the conservation law TestTraceIOConservation
// asserts.
func (d *Directory) SearchTraced(text string) (*Result, *obs.Span, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, nil, err
	}
	return d.SearchQueryTraced(context.Background(), q)
}

// SearchQueryTraced is SearchTraced for a parsed query tree, with
// deadline and cancellation propagation: the context is checked before
// each operator, so a budgeted evaluation (the dirserver protocol's
// per-request budget, most importantly) stops promptly instead of
// overrunning. The span tree is returned even on failure — partial,
// with the failing span carrying the error — which is what keeps
// distributed traces well-formed when one hop dies mid-query.
func (d *Directory) SearchQueryTraced(ctx context.Context, q query.Query) (*Result, *obs.Span, error) {
	snap := d.snap.Load()
	if err := query.Validate(snap.st.Schema(), q); err != nil {
		return nil, nil, err
	}
	q, hints := d.planQuery(snap, q)
	return d.searchTraced(ctx, snap, q, hints)
}

// SearchLDAPTraced is SearchQueryTraced for the LDAP baseline surface
// (which skips L0 validation, like SearchLDAP).
func (d *Directory) SearchLDAPTraced(ctx context.Context, text string) (*Result, *obs.Span, error) {
	q, err := query.ParseLDAP(text)
	if err != nil {
		return nil, nil, err
	}
	return d.searchTraced(ctx, d.snap.Load(), q, nil)
}

// planQuery runs the configured planner over a validated query:
// Adaptive plans with the cost model (returning evaluation hints),
// Optimize runs the algebraic rewrites alone, and neither passes the
// query through untouched.
func (d *Directory) planQuery(snap *snapshot, q query.Query) (query.Query, *planner.Hints) {
	switch {
	case d.opts.Adaptive:
		cr := planner.Plan(q, d.planEnv(snap))
		return cr.Query, cr.Hints
	case d.opts.Optimize:
		return planner.Optimize(q, planner.Info{StrictForest: snap.strict}).Query, nil
	}
	return q, nil
}

// planEnv assembles the cost-based planner's environment for one
// snapshot: the snapshot's store as the catalog, the attached
// statistics store (when any) as the calibration feed, and the engine's
// worker count for offload marking.
func (d *Directory) planEnv(snap *snapshot) planner.Env {
	env := planner.Env{
		Catalog: snap.st,
		Info:    planner.Info{StrictForest: snap.strict},
		Workers: d.opts.Engine.Workers,
	}
	if qs := d.qstats.Load(); qs != nil {
		env.Stats = qs
	}
	return env
}

func (d *Directory) searchTraced(ctx context.Context, snap *snapshot, q query.Query, hints *planner.Hints) (*Result, *obs.Span, error) {
	d.readers.enter(snap.gen)
	defer d.readers.exit(snap.gen)
	arena := pager.NewArena(snap.st.Disk())
	tr := obs.NewTracer(arena)
	ctx = obs.WithTracer(ctx, tr)
	qs := d.qstats.Load()
	defer func() { qs.Fold(tr.Root()) }()
	before := arena.Stats()
	l, err := snap.eng.Session(arena).WithHints(hints).EvalContext(ctx, q)
	if err != nil {
		return nil, tr.Root(), err
	}
	evalIO := arena.Stats().Sub(before)
	recs, err := plist.Drain(l)
	if err != nil {
		return nil, tr.Root(), err
	}
	res := &Result{IO: evalIO, Gen: snap.gen, Entries: make([]*model.Entry, len(recs))}
	for i, r := range recs {
		res.Entries[i] = r.Entry
	}
	return res, tr.Root(), l.Free()
}

// SetQueryStats attaches a statistics store: every subsequent traced
// evaluation's span tree is folded into it, and ExplainQuery reports
// its observed hit/I-O distributions beside the catalog estimates.
// Pass nil to detach. Safe to call concurrently with queries.
func (d *Directory) SetQueryStats(s *qstats.Store) { d.qstats.Store(s) }

// QueryStats returns the attached statistics store (nil when none).
func (d *Directory) QueryStats() *qstats.Store { return d.qstats.Load() }

// readerTracker counts in-flight evaluations per generation, feeding
// the reader-generation-lag gauge. The mutex guards two map operations
// per query — nanoseconds, not the evaluation itself, so the read path
// stays effectively lock-free (and entirely uncontended with writers,
// who never touch the tracker).
type readerTracker struct {
	mu     sync.Mutex
	active map[int64]int
}

func (t *readerTracker) enter(gen int64) {
	t.mu.Lock()
	if t.active == nil {
		t.active = make(map[int64]int)
	}
	t.active[gen]++
	t.mu.Unlock()
}

func (t *readerTracker) exit(gen int64) {
	t.mu.Lock()
	if n := t.active[gen]; n <= 1 {
		delete(t.active, gen) // prune at zero: at most a few generations live
	} else {
		t.active[gen] = n - 1
	}
	t.mu.Unlock()
}

// oldest returns the smallest generation with an in-flight reader.
func (t *readerTracker) oldest() (int64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var min int64
	found := false
	for g := range t.active {
		if !found || g < min {
			min, found = g, true
		}
	}
	return min, found
}

// RegisterMetrics exposes the directory's state on reg as pull-based
// gauges: entry count, store generation, live pages, swap count,
// last-rebuild duration, reader generation lag, and — when the result
// cache is enabled — its hit/miss/byte counters. Metric names are
// listed in DESIGN.md §8.
func (d *Directory) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("dirkit_dir_entries", "entries in the directory", func() int64 { return int64(d.Count()) })
	reg.GaugeFunc("dirkit_dir_generation", "store generation (bumps on every Update)", d.Generation)
	reg.GaugeFunc("dirkit_dir_pages", "live pages on the simulated disk", func() int64 { return int64(d.Disk().NumPages()) })
	reg.GaugeFunc("dirkit_dir_swaps", "completed copy-on-write store swaps (successful Updates)", d.swaps.Load)
	reg.GaugeFunc("dirkit_dir_rebuild_ms", "wall time of the last off-line store rebuild (ms)",
		func() int64 { return d.rebuildNS.Load() / int64(time.Millisecond) })
	reg.GaugeFunc("dirkit_dir_reader_lag", "generations between the current store and the oldest in-flight reader",
		func() int64 {
			if oldest, ok := d.readers.oldest(); ok {
				return d.Generation() - oldest
			}
			return 0
		})
	if d.cache != nil {
		d.cache.RegisterMetrics(reg, "dirkit_dir_cache")
	}
}

// Language classifies a query string into the paper's hierarchy.
func Language(text string) (query.Language, error) {
	q, err := query.Parse(text)
	if err != nil {
		return 0, err
	}
	return q.Language(), nil
}
