package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/pager"
	"repro/internal/qstats"
)

// TestExplainObservedVsEstimated closes the observe → estimate loop:
// traced evaluations fold into an attached qstats store, EXPLAIN on
// the repeated query prints the observed hit distribution beside the
// catalog estimate, and the observations survive a checkpoint/recover
// cycle through the durable layer.
func TestExplainObservedVsEstimated(t *testing.T) {
	dir := forestDir(t, 800)
	const q = `( ? sub ? tag=a)`

	// Before any traced run, EXPLAIN has estimates only.
	ex, err := dir.ExplainQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Atoms) != 1 || ex.Atoms[0].ObsN != 0 {
		t.Fatalf("fresh explain already has observations: %+v", ex.Atoms)
	}
	if !strings.Contains(ex.String(), "obs=—") {
		t.Fatalf("fresh explain must print obs=— (no profile yet):\n%s", ex.String())
	}

	qs := qstats.New()
	dir.SetQueryStats(qs)
	var wantHits int64
	for i := 0; i < 3; i++ {
		res, root, err := dir.SearchTraced(q)
		if err != nil {
			t.Fatal(err)
		}
		if root == nil {
			t.Fatal("no span tree")
		}
		wantHits = int64(len(res.Entries))
	}
	if qs.Folded() != 3 {
		t.Fatalf("store folded %d traces, want 3", qs.Folded())
	}

	ex, err = dir.ExplainQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	a := ex.Atoms[0]
	if a.ObsN != 3 {
		t.Fatalf("ObsN = %d, want 3: %+v", a.ObsN, a)
	}
	// The log₂ histogram's median must land in the true hit count's
	// bucket: within [hits/2, 2*hits].
	if wantHits > 0 && (a.ObsP50Hits < float64(wantHits)/2 || a.ObsP50Hits > float64(2*wantHits)) {
		t.Fatalf("ObsP50Hits = %v, actual hits %d", a.ObsP50Hits, wantHits)
	}
	if !strings.Contains(ex.String(), "obs=3:") || !strings.Contains(ex.String(), "pages") ||
		!strings.Contains(ex.String(), "ms") {
		t.Fatalf("explain does not print observed column with units:\n%s", ex.String())
	}

	// The store survives checkpoint/recover; the recovered EXPLAIN
	// still shows the history.
	fs, err := pager.DirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := durable.Open(fs, durable.Options{Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qs.Checkpoint(ds); err != nil {
		t.Fatal(err)
	}
	recovered := qstats.New()
	if _, err := recovered.Recover(ds); err != nil {
		t.Fatal(err)
	}
	dir.SetQueryStats(recovered)
	ex, err = dir.ExplainQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Atoms[0].ObsN != 3 {
		t.Fatalf("recovered ObsN = %d, want 3", ex.Atoms[0].ObsN)
	}
}

// TestSearchQueryTracedHonorsDeadline: a context whose deadline already
// passed stops the evaluation before any operator runs.
func TestSearchQueryTracedHonorsDeadline(t *testing.T) {
	dir := forestDir(t, 200)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err := dir.SearchLDAPTraced(ctx, `( ? sub ? tag=a)`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want DeadlineExceeded", err)
	}
}
