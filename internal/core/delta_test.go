package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/durable"
	"repro/internal/model"
	"repro/internal/store"
)

// peopleDirectory builds a directory of n people under the research
// subtree, large enough that a one-entry delta is visibly smaller than
// a full image.
func peopleDirectory(t testing.TB, n int, opts Options) *Directory {
	t.Helper()
	b := NewBuilder(model.DefaultSchema()).
		MustAdd("dc=com", "dcObject").
		MustAdd("dc=att, dc=com", "dcObject").
		MustAdd("dc=research, dc=att, dc=com", "dcObject").
		MustAdd("ou=userProfiles, dc=research, dc=att, dc=com", "organizationalUnit")
	for i := 0; i < n; i++ {
		if err := b.AddEntry(
			fmt.Sprintf("uid=u%04d, ou=userProfiles, dc=research, dc=att, dc=com", i),
			[]string{"inetOrgPerson"},
			[2]string{"surName", fmt.Sprintf("surname%d", i%17)},
			[2]string{"commonName", fmt.Sprintf("person number %d", i)},
		); err != nil {
			t.Fatal(err)
		}
	}
	dir, err := b.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// personOp builds one add op for a fresh person entry.
func personOp(t testing.TB, dir *Directory, uid, surname string) store.EntryOp {
	t.Helper()
	e, err := model.NewEntryFromDN(dir.Schema(),
		model.MustParseDN(fmt.Sprintf("uid=%s, ou=userProfiles, dc=research, dc=att, dc=com", uid)))
	if err != nil {
		t.Fatal(err)
	}
	e.AddClass("inetOrgPerson")
	e.Add("surName", model.String(surname))
	return store.EntryOp{Add: e}
}

func removeOp(t testing.TB, uid string) store.EntryOp {
	t.Helper()
	return store.EntryOp{Remove: model.MustParseDN(
		fmt.Sprintf("uid=%s, ou=userProfiles, dc=research, dc=att, dc=com", uid))}
}

// TestUpdateEntriesMatchesUpdate applies the same batch through the
// entry-level fast path and through a full-rebuild Update, and requires
// identical answers — plus the tentpole property that the fast path
// dirtied O(log N) pages of a shared fork, not a fresh device.
func TestUpdateEntriesMatchesUpdate(t *testing.T) {
	fast := peopleDirectory(t, 1000, Options{})
	slow := peopleDirectory(t, 1000, Options{})
	baseDisk := fast.Disk()

	if err := fast.UpdateEntries(
		personOp(t, fast, "u9000", "newcomer"),
		removeOp(t, "u0005"),
		personOp(t, fast, "u9001", "newcomer"),
	); err != nil {
		t.Fatal(err)
	}
	err := slow.Update(func(in *model.Instance) error {
		for _, op := range []store.EntryOp{
			personOp(t, slow, "u9000", "newcomer"),
			removeOp(t, "u0005"),
			personOp(t, slow, "u9001", "newcomer"),
		} {
			if op.Add != nil {
				if err := in.Add(op.Add); err != nil {
					return err
				}
			} else if !in.Remove(op.Remove) {
				return fmt.Errorf("no entry %s", op.Remove)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Generation() != 2 || fast.Count() != slow.Count() {
		t.Fatalf("gen %d count %d, want gen 2 count %d", fast.Generation(), fast.Count(), slow.Count())
	}
	for _, q := range []string{
		"(dc=com ? sub ? surName=newcomer)",
		"(dc=com ? sub ? uid=u0005)",
		"(dc=com ? sub ? objectClass=inetOrgPerson)",
		"(uid=u9001, ou=userProfiles, dc=research, dc=att, dc=com ? base ? objectClass=*)",
	} {
		a, err := fast.Search(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		b, err := slow.Search(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if fmt.Sprint(a.DNs()) != fmt.Sprint(b.DNs()) {
			t.Errorf("%s:\n fast %v\n slow %v", q, a.DNs(), b.DNs())
		}
	}
	// The tentpole: the published disk is a fork of the previous one
	// with a logarithmic dirty set, measured by the pager itself.
	disk := fast.Disk()
	if disk == baseDisk {
		t.Fatal("fast path republished the old disk")
	}
	dirty, total := disk.DirtyCount(), disk.NumPages()
	if dirty == 0 || dirty > 64 {
		t.Errorf("batch dirtied %d pages; want O(log N)", dirty)
	}
	if dirty*10 > total {
		t.Errorf("batch dirtied %d of %d pages; not incremental", dirty, total)
	}
}

// TestUpdateEntriesFailureAtomic: any bad op in the batch leaves the
// directory untouched — same generation, same disk, same answers.
func TestUpdateEntriesFailureAtomic(t *testing.T) {
	dir := peopleDirectory(t, 50, Options{})
	disk := dir.Disk()
	err := dir.UpdateEntries(
		personOp(t, dir, "u9000", "newcomer"),
		removeOp(t, "u7777"), // does not exist
	)
	if !errors.Is(err, store.ErrNoEntry) {
		t.Fatalf("err = %v, want ErrNoEntry", err)
	}
	if dir.Generation() != 1 || dir.Disk() != disk {
		t.Fatal("failed batch mutated the directory")
	}
	if res, _ := dir.Search("(dc=com ? sub ? surName=newcomer)"); len(res.Entries) != 0 {
		t.Fatal("failed batch published its add")
	}
}

// TestUpdateEntriesFallsBackToRebuild: an op the overlay cannot carry
// (an oversized record) transparently degrades to the full rebuild —
// same answer, fresh disk, no lineage recorded.
func TestUpdateEntriesFallsBackToRebuild(t *testing.T) {
	dir := peopleDirectory(t, 50, Options{DeltaCheckpoints: true})
	e, err := model.NewEntryFromDN(dir.Schema(),
		model.MustParseDN("uid=big, ou=userProfiles, dc=research, dc=att, dc=com"))
	if err != nil {
		t.Fatal(err)
	}
	e.AddClass("inetOrgPerson")
	// Sized past the overlay's COW-tree item limit (pageSize/4 - 16)
	// but inside the full build's btree limit (pageSize/3 - 8), so only
	// the fast path refuses it.
	e.Add("description", model.String(strings.Repeat("x", 1100)))
	if err := dir.UpdateEntries(store.EntryOp{Add: e}); err != nil {
		t.Fatal(err)
	}
	if dir.Generation() != 2 {
		t.Fatalf("generation %d, want 2", dir.Generation())
	}
	if res, _ := dir.Search("(dc=com ? sub ? uid=big)"); len(res.Entries) != 1 {
		t.Fatal("fallback lost the oversized entry")
	}
	if dir.Disk().DirtyCount() != 0 {
		t.Fatal("fallback should publish a fresh full disk, not a fork")
	}
	dir.lineageMu.Lock()
	_, linked := dir.lineage[2]
	dir.lineageMu.Unlock()
	if linked {
		t.Fatal("full rebuild must not record update lineage")
	}
}

func segSize(t *testing.T, root string, gen int64) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(root, fmt.Sprintf("seg-%016d.seg", gen)))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestDeltaCheckpointRoundTrip drives the full incremental-checkpoint
// cycle: full image, two deltas (each a small fraction of the full
// image's bytes), a byte-identical recovery through the chain, and the
// forced return to a full image when the chain reaches the retention
// window.
func TestDeltaCheckpointRoundTrip(t *testing.T) {
	ds, root := newDurableStore(t)
	dir := peopleDirectory(t, 300, Options{DeltaCheckpoints: true})

	if gen, err := dir.Checkpoint(ds); err != nil || gen != 1 {
		t.Fatalf("checkpoint 1: %d, %v", gen, err)
	}
	if base, ok := ds.BaseOf(1); !ok || base != 0 {
		t.Fatalf("gen 1 base = %d, %v; want full image", base, ok)
	}

	if err := dir.UpdateEntries(personOp(t, dir, "u9000", "delta")); err != nil {
		t.Fatal(err)
	}
	if gen, err := dir.Checkpoint(ds); err != nil || gen != 2 {
		t.Fatalf("checkpoint 2: %d, %v", gen, err)
	}
	if base, ok := ds.BaseOf(2); !ok || base != 1 {
		t.Fatalf("gen 2 base = %d, %v; want delta on 1", base, ok)
	}
	fullBytes, deltaBytes := segSize(t, root, 1), segSize(t, root, 2)
	if deltaBytes*10 > fullBytes {
		t.Errorf("delta is %d bytes vs full %d; want >=10x shrink", deltaBytes, fullBytes)
	}

	if err := dir.UpdateEntries(personOp(t, dir, "u9001", "delta"), removeOp(t, "u0003")); err != nil {
		t.Fatal(err)
	}
	if gen, err := dir.Checkpoint(ds); err != nil || gen != 3 {
		t.Fatalf("checkpoint 3: %d, %v", gen, err)
	}
	if base, ok := ds.BaseOf(3); !ok || base != 2 {
		t.Fatalf("gen 3 base = %d, %v; want delta on 2", base, ok)
	}

	// Recovery replays full(1) + delta(2) + delta(3) and must equal the
	// live directory byte for byte.
	back, info, err := Recover(ds, Options{DeltaCheckpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 3 || info.Skipped != 0 {
		t.Fatalf("info = %+v, want gen 3", info)
	}
	var live, recovered bytes.Buffer
	if err := dir.SaveSnapshot(&live); err != nil {
		t.Fatal(err)
	}
	if err := back.SaveSnapshot(&recovered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), recovered.Bytes()) {
		t.Fatal("recovered snapshot differs from the live one")
	}
	for _, q := range []string{
		"(dc=com ? sub ? surName=delta)",
		"(dc=com ? sub ? uid=u0003)",
	} {
		a, _ := dir.Search(q)
		b, _ := back.Search(q)
		if fmt.Sprint(a.DNs()) != fmt.Sprint(b.DNs()) {
			t.Errorf("%s:\n live %v\n back %v", q, a.DNs(), b.DNs())
		}
	}

	// The chain is now keep-1 deltas long; the next checkpoint must be
	// forced back to a full image even though the lineage links it.
	if err := dir.UpdateEntries(personOp(t, dir, "u9002", "delta")); err != nil {
		t.Fatal(err)
	}
	if gen, err := dir.Checkpoint(ds); err != nil || gen != 4 {
		t.Fatalf("checkpoint 4: %d, %v", gen, err)
	}
	if base, ok := ds.BaseOf(4); !ok || base != 0 {
		t.Fatalf("gen 4 base = %d, %v; want forced full image at the chain cap", base, ok)
	}
}

// TestRecoverAfterFullRebuildBreaksChain: a full-rebuild Update between
// checkpoints records no lineage, so the following checkpoint ships a
// full image rather than a bogus delta.
func TestRecoverAfterFullRebuildBreaksChain(t *testing.T) {
	ds, _ := newDurableStore(t)
	dir := peopleDirectory(t, 60, Options{DeltaCheckpoints: true})
	if _, err := dir.Checkpoint(ds); err != nil {
		t.Fatal(err)
	}
	addUID(t, dir, "rebuilt") // full-rebuild path: no lineage
	if gen, err := dir.Checkpoint(ds); err != nil || gen != 2 {
		t.Fatalf("checkpoint 2: %d, %v", gen, err)
	}
	if base, _ := ds.BaseOf(2); base != 0 {
		t.Fatalf("gen 2 base = %d; a broken lineage must force a full image", base)
	}
	back, info, err := Recover(ds, Options{DeltaCheckpoints: true})
	if err != nil || info.Gen != 2 {
		t.Fatalf("recover: %+v, %v", info, err)
	}
	if res, _ := back.Search("(dc=com ? sub ? uid=rebuilt)"); len(res.Entries) != 1 {
		t.Fatal("recovered image lost the rebuilt entry")
	}
}

// deltaChainStore commits full(1) <- delta(2) <- delta(3) and returns
// the live directory alongside the store.
func deltaChainStore(t *testing.T) (*durable.Store, string, *Directory) {
	t.Helper()
	ds, root := newDurableStore(t)
	dir := peopleDirectory(t, 120, Options{DeltaCheckpoints: true})
	if _, err := dir.Checkpoint(ds); err != nil {
		t.Fatal(err)
	}
	for i, uid := range []string{"u9000", "u9001"} {
		if err := dir.UpdateEntries(personOp(t, dir, uid, "chain")); err != nil {
			t.Fatal(err)
		}
		if gen, err := dir.Checkpoint(ds); err != nil || gen != int64(2+i) {
			t.Fatalf("checkpoint %d: %d, %v", 2+i, gen, err)
		}
	}
	if b2, _ := ds.BaseOf(2); b2 != 1 {
		t.Fatalf("gen 2 base = %d, want 1", b2)
	}
	if b3, _ := ds.BaseOf(3); b3 != 2 {
		t.Fatalf("gen 3 base = %d, want 2", b3)
	}
	return ds, root, dir
}

// TestDeltaChainBitRotDropsSuffix: silent corruption in the middle
// delta breaks every rung that replays through it — recovery lands on
// the newest generation below the damage and drops exactly the suffix.
func TestDeltaChainBitRotDropsSuffix(t *testing.T) {
	ds, root, _ := deltaChainStore(t)
	seg := filepath.Join(root, "seg-0000000000000002.seg")
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-8] ^= 0x04 // payload bit-rot in the middle delta
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	back, info, err := Recover(ds, Options{DeltaCheckpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	// Gen 3 verifies as a file but replays through corrupt gen 2: both
	// rungs fail, gen 1 (the full image) recovers.
	if info.Gen != 1 || info.Skipped != 2 {
		t.Fatalf("info = %+v, want gen 1 with 2 skips", info)
	}
	if res, _ := back.Search("(dc=com ? sub ? surName=chain)"); len(res.Entries) != 0 {
		t.Fatal("gen 1 must predate the chain entries")
	}
	if gens := ds.Generations(); len(gens) != 1 || gens[0] != 1 {
		t.Fatalf("generations after recovery = %v, want exactly [1]", gens)
	}
}

// TestDeltaTornWriteRecoversIntactPrefix: a torn newest delta (the
// classic exposed partial write) fails only its own rung; the base and
// the intact delta prefix keep recovering.
func TestDeltaTornWriteRecoversIntactPrefix(t *testing.T) {
	ds, root, _ := deltaChainStore(t)
	seg := filepath.Join(root, "seg-0000000000000003.seg")
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, buf[:len(buf)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	back, info, err := Recover(ds, Options{DeltaCheckpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 2 || info.Skipped != 1 {
		t.Fatalf("info = %+v, want gen 2 with 1 skip", info)
	}
	res, err := back.Search("(uid=u9000, ou=userProfiles, dc=research, dc=att, dc=com ? base ? objectClass=*)")
	if err != nil || len(res.Entries) != 1 {
		t.Fatalf("gen 2 lost its delta's entry: %v, %v", res, err)
	}
	if res, _ := back.Search("(uid=u9001, ou=userProfiles, dc=research, dc=att, dc=com ? base ? objectClass=*)"); len(res.Entries) != 0 {
		t.Fatal("torn gen 3 entry must be gone")
	}
}

// TestDeltaPayloadTypedErrors extends the snapshot corruption table to
// the delta envelope: every structural mutilation of a DIRKITS2 payload
// must surface as ErrCorruptSnapshot.
func TestDeltaPayloadTypedErrors(t *testing.T) {
	dir := peopleDirectory(t, 30, Options{DeltaCheckpoints: true})
	if err := dir.UpdateEntries(personOp(t, dir, "u9000", "delta")); err != nil {
		t.Fatal(err)
	}
	snap := dir.snap.Load()
	dir.lineageMu.Lock()
	rec, ok := dir.lineage[snap.gen]
	dir.lineageMu.Unlock()
	if !ok {
		t.Fatal("fast path recorded no lineage")
	}
	var buf bytes.Buffer
	if err := writeDeltaSnapshot(snap, rec.parent, rec.dirty, &buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	zeroBase := append([]byte(nil), full...)
	for i := 8; i < 16; i++ {
		zeroBase[i] = 0
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated-magic", full[:4]},
		{"truncated-base-gen", full[:12]},
		{"zero-base-gen", zeroBase},
		{"truncated-section-header", full[:17]},
		{"truncated-section-body", full[:40]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := decodeDeltaSnapshot(tc.data); !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
			}
		})
	}
	// A full-image magic is not a delta.
	var img bytes.Buffer
	if err := dir.SaveSnapshot(&img); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeDeltaSnapshot(img.Bytes()); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("full image accepted as delta: %v", err)
	}
	// And the pristine delta payload must decode.
	if _, err := decodeDeltaSnapshot(full); err != nil {
		t.Fatalf("pristine delta rejected: %v", err)
	}
}
