package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// TestConcurrentSearches hammers one Directory from many goroutines
// (run under -race in CI): evaluation is serialized internally, so all
// answers must be complete and consistent.
func TestConcurrentSearches(t *testing.T) {
	in := workload.GenTOPS(workload.TOPSConfig{Subscribers: 60, Seed: 91})
	dir, err := Open(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"(dc=com ? sub ? objectClass=TOPSSubscriber)",
		"(dc=com ? sub ? objectClass=QHP)",
		"(c (dc=com ? sub ? objectClass=TOPSSubscriber) (dc=com ? sub ? objectClass=QHP))",
		"(g (dc=com ? sub ? objectClass=QHP) count(priority) > 0)",
	}
	wantCounts := make([]int, len(queries))
	for i, q := range queries {
		res, err := dir.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		wantCounts[i] = len(res.Entries)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				qi := (g + i) % len(queries)
				res, err := dir.Search(queries[qi])
				if err != nil {
					errs <- err
					return
				}
				if len(res.Entries) != wantCounts[qi] {
					errs <- fmt.Errorf("query %d returned %d entries, want %d",
						qi, len(res.Entries), wantCounts[qi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentSearchAndUpdate interleaves searches with updates.
func TestConcurrentSearchAndUpdate(t *testing.T) {
	in := workload.GenTOPS(workload.TOPSConfig{Subscribers: 20, Seed: 92})
	dir, err := Open(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := dir.Search("(dc=com ? sub ? objectClass=QHP)"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			err := dir.Update(func(in *model.Instance) error {
				dn := fmt.Sprintf("uid=new%d, ou=userProfiles, dc=research, dc=att, dc=com", i)
				e, err := model.NewEntryFromDN(in.Schema(), model.MustParseDN(dn))
				if err != nil {
					return err
				}
				e.AddClass("inetOrgPerson")
				return in.Add(e)
			})
			if err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	res, err := dir.Search("(dc=com ? sub ? uid=new*)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 3 {
		t.Errorf("updates lost under concurrency: %d", len(res.Entries))
	}
}
