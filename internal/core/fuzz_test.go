package core

import (
	"bytes"
	"testing"

	"repro/internal/workload"
)

// FuzzOpenSnapshot feeds mutated snapshot bytes through the full open
// path: magic, schema section, manifest section, disk image, store
// reopen, master-list rebuild. OpenSnapshot must either return a
// working directory or an error — never panic, and never let a lying
// length header allocate unbounded memory (section bodies and the page
// table are grown incrementally against the bytes actually present).
func FuzzOpenSnapshot(f *testing.F) {
	dir, err := Open(workload.PaperInstance(), Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dir.SaveSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(full[:8])
	f.Add([]byte{})
	// A header that declares a huge section on a tiny stream.
	lying := append([]byte{}, full[:12]...)
	lying[8], lying[9], lying[10], lying[11] = 0xff, 0xff, 0xff, 0x3f
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := OpenSnapshot(bytes.NewReader(data), Options{})
		if err != nil {
			return
		}
		// Whatever decodes must also answer queries without panicking.
		if _, err := back.Search("( ? sub ? objectClass=*)"); err != nil {
			t.Skip("restored image rejects queries; acceptable")
		}
	})
}
