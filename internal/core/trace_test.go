package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/pager"
	"repro/internal/query"
	"repro/internal/workload"
)

// l2Query is an L2 pipeline over the bench forest preset (the same
// shape E8 measures): hierarchical selection over boolean combinations
// of four atomics, with an aggregate-selection filter.
const l2Query = `(c (& ( ? sub ? tag=a) ( ? sub ? val<5)) (| ( ? sub ? tag=b) ( ? sub ? tag=c)) count($2) > 0)`

func forestDir(t testing.TB, n int) *Directory {
	t.Helper()
	in := workload.RandomForest(workload.ForestConfig{N: n, Seed: 6})
	dir, err := Open(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestTraceIOConservation is the tentpole acceptance check: on an L2
// query over the bench preset, the span tree's per-operator pager.Stats
// deltas sum exactly to the query's total Disk.Stats() delta — every
// page access is attributed to exactly one operator.
func TestTraceIOConservation(t *testing.T) {
	dir := forestDir(t, 1500)
	q, err := query.Parse(l2Query)
	if err != nil {
		t.Fatal(err)
	}

	// Measure the raw engine delta around the traced evaluation.
	eng := dir.Engine()
	disk := dir.Disk()
	tr := obs.NewTracer(disk)
	ctx := obs.WithTracer(context.Background(), tr)
	before := disk.Stats()
	l, err := eng.EvalContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	delta := disk.Stats().Sub(before)
	if err := l.Free(); err != nil {
		t.Fatal(err)
	}

	root := tr.Root()
	if root == nil {
		t.Fatal("traced evaluation produced no span tree")
	}
	if delta.IO() == 0 {
		t.Fatal("query performed no I/O; the conservation check is vacuous")
	}
	if root.IO != delta {
		t.Fatalf("root span IO %v != disk delta %v", root.IO, delta)
	}
	var sum pager.Stats
	var spans int
	root.Walk(func(s *obs.Span) {
		sum = sum.Add(s.SelfIO())
		spans++
	})
	if sum != delta {
		t.Fatalf("summed per-operator self IO %v != disk delta %v", sum, delta)
	}
	// The L2 tree has 7 operators: c, &, |, and four atomics.
	if spans != 7 {
		t.Fatalf("span count = %d, want 7", spans)
	}
	if root.Op != "c" {
		t.Fatalf("root op = %q, want c", root.Op)
	}
}

// TestSearchTraced exercises the public surface: Result.IO equals the
// root span's IO, cardinalities are recorded, and the rendered tree
// names every operator.
func TestSearchTraced(t *testing.T) {
	dir := forestDir(t, 800)
	res, root, err := dir.SearchTraced(l2Query)
	if err != nil {
		t.Fatal(err)
	}
	if root == nil {
		t.Fatal("no span tree")
	}
	if res.IO != root.IO {
		t.Fatalf("Result.IO %v != root span IO %v", res.IO, root.IO)
	}
	if root.Out != int64(len(res.Entries)) {
		t.Fatalf("root out = %d, want %d entries", root.Out, len(res.Entries))
	}
	if len(root.In) != 2 {
		t.Fatalf("root inputs = %v, want 2 cardinalities", root.In)
	}
	atoms := 0
	root.Walk(func(s *obs.Span) {
		if s.Op == "atomic" {
			atoms++
			if s.Detail == "" {
				t.Error("atomic span missing its query text")
			}
		}
	})
	if atoms != 4 {
		t.Fatalf("atomic spans = %d, want 4", atoms)
	}
	var b strings.Builder
	root.Format(&b)
	for _, op := range []string{"c ", "& ", "| ", "atomic"} {
		if !strings.Contains(b.String(), op) {
			t.Errorf("rendered tree missing operator %q:\n%s", op, b.String())
		}
	}
}

// TestSearchTracedBypassesCache: tracing always evaluates, so a cached
// directory still yields a full span tree and real I/O.
func TestSearchTracedBypassesCache(t *testing.T) {
	in := workload.RandomForest(workload.ForestConfig{N: 400, Seed: 6})
	dir, err := Open(in, Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Search(l2Query); err != nil { // warm the cache
		t.Fatal(err)
	}
	res, root, err := dir.SearchTraced(l2Query)
	if err != nil {
		t.Fatal(err)
	}
	if root == nil || res.IO.IO() == 0 {
		t.Fatal("traced search appears to have been served from the cache")
	}
}

// BenchmarkSearchUntraced/Traced bound the tracer's overhead: the
// untraced path must stay within noise of the pre-obs engine (a nil
// check per operator), the traced path shows the cost of opting in.
func BenchmarkSearchUntraced(b *testing.B) {
	dir := forestDir(b, 1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dir.Search(l2Query); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchTraced(b *testing.B) {
	dir := forestDir(b, 1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dir.SearchTraced(l2Query); err != nil {
			b.Fatal(err)
		}
	}
}
