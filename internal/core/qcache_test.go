package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/filter"
	"repro/internal/ldif"
	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/query"
	"repro/internal/workload"
)

func cachedForestPair(t *testing.T, n int, seed int64) (cached, plain *Directory) {
	t.Helper()
	var err error
	cached, err = Open(workload.RandomForest(workload.ForestConfig{N: n, Seed: seed}),
		Options{CacheBytes: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	plain, err = Open(workload.RandomForest(workload.ForestConfig{N: n, Seed: seed}),
		Options{})
	if err != nil {
		t.Fatal(err)
	}
	return cached, plain
}

// marshalResult renders a result byte-exactly: every entry's full LDIF
// block, in order.
func marshalResult(res *Result) string {
	var b strings.Builder
	for _, e := range res.Entries {
		b.WriteString(ldif.MarshalEntry(e))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCachedRepeatZeroIO is the acceptance criterion: re-executing a
// repeated L1/L2 query from the cache performs zero page I/O, asserted
// via the pager's own counters.
func TestCachedRepeatZeroIO(t *testing.T) {
	cached, _ := cachedForestPair(t, 400, 7)
	queries := []string{
		// L1: descendants of tagged entries.
		`(d (? sub ? tag=a) (? sub ? val>=2))`,
		// L2: aggregate selection.
		`(g (? sub ? tag=b) count(val) >= 1)`,
	}
	for _, qs := range queries {
		first, err := cached.Search(qs)
		if err != nil {
			t.Fatal(err)
		}
		if first.IO.IO() == 0 {
			t.Fatalf("%s: first (miss) evaluation reported zero I/O — bad baseline", qs)
		}
		before := cached.Disk().Stats()
		second, err := cached.Search(qs)
		if err != nil {
			t.Fatal(err)
		}
		if got := second.IO; got != (pager.Stats{}) {
			t.Errorf("%s: cached re-execution reported I/O %v, want none", qs, got)
		}
		if moved := cached.Disk().Stats().Sub(before); moved != (pager.Stats{}) {
			t.Errorf("%s: cached re-execution touched the disk: %v", qs, moved)
		}
		if marshalResult(first) != marshalResult(second) {
			t.Errorf("%s: cached result differs from computed result", qs)
		}
	}
	st := cached.CacheStats()
	if st.Hits != int64(len(queries)) || st.Misses != int64(len(queries)) {
		t.Errorf("cache stats = %+v, want %d hits / %d misses", st, len(queries), len(queries))
	}
}

// TestCacheSharesSemanticallyIdenticalQueries: whitespace, attribute
// case, and commutative operand order must land in one slot.
func TestCacheSharesSemanticallyIdenticalQueries(t *testing.T) {
	cached, _ := cachedForestPair(t, 200, 3)
	variants := []string{
		`(& (? sub ? tag=a) (? sub ? val>=1))`,
		`(&   (? sub ? TAG=a)   (? sub ? val>=1) )`,
		`(& (? sub ? val>=1) (? sub ? tag=a))`,
	}
	want := ""
	for i, qs := range variants {
		res, err := cached.Search(qs)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = marshalResult(res)
			continue
		}
		if marshalResult(res) != want {
			t.Errorf("variant %d returned a different result", i)
		}
	}
	st := cached.CacheStats()
	if st.Misses != 1 || st.Hits != int64(len(variants)-1) {
		t.Errorf("variants did not share one slot: %+v", st)
	}
}

// TestCacheInvalidationOnUpdate: a single Update must invalidate every
// stale entry — the post-update answer reflects the mutation.
func TestCacheInvalidationOnUpdate(t *testing.T) {
	cached, _ := cachedForestPair(t, 200, 5)
	qs := `(? sub ? tag=a)`
	before, err := cached.Search(qs)
	if err != nil {
		t.Fatal(err)
	}
	gen := cached.Generation()
	if err := cached.Update(func(in *model.Instance) error {
		e, err := model.NewEntryFromDN(in.Schema(), model.MustParseDN("n=fresh"))
		if err != nil {
			return err
		}
		e.AddClass("node")
		e.Add("tag", model.String("a"))
		return in.Add(e)
	}); err != nil {
		t.Fatal(err)
	}
	if got := cached.Generation(); got != gen+1 {
		t.Fatalf("generation after Update = %d, want %d", got, gen+1)
	}
	after, err := cached.Search(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Entries) != len(before.Entries)+1 {
		t.Fatalf("stale answer served after Update: %d entries, want %d",
			len(after.Entries), len(before.Entries)+1)
	}
	if after.IO.IO() == 0 {
		t.Error("post-update search claimed to be free — stale cache hit?")
	}
}

// randCoreQuery mirrors the engine randquery_test generator's shape at
// the core.Search level: random atomics over the forest vocabulary
// composed with boolean, hierarchical, and aggregate operators.
func randCoreQuery(r *rand.Rand, depth int) query.Query {
	if depth <= 0 || r.Intn(3) == 0 {
		return randCoreAtomic(r)
	}
	switch r.Intn(6) {
	case 0, 1:
		return &query.Bool{
			Op: query.BoolOp(r.Intn(3)),
			Q1: randCoreQuery(r, depth-1),
			Q2: randCoreQuery(r, depth-1),
		}
	case 2, 3:
		op := query.HierOp(r.Intn(6))
		h := &query.Hier{Op: op, Q1: randCoreQuery(r, depth-1), Q2: randCoreQuery(r, depth-1)}
		if op.Ternary() {
			h.Q3 = randCoreQuery(r, depth-1)
		}
		return h
	case 4:
		return &query.SimpleAgg{
			Q: randCoreQuery(r, depth-1),
			AggSel: &query.AggSel{
				Left:  query.EntryAttr(query.AggCount, query.VarSelf, "val"),
				Op:    query.CmpOp(r.Intn(6)),
				Right: query.ConstAttr(int64(r.Intn(4))),
			},
		}
	default:
		return &query.EmbedRef{
			Op:   query.RefOp(r.Intn(2)),
			Q1:   randCoreQuery(r, depth-1),
			Q2:   randCoreQuery(r, depth-1),
			Attr: "ref",
		}
	}
}

func randCoreAtomic(r *rand.Rand) *query.Atomic {
	bases := []string{"", "n=e0", "n=e1, n=e0"}
	scopes := []query.Scope{query.ScopeBase, query.ScopeOne, query.ScopeSub, query.ScopeSub}
	atoms := []func() *filter.Atom{
		func() *filter.Atom { return filter.Eq("tag", string(rune('a'+r.Intn(3)))) },
		func() *filter.Atom { return filter.Present("val") },
		func() *filter.Atom { return filter.NewAtom("val", filter.OpLT, fmt.Sprint(r.Intn(8))) },
		func() *filter.Atom { return filter.NewAtom("val", filter.OpGE, fmt.Sprint(r.Intn(8))) },
		func() *filter.Atom { return filter.Eq("n", fmt.Sprintf("e%d*", r.Intn(3))) },
	}
	return &query.Atomic{
		Base:   model.MustParseDN(bases[r.Intn(len(bases))]),
		Scope:  scopes[r.Intn(len(scopes))],
		Filter: atoms[r.Intn(len(atoms))](),
	}
}

// applyOracleUpdate performs the same deterministic mutation on both
// directories: insert a fresh tagged entry, or remove one previously
// inserted.
func applyOracleUpdate(t *testing.T, dirs []*Directory, step int) {
	t.Helper()
	for _, d := range dirs {
		err := d.Update(func(in *model.Instance) error {
			if step%3 == 2 {
				// Remove the entry two steps ago (present iff it was added).
				in.Remove(model.MustParseDN(fmt.Sprintf("n=u%d", step-2)))
				return nil
			}
			e, err := model.NewEntryFromDN(in.Schema(), model.MustParseDN(fmt.Sprintf("n=u%d", step)))
			if err != nil {
				return err
			}
			e.AddClass("node")
			e.Add("tag", model.String(string(rune('a'+step%3))))
			e.Add("val", model.Int(int64(step%8)))
			return in.Add(e)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheOracleRandomQueriesWithUpdates replays the random-query
// generator through a cached Directory interleaved with Update calls
// and requires byte-identical results against an uncached Directory.
// The query pool is small and revisited so most executions are cache
// hits; runs under -race via the Makefile's race target.
func TestCacheOracleRandomQueriesWithUpdates(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	cached, plain := cachedForestPair(t, 120, 11)

	pool := make([]query.Query, 24)
	for i := range pool {
		pool[i] = randCoreQuery(r, 1+r.Intn(2))
	}
	iters := 400
	if testing.Short() {
		iters = 80
	}
	for i := 0; i < iters; i++ {
		if i > 0 && i%40 == 0 {
			applyOracleUpdate(t, []*Directory{cached, plain}, i/40)
		}
		q := pool[r.Intn(len(pool))]
		want, errW := plain.SearchQuery(q)
		got, errG := cached.SearchQuery(q)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("iter %d %s: cached err %v, plain err %v", i, q, errG, errW)
		}
		if errW != nil {
			continue
		}
		if marshalResult(got) != marshalResult(want) {
			t.Fatalf("iter %d: cached result for %s diverged from oracle\ncached:\n%s\nplain:\n%s",
				i, q, marshalResult(got), marshalResult(want))
		}
	}
	st := cached.CacheStats()
	if st.Hits == 0 {
		t.Error("oracle run never hit the cache — pool revisiting broken")
	}
	if st.Misses == 0 {
		t.Error("oracle run never missed — updates did not invalidate")
	}
	t.Logf("oracle: %d iters, cache %+v", iters, st)
}

// TestCacheConcurrentSearchUpdate drives concurrent identical and
// distinct searches against a cached directory while updates run —
// single-flight, generation bumps, and Clear all under -race.
func TestCacheConcurrentSearchUpdate(t *testing.T) {
	cached, _ := cachedForestPair(t, 150, 13)
	queries := []string{
		`(? sub ? tag=a)`,
		`(? sub ? tag=b)`,
		`(d (? sub ? tag=a) (? sub ? val>=1))`,
		`(g (? sub ? tag=c) count(val) >= 1)`,
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := cached.Search(queries[(g+i)%len(queries)]); err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	for u := 0; u < 5; u++ {
		applyOracleUpdate(t, []*Directory{cached}, 100+u)
	}
	wg.Wait()
	// After the dust settles, a repeated query must still be exact.
	res1, err := cached.Search(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	res2, err := cached.Search(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if marshalResult(res1) != marshalResult(res2) {
		t.Error("post-churn repeat diverged")
	}
}

// TestSnapshotRestoreFreshGeneration: a restored directory starts a
// fresh generation and a working cache.
func TestSnapshotRestoreFreshGeneration(t *testing.T) {
	cached, _ := cachedForestPair(t, 100, 17)
	var buf strings.Builder
	if err := cached.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenSnapshot(strings.NewReader(buf.String()), Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Generation() == 0 {
		t.Error("restored directory has zero generation")
	}
	qs := `(? sub ? tag=a)`
	if _, err := restored.Search(qs); err != nil {
		t.Fatal(err)
	}
	res, err := restored.Search(qs)
	if err != nil {
		t.Fatal(err)
	}
	if res.IO != (pager.Stats{}) {
		t.Error("restored directory's cache not serving hits")
	}
	if restored.CacheStats().Hits != 1 {
		t.Errorf("restored cache stats = %+v", restored.CacheStats())
	}
}
