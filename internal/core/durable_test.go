package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/durable"
	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/workload"
)

func newDurableStore(t *testing.T) (*durable.Store, string) {
	t.Helper()
	root := t.TempDir()
	fs, err := pager.DirFS(root)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := durable.Open(fs, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ds, root
}

func addUID(t *testing.T, dir *Directory, uid string) {
	t.Helper()
	err := dir.Update(func(in *model.Instance) error {
		e, err := model.NewEntryFromDN(in.Schema(),
			model.MustParseDN(fmt.Sprintf("uid=%s, ou=userProfiles, dc=research, dc=att, dc=com", uid)))
		if err != nil {
			return err
		}
		e.AddClass("inetOrgPerson")
		return in.Add(e)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRecoverContinuesLineage(t *testing.T) {
	ds, _ := newDurableStore(t)
	dir, err := Open(workload.PaperInstance(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gen, err := dir.Checkpoint(ds); err != nil || gen != 1 {
		t.Fatalf("checkpoint gen 1: %d, %v", gen, err)
	}
	addUID(t, dir, "alpha") // gen 2
	addUID(t, dir, "beta")  // gen 3
	if gen, err := dir.Checkpoint(ds); err != nil || gen != 3 {
		t.Fatalf("checkpoint gen 3: %d, %v", gen, err)
	}
	// Checkpointing an unchanged generation is a no-op.
	before := ds.Stats().Commits
	if gen, err := dir.Checkpoint(ds); err != nil || gen != 3 {
		t.Fatalf("idempotent checkpoint: %d, %v", gen, err)
	}
	if ds.Stats().Commits != before {
		t.Fatal("idempotent checkpoint still committed")
	}

	back, info, err := Recover(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Fresh || info.Gen != 3 || info.Skipped != 0 {
		t.Fatalf("info = %+v, want gen 3", info)
	}
	if back.Generation() != 3 {
		t.Fatalf("recovered directory at gen %d, want 3 (lineage continuity)", back.Generation())
	}
	res, err := back.Search("(dc=com ? sub ? uid=alpha)")
	if err != nil || len(res.Entries) != 1 {
		t.Fatalf("recovered answer: %v, %v", res, err)
	}
	// The lineage continues: the next update is gen 4, and its
	// checkpoint lands after the recovered segment.
	addUID(t, back, "gamma")
	if back.Generation() != 4 {
		t.Fatalf("post-recovery update at gen %d, want 4", back.Generation())
	}
	if gen, err := back.Checkpoint(ds); err != nil || gen != 4 {
		t.Fatalf("post-recovery checkpoint: %d, %v", gen, err)
	}
}

func TestRecoverFreshStore(t *testing.T) {
	ds, _ := newDurableStore(t)
	dir, info, err := Recover(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Fresh || dir != nil {
		t.Fatalf("empty store: info %+v, dir %v", info, dir)
	}
}

func TestRecoverRollsPastCorruptNewestGeneration(t *testing.T) {
	ds, root := newDurableStore(t)
	dir, err := Open(workload.PaperInstance(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Checkpoint(ds); err != nil {
		t.Fatal(err)
	}
	addUID(t, dir, "alpha")
	if _, err := dir.Checkpoint(ds); err != nil {
		t.Fatal(err)
	}
	// Rot one payload byte of the newest segment (gen 2).
	seg := filepath.Join(root, "seg-0000000000000002.seg")
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	back, info, err := Recover(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 1 || info.Skipped != 1 {
		t.Fatalf("info = %+v, want gen 1 with 1 skip", info)
	}
	if res, err := back.Search("(dc=com ? sub ? uid=alpha)"); err != nil || len(res.Entries) != 0 {
		t.Fatalf("gen 1 must predate alpha: %v, %v", res, err)
	}
	// The corrupt rung is gone; recommitting gen 2 starts a new lineage.
	addUID(t, back, "beta")
	if gen, err := back.Checkpoint(ds); err != nil || gen != 2 {
		t.Fatalf("recommit gen 2: %d, %v", gen, err)
	}
	again, info, err := Recover(ds, Options{})
	if err != nil || info.Gen != 2 {
		t.Fatalf("second recovery: %+v, %v", info, err)
	}
	if res, _ := again.Search("(dc=com ? sub ? uid=beta)"); len(res.Entries) != 1 {
		t.Fatal("new lineage's gen 2 lost beta")
	}
}

func TestOpenSnapshotTypedErrors(t *testing.T) {
	dir, err := Open(workload.PaperInstance(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dir.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated-magic", full[:4]},
		{"bad-magic", append([]byte("NOTDIRKT"), full[8:]...)},
		{"truncated-section-header", full[:9]},
		{"truncated-section-body", full[:40]},
		{"truncated-disk-image", full[:len(full)-20]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := OpenSnapshot(bytes.NewReader(tc.data), Options{})
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
			}
		})
	}
}

// BenchmarkCheckpoint measures one durable checkpoint of the paper
// instance end to end: serialize the pinned snapshot, seal the
// checksummed envelope, and run the write-temp → fsync → rename →
// fsync-dir commit (generations alternate so the Newest() no-op path
// never hides the work).
func BenchmarkCheckpoint(b *testing.B) {
	root := b.TempDir()
	fs, err := pager.DirFS(root)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := durable.Open(fs, durable.Options{Keep: 2})
	if err != nil {
		b.Fatal(err)
	}
	dir, err := Open(workload.PaperInstance(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	other, err := Open(workload.PaperInstance(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := other.Update(func(in *model.Instance) error { return nil }); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := dir
		if i%2 == 1 {
			d = other // gen 2: forces a real commit every iteration
		}
		if _, err := d.Checkpoint(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCheckpointDuringSwapChaos runs Checkpoints, Updates, and reads
// concurrently (meaningful under -race): every checkpoint serializes
// one immutable snapshot without blocking the swap path, and the store
// must afterwards recover some prefix generation whose answers are
// self-consistent.
func TestCheckpointDuringSwapChaos(t *testing.T) {
	ds, _ := newDurableStore(t)
	dir, err := Open(workload.PaperInstance(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Checkpoint(ds); err != nil {
		t.Fatal(err)
	}
	const writers = 24
	var wg sync.WaitGroup
	errs := make(chan error, writers*3)
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := dir.Update(func(in *model.Instance) error {
				e, err := model.NewEntryFromDN(in.Schema(),
					model.MustParseDN(fmt.Sprintf("uid=chaos%d, ou=userProfiles, dc=research, dc=att, dc=com", i)))
				if err != nil {
					return err
				}
				e.AddClass("inetOrgPerson")
				return in.Add(e)
			})
			if err != nil {
				errs <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := dir.Checkpoint(ds); err != nil {
				errs <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := dir.Search("(dc=com ? sub ? objectClass=inetOrgPerson)"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, err := dir.Checkpoint(ds); err != nil {
		t.Fatal(err)
	}
	back, info, err := Recover(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 1+writers {
		t.Fatalf("final recovery at gen %d, want %d", info.Gen, 1+writers)
	}
	res, err := back.Search("(dc=com ? sub ? uid=chaos*)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != writers {
		t.Fatalf("recovered %d chaos entries, want %d", len(res.Entries), writers)
	}
}
