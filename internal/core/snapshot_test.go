package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

func TestSnapshotRoundTrip(t *testing.T) {
	in := workload.GenTOPS(workload.TOPSConfig{Subscribers: 60, Seed: 131})
	dir, err := Open(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"(dc=com ? sub ? objectClass=TOPSSubscriber)",
		"(c (dc=com ? sub ? objectClass=TOPSSubscriber) (dc=com ? sub ? objectClass=QHP) count($2) >= 2)",
		"(dc=com ? sub ? surName=*adi*)", // exercises the rebuilt suffix index
		"(dc=com ? sub ? priority<=1)",   // exercises the rebuilt catalog
	}
	want := map[string][]string{}
	for _, q := range queries {
		res, err := dir.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = res.DNs()
	}

	var buf bytes.Buffer
	if err := dir.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	back, err := OpenSnapshot(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != dir.Count() {
		t.Fatalf("count %d, want %d", back.Count(), dir.Count())
	}
	for _, q := range queries {
		res, err := back.Search(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if fmt.Sprint(res.DNs()) != fmt.Sprint(want[q]) {
			t.Errorf("%s: snapshot answers differ\n got %v\nwant %v", q, res.DNs(), want[q])
		}
	}

	// Updates still work after a restore (instance reconstructed).
	err = back.Update(func(in *model.Instance) error {
		e, err := model.NewEntryFromDN(in.Schema(),
			model.MustParseDN("uid=restored, ou=userProfiles, dc=research, dc=att, dc=com"))
		if err != nil {
			return err
		}
		e.AddClass("inetOrgPerson")
		return in.Add(e)
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := back.Search("(dc=com ? sub ? uid=restored)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 {
		t.Fatal("post-restore update invisible")
	}
}

func TestSnapshotOpenSkipsBuildIO(t *testing.T) {
	in := workload.GenTOPS(workload.TOPSConfig{Subscribers: 120, Seed: 132})
	dir, err := Open(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dir.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := OpenSnapshot(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Reopen rebuilds only the in-memory indexes: one master scan plus
	// the instance reload, far less than the Build's index insertions.
	buildWrites := dir.Disk().Stats().Writes
	reopenWrites := back.Disk().Stats().Writes
	if reopenWrites*4 > buildWrites {
		t.Errorf("reopen wrote %d pages vs build's %d; snapshot not reusing the image", reopenWrites, buildWrites)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := OpenSnapshot(bytes.NewReader([]byte("not a snapshot at all")), Options{}); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := OpenSnapshot(bytes.NewReader(nil), Options{}); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestSnapshotUnindexedDirectory(t *testing.T) {
	dir := smallDirectory(t, Options{NoAttrIndex: true})
	var buf bytes.Buffer
	if err := dir.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := OpenSnapshot(&buf, Options{NoAttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := back.Search("(dc=com ? sub ? surName=jagadish)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("unindexed snapshot: %v", res.DNs())
	}
}
