package core

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/query"
)

func smallDirectory(t *testing.T, opts Options) *Directory {
	t.Helper()
	b := NewBuilder(model.DefaultSchema()).
		MustAdd("dc=com", "dcObject").
		MustAdd("dc=att, dc=com", "dcObject").
		MustAdd("dc=research, dc=att, dc=com", "dcObject").
		MustAdd("ou=userProfiles, dc=research, dc=att, dc=com", "organizationalUnit")
	if err := b.AddEntry("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com",
		[]string{"inetOrgPerson", "TOPSSubscriber"},
		[2]string{"surName", "jagadish"},
		[2]string{"commonName", "h jagadish"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEntry("QHPName=weekend, uid=jag, ou=userProfiles, dc=research, dc=att, dc=com",
		[]string{"QHP"},
		[2]string{"priority", "1"},
		[2]string{"daysOfWeek", "6"}); err != nil {
		t.Fatal(err)
	}
	d, err := b.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDirectorySearch(t *testing.T) {
	d := smallDirectory(t, Options{})
	res, err := d.Search("(dc=com ? sub ? surName=jagadish)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("entries = %v", res.DNs())
	}
	if res.IO.IO() == 0 {
		t.Error("expected counted I/O")
	}
	// Hierarchical query through the facade.
	res, err = d.Search(`(c (dc=com ? sub ? objectClass=TOPSSubscriber)
	                        (dc=com ? sub ? objectClass=QHP))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || !strings.HasPrefix(res.DNs()[0], "uid=jag") {
		t.Fatalf("children: %v", res.DNs())
	}
}

func TestDirectorySearchErrors(t *testing.T) {
	d := smallDirectory(t, Options{})
	if _, err := d.Search("((("); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := d.Search("(dc=com ? sub ? nosuch=1)"); err == nil {
		t.Error("validation error not surfaced")
	}
}

func TestDirectoryGet(t *testing.T) {
	d := smallDirectory(t, Options{})
	e, err := d.Get("dc=att, dc=com")
	if err != nil {
		t.Fatal(err)
	}
	if !e.HasClass("dcObject") {
		t.Error("wrong entry")
	}
	if _, err := d.Get("dc=missing"); err == nil {
		t.Error("missing DN accepted")
	}
	if _, err := d.Get("not a dn,,"); err == nil {
		t.Error("malformed DN accepted")
	}
}

func TestDirectorySearchLDAP(t *testing.T) {
	d := smallDirectory(t, Options{})
	res, err := d.SearchLDAP("(dc=com ? sub ? (&(objectClass=QHP)(priority<=1)))")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("ldap result: %v", res.DNs())
	}
}

func TestNoAttrIndexOption(t *testing.T) {
	d := smallDirectory(t, Options{NoAttrIndex: true, PageSize: 256})
	res, err := d.Search("(dc=com ? sub ? surName=jag*)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("unindexed search: %v", res.DNs())
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(model.DefaultSchema()).MustAdd("dc=com", "noSuchClass")
	if _, err := b.Build(Options{}); err == nil {
		t.Error("deferred builder error lost")
	}
	b2 := NewBuilder(model.DefaultSchema())
	if err := b2.AddEntry("dc=com", []string{"dcObject"}, [2]string{"nosuch", "1"}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if err := b2.AddEntry("dc=com", []string{"dcObject"}, [2]string{"dc", "com"}); err != nil {
		t.Fatal(err)
	}
	// Duplicate DN.
	if err := b2.AddEntry("dc=com", []string{"dcObject"}); err == nil {
		t.Error("duplicate DN accepted")
	}
}

func TestLanguageHelper(t *testing.T) {
	l, err := Language("(g (dc=com ? sub ? dc=*) count($$) > 0)")
	if err != nil || l != query.LangL2 {
		t.Fatalf("Language = %v, %v", l, err)
	}
	if _, err := Language("nonsense"); err == nil {
		t.Error("bad query accepted")
	}
}

func TestResultHeterogeneity(t *testing.T) {
	// Answers are directory instances: mixed-class entries coexist.
	d := smallDirectory(t, Options{})
	res, err := d.Search("(dc=com ? sub ? objectClass=*)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != d.Count() {
		t.Fatalf("got %d of %d", len(res.Entries), d.Count())
	}
	classes := map[string]bool{}
	for _, e := range res.Entries {
		for _, c := range e.Classes() {
			classes[c] = true
		}
	}
	if len(classes) < 4 {
		t.Errorf("expected heterogeneous classes, got %v", classes)
	}
}
