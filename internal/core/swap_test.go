package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// answers evaluates every query and returns a stable fingerprint of the
// full answer set (DNs in order).
func answers(t *testing.T, d *Directory, queries []string) string {
	t.Helper()
	var b strings.Builder
	for _, q := range queries {
		res, err := d.Search(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		fmt.Fprintf(&b, "%s -> %v\n", q, res.DNs())
	}
	return b.String()
}

var probeQueries = []string{
	"(dc=com ? sub ? objectClass=*)",
	"(dc=com ? sub ? surName=jagadish)",
	"(dc=com ? sub ? priority<=1)",
}

// TestUpdateErrorIsFailureAtomic is the regression test for the
// partial-mutation leak: a mutation function that errors midway — after
// already adding an entry — must leave the directory answering queries
// exactly as before, at the same generation, with cached results
// intact.
func TestUpdateErrorIsFailureAtomic(t *testing.T) {
	d := smallDirectory(t, Options{CacheBytes: 1 << 20})
	before := answers(t, d, probeQueries)
	gen := d.Generation()
	cachedBefore := d.CacheStats().Entries

	boom := errors.New("boom")
	err := d.Update(func(in *model.Instance) error {
		// Partial mutation: this entry lands in the (cloned) instance…
		e, err := model.NewEntryFromDN(in.Schema(), model.MustParseDN("dc=leak, dc=com"))
		if err != nil {
			return err
		}
		e.AddClass("dcObject")
		if err := in.Add(e); err != nil {
			return err
		}
		// …and then the mutation fails.
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}

	if g := d.Generation(); g != gen {
		t.Errorf("generation changed on failed update: %d -> %d", gen, g)
	}
	if d.CacheStats().Entries != cachedBefore {
		t.Errorf("cache disturbed on failed update: %d -> %d entries", cachedBefore, d.CacheStats().Entries)
	}
	if after := answers(t, d, probeQueries); after != before {
		t.Errorf("failed update changed answers:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	res, err := d.Search("(dc=com ? sub ? objectClass=dcObject)")
	if err != nil {
		t.Fatal(err)
	}
	for _, dn := range res.DNs() {
		if strings.Contains(dn, "dc=leak") {
			t.Fatalf("partial mutation leaked into live directory: %v", res.DNs())
		}
	}
}

// TestUpdateBuildFailureKeepsOldSnapshot covers the second half of
// failure atomicity: the mutation succeeds but the off-line store build
// fails (here: an attribute value too large for the small page size's
// B+tree item bound). The old snapshot must keep serving, consistent,
// at the old generation.
func TestUpdateBuildFailureKeepsOldSnapshot(t *testing.T) {
	d := smallDirectory(t, Options{PageSize: 512})
	before := answers(t, d, probeQueries)
	gen := d.Generation()

	err := d.Update(func(in *model.Instance) error {
		e, err := model.NewEntryFromDN(in.Schema(), model.MustParseDN("uid=big, ou=userProfiles, dc=research, dc=att, dc=com"))
		if err != nil {
			return err
		}
		e.AddClass("inetOrgPerson")
		// Valid for the model, but its composite index key exceeds the
		// 512-byte page's B+tree item bound, so store.Build must fail.
		e.Add("surName", model.String(strings.Repeat("x", 2000)))
		return in.Add(e)
	})
	if err == nil {
		t.Fatal("expected store build failure")
	}

	if g := d.Generation(); g != gen {
		t.Errorf("generation changed on failed rebuild: %d -> %d", gen, g)
	}
	if after := answers(t, d, probeQueries); after != before {
		t.Errorf("failed rebuild changed answers:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	// And the directory still accepts a well-formed update afterwards.
	if err := d.Update(func(in *model.Instance) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if g := d.Generation(); g != gen+1 {
		t.Errorf("generation after recovery update = %d, want %d", g, gen+1)
	}
}

// TestSearchDuringUpdateSeesConsistentGeneration runs lock-free readers
// against a directory while a writer swaps stores underneath them (run
// under -race in CI). Every answer must be internally consistent with
// the generation it reports: generation g answers the query exactly as
// the instance published at g did — never a torn mix.
func TestSearchDuringUpdateSeesConsistentGeneration(t *testing.T) {
	in := workload.GenTOPS(workload.TOPSConfig{Subscribers: 40, Seed: 7})
	dir, err := Open(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const q = "(dc=com ? sub ? objectClass=TOPSSubscriber)"
	base, err := dir.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	baseCount := len(base.Entries)
	startGen := dir.Generation()

	// Generation g serves baseCount + (g - startGen) matching entries:
	// each update adds exactly one subscriber.
	const updates = 5
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				res, err := dir.Search(q)
				if err != nil {
					errs <- err
					return
				}
				want := baseCount + int(res.Gen-startGen)
				if len(res.Entries) != want {
					errs <- fmt.Errorf("gen %d returned %d entries, want %d (torn read)",
						res.Gen, len(res.Entries), want)
					return
				}
			}
		}()
	}
	for i := 0; i < updates; i++ {
		err := dir.Update(func(inst *model.Instance) error {
			dn := fmt.Sprintf("uid=extra%d, ou=userProfiles, dc=research, dc=att, dc=com", i)
			e, err := model.NewEntryFromDN(inst.Schema(), model.MustParseDN(dn))
			if err != nil {
				return err
			}
			e.AddClass("TOPSSubscriber")
			return inst.Add(e)
		})
		if err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if g := dir.Generation(); g != startGen+updates {
		t.Errorf("generation = %d, want %d", g, startGen+updates)
	}
	final, err := dir.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Entries) != baseCount+updates {
		t.Errorf("final count = %d, want %d", len(final.Entries), baseCount+updates)
	}
}

// TestResultGenerationEcho pins Result.Gen to the snapshot the search
// evaluated against, including on cache hits.
func TestResultGenerationEcho(t *testing.T) {
	d := smallDirectory(t, Options{CacheBytes: 1 << 20})
	res, err := d.Search(probeQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Gen != d.Generation() {
		t.Fatalf("Result.Gen = %d, want %d", res.Gen, d.Generation())
	}
	hit, err := d.Search(probeQueries[0]) // cache hit
	if err != nil {
		t.Fatal(err)
	}
	if hit.Gen != res.Gen {
		t.Fatalf("cache hit Gen = %d, want %d", hit.Gen, res.Gen)
	}
	if hit.IO.IO() != 0 {
		t.Fatalf("cache hit performed I/O: %v", hit.IO)
	}
	if err := d.Update(func(*model.Instance) error { return nil }); err != nil {
		t.Fatal(err)
	}
	res2, err := d.Search(probeQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if res2.Gen != res.Gen+1 {
		t.Fatalf("post-update Gen = %d, want %d", res2.Gen, res.Gen+1)
	}
}
