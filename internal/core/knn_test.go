package core

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pager"
	"repro/internal/query"
	"repro/internal/workload"
)

const knnTestDim = 6

// knnForestDir opens a clustered-embedding forest directory.
func knnForestDir(t testing.TB, n int, seed int64, opts Options) *Directory {
	t.Helper()
	in := workload.RandomForest(workload.ForestConfig{N: n, Seed: seed, VecDim: knnTestDim})
	dir, err := Open(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func knnZeroQuery(k int) string {
	return fmt.Sprintf("( ? sub ? knn(emb,%s,%d))", model.FormatVector(make([]float32, knnTestDim)), k)
}

// TestKNNUpdateRebuildsVectorIndex pins the copy-on-write contract: an
// Update that adds the exact query vector changes the knn answer on the
// next search, and removing it restores the original answer — the
// vector index is rebuilt with every snapshot swap, never patched.
func TestKNNUpdateRebuildsVectorIndex(t *testing.T) {
	dir := knnForestDir(t, 250, 51, Options{})
	q := knnZeroQuery(3)
	base, err := dir.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Entries) != 3 {
		t.Fatalf("baseline returned %d entries", len(base.Entries))
	}

	hit := model.MustParseDN("n=origin")
	err = dir.Update(func(in *model.Instance) error {
		e, err := model.NewEntryFromDN(in.Schema(), hit)
		if err != nil {
			return err
		}
		e.AddClass("node")
		e.Add("emb", model.VectorValue(make([]float32, knnTestDim))) // distance 0
		return in.Add(e)
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dir.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range res.Entries {
		if e.DN().Equal(hit) {
			found = true
		}
	}
	if !found {
		t.Fatalf("zero-distance entry absent from post-update knn: %v", res.DNs())
	}

	err = dir.Update(func(in *model.Instance) error {
		if !in.Remove(hit) {
			return fmt.Errorf("remove failed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after, err := dir.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(after.DNs()) != fmt.Sprint(base.DNs()) {
		t.Fatalf("knn answer did not revert after removal:\n got %v\nwant %v", after.DNs(), base.DNs())
	}
}

// TestKNNSnapshotRoundTrip: knn answers and the index-backed access
// path both survive SaveSnapshot/OpenSnapshot — the vector index is
// restored from the manifest, not rebuilt or dropped.
func TestKNNSnapshotRoundTrip(t *testing.T) {
	dir := knnForestDir(t, 300, 52, Options{})

	// A selective deep base, so the plan should choose the index.
	counts := map[string]int{}
	for _, e := range dir.Instance().Entries() {
		dn := e.DN()
		counts[dn[len(dn)-1].String()]++
	}
	var big string
	for b, n := range counts {
		if n > counts[big] {
			big = b
		}
	}
	queries := []string{
		knnZeroQuery(5),
		fmt.Sprintf("(%s ? sub ? knn(emb,%s,4))", big, model.FormatVector(make([]float32, knnTestDim))),
	}
	want := map[string][]string{}
	for _, q := range queries {
		res, err := dir.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = res.DNs()
	}

	var buf bytes.Buffer
	if err := dir.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := OpenSnapshot(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		res, err := back.Search(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if fmt.Sprint(res.DNs()) != fmt.Sprint(want[q]) {
			t.Errorf("%s: snapshot knn answers differ\n got %v\nwant %v", q, res.DNs(), want[q])
		}
	}
	ex, err := back.ExplainQuery(queries[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Atoms) != 1 || ex.Atoms[0].Path != "knn-index" {
		t.Errorf("restored directory lost the vector index: %+v", ex.Atoms)
	}
}

// TestKNNCheckpointRecover simulates the crash round: checkpoint,
// mutate, checkpoint, rot the newest segment (a torn write at power
// loss), recover — the survivor generation answers knn exactly as it
// did when it was live.
func TestKNNCheckpointRecover(t *testing.T) {
	ds, root := newDurableStore(t)
	dir := knnForestDir(t, 200, 53, Options{})
	q := knnZeroQuery(4)
	gen1Want, err := dir.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Checkpoint(ds); err != nil {
		t.Fatal(err)
	}

	err = dir.Update(func(in *model.Instance) error {
		e, err := model.NewEntryFromDN(in.Schema(), model.MustParseDN("n=crashadd"))
		if err != nil {
			return err
		}
		e.AddClass("node")
		e.Add("emb", model.VectorValue(make([]float32, knnTestDim)))
		return in.Add(e)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Checkpoint(ds); err != nil {
		t.Fatal(err)
	}

	// Clean recovery first: newest generation, mutated answer.
	back, info, err := Recover(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 2 {
		t.Fatalf("recovered gen %d, want 2", info.Gen)
	}
	res, err := back.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	sawCrashAdd := false
	for _, e := range res.Entries {
		if e.DN().String() == "n=crashadd" {
			sawCrashAdd = true
		}
	}
	if !sawCrashAdd {
		t.Fatalf("recovered knn lost the checkpointed entry: %v", res.DNs())
	}

	// Torn newest segment: recovery rolls back one rung and the older
	// generation's knn answer is byte-for-byte what it was live.
	seg := filepath.Join(root, "seg-0000000000000002.seg")
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	old, info, err := Recover(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 1 || info.Skipped != 1 {
		t.Fatalf("info = %+v, want gen 1 with 1 skip", info)
	}
	res, err = old.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.DNs()) != fmt.Sprint(gen1Want.DNs()) {
		t.Fatalf("gen-1 knn answers differ after crash recovery:\n got %v\nwant %v", res.DNs(), gen1Want.DNs())
	}
}

// TestKNNConcurrentSearchAndUpdate races knn searches against COW
// swaps (run under -race in CI): every answer must come from one
// consistent snapshot, with exactly k results throughout.
func TestKNNConcurrentSearchAndUpdate(t *testing.T) {
	dir := knnForestDir(t, 200, 54, Options{})
	q := knnZeroQuery(5)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, err := dir.Search(q)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Entries) != 5 {
					errs <- fmt.Errorf("knn returned %d entries, want 5", len(res.Entries))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			err := dir.Update(func(in *model.Instance) error {
				e, err := model.NewEntryFromDN(in.Schema(), model.MustParseDN(fmt.Sprintf("n=conc%d", i)))
				if err != nil {
					return err
				}
				e.AddClass("node")
				vec := make([]float32, knnTestDim)
				vec[0] = float32(i)
				e.Add("emb", model.VectorValue(vec))
				return in.Add(e)
			})
			if err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestKNNTraceIOConservation extends the obs conservation law to the
// vector read path: in a traced evaluation mixing a knn atomic with a
// regular one, per-operator self-I/O sums exactly to the disk delta,
// and the knn span is tagged with its access path.
func TestKNNTraceIOConservation(t *testing.T) {
	dir := knnForestDir(t, 800, 55, Options{})
	text := fmt.Sprintf("(& ( ? sub ? knn(emb,%s,4)) ( ? sub ? tag=a))",
		model.FormatVector(make([]float32, knnTestDim)))
	q, err := query.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	eng := dir.Engine()
	disk := dir.Disk()
	tr := obs.NewTracer(disk)
	ctx := obs.WithTracer(context.Background(), tr)
	before := disk.Stats()
	l, err := eng.EvalContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	delta := disk.Stats().Sub(before)
	if err := l.Free(); err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if root == nil {
		t.Fatal("no span tree")
	}
	if delta.IO() == 0 {
		t.Fatal("query performed no I/O; the conservation check is vacuous")
	}
	if root.IO != delta {
		t.Fatalf("root span IO %v != disk delta %v", root.IO, delta)
	}
	var sum pager.Stats
	knnTagged := ""
	root.Walk(func(s *obs.Span) {
		sum = sum.Add(s.SelfIO())
		if strings.Contains(s.Detail, "knn(") {
			if v, ok := s.TagValue("knn"); ok {
				knnTagged = v
			}
		}
	})
	if sum != delta {
		t.Fatalf("summed per-operator self IO %v != disk delta %v", sum, delta)
	}
	if knnTagged != "knn-index" && knnTagged != "knn-scan" {
		t.Fatalf("knn span not tagged with its access path (got %q)", knnTagged)
	}
}
