package core

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestExplainPaths(t *testing.T) {
	in := workload.GenTOPS(workload.TOPSConfig{Subscribers: 120, Seed: 93})
	dir, err := Open(in, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}

	// Selective equality: index, with an exact estimate.
	ex, err := dir.ExplainQuery("(dc=com ? sub ? uid=sub0005)")
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Atoms) != 1 || ex.Atoms[0].Path != "index" {
		t.Fatalf("selective equality: %+v", ex.Atoms)
	}
	if ex.Atoms[0].EstHits != 1 {
		t.Errorf("estimate = %d, want 1", ex.Atoms[0].EstHits)
	}

	// Universal presence: scan.
	ex, err = dir.ExplainQuery("(dc=com ? sub ? objectClass=*)")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Atoms[0].Path != "scan" {
		t.Errorf("universal presence path = %s", ex.Atoms[0].Path)
	}

	// Base scope: point lookup.
	ex, err = dir.ExplainQuery("(dc=com ? base ? objectClass=*)")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Atoms[0].Path != "base-point" {
		t.Errorf("base path = %s", ex.Atoms[0].Path)
	}

	// Rewrites are reported.
	ex, err = dir.ExplainQuery(`(& (uid=sub0000, ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=QHP)
	                               (dc=com ? sub ? priority<=2))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Rules) == 0 || ex.Optimized == ex.Original {
		t.Errorf("expected rewrite report: %+v", ex)
	}
	if !strings.Contains(ex.String(), "rules:") {
		t.Errorf("String() lacks rules: %s", ex)
	}

	// Validation errors still surface.
	if _, err := dir.ExplainQuery("(dc=com ? sub ? nosuch=1)"); err == nil {
		t.Error("invalid query explained without error")
	}
}
