package core

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/durable"
)

// Checkpoint durably persists the read snapshot current at call time
// into ds, keyed by its generation, and reports the generation written.
// It never blocks readers or writers: the snapshot is one immutable
// value loaded from the atomic pointer, so serialization proceeds
// while queries evaluate and while an Update builds the next
// generation off-line. Checkpointing an already-persisted generation
// is a no-op (the common case for periodic checkpoint loops between
// writes).
//
// The durable store acknowledges only after the full
// write-temp → fsync → rename → fsync-dir protocol; a nil return
// therefore means this generation survives kill -9 from here on.
func (d *Directory) Checkpoint(ds *durable.Store) (int64, error) {
	snap := d.snap.Load()
	if newest, ok := ds.Newest(); ok && newest == snap.gen {
		return snap.gen, nil
	}
	err := ds.Commit(snap.gen, func(w io.Writer) error {
		return writeSnapshot(snap, w)
	})
	if err != nil {
		return 0, err
	}
	return snap.gen, nil
}

// RecoverInfo describes what Recover found.
type RecoverInfo struct {
	// Gen is the generation the directory was restored to (0 when
	// Fresh).
	Gen int64
	// Skipped counts newer generations that failed verification and
	// were rolled past (and dropped from the store).
	Skipped int
	// Fresh reports an empty durable store: no generation existed, and
	// the caller should build the directory from its bootstrap source
	// and checkpoint it.
	Fresh bool
}

// Recover reconstructs a Directory from the newest intact generation
// in ds, walking the recovery ladder: generations are verified
// newest-first (envelope checksums in the durable store, then the full
// snapshot decode here), corrupt ones are counted, dropped, and rolled
// past. The restored Directory continues the durable lineage — its
// generation is the recovered one, so the next Update produces gen+1
// and the next Checkpoint slots right after the recovered segment.
//
// An empty store is not an error: the returned info has Fresh set and
// the Directory is nil — bootstrap, then Checkpoint. A store whose
// every generation is corrupt returns durable.ErrNoIntactGeneration;
// refusing to serve beats serving a torn state.
func Recover(ds *durable.Store, opts Options) (*Directory, RecoverInfo, error) {
	var info RecoverInfo
	gens := ds.Generations()
	if len(gens) == 0 {
		info.Fresh = true
		return nil, info, nil
	}
	for i := len(gens) - 1; i >= 0; i-- {
		gen := gens[i]
		payload, err := ds.Load(gen)
		if err != nil {
			// The durable store's checksums rejected the segment.
			info.Skipped++
			continue
		}
		dir, err := openSnapshotGen(bytes.NewReader(payload), opts, gen)
		if err != nil {
			// Checksum-intact but semantically undecodable — possible
			// only for images that were corrupt before they were
			// committed. Still just a rung on the ladder.
			info.Skipped++
			continue
		}
		if info.Skipped > 0 {
			// Drop the corrupt newer rungs so the write path resumes
			// cleanly from this lineage.
			if err := ds.Rollback(gen); err != nil {
				return nil, info, fmt.Errorf("core: pruning corrupt generations: %w", err)
			}
		}
		info.Gen = gen
		return dir, info, nil
	}
	return nil, info, fmt.Errorf("core: recover: %w", durable.ErrNoIntactGeneration)
}
