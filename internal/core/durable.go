package core

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"repro/internal/durable"
	"repro/internal/pager"
)

// Checkpoint durably persists the read snapshot current at call time
// into ds, keyed by its generation, and reports the generation written.
// It never blocks readers or writers: the snapshot is one immutable
// value loaded from the atomic pointer, so serialization proceeds
// while queries evaluate and while an Update builds the next
// generation off-line. Checkpointing an already-persisted generation
// is a no-op (the common case for periodic checkpoint loops between
// writes).
//
// Under Options.DeltaCheckpoints the payload is a page delta against
// the newest durable generation whenever the update lineage permits
// (see deltaPlan); otherwise — and always by default — it is a
// self-contained full image. A failed delta commit falls back to a
// full image for the same generation, so delta mode never makes a
// checkpoint less likely to succeed.
//
// The durable store acknowledges only after the full
// write-temp → fsync → rename → fsync-dir protocol; a nil return
// therefore means this generation survives kill -9 from here on.
func (d *Directory) Checkpoint(ds *durable.Store) (int64, error) {
	snap := d.snap.Load()
	if newest, ok := ds.Newest(); ok && newest == snap.gen {
		return snap.gen, nil
	}
	if d.opts.DeltaCheckpoints {
		if base, dirty, ok := d.deltaPlan(ds, snap); ok {
			err := ds.CommitDelta(snap.gen, base, func(w io.Writer) error {
				return writeDeltaSnapshot(snap, base, dirty, w)
			})
			if err == nil {
				d.pruneLineage(snap.gen)
				return snap.gen, nil
			}
			// Fall through to a full image: a failed delta commit (base
			// pruned underfoot, an I/O fault mid-write) must not wedge
			// checkpointing, and committing the same generation again
			// replaces whatever the failed attempt left behind.
		}
	}
	err := ds.Commit(snap.gen, func(w io.Writer) error {
		return writeSnapshot(snap, w)
	})
	if err != nil {
		return 0, err
	}
	d.pruneLineage(snap.gen)
	return snap.gen, nil
}

// deltaPlan decides whether the next checkpoint can be a page delta,
// and against what. Three conditions gate it: the in-memory lineage
// must link snap.gen down to the newest durable generation (any
// full-rebuild Update in between breaks the chain); the resulting
// delta chain must stay shorter than the retention window, so the
// recovery ladder always retains at least one full image below every
// delta; and the dirty union must stay under half the device — past
// that a full image is barely larger to write and far cheaper to
// recover.
func (d *Directory) deltaPlan(ds *durable.Store, snap *snapshot) (base int64, dirty []pager.PageID, ok bool) {
	newest, has := ds.Newest()
	if !has || newest >= snap.gen {
		return 0, nil, false
	}
	if ds.DeltaChainLen()+1 >= ds.Keep() {
		return 0, nil, false
	}
	union := make(map[pager.PageID]struct{})
	d.lineageMu.Lock()
	g := snap.gen
	for g > newest {
		rec, found := d.lineage[g]
		if !found {
			d.lineageMu.Unlock()
			return 0, nil, false
		}
		for _, id := range rec.dirty {
			union[id] = struct{}{}
		}
		g = rec.parent
	}
	d.lineageMu.Unlock()
	if g != newest {
		return 0, nil, false
	}
	if 2*len(union) >= snap.st.Disk().NumPages() {
		return 0, nil, false
	}
	dirty = make([]pager.PageID, 0, len(union))
	for id := range union {
		dirty = append(dirty, id)
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	return newest, dirty, true
}

// RecoverInfo describes what Recover found.
type RecoverInfo struct {
	// Gen is the generation the directory was restored to (0 when
	// Fresh).
	Gen int64
	// Skipped counts newer generations that failed verification and
	// were rolled past (and dropped from the store).
	Skipped int
	// Fresh reports an empty durable store: no generation existed, and
	// the caller should build the directory from its bootstrap source
	// and checkpoint it.
	Fresh bool
}

// Recover reconstructs a Directory from the newest intact generation
// in ds, walking the recovery ladder: generations are verified
// newest-first (envelope checksums in the durable store, then the full
// snapshot decode here), corrupt ones are counted, dropped, and rolled
// past. A delta generation is intact only if its whole base chain is —
// every payload down to a full image, decodable and replayable; damage
// anywhere in the chain fails that rung and recovery moves one
// generation down the ladder, which (by deltaPlan's retention gate)
// always reaches a full image. The restored Directory continues the
// durable lineage — its generation is the recovered one, so the next
// Update produces gen+1 and the next Checkpoint slots right after the
// recovered segment. Its update lineage starts empty, so the first
// checkpoint after recovery is always a self-contained full image.
//
// An empty store is not an error: the returned info has Fresh set and
// the Directory is nil — bootstrap, then Checkpoint. A store whose
// every generation is corrupt returns durable.ErrNoIntactGeneration;
// refusing to serve beats serving a torn state.
func Recover(ds *durable.Store, opts Options) (*Directory, RecoverInfo, error) {
	var info RecoverInfo
	gens := ds.Generations()
	if len(gens) == 0 {
		info.Fresh = true
		return nil, info, nil
	}
	for i := len(gens) - 1; i >= 0; i-- {
		gen := gens[i]
		dir, err := recoverGeneration(ds, opts, gen)
		if err != nil {
			// Checksum damage, a broken delta chain, or a semantically
			// undecodable payload — all just rungs on the ladder.
			info.Skipped++
			continue
		}
		if info.Skipped > 0 {
			// Drop the corrupt newer rungs so the write path resumes
			// cleanly from this lineage.
			if err := ds.Rollback(gen); err != nil {
				return nil, info, fmt.Errorf("core: pruning corrupt generations: %w", err)
			}
		}
		info.Gen = gen
		return dir, info, nil
	}
	return nil, info, fmt.Errorf("core: recover: %w", durable.ErrNoIntactGeneration)
}

// recoverGeneration materializes one generation. A full image decodes
// directly. A delta payload chases base-generation links (read from
// payload content, not the manifest, so a manifest rebuilt by the
// durable store's directory scan recovers identically) down to a full
// image, replays the page deltas oldest-first onto it, and assembles
// with the newest payload's schema and manifest. Any failure anywhere
// along the chain fails the whole rung.
func recoverGeneration(ds *durable.Store, opts Options, gen int64) (*Directory, error) {
	var deltas []*deltaParts // newest first
	cur := gen
	seen := make(map[int64]bool)
	for {
		if seen[cur] {
			return nil, fmt.Errorf("%w: delta base chain cycles at generation %d", ErrCorruptSnapshot, cur)
		}
		seen[cur] = true
		payload, err := ds.Load(cur)
		if err != nil {
			return nil, err
		}
		if bytes.HasPrefix(payload, snapshotDeltaMagic[:]) {
			dp, err := decodeDeltaSnapshot(payload)
			if err != nil {
				return nil, err
			}
			dp.gen = cur
			deltas = append(deltas, dp)
			cur = dp.baseGen
			continue
		}
		parts, err := decodeSnapshot(bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		for j := len(deltas) - 1; j >= 0; j-- {
			if err := parts.disk.ApplyDelta(deltas[j].pages); err != nil {
				return nil, fmt.Errorf("%w: page delta for generation %d: %v", ErrCorruptSnapshot, deltas[j].gen, err)
			}
		}
		if len(deltas) > 0 {
			// The image now holds the newest generation's pages; describe
			// it with the newest payload's metadata, not the base's.
			parts.schema = deltas[0].schema
			parts.manifest = deltas[0].manifest
		}
		return assembleSnapshot(parts, opts, gen)
	}
}
