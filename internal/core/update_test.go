package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/model"
)

func TestUpdateAddAndRemove(t *testing.T) {
	d := smallDirectory(t, Options{})
	n := d.Count()

	// Add a new subscriber policy dynamically (the paper: "subscriber
	// policies can be created and modified dynamically", Section 2.2).
	err := d.Update(func(in *model.Instance) error {
		e, err := model.NewEntryFromDN(in.Schema(),
			model.MustParseDN("QHPName=vacation, uid=jag, ou=userProfiles, dc=research, dc=att, dc=com"))
		if err != nil {
			return err
		}
		e.AddClass("QHP").Add("priority", model.Int(3))
		return in.Add(e)
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() != n+1 {
		t.Fatalf("count = %d, want %d", d.Count(), n+1)
	}
	res, err := d.Search("(dc=com ? sub ? QHPName=vacation)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("new entry invisible: %v", res.DNs())
	}

	// Remove it again.
	err = d.Update(func(in *model.Instance) error {
		if !in.Remove(model.MustParseDN("QHPName=vacation, uid=jag, ou=userProfiles, dc=research, dc=att, dc=com")) {
			return errors.New("missing")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err = d.Search("(dc=com ? sub ? QHPName=vacation)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 0 {
		t.Fatal("removed entry still visible")
	}
}

func TestUpdateErrorSkipsRebuild(t *testing.T) {
	d := smallDirectory(t, Options{})
	boom := errors.New("boom")
	if err := d.Update(func(*model.Instance) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Directory still queryable.
	if _, err := d.Search("(dc=com ? sub ? objectClass=*)"); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeOptionPreservesAnswers(t *testing.T) {
	plain := smallDirectory(t, Options{})
	opt := smallDirectory(t, Options{Optimize: true})
	queries := []string{
		`(& (ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=QHP)
		    (dc=com ? sub ? priority<=2))`,
		`(ac (dc=com ? sub ? objectClass=QHP) (dc=com ? sub ? objectClass=TOPSSubscriber)
		     ( ? sub ? objectClass=*))`,
		`(- (dc=com ? sub ? objectClass=*) (dc=com ? sub ? objectClass=*))`,
	}
	for _, qs := range queries {
		a, err := plain.Search(qs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := opt.Search(qs)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a.DNs()) != fmt.Sprint(b.DNs()) {
			t.Errorf("%s: optimizer changed answers\nplain %v\nopt   %v", qs, a.DNs(), b.DNs())
		}
	}
}

func TestStrictnessRecomputedOnUpdate(t *testing.T) {
	d := smallDirectory(t, Options{Optimize: true})
	// Make the forest lenient by orphaning a subtree root's parent.
	err := d.Update(func(in *model.Instance) error {
		if !in.Remove(model.MustParseDN("ou=userProfiles, dc=research, dc=att, dc=com")) {
			return errors.New("missing ou")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// uid=jag is now an orphan: its nearest present ancestor is
	// dc=research. The ac query must still be answered per ac semantics
	// (the planner must NOT collapse it to p on a lenient forest).
	res, err := d.Search(`(ac (dc=com ? sub ? uid=jag) ( ? sub ? dc=research) ( ? sub ? objectClass=*))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("ac on lenient forest: %v", res.DNs())
	}
}
