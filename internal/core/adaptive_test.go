package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/filter"
	"repro/internal/model"
	"repro/internal/qstats"
	"repro/internal/query"
	"repro/internal/workload"
)

// randPlanQuery generates random L0–L2 trees over the random-forest
// vocabulary — the shapes the cost model makes choices on: atomics
// with several feasible access paths, commutative boolean chains it
// may reorder, hierarchy operators it prices through.
func randPlanQuery(r *rand.Rand, depth int) query.Query {
	if depth <= 0 || r.Intn(3) == 0 {
		return randPlanAtomic(r)
	}
	switch r.Intn(4) {
	case 0, 1:
		return &query.Bool{
			Op: query.BoolOp(r.Intn(3)),
			Q1: randPlanQuery(r, depth-1),
			Q2: randPlanQuery(r, depth-1),
		}
	case 2:
		op := query.HierOp(r.Intn(4)) // p, c, a, d — the binary operators
		return &query.Hier{Op: op, Q1: randPlanQuery(r, depth-1), Q2: randPlanQuery(r, depth-1)}
	default:
		return randPlanAtomic(r)
	}
}

func randPlanAtomic(r *rand.Rand) *query.Atomic {
	bases := []string{"", "n=e0", "n=e1, n=e0"}
	scopes := []query.Scope{query.ScopeBase, query.ScopeOne, query.ScopeSub, query.ScopeSub}
	atoms := []func() *filter.Atom{
		func() *filter.Atom { return filter.Eq("tag", string(rune('a'+r.Intn(3)))) },
		func() *filter.Atom { return filter.Present("val") },
		func() *filter.Atom { return filter.NewAtom("val", filter.OpLT, fmt.Sprint(r.Intn(8))) },
		func() *filter.Atom { return filter.NewAtom("val", filter.OpGE, fmt.Sprint(r.Intn(8))) },
		func() *filter.Atom { return filter.Eq("n", fmt.Sprintf("e%d*", r.Intn(3))) },
		func() *filter.Atom { return filter.Present("objectclass") },
	}
	return &query.Atomic{
		Base:   model.MustParseDN(bases[r.Intn(len(bases))]),
		Scope:  scopes[r.Intn(len(scopes))],
		Filter: atoms[r.Intn(len(atoms))](),
	}
}

// TestAdaptivePlannerOracle is the tentpole acceptance check: on
// randomized query trees, every plan the cost-based planner chooses —
// cold (empty statistics), warm (calibrated from the traced runs the
// loop itself performs), serial or with a worker pool — evaluates
// byte-identically to the naive engine with no planner at all. The
// cost model may only ever move I/O, never the answer.
func TestAdaptivePlannerOracle(t *testing.T) {
	in := workload.RandomForest(workload.ForestConfig{N: 500, Seed: 23})
	naive, err := Open(in, Options{Engine: engine.Config{Naive: true}})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Open(in, Options{Adaptive: true, Engine: engine.Config{Workers: 3}})
	if err != nil {
		t.Fatal(err)
	}
	qs := qstats.New()
	adaptive.SetQueryStats(qs)

	dns := func(d *Directory, q query.Query) []string {
		res, err := d.SearchQuery(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return (&Result{Entries: res.Entries}).DNs()
	}
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 80; i++ {
		q := randPlanQuery(r, 3)
		if query.Validate(naive.Schema(), q) != nil {
			continue
		}
		want := dns(naive, q)
		if got := dns(adaptive, q); strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("cold adaptive plan diverges on %s:\n got %d entries\nwant %d entries", q, len(got), len(want))
		}
		// Calibrate: the traced run folds this query's observed profile
		// into qs, so the replan below prices with live statistics.
		if _, _, err := adaptive.SearchQueryTraced(context.Background(), q); err != nil {
			t.Fatalf("traced %s: %v", q, err)
		}
		if got := dns(adaptive, q); strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("warm adaptive plan diverges on %s:\n got %d entries\nwant %d entries", q, len(got), len(want))
		}
	}
	if qs.Folded() == 0 {
		t.Fatal("no traces folded — the warm half of the oracle never ran calibrated")
	}
}

// TestAdaptiveExplainPrintsAlternatives: under Adaptive, EXPLAIN on a
// query whose atomic has competing access paths always reports the
// losing candidate with its estimate.
func TestAdaptiveExplainPrintsAlternatives(t *testing.T) {
	in := workload.RandomForest(workload.ForestConfig{N: 500, Seed: 23})
	dir, err := Open(in, Options{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := dir.ExplainQuery(`( ? sub ? tag=a)`)
	if err != nil {
		t.Fatal(err)
	}
	out := ex.String()
	if !strings.Contains(out, "alternatives (rejected") {
		t.Fatalf("EXPLAIN lacks the rejected-alternatives block:\n%s", out)
	}
	if !strings.Contains(out, "plan cost: est ") || !strings.Contains(out, "pages") {
		t.Fatalf("EXPLAIN lacks the costed root estimate:\n%s", out)
	}
	rej := ex.Alternatives
	found := false
	for _, a := range rej {
		if !a.Chosen && a.Est.Pages > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no costed rejected alternative recorded: %+v", rej)
	}
}
