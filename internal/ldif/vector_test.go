package ldif

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/model"
)

// vecSchema is a minimal schema with a dim-dimensional embedding
// attribute, mirroring what dirgen emits for vector workloads.
func vecSchema(dim int) *model.Schema {
	s := model.NewSchema()
	s.MustDefineAttr("dc", model.TypeString)
	s.MustDefineAttr("uid", model.TypeString)
	s.MustDefineAttr("emb", model.VectorType(dim))
	s.MustDefineClass("dcObject", "dc")
	s.MustDefineClass("device", "uid", "emb")
	return s
}

func vecEntry(t *testing.T, uid string, vecs ...[]float32) *model.Entry {
	t.Helper()
	e := model.NewEntry(model.MustParseDN(fmt.Sprintf("uid=%s, dc=com", uid)))
	e.AddClass("device")
	e.Add("uid", model.String(uid))
	for _, v := range vecs {
		e.Add("emb", model.VectorValue(v))
	}
	return e
}

func TestVectorRoundTrip(t *testing.T) {
	s := vecSchema(4)
	in := model.NewInstance(s)
	root := model.NewEntry(model.MustParseDN("dc=com"))
	root.AddClass("dcObject")
	root.Add("dc", model.String("com"))
	in.MustAdd(root)
	vectors := [][]float32{
		{0, 0, 0, 0},
		{1.5, -2.25, 3.125, -0.0078125},
		{float32(math.SmallestNonzeroFloat32), -float32(math.SmallestNonzeroFloat32), math.MaxFloat32, -math.MaxFloat32},
		{float32(math.Pi), float32(math.E), float32(math.Sqrt2), 1e-30},
	}
	for i, v := range vectors {
		in.MustAdd(vecEntry(t, fmt.Sprintf("u%d", i), v))
	}
	// A multi-valued vector attribute survives too.
	in.MustAdd(vecEntry(t, "multi", vectors[1], vectors[3]))

	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Vectors must travel base64-encoded, never textual.
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "emb:") && !strings.HasPrefix(line, "emb:: ") {
			t.Fatalf("vector emitted in textual form: %q", line)
		}
	}
	back, err := Read(bytes.NewReader(buf.Bytes()), nil) // self-describing: schema from #schema directives
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	if back.Len() != in.Len() {
		t.Fatalf("round trip lost entries: %d vs %d", back.Len(), in.Len())
	}
	for _, e := range in.Entries() {
		g, ok := back.Get(e.DN())
		if !ok {
			t.Fatalf("entry %s missing", e.DN())
		}
		want, got := e.Values("emb"), g.Values("emb")
		if len(want) != len(got) {
			t.Fatalf("%s: vector count %d vs %d", e.DN(), len(got), len(want))
		}
		for i := range want {
			wv, gv := want[i].Vec(), got[i].Vec()
			for j := range wv {
				if math.Float32bits(wv[j]) != math.Float32bits(gv[j]) {
					t.Errorf("%s: emb[%d][%d] = %x, want %x (not bit-identical)",
						e.DN(), i, j, math.Float32bits(gv[j]), math.Float32bits(wv[j]))
				}
			}
		}
	}
}

func TestVectorTextualForm(t *testing.T) {
	// Hand-written files may use the textual "[...]" form; it parses
	// through model.ParseValue.
	text := "dn: uid=x, dc=com\nuid: x\nemb: [1,2.5,-3,0.25]\nobjectClass: device\n"
	in, err := Read(strings.NewReader(text), vecSchema(4))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := in.Get(model.MustParseDN("uid=x, dc=com"))
	v, _ := e.First("emb")
	want := []float32{1, 2.5, -3, 0.25}
	for i, f := range v.Vec() {
		if f != want[i] {
			t.Fatalf("emb = %v, want %v", v.Vec(), want)
		}
	}
}

func TestVectorBinaryErrors(t *testing.T) {
	enc := func(b []byte) string { return base64.StdEncoding.EncodeToString(b) }
	nan := vectorBytes([]float32{1, 2, 3, float32(math.NaN())})
	cases := map[string]string{
		"short":     enc(make([]byte, 12)), // 3 floats for dim 4
		"long":      enc(make([]byte, 20)), // 5 floats for dim 4
		"unaligned": enc(make([]byte, 15)), // not a multiple of 4
		"nan":       enc(nan),              // non-finite component
		"inf":       enc(vectorBytes([]float32{0, 0, 0, float32(math.Inf(1))})),
	}
	for name, b64 := range cases {
		text := "dn: uid=x, dc=com\nuid: x\nemb:: " + b64 + "\nobjectClass: device\n"
		if _, err := Read(strings.NewReader(text), vecSchema(4)); err == nil {
			t.Errorf("%s: bad binary vector accepted", name)
		}
	}
}

func TestVectorMarshalEntryRoundTrip(t *testing.T) {
	s := vecSchema(3)
	e := vecEntry(t, "wire", []float32{-1.25, 1e-10, 42})
	block := MarshalEntry(e)
	if !strings.Contains(block, "emb:: ") {
		t.Fatalf("MarshalEntry did not base64 the vector:\n%s", block)
	}
	back, err := UnmarshalEntry(s, block)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(e) {
		t.Fatalf("wire round trip changed entry:\n%s", block)
	}
}

// FuzzVectorRoundTrip is the differential check: any finite float32
// vector must survive emit→parse bit-identically, and the binary and
// textual forms must agree.
func FuzzVectorRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 128, 63})                // [0, 1]
	f.Add([]byte{255, 255, 127, 127, 1, 0, 0, 0})           // [MaxFloat32, tiny denormal]
	f.Add(vectorBytes([]float32{float32(math.Pi), -1e-38})) // round numbers rarely stress formatting
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw)%4 != 0 || len(raw)/4 > 64 {
			t.Skip()
		}
		dim := len(raw) / 4
		vec := make([]float32, dim)
		for i := range vec {
			u := uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 | uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
			vec[i] = math.Float32frombits(u)
			if math.IsNaN(float64(vec[i])) || math.IsInf(float64(vec[i]), 0) {
				t.Skip() // rejected by construction; covered by TestVectorBinaryErrors
			}
		}
		s := vecSchema(dim)
		e := model.NewEntry(model.MustParseDN("uid=f, dc=com"))
		e.AddClass("device")
		e.Add("uid", model.String("f"))
		e.Add("emb", model.VectorValue(vec))

		// Binary wire form.
		back, err := UnmarshalEntry(s, MarshalEntry(e))
		if err != nil {
			t.Fatalf("binary round trip: %v", err)
		}
		bv, _ := back.First("emb")
		for i, f32 := range bv.Vec() {
			if math.Float32bits(f32) != math.Float32bits(vec[i]) {
				t.Fatalf("binary: component %d = %x, want %x", i, math.Float32bits(f32), math.Float32bits(vec[i]))
			}
		}
		// Textual form (model.FormatVector uses shortest round-tripping
		// decimals, so it is lossless too).
		tv, err := model.ParseValue(model.VectorType(dim), model.FormatVector(vec))
		if err != nil {
			t.Fatalf("textual round trip: %v", err)
		}
		for i, f32 := range tv.Vec() {
			if math.Float32bits(f32) != math.Float32bits(vec[i]) {
				t.Fatalf("textual: component %d = %x, want %x", i, math.Float32bits(f32), math.Float32bits(vec[i]))
			}
		}
	})
}
