// Package ldif reads and writes directory instances in an LDIF-like
// text format: one block per entry, a "dn:" line followed by one
// "attribute: value" line per (attribute, value) pair, blocks separated
// by blank lines. Lines starting with '#' are comments; a line starting
// with a single space continues the previous line (RFC 2849-style
// folding). Values that are not RFC 2849 SAFE-STRINGs (leading space,
// ':' or '<', trailing space, non-ASCII or control bytes) travel
// base64-encoded on "attribute:: <base64>" lines. Values are typed by
// the schema on load.
package ldif

import (
	"bufio"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/model"
)

// ErrFormat reports malformed LDIF input.
var ErrFormat = errors.New("ldif: format error")

// Write serializes the instance, entries in reverse-DN key order,
// preceded by a schema header (WriteSchema) so the file is
// self-describing: Read can load it without knowing the schema.
func Write(w io.Writer, in *model.Instance) error {
	bw := bufio.NewWriter(w)
	if err := WriteSchema(bw, in.Schema()); err != nil {
		return err
	}
	for i, e := range in.Entries() {
		if i > 0 {
			if _, err := bw.WriteString("\n"); err != nil {
				return err
			}
		}
		if err := writeAV(bw, "dn", e.DN().String()); err != nil {
			return err
		}
		for _, av := range e.Pairs() {
			if err := writeValue(bw, av.Attr, av.Value); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteSchema emits the schema as "#schema" comment directives:
//
//	#schema attribute <name> <type>
//	#schema class <name> <allowed-attr> ...
//
// Plain-comment readers skip them; Read reconstructs the schema.
func WriteSchema(w io.Writer, s *model.Schema) error {
	for _, a := range s.Attrs() {
		if a == model.ObjectClass {
			continue // implicit in every schema
		}
		t, _ := s.AttrType(a)
		if _, err := fmt.Fprintf(w, "#schema attribute %s %s\n", a, t); err != nil {
			return err
		}
	}
	for _, c := range s.Classes() {
		if _, err := fmt.Fprintf(w, "#schema class %s %s\n", c, strings.Join(s.AllowedAttrs(c), " ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Read parses an instance. If schema is nil, the file must carry
// #schema directives (as emitted by Write); otherwise directives refine
// the given schema. Entries may appear in any order; they are validated
// and key-sorted on insertion.
func Read(r io.Reader, schema *model.Schema) (*model.Instance, error) {
	if schema == nil {
		schema = model.NewSchema()
	}
	var in *model.Instance
	instance := func() *model.Instance {
		if in == nil {
			in = model.NewInstance(schema)
		}
		return in
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var lines []string
	lineNo, blockStart := 0, 0
	flush := func() error {
		if len(lines) == 0 {
			return nil
		}
		e, err := parseEntry(schema, lines)
		if err != nil {
			return fmt.Errorf("%w (block at line %d): %v", ErrFormat, blockStart, err)
		}
		lines = lines[:0]
		return instance().Add(e)
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "#schema "):
			if in != nil {
				return nil, fmt.Errorf("%w: line %d: #schema after entries", ErrFormat, lineNo)
			}
			if err := parseSchemaDirective(schema, strings.TrimPrefix(line, "#schema ")); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, lineNo, err)
			}
		case strings.HasPrefix(line, "#"):
			continue
		case strings.TrimSpace(line) == "":
			if err := flush(); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, " "):
			if len(lines) == 0 {
				return nil, fmt.Errorf("%w: line %d: continuation without a line to continue", ErrFormat, lineNo)
			}
			lines[len(lines)-1] += line[1:]
		default:
			if len(lines) == 0 {
				blockStart = lineNo
			}
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return instance(), nil
}

func parseSchemaDirective(s *model.Schema, text string) error {
	fields := strings.Fields(text)
	if len(fields) < 2 {
		return fmt.Errorf("bad #schema directive %q", text)
	}
	switch fields[0] {
	case "attribute":
		if len(fields) != 3 {
			return fmt.Errorf("#schema attribute needs name and type: %q", text)
		}
		return s.DefineAttr(fields[1], model.TypeName(fields[2]))
	case "class":
		return s.DefineClass(fields[1], fields[2:]...)
	default:
		return fmt.Errorf("unknown #schema directive %q", fields[0])
	}
}

// MarshalSchema renders a schema as its #schema directives.
func MarshalSchema(s *model.Schema) string {
	var b strings.Builder
	if err := WriteSchema(&b, s); err != nil {
		return ""
	}
	return b.String()
}

// UnmarshalSchema reconstructs a schema from #schema directives.
func UnmarshalSchema(text string) (*model.Schema, error) {
	s := model.NewSchema()
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || !strings.HasPrefix(line, "#schema ") {
			continue
		}
		if err := parseSchemaDirective(s, strings.TrimPrefix(line, "#schema ")); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, i+1, err)
		}
	}
	return s, nil
}

// MarshalEntry renders one entry as an LDIF block (no trailing blank
// line) — the wire format of the distributed directory protocol.
func MarshalEntry(e *model.Entry) string {
	var b strings.Builder
	writeAV(&b, "dn", e.DN().String())
	for _, av := range e.Pairs() {
		writeValue(&b, av.Attr, av.Value)
	}
	return b.String()
}

// UnmarshalEntry parses one LDIF block into an entry, typing values per
// the schema. The entry is not instance-validated; callers add it to an
// instance (which validates) or use it directly.
func UnmarshalEntry(schema *model.Schema, block string) (*model.Entry, error) {
	var lines []string
	for _, line := range strings.Split(block, "\n") {
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, " ") && len(lines) > 0 {
			lines[len(lines)-1] += line[1:]
			continue
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("%w: empty entry block", ErrFormat)
	}
	return parseEntry(schema, lines)
}

func parseEntry(schema *model.Schema, lines []string) (*model.Entry, error) {
	attr, val, _, err := splitLine(lines[0])
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(attr, "dn") {
		return nil, fmt.Errorf("block must start with dn:, got %q", attr)
	}
	dn, err := model.ParseDN(val)
	if err != nil {
		return nil, err
	}
	e := model.NewEntry(dn)
	for _, line := range lines[1:] {
		attr, val, wasB64, err := splitLine(line)
		if err != nil {
			return nil, err
		}
		t, ok := schema.AttrType(attr)
		if !ok {
			return nil, fmt.Errorf("unknown attribute %q", attr)
		}
		var v model.Value
		if dim, isVec := model.VectorDim(t); isVec && wasB64 {
			// Base64-carried vectors are the binary form; the textual
			// "[...]" form (hand-written files) goes through ParseValue.
			if v, err = parseVectorBytes(val, dim); err != nil {
				return nil, err
			}
		} else if v, err = model.ParseValue(t, val); err != nil {
			return nil, err
		}
		if model.NormalizeAttr(attr) == model.ObjectClass {
			e.AddClass(v.Str())
			continue
		}
		e.Add(attr, v)
	}
	return e, nil
}

// writeValue emits one attribute-value line. Vector values travel as
// "attr:: <base64>" over their binary form — little-endian IEEE 754
// float32s, 4 bytes per component (RFC 2849 carries arbitrary octet
// strings this way). Everything else uses the textual writeAV form.
func writeValue(w io.Writer, attr string, v model.Value) error {
	if v.Kind() == model.KindVector {
		_, err := fmt.Fprintf(w, "%s:: %s\n", attr, base64.StdEncoding.EncodeToString(vectorBytes(v.Vec())))
		return err
	}
	return writeAV(w, attr, v.String())
}

// vectorBytes serializes a vector as little-endian float32s — the same
// byte order internal/plist uses on disk.
func vectorBytes(vec []float32) []byte {
	b := make([]byte, 0, 4*len(vec))
	for _, f := range vec {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(f))
	}
	return b
}

// parseVectorBytes is the inverse of vectorBytes, validating the length
// against the schema dimension and rejecting non-finite components
// (mirroring model.ParseVector).
func parseVectorBytes(raw string, dim int) (model.Value, error) {
	if len(raw) != 4*dim {
		return model.Value{}, fmt.Errorf("vector value has %d bytes, want %d (dimension %d)", len(raw), 4*dim, dim)
	}
	vec := make([]float32, dim)
	for i := range vec {
		f := math.Float32frombits(binary.LittleEndian.Uint32([]byte(raw[4*i:])))
		if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) {
			return model.Value{}, fmt.Errorf("vector component %d is not finite", i)
		}
		vec[i] = f
	}
	return model.VectorValue(vec), nil
}

// writeAV emits one "attr: value" line, switching to the RFC 2849
// base64 form ("attr:: <base64>") when the value is not a SAFE-STRING —
// our line-oriented reader would otherwise mangle it.
func writeAV(w io.Writer, attr, val string) error {
	if needsBase64(val) {
		_, err := fmt.Fprintf(w, "%s:: %s\n", attr, base64.StdEncoding.EncodeToString([]byte(val)))
		return err
	}
	_, err := fmt.Fprintf(w, "%s: %s\n", attr, val)
	return err
}

// needsBase64 reports whether val falls outside RFC 2849's SAFE-STRING
// grammar: it may not start with space, ':' or '<', may not end with
// space (our parser trims), and may not contain NUL, CR, LF or bytes
// outside ASCII.
func needsBase64(val string) bool {
	if val == "" {
		return false
	}
	switch val[0] {
	case ' ', ':', '<':
		return true
	}
	if val[len(val)-1] == ' ' {
		return true
	}
	for i := 0; i < len(val); i++ {
		switch c := val[i]; {
		case c == 0, c == '\r', c == '\n', c >= 0x80:
			return true
		}
	}
	return false
}

// splitLine splits "attr: value" or the base64 form "attr:: <base64>"
// (decoded here, per RFC 2849). A double colon is what distinguishes an
// encoded value from a plain value that merely starts with ':'. wasB64
// reports which form the line used — callers that expect binary values
// (vectors) only accept them from the encoded form.
func splitLine(line string) (attr, val string, wasB64 bool, err error) {
	i := strings.Index(line, ":")
	if i <= 0 {
		return "", "", false, fmt.Errorf("line %q lacks a colon", line)
	}
	attr = strings.TrimSpace(line[:i])
	rest := line[i+1:]
	if strings.HasPrefix(rest, ":") {
		raw, err := base64.StdEncoding.DecodeString(strings.TrimSpace(rest[1:]))
		if err != nil {
			return "", "", false, fmt.Errorf("line %q: bad base64 value: %v", line, err)
		}
		return attr, string(raw), true, nil
	}
	return attr, strings.TrimSpace(rest), false, nil
}
