package ldif

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/model"
)

const sample = `# The TOPS fragment of Figure 11.
dn: dc=com
dc: com
objectClass: dcObject

dn: dc=research, dc=com
dc: research
objectClass: dcObject

dn: uid=jag, dc=research, dc=com
uid: jag
commonName: h jagadish
surName: jagadish
objectClass: inetOrgPerson
objectClass: TOPSSubscriber

dn: QHPName=weekend, uid=jag, dc=research, dc=com
QHPName: weekend
daysOfWeek: 6
daysOfWeek: 7
priority: 1
objectClass: QHP
`

func TestReadSample(t *testing.T) {
	in, err := Read(strings.NewReader(sample), model.DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if in.Len() != 4 {
		t.Fatalf("entries = %d", in.Len())
	}
	e, ok := in.Get(model.MustParseDN("uid=jag, dc=research, dc=com"))
	if !ok {
		t.Fatal("jag missing")
	}
	if !e.HasClass("TOPSSubscriber") || !e.HasClass("inetOrgPerson") {
		t.Error("classes lost")
	}
	q, ok := in.Get(model.MustParseDN("QHPName=weekend, uid=jag, dc=research, dc=com"))
	if !ok {
		t.Fatal("QHP missing")
	}
	days := q.Values("daysOfWeek")
	if len(days) != 2 || days[0].Int() != 6 || days[1].Int() != 7 {
		t.Errorf("daysOfWeek = %v", days)
	}
	pr, _ := q.First("priority")
	if pr.Kind() != model.KindInt || pr.Int() != 1 {
		t.Errorf("priority = %v", pr)
	}
}

func TestRoundTrip(t *testing.T) {
	s := model.DefaultSchema()
	in, err := Read(strings.NewReader(sample), s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, s)
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	if back.Len() != in.Len() {
		t.Fatalf("round trip lost entries: %d vs %d", back.Len(), in.Len())
	}
	for _, e := range in.Entries() {
		g, ok := back.Get(e.DN())
		if !ok || !g.Equal(e) {
			t.Errorf("entry %s changed", e.DN())
		}
	}
}

func TestContinuationLines(t *testing.T) {
	text := "dn: uid=jag, dc=com\nuid: jag\ncommonName: h jaga\n dish\nobjectClass: inetOrgPerson\n"
	in, err := Read(strings.NewReader(text), model.DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := in.Get(model.MustParseDN("uid=jag, dc=com"))
	cn, _ := e.First("commonName")
	if cn.Str() != "h jagadish" {
		t.Errorf("folded value = %q", cn.Str())
	}
}

func TestReadErrors(t *testing.T) {
	s := model.DefaultSchema()
	cases := []string{
		"uid: jag\n",                         // no dn first
		"dn: uid=jag, dc=com\nnosuch: 1\n",   // unknown attribute
		"dn: uid=jag, dc=com\nbroken line\n", // no colon
		" leading continuation\n",
		"dn: uid=jag, dc=com\npriority: notanint\nobjectClass: QHP\n",
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c), s); err == nil {
			t.Errorf("Read(%q): expected error", c)
		}
	}
	// Invalid entry (no class) surfaces the model error.
	_, err := Read(strings.NewReader("dn: uid=jag, dc=com\nuid: jag\n"), s)
	if !errors.Is(err, model.ErrInvalid) {
		t.Errorf("classless entry: %v", err)
	}
}

func TestSelfDescribingRoundTrip(t *testing.T) {
	// Write emits #schema directives; Read(nil) reconstructs the schema
	// and the instance without prior knowledge.
	s := model.DefaultSchema()
	in, err := Read(strings.NewReader(sample), s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#schema attribute priority int") {
		t.Fatalf("schema header missing:\n%s", buf.String()[:200])
	}
	back, err := Read(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != in.Len() {
		t.Fatalf("self-describing round trip lost entries: %d vs %d", back.Len(), in.Len())
	}
	q, _ := back.Get(model.MustParseDN("QHPName=weekend, uid=jag, dc=research, dc=com"))
	pr, _ := q.First("priority")
	if pr.Kind() != model.KindInt {
		t.Error("schema typing lost through self-describing round trip")
	}
}

func TestSchemaDirectiveErrors(t *testing.T) {
	cases := []string{
		"#schema attribute onlyname\n",
		"#schema frobnicate x y\n",
		"#schema class c undefinedattr\n",
		"dn: dc=com\ndc: com\nobjectClass: dcObject\n\n#schema attribute late string\n",
	}
	s := model.DefaultSchema()
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c), s); err == nil {
			t.Errorf("Read(%q): expected error", c)
		}
	}
}

func TestReadNilSchemaWithoutDirectives(t *testing.T) {
	// Without directives and without a schema, entries cannot validate.
	if _, err := Read(strings.NewReader("dn: dc=com\ndc: com\n"), nil); err == nil {
		t.Error("expected unknown-attribute error")
	}
	// But an empty input yields an empty instance.
	in, err := Read(strings.NewReader(""), nil)
	if err != nil || in.Len() != 0 {
		t.Errorf("empty input: %v %v", in, err)
	}
}

func TestMarshalUnmarshalEntry(t *testing.T) {
	s := model.DefaultSchema()
	e, err := model.NewEntryFromDN(s, model.MustParseDN("uid=jag, dc=com"))
	if err != nil {
		t.Fatal(err)
	}
	e.AddClass("TOPSSubscriber")
	e.Add("surName", model.String("jagadish"))
	block := MarshalEntry(e)
	if !strings.HasPrefix(block, "dn: uid=jag, dc=com\n") {
		t.Fatalf("block = %q", block)
	}
	back, err := UnmarshalEntry(s, block)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(e) {
		t.Fatalf("round trip changed entry:\n%s\nvs\n%s", back, e)
	}
	// Folded continuation inside a block.
	folded := "dn: uid=jag, dc=com\nsurName: jaga\n dish\nobjectClass: TOPSSubscriber\nuid: jag\n"
	back, err = UnmarshalEntry(s, folded)
	if err != nil {
		t.Fatal(err)
	}
	sn, _ := back.First("surName")
	if sn.Str() != "jagadish" {
		t.Errorf("folded = %q", sn.Str())
	}
	if _, err := UnmarshalEntry(s, ""); err == nil {
		t.Error("empty block accepted")
	}
	if _, err := UnmarshalEntry(s, "uid: x\n"); err == nil {
		t.Error("block without dn accepted")
	}
}

func TestCommentsAndBlankRuns(t *testing.T) {
	text := "# header\n\n\ndn: dc=com\ndc: com\nobjectClass: dcObject\n\n\n# trailing\n"
	in, err := Read(strings.NewReader(text), model.DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if in.Len() != 1 {
		t.Fatalf("entries = %d", in.Len())
	}
}

func TestBase64Values(t *testing.T) {
	unsafe := []string{
		":starts with colon",
		"<looks like a url ref",
		" leading space",
		"trailing space ",
		"café utf-8",
		"line\nbreak",
		"carriage\rreturn",
	}
	s := model.DefaultSchema()
	in := model.NewInstance(s)
	root, err := model.NewEntryFromDN(s, model.MustParseDN("dc=com"))
	if err != nil {
		t.Fatal(err)
	}
	root.AddClass("dcObject")
	if err := in.Add(root); err != nil {
		t.Fatal(err)
	}
	for i, v := range unsafe {
		e, err := model.NewEntryFromDN(s, model.MustParseDN(fmt.Sprintf("uid=u%d, dc=com", i)))
		if err != nil {
			t.Fatal(err)
		}
		e.AddClass("inetOrgPerson")
		e.Add("commonName", model.String(v))
		if err := in.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(buf.String()), "commonname:: ") {
		t.Fatalf("unsafe values not base64-encoded:\n%s", buf.String())
	}
	back, err := Read(bytes.NewReader(buf.Bytes()), s)
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	for i, v := range unsafe {
		e, ok := back.Get(model.MustParseDN(fmt.Sprintf("uid=u%d, dc=com", i)))
		if !ok {
			t.Fatalf("entry u%d missing", i)
		}
		cn, _ := e.First("commonName")
		if cn.Str() != v {
			t.Errorf("value %d: got %q, want %q", i, cn.Str(), v)
		}
	}
}

func TestBase64SplitLine(t *testing.T) {
	attr, val, wasB64, err := splitLine("commonName:: aGVsbG8sIHdvcmxk")
	if err != nil {
		t.Fatal(err)
	}
	if attr != "commonName" || val != "hello, world" || !wasB64 {
		t.Fatalf("got %q=%q wasB64=%v", attr, val, wasB64)
	}
	// A plain value that merely starts with ':' is NOT base64.
	attr, val, wasB64, err = splitLine("commonName: :colon start")
	if err != nil {
		t.Fatal(err)
	}
	if val != ":colon start" || wasB64 {
		t.Fatalf("plain value mangled: %q wasB64=%v", val, wasB64)
	}
	if _, _, _, err := splitLine("commonName:: !!!notb64"); err == nil {
		t.Fatal("bad base64 accepted")
	}
}

func TestBase64MarshalEntryRoundTrip(t *testing.T) {
	s := model.DefaultSchema()
	e, err := model.NewEntryFromDN(s, model.MustParseDN("uid=x, dc=com"))
	if err != nil {
		t.Fatal(err)
	}
	e.AddClass("inetOrgPerson")
	e.Add("commonName", model.String("héllo 世界"))
	block := MarshalEntry(e)
	back, err := UnmarshalEntry(s, block)
	if err != nil {
		t.Fatalf("%v\n%s", err, block)
	}
	if !back.Equal(e) {
		t.Fatalf("round trip changed entry:\n%s", block)
	}
}
