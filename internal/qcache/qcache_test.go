package qcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// charged mirrors the cache's per-entry accounting: the caller cost
// plus key bytes plus the fixed overhead.
func charged(key string, cost int64) int64 {
	return cost + int64(len(key)) + entryOverhead
}

func TestGetPutLRU(t *testing.T) {
	c := New(2 * charged("a", 40))
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", "A", 40)
	c.Put("b", "B", 40)
	if v, ok := c.Get("a"); !ok || v.(string) != "A" {
		t.Fatalf("a = %v, %v", v, ok)
	}
	// "a" is now most recently used; inserting "c" must evict "b".
	c.Put("c", "C", 40)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction out of LRU order")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a (recently used) was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 2*charged("a", 40) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestByteBudget(t *testing.T) {
	budget := 3 * charged("0", 30)
	c := New(budget)
	c.Put("big", "x", budget) // charged over budget: never stored
	if _, ok := c.Get("big"); ok {
		t.Fatal("over-budget value was stored")
	}
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprint(i), i, 30)
	}
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("budget exceeded: %d bytes", st.Bytes)
	}
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
}

func TestPutUpdateAdjustsBytes(t *testing.T) {
	c := New(1 << 10)
	c.Put("k", "v1", 10)
	c.Put("k", "v2", 60)
	st := c.Stats()
	if st.Bytes != charged("k", 60) || st.Entries != 1 {
		t.Fatalf("stats after update = %+v", st)
	}
	if v, _ := c.Get("k"); v.(string) != "v2" {
		t.Fatalf("k = %v", v)
	}
}

// TestTinyValuesResidency pins the accounting fix: zero-cost values
// under long keys must still be bounded by the byte budget. Before the
// key and per-entry overhead were charged, every one of these inserts
// stayed resident while Stats reported zero bytes.
func TestTinyValuesResidency(t *testing.T) {
	const budget = 1 << 10
	c := New(budget)
	key := func(i int) string {
		return fmt.Sprintf("g42|( uid=u%04d, ou=userProfiles, dc=example ? base ? objectClass=*)", i)
	}
	for i := 0; i < 1000; i++ {
		c.Put(key(i), struct{}{}, 0)
	}
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("budget exceeded by tiny values: %+v", st)
	}
	maxResident := budget / charged(key(0), 0)
	if st.Entries == 0 || st.Entries > maxResident {
		t.Fatalf("entries = %d, want 1..%d (tiny values must not be free)", st.Entries, maxResident)
	}
}

func TestDoCachesAndDedupes(t *testing.T) {
	c := New(1 << 20)
	var computes atomic.Int64
	compute := func() (any, int64, error) {
		computes.Add(1)
		time.Sleep(20 * time.Millisecond) // widen the race window
		return "result", 6, nil
	}
	const workers = 16
	var wg sync.WaitGroup
	results := make([]any, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("key", compute)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1 (single-flight)", got)
	}
	for i, v := range results {
		if v.(string) != "result" {
			t.Fatalf("worker %d got %v", i, v)
		}
	}
	// A later Do is a plain cache hit.
	v, hit, err := c.Do("key", compute)
	if err != nil || !hit || v.(string) != "result" {
		t.Fatalf("Do after fill = %v, %v, %v", v, hit, err)
	}
	if computes.Load() != 1 {
		t.Fatal("cache hit recomputed")
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, hit, err := c.Do("k", func() (any, int64, error) {
			calls++
			return nil, 0, boom
		})
		if !errors.Is(err, boom) || hit {
			t.Fatalf("iter %d: hit=%v err=%v", i, hit, err)
		}
	}
	if calls != 3 {
		t.Fatalf("errors were cached: %d computes", calls)
	}
}

func TestClear(t *testing.T) {
	c := New(1 << 20)
	c.Put("a", 1, 5)
	c.Put("b", 2, 5)
	c.Clear()
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived Clear")
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after Clear = %+v", st)
	}
}

func TestHitRate(t *testing.T) {
	c := New(1 << 20)
	c.Put("a", 1, 5)
	c.Get("a")
	c.Get("a")
	c.Get("miss")
	if hr := c.Stats().HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate = %f, want 2/3", hr)
	}
}

// TestConcurrentMixedUse hammers every entry point from many
// goroutines; run under -race.
func TestConcurrentMixedUse(t *testing.T) {
	c := New(512)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprint((g + i) % 13)
				switch i % 4 {
				case 0:
					c.Put(key, i, int64(10+i%50))
				case 1:
					c.Get(key)
				case 2:
					_, _, _ = c.Do(key, func() (any, int64, error) { return i, 20, nil })
				default:
					if i%50 == 0 {
						c.Clear()
					}
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > 512 {
		t.Fatalf("budget violated under concurrency: %+v", st)
	}
}
