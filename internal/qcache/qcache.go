// Package qcache is a semantic query-result cache: a byte-budgeted LRU
// map from canonical query keys to materialized results, with
// single-flight deduplication so concurrent identical queries evaluate
// once, and atomic hit/miss/evict statistics.
//
// The cache itself is value-agnostic — it stores `any` plus a caller-
// supplied byte cost — and knows nothing about invalidation. Callers
// achieve generation-based invalidation by embedding a monotonic
// generation counter in the key (core.Directory's counter bumps on
// every Update and snapshot restore; the distributed coordinator uses
// the generation echoed in each server's wire reply): after a bump,
// every stale entry simply stops matching — invalidation is one
// integer compare, with no tracking of which entries changed — and the
// unreachable entries age out of the LRU under the byte budget.
//
// The paper's workloads (Section 2: provisioning, QoS, topology) are
// read-heavy and highly repetitive, which is what makes this the
// dominant win for skewed traffic; see DESIGN.md §7.
package qcache

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	Hits      int64 // lookups served from the cache
	Misses    int64 // lookups that fell through to evaluation
	Inflight  int64 // lookups that joined an in-progress evaluation
	Inserts   int64 // entries stored
	Evictions int64 // entries evicted to respect the byte budget
	Entries   int64 // resident entries
	Bytes     int64 // resident bytes: caller-reported costs plus per-entry key and overhead charges
	MaxBytes  int64 // configured budget
}

// HitRate returns hits / (hits + misses), counting in-flight joins as
// hits (no evaluation ran for them).
func (s Stats) HitRate() float64 {
	h := s.Hits + s.Inflight
	if h+s.Misses == 0 {
		return 0
	}
	return float64(h) / float64(h+s.Misses)
}

// entryOverhead approximates the fixed per-entry footprint the budget
// must cover beyond the caller-reported value cost: the entry struct,
// its list element, and the two map slots. Charging it — plus the key
// bytes — keeps the budget honest for tiny values; a flood of
// near-empty results under long keys previously occupied real memory
// the accounting never saw, so the cache held arbitrarily many entries
// while reporting itself within budget.
const entryOverhead = 64

type entry struct {
	key  string
	val  any
	cost int64 // charged cost: caller-reported bytes + key + entryOverhead
}

// call is one in-flight computation other callers can join.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is a byte-budgeted LRU with single-flight computation. The
// zero value is not usable; use New. All methods are safe for
// concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used; values are *entry
	items    map[string]*list.Element
	flight   map[string]*call

	hits, misses, inflight, inserts, evictions int64
}

// New creates a cache holding at most maxBytes of cached results
// (as measured by the costs callers report). maxBytes <= 0 yields a
// cache that stores nothing but still deduplicates in-flight work.
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		flight:   make(map[string]*call),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, true
	}
	c.misses++
	return nil, false
}

// Put stores val under key at the given byte cost, evicting least-
// recently-used entries until the budget holds. The budget charges
// cost plus the key bytes plus a fixed per-entry overhead; a value
// whose charged cost alone exceeds the budget is not stored.
func (c *Cache) Put(key string, val any, cost int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, val, cost)
}

func (c *Cache) put(key string, val any, cost int64) {
	cost += int64(len(key)) + entryOverhead
	if cost > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += cost - e.cost
		e.val, e.cost = val, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val, cost: cost})
		c.bytes += cost
		c.inserts++
	}
	for c.bytes > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		c.remove(el)
		c.evictions++
	}
}

func (c *Cache) remove(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.cost
}

// Do returns the cached value for key, or computes, stores, and
// returns it. Concurrent Do calls for the same key evaluate once: the
// first caller runs compute (which returns the value and its byte
// cost) while the rest block and share its result. hit reports whether
// the value came from the cache or an in-flight computation rather
// than this caller's own compute. Errors are returned to every waiter
// and never cached.
func (c *Cache) Do(key string, compute func() (any, int64, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if cl, ok := c.flight[key]; ok {
		c.inflight++
		c.mu.Unlock()
		<-cl.done
		return cl.val, true, cl.err
	}
	c.misses++
	cl := &call{done: make(chan struct{})}
	c.flight[key] = cl
	c.mu.Unlock()

	var cost int64
	cl.val, cost, cl.err = compute()

	c.mu.Lock()
	delete(c.flight, key)
	if cl.err == nil {
		c.put(key, cl.val, cost)
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.val, false, cl.err
}

// Clear drops every cached entry (in-flight computations are
// unaffected and will re-insert when they finish).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.bytes = 0
}

// Stats snapshots the cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Inflight:  c.inflight,
		Inserts:   c.inserts,
		Evictions: c.evictions,
		Entries:   int64(c.ll.Len()),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
	}
}
