package qcache

import "repro/internal/obs"

// RegisterMetrics exposes the cache's counters on reg as pull-based
// gauges under the given name prefix (e.g. "dirkit_dir_cache"). The
// cache keeps its own counters; the registry reads them at scrape
// time, so there is no double bookkeeping and no new write path.
func (c *Cache) RegisterMetrics(reg *obs.Registry, prefix string) {
	stat := func(pick func(Stats) int64) func() int64 {
		return func() int64 { return pick(c.Stats()) }
	}
	reg.GaugeFunc(prefix+"_hits", "cache lookups served from the cache", stat(func(s Stats) int64 { return s.Hits }))
	reg.GaugeFunc(prefix+"_misses", "cache lookups that fell through to evaluation", stat(func(s Stats) int64 { return s.Misses }))
	reg.GaugeFunc(prefix+"_inflight_joins", "lookups that joined an in-progress evaluation", stat(func(s Stats) int64 { return s.Inflight }))
	reg.GaugeFunc(prefix+"_inserts", "entries stored", stat(func(s Stats) int64 { return s.Inserts }))
	reg.GaugeFunc(prefix+"_evictions", "entries evicted to respect the byte budget", stat(func(s Stats) int64 { return s.Evictions }))
	reg.GaugeFunc(prefix+"_entries", "resident entries", stat(func(s Stats) int64 { return s.Entries }))
	reg.GaugeFunc(prefix+"_bytes", "resident bytes", stat(func(s Stats) int64 { return s.Bytes }))
	reg.GaugeFunc(prefix+"_max_bytes", "configured byte budget", stat(func(s Stats) int64 { return s.MaxBytes }))
}
