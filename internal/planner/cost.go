package planner

import (
	"fmt"
	"sort"

	"repro/internal/qstats"
	"repro/internal/query"
	"repro/internal/store"
)

// This file is the cost-based half of the planner: where planner.go
// rewrites query trees by algebraic identity (always-wins
// transformations), Plan additionally *chooses* among answer-equivalent
// alternatives — which access path serves each atomic, in which order
// commutative operands evaluate, and which subtrees are worth handing
// to the engine's worker pool — by pricing every candidate in estimated
// page reads. Estimates are seeded from the store catalog (B-tree
// selectivity counts, exact scope extents) and calibrated online from
// the observed profiles internal/qstats accumulates: once an atomic has
// been evaluated under tracing, its observed median page I/O and hit
// count replace the catalog's guess. Every candidate is exact, so the
// chosen plan is byte-identical to the naive evaluation no matter what
// the estimates say — the cost model can only ever waste pages, never
// change an answer (the oracle guarantee, pinned by the randomized
// differential tests).

// Catalog supplies per-atomic access-path enumeration and the layout
// constants the cost model converts cardinalities to pages with.
// *store.Store implements it.
type Catalog interface {
	// AccessPaths enumerates the feasible access paths for one atomic
	// with catalog cost estimates, index paths first.
	AccessPaths(q *query.Atomic) []store.PathCost
	// PageSize is the disk's page size in bytes.
	PageSize() int
	// AvgEntryBytes is the average master-record size in bytes.
	AvgEntryBytes() int64
}

// Feedback supplies observed statistics for calibration. *qstats.Store
// implements it (its methods are nil-safe, so a typed nil works as an
// always-cold feed); a nil interface disables calibration entirely and
// the planner runs on catalog estimates alone.
type Feedback interface {
	// ObservedFor returns the observed profile of one exact atomic,
	// keyed by its optimized printed text.
	ObservedFor(atomText string) (qstats.Observed, bool)
	// ClassProfile returns the aggregate profile of every atomic that
	// shared a scope depth and access-path class.
	ClassProfile(depth int, class string) (qstats.ClassProfile, bool)
}

// Env carries the cost model's inputs into Plan.
type Env struct {
	// Catalog prices access paths; required.
	Catalog Catalog
	// Stats is the observed-statistics feed; nil plans cold.
	Stats Feedback
	// Info carries the instance properties the algebraic rewrites rely
	// on (Plan runs Optimize first).
	Info Info
	// Workers is the engine's worker-pool width; offload hints are only
	// produced when it exceeds 1.
	Workers int
	// OffloadMinPages is the smallest estimated subtree cost worth a
	// pool goroutine (default 16 pages): below it the handoff overhead
	// dominates whatever parallelism buys.
	OffloadMinPages float64
}

// Estimate is the cost model's prediction for one plan node.
type Estimate struct {
	// Pages is the predicted page-read volume of evaluating the node's
	// subtree, intermediates included.
	Pages float64
	// Rows is the predicted output cardinality.
	Rows float64
	// Calibrated reports whether observed statistics (not just catalog
	// estimates) informed the prediction.
	Calibrated bool
}

// String renders the estimate the way EXPLAIN prints it.
func (e Estimate) String() string {
	s := fmt.Sprintf("est %.1f pages, %.0f rows", e.Pages, e.Rows)
	if e.Calibrated {
		s += " (calibrated)"
	}
	return s
}

// Alternative is one candidate the cost model priced: the chosen plan
// for a node or a rejected competitor, kept so EXPLAIN can show the
// road not taken next to its estimate and est-vs-obs drift stays
// visible.
type Alternative struct {
	// Node is the printed text of the query node the candidate applies
	// to.
	Node string
	// Plan names the candidate: an access path ("index", "scan", …) or
	// "operand order as written".
	Plan string
	// Est is the candidate's cost estimate.
	Est Estimate
	// Chosen reports whether this candidate won.
	Chosen bool
	// Why explains the decision in one clause.
	Why string
}

// Hints carries the planner's per-node decisions into the engine,
// keyed by node pointer within the exact tree Plan returned. The
// engine consults them during evaluation; nodes absent from the maps
// fall back to the store's own choices.
type Hints struct {
	// Path forces an access path per atomic (store.Path* constants).
	Path map[*query.Atomic]string
	// Offload marks subtrees whose estimated cost justifies a worker-
	// pool goroutine; when non-nil, the engine offloads only marked
	// operands instead of offloading opportunistically.
	Offload map[query.Query]bool
}

// CostResult is Plan's outcome: the chosen tree (rewritten, reordered,
// path-annotated), the root estimate, every priced candidate, and the
// evaluation hints for the engine.
type CostResult struct {
	Result
	// Root is the whole plan's cost estimate.
	Root Estimate
	// Alternatives lists every candidate priced, chosen and rejected.
	Alternatives []Alternative
	// Hints are the per-node decisions the engine evaluates under.
	Hints *Hints
}

// Rejected returns the alternatives that lost, in pricing order.
func (r *CostResult) Rejected() []Alternative {
	var out []Alternative
	for _, a := range r.Alternatives {
		if !a.Chosen {
			out = append(out, a)
		}
	}
	return out
}

// Plan runs the algebraic rewrites and then the cost model over q:
// it enumerates access paths per atomic, evaluation orders per
// commutative operator chain, and offload candidates per subtree,
// prices each in estimated pages (catalog-seeded, qstats-calibrated),
// and returns the cheapest answer-equivalent plan with the rejected
// candidates attached.
func Plan(q query.Query, env Env) *CostResult {
	if env.OffloadMinPages <= 0 {
		env.OffloadMinPages = 16
	}
	res := Optimize(q, env.Info)
	c := &coster{
		env:   env,
		hints: &Hints{Path: make(map[*query.Atomic]string)},
		est:   make(map[query.Query]Estimate),
	}
	planned, root := c.plan(res.Query)
	out := &CostResult{
		Result:       Result{Query: planned, Rules: append(res.Rules, c.rules...)},
		Root:         root,
		Alternatives: c.alts,
		Hints:        c.hints,
	}
	if env.Workers > 1 {
		out.Hints.Offload = make(map[query.Query]bool)
		c.markOffload(planned, out.Hints.Offload)
	}
	return out
}

// coster threads the pricing state through one Plan call.
type coster struct {
	env   Env
	hints *Hints
	est   map[query.Query]Estimate // subtree estimates, for offload marking
	alts  []Alternative
	rules []string
}

// listPages converts a cardinality into the fractional page volume of
// reading or writing it once as a record list.
func (c *coster) listPages(rows float64) float64 {
	ps := float64(c.env.Catalog.PageSize())
	if ps <= 0 {
		ps = 4096
	}
	return rows * float64(c.env.Catalog.AvgEntryBytes()) / ps
}

// plan prices one node, possibly rewriting it (operand reordering),
// and records its estimate for offload marking.
func (c *coster) plan(q query.Query) (query.Query, Estimate) {
	var out query.Query
	var est Estimate
	switch n := q.(type) {
	case *query.Atomic:
		out, est = n, c.planAtomic(n)
	case *query.Bool:
		out, est = c.planBool(n)
	case *query.Hier:
		h := &query.Hier{Op: n.Op, AggSel: n.AggSel}
		var e1, e2, e3 Estimate
		h.Q1, e1 = c.plan(n.Q1)
		h.Q2, e2 = c.plan(n.Q2)
		if n.Q3 != nil {
			h.Q3, e3 = c.plan(n.Q3)
		}
		rows := e1.Rows
		if n.Op == query.OpParents || n.Op == query.OpChildren {
			rows = min2(e1.Rows, e2.Rows)
		}
		// The stack algorithms are linear in their inputs (Theorem 5.1):
		// read every input list once, write the output once.
		pages := e1.Pages + e2.Pages + e3.Pages +
			c.listPages(e1.Rows) + c.listPages(e2.Rows) + c.listPages(e3.Rows) + c.listPages(rows)
		out, est = h, Estimate{Pages: pages, Rows: rows,
			Calibrated: e1.Calibrated || e2.Calibrated || e3.Calibrated}
	case *query.SimpleAgg:
		g := &query.SimpleAgg{AggSel: n.AggSel}
		var e1 Estimate
		g.Q, e1 = c.plan(n.Q)
		out, est = g, Estimate{Pages: e1.Pages + 2*c.listPages(e1.Rows), Rows: e1.Rows, Calibrated: e1.Calibrated}
	case *query.EmbedRef:
		r := &query.EmbedRef{Op: n.Op, Attr: n.Attr, AggSel: n.AggSel}
		var e1, e2 Estimate
		r.Q1, e1 = c.plan(n.Q1)
		r.Q2, e2 = c.plan(n.Q2)
		// Reference extraction spools and sorts the referencing side.
		pages := e1.Pages + e2.Pages + c.listPages(e1.Rows) + 3*c.listPages(e2.Rows) + c.listPages(e1.Rows)
		out, est = r, Estimate{Pages: pages, Rows: e1.Rows, Calibrated: e1.Calibrated || e2.Calibrated}
	default: // *query.LDAP and future nodes: no model, neutral estimate
		out, est = q, Estimate{Pages: 1, Rows: 1}
	}
	c.est[out] = est
	return out, est
}

// planAtomic prices every feasible access path for one atomic,
// calibrates against observed statistics, records the winner as a path
// hint, and files every candidate as an alternative.
func (c *coster) planAtomic(a *query.Atomic) Estimate {
	paths := c.env.Catalog.AccessPaths(a)
	if len(paths) == 0 {
		return Estimate{Pages: 1, Rows: 1}
	}
	text := a.String()
	depth := a.Base.Depth()
	var obs qstats.Observed
	hasObs := false
	if c.env.Stats != nil {
		obs, hasObs = c.env.Stats.ObservedFor(text)
		hasObs = hasObs && obs.N > 0
	}

	// Cardinality is path-independent: the exact observation wins, the
	// catalog estimate is next, and shapes the catalog cannot estimate
	// fall back to the (depth, class) median, then to a 10% guess over
	// the scope extent.
	rows := float64(paths[0].EstHits)
	rowsCal := false
	if hasObs {
		rows, rowsCal = obs.P50Hits, true
	} else if paths[0].EstHits < 0 {
		if cp, ok := c.classProfile(depth, paths[len(paths)-1].Path); ok {
			rows, rowsCal = cp.P50Out, true
		} else {
			rows = 0.1 * float64(scanOf(paths).EstBytes) / float64(c.env.Catalog.AvgEntryBytes())
		}
	}
	if rows < 0 {
		rows = 1
	}

	// The store's own static choice is the first minimal-EstBytes entry.
	storePick := 0
	for i := 1; i < len(paths); i++ {
		if paths[i].EstBytes < paths[storePick].EstBytes {
			storePick = i
		}
	}
	// Price each path: scan-family costs are exact extents from the
	// catalog; the index-family catalog heuristic is replaced by the
	// observed median once this atomic has run on that path. Selection
	// starts from the store's static pick and moves only on a strictly
	// cheaper estimate: an exact tie carries no information, and flipping
	// away from the static choice on one thrashes plans (and their
	// calibration classes) between equally-priced paths.
	ests := make([]Estimate, len(paths))
	for i, p := range paths {
		e := Estimate{Pages: float64(p.EstPages), Rows: rows, Calibrated: rowsCal}
		if hasObs && obs.Class == p.Path {
			e.Pages, e.Calibrated = obs.P50IO, true
		}
		ests[i] = e
	}
	best := storePick
	for i := range ests {
		if ests[i].Pages < ests[best].Pages {
			best = i
		}
	}
	chosen := paths[best].Path
	if a.Scope != query.ScopeBase {
		c.hints.Path[a] = chosen
	}
	if best != storePick {
		c.rules = append(c.rules, "cost-path:"+chosen)
	}
	for i, p := range paths {
		alt := Alternative{Node: text, Plan: p.Path, Est: ests[i], Chosen: i == best}
		if i != best {
			alt.Why = fmt.Sprintf("costlier than %s (%.1f pages)", chosen, ests[best].Pages)
		}
		c.alts = append(c.alts, alt)
	}
	return ests[best]
}

// classProfile consults the (depth, class) feed, nil-safely.
func (c *coster) classProfile(depth int, class string) (qstats.ClassProfile, bool) {
	if c.env.Stats == nil {
		return qstats.ClassProfile{}, false
	}
	return c.env.Stats.ClassProfile(depth, class)
}

// scanOf returns the scan-family entry of an AccessPaths slice (always
// present: every atomic can be scanned).
func scanOf(paths []store.PathCost) store.PathCost {
	for _, p := range paths {
		if p.Path == store.PathScan || p.Path == store.PathKNNScan || p.Path == store.PathBasePoint {
			return p
		}
	}
	return paths[len(paths)-1]
}

// planBool prices a boolean node. Commutative chains (runs of the same
// & or | operator) are flattened, their operands priced independently,
// and re-associated most-selective-first — answer-equivalent for set
// operators, cheaper because every intermediate list shrinks. The
// as-written order is kept as a rejected alternative when the order
// changed. Difference is not commutative and keeps its operand order.
func (c *coster) planBool(b *query.Bool) (query.Query, Estimate) {
	if b.Op == query.OpDiff {
		nb := &query.Bool{Op: b.Op}
		var e1, e2 Estimate
		nb.Q1, e1 = c.plan(b.Q1)
		nb.Q2, e2 = c.plan(b.Q2)
		return nb, c.mergeEst(b.Op, e1, e2)
	}
	ops := flattenBool(b.Op, b)
	planned := make([]query.Query, len(ops))
	ests := make([]Estimate, len(ops))
	for i, op := range ops {
		planned[i], ests[i] = c.plan(op)
	}
	order := make([]int, len(ops))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return ests[order[i]].Rows < ests[order[j]].Rows
	})
	reordered := false
	for i, o := range order {
		if o != i {
			reordered = true
			break
		}
	}
	build := func(ord []int) (query.Query, Estimate) {
		q, e := planned[ord[0]], ests[ord[0]]
		for _, i := range ord[1:] {
			q = &query.Bool{Op: b.Op, Q1: q, Q2: planned[i]}
			e = c.mergeEst(b.Op, e, ests[i])
			c.est[q] = e
		}
		return q, e
	}
	if !reordered {
		return build(order)
	}
	asWritten := make([]int, len(ops))
	for i := range asWritten {
		asWritten[i] = i
	}
	// Price the rejected as-written order without materializing it.
	wEst := ests[0]
	for _, i := range asWritten[1:] {
		wEst = c.mergeEst(b.Op, wEst, ests[i])
	}
	q, e := build(order)
	c.rules = append(c.rules, "cost-reorder")
	c.alts = append(c.alts,
		Alternative{Node: q.String(), Plan: "operand order chosen", Est: e, Chosen: true},
		Alternative{Node: b.String(), Plan: "operand order as written", Est: wEst,
			Why: fmt.Sprintf("larger intermediates than chosen order (%.1f pages)", e.Pages)})
	return q, e
}

// mergeEst prices one sort-merge set operation: read both inputs,
// write the output (Section 4.2 merges are linear).
func (c *coster) mergeEst(op query.BoolOp, e1, e2 Estimate) Estimate {
	var rows float64
	switch op {
	case query.OpAnd:
		rows = min2(e1.Rows, e2.Rows)
	case query.OpOr:
		rows = e1.Rows + e2.Rows
	default: // difference keeps at most its left operand
		rows = e1.Rows
	}
	return Estimate{
		Pages:      e1.Pages + e2.Pages + c.listPages(e1.Rows) + c.listPages(e2.Rows) + c.listPages(rows),
		Rows:       rows,
		Calibrated: e1.Calibrated || e2.Calibrated,
	}
}

// flattenBool gathers the operand run of one commutative operator:
// (& (& a b) c) yields [a b c]. Only same-op Bool nodes flatten;
// anything else is a leaf of the chain.
func flattenBool(op query.BoolOp, q query.Query) []query.Query {
	b, ok := q.(*query.Bool)
	if !ok || b.Op != op {
		return []query.Query{q}
	}
	return append(flattenBool(op, b.Q1), flattenBool(op, b.Q2)...)
}

// markOffload marks the operands worth a pool goroutine: any operand
// subtree of a multi-operand node whose estimated cost clears the
// threshold. The engine runs the first operand inline regardless, so
// marking it is harmless.
func (c *coster) markOffload(q query.Query, out map[query.Query]bool) {
	subs := q.Subqueries()
	if len(subs) >= 2 {
		for _, s := range subs {
			if c.est[s].Pages >= c.env.OffloadMinPages {
				out[s] = true
			}
		}
	}
	for _, s := range subs {
		c.markOffload(s, out)
	}
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
