// Package planner applies algebraic rewrites to L0–L3 query trees
// before evaluation. The paper's engine evaluates query trees bottom-up
// exactly as written (Section 8.2); these rewrites exploit the
// namespace structure the same way an administrator would when writing
// the query by hand:
//
//   - scope narrowing: an intersection of sub-scoped atomic queries is
//     confined to the deeper of the two bases (their subtrees nest or
//     are disjoint — DNs form a forest);
//   - disjointness: intersections of disjoint subtrees are empty, and
//     subtracting a disjoint subtree is a no-op;
//   - idempotence: (& Q Q) = (| Q Q) = Q, (- Q Q) = ∅;
//   - the Section 8.1 encoding run backwards: (ac Q1 Q2 all-entries)
//     is exactly (p Q1 Q2) on strict forests (every non-root entry's
//     parent present), and its whole-instance third operand is the
//     expensive part — Experiment E12 measures the gap.
//
// Rewrites preserve answers exactly; the planner tests verify this
// against the unoptimized engine on randomized instances.
package planner

import (
	"repro/internal/filter"
	"repro/internal/model"
	"repro/internal/query"
)

// Info describes instance properties a rewrite may rely on.
type Info struct {
	// StrictForest asserts every non-root entry's parent is present
	// (model.Instance.Validate(true)); enables the ac/dc collapse.
	StrictForest bool
}

// Result is an optimization outcome: the rewritten query and the names
// of the rules that fired, in application order.
type Result struct {
	Query query.Query
	Rules []string
}

// Optimize rewrites q to fixpoint.
func Optimize(q query.Query, info Info) Result {
	res := Result{Query: q}
	for i := 0; i < 10; i++ { // fixpoint with a safety bound
		before := res.Query.String()
		res.Query = rewrite(res.Query, info, &res.Rules)
		if res.Query.String() == before {
			break
		}
	}
	return res
}

func rewrite(q query.Query, info Info, rules *[]string) query.Query {
	switch n := q.(type) {
	case *query.Atomic, *query.LDAP:
		return q
	case *query.Bool:
		b := &query.Bool{Op: n.Op, Q1: rewrite(n.Q1, info, rules), Q2: rewrite(n.Q2, info, rules)}
		return rewriteBool(b, rules)
	case *query.Hier:
		h := &query.Hier{Op: n.Op, Q1: rewrite(n.Q1, info, rules), Q2: rewrite(n.Q2, info, rules), AggSel: n.AggSel}
		if n.Q3 != nil {
			h.Q3 = rewrite(n.Q3, info, rules)
		}
		return rewriteHier(h, info, rules)
	case *query.SimpleAgg:
		return &query.SimpleAgg{Q: rewrite(n.Q, info, rules), AggSel: n.AggSel}
	case *query.EmbedRef:
		return &query.EmbedRef{Op: n.Op, Q1: rewrite(n.Q1, info, rules), Q2: rewrite(n.Q2, info, rules),
			Attr: n.Attr, AggSel: n.AggSel}
	default:
		return q
	}
}

func rewriteBool(b *query.Bool, rules *[]string) query.Query {
	// Idempotence / contradiction on syntactically identical operands.
	if b.Q1.String() == b.Q2.String() {
		switch b.Op {
		case query.OpAnd, query.OpOr:
			*rules = append(*rules, "idempotent-"+b.Op.String())
			return b.Q1
		case query.OpDiff:
			*rules = append(*rules, "self-difference")
			return emptyLike(b.Q1)
		}
	}
	a1, ok1 := b.Q1.(*query.Atomic)
	a2, ok2 := b.Q2.(*query.Atomic)
	if !ok1 || !ok2 || a1.Scope != query.ScopeSub || a2.Scope != query.ScopeSub {
		return b
	}
	rel := relate(a1.Base, a2.Base)
	switch b.Op {
	case query.OpAnd:
		switch rel {
		case relDisjoint:
			*rules = append(*rules, "and-disjoint-empty")
			return emptyLike(b.Q1)
		case relFirstDeeper: // base1 under base2: narrow a2 to base1
			// Moving a knn filter to a deeper base would shrink its
			// candidate set and change its top-k answer — knn is a
			// property of the whole scoped set, not a per-entry
			// predicate, so it must stay at its declared scope.
			if a2.Filter.Op == filter.OpKNN {
				return b
			}
			*rules = append(*rules, "and-narrow-scope")
			return &query.Bool{Op: query.OpAnd, Q1: a1,
				Q2: &query.Atomic{Base: a1.Base, Scope: query.ScopeSub, Filter: a2.Filter}}
		case relSecondDeeper:
			if a1.Filter.Op == filter.OpKNN {
				return b
			}
			*rules = append(*rules, "and-narrow-scope")
			return &query.Bool{Op: query.OpAnd,
				Q1: &query.Atomic{Base: a2.Base, Scope: query.ScopeSub, Filter: a1.Filter},
				Q2: a2}
		}
	case query.OpDiff:
		if rel == relDisjoint {
			*rules = append(*rules, "diff-disjoint-noop")
			return a1
		}
	}
	return b
}

func rewriteHier(h *query.Hier, info Info, rules *[]string) query.Query {
	if !info.StrictForest || h.Q3 == nil {
		return h
	}
	// (ac Q1 Q2 ALL) = (p Q1 Q2) and (dc Q1 Q2 ALL) = (c Q1 Q2) on
	// strict forests: the whole instance blocks everything beyond the
	// immediate relative. Aggregate selections carry over unchanged —
	// the witness sets coincide.
	if !coversAllEntries(h.Q3) {
		return h
	}
	switch h.Op {
	case query.OpAncestorsC:
		*rules = append(*rules, "ac-all-to-p")
		return &query.Hier{Op: query.OpParents, Q1: h.Q1, Q2: h.Q2, AggSel: h.AggSel}
	case query.OpDescendantsC:
		*rules = append(*rules, "dc-all-to-c")
		return &query.Hier{Op: query.OpChildren, Q1: h.Q1, Q2: h.Q2, AggSel: h.AggSel}
	}
	return h
}

// coversAllEntries recognizes the Section 8.1 whole-instance operand:
// a null-dn sub query whose filter every entry satisfies (a presence
// test on objectClass, which Definition 3.2 makes universal).
func coversAllEntries(q query.Query) bool {
	a, ok := q.(*query.Atomic)
	if !ok {
		return false
	}
	return len(a.Base) == 0 && a.Scope == query.ScopeSub &&
		a.Filter.Op == filter.OpPresent && a.Filter.Attr == model.ObjectClass
}

type relation int

const (
	relDisjoint relation = iota
	relEqual
	relFirstDeeper  // base1 inside base2's subtree
	relSecondDeeper // base2 inside base1's subtree
)

func relate(b1, b2 model.DN) relation {
	switch {
	case b1.Equal(b2):
		return relEqual
	case b2.IsAncestorOf(b1) || len(b2) == 0:
		return relFirstDeeper
	case b1.IsAncestorOf(b2) || len(b1) == 0:
		return relSecondDeeper
	default:
		return relDisjoint
	}
}

// emptyLike builds a constant-empty query that costs O(1) pages: a
// base-scoped self-difference at q's shallowest base.
func emptyLike(q query.Query) query.Query {
	base := model.DN(nil)
	if a, ok := q.(*query.Atomic); ok {
		base = a.Base
	}
	probe := &query.Atomic{Base: base, Scope: query.ScopeBase, Filter: filter.Present(model.ObjectClass)}
	return &query.Bool{Op: query.OpDiff, Q1: probe, Q2: probe}
}
