package planner_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/workload"
)

func evalKeys(t *testing.T, dir *core.Directory, q query.Query) []string {
	t.Helper()
	res, err := dir.SearchQuery(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	keys := make([]string, len(res.Entries))
	for i, e := range res.Entries {
		keys[i] = e.Key()
	}
	return keys
}

// rewriteCases exercises each rule plus non-firing shapes.
var rewriteCases = []struct {
	q        string
	wantRule string // "" = no rewrite expected
}{
	{`(& (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
	     (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules))`, "idempotent-&"},
	{`(| (dc=com ? sub ? dc=*) (dc=com ? sub ? dc=*))`, "idempotent-|"},
	{`(- (dc=com ? sub ? dc=*) (dc=com ? sub ? dc=*))`, "self-difference"},
	{`(& (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
	     (dc=com ? sub ? SLARulePriority<=2))`, "and-narrow-scope"},
	{`(& (ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=QHP)
	     (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=QHP))`, "and-disjoint-empty"},
	{`(- (ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=*)
	     (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=*))`, "diff-disjoint-noop"},
	{`(ac (dc=com ? sub ? objectClass=trafficProfile)
	      (dc=com ? sub ? ou=networkPolicies)
	      ( ? sub ? objectClass=*))`, "ac-all-to-p"},
	{`(dc (dc=com ? sub ? objectClass=organizationalUnit)
	      (dc=com ? sub ? objectClass=QHP)
	      ( ? sub ? objectClass=*))`, "dc-all-to-c"},
	// Non-firing: overlapping but non-nested is impossible in a forest;
	// same-base & stays as-is; one-scoped atoms are left alone.
	{`(& (dc=com ? sub ? objectClass=QHP) (dc=com ? sub ? priority<=1))`, ""},
	{`(& (dc=com ? one ? dc=*) (dc=att, dc=com ? sub ? dc=*))`, ""},
	{`(ac (dc=com ? sub ? dc=*) (dc=com ? sub ? dc=*) (dc=com ? sub ? objectClass=*))`, ""},
}

func TestRewritesPreserveAnswers(t *testing.T) {
	in := workload.PaperInstance()
	if err := in.Validate(true); err != nil {
		t.Fatal(err)
	}
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rewriteCases {
		q := query.MustParse(c.q)
		res := planner.Optimize(q, planner.Info{StrictForest: true})
		if c.wantRule == "" {
			if len(res.Rules) != 0 {
				t.Errorf("%s: unexpected rules %v", c.q, res.Rules)
			}
		} else if !contains(res.Rules, c.wantRule) {
			t.Errorf("%s: rules %v, want %s", c.q, res.Rules, c.wantRule)
		}
		want := evalKeys(t, dir, q)
		got := evalKeys(t, dir, res.Query)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s:\nrewritten %s\n got %v\nwant %v", c.q, res.Query, got, want)
		}
	}
}

func TestAcCollapseRequiresStrictForest(t *testing.T) {
	// A lenient forest where the parent is missing: ac(all) and p
	// genuinely differ, so the rule must not fire without the guarantee.
	s := model.DefaultSchema()
	in := model.NewInstance(s)
	add := func(dn string) {
		e, err := model.NewEntryFromDN(s, model.MustParseDN(dn))
		if err != nil {
			t.Fatal(err)
		}
		e.AddClass("dcObject")
		in.MustAdd(e)
	}
	add("dc=com")
	add("dc=gone, dc=com")
	in.MustAdd(func() *model.Entry {
		e, _ := model.NewEntryFromDN(s, model.MustParseDN("dc=kid, dc=gone, dc=com"))
		return e.AddClass("dcObject")
	}())
	// Remove the middle entry: kid's parent is gone; dc=com is its
	// nearest present ancestor.
	if !in.Remove(model.MustParseDN("dc=gone, dc=com")) {
		t.Fatal("remove failed")
	}
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	acQ := query.MustParse(`(ac (dc=com ? sub ? dc=kid) ( ? sub ? dc=com) ( ? sub ? objectClass=*))`)
	pQ := query.MustParse(`(p (dc=com ? sub ? dc=kid) ( ? sub ? dc=com))`)
	acKeys := evalKeys(t, dir, acQ)
	pKeys := evalKeys(t, dir, pQ)
	if len(acKeys) != 1 || len(pKeys) != 0 {
		t.Fatalf("witness wrong: ac=%v p=%v", acKeys, pKeys)
	}
	// Without StrictForest the planner must leave ac alone.
	res := planner.Optimize(acQ, planner.Info{})
	if contains(res.Rules, "ac-all-to-p") {
		t.Fatal("ac collapse fired without strict-forest guarantee")
	}
	if fmt.Sprint(evalKeys(t, dir, res.Query)) != fmt.Sprint(acKeys) {
		t.Fatal("non-rewrite changed answers")
	}
}

func TestNarrowingReducesIO(t *testing.T) {
	in := workload.GenTOPS(workload.TOPSConfig{Subscribers: 300, Seed: 31})
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A tiny subtree intersected with a whole-directory scan.
	q := query.MustParse(`(& (uid=sub0000, ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=QHP)
	                         (dc=com ? sub ? priority<=2))`)
	res := planner.Optimize(q, planner.Info{StrictForest: true})
	if !contains(res.Rules, "and-narrow-scope") {
		t.Fatalf("rules = %v", res.Rules)
	}
	before := dir.Disk().Stats()
	plainKeys := evalKeys(t, dir, q)
	ioPlain := dir.Disk().Stats().Sub(before).IO()
	before = dir.Disk().Stats()
	optKeys := evalKeys(t, dir, res.Query)
	ioOpt := dir.Disk().Stats().Sub(before).IO()
	if fmt.Sprint(plainKeys) != fmt.Sprint(optKeys) {
		t.Fatal("narrowing changed answers")
	}
	if ioOpt*2 > ioPlain {
		t.Errorf("narrowing saved too little: %d -> %d I/Os", ioPlain, ioOpt)
	}
}

func TestFixpointTerminates(t *testing.T) {
	// Nested rewrite opportunities resolve in one Optimize call.
	q := query.MustParse(`(| (& (dc=com ? sub ? dc=*) (dc=com ? sub ? dc=*))
	                         (& (dc=com ? sub ? dc=*) (dc=com ? sub ? dc=*)))`)
	res := planner.Optimize(q, planner.Info{})
	if res.Query.String() != "(dc=com ? sub ? dc=*)" {
		t.Errorf("fixpoint = %s", res.Query)
	}
	if len(res.Rules) < 2 {
		t.Errorf("rules = %v", res.Rules)
	}
}

func TestOptimizePreservesRandomized(t *testing.T) {
	// Property: optimized == plain on randomized TOPS directories for a
	// pool of rewrite-heavy queries.
	for seed := int64(0); seed < 3; seed++ {
		in := workload.GenTOPS(workload.TOPSConfig{Subscribers: 40, Seed: 40 + seed})
		dir, err := core.Open(in, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pool := []string{
			`(& (ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=QHP) (dc=com ? sub ? priority>=2))`,
			`(- (dc=com ? sub ? objectClass=callAppearance) (dc=ibm, dc=com ? sub ? objectClass=*))`,
			`(dc (dc=com ? sub ? objectClass=TOPSSubscriber) (dc=com ? sub ? objectClass=QHP) ( ? sub ? objectClass=*) count($2) >= 2)`,
			`(c (& (dc=com ? sub ? objectClass=TOPSSubscriber) (dc=com ? sub ? objectClass=TOPSSubscriber)) (dc=com ? sub ? objectClass=QHP))`,
		}
		for _, qs := range pool {
			q := query.MustParse(qs)
			res := planner.Optimize(q, planner.Info{StrictForest: true})
			if fmt.Sprint(evalKeys(t, dir, q)) != fmt.Sprint(evalKeys(t, dir, res.Query)) {
				t.Errorf("seed %d: %s rewrote to %s with different answers", seed, qs, res.Query)
			}
		}
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if strings.HasPrefix(s, want) {
			return true
		}
	}
	return false
}
