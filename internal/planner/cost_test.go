package planner_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pager"
	"repro/internal/planner"
	"repro/internal/qstats"
	"repro/internal/query"
	"repro/internal/store"
)

// fakeCatalog serves hand-built access paths per atomic text, so the
// cost tests control the crossover point exactly.
type fakeCatalog struct {
	paths map[string][]store.PathCost
}

func (c fakeCatalog) AccessPaths(q *query.Atomic) []store.PathCost { return c.paths[q.String()] }
func (c fakeCatalog) PageSize() int                                { return 4096 }
func (c fakeCatalog) AvgEntryBytes() int64                         { return 64 }

// pathCost builds one candidate with EstPages derived the way the
// store derives it.
func pathCost(path string, pages, hits int64) store.PathCost {
	return store.PathCost{Path: path, EstBytes: pages * 4096, EstPages: pages, EstHits: hits}
}

func parseAtom(t *testing.T, text string) *query.Atomic {
	t.Helper()
	q, err := query.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := q.(*query.Atomic)
	if !ok {
		t.Fatalf("%s parsed to %T, want *query.Atomic", text, q)
	}
	return a
}

// foldAtomSpan seeds a qstats store with one synthetic traced atomic
// evaluation: the exact span shape the engine records (Op "atomic",
// Detail = atom text, path/depth/est tags, self I/O, output hits).
func foldAtomSpan(qs *qstats.Store, text, class string, depth int, hits, ioPages int64) {
	sp := &obs.Span{
		Op: "atomic", Detail: text, Out: hits,
		Dur: time.Millisecond, IO: pager.Stats{Reads: ioPages},
	}
	sp.Tag("path", class)
	sp.Tag("depth", strconv.Itoa(depth))
	sp.Tag("est", strconv.FormatInt(hits, 10))
	qs.Fold(sp)
}

// chosenPath returns the winning access path Plan recorded for atom.
func chosenPath(t *testing.T, res *planner.CostResult, atom string) string {
	t.Helper()
	for _, alt := range res.Alternatives {
		if alt.Node == atom && alt.Chosen && alt.Plan != "operand order chosen" {
			return alt.Plan
		}
	}
	t.Fatalf("no chosen alternative for %s in %+v", atom, res.Alternatives)
	return ""
}

// TestCostPathCrossover drives the index-versus-scan choice across its
// cost crossover: cold plans follow the catalog, and seeding qstats
// with observed page I/O on one path flips the choice exactly when the
// observation crosses the competitor's estimate.
func TestCostPathCrossover(t *testing.T) {
	const atom = `( ? sub ? tag=a)`
	cases := []struct {
		name                 string
		indexPages, scanHits int64 // catalog: index path pages; scan is fixed at 50
		obsClass             string
		obsIO                int64 // 0 = no observation (cold)
		want                 string
	}{
		{"cold-index-wins", 10, 500, "", 0, store.PathIndex},
		{"cold-scan-wins", 200, 500, "", 0, store.PathScan},
		{"warm-flips-to-index", 200, 500, store.PathIndex, 4, store.PathIndex},
		{"warm-flips-to-scan", 10, 500, store.PathIndex, 900, store.PathScan},
		{"warm-confirms-catalog", 10, 500, store.PathIndex, 8, store.PathIndex},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cat := fakeCatalog{paths: map[string][]store.PathCost{
				atom: {
					pathCost(store.PathIndex, tc.indexPages, tc.scanHits),
					pathCost(store.PathScan, 50, tc.scanHits),
				},
			}}
			var qs *qstats.Store
			if tc.obsIO > 0 {
				qs = qstats.New()
				// Fold twice so the median is the seeded value, not a
				// half-filled histogram artifact.
				foldAtomSpan(qs, atom, tc.obsClass, 0, tc.scanHits, tc.obsIO)
				foldAtomSpan(qs, atom, tc.obsClass, 0, tc.scanHits, tc.obsIO)
			}
			env := planner.Env{Catalog: cat}
			if qs != nil {
				env.Stats = qs
			}
			res := planner.Plan(query.MustParse(atom), env)
			if got := chosenPath(t, res, atom); got != tc.want {
				t.Fatalf("chose %s, want %s\nalternatives: %+v", got, tc.want, res.Alternatives)
			}
			a, ok := res.Query.(*query.Atomic)
			if !ok {
				t.Fatalf("planned query is %T", res.Query)
			}
			if got := res.Hints.Path[a]; got != tc.want {
				t.Fatalf("hint path = %q, want %q", got, tc.want)
			}
			// Two candidate paths must always yield one rejected
			// alternative with a stated reason.
			var rejected int
			for _, alt := range res.Alternatives {
				if !alt.Chosen {
					rejected++
					if alt.Why == "" {
						t.Fatalf("rejected alternative without a reason: %+v", alt)
					}
				}
			}
			if rejected != 1 {
				t.Fatalf("rejected %d alternatives, want 1: %+v", rejected, res.Alternatives)
			}
		})
	}
}

// TestCostPathExactTieKeepsStoreChoice pins the tie-break: when
// calibration prices two paths exactly equal, the planner must keep the
// store's static choice (first minimal-EstBytes path) instead of
// flipping to whichever path happens to be listed first. An exact tie
// carries no information, and a flip re-routes the query onto a path
// whose calibration class then drifts — the plan thrashes between
// equally-priced paths run over run.
func TestCostPathExactTieKeepsStoreChoice(t *testing.T) {
	// Seeded observations quantize to histogram bucket medians (12, 24,
	// 48, ...); the catalog values below sit on those medians so the
	// ties are exact.
	const atom = `( ? sub ? tag=a)`
	cases := []struct {
		name       string
		indexPages int64  // catalog pages for the index path; scan is fixed at 48
		obsClass   string // calibrated path
		obsIO      int64  // observed pages (quantizes to the bucket median)
		want       string
		wantRule   bool // the cost-path rule fires only when the static pick is overruled
	}{
		// Static pick is scan (catalog: 200 vs 48); observing the index
		// path at exactly 48 pages ties it — the tie must not flip.
		{"tie-keeps-static-scan", 200, store.PathIndex, 48, store.PathScan, false},
		// Static pick is index (catalog: 12 vs 48); observing the scan
		// path at exactly 12 pages ties it — same rule, other side.
		{"tie-keeps-static-index", 12, store.PathScan, 12, store.PathIndex, false},
		// A strictly cheaper observation still overrules the static pick.
		{"strictly-cheaper-still-flips", 200, store.PathIndex, 16, store.PathIndex, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cat := fakeCatalog{paths: map[string][]store.PathCost{
				atom: {
					pathCost(store.PathIndex, tc.indexPages, 100),
					pathCost(store.PathScan, 48, 100),
				},
			}}
			qs := qstats.New()
			foldAtomSpan(qs, atom, tc.obsClass, 0, 100, tc.obsIO)
			foldAtomSpan(qs, atom, tc.obsClass, 0, 100, tc.obsIO)
			res := planner.Plan(query.MustParse(atom), planner.Env{Catalog: cat, Stats: qs})
			if got := chosenPath(t, res, atom); got != tc.want {
				t.Fatalf("chose %s, want %s\nalternatives: %+v", got, tc.want, res.Alternatives)
			}
			gotRule := false
			for _, r := range res.Rules {
				if strings.HasPrefix(r, "cost-path:") {
					gotRule = true
				}
			}
			if gotRule != tc.wantRule {
				t.Fatalf("cost-path rule fired = %v, want %v (rules %v)", gotRule, tc.wantRule, res.Rules)
			}
		})
	}
}

// TestCostJoinOrderCrossover drives operand ordering across its
// crossover: the commutative chain is rebuilt most-selective-first
// using whichever cardinality evidence is best — catalog estimates
// cold, observed medians warm — and the as-written order is kept as a
// rejected alternative when the order changed.
func TestCostJoinOrderCrossover(t *testing.T) {
	const (
		big   = `( ? sub ? tag=a)`
		small = `( ? sub ? val=b)`
		qText = `(& ( ? sub ? tag=a) ( ? sub ? val=b))`
	)
	cases := []struct {
		name               string
		bigHits, smallHits int64 // catalog estimates
		warmBigHits        int64 // 0 = cold; else observed hits for big
		wantFirst          string
		wantReorder        bool
	}{
		{"cold-reorders-small-first", 1000, 5, 0, small, true},
		{"cold-keeps-as-written", 5, 1000, 0, big, false},
		{"warm-observation-reverses", 1000, 5, 1, big, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cat := fakeCatalog{paths: map[string][]store.PathCost{
				big:   {pathCost(store.PathScan, 50, tc.bigHits)},
				small: {pathCost(store.PathScan, 50, tc.smallHits)},
			}}
			env := planner.Env{Catalog: cat}
			if tc.warmBigHits > 0 {
				qs := qstats.New()
				foldAtomSpan(qs, big, store.PathScan, 0, tc.warmBigHits, 50)
				foldAtomSpan(qs, big, store.PathScan, 0, tc.warmBigHits, 50)
				env.Stats = qs
			}
			res := planner.Plan(query.MustParse(qText), env)
			b, ok := res.Query.(*query.Bool)
			if !ok || b.Op != query.OpAnd {
				t.Fatalf("planned query is %s", res.Query)
			}
			if got := b.Q1.String(); got != tc.wantFirst {
				t.Fatalf("first operand = %s, want %s", got, tc.wantFirst)
			}
			gotReorder := false
			for _, r := range res.Rules {
				if r == "cost-reorder" {
					gotReorder = true
				}
			}
			if gotReorder != tc.wantReorder {
				t.Fatalf("cost-reorder fired = %v, want %v (rules %v)", gotReorder, tc.wantReorder, res.Rules)
			}
			if tc.wantReorder {
				found := false
				for _, alt := range res.Alternatives {
					if strings.Contains(alt.Plan, "as written") && !alt.Chosen {
						found = true
					}
				}
				if !found {
					t.Fatalf("no rejected as-written alternative: %+v", res.Alternatives)
				}
			}
		})
	}
}

// TestCostOffloadMarking: with a worker pool configured, only operand
// subtrees whose estimated cost clears the threshold are marked for
// offload.
func TestCostOffloadMarking(t *testing.T) {
	const (
		heavy = `( ? sub ? tag=a)`
		light = `( ? sub ? val=b)`
	)
	cat := fakeCatalog{paths: map[string][]store.PathCost{
		heavy: {pathCost(store.PathScan, 500, 100)},
		light: {pathCost(store.PathScan, 1, 1)},
	}}
	res := planner.Plan(query.MustParse(`(| ( ? sub ? tag=a) ( ? sub ? val=b))`),
		planner.Env{Catalog: cat, Workers: 4, OffloadMinPages: 16})
	if res.Hints.Offload == nil {
		t.Fatal("Workers > 1 must produce an offload map")
	}
	b := res.Query.(*query.Bool)
	// Ordering puts light first; the heavy operand must be marked, the
	// light one must not.
	var marked, unmarked query.Query
	for _, sub := range b.Subqueries() {
		if sub.String() == heavy {
			marked = sub
		} else {
			unmarked = sub
		}
	}
	if !res.Hints.Offload[marked] {
		t.Fatalf("heavy operand not marked for offload: %+v", res.Hints.Offload)
	}
	if res.Hints.Offload[unmarked] {
		t.Fatalf("light operand wrongly marked for offload: %+v", res.Hints.Offload)
	}
	// Serial engines get no offload map at all.
	serial := planner.Plan(query.MustParse(`(| ( ? sub ? tag=a) ( ? sub ? val=b))`),
		planner.Env{Catalog: cat})
	if serial.Hints.Offload != nil {
		t.Fatal("Workers <= 1 must not produce an offload map")
	}
}

// TestPlanConcurrentWithFold exercises planning against a qstats store
// that other goroutines are folding into — the serving topology, where
// traced queries calibrate the same store the planner reads. Run under
// -race this pins the concurrency safety of the feedback path.
func TestPlanConcurrentWithFold(t *testing.T) {
	const atom = `( ? sub ? tag=a)`
	cat := fakeCatalog{paths: map[string][]store.PathCost{
		atom: {
			pathCost(store.PathIndex, 10, 100),
			pathCost(store.PathScan, 50, 100),
		},
	}}
	qs := qstats.New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				foldAtomSpan(qs, atom, store.PathIndex, 0, 100, int64(1+i%20))
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				res := planner.Plan(query.MustParse(atom), planner.Env{Catalog: cat, Stats: qs})
				if len(res.Alternatives) != 2 {
					t.Errorf("planned %d alternatives, want 2", len(res.Alternatives))
					return
				}
			}
		}()
	}
	wg.Wait()
}
