package model

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// TypeName identifies an attribute type in the set T of the schema.
// The model requires at least string, int, and distinguishedName
// (Section 3.1); additional names may be registered by applications.
type TypeName string

// The basic types assumed by the paper.
const (
	TypeString TypeName = "string"
	TypeInt    TypeName = "int"
	TypeDN     TypeName = "distinguishedName"
)

// VectorType names the parameterized embedding type of dimension dim,
// e.g. VectorType(8) == "vector(8)". Vector attributes hold
// fixed-dimension float32 embeddings; the schema's typing function ψ
// enforces the dimension on every value.
func VectorType(dim int) TypeName {
	return TypeName("vector(" + strconv.Itoa(dim) + ")")
}

// VectorDim reports the dimension of a vector type name, or false if t
// is not a well-formed vector type. Well-formed means "vector(N)" with
// N a positive decimal integer (bounded at MaxVectorDim).
func VectorDim(t TypeName) (int, bool) {
	s := string(t)
	if !strings.HasPrefix(s, "vector(") || !strings.HasSuffix(s, ")") {
		return 0, false
	}
	inner := s[len("vector(") : len(s)-1]
	n, err := strconv.Atoi(inner)
	if err != nil || n <= 0 || n > MaxVectorDim || strconv.Itoa(n) != inner {
		return 0, false
	}
	return n, true
}

// MaxVectorDim bounds the dimension a vector type may declare. It keeps
// hostile schema text (fuzzers, wire input) from demanding absurd
// per-value allocations; real embedding models sit far below it.
const MaxVectorDim = 4096

// Kind discriminates the runtime representation of a Value.
type Kind uint8

// Value kinds. KindInvalid is the zero value and never appears in a
// well-formed entry.
const (
	KindInvalid Kind = iota
	KindString
	KindInt
	KindDN
	KindVector
)

func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindDN:
		return "dn"
	case KindVector:
		return "vector"
	default:
		return "invalid"
	}
}

// TypeKind maps a schema type name to the runtime kind that carries its
// values. Unknown (application-registered) types are carried as strings.
func TypeKind(t TypeName) Kind {
	switch t {
	case TypeInt:
		return KindInt
	case TypeDN:
		return KindDN
	default:
		if _, ok := VectorDim(t); ok {
			return KindVector
		}
		return KindString
	}
}

// Value is a single attribute value: a tagged union over the domains of
// the basic types. The zero Value is invalid.
type Value struct {
	kind Kind
	s    string
	i    int64
	dn   DN
	vec  []float32
}

// String constructs a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int constructs an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// DNValue constructs a distinguished-name value (an entry reference).
func DNValue(dn DN) Value { return Value{kind: KindDN, dn: dn} }

// VectorValue constructs an embedding value over a copy of v, so the
// caller's slice stays free to reuse (entry values are immutable by
// convention).
func VectorValue(v []float32) Value {
	cp := make([]float32, len(v))
	copy(cp, v)
	return Value{kind: KindVector, vec: cp}
}

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.s }

// Int returns the integer payload. It is only meaningful for KindInt.
func (v Value) Int() int64 { return v.i }

// DN returns the distinguished-name payload. It is only meaningful for
// KindDN.
func (v Value) DN() DN { return v.dn }

// Vec returns the embedding payload. It is only meaningful for
// KindVector. Callers must not mutate the returned slice.
func (v Value) Vec() []float32 { return v.vec }

// String renders the value in its directory text form: integers in
// decimal, DNs in RFC 2253-style comma form, strings verbatim.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindDN:
		return v.dn.String()
	case KindVector:
		return FormatVector(v.vec)
	default:
		return ""
	}
}

// Equal reports whether two values are identical. String comparison is
// case-sensitive (values, unlike attribute names, preserve case); DN
// comparison is by normalized key.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.s == w.s
	case KindInt:
		return v.i == w.i
	case KindDN:
		return v.dn.Equal(w.dn)
	case KindVector:
		if len(v.vec) != len(w.vec) {
			return false
		}
		for i := range v.vec {
			if v.vec[i] != w.vec[i] {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// Compare orders values of the same kind: strings byte-wise, ints
// numerically, DNs by reverse key. Values of different kinds order by
// kind. The ordering is total, enabling deterministic output.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		return int(v.kind) - int(w.kind)
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, w.s)
	case KindInt:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		}
		return 0
	case KindDN:
		return strings.Compare(v.dn.Key(), w.dn.Key())
	case KindVector:
		if d := len(v.vec) - len(w.vec); d != 0 {
			return d
		}
		for i := range v.vec {
			switch {
			case v.vec[i] < w.vec[i]:
				return -1
			case v.vec[i] > w.vec[i]:
				return 1
			}
		}
		return 0
	default:
		return 0
	}
}

// ParseValue interprets text as a value of the given schema type.
func ParseValue(t TypeName, text string) (Value, error) {
	switch TypeKind(t) {
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("model: value %q is not an int: %v", text, err)
		}
		return Int(i), nil
	case KindDN:
		dn, err := ParseDN(text)
		if err != nil {
			return Value{}, fmt.Errorf("model: value %q is not a DN: %v", text, err)
		}
		return DNValue(dn), nil
	case KindVector:
		vec, err := ParseVector(text)
		if err != nil {
			return Value{}, err
		}
		if dim, ok := VectorDim(t); ok && len(vec) != dim {
			return Value{}, fmt.Errorf("model: vector has %d components, type %s wants %d", len(vec), t, dim)
		}
		return Value{kind: KindVector, vec: vec}, nil
	default:
		return String(text), nil
	}
}

// FormatVector renders an embedding in its directory text form
// "[v1,v2,...]". Components use the shortest decimal that round-trips
// the float32 exactly, so FormatVector∘ParseVector is the identity on
// finite vectors.
func FormatVector(vec []float32) string {
	var b strings.Builder
	b.Grow(2 + 8*len(vec))
	b.WriteByte('[')
	for i, f := range vec {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(float64(f), 'g', -1, 32))
	}
	b.WriteByte(']')
	return b.String()
}

// ParseVector parses the "[v1,v2,...]" text form of an embedding.
// Components must be finite float32s (NaN and ±Inf have no total order
// and are rejected); the empty vector "[]" is rejected too, since no
// vector type has dimension zero.
func ParseVector(text string) ([]float32, error) {
	s := strings.TrimSpace(text)
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return nil, fmt.Errorf("model: vector %q is not bracketed", text)
	}
	inner := s[1 : len(s)-1]
	if strings.TrimSpace(inner) == "" {
		return nil, fmt.Errorf("model: empty vector %q", text)
	}
	parts := strings.Split(inner, ",")
	if len(parts) > MaxVectorDim {
		return nil, fmt.Errorf("model: vector has %d components, max %d", len(parts), MaxVectorDim)
	}
	vec := make([]float32, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 32)
		if err != nil {
			return nil, fmt.Errorf("model: vector component %q: %v", p, err)
		}
		f32 := float32(f)
		if math.IsNaN(f) || math.IsInf(float64(f32), 0) {
			return nil, fmt.Errorf("model: vector component %q is not finite", p)
		}
		vec[i] = f32
	}
	return vec, nil
}
