package model

import (
	"fmt"
	"strconv"
	"strings"
)

// TypeName identifies an attribute type in the set T of the schema.
// The model requires at least string, int, and distinguishedName
// (Section 3.1); additional names may be registered by applications.
type TypeName string

// The basic types assumed by the paper.
const (
	TypeString TypeName = "string"
	TypeInt    TypeName = "int"
	TypeDN     TypeName = "distinguishedName"
)

// Kind discriminates the runtime representation of a Value.
type Kind uint8

// Value kinds. KindInvalid is the zero value and never appears in a
// well-formed entry.
const (
	KindInvalid Kind = iota
	KindString
	KindInt
	KindDN
)

func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindDN:
		return "dn"
	default:
		return "invalid"
	}
}

// TypeKind maps a schema type name to the runtime kind that carries its
// values. Unknown (application-registered) types are carried as strings.
func TypeKind(t TypeName) Kind {
	switch t {
	case TypeInt:
		return KindInt
	case TypeDN:
		return KindDN
	default:
		return KindString
	}
}

// Value is a single attribute value: a tagged union over the domains of
// the basic types. The zero Value is invalid.
type Value struct {
	kind Kind
	s    string
	i    int64
	dn   DN
}

// String constructs a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int constructs an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// DNValue constructs a distinguished-name value (an entry reference).
func DNValue(dn DN) Value { return Value{kind: KindDN, dn: dn} }

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.s }

// Int returns the integer payload. It is only meaningful for KindInt.
func (v Value) Int() int64 { return v.i }

// DN returns the distinguished-name payload. It is only meaningful for
// KindDN.
func (v Value) DN() DN { return v.dn }

// String renders the value in its directory text form: integers in
// decimal, DNs in RFC 2253-style comma form, strings verbatim.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindDN:
		return v.dn.String()
	default:
		return ""
	}
}

// Equal reports whether two values are identical. String comparison is
// case-sensitive (values, unlike attribute names, preserve case); DN
// comparison is by normalized key.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.s == w.s
	case KindInt:
		return v.i == w.i
	case KindDN:
		return v.dn.Equal(w.dn)
	default:
		return true
	}
}

// Compare orders values of the same kind: strings byte-wise, ints
// numerically, DNs by reverse key. Values of different kinds order by
// kind. The ordering is total, enabling deterministic output.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		return int(v.kind) - int(w.kind)
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, w.s)
	case KindInt:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		}
		return 0
	case KindDN:
		return strings.Compare(v.dn.Key(), w.dn.Key())
	default:
		return 0
	}
}

// ParseValue interprets text as a value of the given schema type.
func ParseValue(t TypeName, text string) (Value, error) {
	switch TypeKind(t) {
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("model: value %q is not an int: %v", text, err)
		}
		return Int(i), nil
	case KindDN:
		dn, err := ParseDN(text)
		if err != nil {
			return Value{}, fmt.Errorf("model: value %q is not a DN: %v", text, err)
		}
		return DNValue(dn), nil
	default:
		return String(text), nil
	}
}
