package model

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// AVA is an (attribute, value) pair as it appears inside a relative
// distinguished name. DN values are textual: RDN components compare by
// their string form, matching the paper's string representation of
// distinguished names (Section 3.2, [31]).
type AVA struct {
	Attr  string
	Value string
}

// RDN is a relative distinguished name: a non-empty set of (attribute,
// value) pairs distinguishing an entry among its siblings (Definition
// 3.2(d)). The common case, as in all the paper's figures, is a single
// pair, but the model allows any set.
type RDN []AVA

// DN is a distinguished name: the sequence s1, ..., sn of RDNs, leaf
// first. dn[0] is the entry's own RDN; dn[len-1] is the root RDN.
// A nil/empty DN denotes the (virtual) forest root, the "null-dn" used in
// Section 8.1.
type DN []RDN

// NormalizeAttr canonicalizes an attribute name for comparison. LDAP
// attribute names are case-insensitive; values are not.
func NormalizeAttr(a string) string { return strings.ToLower(strings.TrimSpace(a)) }

// normalized returns a copy of the RDN with attribute names lower-cased
// and the AVAs sorted, giving set semantics a canonical order.
func (r RDN) normalized() RDN {
	out := make(RDN, len(r))
	for i, ava := range r {
		out[i] = AVA{Attr: NormalizeAttr(ava.Attr), Value: ava.Value}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attr != out[j].Attr {
			return out[i].Attr < out[j].Attr
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// String renders the RDN: pairs joined by '+', "attr=value".
func (r RDN) String() string {
	var b strings.Builder
	for i, ava := range r {
		if i > 0 {
			b.WriteByte('+')
		}
		b.WriteString(ava.Attr)
		b.WriteByte('=')
		b.WriteString(escapeDNValue(ava.Value))
	}
	return b.String()
}

// Equal reports set equality of two RDNs (attribute names
// case-insensitive).
func (r RDN) Equal(s RDN) bool {
	if len(r) != len(s) {
		return false
	}
	rn, sn := r.normalized(), s.normalized()
	for i := range rn {
		if rn[i] != sn[i] {
			return false
		}
	}
	return true
}

// String renders the DN in the paper's (and RFC 2253's) comma form, leaf
// first: "uid=jag, ou=userProfiles, dc=research, dc=att, dc=com".
func (d DN) String() string {
	if len(d) == 0 {
		return ""
	}
	parts := make([]string, len(d))
	for i, r := range d {
		parts[i] = r.String()
	}
	return strings.Join(parts, ", ")
}

// RDN returns the entry's own relative distinguished name (the first set
// in the sequence), or nil for the root DN.
func (d DN) RDN() RDN {
	if len(d) == 0 {
		return nil
	}
	return d[0]
}

// Parent returns the DN of the parent entry (the sequence with the
// leading RDN removed). The parent of a length-1 DN is the empty DN.
func (d DN) Parent() DN {
	if len(d) == 0 {
		return nil
	}
	return d[1:]
}

// Depth returns the number of RDNs in the DN.
func (d DN) Depth() int { return len(d) }

// Child returns the DN obtained by prepending rdn to d.
func (d DN) Child(rdn RDN) DN {
	out := make(DN, 0, len(d)+1)
	out = append(out, rdn)
	out = append(out, d...)
	return out
}

// Equal reports whether two DNs name the same entry.
func (d DN) Equal(e DN) bool {
	if len(d) != len(e) {
		return false
	}
	for i := range d {
		if !d[i].Equal(e[i]) {
			return false
		}
	}
	return true
}

// IsAncestorOf reports whether d is a proper ancestor of e: there is a
// non-empty sequence s1..sm with dn(e) = s1, ..., sm, dn(d)
// (Definition 3.2). The empty DN is an ancestor of every non-empty DN.
func (d DN) IsAncestorOf(e DN) bool {
	if len(e) <= len(d) {
		return false
	}
	off := len(e) - len(d)
	for i := range d {
		if !d[i].Equal(e[off+i]) {
			return false
		}
	}
	return true
}

// IsParentOf reports whether d is the parent of e.
func (d DN) IsParentOf(e DN) bool {
	return len(e) == len(d)+1 && d.IsAncestorOf(e)
}

// Key separator bytes. keySep terminates each RDN component; it sorts
// below every byte that may appear in an escaped component, so
// lexicographic byte order on keys equals the paper's ordering by the
// reverse of the DN, and key(parent) is a strict prefix of key(child).
const (
	keySep = '\x00'
)

// Key returns the reverse-DN sort key of Section 4.2: the normalized RDN
// components emitted root-first, each terminated by a 0x00 byte. Under
// byte-wise lexicographic order this is exactly "the lexicographic
// ordering on the reverse of the string representation of the
// distinguished names", and an ancestor's key is a prefix of each
// descendant's key.
func (d DN) Key() string {
	var b strings.Builder
	for i := len(d) - 1; i >= 0; i-- {
		writeRDNKey(&b, d[i])
		b.WriteByte(keySep)
	}
	return b.String()
}

func writeRDNKey(b *strings.Builder, r RDN) {
	n := r.normalized()
	for i, ava := range n {
		if i > 0 {
			b.WriteByte('+')
		}
		b.WriteString(ava.Attr)
		b.WriteByte('=')
		// Escape keySep and '+' inside values so component boundaries
		// stay unambiguous in the key.
		v := ava.Value
		for j := 0; j < len(v); j++ {
			c := v[j]
			if c == keySep || c == '+' || c == '\x01' {
				b.WriteByte('\x01')
			}
			b.WriteByte(c)
		}
	}
}

// KeyIsAncestor reports whether the entry with reverse key a is a proper
// ancestor of the entry with reverse key b, using only the keys.
func KeyIsAncestor(a, b string) bool {
	return len(a) < len(b) && strings.HasPrefix(b, a)
}

// KeyIsParent reports whether key a identifies the parent of key b: a is
// a proper prefix of b and b has exactly one further RDN component.
func KeyIsParent(a, b string) bool {
	if !KeyIsAncestor(a, b) {
		return false
	}
	return keyDepth(b[len(a):]) == 1
}

// KeyDepth returns the number of RDN components encoded in a reverse key.
func KeyDepth(k string) int { return keyDepth(k) }

func keyDepth(k string) int {
	n := 0
	esc := false
	for i := 0; i < len(k); i++ {
		if esc {
			esc = false
			continue
		}
		switch k[i] {
		case '\x01':
			esc = true
		case keySep:
			n++
		}
	}
	return n
}

// escapeDNValue escapes characters that are structural in the DN text
// form (comma, plus, equals, backslash) plus leading/trailing spaces,
// which the parser would otherwise trim away (RFC 4514 §2.4).
func escapeDNValue(v string) string {
	if !strings.ContainsAny(v, ",+=\\") &&
		(v == "" || (v[0] != ' ' && v[len(v)-1] != ' ')) {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c == ',' || c == '+' || c == '=' || c == '\\' ||
			(c == ' ' && (i == 0 || i == len(v)-1)) {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	}
	return b.String()
}

// ErrBadDN reports a malformed distinguished-name string.
var ErrBadDN = errors.New("model: malformed distinguished name")

// ParseDN parses the textual comma form of a distinguished name:
// "uid=jag, ou=userProfiles, dc=att, dc=com". Multi-valued RDNs use '+':
// "cn=a+sn=b, dc=com". Backslash escapes the structural characters.
// The empty string parses to the empty (root) DN.
func ParseDN(s string) (DN, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var dn DN
	for _, comp := range splitUnescaped(s, ',') {
		comp = trimUnescapedSpace(comp)
		if comp == "" {
			return nil, fmt.Errorf("%w: empty RDN in %q", ErrBadDN, s)
		}
		var rdn RDN
		for _, avaText := range splitUnescaped(comp, '+') {
			avaText = trimUnescapedSpace(avaText)
			eq := indexUnescaped(avaText, '=')
			if eq <= 0 {
				return nil, fmt.Errorf("%w: component %q lacks attr=value", ErrBadDN, avaText)
			}
			attr := strings.TrimSpace(avaText[:eq])
			raw := trimUnescapedSpace(avaText[eq+1:])
			if hasUnterminatedEscape(raw) {
				return nil, fmt.Errorf("%w: unterminated escape in %q", ErrBadDN, avaText)
			}
			val := unescapeDNValue(raw)
			if attr == "" {
				return nil, fmt.Errorf("%w: empty attribute in %q", ErrBadDN, avaText)
			}
			rdn = append(rdn, AVA{Attr: attr, Value: val})
		}
		dn = append(dn, rdn)
	}
	return dn, nil
}

// trimUnescapedSpace trims surrounding whitespace but keeps a trailing
// space that is backslash-escaped (the RFC 4514 way to put significant
// leading/trailing spaces in a value).
func trimUnescapedSpace(s string) string {
	s = strings.TrimLeft(s, " \t")
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		if s[len(s)-1] == ' ' && hasUnterminatedEscape(s[:len(s)-1]) {
			break // escaped trailing space: significant
		}
		s = s[:len(s)-1]
	}
	return s
}

// hasUnterminatedEscape reports whether s ends in an odd run of
// backslashes, i.e. the next byte (or end of string) is escaped.
func hasUnterminatedEscape(s string) bool {
	n := 0
	for i := len(s) - 1; i >= 0 && s[i] == '\\'; i-- {
		n++
	}
	return n%2 == 1
}

// MustParseDN is ParseDN for static strings; it panics on error.
func MustParseDN(s string) DN {
	dn, err := ParseDN(s)
	if err != nil {
		panic(err)
	}
	return dn
}

func splitUnescaped(s string, sep byte) []string {
	var parts []string
	start := 0
	esc := false
	for i := 0; i < len(s); i++ {
		switch {
		case esc:
			esc = false
		case s[i] == '\\':
			esc = true
		case s[i] == sep:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

func indexUnescaped(s string, c byte) int {
	esc := false
	for i := 0; i < len(s); i++ {
		switch {
		case esc:
			esc = false
		case s[i] == '\\':
			esc = true
		case s[i] == c:
			return i
		}
	}
	return -1
}

func unescapeDNValue(v string) string {
	if !strings.ContainsRune(v, '\\') {
		return v
	}
	var b strings.Builder
	esc := false
	for i := 0; i < len(v); i++ {
		c := v[i]
		if esc {
			b.WriteByte(c)
			esc = false
			continue
		}
		if c == '\\' {
			esc = true
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}
