package model

import (
	"errors"
	"fmt"
	"sort"
)

// Instance is an in-memory directory instance I = (R, class, val, dn) of
// a schema S (Definition 3.2). Entries are kept sorted by reverse-DN key,
// making the instance directly consumable by the sorted-list algorithms.
//
// Instance is the reference, fully in-memory representation; the
// disk-resident representation used for I/O-counted evaluation lives in
// internal/store.
type Instance struct {
	schema  *Schema
	entries []*Entry          // sorted by Key()
	byKey   map[string]*Entry // dn key -> entry (dn is a key: Def 3.2(d)(i))
}

// NewInstance returns an empty instance of the given schema.
func NewInstance(schema *Schema) *Instance {
	return &Instance{schema: schema, byKey: make(map[string]*Entry)}
}

// Schema returns the instance's schema.
func (in *Instance) Schema() *Schema { return in.schema }

// Len returns |R|.
func (in *Instance) Len() int { return len(in.entries) }

// Instance-level violations.
var (
	ErrDuplicateDN = errors.New("model: duplicate distinguished name")
	ErrInvalid     = errors.New("model: invalid entry")
)

// Add inserts entry e after validating it against the schema
// (ValidateEntry) and the key constraint dn(r) ≠ dn(r') (Definition
// 3.2(d)(i)).
func (in *Instance) Add(e *Entry) error {
	if err := ValidateEntry(in.schema, e); err != nil {
		return err
	}
	if _, dup := in.byKey[e.Key()]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateDN, e.DN())
	}
	i := sort.Search(len(in.entries), func(i int) bool { return in.entries[i].Key() >= e.Key() })
	in.entries = append(in.entries, nil)
	copy(in.entries[i+1:], in.entries[i:])
	in.entries[i] = e
	in.byKey[e.Key()] = e
	return nil
}

// MustAdd panics if Add fails; convenience for statically-known data.
func (in *Instance) MustAdd(e *Entry) {
	if err := in.Add(e); err != nil {
		panic(err)
	}
}

// Get returns the entry with the given DN, if present.
func (in *Instance) Get(dn DN) (*Entry, bool) {
	e, ok := in.byKey[dn.Key()]
	return e, ok
}

// GetKey returns the entry with the given reverse key, if present.
func (in *Instance) GetKey(key string) (*Entry, bool) {
	e, ok := in.byKey[key]
	return e, ok
}

// Remove deletes the entry with the given DN. It does not cascade:
// removing an interior entry leaves its descendants in place (the model
// is a forest, so orphaned subtrees remain well-formed roots of the DIF).
func (in *Instance) Remove(dn DN) bool {
	key := dn.Key()
	if _, ok := in.byKey[key]; !ok {
		return false
	}
	delete(in.byKey, key)
	i := sort.Search(len(in.entries), func(i int) bool { return in.entries[i].Key() >= key })
	in.entries = append(in.entries[:i], in.entries[i+1:]...)
	return true
}

// Entries returns all entries in reverse-DN key order. The slice is
// shared; callers must not mutate it.
func (in *Instance) Entries() []*Entry { return in.entries }

// Clone returns a deep copy of the instance: every entry is cloned (see
// Entry.Clone — DNs are shared, attribute-value slices are copied), so
// mutations of the copy are invisible to the original. This is the
// isolation that makes core.Directory.Update failure-atomic: the
// mutation function runs against a clone, and an error discards the
// clone with the live instance untouched.
func (in *Instance) Clone() *Instance {
	out := &Instance{
		schema:  in.schema,
		entries: make([]*Entry, len(in.entries)),
		byKey:   make(map[string]*Entry, len(in.byKey)),
	}
	for i, e := range in.entries {
		c := e.Clone()
		out.entries[i] = c
		out.byKey[c.Key()] = c
	}
	return out
}

// Range calls fn for each entry whose key is in [lo, hi), in key order,
// stopping early if fn returns false. With lo = dn.Key() and
// hi = lo + 0xFF this enumerates exactly the subtree rooted at dn — the
// sub scope of Section 4.1 as one contiguous range.
func (in *Instance) Range(lo, hi string, fn func(*Entry) bool) {
	i := sort.Search(len(in.entries), func(i int) bool { return in.entries[i].Key() >= lo })
	for ; i < len(in.entries); i++ {
		if hi != "" && in.entries[i].Key() >= hi {
			return
		}
		if !fn(in.entries[i]) {
			return
		}
	}
}

// SubtreeHigh returns the exclusive upper bound of the key range covering
// the subtree rooted at the entry with reverse key k: every descendant
// key extends k, and no other key has k as a prefix, so k + 0xFF bounds
// the range (0xFF exceeds every byte emitted into keys).
func SubtreeHigh(k string) string { return k + "\xff" }

// Children returns the child entries of dn present in the instance, in
// key order.
func (in *Instance) Children(dn DN) []*Entry {
	k := dn.Key()
	var out []*Entry
	in.Range(k, SubtreeHigh(k), func(e *Entry) bool {
		if KeyIsParent(k, e.Key()) {
			out = append(out, e)
		}
		return true
	})
	return out
}

// Descendants returns the proper descendants of dn present in the
// instance, in key order.
func (in *Instance) Descendants(dn DN) []*Entry {
	k := dn.Key()
	var out []*Entry
	in.Range(k, SubtreeHigh(k), func(e *Entry) bool {
		if KeyIsAncestor(k, e.Key()) {
			out = append(out, e)
		}
		return true
	})
	return out
}

// Roots returns the entries that have no parent present in the instance —
// the roots of the directory information forest.
func (in *Instance) Roots() []*Entry {
	var out []*Entry
	for _, e := range in.entries {
		if len(e.DN()) == 1 {
			out = append(out, e)
			continue
		}
		if _, ok := in.byKey[e.DN().Parent().Key()]; !ok {
			out = append(out, e)
		}
	}
	return out
}

// ValidateEntry checks the conditions of Definition 3.2 for a single
// entry:
//
//	(b)   class(r) is a non-empty subset of C;
//	(c)1  every pair (a, v) has a allowed by at least one of r's classes
//	      and v in dom(tau(a));
//	(c)2  (objectClass, c) in val(r) iff c in class(r) — holds by
//	      construction since classes are stored as objectClass values,
//	      so this reduces to every objectClass value naming a schema class;
//	(d)   dn(r) is non-empty with non-empty RDNs, and rdn(r) ⊆ val(r).
func ValidateEntry(s *Schema, e *Entry) error {
	classes := e.Classes()
	if len(classes) == 0 {
		return fmt.Errorf("%w: %s: entry belongs to no class", ErrInvalid, e.DN())
	}
	for _, c := range classes {
		if !s.HasClass(c) {
			return fmt.Errorf("%w: %s: unknown class %q", ErrInvalid, e.DN(), c)
		}
	}
	for _, av := range e.Pairs() {
		t, ok := s.AttrType(av.Attr)
		if !ok {
			return fmt.Errorf("%w: %s: unknown attribute %q", ErrInvalid, e.DN(), av.Attr)
		}
		if TypeKind(t) != av.Value.Kind() {
			return fmt.Errorf("%w: %s: attribute %q has type %s but value kind %s",
				ErrInvalid, e.DN(), av.Attr, t, av.Value.Kind())
		}
		allowed := false
		for _, c := range classes {
			if s.Allowed(c, av.Attr) {
				allowed = true
				break
			}
		}
		if !allowed {
			return fmt.Errorf("%w: %s: attribute %q not allowed by any of classes %v",
				ErrInvalid, e.DN(), av.Attr, classes)
		}
	}
	dn := e.DN()
	if len(dn) == 0 {
		return fmt.Errorf("%w: entry has empty DN", ErrInvalid)
	}
	for _, rdn := range dn {
		if len(rdn) == 0 {
			return fmt.Errorf("%w: %s: empty RDN", ErrInvalid, e.DN())
		}
	}
	for _, ava := range dn.RDN() {
		t, ok := s.AttrType(ava.Attr)
		if !ok {
			return fmt.Errorf("%w: %s: RDN uses unknown attribute %q", ErrInvalid, e.DN(), ava.Attr)
		}
		v, err := ParseValue(t, ava.Value)
		if err != nil {
			return fmt.Errorf("%w: %s: RDN value: %v", ErrInvalid, e.DN(), err)
		}
		if !e.HasPair(ava.Attr, v) {
			return fmt.Errorf("%w: %s: rdn pair %s=%s not in val(r)", ErrInvalid, e.DN(), ava.Attr, ava.Value)
		}
	}
	return nil
}

// Validate checks the whole instance: every entry valid, DNs unique
// (guaranteed by construction), and — optionally strict — every non-root
// entry's parent present. The paper's model is a forest, so missing
// parents are legal; Strict mode is what deployed LDAP servers enforce.
func (in *Instance) Validate(strict bool) error {
	for _, e := range in.entries {
		if err := ValidateEntry(in.schema, e); err != nil {
			return err
		}
		if strict && len(e.DN()) > 1 {
			if _, ok := in.byKey[e.DN().Parent().Key()]; !ok {
				return fmt.Errorf("%w: %s: parent missing (strict forest)", ErrInvalid, e.DN())
			}
		}
	}
	return nil
}

// NewEntryFromDN builds an entry whose val(r) already contains the pairs
// of its RDN (typed per the schema), satisfying rdn(r) ⊆ val(r). Classes
// and further attributes are added by the caller.
func NewEntryFromDN(s *Schema, dn DN) (*Entry, error) {
	e := NewEntry(dn)
	for _, ava := range dn.RDN() {
		t, ok := s.AttrType(ava.Attr)
		if !ok {
			return nil, fmt.Errorf("%w: RDN attribute %q not in schema", ErrSchema, ava.Attr)
		}
		v, err := ParseValue(t, ava.Value)
		if err != nil {
			return nil, err
		}
		e.Add(ava.Attr, v)
	}
	return e, nil
}
