package model

import (
	"errors"
	"testing"
)

func TestSchemaDefine(t *testing.T) {
	s := NewSchema()
	if err := s.DefineAttr("cn", TypeString); err != nil {
		t.Fatal(err)
	}
	if err := s.DefineAttr("priority", TypeInt); err != nil {
		t.Fatal(err)
	}
	if err := s.DefineClass("person", "cn", "priority"); err != nil {
		t.Fatal(err)
	}
	if !s.HasClass("PERSON") {
		t.Error("class lookup should be case-insensitive")
	}
	if ty, ok := s.AttrType("CN"); !ok || ty != TypeString {
		t.Errorf("AttrType(CN) = %v, %v", ty, ok)
	}
	if !s.Allowed("person", "cn") || !s.Allowed("person", "objectClass") {
		t.Error("cn and objectClass should be allowed for person")
	}
	if s.Allowed("person", "mail") {
		t.Error("mail not defined, must not be allowed")
	}
}

func TestSchemaRetypeRejected(t *testing.T) {
	s := NewSchema()
	s.MustDefineAttr("x", TypeInt)
	if err := s.DefineAttr("x", TypeString); !errors.Is(err, ErrSchema) {
		t.Fatalf("retype: got %v", err)
	}
	// Same type is idempotent.
	if err := s.DefineAttr("X", TypeInt); err != nil {
		t.Fatalf("idempotent redefine: %v", err)
	}
}

func TestSchemaUndefinedAttrInClass(t *testing.T) {
	s := NewSchema()
	if err := s.DefineClass("c", "nosuch"); !errors.Is(err, ErrSchema) {
		t.Fatalf("got %v", err)
	}
}

func TestSchemaObjectClassBuiltin(t *testing.T) {
	s := NewSchema()
	if ty, ok := s.AttrType("objectClass"); !ok || ty != TypeString {
		t.Fatalf("objectClass must be predefined as string, got %v %v", ty, ok)
	}
}

func TestDefaultSchemaCoversPaperFigures(t *testing.T) {
	s := DefaultSchema()
	// Classes named in Figs 1, 11, 12.
	for _, c := range []string{
		"dcObject", "domain", "organizationalUnit", "inetOrgPerson", "ntUser",
		"TOPSSubscriber", "QHP", "callAppearance",
		"SLAPolicyRules", "trafficProfile", "policyValidityPeriod", "SLADSAction",
	} {
		if !s.HasClass(c) {
			t.Errorf("missing class %q", c)
		}
	}
	// Typing spot checks from the paper's examples.
	checks := []struct {
		attr string
		want TypeName
	}{
		{"SLARulePriority", TypeInt}, // "SLARulePriority < 3" (Sect 4.1)
		{"SLAExceptionRef", TypeDN},  // references are dn-valued (Sect 7)
		{"SLATPRef", TypeDN},
		{"SLAPVPRef", TypeDN},
		{"SLADSActRef", TypeDN},
		{"sourcePort", TypeInt}, // "sourcePort=25" (Ex 5.3)
		{"surName", TypeString}, // "surName=jagadish"
		{"priority", TypeInt},   // QHP priorities (Fig 11)
		{"PVDayOfWeek", TypeInt},
	}
	for _, c := range checks {
		got, ok := s.AttrType(c.attr)
		if !ok || got != c.want {
			t.Errorf("AttrType(%s) = %v,%v want %v", c.attr, got, ok, c.want)
		}
	}
	if !s.Allowed("SLAPolicyRules", "SLAExceptionRef") {
		t.Error("SLAPolicyRules must allow SLAExceptionRef")
	}
}

func TestSchemaClone(t *testing.T) {
	s := DefaultSchema()
	c := s.Clone()
	c.MustDefineAttr("extra", TypeInt)
	if _, ok := s.AttrType("extra"); ok {
		t.Error("clone must not alias original")
	}
	if _, ok := c.AttrType("dc"); !ok {
		t.Error("clone lost attribute")
	}
}

func TestSchemaListings(t *testing.T) {
	s := NewSchema()
	s.MustDefineAttr("b", TypeString)
	s.MustDefineAttr("a", TypeInt)
	s.MustDefineClass("z")
	s.MustDefineClass("y", "a")
	attrs := s.Attrs()
	if len(attrs) != 3 || attrs[0] != "a" || attrs[1] != "b" || attrs[2] != ObjectClass {
		t.Errorf("Attrs() = %v", attrs)
	}
	classes := s.Classes()
	if len(classes) != 2 || classes[0] != "y" || classes[1] != "z" {
		t.Errorf("Classes() = %v", classes)
	}
	if got := s.AllowedAttrs("y"); len(got) != 2 || got[0] != "a" || got[1] != ObjectClass {
		t.Errorf("AllowedAttrs(y) = %v", got)
	}
}
