package model

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseDNRoundTrip(t *testing.T) {
	cases := []string{
		"dc=com",
		"dc=att, dc=com",
		"dc=research, dc=att, dc=com",
		"uid=jag, ou=userProfiles, dc=research, dc=att, dc=com",
		"SLAPolicyName=dso, ou=SLAPolicyRules, ou=networkPolicies, dc=research, dc=att, dc=com",
		"cn=a+sn=b, dc=com",
	}
	for _, c := range cases {
		dn, err := ParseDN(c)
		if err != nil {
			t.Fatalf("ParseDN(%q): %v", c, err)
		}
		back, err := ParseDN(dn.String())
		if err != nil {
			t.Fatalf("re-parse of %q -> %q: %v", c, dn.String(), err)
		}
		if !dn.Equal(back) {
			t.Errorf("round trip of %q changed: %q", c, back.String())
		}
	}
}

func TestParseDNEmpty(t *testing.T) {
	dn, err := ParseDN("")
	if err != nil || len(dn) != 0 {
		t.Fatalf("empty DN: got %v, %v", dn, err)
	}
	if dn.Key() != "" {
		t.Fatalf("empty DN key: %q", dn.Key())
	}
}

func TestParseDNErrors(t *testing.T) {
	for _, bad := range []string{"nodelim", "=v", "a=1,,b=2", "a=1, , b=2", ","} {
		if _, err := ParseDN(bad); err == nil {
			t.Errorf("ParseDN(%q): expected error", bad)
		}
	}
}

func TestParseDNEscapes(t *testing.T) {
	orig := DN{RDN{{Attr: "cn", Value: "smith, john+jr=x"}}, RDN{{Attr: "dc", Value: "com"}}}
	text := orig.String()
	back, err := ParseDN(text)
	if err != nil {
		t.Fatalf("ParseDN(%q): %v", text, err)
	}
	if !orig.Equal(back) {
		t.Fatalf("escape round trip: %q -> %#v", text, back)
	}
}

func TestDNHierarchy(t *testing.T) {
	com := MustParseDN("dc=com")
	att := MustParseDN("dc=att, dc=com")
	research := MustParseDN("dc=research, dc=att, dc=com")
	otherCom := MustParseDN("dc=ibm, dc=com")

	if !com.IsParentOf(att) {
		t.Error("com should be parent of att")
	}
	if !com.IsAncestorOf(research) {
		t.Error("com should be ancestor of research")
	}
	if com.IsParentOf(research) {
		t.Error("com is not parent of research")
	}
	if att.IsAncestorOf(att) {
		t.Error("ancestor is proper: att not ancestor of itself")
	}
	if att.IsAncestorOf(otherCom) {
		t.Error("att not ancestor of ibm")
	}
	if !att.Parent().Equal(com) {
		t.Error("parent of att should be com")
	}
	if got := research.Depth(); got != 3 {
		t.Errorf("depth = %d, want 3", got)
	}
	if !att.Child(RDN{{Attr: "dc", Value: "research"}}).Equal(research) {
		t.Error("Child(att, dc=research) != research")
	}
}

func TestKeyPrefixProperty(t *testing.T) {
	// key(parent) must be a strict prefix of key(child), and KeyIsParent /
	// KeyIsAncestor must agree with the DN-level predicates.
	dns := []DN{
		MustParseDN("dc=com"),
		MustParseDN("dc=att, dc=com"),
		MustParseDN("dc=research, dc=att, dc=com"),
		MustParseDN("ou=userProfiles, dc=research, dc=att, dc=com"),
		MustParseDN("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com"),
		MustParseDN("dc=ibm, dc=com"),
		MustParseDN("dc=attx, dc=com"), // sibling whose RDN extends att's text
	}
	for _, a := range dns {
		for _, b := range dns {
			ka, kb := a.Key(), b.Key()
			if got, want := KeyIsAncestor(ka, kb), a.IsAncestorOf(b); got != want {
				t.Errorf("KeyIsAncestor(%s, %s) = %v, want %v", a, b, got, want)
			}
			if got, want := KeyIsParent(ka, kb), a.IsParentOf(b); got != want {
				t.Errorf("KeyIsParent(%s, %s) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestKeySiblingNotPrefix(t *testing.T) {
	// "dc=att" must not be treated as an ancestor of "dc=attx".
	a := MustParseDN("dc=att, dc=com").Key()
	b := MustParseDN("dc=attx, dc=com").Key()
	if KeyIsAncestor(a, b) {
		t.Fatal("att must not be key-ancestor of attx")
	}
}

func TestKeyDepth(t *testing.T) {
	for want := 1; want <= 6; want++ {
		dn := make(DN, 0, want)
		base := DN{}
		for i := 0; i < want; i++ {
			base = base.Child(RDN{{Attr: "dc", Value: strings.Repeat("x", i+1)}})
		}
		dn = base
		if got := KeyDepth(dn.Key()); got != want {
			t.Errorf("KeyDepth(depth-%d dn) = %d", want, got)
		}
	}
}

func TestKeyEscaping(t *testing.T) {
	// Values containing the separator bytes must not break the prefix
	// property or depth counting.
	tricky := DN{
		RDN{{Attr: "cn", Value: "a\x00b\x01c+d"}},
		RDN{{Attr: "dc", Value: "com"}},
	}
	parent := DN{RDN{{Attr: "dc", Value: "com"}}}
	if !KeyIsParent(parent.Key(), tricky.Key()) {
		t.Fatal("escaped child not recognized")
	}
	if got := KeyDepth(tricky.Key()); got != 2 {
		t.Fatalf("KeyDepth = %d, want 2", got)
	}
}

// randDN builds a random DN below one of a few roots, depth <= 6.
func randDN(r *rand.Rand) DN {
	depth := 1 + r.Intn(6)
	dn := DN{}
	for i := 0; i < depth; i++ {
		val := string(rune('a' + r.Intn(4)))
		if r.Intn(8) == 0 {
			val += "\x00+" // exercise escaping
		}
		dn = dn.Child(RDN{{Attr: "dc", Value: val}})
	}
	return dn
}

func TestQuickKeyOrderMatchesReverseDN(t *testing.T) {
	// Property: for random DN pairs, key order agrees with the
	// lexicographic order of the reversed RDN-string sequences, and
	// ancestor relations agree with key prefixes.
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		a, b := randDN(r), randDN(r)
		ka, kb := a.Key(), b.Key()
		if a.IsAncestorOf(b) != KeyIsAncestor(ka, kb) {
			return false
		}
		if a.Equal(b) != (ka == kb) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSortGroupsSubtrees(t *testing.T) {
	// Property: after sorting by key, every subtree is a contiguous run —
	// i.e. all descendants of any entry immediately follow it.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(40)
		dns := make([]DN, n)
		for i := range dns {
			dns[i] = randDN(r)
		}
		sort.Slice(dns, func(i, j int) bool { return dns[i].Key() < dns[j].Key() })
		for i := range dns {
			inRun := true
			for j := i + 1; j < len(dns); j++ {
				isDesc := dns[i].IsAncestorOf(dns[j]) || dns[i].Equal(dns[j])
				if isDesc && !inRun {
					t.Fatalf("subtree of %s not contiguous", dns[i])
				}
				if !isDesc {
					inRun = false
				}
			}
		}
	}
}

func TestSubtreeHighBoundsRange(t *testing.T) {
	root := MustParseDN("dc=att, dc=com")
	inside := MustParseDN("uid=j, ou=x, dc=att, dc=com")
	sibling := MustParseDN("dc=attx, dc=com")
	lo, hi := root.Key(), SubtreeHigh(root.Key())
	if !(inside.Key() >= lo && inside.Key() < hi) {
		t.Error("descendant outside [lo,hi)")
	}
	if sibling.Key() >= lo && sibling.Key() < hi {
		t.Error("sibling inside subtree range")
	}
}

func TestParseDNRejectsUnterminatedEscape(t *testing.T) {
	for _, s := range []string{`dc=a\`, `dc=a\\\`, `dc=a\, dc=b\`} {
		if _, err := ParseDN(s); err == nil {
			t.Errorf("ParseDN(%q) accepted a trailing lone backslash", s)
		}
	}
	// An even run of backslashes is a complete escape, not an error.
	d, err := ParseDN(`dc=a\\`)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.RDN()[0].Value; got != `a\` {
		t.Errorf("value = %q, want %q", got, `a\`)
	}
}

func TestDNSpaceEscapeRoundTrip(t *testing.T) {
	for _, val := range []string{" leading", "trailing ", " both ", "  double  "} {
		d := DN{RDN{{Attr: "dc", Value: val}}, RDN{{Attr: "dc", Value: "com"}}}
		back, err := ParseDN(d.String())
		if err != nil {
			t.Fatalf("%q: %v", d.String(), err)
		}
		if !back.Equal(d) {
			t.Errorf("round trip of value %q: rendered %q, got back value %q",
				val, d.String(), back.RDN()[0].Value)
		}
	}
}
