package model

import (
	"sort"
	"strings"
)

// AV is one (attribute, value) pair held by an entry. Attribute names are
// stored normalized.
type AV struct {
	Attr  string
	Value Value
}

// Entry is a directory entry r: its distinguished name dn(r), and val(r),
// a multiset of (attribute, value) pairs. Per Definition 3.2, class(r) is
// derivable from val(r) as the values of the objectClass attribute, and
// rdn(r) ⊆ val(r).
//
// Entries are value-like: the evaluation engine copies them freely.
type Entry struct {
	dn  DN
	key string // cached reverse-DN key
	avs []AV   // sorted by (attr, value) for determinism
}

// NewEntry creates an entry with the given DN and no attribute values.
func NewEntry(dn DN) *Entry {
	return &Entry{dn: dn, key: dn.Key()}
}

// DN returns dn(r).
func (e *Entry) DN() DN { return e.dn }

// Key returns the cached reverse-DN sort key of dn(r).
func (e *Entry) Key() string { return e.key }

// Add appends the pair (attr, v) to val(r). Duplicate pairs are kept:
// val(r) is a multiset and an attribute may have multiple values
// (Section 3.2, footnote 2).
func (e *Entry) Add(attr string, v Value) *Entry {
	attr = NormalizeAttr(attr)
	i := sort.Search(len(e.avs), func(i int) bool {
		if e.avs[i].Attr != attr {
			return e.avs[i].Attr > attr
		}
		return e.avs[i].Value.Compare(v) >= 0
	})
	e.avs = append(e.avs, AV{})
	copy(e.avs[i+1:], e.avs[i:])
	e.avs[i] = AV{Attr: attr, Value: v}
	return e
}

// AddClass records membership in class c by adding an (objectClass, c)
// pair, maintaining condition (c)2 of Definition 3.2.
func (e *Entry) AddClass(c string) *Entry {
	return e.Add(ObjectClass, String(NormalizeAttr(c)))
}

// Pairs returns val(r) in sorted order. The slice is shared; callers must
// not mutate it.
func (e *Entry) Pairs() []AV { return e.avs }

// Values returns all values of attribute a, in sorted order.
func (e *Entry) Values(a string) []Value {
	a = NormalizeAttr(a)
	lo := sort.Search(len(e.avs), func(i int) bool { return e.avs[i].Attr >= a })
	hi := lo
	for hi < len(e.avs) && e.avs[hi].Attr == a {
		hi++
	}
	if lo == hi {
		return nil
	}
	out := make([]Value, hi-lo)
	for i := lo; i < hi; i++ {
		out[i-lo] = e.avs[i].Value
	}
	return out
}

// First returns the first (smallest) value of attribute a, if any.
func (e *Entry) First(a string) (Value, bool) {
	a = NormalizeAttr(a)
	i := sort.Search(len(e.avs), func(i int) bool { return e.avs[i].Attr >= a })
	if i < len(e.avs) && e.avs[i].Attr == a {
		return e.avs[i].Value, true
	}
	return Value{}, false
}

// Has reports whether the entry specifies at least one value for a.
func (e *Entry) Has(a string) bool {
	_, ok := e.First(a)
	return ok
}

// HasPair reports whether (a, v) ∈ val(r).
func (e *Entry) HasPair(a string, v Value) bool {
	for _, got := range e.Values(a) {
		if got.Equal(v) {
			return true
		}
	}
	return false
}

// Classes returns class(r): the values of objectClass, sorted.
func (e *Entry) Classes() []string {
	vals := e.Values(ObjectClass)
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.Str()
	}
	return out
}

// HasClass reports whether c ∈ class(r).
func (e *Entry) HasClass(c string) bool {
	return e.HasPair(ObjectClass, String(NormalizeAttr(c)))
}

// Clone returns a deep-enough copy: the AV slice is copied; Values are
// immutable by convention.
func (e *Entry) Clone() *Entry {
	avs := make([]AV, len(e.avs))
	copy(avs, e.avs)
	return &Entry{dn: e.dn, key: e.key, avs: avs}
}

// Equal reports whether two entries have the same DN and the same
// multiset of pairs.
func (e *Entry) Equal(f *Entry) bool {
	if !e.dn.Equal(f.dn) || len(e.avs) != len(f.avs) {
		return false
	}
	for i := range e.avs {
		if e.avs[i].Attr != f.avs[i].Attr || !e.avs[i].Value.Equal(f.avs[i].Value) {
			return false
		}
	}
	return true
}

// String renders the entry in an LDIF-like block: the DN line followed by
// one "attr: value" line per pair.
func (e *Entry) String() string {
	var b strings.Builder
	b.WriteString("dn: ")
	b.WriteString(e.dn.String())
	for _, av := range e.avs {
		b.WriteByte('\n')
		b.WriteString(av.Attr)
		b.WriteString(": ")
		b.WriteString(av.Value.String())
	}
	return b.String()
}
