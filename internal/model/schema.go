package model

import (
	"errors"
	"fmt"
	"sort"
)

// ObjectClass is the distinguished attribute every schema must contain
// (Definition 3.1(b)): the classes an entry belongs to are exactly the
// values of its objectClass attribute.
const ObjectClass = "objectclass"

// Schema is a directory schema S = (C, A, tau, psi) per Definition 3.1.
// Attribute names are stored normalized (lower case); lookups normalize
// their argument, so callers may use any case.
type Schema struct {
	classes map[string]map[string]bool // psi: class -> set of allowed attrs
	attrs   map[string]TypeName        // tau: attr -> type
}

// NewSchema returns an empty schema containing only the mandatory
// objectClass attribute, typed string (Definition 3.1(c)).
func NewSchema() *Schema {
	s := &Schema{
		classes: make(map[string]map[string]bool),
		attrs:   make(map[string]TypeName),
	}
	s.attrs[ObjectClass] = TypeString
	return s
}

// ErrSchema reports a schema-level violation.
var ErrSchema = errors.New("model: schema violation")

// DefineAttr adds attribute a with type t to A. Redefining an attribute
// with a different type is an error: occurrences of the same attribute in
// multiple classes all share the same type (Section 3.1).
func (s *Schema) DefineAttr(a string, t TypeName) error {
	a = NormalizeAttr(a)
	if a == "" {
		return fmt.Errorf("%w: empty attribute name", ErrSchema)
	}
	if prev, ok := s.attrs[a]; ok && prev != t {
		return fmt.Errorf("%w: attribute %q already typed %s, cannot retype to %s", ErrSchema, a, prev, t)
	}
	s.attrs[a] = t
	return nil
}

// DefineClass adds class c with the given allowed attributes to C. Every
// allowed attribute must already be defined. objectClass is implicitly
// allowed for every class (condition (c)2 of Definition 3.2 requires each
// entry to carry it).
func (s *Schema) DefineClass(c string, allowed ...string) error {
	c = NormalizeAttr(c)
	if c == "" {
		return fmt.Errorf("%w: empty class name", ErrSchema)
	}
	set := s.classes[c]
	if set == nil {
		set = make(map[string]bool)
		s.classes[c] = set
	}
	set[ObjectClass] = true
	for _, a := range allowed {
		a = NormalizeAttr(a)
		if _, ok := s.attrs[a]; !ok {
			return fmt.Errorf("%w: class %q allows undefined attribute %q", ErrSchema, c, a)
		}
		set[a] = true
	}
	return nil
}

// MustDefineAttr and MustDefineClass are the panicking forms for
// statically-known schemas.
func (s *Schema) MustDefineAttr(a string, t TypeName) {
	if err := s.DefineAttr(a, t); err != nil {
		panic(err)
	}
}

// MustDefineClass panics if DefineClass fails.
func (s *Schema) MustDefineClass(c string, allowed ...string) {
	if err := s.DefineClass(c, allowed...); err != nil {
		panic(err)
	}
}

// HasClass reports whether c is in C.
func (s *Schema) HasClass(c string) bool {
	_, ok := s.classes[NormalizeAttr(c)]
	return ok
}

// AttrType returns tau(a) and whether a is in A.
func (s *Schema) AttrType(a string) (TypeName, bool) {
	t, ok := s.attrs[NormalizeAttr(a)]
	return t, ok
}

// Allowed reports whether attribute a is an allowed attribute of class c:
// a member of psi(c).
func (s *Schema) Allowed(c, a string) bool {
	set, ok := s.classes[NormalizeAttr(c)]
	return ok && set[NormalizeAttr(a)]
}

// AllowedAttrs returns psi(c) sorted, or nil if c is not a class.
func (s *Schema) AllowedAttrs(c string) []string {
	set, ok := s.classes[NormalizeAttr(c)]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Classes returns C sorted.
func (s *Schema) Classes() []string {
	out := make([]string, 0, len(s.classes))
	for c := range s.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Attrs returns A sorted.
func (s *Schema) Attrs() []string {
	out := make([]string, 0, len(s.attrs))
	for a := range s.attrs {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	out := NewSchema()
	for a, t := range s.attrs {
		out.attrs[a] = t
	}
	for c, set := range s.classes {
		cp := make(map[string]bool, len(set))
		for a := range set {
			cp[a] = true
		}
		out.classes[c] = cp
	}
	return out
}

// DefaultSchema returns the schema used throughout the paper's figures:
// the DNS-style upper levels (Fig 1), the QoS policy repository (Fig 12,
// after Chaudhury et al. [11]), and the TOPS application (Fig 11), with
// class and attribute names taken verbatim from the paper.
func DefaultSchema() *Schema {
	s := NewSchema()
	for _, a := range []struct {
		name string
		t    TypeName
	}{
		{"dc", TypeString},
		{"ou", TypeString},
		{"o", TypeString},
		{"cn", TypeString},
		{"commonName", TypeString},
		{"surName", TypeString},
		{"uid", TypeString},
		{"telephoneNumber", TypeString},
		{"mail", TypeString},
		{"description", TypeString},

		// TOPS (Fig 11).
		{"QHPName", TypeString},
		{"startTime", TypeInt},
		{"endTime", TypeInt},
		{"daysOfWeek", TypeInt},
		{"priority", TypeInt},
		{"CANumber", TypeString},
		{"timeOut", TypeInt},
		{"mediaType", TypeString},
		{"terminalType", TypeString},
		{"callerGroup", TypeString},

		// QoS / SLA policies (Fig 12).
		{"SLAPolicyName", TypeString},
		{"SLAPolicyScope", TypeString},
		{"SLARulePriority", TypeInt},
		{"SLAExceptionRef", TypeDN},
		{"SLATPRef", TypeDN},
		{"SLAPVPRef", TypeDN},
		{"SLADSActRef", TypeDN},
		{"TPName", TypeString},
		{"SourceAddress", TypeString},
		{"DestinationAddress", TypeString},
		{"sourcePort", TypeInt},
		{"destinationPort", TypeInt},
		{"protocolNumber", TypeInt},
		{"PVPName", TypeString},
		{"PVStartTime", TypeInt},
		{"PVEndTime", TypeInt},
		{"PVDayOfWeek", TypeInt},
		{"DSActionName", TypeString},
		{"DSPermission", TypeString},
		{"DSInProfilePeakRate", TypeInt},
		{"DSDropPriority", TypeInt},
	} {
		s.MustDefineAttr(a.name, a.t)
	}

	s.MustDefineClass("dcObject", "dc")
	s.MustDefineClass("domain", "dc", "o", "description")
	s.MustDefineClass("organizationalUnit", "ou", "description")
	s.MustDefineClass("inetOrgPerson",
		"cn", "commonName", "surName", "uid", "telephoneNumber", "mail", "description")
	s.MustDefineClass("ntUser", "cn", "uid", "description")
	s.MustDefineClass("TOPSSubscriber",
		"cn", "commonName", "surName", "uid", "description")
	s.MustDefineClass("QHP",
		"QHPName", "startTime", "endTime", "daysOfWeek", "priority", "callerGroup", "mediaType", "description")
	s.MustDefineClass("callAppearance",
		"CANumber", "priority", "timeOut", "mediaType", "terminalType", "description")
	s.MustDefineClass("SLAPolicyRules",
		"SLAPolicyName", "SLAPolicyScope", "SLARulePriority",
		"SLAExceptionRef", "SLATPRef", "SLAPVPRef", "SLADSActRef", "description")
	s.MustDefineClass("trafficProfile",
		"TPName", "SourceAddress", "DestinationAddress",
		"sourcePort", "destinationPort", "protocolNumber", "description")
	s.MustDefineClass("policyValidityPeriod",
		"PVPName", "PVStartTime", "PVEndTime", "PVDayOfWeek", "description")
	s.MustDefineClass("SLADSAction",
		"DSActionName", "DSPermission", "DSInProfilePeakRate", "DSDropPriority", "description")
	return s
}
