package model

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func personEntry(t *testing.T, s *Schema, dnText string) *Entry {
	t.Helper()
	e, err := NewEntryFromDN(s, MustParseDN(dnText))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEntryMultiValued(t *testing.T) {
	e := NewEntry(MustParseDN("cn=x, dc=com"))
	e.Add("mail", String("a@x"))
	e.Add("mail", String("b@x"))
	e.Add("mail", String("a@x")) // duplicate pair: multiset semantics
	vals := e.Values("mail")
	if len(vals) != 3 {
		t.Fatalf("want 3 mail values, got %d", len(vals))
	}
	if !e.HasPair("MAIL", String("b@x")) {
		t.Error("HasPair should normalize attribute case")
	}
	if e.HasPair("mail", String("c@x")) {
		t.Error("unexpected pair")
	}
}

func TestEntryClasses(t *testing.T) {
	e := NewEntry(MustParseDN("uid=jag, dc=com"))
	e.AddClass("inetOrgPerson").AddClass("TOPSSubscriber")
	cs := e.Classes()
	if len(cs) != 2 || cs[0] != "inetorgperson" || cs[1] != "topssubscriber" {
		t.Fatalf("Classes() = %v", cs)
	}
	if !e.HasClass("InetOrgPerson") {
		t.Error("HasClass should be case-insensitive")
	}
}

func TestEntrySortedPairs(t *testing.T) {
	e := NewEntry(MustParseDN("cn=x, dc=com"))
	e.Add("z", String("1"))
	e.Add("a", String("2"))
	e.Add("m", Int(5))
	e.Add("a", String("1"))
	prev := AV{}
	for i, av := range e.Pairs() {
		if i > 0 {
			if av.Attr < prev.Attr {
				t.Fatal("pairs not sorted by attr")
			}
			if av.Attr == prev.Attr && av.Value.Compare(prev.Value) < 0 {
				t.Fatal("pairs not sorted by value within attr")
			}
		}
		prev = av
	}
}

func TestEntryFirstHas(t *testing.T) {
	e := NewEntry(MustParseDN("cn=x, dc=com"))
	e.Add("priority", Int(3)).Add("priority", Int(1))
	v, ok := e.First("priority")
	if !ok || v.Int() != 1 {
		t.Fatalf("First = %v %v, want 1", v, ok)
	}
	if !e.Has("priority") || e.Has("absent") {
		t.Error("Has mismatch")
	}
}

func TestEntryCloneEqual(t *testing.T) {
	e := NewEntry(MustParseDN("cn=x, dc=com")).Add("a", Int(1)).AddClass("c")
	f := e.Clone()
	if !e.Equal(f) {
		t.Fatal("clone not equal")
	}
	f.Add("a", Int(2))
	if e.Equal(f) {
		t.Fatal("mutating clone affected original comparison")
	}
	if len(e.Values("a")) != 1 {
		t.Fatal("clone aliases original storage")
	}
}

func TestEntryString(t *testing.T) {
	e := NewEntry(MustParseDN("cn=x, dc=com")).AddClass("person").Add("cn", String("x"))
	s := e.String()
	if !strings.HasPrefix(s, "dn: cn=x, dc=com") || !strings.Contains(s, "cn: x") {
		t.Errorf("String() = %q", s)
	}
}

func TestValueCompareTotal(t *testing.T) {
	vals := []Value{String("a"), String("b"), Int(-1), Int(7), DNValue(MustParseDN("dc=com")), DNValue(MustParseDN("dc=org"))}
	for _, a := range vals {
		for _, b := range vals {
			ab, ba := a.Compare(b), b.Compare(a)
			if (ab < 0) != (ba > 0) || (ab == 0) != (ba == 0) {
				t.Errorf("Compare not antisymmetric: %v vs %v", a, b)
			}
			if (ab == 0) != a.Equal(b) {
				t.Errorf("Compare/Equal disagree: %v vs %v", a, b)
			}
		}
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(TypeInt, " 42 ")
	if err != nil || v.Int() != 42 {
		t.Fatalf("int: %v %v", v, err)
	}
	if _, err := ParseValue(TypeInt, "nan"); err == nil {
		t.Fatal("expected int parse error")
	}
	v, err = ParseValue(TypeDN, "dc=att, dc=com")
	if err != nil || v.Kind() != KindDN || v.DN().Depth() != 2 {
		t.Fatalf("dn: %v %v", v, err)
	}
	v, err = ParseValue(TypeString, "hello")
	if err != nil || v.Str() != "hello" {
		t.Fatalf("string: %v %v", v, err)
	}
	v, err = ParseValue("telephoneNumber", "+1 973")
	if err != nil || v.Kind() != KindString {
		t.Fatalf("unknown type carries string: %v %v", v, err)
	}
}

func TestInstanceAddValidate(t *testing.T) {
	s := DefaultSchema()
	in := NewInstance(s)

	ok := personEntry(t, s, "uid=jag, dc=com")
	ok.AddClass("inetOrgPerson").Add("surName", String("jagadish"))
	if err := in.Add(ok); err != nil {
		t.Fatal(err)
	}

	// Duplicate DN rejected (Def 3.2(d)(i)).
	dup := personEntry(t, s, "uid=jag, dc=com")
	dup.AddClass("inetOrgPerson")
	if err := in.Add(dup); !errors.Is(err, ErrDuplicateDN) {
		t.Fatalf("duplicate dn: got %v", err)
	}

	// No class: rejected (Def 3.2(b)).
	noclass := personEntry(t, s, "uid=x, dc=com")
	if err := in.Add(noclass); !errors.Is(err, ErrInvalid) {
		t.Fatalf("no class: got %v", err)
	}

	// Attribute not allowed by any class (Def 3.2(c)1).
	bad := personEntry(t, s, "dc=y, dc=com")
	bad.AddClass("dcObject").Add("surName", String("z"))
	if err := in.Add(bad); !errors.Is(err, ErrInvalid) {
		t.Fatalf("disallowed attr: got %v", err)
	}

	// Wrong value kind for typed attribute.
	wrongKind := personEntry(t, s, "uid=k, dc=com")
	wrongKind.AddClass("TOPSSubscriber")
	wrongKind.Add("surName", Int(5))
	if err := in.Add(wrongKind); !errors.Is(err, ErrInvalid) {
		t.Fatalf("wrong kind: got %v", err)
	}

	// Unknown class.
	uc := personEntry(t, s, "uid=m, dc=com")
	uc.AddClass("noSuchClass")
	if err := in.Add(uc); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unknown class: got %v", err)
	}

	// rdn(r) must be a subset of val(r): NewEntry without the RDN pair.
	nordn := NewEntry(MustParseDN("uid=q, dc=com"))
	nordn.AddClass("inetOrgPerson")
	if err := in.Add(nordn); !errors.Is(err, ErrInvalid) {
		t.Fatalf("rdn not in val: got %v", err)
	}
}

func TestInstanceHeterogeneity(t *testing.T) {
	// Section 3.5: entries may mix classes freely; same-class entries may
	// carry different attribute subsets; attributes may be multi-valued.
	s := DefaultSchema()
	in := NewInstance(s)

	a := personEntry(t, s, "uid=a, dc=com")
	a.AddClass("inetOrgPerson").AddClass("TOPSSubscriber")
	b := personEntry(t, s, "uid=b, dc=com")
	b.AddClass("inetOrgPerson").AddClass("ntUser")
	for _, e := range []*Entry{a, b} {
		if err := in.Add(e); err != nil {
			t.Fatal(err)
		}
	}

	q1 := personEntry(t, s, "QHPName=q1, uid=a, dc=com")
	q1.AddClass("QHP").Add("startTime", Int(830)).Add("endTime", Int(1730))
	q2 := personEntry(t, s, "QHPName=q2, uid=a, dc=com")
	q2.AddClass("QHP").Add("daysOfWeek", Int(6)).Add("daysOfWeek", Int(7))
	q3 := personEntry(t, s, "QHPName=q3, uid=a, dc=com")
	q3.AddClass("QHP")
	for _, e := range []*Entry{q1, q2, q3} {
		if err := in.Add(e); err != nil {
			t.Fatalf("%s: %v", e.DN(), err)
		}
	}
	if len(q2.Values("daysOfWeek")) != 2 {
		t.Error("multi-valued daysOfWeek lost")
	}
}

func TestInstanceSortedAndRange(t *testing.T) {
	s := DefaultSchema()
	in := NewInstance(s)
	dns := []string{
		"dc=com",
		"dc=att, dc=com",
		"dc=research, dc=att, dc=com",
		"ou=userProfiles, dc=research, dc=att, dc=com",
		"dc=ibm, dc=com",
	}
	r := rand.New(rand.NewSource(1))
	r.Shuffle(len(dns), func(i, j int) { dns[i], dns[j] = dns[j], dns[i] })
	for _, d := range dns {
		e, err := NewEntryFromDN(s, MustParseDN(d))
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(d, "ou=") {
			e.AddClass("organizationalUnit")
		} else {
			e.AddClass("dcObject")
		}
		if err := in.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	es := in.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].Key() >= es[i].Key() {
			t.Fatal("entries not strictly sorted by key")
		}
	}

	att := MustParseDN("dc=att, dc=com")
	var sub []string
	in.Range(att.Key(), SubtreeHigh(att.Key()), func(e *Entry) bool {
		sub = append(sub, e.DN().String())
		return true
	})
	if len(sub) != 3 {
		t.Fatalf("subtree of att: %v", sub)
	}
	if sub[0] != "dc=att, dc=com" {
		t.Errorf("range must start at root of subtree, got %v", sub)
	}

	kids := in.Children(att)
	if len(kids) != 1 || kids[0].DN().String() != "dc=research, dc=att, dc=com" {
		t.Errorf("Children(att) = %v", kids)
	}
	desc := in.Descendants(att)
	if len(desc) != 2 {
		t.Errorf("Descendants(att) = %d entries", len(desc))
	}

	if e, okGet := in.Get(att); !okGet || e.DN().String() != "dc=att, dc=com" {
		t.Error("Get(att) failed")
	}
	if in.Len() != 5 {
		t.Errorf("Len = %d", in.Len())
	}
}

func TestInstanceRemoveAndRoots(t *testing.T) {
	s := DefaultSchema()
	in := NewInstance(s)
	for _, d := range []string{"dc=com", "dc=att, dc=com", "dc=research, dc=att, dc=com"} {
		e, _ := NewEntryFromDN(s, MustParseDN(d))
		e.AddClass("dcObject")
		in.MustAdd(e)
	}
	if roots := in.Roots(); len(roots) != 1 {
		t.Fatalf("roots = %d", len(roots))
	}
	if !in.Remove(MustParseDN("dc=att, dc=com")) {
		t.Fatal("remove failed")
	}
	if in.Remove(MustParseDN("dc=att, dc=com")) {
		t.Fatal("double remove succeeded")
	}
	// research is now an orphan root: forest property.
	roots := in.Roots()
	if len(roots) != 2 {
		t.Fatalf("after removal roots = %d, want 2 (forest)", len(roots))
	}
	if err := in.Validate(false); err != nil {
		t.Fatalf("lenient validate: %v", err)
	}
	if err := in.Validate(true); err == nil {
		t.Fatal("strict validate should reject orphan")
	}
}
