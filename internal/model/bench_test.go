package model

import (
	"fmt"
	"testing"
)

func BenchmarkParseDN(b *testing.B) {
	s := "CANumber=9733608751, QHPName=workinghours, uid=jag, ou=userProfiles, dc=research, dc=att, dc=com"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseDN(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNKey(b *testing.B) {
	dn := MustParseDN("CANumber=9733608751, QHPName=workinghours, uid=jag, ou=userProfiles, dc=research, dc=att, dc=com")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dn.Key()
	}
}

func BenchmarkKeyIsAncestor(b *testing.B) {
	a := MustParseDN("dc=att, dc=com").Key()
	d := MustParseDN("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com").Key()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !KeyIsAncestor(a, d) {
			b.Fatal("wrong")
		}
	}
}

func BenchmarkInstanceAdd(b *testing.B) {
	s := DefaultSchema()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := NewInstance(s)
		for j := 0; j < 100; j++ {
			e, err := NewEntryFromDN(s, MustParseDN(fmt.Sprintf("uid=u%03d, dc=com", j)))
			if err != nil {
				b.Fatal(err)
			}
			e.AddClass("inetOrgPerson")
			in.MustAdd(e)
		}
	}
}
