// Package model implements the core of the network directory data model of
// "Querying Network Directories" (Jagadish, Lakshmanan, Milo, Srivastava,
// Vista; SIGMOD 1999), Section 3.
//
// A directory schema (Definition 3.1) is a 4-tuple S = (C, A, tau, psi):
// a finite set of class names, a finite set of attributes containing
// objectClass, a typing function tau from attributes to types, and a
// function psi assigning each class its set of allowed attributes.
//
// A directory instance (Definition 3.2) is a finite forest of directory
// entries. Each entry belongs to a non-empty set of classes, holds a
// multiset of (attribute, value) pairs constrained by its classes, and is
// keyed by a distinguished name: a sequence of relative distinguished
// names (RDNs), each an arbitrary non-empty set of (attribute, value)
// pairs. The DN sequence runs leaf-first: dn(child) = rdn(child), dn(parent).
//
// The package also provides the reverse-DN sort key of Section 4.2: the
// lexicographic ordering on the reverse of the string representation of
// distinguished names, under which a parent's key is a strict prefix of
// each of its children's keys. All evaluation algorithms in this
// repository operate on lists sorted by this key.
package model
