package filter

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func testEntry(t *testing.T) (*model.Schema, *model.Entry) {
	t.Helper()
	s := model.DefaultSchema()
	e, err := model.NewEntryFromDN(s, model.MustParseDN("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com"))
	if err != nil {
		t.Fatal(err)
	}
	e.AddClass("inetOrgPerson").AddClass("TOPSSubscriber")
	e.Add("surName", model.String("jagadish"))
	e.Add("commonName", model.String("h jagadish"))
	e.Add("telephoneNumber", model.String("9733608776"))
	e.Add("priority", model.Int(2))
	e.Add("priority", model.Int(7))
	e.Add("SLATPRef", model.DNValue(model.MustParseDN("TPName=lsplitOff, dc=com")))
	return s, e
}

func TestAtomPresence(t *testing.T) {
	s, e := testEntry(t)
	if !Present("surName").Matches(s, e) {
		t.Error("surName=* should match")
	}
	if !Present("telephoneNumber").Matches(s, e) {
		t.Error("telephoneNumber=* should match (Sect 4.1 example)")
	}
	if Present("mail").Matches(s, e) {
		t.Error("mail=* should not match")
	}
}

func TestAtomIntComparisons(t *testing.T) {
	s, e := testEntry(t)
	cases := []struct {
		f    string
		want bool
	}{
		{"priority<3", true},  // value 2 matches (SLARulePriority < 3 style)
		{"priority<2", false}, // 2 and 7 both >= 2
		{"priority<=2", true},
		{"priority>6", true}, // value 7
		{"priority>=7", true},
		{"priority>7", false},
		{"priority=7", true},
		{"priority=3", false},
	}
	for _, c := range cases {
		f, err := Parse(c.f)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.f, err)
		}
		if got := f.Matches(s, e); got != c.want {
			t.Errorf("%q = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestAtomIntAgainstNonInt(t *testing.T) {
	s, e := testEntry(t)
	// tau(a)=int required for < filters (Sect 4.1): surName is string, so
	// surName<zzz uses string order; priority=x (non-numeric operand) is false.
	f := NewAtom("priority", OpEq, "notanumber")
	if f.Matches(s, e) {
		t.Error("non-numeric operand must not match int attribute")
	}
}

func TestAtomWildcard(t *testing.T) {
	s, e := testEntry(t)
	cases := []struct {
		f    string
		want bool
	}{
		{"commonName=*jag*", true}, // the paper's example
		{"commonName=h *", true},
		{"commonName=*dish", true},
		{"commonName=h*j*sh", true},
		{"commonName=x*", false},
		{"surName=jagadish", true},
		{"surName=jagadis", false},
		{"surName=*a*a*", true},
		{"surName=*z*", false},
	}
	for _, c := range cases {
		f, err := Parse(c.f)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.f, err)
		}
		if got := f.Matches(s, e); got != c.want {
			t.Errorf("%q = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestWildcardMatchProperty(t *testing.T) {
	// Property: WildcardMatch agrees with a simple regexp-free oracle on
	// random strings/patterns over a tiny alphabet.
	r := rand.New(rand.NewSource(3))
	randStr := func(n int) string {
		b := make([]byte, r.Intn(n))
		for i := range b {
			b[i] = byte('a' + r.Intn(3))
		}
		return string(b)
	}
	f := func() bool {
		s := randStr(12)
		pat := randStr(8)
		// Inject stars.
		for i := 0; i < r.Intn(3); i++ {
			p := r.Intn(len(pat) + 1)
			pat = pat[:p] + "*" + pat[p:]
		}
		got := WildcardMatch(strings.Split(pat, "*"), s)
		want := greedyOracle(pat, s)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// greedyOracle is an exponential-time but obviously-correct wildcard
// matcher used to validate WildcardMatch.
func greedyOracle(pat, s string) bool {
	if pat == "" {
		return s == ""
	}
	if pat[0] == '*' {
		for i := 0; i <= len(s); i++ {
			if greedyOracle(pat[1:], s[i:]) {
				return true
			}
		}
		return false
	}
	return s != "" && s[0] == pat[0] && greedyOracle(pat[1:], s[1:])
}

func TestAtomDNEquality(t *testing.T) {
	s, e := testEntry(t)
	f := NewAtom("SLATPRef", OpEq, "tpname=lsplitOff,dc=com")
	if !f.Matches(s, e) {
		t.Error("DN equality should normalize spacing and case of attrs")
	}
	f2 := NewAtom("SLATPRef", OpEq, "tpname=other,dc=com")
	if f2.Matches(s, e) {
		t.Error("different DN must not match")
	}
}

func TestCompositeFilters(t *testing.T) {
	s, e := testEntry(t)
	cases := []struct {
		f    string
		want bool
	}{
		{"(&(surName=jagadish)(priority<3))", true},
		{"(&(surName=jagadish)(priority<2))", false},
		{"(|(surName=nobody)(priority=7))", true},
		{"(|(surName=nobody)(priority=3))", false},
		{"(!(mail=*))", true},
		{"(!(surName=*))", false},
		{"(&(objectClass=inetOrgPerson)(!(objectClass=ntUser)))", true},
		{"(&(|(surName=jag*)(commonName=*jag*))(priority>=2))", true},
	}
	for _, c := range cases {
		f, err := Parse(c.f)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.f, err)
		}
		if got := f.Matches(s, e); got != c.want {
			t.Errorf("%q = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "(", "()", "(&)", "(&(a=b)", "(!(a=b)", "noop", "(<5)", "surname<",
		"(& (a=b) trailing",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		} else if !errors.Is(err, ErrParse) {
			t.Errorf("Parse(%q): error not ErrParse: %v", bad, err)
		}
	}
	if _, err := Parse("(a=b))"); err == nil {
		t.Error("trailing paren should fail")
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"surname=jagadish",
		"priority<=2",
		"telephonenumber=*",
		"(&(surname=jag*)(priority<3))",
		"(|(a=1)(b=2)(c=3))",
		"(!(mail=*))",
		"(&(|(a=1)(b=2))(!(c=3)))",
	}
	for _, c := range cases {
		f, err := Parse(c)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c, err)
		}
		f2, err := Parse(f.String())
		if err != nil {
			t.Fatalf("re-parse %q -> %q: %v", c, f.String(), err)
		}
		if f.String() != f2.String() {
			t.Errorf("round trip unstable: %q -> %q -> %q", c, f.String(), f2.String())
		}
	}
}

func TestParseAtomRejectsComposite(t *testing.T) {
	if _, err := ParseAtom("(&(a=1)(b=2))"); err == nil {
		t.Fatal("ParseAtom must reject composites")
	}
	a, err := ParseAtom("SLARulePriority<3")
	if err != nil || a.Op != OpLT || a.Attr != "slarulepriority" {
		t.Fatalf("ParseAtom: %+v, %v", a, err)
	}
}

func TestApprox(t *testing.T) {
	s, e := testEntry(t)
	f, err := Parse("surName~=JAGADISH")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Matches(s, e) {
		t.Error("~= should be case-insensitive")
	}
}

func TestOperatorPrecedenceInAtomText(t *testing.T) {
	// "<=" must win over "<".
	a, err := ParseAtom("x<=5")
	if err != nil || a.Op != OpLE {
		t.Fatalf("got %v %v", a, err)
	}
	a, err = ParseAtom("x>=5")
	if err != nil || a.Op != OpGE {
		t.Fatalf("got %v %v", a, err)
	}
}
