package filter

import (
	"regexp"
	"strings"
	"testing"
	"unicode/utf8"
)

// wildcardOracle compiles the pattern's literal segments into the
// equivalent anchored regexp: '*' becomes '.*' (dot-all, so newlines
// behave like any other byte) and everything else is quoted.
func wildcardOracle(segments []string) *regexp.Regexp {
	quoted := make([]string, len(segments))
	for i, seg := range segments {
		quoted[i] = regexp.QuoteMeta(seg)
	}
	return regexp.MustCompile(`(?s)\A` + strings.Join(quoted, `.*`) + `\z`)
}

// naiveMatch is an obviously-correct reference matcher: segment 0 is
// anchored at the front, the last segment at the back, and every middle
// segment may start at any position after the previous one. Memoized on
// (segment, offset) so adversarial inputs stay polynomial.
func naiveMatch(segments []string, s string) bool {
	if len(segments) == 0 {
		return s == ""
	}
	if len(segments) == 1 {
		return s == segments[0]
	}
	type key struct{ si, off int }
	memo := map[key]bool{}
	var rec func(si, off int) bool
	rec = func(si, off int) bool {
		seg := segments[si]
		if si == len(segments)-1 {
			// Last segment: a '*' precedes it, so it just has to fit
			// at the very end of what's left.
			return len(s)-off >= len(seg) && strings.HasSuffix(s, seg)
		}
		k := key{si, off}
		if v, ok := memo[k]; ok {
			return v
		}
		res := false
		for i := off; i+len(seg) <= len(s); i++ {
			if s[i:i+len(seg)] == seg && rec(si+1, i+len(seg)) {
				res = true
				break
			}
		}
		memo[k] = res
		return res
	}
	if !strings.HasPrefix(s, segments[0]) {
		return false
	}
	return rec(1, len(segments[0]))
}

// FuzzWildcardMatch cross-checks the hand-rolled greedy matcher against
// a naive recursive reference and (for valid UTF-8, which is all the
// regexp package accepts) a regexp built from the same pattern.
func FuzzWildcardMatch(f *testing.F) {
	f.Add("jag*", "jagadish")
	f.Add("*dish", "jagadish")
	f.Add("j*ga*sh", "jagadish")
	f.Add("a*a", "a")
	f.Add("**", "")
	f.Add("", "")
	f.Add("ab*ba", "aba")
	f.Add("*", "anything\nat all")
	f.Fuzz(func(t *testing.T, pattern, s string) {
		if len(pattern)+len(s) > 1<<12 {
			return // keep the quadratic reference matcher cheap
		}
		segments := strings.Split(pattern, "*")
		got := WildcardMatch(segments, s)
		if want := naiveMatch(segments, s); got != want {
			t.Fatalf("WildcardMatch(%q, %q) = %v, reference says %v", pattern, s, got, want)
		}
		// The regexp package only accepts valid UTF-8.
		if utf8.ValidString(pattern) && utf8.ValidString(s) {
			if want := wildcardOracle(segments).MatchString(s); got != want {
				t.Fatalf("WildcardMatch(%q, %q) = %v, regexp says %v", pattern, s, got, want)
			}
		}
	})
}

// FuzzParseFilter checks that any filter the parser accepts re-parses
// from its own rendering to the same rendering (print/parse fixpoint)
// and that matching never panics.
func FuzzParseFilter(f *testing.F) {
	f.Add("(&(objectClass=QHP)(priority<=2))")
	f.Add("(|(surName=jagadish)(surName=jag*))")
	f.Add("(!(telephoneNumber=*))")
	f.Add("surName~=JAG")
	f.Add("knn(embedding,[0.5,-1.25],3)")
	f.Add("knn(embedding,[1e30,-1e-30,0],10)")
	f.Add("(&(objectClass=device)knn(embedding,[1,2],1))")
	f.Add("knn(embedding,[],1)")     // empty vector: reject
	f.Add("knn(embedding,[NaN],1)")  // non-finite: reject
	f.Add("knn(embedding,[1,2)")     // unclosed bracket: reject
	f.Add("knn(embedding,[1,2],0)")  // k < 1: reject
	f.Add("knn(embedding,[1,2],+3)") // non-canonical k: reject
	f.Add("knn(embedding,[1,,2],2)") // empty component: reject
	f.Add("knn(,[1],1)")             // missing attribute: reject
	f.Fuzz(func(t *testing.T, text string) {
		fl, err := Parse(text)
		if err != nil {
			return
		}
		rendered := fl.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering %q of accepted filter %q does not re-parse: %v", rendered, text, err)
		}
		if back.String() != rendered {
			t.Fatalf("print/parse not a fixpoint: %q -> %q -> %q", text, rendered, back.String())
		}
	})
}
