// Package filter implements the atomic filters of Section 4.1 of
// "Querying Network Directories" and, for the LDAP baseline language,
// RFC 2254-style composite filters (boolean combinations of atomic
// filters evaluated against a single entry).
//
// A directory entry satisfies an atomic filter if at least one of its
// (attribute, value) pairs satisfies it:
//
//	r |= a=*   iff  exists v. (a, v) in val(r)                 (presence)
//	r |= a<v1  iff  tau(a)=int and exists v2. (a,v2) in val(r), v2<v1
//	r |= a=p   iff  tau(a)=string and some value matches the wildcard
//	               pattern p (substring per RFC 2254), or the value/
//	               pattern are equal for int and dn attributes.
package filter

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/model"
)

// Op is the comparison operator of an atomic filter.
type Op uint8

// Comparison operators. OpPresent is the `a=*` test; OpEq covers both
// exact equality and wildcard string matching (the pattern may contain
// '*').
const (
	OpInvalid Op = iota
	OpPresent
	OpEq
	OpLT
	OpLE
	OpGT
	OpGE
	OpApprox // ~= treated as case-insensitive equality
	OpKNN    // knn(attr, [v1,...], k): k nearest neighbors by L2 distance
)

func (o Op) String() string {
	switch o {
	case OpPresent:
		return "=*"
	case OpEq:
		return "="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpApprox:
		return "~="
	case OpKNN:
		return "knn"
	default:
		return "?"
	}
}

// Filter is a predicate over a single directory entry. Atomic filters and
// (for LDAP) boolean combinations implement it.
type Filter interface {
	// Matches reports r |= F under schema s.
	Matches(s *model.Schema, r *model.Entry) bool
	// String renders the filter in the paper's surface syntax.
	String() string
	// Atomic reports whether the filter is a single atomic comparison
	// (the only kind admitted inside L0..L3 atomic queries).
	Atomic() bool
}

// Atom is an atomic filter: one attribute, one operator, one operand.
// For OpKNN the operand is the query vector Vec plus the neighbor count
// K, and the filter is not a per-entry predicate: it selects the K
// entries of the scoped candidate set nearest to Vec (squared L2,
// ties broken by reverse-DN key). Matches then only reports candidacy —
// whether the entry carries a vector of the right dimension.
type Atom struct {
	Attr    string
	Op      Op
	Operand string // textual operand; for OpEq on strings may hold '*'
	Vec     []float32
	K       int
	pattern []string
	isPat   bool
	intVal  int64
	isInt   bool
}

// NewAtom builds an atomic filter. The operand is interpreted lazily
// against the schema at match time, but wildcard/integer forms are
// pre-parsed here for speed.
func NewAtom(attr string, op Op, operand string) *Atom {
	a := &Atom{Attr: model.NormalizeAttr(attr), Op: op, Operand: operand}
	if a.Attr == model.ObjectClass {
		// Class names are case-insensitive and stored normalized.
		operand = strings.ToLower(operand)
		a.Operand = operand
	}
	if strings.Contains(operand, "*") && op == OpEq {
		a.isPat = true
		a.pattern = strings.Split(operand, "*")
	}
	if iv, err := strconv.ParseInt(strings.TrimSpace(operand), 10, 64); err == nil {
		a.intVal, a.isInt = iv, true
	}
	return a
}

// Present returns the presence filter attr=*.
func Present(attr string) *Atom { return NewAtom(attr, OpPresent, "") }

// Eq returns the equality/wildcard filter attr=operand.
func Eq(attr, operand string) *Atom { return NewAtom(attr, OpEq, operand) }

// MaxKNNK bounds the neighbor count a knn filter may request; it keeps
// hostile query text from demanding absurd result sets.
const MaxKNNK = 1 << 20

// NewKNN builds the k-nearest-neighbor filter knn(attr, vec, k). The
// vector is copied. Dimension agreement with the schema is checked at
// query validation time, not here.
func NewKNN(attr string, vec []float32, k int) *Atom {
	cp := make([]float32, len(vec))
	copy(cp, vec)
	return &Atom{Attr: model.NormalizeAttr(attr), Op: OpKNN, Vec: cp, K: k}
}

// Atomic reports true.
func (a *Atom) Atomic() bool { return true }

func (a *Atom) String() string {
	if a.Op == OpPresent {
		return a.Attr + "=*"
	}
	if a.Op == OpKNN {
		return "knn(" + a.Attr + "," + model.FormatVector(a.Vec) + "," + strconv.Itoa(a.K) + ")"
	}
	return a.Attr + a.Op.String() + a.Operand
}

// Matches implements the satisfaction relation r |= F of Section 4.1.
// For OpKNN it reports candidacy only (see Atom); true top-k selection
// happens in the store's evaluation, which sees the whole candidate set.
func (a *Atom) Matches(s *model.Schema, r *model.Entry) bool {
	if a.Op == OpPresent {
		return r.Has(a.Attr)
	}
	if a.Op == OpKNN {
		for _, v := range r.Values(a.Attr) {
			if v.Kind() == model.KindVector && len(v.Vec()) == len(a.Vec) {
				return true
			}
		}
		return false
	}
	t, ok := s.AttrType(a.Attr)
	if !ok {
		return false
	}
	for _, v := range r.Values(a.Attr) {
		if a.matchValue(t, v) {
			return true
		}
	}
	return false
}

func (a *Atom) matchValue(t model.TypeName, v model.Value) bool {
	switch model.TypeKind(t) {
	case model.KindInt:
		if !a.isInt {
			return false
		}
		x := v.Int()
		switch a.Op {
		case OpEq, OpApprox:
			return x == a.intVal
		case OpLT:
			return x < a.intVal
		case OpLE:
			return x <= a.intVal
		case OpGT:
			return x > a.intVal
		case OpGE:
			return x >= a.intVal
		}
		return false
	case model.KindDN:
		if a.Op != OpEq && a.Op != OpApprox {
			return false
		}
		want, err := model.ParseDN(a.Operand)
		if err != nil {
			return false
		}
		return v.DN().Equal(want)
	case model.KindVector:
		if a.Op != OpEq && a.Op != OpApprox {
			return false
		}
		want, err := model.ParseVector(a.Operand)
		if err != nil {
			return false
		}
		return v.Equal(model.VectorValue(want))
	default: // string
		sv := v.Str()
		switch a.Op {
		case OpEq:
			if a.isPat {
				return WildcardMatch(a.pattern, sv)
			}
			return sv == a.Operand
		case OpApprox:
			return strings.EqualFold(sv, a.Operand)
		case OpLT:
			return sv < a.Operand
		case OpLE:
			return sv <= a.Operand
		case OpGT:
			return sv > a.Operand
		case OpGE:
			return sv >= a.Operand
		}
		return false
	}
}

// WildcardMatch reports whether s matches the pattern whose literal
// segments (the pieces between '*'s, as produced by strings.Split on "*")
// are given. An empty leading/trailing segment corresponds to a
// leading/trailing '*'.
func WildcardMatch(segments []string, s string) bool {
	if len(segments) == 0 {
		return s == ""
	}
	if len(segments) == 1 {
		return s == segments[0]
	}
	if !strings.HasPrefix(s, segments[0]) {
		return false
	}
	s = s[len(segments[0]):]
	last := segments[len(segments)-1]
	if !strings.HasSuffix(s, last) {
		return false
	}
	s = s[:len(s)-len(last)]
	for _, seg := range segments[1 : len(segments)-1] {
		if seg == "" {
			continue
		}
		i := strings.Index(s, seg)
		if i < 0 {
			return false
		}
		s = s[i+len(seg):]
	}
	return true
}

// And, Or, Not are the boolean combinations admitted in LDAP filters
// (Section 4.2 notes LDAP combines *filters*, not queries, with &, |, !).
type And []Filter

// Or is the disjunction of its operand filters.
type Or []Filter

// Not negates its operand filter.
type Not struct{ F Filter }

// Atomic reports false for composite filters.
func (f And) Atomic() bool { return false }

// Atomic reports false for composite filters.
func (f Or) Atomic() bool { return false }

// Atomic reports false for composite filters.
func (f Not) Atomic() bool { return false }

// Matches reports whether every conjunct matches.
func (f And) Matches(s *model.Schema, r *model.Entry) bool {
	for _, c := range f {
		if !c.Matches(s, r) {
			return false
		}
	}
	return true
}

// Matches reports whether any disjunct matches.
func (f Or) Matches(s *model.Schema, r *model.Entry) bool {
	for _, c := range f {
		if c.Matches(s, r) {
			return true
		}
	}
	return false
}

// Matches reports whether the operand does not match.
func (f Not) Matches(s *model.Schema, r *model.Entry) bool {
	return !f.F.Matches(s, r)
}

func (f And) String() string { return compositeString("&", f) }
func (f Or) String() string  { return compositeString("|", f) }
func (f Not) String() string { return "(!" + f.F.String() + ")" }

func compositeString(op string, fs []Filter) string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(op)
	for _, f := range fs {
		if f.Atomic() {
			b.WriteByte('(')
			b.WriteString(f.String())
			b.WriteByte(')')
		} else {
			b.WriteString(f.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

// ErrParse reports a malformed filter string.
var ErrParse = errors.New("filter: parse error")

// Parse parses a filter in RFC 2254-ish syntax:
//
//	(&(objectClass=QHP)(priority<=2))
//	(|(surName=jagadish)(surName=jag*))
//	(!(telephoneNumber=*))
//	surName=jagadish            (bare atomic, no parens)
//
// Operators: = (with '*' wildcards), <, <=, >, >=, ~=, and presence =*.
func Parse(s string) (Filter, error) {
	p := &parser{s: strings.TrimSpace(s)}
	f, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.i != len(p.s) {
		return nil, fmt.Errorf("%w: trailing input %q", ErrParse, p.s[p.i:])
	}
	return f, nil
}

// ParseAtom parses a single atomic filter (no parens, no boolean
// operators) — the only filter form the L0..L3 grammars admit inside an
// atomic query.
func ParseAtom(s string) (*Atom, error) {
	f, err := Parse(s)
	if err != nil {
		return nil, err
	}
	a, ok := f.(*Atom)
	if !ok {
		return nil, fmt.Errorf("%w: %q is not an atomic filter", ErrParse, s)
	}
	return a, nil
}

type parser struct {
	s string
	i int
}

func (p *parser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *parser) parse() (Filter, error) {
	p.skipSpace()
	if p.i >= len(p.s) {
		return nil, fmt.Errorf("%w: empty filter", ErrParse)
	}
	if p.s[p.i] != '(' {
		// Bare atomic form. Parens balance so that bare knn(...) — whose
		// argument list is parenthesized — consumes through its own
		// closing paren rather than stopping at it.
		start := p.i
		depth := 0
		for p.i < len(p.s) {
			switch p.s[p.i] {
			case '(':
				depth++
			case ')':
				if depth == 0 {
					return parseAtomText(p.s[start:p.i])
				}
				depth--
			}
			p.i++
		}
		return parseAtomText(p.s[start:p.i])
	}
	p.i++ // consume '('
	p.skipSpace()
	if p.i >= len(p.s) {
		return nil, fmt.Errorf("%w: unterminated filter", ErrParse)
	}
	switch p.s[p.i] {
	case '&', '|':
		op := p.s[p.i]
		p.i++
		var kids []Filter
		for {
			p.skipSpace()
			if p.i < len(p.s) && p.s[p.i] == ')' {
				p.i++
				break
			}
			k, err := p.parse()
			if err != nil {
				return nil, err
			}
			kids = append(kids, k)
		}
		if len(kids) == 0 {
			return nil, fmt.Errorf("%w: empty boolean filter", ErrParse)
		}
		if op == '&' {
			return And(kids), nil
		}
		return Or(kids), nil
	case '!':
		p.i++
		k, err := p.parse()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.i >= len(p.s) || p.s[p.i] != ')' {
			return nil, fmt.Errorf("%w: expected ')' after !", ErrParse)
		}
		p.i++
		return Not{F: k}, nil
	default:
		start := p.i
		depth := 0
		for p.i < len(p.s) {
			if p.s[p.i] == '(' {
				depth++
			}
			if p.s[p.i] == ')' {
				if depth == 0 {
					break
				}
				depth--
			}
			p.i++
		}
		if p.i >= len(p.s) {
			return nil, fmt.Errorf("%w: unterminated atom", ErrParse)
		}
		a, err := parseAtomText(p.s[start:p.i])
		if err != nil {
			return nil, err
		}
		p.i++ // consume ')'
		return a, nil
	}
}

func parseAtomText(s string) (*Atom, error) {
	s = strings.TrimSpace(s)
	// The knn(...) function form is recognized before the binary
	// operators — its argument list contains no top-level operator, and
	// its parens would otherwise trip the reserved-character check.
	if len(s) >= 4 && strings.EqualFold(s[:4], "knn(") {
		return parseKNNText(s)
	}
	// Longest operators first. A candidate split only counts when the
	// left side is a well-formed attribute name; otherwise the next
	// operator gets a chance (so "a=b<c" splits at '=', not '<').
	for _, cand := range []struct {
		text string
		op   Op
	}{
		{"<=", OpLE}, {">=", OpGE}, {"~=", OpApprox}, {"<", OpLT}, {">", OpGT}, {"=", OpEq},
	} {
		i := strings.Index(s, cand.text)
		if i <= 0 {
			continue
		}
		attr := strings.TrimSpace(s[:i])
		if !validAttrName(attr) {
			continue
		}
		operand := strings.TrimSpace(s[i+len(cand.text):])
		if strings.ContainsAny(operand, "()?") {
			// The renderer does not escape, so parens in an operand
			// produce a string that cannot re-parse, and '?' collides
			// with the query language's base?scope?filter separator.
			return nil, fmt.Errorf("%w: reserved character in operand %q", ErrParse, operand)
		}
		if (cand.op == OpLT || cand.op == OpGT) && strings.HasPrefix(operand, "=") {
			// "a< =b" would render as "a<=b" and re-parse as OpLE.
			return nil, fmt.Errorf("%w: ambiguous operand %q after %q", ErrParse, operand, cand.text)
		}
		if cand.op == OpEq && operand == "*" {
			return Present(attr), nil
		}
		if operand == "" && cand.op != OpEq {
			return nil, fmt.Errorf("%w: missing operand in %q", ErrParse, s)
		}
		return NewAtom(attr, cand.op, operand), nil
	}
	return nil, fmt.Errorf("%w: no atomic filter in %q", ErrParse, s)
}

// parseKNNText parses "knn(attr,[v1,...],k)". The argument list splits
// at commas outside the vector's brackets; the vector follows the model
// text form (finite float32 components), and k must be a positive
// integer no larger than MaxKNNK.
func parseKNNText(s string) (*Atom, error) {
	if !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("%w: unterminated knn filter %q", ErrParse, s)
	}
	inner := s[4 : len(s)-1]
	var args []string
	depth, start := 0, 0
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				args = append(args, inner[start:i])
				start = i + 1
			}
		}
	}
	args = append(args, inner[start:])
	if len(args) != 3 {
		return nil, fmt.Errorf("%w: knn wants (attr,vector,k), got %d argument(s) in %q", ErrParse, len(args), s)
	}
	attr := strings.TrimSpace(args[0])
	if !validAttrName(attr) {
		return nil, fmt.Errorf("%w: bad attribute %q in knn filter", ErrParse, attr)
	}
	vec, err := model.ParseVector(args[1])
	if err != nil {
		return nil, fmt.Errorf("%w: knn vector: %v", ErrParse, err)
	}
	kText := strings.TrimSpace(args[2])
	k, err := strconv.Atoi(kText)
	if err != nil || k < 1 || k > MaxKNNK || strconv.Itoa(k) != kText {
		return nil, fmt.Errorf("%w: knn count %q (want 1..%d)", ErrParse, args[2], MaxKNNK)
	}
	return NewKNN(attr, vec, k), nil
}

// validAttrName restricts attribute names to LDAP attribute-description
// shape: letters, digits, '-', '_', '.' and ';'. Without this check the
// parser accepts garbage like "((=))" (attribute "(") and then renders
// filters that do not re-parse.
func validAttrName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '-', c == '_', c == '.', c == ';':
		default:
			return false
		}
	}
	return true
}
