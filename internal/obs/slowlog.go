package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowRecord is one slow-query log line: everything an operator needs
// to find the query again (kind + text), what it cost (wall time, page
// I/O, result size), what happened (error, if any), and how to
// correlate it — Gen ties the record to the store generation the query
// evaluated against (so a slow query can be matched to the cache
// invalidations and checkpoints around it), and Trace carries the
// query's trace ID when one was assigned, the key into the flight
// recorder's /debug/queries. Serialized as a single JSON object per
// line so the log is greppable and machine-ingestable at once.
type SlowRecord struct {
	TS      string  `json:"ts"` // RFC3339Nano, UTC
	Kind    string  `json:"kind"`
	Query   string  `json:"query"`
	Ms      float64 `json:"ms"`
	IO      int64   `json:"io"`
	Entries int     `json:"entries"`
	Gen     int64   `json:"gen"`
	Trace   string  `json:"trace,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// SlowLog emits structured one-line JSON records for queries that
// exceed a latency or page-I/O threshold. It is safe for concurrent
// use; records are written atomically line-by-line.
type SlowLog struct {
	minLatency time.Duration
	minIO      int64

	mu  sync.Mutex
	enc *json.Encoder
}

// NewSlowLog creates a slow-query log writing to w. A query is logged
// when its latency reaches minLatency or its page I/O reaches minIO
// (a zero threshold disables that dimension; both zero logs every
// query — the firehose is occasionally what you want). Errors are
// always logged: a failed query is slow in the way that matters.
func NewSlowLog(w io.Writer, minLatency time.Duration, minIO int64) *SlowLog {
	return &SlowLog{minLatency: minLatency, minIO: minIO, enc: json.NewEncoder(w)}
}

// Record logs the query if it crosses a threshold, reporting whether a
// line was emitted. gen is the store generation the query evaluated
// against and trace its trace ID ("" when untraced) — both land on
// every emitted record so slow queries can be correlated with cache
// invalidations and looked up in the flight recorder.
func (s *SlowLog) Record(kind, query string, gen int64, trace string, d time.Duration, ioPages int64, entries int, err error) bool {
	if s == nil {
		return false
	}
	slow := err != nil ||
		(s.minLatency > 0 && d >= s.minLatency) ||
		(s.minIO > 0 && ioPages >= s.minIO) ||
		(s.minLatency == 0 && s.minIO == 0)
	if !slow {
		return false
	}
	rec := SlowRecord{
		TS:      time.Now().UTC().Format(time.RFC3339Nano),
		Kind:    kind,
		Query:   query,
		Ms:      float64(d.Microseconds()) / 1000,
		IO:      ioPages,
		Entries: entries,
		Gen:     gen,
		Trace:   trace,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(rec) == nil
}
