package obs

import (
	"sync"
	"time"
)

// FlightRecord is one completed query trace retained by the flight
// recorder: the full span tree plus everything needed to find, filter,
// and correlate it after the fact — canonical query text, the store
// generation it evaluated against, its cost, and a result hash (so two
// records can be compared for answer drift without retaining the
// entries themselves).
type FlightRecord struct {
	Seq     uint64        `json:"seq"` // monotone per recorder; newer is larger
	TraceID string        `json:"trace"`
	TS      time.Time     `json:"ts"` // completion time, UTC
	Kind    string        `json:"kind"`
	Query   string        `json:"query"` // canonical text
	Gen     int64         `json:"gen"`
	Dur     time.Duration `json:"dur"`
	IO      int64         `json:"io"` // total page accesses (local process)
	Entries int           `json:"entries"`
	Hash    uint64        `json:"hash,omitempty"` // FNV-1a over the marshalled result
	Err     string        `json:"err,omitempty"`
	Root    *Span         `json:"root,omitempty"` // the span tree (remote subtrees included)
}

// FlightRecorder retains the last N completed query traces in a ring
// buffer — a post-hoc debugger for slow queries: where the slow-query
// log keeps one summary line, the recorder keeps the whole span tree,
// inspectable at /debug/queries without reproducing the query.
//
// Recording is cheap relative to the traced evaluation it documents:
// one short mutex acquisition storing one pointer into a fixed ring
// (the span tree was already built by the tracer). All methods are safe
// for concurrent use; a nil *FlightRecorder is a valid no-op receiver.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []*FlightRecord
	next int    // ring index of the next write
	seq  uint64 // total records ever written
}

// NewFlightRecorder creates a recorder retaining the last n traces
// (minimum 1).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = 1
	}
	return &FlightRecorder{ring: make([]*FlightRecord, n)}
}

// Record retains one completed trace, evicting the oldest when the ring
// is full (nil-safe). The record's Seq and TS are assigned here.
func (f *FlightRecorder) Record(rec *FlightRecord) {
	if f == nil || rec == nil {
		return
	}
	f.mu.Lock()
	f.seq++
	rec.Seq = f.seq
	if rec.TS.IsZero() {
		rec.TS = time.Now().UTC()
	}
	f.ring[f.next] = rec
	f.next = (f.next + 1) % len(f.ring)
	f.mu.Unlock()
}

// Cap returns the ring's capacity.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// Total returns how many traces were ever recorded (recorded minus
// retained = evicted).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Snapshot returns the retained records, newest first. The records are
// shared (treat them as read-only); the slice is the caller's.
func (f *FlightRecorder) Snapshot() []*FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*FlightRecord, 0, len(f.ring))
	for i := 1; i <= len(f.ring); i++ {
		// Walk backwards from the most recent write.
		rec := f.ring[(f.next-i+len(f.ring))%len(f.ring)]
		if rec == nil {
			break
		}
		out = append(out, rec)
	}
	return out
}

// Get returns the newest retained record with the given trace ID (nil
// if it aged out or never existed).
func (f *FlightRecorder) Get(traceID string) *FlightRecord {
	for _, rec := range f.Snapshot() {
		if rec.TraceID == traceID {
			return rec
		}
	}
	return nil
}

// RegisterMetrics exposes the recorder's counters on reg under the
// given prefix: total traces recorded and how many are currently
// retained.
func (f *FlightRecorder) RegisterMetrics(reg *Registry, prefix string) {
	reg.GaugeFunc(prefix+"_recorded_total", "query traces recorded by the flight recorder",
		func() int64 { return int64(f.Total()) })
	reg.GaugeFunc(prefix+"_retained", "query traces currently retained in the ring",
		func() int64 { return int64(len(f.Snapshot())) })
}
