// Package obs is the observability substrate of the repository: a
// lightweight per-operator tracer, a dependency-free metrics registry
// (counters, gauges, log₂-bucketed histograms), Prometheus-text and
// JSON exposition, a structured slow-query log, and an HTTP admin
// listener serving /metrics, /statusz and /debug/pprof.
//
// The paper's whole argument is an I/O cost model: Sections 8–9 prove
// per-operator page-I/O bounds and validate them experimentally. The
// tracer makes those bounds observable on live queries — every plan
// operator yields a span carrying its wall time, input/output list
// cardinalities, and the exact pager.Stats delta it performed — so a
// query's span tree is the paper's cost tables, live. The metrics
// registry aggregates what the Coordinator, circuit breakers, query
// caches, and servers previously counted ad hoc; see DESIGN.md §8.
//
// Tracing and parallelism: a Tracer is single-goroutine, and a span's
// I/O delta attributes pages to its operator only when operators run
// one at a time (the ownership rule in pager.Stats). The engine
// therefore evaluates serially whenever a tracer rides the context,
// even with Workers > 1 configured — EXPLAIN reports the serial
// plan's exact per-operator costs, while untraced evaluation runs
// parallel (DESIGN.md §9).
package obs

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/pager"
)

// Tag is one key=value annotation on a span (replica address, retry
// count, cache outcome, ...). An ordered slice, not a map: spans carry
// few tags and render deterministically.
type Tag struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span records the evaluation of one plan operator. IO and Dur cover
// the whole subtree (children included); Self* subtract the children,
// so summing Self I/O over a tree reproduces the root's total exactly —
// the conservation law the tracer tests assert against Disk.Stats().
type Span struct {
	Op       string        `json:"op"`               // operator mnemonic: atomic, ldap, &, |, -, p, c, a, d, ac, dc, g, vd, dv
	Detail   string        `json:"detail,omitempty"` // e.g. the atomic query text
	Start    time.Time     `json:"start"`
	Dur      time.Duration `json:"dur"`
	In       []int64       `json:"in,omitempty"` // input list cardinalities
	Out      int64         `json:"out"`          // output list cardinality
	IO       pager.Stats   `json:"io"`           // page I/O of the whole span, children included
	Err      string        `json:"err,omitempty"`
	Tags     []Tag         `json:"tags,omitempty"`
	Children []*Span       `json:"children,omitempty"`

	startIO pager.Stats // disk counters at Start (tracer-internal)
}

// SetIn records the operator's input cardinalities (nil-safe).
func (s *Span) SetIn(in ...int64) {
	if s == nil {
		return
	}
	s.In = in
}

// Tag appends an annotation (nil-safe).
func (s *Span) Tag(key, value string) {
	if s == nil {
		return
	}
	s.Tags = append(s.Tags, Tag{Key: key, Value: value})
}

// TagValue returns the value of the first tag with the given key.
func (s *Span) TagValue(key string) (string, bool) {
	for _, t := range s.Tags {
		if t.Key == key {
			return t.Value, true
		}
	}
	return "", false
}

// SelfIO returns the span's own page I/O: its total minus its
// children's totals. Summed over every span of a tree this equals the
// root's IO exactly (each page access is attributed to exactly one
// span).
func (s *Span) SelfIO() pager.Stats {
	io := s.IO
	for _, c := range s.Children {
		io = io.Sub(c.IO)
	}
	return io
}

// SelfDur returns the span's own wall time, children subtracted
// (clamped at zero: timers are not as exact as I/O counters).
func (s *Span) SelfDur() time.Duration {
	d := s.Dur
	for _, c := range s.Children {
		d -= c.Dur
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Walk visits the span and every descendant, parents first.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// Format renders the span tree as an indented table: one line per
// operator with cardinalities, self and total I/O, and wall time —
// the per-operator cost breakdown of the paper's Section 9 tables,
// measured on this one query.
func (s *Span) Format(w io.Writer) {
	fmt.Fprintln(w, "span tree (per operator: in -> out cardinalities, self/total page I/O, wall time):")
	s.format(w, 0)
	fmt.Fprintf(w, "total: %d page accesses (%s) in %s\n", s.IO.IO(), s.IO, fmtDur(s.Dur))
}

func (s *Span) format(w io.Writer, depth int) {
	indent := strings.Repeat("  ", depth)
	label := s.Op
	if s.Detail != "" {
		label += " " + s.Detail
	}
	in := ""
	if len(s.In) > 0 {
		parts := make([]string, len(s.In))
		for i, n := range s.In {
			parts[i] = fmt.Sprint(n)
		}
		in = strings.Join(parts, ",") + " -> "
	}
	self := s.SelfIO()
	fmt.Fprintf(w, "%s%-*s  %s%d rec  self=%dr+%dw  total=%d io  %s",
		indent, 46-2*depth, label, in, s.Out, self.Reads, self.Writes, s.IO.IO(), fmtDur(s.Dur))
	for _, t := range s.Tags {
		fmt.Fprintf(w, "  %s=%s", t.Key, t.Value)
	}
	if s.Err != "" {
		fmt.Fprintf(w, "  err=%q", s.Err)
	}
	fmt.Fprintln(w)
	for _, c := range s.Children {
		c.format(w, depth+1)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// Tracer builds a span tree while an engine evaluates a query. It is
// carried in the context (WithTracer / FromContext); a nil *Tracer is a
// valid no-op receiver for every method, so instrumented code pays one
// nil check — no allocation, no lock — when tracing is off.
//
// A tracer is single-goroutine, like the evaluation it observes:
// core.Directory and dirserver.Coordinator serialize pipeline
// evaluation, which is also what makes the recorded pager.Stats deltas
// exact (see the ownership rule on pager.Stats).
type Tracer struct {
	src   StatsSource
	stack []*Span
	roots []*Span
}

// StatsSource is anything whose cumulative page-I/O counters a Tracer
// can window: a shared *pager.Disk (exact only under the serialized
// evaluation of the ownership rule) or a per-query *pager.Arena (exact
// even while other queries run, because the arena's counters are
// private to the one evaluation being traced).
type StatsSource interface {
	Stats() pager.Stats
}

// NewTracer creates a tracer recording page-I/O deltas from src.
func NewTracer(src StatsSource) *Tracer {
	return &Tracer{src: src}
}

// Start opens a span as a child of the currently open span (nil-safe).
func (t *Tracer) Start(op, detail string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{Op: op, Detail: detail, Start: time.Now(), startIO: t.src.Stats()}
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		parent.Children = append(parent.Children, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	t.stack = append(t.stack, sp)
	return sp
}

// End closes the span, recording its duration, output cardinality, and
// page-I/O delta (nil-safe).
func (t *Tracer) End(sp *Span, out int64) {
	if t == nil || sp == nil {
		return
	}
	sp.Out = out
	t.close(sp)
}

// Fail closes the span with an error (nil-safe). The I/O performed up
// to the failure is still recorded.
func (t *Tracer) Fail(sp *Span, err error) {
	if t == nil || sp == nil {
		return
	}
	if err != nil {
		sp.Err = err.Error()
	}
	t.close(sp)
}

func (t *Tracer) close(sp *Span) {
	sp.Dur = time.Since(sp.Start)
	sp.IO = t.src.Stats().Sub(sp.startIO)
	// Pop back to sp; a mismatched End (a span closed twice, or out of
	// order) pops conservatively rather than corrupting ancestors.
	for n := len(t.stack); n > 0; n-- {
		if t.stack[n-1] == sp {
			t.stack = t.stack[:n-1]
			return
		}
	}
}

// Annotate tags the innermost open span (nil-safe). Resolvers deep in
// the call chain — the distributed coordinator, most importantly — use
// this to stamp the current atomic's span with replica address, retry
// count, and cache outcome without threading the span through.
func (t *Tracer) Annotate(key, value string) {
	if t == nil || len(t.stack) == 0 {
		return
	}
	t.stack[len(t.stack)-1].Tag(key, value)
}

// Root returns the first completed top-level span (nil if none).
func (t *Tracer) Root() *Span {
	if t == nil || len(t.roots) == 0 {
		return nil
	}
	return t.roots[0]
}

// Roots returns every top-level span recorded by the tracer.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	return t.roots
}

type tracerKey struct{}

// WithTracer returns a context carrying the tracer; the engine picks it
// up at every operator.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext returns the context's tracer, or nil — and nil is a
// valid no-op tracer, so callers never need to branch.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}
