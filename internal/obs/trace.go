// Package obs is the observability substrate of the repository: a
// lightweight per-operator tracer, a dependency-free metrics registry
// (counters, gauges, log₂-bucketed histograms), Prometheus-text and
// JSON exposition, a structured slow-query log, and an HTTP admin
// listener serving /metrics, /statusz and /debug/pprof.
//
// The paper's whole argument is an I/O cost model: Sections 8–9 prove
// per-operator page-I/O bounds and validate them experimentally. The
// tracer makes those bounds observable on live queries — every plan
// operator yields a span carrying its wall time, input/output list
// cardinalities, and the exact pager.Stats delta it performed — so a
// query's span tree is the paper's cost tables, live. The metrics
// registry aggregates what the Coordinator, circuit breakers, query
// caches, and servers previously counted ad hoc; see DESIGN.md §8.
//
// Tracing and parallelism: a Tracer is single-goroutine, and a span's
// I/O delta attributes pages to its operator only when operators run
// one at a time (the ownership rule in pager.Stats). The engine
// therefore evaluates serially whenever a tracer rides the context,
// even with Workers > 1 configured — EXPLAIN reports the serial
// plan's exact per-operator costs, while untraced evaluation runs
// parallel (DESIGN.md §9).
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/pager"
)

// NewTraceID returns a fresh 128-bit trace identifier as 32 lowercase
// hex characters. Every query is assigned one at its entry point (dirq,
// a dirserve handler, or a Coordinator) and the ID rides the dirserver
// wire protocol so all spans of one distributed evaluation — across
// every process it touches — share it.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to the
		// clock rather than refusing to trace.
		now := time.Now().UnixNano()
		for i := 0; i < 8; i++ {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// Tag is one key=value annotation on a span (replica address, retry
// count, cache outcome, ...). An ordered slice, not a map: spans carry
// few tags and render deterministically.
type Tag struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span records the evaluation of one plan operator. IO and Dur cover
// the whole subtree (children included); Self* subtract the children,
// so summing Self I/O over a tree reproduces the root's total exactly —
// the conservation law the tracer tests assert against Disk.Stats().
type Span struct {
	Op       string        `json:"op"`               // operator mnemonic: atomic, ldap, &, |, -, p, c, a, d, ac, dc, g, vd, dv
	Detail   string        `json:"detail,omitempty"` // e.g. the atomic query text
	Start    time.Time     `json:"start"`
	Dur      time.Duration `json:"dur"`
	In       []int64       `json:"in,omitempty"` // input list cardinalities
	Out      int64         `json:"out"`          // output list cardinality
	IO       pager.Stats   `json:"io"`           // page I/O of the whole span, children included
	Err      string        `json:"err,omitempty"`
	Tags     []Tag         `json:"tags,omitempty"`
	Children []*Span       `json:"children,omitempty"`

	// ID and ParentID link spans for wire propagation: IDs are unique
	// within one tracer (one process's view of one query), and a remote
	// subtree's root carries the ID of the client-side span that issued
	// the request as its ParentID — the {traceID, parentSpanID} pair of
	// the dirserver protocol.
	ID       uint64 `json:"id,omitempty"`
	ParentID uint64 `json:"parent,omitempty"`
	// Host marks the root of a subtree recorded in another process (the
	// serving replica's address). Page I/O below a Host boundary was
	// performed on that process's disk, not the local one — SelfIO,
	// TreeIO, and CheckConservation all treat Host != "" as a process
	// boundary.
	Host string `json:"host,omitempty"`

	startIO pager.Stats // disk counters at Start (tracer-internal)
}

// SetIn records the operator's input cardinalities (nil-safe).
func (s *Span) SetIn(in ...int64) {
	if s == nil {
		return
	}
	s.In = in
}

// Tag appends an annotation (nil-safe).
func (s *Span) Tag(key, value string) {
	if s == nil {
		return
	}
	s.Tags = append(s.Tags, Tag{Key: key, Value: value})
}

// TagValue returns the value of the first tag with the given key.
func (s *Span) TagValue(key string) (string, bool) {
	for _, t := range s.Tags {
		if t.Key == key {
			return t.Value, true
		}
	}
	return "", false
}

// SelfIO returns the span's own page I/O: its total minus its
// same-process children's totals. Summed over every span of one
// process's subtree this equals that subtree root's IO exactly (each
// page access is attributed to exactly one span). Children with Host
// set are remote subtrees whose I/O happened on another process's disk;
// they are excluded here and accounted by TreeIO.
func (s *Span) SelfIO() pager.Stats {
	io := s.IO
	for _, c := range s.Children {
		if c.Host == "" {
			io = io.Sub(c.IO)
		}
	}
	return io
}

// TreeIO returns the whole distributed evaluation's page I/O: the local
// subtree's total plus, recursively, every remote subtree's. This is
// the "total" side of the cross-process conservation law
// local + Σ remote = total (DESIGN.md §13).
func (s *Span) TreeIO() pager.Stats {
	io := s.IO
	var add func(*Span)
	add = func(sp *Span) {
		for _, c := range sp.Children {
			if c.Host != "" {
				io = io.Add(c.TreeIO())
			} else {
				add(c)
			}
		}
	}
	add(s)
	return io
}

// RemoteRoots returns the roots of every remote subtree directly
// reachable from s without crossing another process boundary — one per
// remote hop made by s's process.
func (s *Span) RemoteRoots() []*Span {
	var out []*Span
	var walk func(*Span)
	walk = func(sp *Span) {
		for _, c := range sp.Children {
			if c.Host != "" {
				out = append(out, c)
			} else {
				walk(c)
			}
		}
	}
	walk(s)
	return out
}

// CheckConservation verifies the merged span tree's I/O accounting,
// process by process. Within one process's subtree the per-span SelfIO
// deltas telescope to the subtree root's IO by construction, so the
// invariant that can actually break — and the one this checks — is that
// every SelfIO component is non-negative: same-process children never
// account more I/O than their parent observed (each page access is
// attributed to exactly one operator). The check recurses into every
// remote subtree, and verifies structural well-formedness along the
// way: a remote root's ParentID, when set, must name the span it hangs
// under. A nil error means TreeIO() = local pages + Σ remote-reported
// pages is an exact per-operator decomposition; tests that hold the
// physical disk counters additionally assert root IO == measured delta.
func (s *Span) CheckConservation() error {
	if s == nil {
		return fmt.Errorf("obs: nil span tree")
	}
	var walk func(*Span) error
	walk = func(sp *Span) error {
		if self := sp.SelfIO(); self.Reads < 0 || self.Writes < 0 || self.Allocs < 0 || self.Frees < 0 {
			return fmt.Errorf("obs: span %s %q self I/O went negative (%v): children account more than the parent observed",
				sp.Op, sp.Detail, self)
		}
		for _, c := range sp.Children {
			if c.Host != "" {
				if c.ParentID != 0 && sp.ID != 0 && c.ParentID != sp.ID {
					return fmt.Errorf("obs: remote subtree from %s has parent span %d, attached under span %d",
						c.Host, c.ParentID, sp.ID)
				}
				if err := c.CheckConservation(); err != nil {
					return err
				}
				continue
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(s)
}

// SelfDur returns the span's own wall time, children subtracted
// (clamped at zero: timers are not as exact as I/O counters).
func (s *Span) SelfDur() time.Duration {
	d := s.Dur
	for _, c := range s.Children {
		d -= c.Dur
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Walk visits the span and every descendant, parents first.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// Format renders the span tree as an indented table: one line per
// operator with cardinalities, self and total I/O, and wall time —
// the per-operator cost breakdown of the paper's Section 9 tables,
// measured on this one query.
func (s *Span) Format(w io.Writer) {
	fmt.Fprintln(w, "span tree (per operator: in -> out cardinalities, self/total page I/O, wall time):")
	s.format(w, 0)
	remotes := s.RemoteRoots()
	if len(remotes) == 0 {
		fmt.Fprintf(w, "total: %d page accesses (%s) in %s\n", s.IO.IO(), s.IO, fmtDur(s.Dur))
		return
	}
	var remote int64
	for _, r := range remotes {
		remote += r.TreeIO().IO()
	}
	total := s.TreeIO()
	fmt.Fprintf(w, "total: %d page accesses (local %d + remote %d across %d hops) in %s\n",
		total.IO(), s.IO.IO(), remote, len(remotes), fmtDur(s.Dur))
}

func (s *Span) format(w io.Writer, depth int) {
	indent := strings.Repeat("  ", depth)
	label := s.Op
	if s.Host != "" {
		label = "@" + s.Host + " " + label
	}
	if s.Detail != "" {
		label += " " + s.Detail
	}
	in := ""
	if len(s.In) > 0 {
		parts := make([]string, len(s.In))
		for i, n := range s.In {
			parts[i] = fmt.Sprint(n)
		}
		in = strings.Join(parts, ",") + " -> "
	}
	self := s.SelfIO()
	fmt.Fprintf(w, "%s%-*s  %s%d rec  self=%dr+%dw  total=%d io  %s",
		indent, 46-2*depth, label, in, s.Out, self.Reads, self.Writes, s.IO.IO(), fmtDur(s.Dur))
	for _, t := range s.Tags {
		fmt.Fprintf(w, "  %s=%s", t.Key, t.Value)
	}
	if s.Err != "" {
		fmt.Fprintf(w, "  err=%q", s.Err)
	}
	fmt.Fprintln(w)
	for _, c := range s.Children {
		c.format(w, depth+1)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// Tracer builds a span tree while an engine evaluates a query. It is
// carried in the context (WithTracer / FromContext); a nil *Tracer is a
// valid no-op receiver for every method, so instrumented code pays one
// nil check — no allocation, no lock — when tracing is off.
//
// A tracer is single-goroutine, like the evaluation it observes:
// core.Directory and dirserver.Coordinator serialize pipeline
// evaluation, which is also what makes the recorded pager.Stats deltas
// exact (see the ownership rule on pager.Stats).
type Tracer struct {
	src     StatsSource
	stack   []*Span
	roots   []*Span
	traceID string
	nextID  uint64
}

// StatsSource is anything whose cumulative page-I/O counters a Tracer
// can window: a shared *pager.Disk (exact only under the serialized
// evaluation of the ownership rule) or a per-query *pager.Arena (exact
// even while other queries run, because the arena's counters are
// private to the one evaluation being traced).
type StatsSource interface {
	Stats() pager.Stats
}

// NewTracer creates a tracer recording page-I/O deltas from src.
func NewTracer(src StatsSource) *Tracer {
	return &Tracer{src: src}
}

// SetTraceID stamps the tracer with the query's 128-bit trace ID
// (nil-safe). Entry points assign one with NewTraceID; the dirserver
// protocol propagates it so every process traces under the same ID.
func (t *Tracer) SetTraceID(id string) {
	if t == nil {
		return
	}
	t.traceID = id
}

// TraceID returns the tracer's trace ID ("" when none was assigned).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Start opens a span as a child of the currently open span (nil-safe).
func (t *Tracer) Start(op, detail string) *Span {
	if t == nil {
		return nil
	}
	t.nextID++
	sp := &Span{Op: op, Detail: detail, Start: time.Now(), ID: t.nextID, startIO: t.src.Stats()}
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		sp.ParentID = parent.ID
		parent.Children = append(parent.Children, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	t.stack = append(t.stack, sp)
	return sp
}

// Attach grafts a completed span subtree recorded in another process
// under the innermost open span (nil-safe; with no open span it becomes
// a root). The subtree's root must carry its serving host so that I/O
// accounting treats it as a process boundary; its ParentID is pointed
// at the span it now hangs under, completing the {traceID,
// parentSpanID} linkage the wire protocol carries.
func (t *Tracer) Attach(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		sp.ParentID = parent.ID
		parent.Children = append(parent.Children, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
}

// CurrentID returns the innermost open span's ID (0 when none): the
// parentSpanID a remote request issued right now should carry.
func (t *Tracer) CurrentID() uint64 {
	if t == nil || len(t.stack) == 0 {
		return 0
	}
	return t.stack[len(t.stack)-1].ID
}

// End closes the span, recording its duration, output cardinality, and
// page-I/O delta (nil-safe).
func (t *Tracer) End(sp *Span, out int64) {
	if t == nil || sp == nil {
		return
	}
	sp.Out = out
	t.close(sp)
}

// Fail closes the span with an error (nil-safe). The I/O performed up
// to the failure is still recorded.
func (t *Tracer) Fail(sp *Span, err error) {
	if t == nil || sp == nil {
		return
	}
	if err != nil {
		sp.Err = err.Error()
	}
	t.close(sp)
}

func (t *Tracer) close(sp *Span) {
	sp.Dur = time.Since(sp.Start)
	sp.IO = t.src.Stats().Sub(sp.startIO)
	// Pop back to sp; a mismatched End (a span closed twice, or out of
	// order) pops conservatively rather than corrupting ancestors.
	for n := len(t.stack); n > 0; n-- {
		if t.stack[n-1] == sp {
			t.stack = t.stack[:n-1]
			return
		}
	}
}

// Annotate tags the innermost open span (nil-safe). Resolvers deep in
// the call chain — the distributed coordinator, most importantly — use
// this to stamp the current atomic's span with replica address, retry
// count, and cache outcome without threading the span through.
func (t *Tracer) Annotate(key, value string) {
	if t == nil || len(t.stack) == 0 {
		return
	}
	t.stack[len(t.stack)-1].Tag(key, value)
}

// Root returns the first completed top-level span (nil if none).
func (t *Tracer) Root() *Span {
	if t == nil || len(t.roots) == 0 {
		return nil
	}
	return t.roots[0]
}

// Roots returns every top-level span recorded by the tracer.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	return t.roots
}

type tracerKey struct{}

// WithTracer returns a context carrying the tracer; the engine picks it
// up at every operator.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext returns the context's tracer, or nil — and nil is a
// valid no-op tracer, so callers never need to branch.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}
