package obs

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
)

// WriteProm renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), in name order. Histograms emit
// cumulative log₂ `le` buckets up to the largest non-empty one, then
// +Inf, _sum and _count — exactly what a Prometheus scrape of
// /metrics expects.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, m := range r.sorted() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			m.metricName(), m.metricHelp(), m.metricName(), m.metricKind()); err != nil {
			return err
		}
		switch v := m.(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s %d\n", v.name, v.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", v.name, v.Value()); err != nil {
				return err
			}
		case *Histogram:
			if err := writePromHist(w, v); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHist(w io.Writer, h *Histogram) error {
	// Highest non-empty bucket bounds the emitted `le` series.
	top := 0
	counts := make([]int64, histBuckets)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += counts[i]
		// Bucket i holds values < 2^i (bucket 0 holds only 0, upper
		// bound 1 exclusive ⇒ le="0" would be wrong; use the exclusive
		// bound minus nothing: le is inclusive in Prometheus, and every
		// integer < 2^i is ≤ 2^i - 1.
		le := strconv.FormatUint(1<<uint(i)-1, 10)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", h.name, le, cum); err != nil {
			return err
		}
	}
	total := h.count.Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", h.name, h.Sum(), h.name, total); err != nil {
		return err
	}
	return nil
}

// Snapshot returns a JSON-friendly view of every registered metric:
// counters and gauges as integers, histograms as HistSnapshot — the
// payload /statusz serves.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, m := range r.sorted() {
		switch v := m.(type) {
		case *Counter:
			out[v.name] = v.Value()
		case *Gauge:
			out[v.name] = v.Value()
		case *Histogram:
			out[v.name] = v.Snapshot()
		}
	}
	return out
}

// bucketFor reports the log₂ bucket index a value falls in (exported
// for tests asserting bucket placement).
func bucketFor(v int64) int {
	if v < 0 {
		v = 0
	}
	return bits.Len64(uint64(v))
}
