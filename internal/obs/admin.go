package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Admin is the HTTP admin listener: /metrics in Prometheus text
// format, /statusz as JSON (registry snapshot plus a caller-supplied
// status section), /debug/queries over the flight recorder (when one
// is attached), and the standard /debug/pprof handlers. It binds
// its own listener so it can live on a loopback-only port next to the
// query protocol's.
type Admin struct {
	ln  net.Listener
	srv *http.Server
}

// ServeAdmin starts the admin listener on addr ("127.0.0.1:0" for an
// ephemeral port). statusz, when non-nil, supplies the "status"
// section of /statusz — breaker states, delegation zones, whatever the
// embedding process knows that the registry does not.
func ServeAdmin(addr string, reg *Registry, statusz func() any) (*Admin, error) {
	return ServeAdminWith(addr, reg, statusz, nil)
}

// ServeAdminWith is ServeAdmin plus a flight recorder served at
// /debug/queries: with no parameters the endpoint lists the retained
// traces newest-first as JSON summaries (span trees elided);
// ?trace=<id> returns one full record including its span tree;
// ?min_ms=, ?min_io=, ?errors=1 and ?n= filter and bound the listing.
func ServeAdminWith(addr string, reg *Registry, statusz func() any, flight *FlightRecorder) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		body := map[string]any{
			"ts":      time.Now().UTC().Format(time.RFC3339Nano),
			"metrics": reg.Snapshot(),
		}
		if statusz != nil {
			body["status"] = statusz()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
	if flight != nil {
		mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
			serveFlight(w, r, flight)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	a := &Admin{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = a.srv.Serve(ln) }()
	return a, nil
}

// flightSummary is the listing view of one record: everything except
// the span tree, plus the tree's span count so a reader knows what
// ?trace= will return.
type flightSummary struct {
	Seq     uint64  `json:"seq"`
	TraceID string  `json:"trace"`
	TS      string  `json:"ts"`
	Kind    string  `json:"kind"`
	Query   string  `json:"query"`
	Gen     int64   `json:"gen"`
	Ms      float64 `json:"ms"`
	IO      int64   `json:"io"`
	Entries int     `json:"entries"`
	Hash    uint64  `json:"hash,omitempty"`
	Err     string  `json:"err,omitempty"`
	Spans   int     `json:"spans"`
}

// serveFlight implements /debug/queries: the slow-query flight
// recorder's HTTP face.
func serveFlight(w http.ResponseWriter, r *http.Request, flight *FlightRecorder) {
	q := r.URL.Query()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if id := q.Get("trace"); id != "" {
		rec := flight.Get(id)
		if rec == nil {
			http.Error(w, `{"err":"trace not retained"}`, http.StatusNotFound)
			return
		}
		_ = enc.Encode(rec)
		return
	}
	minMS, _ := strconv.ParseFloat(q.Get("min_ms"), 64)
	minIO, _ := strconv.ParseInt(q.Get("min_io"), 10, 64)
	errorsOnly := q.Get("errors") == "1"
	limit, _ := strconv.Atoi(q.Get("n"))
	out := []flightSummary{}
	for _, rec := range flight.Snapshot() {
		if errorsOnly && rec.Err == "" {
			continue
		}
		ms := float64(rec.Dur.Microseconds()) / 1000
		if ms < minMS || rec.IO < minIO {
			continue
		}
		spans := 0
		rec.Root.Walk(func(*Span) { spans++ })
		out = append(out, flightSummary{
			Seq: rec.Seq, TraceID: rec.TraceID, TS: rec.TS.Format(time.RFC3339Nano),
			Kind: rec.Kind, Query: rec.Query, Gen: rec.Gen, Ms: ms, IO: rec.IO,
			Entries: rec.Entries, Hash: rec.Hash, Err: rec.Err, Spans: spans,
		})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	_ = enc.Encode(out)
}

// Addr returns the admin listener's address.
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the admin listener.
func (a *Admin) Close() error { return a.srv.Close() }
