package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Admin is the HTTP admin listener: /metrics in Prometheus text
// format, /statusz as JSON (registry snapshot plus a caller-supplied
// status section), and the standard /debug/pprof handlers. It binds
// its own listener so it can live on a loopback-only port next to the
// query protocol's.
type Admin struct {
	ln  net.Listener
	srv *http.Server
}

// ServeAdmin starts the admin listener on addr ("127.0.0.1:0" for an
// ephemeral port). statusz, when non-nil, supplies the "status"
// section of /statusz — breaker states, delegation zones, whatever the
// embedding process knows that the registry does not.
func ServeAdmin(addr string, reg *Registry, statusz func() any) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		body := map[string]any{
			"ts":      time.Now().UTC().Format(time.RFC3339Nano),
			"metrics": reg.Snapshot(),
		}
		if statusz != nil {
			body["status"] = statusz()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	a := &Admin{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = a.srv.Serve(ln) }()
	return a, nil
}

// Addr returns the admin listener's address.
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the admin listener.
func (a *Admin) Close() error { return a.srv.Close() }
