package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("x_total", "other help"); again != c {
		t.Fatal("re-registration did not return the existing counter")
	}
	g := r.Gauge("y", "help")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	r.GaugeFunc("z", "help", func() int64 { return 42 })
	if got := r.Snapshot()["z"]; got != int64(42) {
		t.Fatalf("gauge func = %v, want 42", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering histogram over counter name")
		}
	}()
	r.Histogram("m", "help")
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1023, 10}, {1024, 11}}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.bucket {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram("h", "help")
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	// 100 observations of value 10 ([8,16) bucket): every quantile must
	// land inside the bucket.
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := h.Quantile(q)
		if v < 8 || v > 16 {
			t.Errorf("p%v = %v outside [8,16]", q*100, v)
		}
	}
	if h.Count() != 100 || h.Sum() != 1000 {
		t.Fatalf("count/sum = %d/%d, want 100/1000", h.Count(), h.Sum())
	}
	// A bimodal split: half at ~2, half at ~1000. The median must stay
	// in the low mode, p99 in the high mode.
	h2 := NewHistogram("h2", "help")
	for i := 0; i < 50; i++ {
		h2.Observe(2)
		h2.Observe(1000)
	}
	if p50 := h2.Quantile(0.5); p50 > 16 {
		t.Errorf("bimodal p50 = %v, want low mode", p50)
	}
	if p99 := h2.Quantile(0.99); p99 < 512 {
		t.Errorf("bimodal p99 = %v, want high mode", p99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("h", "help")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i % 64))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_reqs_total", "requests").Add(3)
	r.Gauge("app_temp", "temperature").Set(-2)
	h := r.Histogram("app_lat_us", "latency")
	h.Observe(0)
	h.Observe(3)
	h.Observe(100)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE app_reqs_total counter",
		"app_reqs_total 3",
		"# TYPE app_temp gauge",
		"app_temp -2",
		"# TYPE app_lat_us histogram",
		`app_lat_us_bucket{le="0"} 1`,
		`app_lat_us_bucket{le="3"} 2`,
		`app_lat_us_bucket{le="+Inf"} 3`,
		"app_lat_us_sum 103",
		"app_lat_us_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q in:\n%s", want, out)
		}
	}
	// Buckets must be cumulative (non-decreasing).
	last := int64(-1)
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "app_lat_us_bucket") {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err != nil {
			t.Fatalf("unparseable bucket line %q", line)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = n
	}
}

func TestQueryMetricsObserve(t *testing.T) {
	r := NewRegistry()
	m := NewQueryMetrics(r, "test")
	m.Observe(2*time.Millisecond, 10, 4, false)
	m.Observe(time.Millisecond, 5, 1, true)
	if m.Queries.Value() != 2 || m.Errors.Value() != 1 {
		t.Fatalf("queries/errors = %d/%d, want 2/1", m.Queries.Value(), m.Errors.Value())
	}
	if m.Latency.Count() != 1 {
		t.Fatalf("latency count = %d, want 1 (errors are not timed)", m.Latency.Count())
	}
	var nilM *QueryMetrics
	nilM.Observe(time.Millisecond, 1, 1, false) // must not panic
}

func TestSlowLog(t *testing.T) {
	var b strings.Builder
	var mu sync.Mutex
	w := lockedWriter{mu: &mu, w: &b}
	sl := NewSlowLog(w, 5*time.Millisecond, 100)

	if sl.Record("query", "(fast)", 1, "", time.Millisecond, 10, 1, nil) {
		t.Fatal("fast cheap query logged")
	}
	if !sl.Record("query", "(slow)", 7, "tid-1", 10*time.Millisecond, 10, 1, nil) {
		t.Fatal("slow query not logged")
	}
	if !sl.Record("query", "(io-heavy)", 7, "", time.Millisecond, 500, 1, nil) {
		t.Fatal("io-heavy query not logged")
	}
	if !sl.Record("query", "(broken)", 0, "", time.Millisecond, 0, 0, fmt.Errorf("boom")) {
		t.Fatal("failed query not logged")
	}
	var nilSL *SlowLog
	if nilSL.Record("query", "x", 0, "", time.Hour, 1e9, 0, nil) {
		t.Fatal("nil slowlog reported a write")
	}

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	mu.Unlock()
	if len(lines) != 3 {
		t.Fatalf("got %d slowlog lines, want 3", len(lines))
	}
	var rec SlowRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("slowlog line is not JSON: %v", err)
	}
	if rec.Query != "(slow)" || rec.Ms < 9 {
		t.Fatalf("unexpected first record: %+v", rec)
	}
	if rec.Gen != 7 || rec.Trace != "tid-1" {
		t.Fatalf("generation/trace not carried: %+v", rec)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestAdminEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("adm_reqs_total", "requests").Add(9)
	a, err := ServeAdmin("127.0.0.1:0", r, func() any { return map[string]string{"state": "ok"} })
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + a.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "adm_reqs_total 9") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	var status struct {
		Metrics map[string]any    `json:"metrics"`
		Status  map[string]string `json:"status"`
	}
	if err := json.Unmarshal([]byte(get("/statusz")), &status); err != nil {
		t.Fatalf("/statusz is not JSON: %v", err)
	}
	if status.Status["state"] != "ok" {
		t.Errorf("/statusz status section = %+v", status.Status)
	}
	if status.Metrics["adm_reqs_total"] != float64(9) {
		t.Errorf("/statusz metrics section = %+v", status.Metrics)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
