package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metric is the common face of everything a Registry holds.
type metric interface {
	metricName() string
	metricHelp() string
	metricKind() string // "counter" | "gauge" | "histogram"
}

// Counter is a monotonically increasing integer.
type Counter struct {
	name, help string
	v          atomic.Int64
}

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) metricKind() string { return "counter" }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the exposition to stay
// Prometheus-legal; this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer that can go up and down. A Gauge created with
// GaugeFunc is pull-based: its value is computed at scrape time, which
// is how the registry absorbs pre-existing counters (Coordinator,
// breaker, qcache stats) without double bookkeeping.
type Gauge struct {
	name, help string
	v          atomic.Int64
	fn         func() int64 // nil unless pull-based
}

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) metricKind() string { return "gauge" }

// Set stores v (no-op on a pull-based gauge).
func (g *Gauge) Set(v int64) {
	if g.fn == nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by n (no-op on a pull-based gauge).
func (g *Gauge) Add(n int64) {
	if g.fn == nil {
		g.v.Add(n)
	}
}

// Value returns the current value, invoking the pull function if set.
func (g *Gauge) Value() int64 {
	if g.fn != nil {
		return g.fn()
	}
	return g.v.Load()
}

// histBuckets is the number of log₂ buckets: bucket 0 holds value 0,
// bucket i (i ≥ 1) holds values in [2^(i-1), 2^i). 64-bit values fit
// in bits.Len64's range, so 65 buckets cover every int64 ≥ 0.
const histBuckets = 65

// Histogram is a log₂-bucketed distribution of non-negative int64
// observations (microseconds of latency, pages of I/O, result
// cardinalities). Powers of two match the paper's asymptotic claims:
// a linear-I/O operator's histogram shifts one bucket when the input
// doubles. Observation is lock-free; quantiles are estimated by
// within-bucket linear interpolation.
type Histogram struct {
	name, help string
	count      atomic.Int64
	sum        atomic.Int64
	buckets    [histBuckets]atomic.Int64
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) metricKind() string { return "histogram" }

// NewHistogram creates a standalone histogram (registry-less use:
// benchmark collectors, span aggregation).
func NewHistogram(name, help string) *Histogram {
	return &Histogram{name: name, help: help}
}

// Observe records one value; negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Microseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// bucketBounds returns bucket i's half-open range [lo, hi).
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return math.Exp2(float64(i - 1)), math.Exp2(float64(i))
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the containing log₂ bucket. With no
// observations it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i := 0; i < histBuckets; i++ {
		c := float64(h.buckets[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(i)
			return lo + (hi-lo)*((rank-cum)/c)
		}
		cum += c
	}
	lo, _ := bucketBounds(histBuckets - 1)
	return lo
}

// HistState is a histogram's full serializable state: count, sum, and
// the non-zero log₂ buckets as a sparse index→count map. It is how
// internal/qstats persists its profiles through the durable envelope
// layer and how recovered state is folded back in.
type HistState struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

// State captures the histogram's full state for serialization.
func (h *Histogram) State() HistState {
	st := HistState{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		if c := h.buckets[i].Load(); c != 0 {
			if st.Buckets == nil {
				st.Buckets = make(map[int]int64)
			}
			st.Buckets[i] = c
		}
	}
	return st
}

// AddState folds a previously captured state into the histogram —
// recovery merges durable history with whatever was observed since
// boot. Out-of-range bucket indexes are ignored.
func (h *Histogram) AddState(st HistState) {
	h.count.Add(st.Count)
	h.sum.Add(st.Sum)
	for i, c := range st.Buckets {
		if i >= 0 && i < histBuckets {
			h.buckets[i].Add(c)
		}
	}
}

// HistSnapshot is a point-in-time view of a histogram, with the
// standard serving quantiles precomputed.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot captures count, sum and the p50/p95/p99 estimates.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Registry is a named set of metrics. Registration is idempotent:
// asking for an existing name of the same kind returns the existing
// metric, so independent subsystems can share one registry without
// coordination. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

func (r *Registry) register(name string, make func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := make()
	r.metrics[name] = m
	return m
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, func() metric { return &Counter{name: name, help: help} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.metricKind()))
	}
	return c
}

// Gauge returns the named set-based gauge, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, func() metric { return &Gauge{name: name, help: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.metricKind()))
	}
	return g
}

// GaugeFunc registers a pull-based gauge whose value is fn() at scrape
// time. Registering an existing name replaces nothing and keeps the
// first registration.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(name, func() metric { return &Gauge{name: name, help: help, fn: fn} })
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name, help string) *Histogram {
	m := r.register(name, func() metric { return &Histogram{name: name, help: help} })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.metricKind()))
	}
	return h
}

// sorted returns the metrics in name order (stable exposition).
func (r *Registry) sorted() []metric {
	r.mu.Lock()
	out := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].metricName() < out[j].metricName() })
	return out
}

// QueryMetrics bundles the per-query serving metrics every query
// surface (server, coordinator, bench) records the same way.
type QueryMetrics struct {
	Queries *Counter   // queries served
	Errors  *Counter   // queries that returned an error
	Latency *Histogram // per-query wall time, microseconds
	IO      *Histogram // per-query page I/O (reads+writes)
	Results *Histogram // per-query result cardinality
}

// NewQueryMetrics registers the standard query metrics under the given
// name prefix (e.g. "dirkit_server").
func NewQueryMetrics(r *Registry, prefix string) *QueryMetrics {
	return &QueryMetrics{
		Queries: r.Counter(prefix+"_queries_total", "queries served"),
		Errors:  r.Counter(prefix+"_query_errors_total", "queries that returned an error"),
		Latency: r.Histogram(prefix+"_query_latency_us", "per-query wall time (microseconds)"),
		IO:      r.Histogram(prefix+"_query_io_pages", "per-query page I/O (reads+writes)"),
		Results: r.Histogram(prefix+"_query_results", "per-query result cardinality"),
	}
}

// Observe records one served query.
func (m *QueryMetrics) Observe(d time.Duration, ioPages, results int64, failed bool) {
	if m == nil {
		return
	}
	m.Queries.Inc()
	if failed {
		m.Errors.Inc()
		return
	}
	m.Latency.ObserveDuration(d)
	m.IO.Observe(ioPages)
	m.Results.Observe(results)
}
