package obs

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/pager"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	if f.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", f.Cap())
	}
	for i := 1; i <= 5; i++ {
		f.Record(&FlightRecord{TraceID: fmt.Sprintf("t%d", i), Dur: time.Duration(i) * time.Millisecond})
	}
	if f.Total() != 5 {
		t.Fatalf("Total = %d, want 5", f.Total())
	}
	snap := f.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("retained %d records, want 3", len(snap))
	}
	// Newest first; the two oldest were evicted.
	for i, want := range []string{"t5", "t4", "t3"} {
		if snap[i].TraceID != want {
			t.Fatalf("snap[%d] = %s, want %s", i, snap[i].TraceID, want)
		}
	}
	if snap[0].Seq != 5 || snap[2].Seq != 3 {
		t.Fatalf("sequence numbers wrong: %d..%d", snap[0].Seq, snap[2].Seq)
	}
	if rec := f.Get("t4"); rec == nil || rec.TraceID != "t4" {
		t.Fatalf("Get(t4) = %+v", rec)
	}
	if rec := f.Get("t1"); rec != nil {
		t.Fatal("Get(t1) found an evicted record")
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(&FlightRecord{TraceID: "x"}) // must not panic
	if f.Cap() != 0 || f.Total() != 0 || f.Snapshot() != nil || f.Get("x") != nil {
		t.Fatal("nil recorder is not a no-op")
	}
}

func TestFlightRecorderPartialRing(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(&FlightRecord{TraceID: "a"})
	f.Record(&FlightRecord{TraceID: "b"})
	snap := f.Snapshot()
	if len(snap) != 2 || snap[0].TraceID != "b" || snap[1].TraceID != "a" {
		t.Fatalf("partial ring snapshot wrong: %+v", snap)
	}
}

func TestTracerSpanIDsAndAttach(t *testing.T) {
	d := pager.NewDisk(512)
	tr := NewTracer(d)
	tr.SetTraceID("abc123")
	if tr.TraceID() != "abc123" {
		t.Fatalf("TraceID = %q", tr.TraceID())
	}

	root := tr.Start("&", "")
	if root.ID == 0 {
		t.Fatal("root span got no ID")
	}
	child := tr.Start("atomic", "(a)")
	if child.ParentID != root.ID {
		t.Fatalf("child.ParentID = %d, want %d", child.ParentID, root.ID)
	}
	if got := tr.CurrentID(); got != child.ID {
		t.Fatalf("CurrentID = %d, want %d", got, child.ID)
	}

	// Graft a remote subtree under the open atomic span, the way the
	// coordinator attaches a replica's reply.
	remote := &Span{Op: "atomic", Detail: "(a)", Host: "10.0.0.2:7777",
		IO: pager.Stats{Reads: 4}, Out: 3}
	tr.Attach(remote)
	if remote.ParentID != child.ID {
		t.Fatalf("attached remote ParentID = %d, want %d", remote.ParentID, child.ID)
	}
	if len(child.Children) != 1 || child.Children[0] != remote {
		t.Fatal("remote subtree not grafted under the open span")
	}
	tr.End(child, 3)
	tr.End(root, 3)

	// The remote subtree's I/O happened on another disk: it must not
	// perturb the local conservation law.
	if err := root.CheckConservation(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	if got := root.TreeIO().Reads; got != root.IO.Reads+4 {
		t.Fatalf("TreeIO.Reads = %d, want local %d + remote 4", got, root.IO.Reads)
	}
	roots := root.RemoteRoots()
	if len(roots) != 1 || roots[0] != remote {
		t.Fatalf("RemoteRoots = %+v", roots)
	}
}

// mergedTree hand-builds a two-hop distributed trace with exact
// per-span I/O, the shape the coordinator produces.
func mergedTree() *Span {
	remote := &Span{Op: "atomic", Detail: "(b)", Host: "replica:1", ID: 1,
		IO: pager.Stats{Reads: 10, Writes: 2}, Out: 5}
	local := &Span{Op: "atomic", Detail: "(b)", ID: 3, ParentID: 2,
		IO: pager.Stats{Reads: 1}, Out: 5}
	remote.ParentID = local.ID
	local.Children = []*Span{remote}
	root := &Span{Op: "&", ID: 2,
		IO: pager.Stats{Reads: 3}, Out: 2, Children: []*Span{local}}
	return root
}

func TestCheckConservationMergedTree(t *testing.T) {
	root := mergedTree()
	if err := root.CheckConservation(); err != nil {
		t.Fatalf("well-formed merged tree rejected: %v", err)
	}
	if got := root.TreeIO().IO(); got != 3+12 {
		t.Fatalf("TreeIO = %d, want 15 (local 3 + remote 12)", got)
	}

	// Corrupt the local accounting: a same-process child claims more
	// I/O than its parent observed, so some pages would be attributed
	// to two operators.
	bad := mergedTree()
	bad.Children[0].IO = pager.Stats{Reads: 5}
	if err := bad.CheckConservation(); err == nil {
		t.Fatal("corrupted local accounting passed conservation")
	}

	// Corrupt the remote subtree's internal accounting.
	bad2 := mergedTree()
	rr := bad2.RemoteRoots()[0]
	rr.Children = []*Span{{Op: "atomic", IO: pager.Stats{Reads: 99}}}
	if err := bad2.CheckConservation(); err == nil {
		t.Fatal("corrupted remote accounting passed conservation")
	}

	// Mis-linked remote root: ParentID names a span it does not hang
	// under.
	bad3 := mergedTree()
	bad3.RemoteRoots()[0].ParentID = 42
	if err := bad3.CheckConservation(); err == nil {
		t.Fatal("mis-linked remote subtree passed conservation")
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("trace IDs %q, %q: want 32 hex chars", a, b)
	}
	if a == b {
		t.Fatal("two trace IDs collided")
	}
}

func TestHistogramStateRoundTrip(t *testing.T) {
	h := NewHistogram("h", "")
	for _, v := range []int64{0, 1, 5, 100, 1 << 20} {
		h.Observe(v)
	}
	st := h.State()
	if st.Count != 5 {
		t.Fatalf("state count = %d", st.Count)
	}
	h2 := NewHistogram("h2", "")
	h2.Observe(7)
	h2.AddState(st)
	if h2.Count() != 6 || h2.Sum() != h.Sum()+7 {
		t.Fatalf("folded count=%d sum=%d", h2.Count(), h2.Sum())
	}
	// Out-of-range bucket indexes are ignored, not a panic.
	h2.AddState(HistState{Buckets: map[int]int64{-1: 3, 200: 4}})
}
