package obs

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/pager"
)

// scribble performs n single-page write+read round trips, i.e. 2n
// counted I/Os plus n allocs.
func scribble(t *testing.T, d *pager.Disk, n int) {
	t.Helper()
	buf := make([]byte, d.PageSize())
	for i := 0; i < n; i++ {
		id, err := d.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Write(id, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := d.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTracerSpanTreeAndSelfIO(t *testing.T) {
	d := pager.NewDisk(512)
	tr := NewTracer(d)

	root := tr.Start("&", "")
	scribble(t, d, 1) // root's own work before children
	c1 := tr.Start("atomic", "(a)")
	scribble(t, d, 3)
	tr.End(c1, 30)
	c2 := tr.Start("atomic", "(b)")
	scribble(t, d, 5)
	tr.End(c2, 50)
	root.SetIn(30, 50)
	scribble(t, d, 2) // root's merge work
	tr.End(root, 7)

	got := tr.Root()
	if got != root {
		t.Fatal("Root() is not the started root span")
	}
	if len(root.Children) != 2 || root.Children[0] != c1 || root.Children[1] != c2 {
		t.Fatalf("children mis-nested: %+v", root.Children)
	}
	if root.Out != 7 || c1.Out != 30 {
		t.Fatalf("out cardinalities lost: root=%d c1=%d", root.Out, c1.Out)
	}
	if got := root.IO.IO(); got != 22 { // 2*(1+3+5+2)
		t.Fatalf("root total IO = %d, want 22", got)
	}
	if got := root.SelfIO().IO(); got != 6 { // 2*(1+2)
		t.Fatalf("root self IO = %d, want 6", got)
	}
	// Conservation: self I/O summed over the tree equals the root total.
	var sum pager.Stats
	root.Walk(func(s *Span) { sum = sum.Add(s.SelfIO()) })
	if sum != root.IO {
		t.Fatalf("self IO sum %v != root IO %v", sum, root.IO)
	}

	var b strings.Builder
	root.Format(&b)
	out := b.String()
	for _, want := range []string{"atomic (a)", "atomic (b)", "30,50 -> 7 rec", "total: 22 page accesses"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted tree missing %q:\n%s", want, out)
		}
	}
}

func TestTracerAnnotateAndFail(t *testing.T) {
	d := pager.NewDisk(512)
	tr := NewTracer(d)
	sp := tr.Start("atomic", "(x)")
	tr.Annotate("replica", "10.0.0.1:7001")
	tr.Fail(sp, errors.New("boom"))
	if v, ok := sp.TagValue("replica"); !ok || v != "10.0.0.1:7001" {
		t.Fatalf("annotation lost: %v %v", v, ok)
	}
	if sp.Err != "boom" {
		t.Fatalf("Err = %q, want boom", sp.Err)
	}
	if len(tr.Roots()) != 1 {
		t.Fatalf("roots = %d, want 1", len(tr.Roots()))
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", "")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.SetIn(1, 2)
	sp.Tag("k", "v")
	tr.Annotate("k", "v")
	tr.End(sp, 3)
	tr.Fail(sp, errors.New("x"))
	if tr.Root() != nil || tr.Roots() != nil {
		t.Fatal("nil tracer has roots")
	}
}

func TestContextCarriage(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("background context has a tracer")
	}
	tr := NewTracer(pager.NewDisk(0))
	ctx := WithTracer(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("tracer not carried through context")
	}
}

func TestMismatchedEndPopsConservatively(t *testing.T) {
	d := pager.NewDisk(512)
	tr := NewTracer(d)
	a := tr.Start("a", "")
	b := tr.Start("b", "")
	tr.End(a, 0) // out of order: closes a, popping b's frame too
	tr.End(b, 0) // already off the stack: must not panic or corrupt
	next := tr.Start("c", "")
	tr.End(next, 0)
	if len(tr.Roots()) != 2 {
		t.Fatalf("roots = %d, want 2 (a and c)", len(tr.Roots()))
	}
}
