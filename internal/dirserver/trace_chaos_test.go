package dirserver

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/model"
	"repro/internal/obs"
)

// findTagged returns the first span in the tree carrying the given tag
// key (nil if none).
func findTagged(root *obs.Span, key string) *obs.Span {
	var found *obs.Span
	root.Walk(func(s *obs.Span) {
		if found != nil {
			return
		}
		if _, ok := s.TagValue(key); ok {
			found = s
		}
	})
	return found
}

// formatTree renders a span tree for failure messages.
func formatTree(root *obs.Span) string {
	var b strings.Builder
	root.Format(&b)
	return b.String()
}

// TestDistributedTraceMergedTree is the tentpole acceptance check: a
// distributed query issued through a traced Coordinator produces ONE
// merged span tree — the remote server's subtree, recorded in another
// process, grafted under the client-side span that issued the request —
// and the cross-process I/O conservation law holds on it: the total is
// exactly the local pages plus the remote-reported pages.
func TestDistributedTraceMergedTree(t *testing.T) {
	coord, done := federatedPair(t, CoordinatorConfig{})
	defer done()

	q := `(| (dc=com ? sub ? objectClass=TOPSSubscriber)
	         (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLADSAction))`
	entries, root, err := coord.SearchTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no entries")
	}
	if root == nil {
		t.Fatal("no span tree")
	}
	if err := root.CheckConservation(); err != nil {
		t.Fatalf("merged tree fails conservation: %v\n%s", err, formatTree(root))
	}

	remotes := root.RemoteRoots()
	if len(remotes) != 1 {
		t.Fatalf("remote subtrees = %d, want 1\n%s", len(remotes), formatTree(root))
	}
	rr := remotes[0]
	if rr.Host == "" {
		t.Fatal("remote root lost its Host boundary marker")
	}
	if rr.ID == 0 {
		t.Fatal("remote root has no span ID: the server did not assign IDs")
	}

	// The remote subtree hangs under the exact span that issued the
	// request, and that span carries the round trip's time split.
	issuer := findTagged(root, "replica")
	if issuer == nil {
		t.Fatalf("no span tagged with the answering replica\n%s", formatTree(root))
	}
	if rr.ParentID != issuer.ID {
		t.Fatalf("remote root parent = span %d, issuing span is %d", rr.ParentID, issuer.ID)
	}
	for _, tag := range []string{"wire_us", "serve_us", "queue_us"} {
		if _, ok := issuer.TagValue(tag); !ok {
			t.Errorf("issuing span missing %s tag\n%s", tag, formatTree(root))
		}
	}

	// Cross-process conservation, the law itself: total = local + Σ
	// remote-reported. The remote evaluation really did pages on the
	// other process's disk, so a merge that dropped the subtree would
	// change the total.
	if rr.TreeIO().IO() == 0 {
		t.Fatal("remote subtree reports zero I/O: nothing was measured across the wire")
	}
	total := root.TreeIO()
	localPlusRemote := root.IO.Add(rr.TreeIO())
	if total != localPlusRemote {
		t.Fatalf("TreeIO %+v != local %+v + remote %+v", total, root.IO, rr.TreeIO())
	}
}

// proxiedZone builds a topology whose policies zone has exactly one
// replica, reachable only through a fault proxy: no failover target, so
// breaker behavior is observable in isolation.
func proxiedZone(t *testing.T, cfg CoordinatorConfig) (*Coordinator, *faultnet.Proxy) {
	t.Helper()
	_, upper, policies := splitPaperDirectory(t)
	grace := ServerConfig{Grace: 100 * time.Millisecond}
	priSrv, err := ServeWith(policies, "127.0.0.1:0", grace)
	if err != nil {
		t.Fatal(err)
	}
	localSrv, err := ServeWith(upper, "127.0.0.1:0", grace)
	if err != nil {
		priSrv.Close()
		t.Fatal(err)
	}
	proxy, err := faultnet.New(priSrv.Addr())
	if err != nil {
		localSrv.Close()
		priSrv.Close()
		t.Fatal(err)
	}
	var reg Registry
	reg.Register(model.MustParseDN("dc=com"), localSrv.Addr())
	reg.Register(model.MustParseDN("ou=networkPolicies, dc=research, dc=att, dc=com"), proxy.Addr())
	coord := NewCoordinatorWith(upper, &reg, localSrv.Addr(), cfg)
	t.Cleanup(func() {
		coord.Close()
		proxy.Close()
		localSrv.Close()
		priSrv.Close()
	})
	return coord, proxy
}

// TestProbeCountsAsRetryEverywhere is the regression test for the
// Stats/span disagreement: when a circuit breaker lets a half-open
// probe through and the probe succeeds, the probe is an extra attempt
// the breaker spent re-testing a failed address. It must be counted as
// a retry in Coordinator.Stats() AND in the span's retries annotation —
// the two views previously disagreed (the span said 0, or the stats
// did, depending on who you asked).
func TestProbeCountsAsRetryEverywhere(t *testing.T) {
	coord, proxy := proxiedZone(t, CoordinatorConfig{
		Client: ClientConfig{
			DialTimeout:    250 * time.Millisecond,
			RequestTimeout: 250 * time.Millisecond,
			MaxRetries:     0, // keep client-level retries out of the ledger
			BackoffBase:    5 * time.Millisecond,
			BackoffMax:     20 * time.Millisecond,
		},
		Breaker: BreakerConfig{Threshold: 1, Cooldown: 100 * time.Millisecond},
	})

	// Trip the breaker: one refused exchange at threshold 1.
	proxy.SetMode(faultnet.Refuse)
	if _, err := coord.Search(context.Background(), polQuery); err == nil {
		t.Fatal("refused zone answered")
	}
	if s := coord.Stats(); s.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", s.BreakerTrips)
	}

	// Heal the path, wait out the cooldown, and send the next traced
	// query: it goes through as the half-open probe.
	proxy.SetMode(faultnet.Pass)
	time.Sleep(150 * time.Millisecond)
	before := coord.Stats()
	entries, root, err := coord.SearchTraced(context.Background(), polQuery)
	if err != nil {
		t.Fatalf("probe query failed: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("probe query returned nothing")
	}
	after := coord.Stats()

	statRetries := after.Retries - before.Retries
	if statRetries != 1 {
		t.Errorf("Stats retries delta = %d, want 1 (the probe)", statRetries)
	}
	issuer := findTagged(root, "replica")
	if issuer == nil {
		t.Fatalf("no replica-tagged span\n%s", formatTree(root))
	}
	tagRetries, ok := issuer.TagValue("retries")
	if !ok {
		t.Fatalf("probe span has no retries tag\n%s", formatTree(root))
	}
	// The regression proper: both ledgers must tell the same story.
	if tagRetries != strconv.FormatInt(statRetries, 10) {
		t.Errorf("span says %s retries, Stats says %d — the two disagree again", tagRetries, statRetries)
	}
	if coord.BreakerState(proxy.Addr()) != "closed" {
		t.Errorf("successful probe left breaker %s", coord.BreakerState(proxy.Addr()))
	}
}

// TestChaosTracedGarbleFailover: a garbled primary forces retries and a
// failover to the healthy secondary — the merged trace must still pass
// cross-process conservation, carry exactly the secondary's subtree,
// and record the retries the garbling cost.
func TestChaosTracedGarbleFailover(t *testing.T) {
	cl := newChaosCluster(t)
	cl.proxy.SetMode(faultnet.Garble)
	want := cl.wantPolicies(t)

	entries, root, err := cl.coord.SearchTraced(context.Background(), polQuery)
	if err != nil {
		t.Fatalf("traced query under garble: %v", err)
	}
	if len(entries) != len(want) {
		t.Fatalf("got %d entries, want %d (silent truncation under garble)", len(entries), len(want))
	}
	if err := root.CheckConservation(); err != nil {
		t.Fatalf("conservation under garble: %v\n%s", err, formatTree(root))
	}
	if n := len(root.RemoteRoots()); n != 1 {
		t.Fatalf("remote subtrees = %d, want 1 (the secondary's)\n%s", n, formatTree(root))
	}
	issuer := findTagged(root, "replica")
	if issuer == nil {
		t.Fatalf("no replica tag\n%s", formatTree(root))
	}
	if v, _ := issuer.TagValue("replica"); v != cl.secSrv.Addr() {
		t.Errorf("answered by %s, want secondary %s", v, cl.secSrv.Addr())
	}
	if _, ok := issuer.TagValue("failover"); !ok {
		t.Error("failover span not annotated")
	}
	if cl.coord.Stats().Retries == 0 {
		t.Error("garbled exchanges cost no recorded retries")
	}
}

// TestChaosTracedLatencySplit: injected network latency must show up in
// the wire share of the round trip's time split, not in the server's
// serve time.
func TestChaosTracedLatencySplit(t *testing.T) {
	cl := newChaosCluster(t)
	const injected = 50 * time.Millisecond
	cl.proxy.SetLatency(injected)

	_, root, err := cl.coord.SearchTraced(context.Background(), polQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.CheckConservation(); err != nil {
		t.Fatalf("conservation under latency: %v", err)
	}
	issuer := findTagged(root, "wire_us")
	if issuer == nil {
		t.Fatalf("no wire_us tag\n%s", formatTree(root))
	}
	wire, _ := issuer.TagValue("wire_us")
	wireUS, err := strconv.ParseInt(wire, 10, 64)
	if err != nil {
		t.Fatalf("wire_us = %q: %v", wire, err)
	}
	// The injected delay rides the wire share (allow scheduling slack).
	if min := (injected - 10*time.Millisecond).Microseconds(); wireUS < min {
		t.Errorf("wire_us = %d, want >= %d with %v injected", wireUS, min, injected)
	}
	serve, _ := issuer.TagValue("serve_us")
	serveUS, err := strconv.ParseInt(serve, 10, 64)
	if err != nil {
		t.Fatalf("serve_us = %q: %v", serve, err)
	}
	if serveUS >= wireUS {
		t.Errorf("serve_us %d >= wire_us %d: injected latency leaked into the serve share", serveUS, wireUS)
	}
}

// TestChaosTracedLostReply: when the only replica black-holes the reply,
// the evaluation fails — but the span tree recorded up to the loss must
// still be returned, well-formed, with no phantom remote subtree.
func TestChaosTracedLostReply(t *testing.T) {
	coord, proxy := proxiedZone(t, CoordinatorConfig{
		Client: ClientConfig{
			DialTimeout:    250 * time.Millisecond,
			RequestTimeout: 150 * time.Millisecond,
			MaxRetries:     0,
			BackoffBase:    5 * time.Millisecond,
			BackoffMax:     20 * time.Millisecond,
		},
		Breaker: BreakerConfig{Threshold: 2, Cooldown: 150 * time.Millisecond},
	})
	proxy.SetMode(faultnet.BlackHole)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	entries, root, err := coord.SearchTraced(ctx, polQuery)
	if err == nil {
		t.Fatalf("black-holed zone answered with %d entries", len(entries))
	}
	if root == nil {
		t.Fatal("failed evaluation returned no span tree at all")
	}
	if root.Err == "" {
		t.Errorf("root span of a failed evaluation has no error\n%s", formatTree(root))
	}
	if err := root.CheckConservation(); err != nil {
		t.Errorf("partial tree is not well-formed: %v\n%s", err, formatTree(root))
	}
	if n := len(root.RemoteRoots()); n != 0 {
		t.Errorf("lost reply produced %d phantom remote subtrees\n%s", n, formatTree(root))
	}
}
