package dirserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/workload"
)

// splitPaperDirectory partitions the paper's sample directory the way
// Figure 1's dotted lines suggest: one server for the upper levels plus
// the userProfiles subtree, one for the research networkPolicies
// subtree.
func splitPaperDirectory(t *testing.T) (whole, upper, policies *core.Directory) {
	t.Helper()
	return splitPaperDirectoryOpts(t, core.Options{})
}

// splitPaperDirectoryOpts is splitPaperDirectory with explicit
// directory options (e.g. a parallel engine) applied to all three.
func splitPaperDirectoryOpts(t *testing.T, opts core.Options) (whole, upper, policies *core.Directory) {
	t.Helper()
	full := workload.PaperInstance()
	s := full.Schema()
	upperIn := model.NewInstance(s)
	polIn := model.NewInstance(s)
	polRoot := model.MustParseDN("ou=networkPolicies, dc=research, dc=att, dc=com")
	for _, e := range full.Entries() {
		if polRoot.IsAncestorOf(e.DN()) || polRoot.Equal(e.DN()) {
			polIn.MustAdd(e.Clone())
		} else {
			upperIn.MustAdd(e.Clone())
		}
	}
	var err error
	if whole, err = core.Open(full, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if upper, err = core.Open(upperIn, opts); err != nil {
		t.Fatal(err)
	}
	if policies, err = core.Open(polIn, opts); err != nil {
		t.Fatal(err)
	}
	return whole, upper, policies
}

func TestRegistryLongestPrefix(t *testing.T) {
	var r Registry
	r.Register(model.MustParseDN("dc=com"), "A")
	r.Register(model.MustParseDN("dc=att, dc=com"), "B")
	r.Register(model.MustParseDN("ou=networkPolicies, dc=research, dc=att, dc=com"), "C")
	cases := []struct {
		dn   string
		want string
	}{
		{"dc=com", "A"},
		{"dc=ibm, dc=com", "A"},
		{"dc=att, dc=com", "B"},
		{"uid=j, dc=research, dc=att, dc=com", "B"},
		{"TPName=x, ou=trafficProfile, ou=networkPolicies, dc=research, dc=att, dc=com", "C"},
	}
	for _, c := range cases {
		got, ok := r.Lookup(model.MustParseDN(c.dn))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %q,%v want %q", c.dn, got, ok, c.want)
		}
	}
	if _, ok := r.Lookup(model.MustParseDN("dc=org")); ok {
		t.Error("unowned namespace resolved")
	}
	if len(r.Zones()) != 3 {
		t.Errorf("zones = %v", r.Zones())
	}
}

func TestServerRoundTrip(t *testing.T) {
	whole, _, _ := splitPaperDirectory(t)
	srv, err := Serve(whole, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	entries, err := Call(context.Background(), srv.Addr(), whole.Schema(), "query",
		"(dc=com ? sub ? objectClass=dcObject)")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Sorted, with typed values intact.
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Key() >= entries[i].Key() {
			t.Fatal("remote results not sorted")
		}
	}

	// Atomic kind rejects composites.
	if _, err := Call(context.Background(), srv.Addr(), whole.Schema(), "atomic",
		"(& (dc=com ? sub ? dc=*) (dc=com ? sub ? dc=*))"); !errors.Is(err, ErrRemote) {
		t.Errorf("composite as atomic: %v", err)
	}

	// LDAP kind.
	entries, err = Call(context.Background(), srv.Addr(), whole.Schema(), "ldap",
		"(dc=com ? sub ? (&(objectClass=QHP)(priority<=1)))")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("ldap entries = %d", len(entries))
	}

	// Errors propagate.
	if _, err := Call(context.Background(), srv.Addr(), whole.Schema(), "query", "((("); !errors.Is(err, ErrRemote) {
		t.Errorf("parse error: %v", err)
	}
	if _, err := Call(context.Background(), srv.Addr(), whole.Schema(), "bogus", "x"); !errors.Is(err, ErrRemote) {
		t.Errorf("bad kind: %v", err)
	}
}

func TestDistributedEqualsCentralized(t *testing.T) {
	// E14: a federated query over two servers returns exactly what the
	// single-server evaluation returns.
	whole, upper, policies := splitPaperDirectory(t)

	upSrv, err := Serve(upper, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer upSrv.Close()
	polSrv, err := Serve(policies, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer polSrv.Close()

	var reg Registry
	reg.Register(model.MustParseDN("dc=com"), upSrv.Addr())
	reg.Register(model.MustParseDN("ou=networkPolicies, dc=research, dc=att, dc=com"), polSrv.Addr())

	// Coordinate from the "upper" server's point of view.
	coord := NewCoordinator(upper, &reg, upSrv.Addr())
	defer coord.Close()

	queries := []string{
		// Purely local.
		"(dc=com ? sub ? objectClass=TOPSSubscriber)",
		// Purely remote.
		"(ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)",
		// Spanning: Ex 5.2-style ancestors across both servers. The first
		// operand lives on the policy server, the second on both.
		`(a (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=trafficProfile)
		    (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? ou=networkPolicies))`,
		// L3 across the wire.
		`(vd (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		     (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? destinationPort=25)
		     SLATPRef)`,
		// Boolean mixing local and remote atomics.
		`(| (dc=com ? sub ? objectClass=TOPSSubscriber)
		    (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLADSAction))`,
	}
	for _, qs := range queries {
		want, err := whole.Search(qs)
		if err != nil {
			t.Fatalf("central %s: %v", qs, err)
		}
		got, err := coord.Search(context.Background(), qs)
		if err != nil {
			t.Fatalf("distributed %s: %v", qs, err)
		}
		if len(got) != len(want.Entries) {
			t.Errorf("%s: distributed %d vs central %d", qs, len(got), len(want.Entries))
			continue
		}
		for i := range got {
			if !got[i].DN().Equal(want.Entries[i].DN()) {
				t.Errorf("%s: entry %d differs: %s vs %s", qs, i, got[i].DN(), want.Entries[i].DN())
			}
		}
	}
	if coord.RemoteAtomics() == 0 {
		t.Error("no atomic sub-queries were shipped remotely")
	}
}

// TestParallelCoordinatorEqualsCentralized re-runs the federation
// oracle with a Workers=8 engine behind the coordinator: independent
// subtrees fan their atomic sub-queries to the replicas concurrently
// (DESIGN.md §9), and the results must still match the centralized
// serial evaluation entry for entry.
func TestParallelCoordinatorEqualsCentralized(t *testing.T) {
	whole, upper, policies := splitPaperDirectoryOpts(t, core.Options{Engine: engine.Config{Workers: 8}})

	upSrv, err := Serve(upper, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer upSrv.Close()
	polSrv, err := Serve(policies, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer polSrv.Close()

	var reg Registry
	reg.Register(model.MustParseDN("dc=com"), upSrv.Addr())
	reg.Register(model.MustParseDN("ou=networkPolicies, dc=research, dc=att, dc=com"), polSrv.Addr())
	coord := NewCoordinator(upper, &reg, upSrv.Addr())
	defer coord.Close()

	queries := []string{
		// Wide boolean fan-out: four remote atomics under independent
		// subtrees, all in flight at once.
		`(| (| (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		       (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=trafficProfile))
		    (| (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLADSAction)
		       (dc=com ? sub ? objectClass=TOPSSubscriber)))`,
		// Hierarchy operator with mixed local/remote operands.
		`(a (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=trafficProfile)
		    (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? ou=networkPolicies))`,
		// L3 across the wire.
		`(vd (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		     (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? destinationPort=25)
		     SLATPRef)`,
	}
	for trial := 0; trial < 5; trial++ {
		for _, qs := range queries {
			want, err := whole.Search(qs)
			if err != nil {
				t.Fatalf("central %s: %v", qs, err)
			}
			got, err := coord.Search(context.Background(), qs)
			if err != nil {
				t.Fatalf("distributed %s: %v", qs, err)
			}
			if len(got) != len(want.Entries) {
				t.Fatalf("%s: distributed %d vs central %d", qs, len(got), len(want.Entries))
			}
			for i := range got {
				if !got[i].DN().Equal(want.Entries[i].DN()) {
					t.Fatalf("%s: entry %d differs: %s vs %s", qs, i, got[i].DN(), want.Entries[i].DN())
				}
			}
		}
	}
	if coord.RemoteAtomics() == 0 {
		t.Error("no atomic sub-queries were shipped remotely")
	}
}

func TestSecondaryFailover(t *testing.T) {
	// Footnote 4: an unreachable primary must not cut off service when a
	// secondary holds the same subtree.
	whole, upper, policies := splitPaperDirectory(t)
	_ = upper

	polSrv, err := Serve(policies, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer polSrv.Close()

	// The primary address points at a server we immediately close.
	dead, err := Serve(policies, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr()
	_ = dead.Close()

	localSrv, err := Serve(upper, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer localSrv.Close()

	var reg Registry
	reg.Register(model.MustParseDN("dc=com"), localSrv.Addr())
	reg.Register(model.MustParseDN("ou=networkPolicies, dc=research, dc=att, dc=com"),
		deadAddr, polSrv.Addr()) // dead primary, live secondary

	coord := NewCoordinatorWith(upper, &reg, localSrv.Addr(), fastCoordConfig())
	defer coord.Close()
	q := "(ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
	got, err := coord.Search(context.Background(), q)
	if err != nil {
		t.Fatalf("failover did not save the query: %v", err)
	}
	want, err := whole.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Entries) {
		t.Fatalf("failover answer %d vs %d", len(got), len(want.Entries))
	}

	// With no live server at all, the error must say so.
	var reg2 Registry
	reg2.Register(model.MustParseDN("dc=com"), localSrv.Addr())
	reg2.Register(model.MustParseDN("ou=networkPolicies, dc=research, dc=att, dc=com"), deadAddr)
	coord2 := NewCoordinatorWith(upper, &reg2, localSrv.Addr(), fastCoordConfig())
	defer coord2.Close()
	if _, err := coord2.Search(context.Background(), q); err == nil {
		t.Fatal("query against only-dead servers succeeded")
	}
}

func TestConcurrentClients(t *testing.T) {
	whole, _, _ := splitPaperDirectory(t)
	srv, err := Serve(whole, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	errc := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			q := fmt.Sprintf("(dc=com ? sub ? objectClass=%s)",
				[]string{"dcObject", "QHP", "trafficProfile", "SLADSAction"}[i%4])
			entries, err := Call(context.Background(), srv.Addr(), whole.Schema(), "query", q)
			if err == nil && len(entries) == 0 {
				err = fmt.Errorf("empty result for %s", q)
			}
			errc <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
}

func TestProtocolRobustness(t *testing.T) {
	whole, _, _ := splitPaperDirectory(t)
	srv, err := Serve(whole, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Malformed JSON: the server answers with an error and closes.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("{not json\n")); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Err string `json:"err"`
	}
	if err := json.NewDecoder(conn).Decode(&res); err != nil {
		t.Fatalf("no error response: %v", err)
	}
	if res.Err == "" {
		t.Fatal("malformed request accepted")
	}
	conn.Close()

	// A dropped connection mid-request must not wedge the server.
	conn, err = net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = conn.Write([]byte(`{"kind":"query","query":"`)) // no newline, then drop
	conn.Close()

	// The server still answers new clients.
	entries, err := Call(context.Background(), srv.Addr(), whole.Schema(), "query", "(dc=com ? sub ? objectClass=dcObject)")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %d after abusive clients", len(entries))
	}

	// Several requests on one connection (pipelining).
	conn, err = net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	for i := 0; i < 3; i++ {
		if err := enc.Encode(map[string]string{
			"kind": "query", "query": "(dc=com ? sub ? objectClass=dcObject)",
		}); err != nil {
			t.Fatal(err)
		}
		var r struct {
			Entries []string `json:"entries"`
			Err     string   `json:"err"`
		}
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if r.Err != "" || len(r.Entries) != 4 {
			t.Fatalf("round %d: %d entries, err=%q", i, len(r.Entries), r.Err)
		}
	}
}

func TestEntryWireFidelity(t *testing.T) {
	whole, _, _ := splitPaperDirectory(t)
	srv, err := Serve(whole, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	entries, err := Call(context.Background(), srv.Addr(), whole.Schema(), "query",
		"(dc=com ? sub ? SLAPolicyName=dso)")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	dso := entries[0]
	if len(dso.Values("SLATPRef")) != 2 {
		t.Error("DN-valued attributes lost on the wire")
	}
	pr, _ := dso.First("SLARulePriority")
	if pr.Kind() != model.KindInt || pr.Int() != 2 {
		t.Error("int typing lost on the wire")
	}
	if !strings.HasPrefix(dso.DN().String(), "SLAPolicyName=dso") {
		t.Errorf("dn = %s", dso.DN())
	}
}
