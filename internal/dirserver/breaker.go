package dirserver

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerConfig tunes the per-address circuit breaker the Coordinator
// consults before dialing a replica. A breaker keeps the footnote-4
// failover from hammering a dead primary on every query: after
// Threshold consecutive transport failures the address is skipped
// (queries go straight to a secondary) until Cooldown elapses, at
// which point a single probe is let through (half-open). A successful
// probe closes the breaker; a failed one re-opens it for another
// cooldown.
type BreakerConfig struct {
	// Threshold is the number of consecutive transport failures that
	// trips the breaker (default 3). Terminal ErrRemote answers do not
	// count: a server that answers with a query error is healthy.
	Threshold int
	// Cooldown is how long a tripped address is skipped before a
	// half-open probe is allowed (default 5s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// Breaker states.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// addrHealth is the breaker for one server address.
type addrHealth struct {
	failures int // consecutive transport failures
	state    int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// health tracks breakers for every address the coordinator has talked
// to. All methods are safe for concurrent use.
type health struct {
	cfg    BreakerConfig
	now    func() time.Time // injectable clock for tests
	trips  atomic.Int64
	onTrip func() // optional trip hook, set before first use; called outside mu

	mu sync.Mutex
	m  map[string]*addrHealth
}

func newHealth(cfg BreakerConfig) *health {
	return &health{cfg: cfg.withDefaults(), now: time.Now, m: make(map[string]*addrHealth)}
}

func (h *health) get(addr string) *addrHealth {
	a := h.m[addr]
	if a == nil {
		a = &addrHealth{}
		h.m[addr] = a
	}
	return a
}

// allow reports whether a request may be sent to addr right now.
// Closed breakers always allow; open breakers allow one half-open
// probe once the cooldown has elapsed. probe marks that case: the
// request is a half-open probe, an extra attempt the breaker spends to
// re-test a previously failed address — the coordinator counts it as a
// retry in its stats and span annotations alike.
func (h *health) allow(addr string) (ok, probe bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	a := h.get(addr)
	switch a.state {
	case stateClosed:
		return true, false
	case stateOpen:
		if h.now().Sub(a.openedAt) < h.cfg.Cooldown {
			return false, false
		}
		a.state = stateHalfOpen
		a.probing = true
		return true, true
	default: // half-open: one probe at a time
		if a.probing {
			return false, false
		}
		a.probing = true
		return true, true
	}
}

// success records a completed request: the address is healthy, the
// breaker closes.
func (h *health) success(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	a := h.get(addr)
	a.failures = 0
	a.state = stateClosed
	a.probing = false
}

// failure records a transport failure and reports whether this one
// tripped the breaker open.
func (h *health) failure(addr string) (tripped bool) {
	h.mu.Lock()
	a := h.get(addr)
	a.failures++
	switch a.state {
	case stateHalfOpen:
		// Failed probe: straight back to open for another cooldown.
		a.state = stateOpen
		a.openedAt = h.now()
		a.probing = false
	case stateClosed:
		if a.failures >= h.cfg.Threshold {
			a.state = stateOpen
			a.openedAt = h.now()
			h.trips.Add(1)
			tripped = true
		}
	}
	h.mu.Unlock()
	if tripped && h.onTrip != nil {
		h.onTrip()
	}
	return tripped
}

// snapshot returns the state name of addr's breaker (for stats and
// tools).
func (h *health) snapshot(addr string) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	a, ok := h.m[addr]
	if !ok {
		return "closed"
	}
	switch a.state {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
