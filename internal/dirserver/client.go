package dirserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ldif"
	"repro/internal/model"
	"repro/internal/obs"
)

// Client errors.
var (
	// ErrRemote marks terminal answers: the server was reached and
	// replied with a query error. Retrying or failing over cannot
	// change the outcome.
	ErrRemote = errors.New("dirserver: remote error")
	// ErrUnavailable marks transport failure after the retry budget is
	// spent: dial refused, request timed out, connection reset, or the
	// response was garbled on the wire.
	ErrUnavailable = errors.New("dirserver: server unavailable")
	// ErrClientClosed is returned by calls on a closed Client.
	ErrClientClosed = errors.New("dirserver: client closed")
)

// ClientConfig tunes the pooled client's timeouts and retry policy.
// The zero value gets production-ish defaults; tests and chaos
// harnesses shrink them.
type ClientConfig struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// RequestTimeout bounds one request/response round trip on the
	// wire, enforced with SetDeadline (default 10s). A context with an
	// earlier deadline tightens it further.
	RequestTimeout time.Duration
	// MaxRetries is the number of extra attempts after the first, for
	// transient transport errors only (default 2; negative disables
	// retries). ErrRemote answers are never retried.
	MaxRetries int
	// BackoffBase is the first retry's backoff (default 25ms); each
	// further retry doubles it, capped at BackoffMax (default 1s), with
	// jitter so synchronized clients do not stampede a recovering
	// server.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxIdlePerAddr caps pooled idle connections per address
	// (default 4; negative disables pooling).
	MaxIdlePerAddr int
	// OnRetry, when non-nil, is invoked once per backoff retry, before
	// the backoff sleep. The Coordinator uses it to fold client retries
	// into its single mutex-guarded stats snapshot.
	OnRetry func()
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.MaxIdlePerAddr == 0 {
		c.MaxIdlePerAddr = 4
	}
	return c
}

// ClientStats is a point-in-time snapshot of a Client's counters.
type ClientStats struct {
	Calls   int64 // Call invocations
	Dials   int64 // fresh TCP connections established
	Reuses  int64 // calls served from a pooled connection
	Retries int64 // backoff retries after transient failures
}

// Client is a pooled directory-protocol client: connections are reused
// per address (the protocol pipelines request/response pairs on one
// TCP stream), every round trip runs under a deadline, and transient
// transport failures are retried with capped exponential backoff plus
// jitter. It is safe for concurrent use.
type Client struct {
	schema *model.Schema
	cfg    ClientConfig

	calls, dials, reuses, retries atomic.Int64

	mu     sync.Mutex
	idle   map[string][]*poolConn
	closed bool
	rng    *rand.Rand // jitter source; guarded by mu
}

// poolConn is one pooled connection. The decoder persists across calls:
// the stream carries exactly one JSON response per request, so the
// decoder never buffers past the reply it is reading.
type poolConn struct {
	c   net.Conn
	dec *json.Decoder
}

// NewClient creates a pooled client decoding entries against schema.
func NewClient(schema *model.Schema, cfg ClientConfig) *Client {
	return &Client{
		schema: schema,
		cfg:    cfg.withDefaults(),
		idle:   make(map[string][]*poolConn),
		rng:    rand.New(rand.NewSource(1)),
	}
}

// Stats snapshots the client's counters.
func (cl *Client) Stats() ClientStats {
	return ClientStats{
		Calls:   cl.calls.Load(),
		Dials:   cl.dials.Load(),
		Reuses:  cl.reuses.Load(),
		Retries: cl.retries.Load(),
	}
}

// Close drops all pooled connections. In-flight calls finish; new
// calls fail with ErrClientClosed.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.closed = true
	for _, conns := range cl.idle {
		for _, pc := range conns {
			_ = pc.c.Close()
		}
	}
	cl.idle = make(map[string][]*poolConn)
	return nil
}

// Call sends one request to addr and decodes the sorted entries,
// retrying transient transport failures. A reused pooled connection
// that turns out to have died idle gets one free redial that does not
// consume the retry budget.
func (cl *Client) Call(ctx context.Context, addr, kind, queryText string) ([]*model.Entry, error) {
	entries, _, err := cl.CallWithGen(ctx, addr, kind, queryText)
	return entries, err
}

// CallWithGen is Call plus the server's store generation echoed in the
// reply — the invalidation token for result caches layered above
// (zero when talking to a server predating the gen field).
func (cl *Client) CallWithGen(ctx context.Context, addr, kind, queryText string) ([]*model.Entry, int64, error) {
	entries, res, _, err := cl.do(ctx, addr, request{Kind: kind, Query: queryText})
	return entries, res.Gen, err
}

// RemoteTrace describes one traced exchange: the server-side span
// subtree (root Host = serving address) and the round trip's time
// split — server evaluation, server-side queueing, and what remains,
// the wire (serialization + network + client decode). Wire/Serve/Queue
// cover the successful exchange only; retried attempts are not
// included.
type RemoteTrace struct {
	Span  *obs.Span
	Wire  time.Duration
	Serve time.Duration
	Queue time.Duration
}

// CallTraced is CallWithGen carrying trace context on the wire:
// traceID and the issuing span's ID ride the request, the remaining
// context-deadline budget is forwarded so the server stops evaluating
// when this client would discard the answer, and the reply's span
// subtree plus wire/serve/queue time split come back in RemoteTrace.
// RemoteTrace is non-nil whenever the server replied (even with a
// query error, whose partial span tree keeps the merged trace
// well-formed); it is nil on transport failure.
func (cl *Client) CallTraced(ctx context.Context, addr, kind, queryText, traceID string, parentSpan uint64) ([]*model.Entry, int64, *RemoteTrace, error) {
	req := request{Kind: kind, Query: queryText, Trace: traceID, Span: parentSpan}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.BudgetMS = ms
		}
	}
	entries, res, rtt, err := cl.do(ctx, addr, req)
	if err != nil && !errors.Is(err, ErrRemote) {
		return nil, 0, nil, err
	}
	rt := &RemoteTrace{
		Span:  res.Trace,
		Serve: time.Duration(res.ServeUS) * time.Microsecond,
		Queue: time.Duration(res.QueueUS) * time.Microsecond,
	}
	if rt.Wire = rtt - rt.Serve - rt.Queue; rt.Wire < 0 {
		rt.Wire = 0
	}
	return entries, res.Gen, rt, err
}

// do runs the retry loop for one request, returning the decoded
// entries, the raw response (meaningful whenever the server replied,
// ErrRemote included), and how long the successful exchange took on
// this client's clock.
func (cl *Client) do(ctx context.Context, addr string, req request) ([]*model.Entry, response, time.Duration, error) {
	cl.calls.Add(1)
	b, err := json.Marshal(req)
	if err != nil {
		return nil, response{}, 0, err
	}
	var lastErr error
	freeRedial := true
	for attempt := 0; ; {
		if err := ctx.Err(); err != nil {
			return nil, response{}, 0, err
		}
		pc, reused, err := cl.get(ctx, addr)
		if err == nil {
			var entries []*model.Entry
			var res response
			start := time.Now()
			entries, res, err = cl.roundTrip(ctx, pc, b)
			rtt := time.Since(start)
			if err == nil {
				cl.put(addr, pc)
				return entries, res, rtt, nil
			}
			if errors.Is(err, ErrRemote) {
				// A protocol-clean error reply: the stream is still
				// framed correctly, so the connection stays pooled.
				cl.put(addr, pc)
				return nil, res, rtt, err
			}
			_ = pc.c.Close()
			if reused && freeRedial {
				// The pooled connection was stale (closed server-side
				// while idle); redial immediately.
				freeRedial = false
				continue
			}
		}
		if errors.Is(err, ErrClientClosed) || ctxExpired(ctx) != nil {
			if cerr := ctxExpired(ctx); cerr != nil {
				return nil, response{}, 0, fmt.Errorf("dirserver: %s: %w (last transport error: %v)", addr, cerr, err)
			}
			return nil, response{}, 0, err
		}
		lastErr = err
		attempt++
		if attempt > cl.cfg.MaxRetries {
			break
		}
		cl.retries.Add(1)
		if cl.cfg.OnRetry != nil {
			cl.cfg.OnRetry()
		}
		if err := sleepCtx(ctx, cl.backoff(attempt)); err != nil {
			return nil, response{}, 0, fmt.Errorf("dirserver: %s: %w (last transport error: %v)", addr, err, lastErr)
		}
	}
	return nil, response{}, 0, fmt.Errorf("%w: %s after %d attempts: %v", ErrUnavailable, addr, cl.cfg.MaxRetries+1, lastErr)
}

// roundTrip runs one request/response exchange on pc under the
// configured deadline (tightened by the context's, if earlier),
// returning the decoded entries and the raw response.
func (cl *Client) roundTrip(ctx context.Context, pc *poolConn, req []byte) ([]*model.Entry, response, error) {
	var res response
	dl := time.Now().Add(cl.cfg.RequestTimeout)
	if cdl, ok := ctx.Deadline(); ok && cdl.Before(dl) {
		dl = cdl
	}
	if err := pc.c.SetDeadline(dl); err != nil {
		return nil, res, err
	}
	// Cancellation mid-read: expire the deadline immediately.
	stop := context.AfterFunc(ctx, func() { _ = pc.c.SetDeadline(time.Now()) })
	defer stop()

	if _, err := pc.c.Write(append(req, '\n')); err != nil {
		return nil, res, err
	}
	if err := pc.dec.Decode(&res); err != nil {
		return nil, response{}, err
	}
	if res.Err != "" {
		if derr := pc.c.SetDeadline(time.Time{}); derr != nil {
			return nil, res, derr
		}
		return nil, res, fmt.Errorf("%w: %s", ErrRemote, res.Err)
	}
	out := make([]*model.Entry, len(res.Entries))
	for i, block := range res.Entries {
		var err error
		if out[i], err = ldif.UnmarshalEntry(cl.schema, block); err != nil {
			// Undecodable payload: treat as wire corruption (retryable),
			// not a terminal remote answer.
			return nil, res, fmt.Errorf("dirserver: garbled entry from server: %v", err)
		}
	}
	if err := pc.c.SetDeadline(time.Time{}); err != nil {
		return nil, res, err
	}
	return out, res, nil
}

// get pops a pooled connection for addr or dials a fresh one.
func (cl *Client) get(ctx context.Context, addr string) (pc *poolConn, reused bool, err error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, false, ErrClientClosed
	}
	if l := cl.idle[addr]; len(l) > 0 {
		pc = l[len(l)-1]
		cl.idle[addr] = l[:len(l)-1]
		cl.mu.Unlock()
		cl.reuses.Add(1)
		return pc, true, nil
	}
	cl.mu.Unlock()
	d := net.Dialer{Timeout: cl.cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, false, err
	}
	cl.dials.Add(1)
	return &poolConn{c: conn, dec: json.NewDecoder(conn)}, false, nil
}

// put returns a healthy connection to the pool.
func (cl *Client) put(addr string, pc *poolConn) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed || cl.cfg.MaxIdlePerAddr < 0 || len(cl.idle[addr]) >= cl.cfg.MaxIdlePerAddr {
		_ = pc.c.Close()
		return
	}
	cl.idle[addr] = append(cl.idle[addr], pc)
}

// backoff computes the sleep before retry n (1-based): exponential in
// n, capped, with jitter in [1/2, 1) of the nominal value.
func (cl *Client) backoff(n int) time.Duration {
	d := cl.cfg.BackoffBase << (n - 1)
	if d > cl.cfg.BackoffMax || d <= 0 {
		d = cl.cfg.BackoffMax
	}
	cl.mu.Lock()
	f := 0.5 + 0.5*cl.rng.Float64()
	cl.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// ctxExpired reports whether ctx is done — or, when it carries a
// deadline, whether that deadline has passed on the wall clock even if
// the context's own timer has not fired yet. A connection deadline
// derived from the context expires at the same instant as the context,
// and the resulting i/o timeout routinely races ahead of ctx.Err()
// flipping non-nil; callers deciding "was this a deadline failure?"
// must not lose that race.
func ctxExpired(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
		return context.DeadlineExceeded
	}
	return nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Call sends one request to a server and decodes the entries: the
// single-shot, unpooled form (one attempt, no retries) used by tools
// and tests. The context carries the caller's deadline.
func Call(ctx context.Context, addr string, schema *model.Schema, kind, queryText string) ([]*model.Entry, error) {
	cl := NewClient(schema, ClientConfig{MaxRetries: -1, MaxIdlePerAddr: -1})
	defer cl.Close()
	return cl.Call(ctx, addr, kind, queryText)
}
