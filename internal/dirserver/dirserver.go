// Package dirserver implements the distributed side of "Querying
// Network Directories": DNS-style delegation of the hierarchical
// namespace to directory servers (Section 3.3), a line-oriented query
// protocol over TCP, and the distributed query evaluation strategy of
// Section 8.3 — each atomic sub-query whose base DN is managed by
// another server is shipped to that server; the sorted result lists
// come back to the queried server, which runs the operator pipeline
// locally.
package dirserver

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/ldif"
	"repro/internal/model"
	"repro/internal/plist"
	"repro/internal/query"
)

// Registry is the delegation map of the directory information forest:
// which server owns which namespace subtree. It plays the role DNS
// plays for the paper's deployment story ("these directory servers can
// be located efficiently using mechanisms similar to those used in
// DNS").
type Registry struct {
	mu    sync.RWMutex
	zones []zone
}

type zone struct {
	key   string // reverse-DN key prefix of the delegated subtree
	dn    string
	addrs []string // primary first, then secondaries
}

// Register delegates the subtree rooted at domain to the given servers:
// a primary and, optionally, secondaries tried in order when the
// primary is unreachable ("Secondary directory servers ensure that one
// unreachable network will not necessarily cut off network directory
// service" — the paper's footnote 4). More specific (deeper)
// delegations take precedence, exactly as DNS subdomain delegation
// does.
func (r *Registry) Register(domain model.DN, addrs ...string) {
	if len(addrs) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.zones = append(r.zones, zone{key: domain.Key(), dn: domain.String(), addrs: addrs})
	sort.SliceStable(r.zones, func(i, j int) bool { return len(r.zones[i].key) > len(r.zones[j].key) })
}

// Lookup returns the primary server owning dn: the registered zone with
// the longest key prefix of dn's key.
func (r *Registry) Lookup(dn model.DN) (addr string, ok bool) {
	addrs, ok := r.LookupAll(dn)
	if !ok {
		return "", false
	}
	return addrs[0], true
}

// LookupAll returns every server (primary first) for the zone owning
// dn.
func (r *Registry) LookupAll(dn model.DN) ([]string, bool) {
	key := dn.Key()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, z := range r.zones { // sorted deepest-first
		if strings.HasPrefix(key, z.key) {
			return z.addrs, true
		}
	}
	return nil, false
}

// Zones lists the registered delegations (for tools).
func (r *Registry) Zones() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.zones))
	for i, z := range r.zones {
		out[i] = fmt.Sprintf("%s -> %s", z.dn, strings.Join(z.addrs, ", "))
	}
	return out
}

// request is one protocol message: a query to evaluate at the server.
// Kind is "atomic" (the distributed-evaluation workhorse), "query" (a
// full L0..L3 tree evaluated where it lands), or "ldap".
type request struct {
	Kind  string `json:"kind"`
	Query string `json:"query"`
}

// response carries the sorted result entries as LDIF blocks.
type response struct {
	Entries []string `json:"entries"`
	Err     string   `json:"err,omitempty"`
}

// Server serves a namespace subtree from a core.Directory over TCP.
type Server struct {
	dir  *core.Directory
	ln   net.Listener
	wg   sync.WaitGroup
	done chan struct{}
}

// Serve starts a server on addr (use "127.0.0.1:0" for an ephemeral
// port) for the given directory.
func Serve(dir *core.Directory, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{dir: dir, ln: ln, done: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for in-flight connections.
func (s *Server) Close() error {
	close(s.done)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		var req request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			_ = enc.Encode(response{Err: "bad request: " + err.Error()})
			return
		}
		_ = enc.Encode(s.serveOne(req))
	}
}

func (s *Server) serveOne(req request) response {
	var res *core.Result
	var err error
	switch req.Kind {
	case "atomic":
		var q query.Query
		q, err = query.Parse(req.Query)
		if err == nil {
			if _, ok := q.(*query.Atomic); !ok {
				err = fmt.Errorf("dirserver: %q is not atomic", req.Query)
			}
		}
		if err == nil {
			res, err = s.dir.SearchQuery(q)
		}
	case "query":
		res, err = s.dir.Search(req.Query)
	case "ldap":
		res, err = s.dir.SearchLDAP(req.Query)
	default:
		err = fmt.Errorf("dirserver: unknown request kind %q", req.Kind)
	}
	if err != nil {
		return response{Err: err.Error()}
	}
	out := response{Entries: make([]string, len(res.Entries))}
	for i, e := range res.Entries {
		out.Entries[i] = ldif.MarshalEntry(e)
	}
	return out
}

// Client errors.
var ErrRemote = errors.New("dirserver: remote error")

// Call sends one request to a server and decodes the entries.
func Call(addr string, schema *model.Schema, kind, queryText string) ([]*model.Entry, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	b, err := json.Marshal(request{Kind: kind, Query: queryText})
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(append(b, '\n')); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(conn)
	var res response
	if err := dec.Decode(&res); err != nil {
		return nil, err
	}
	if res.Err != "" {
		return nil, fmt.Errorf("%w: %s", ErrRemote, res.Err)
	}
	out := make([]*model.Entry, len(res.Entries))
	for i, block := range res.Entries {
		if out[i], err = ldif.UnmarshalEntry(schema, block); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Coordinator evaluates full query trees the Section 8.3 way: atomic
// sub-queries owned by other servers are shipped to them; their sorted
// results are materialized locally and fed into this server's operator
// pipeline.
type Coordinator struct {
	dir *core.Directory
	reg *Registry
	// selfAddr marks which delegations resolve to this server's own
	// directory (evaluated locally without a network hop).
	selfAddr string
	// remoteAtomics counts atomic sub-queries shipped elsewhere.
	remoteAtomics int
}

// NewCoordinator wraps a local directory. reg maps namespace subtrees
// to server addresses; selfAddr identifies the local server in reg.
func NewCoordinator(dir *core.Directory, reg *Registry, selfAddr string) *Coordinator {
	c := &Coordinator{dir: dir, reg: reg, selfAddr: selfAddr}
	dir.Engine().SetResolver(c.resolveAtomic)
	return c
}

// RemoteAtomics reports how many atomic sub-queries were shipped to
// other servers since creation.
func (c *Coordinator) RemoteAtomics() int { return c.remoteAtomics }

func (c *Coordinator) resolveAtomic(q *query.Atomic) (*plist.List, error) {
	addrs, ok := c.reg.LookupAll(q.Base)
	if !ok {
		return c.dir.Engine().Store().Eval(q)
	}
	for _, a := range addrs {
		if a == c.selfAddr {
			return c.dir.Engine().Store().Eval(q)
		}
	}
	c.remoteAtomics++
	// Try the primary, then each secondary (footnote 4 failover).
	var entries []*model.Entry
	var err error
	for _, addr := range addrs {
		entries, err = Call(addr, c.dir.Schema(), "atomic", q.String())
		if err == nil {
			break
		}
		if errors.Is(err, ErrRemote) {
			// The server answered with an error: failing over will not
			// change the outcome.
			return nil, err
		}
	}
	if err != nil {
		return nil, fmt.Errorf("dirserver: all servers for %q unreachable: %w", q.Base, err)
	}
	// Results arrive in reverse-DN order (every server's evaluation
	// preserves it); materialize them on the local disk for the
	// pipeline.
	w := plist.NewWriter(c.dir.Disk())
	for _, e := range entries {
		if err := w.Append(plist.FromEntry(e)); err != nil {
			return nil, err
		}
	}
	return w.Close()
}

// Search evaluates a query string, distributing atomics as needed.
func (c *Coordinator) Search(text string) ([]*model.Entry, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	if err := query.Validate(c.dir.Schema(), q); err != nil {
		return nil, err
	}
	l, err := c.dir.Engine().Eval(q)
	if err != nil {
		return nil, err
	}
	recs, err := plist.Drain(l)
	if err != nil {
		return nil, err
	}
	out := make([]*model.Entry, len(recs))
	for i, r := range recs {
		out[i] = r.Entry
	}
	return out, l.Free()
}
