// Package dirserver implements the distributed side of "Querying
// Network Directories": DNS-style delegation of the hierarchical
// namespace to directory servers (Section 3.3), a line-oriented query
// protocol over TCP, and the distributed query evaluation strategy of
// Section 8.3 — each atomic sub-query whose base DN is managed by
// another server is shipped to that server; the sorted result lists
// come back to the queried server, which runs the operator pipeline
// locally.
//
// The layer is hardened for real networks: every round trip runs under
// a deadline, the pooled Client retries transient transport failures
// with capped backoff, and the Coordinator's per-address circuit
// breakers skip unhealthy primaries in favor of secondaries (the
// paper's footnote 4: "one unreachable network will not necessarily
// cut off network directory service").
package dirserver

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"encoding/json"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ldif"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pager"
	"repro/internal/plist"
	"repro/internal/qcache"
	"repro/internal/query"
	"repro/internal/store"
)

// Registry is the delegation map of the directory information forest:
// which server owns which namespace subtree. It plays the role DNS
// plays for the paper's deployment story ("these directory servers can
// be located efficiently using mechanisms similar to those used in
// DNS").
type Registry struct {
	mu    sync.RWMutex
	zones []zone
}

type zone struct {
	key   string // reverse-DN key prefix of the delegated subtree
	dn    string
	addrs []string // primary first, then secondaries
}

// Register delegates the subtree rooted at domain to the given servers:
// a primary and, optionally, secondaries tried in order when the
// primary is unreachable ("Secondary directory servers ensure that one
// unreachable network will not necessarily cut off network directory
// service" — the paper's footnote 4). More specific (deeper)
// delegations take precedence, exactly as DNS subdomain delegation
// does.
func (r *Registry) Register(domain model.DN, addrs ...string) {
	if len(addrs) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.zones = append(r.zones, zone{key: domain.Key(), dn: domain.String(), addrs: addrs})
	sort.SliceStable(r.zones, func(i, j int) bool { return len(r.zones[i].key) > len(r.zones[j].key) })
}

// Lookup returns the primary server owning dn: the registered zone with
// the longest key prefix of dn's key.
func (r *Registry) Lookup(dn model.DN) (addr string, ok bool) {
	addrs, ok := r.LookupAll(dn)
	if !ok {
		return "", false
	}
	return addrs[0], true
}

// LookupAll returns every server (primary first) for the zone owning
// dn.
func (r *Registry) LookupAll(dn model.DN) ([]string, bool) {
	key := dn.Key()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, z := range r.zones { // sorted deepest-first
		if strings.HasPrefix(key, z.key) {
			return z.addrs, true
		}
	}
	return nil, false
}

// Zones lists the registered delegations (for tools).
func (r *Registry) Zones() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.zones))
	for i, z := range r.zones {
		out[i] = fmt.Sprintf("%s -> %s", z.dn, strings.Join(z.addrs, ", "))
	}
	return out
}

// request is one protocol message: a query to evaluate at the server.
// Kind is "atomic" (the distributed-evaluation workhorse), "query" (a
// full L0..L3 tree evaluated where it lands), "ldap", or — on servers
// started with ServerConfig.Mutable — "add" (Query carries one LDIF
// entry block) or "del" (Query carries a DN).
//
// The optional trace-context fields implement distributed tracing
// (DESIGN.md §13): Trace carries the 128-bit trace ID assigned at the
// query's entry point, Span the client-side span that issued this
// request (the remote subtree's parent), and BudgetMS the remaining
// deadline budget, so a server stops evaluating when the coordinator's
// deadline would discard the answer anyway.
type request struct {
	Kind  string `json:"kind"`
	Query string `json:"query"`

	Trace    string `json:"trace,omitempty"`
	Span     uint64 `json:"span,omitempty"`
	BudgetMS int64  `json:"budget_ms,omitempty"`
}

// response carries the sorted result entries as LDIF blocks, plus the
// serving directory's store generation — the remote cache-invalidation
// token: a coordinator caching this answer keys it by (address, atomic,
// Gen), so any later reply echoing a different generation makes every
// older cached answer from that server unreachable with one integer
// compare. Gen is scoped to one server process; a replica that
// restarts (fresh Directory, generation counter reset) must be treated
// as a new cache peer.
type response struct {
	Entries []string `json:"entries"`
	Gen     int64    `json:"gen,omitempty"`
	Err     string   `json:"err,omitempty"`

	// Trace is the server-side span subtree of this evaluation, returned
	// only when the request carried a trace ID. Its root has Host set to
	// the serving address and ParentID to the request's Span, so the
	// client grafts it into its own tree and dirq -explain renders one
	// merged tree across every process the query touched.
	Trace *obs.Span `json:"trace,omitempty"`
	// ServeUS and QueueUS split the server-side time (microseconds):
	// evaluation proper, and the lag between the request line arriving
	// and evaluation starting. The client derives wire time as its
	// round-trip elapsed minus both.
	ServeUS int64 `json:"serve_us,omitempty"`
	QueueUS int64 `json:"queue_us,omitempty"`
}

// maxRequestBytes caps one request line on the wire.
const maxRequestBytes = 1 << 22

// ServerConfig tunes a server's per-connection robustness knobs. The
// zero value means: no idle or write deadlines (trusted-network
// behavior), a 1s drain grace on Close, and hang-up after 8
// consecutive malformed request lines.
type ServerConfig struct {
	// IdleTimeout is the read deadline between requests on one
	// connection; idle connections past it are closed (0 = no limit).
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response (0 = no limit).
	WriteTimeout time.Duration
	// Grace bounds how long Close waits for in-flight connections to
	// drain before force-closing them (default 1s).
	Grace time.Duration
	// MaxBadRequests is the number of consecutive malformed request
	// lines tolerated on one connection before the server hangs up
	// (default 8). Each one is answered with a response{Err: ...}
	// first, so a single bad line never silently kills a pooled
	// connection.
	MaxBadRequests int
	// Mutable enables the "add" and "del" request kinds. Read-only
	// servers (the default) answer both with an error and leave the
	// directory untouched.
	Mutable bool
	// AfterUpdate, when non-nil, runs synchronously after each
	// successful mutation and before the reply is written. dirserve
	// installs a durable checkpoint here: the client's acknowledgment
	// then means the new generation has survived the full
	// write-temp → fsync → rename → fsync-dir protocol, so an ack
	// followed by kill -9 still recovers to (at least) that state. An
	// AfterUpdate error is reported to the client in place of success —
	// the mutation is applied in memory but was never promised durable.
	AfterUpdate func() error
	// Metrics, when non-nil, records every served request: count,
	// latency, page I/O and result-cardinality histograms.
	Metrics *obs.QueryMetrics
	// SlowLog, when non-nil, emits one-line JSON for requests crossing
	// its thresholds (and for every failed request).
	SlowLog *obs.SlowLog
	// Flight, when non-nil, retains the span tree of every served query
	// in the flight recorder (exposed at /debug/queries). Setting it —
	// or attaching a qstats store to the directory — makes the server
	// trace every query it serves; traced serving bypasses the
	// directory's result cache, trading cache hits for a complete
	// per-operator record of each request.
	Flight *obs.FlightRecorder
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Grace <= 0 {
		c.Grace = time.Second
	}
	if c.MaxBadRequests <= 0 {
		c.MaxBadRequests = 8
	}
	return c
}

// Server serves a namespace subtree from a core.Directory over TCP.
type Server struct {
	dir  *core.Directory
	ln   net.Listener
	cfg  ServerConfig
	wg   sync.WaitGroup
	done chan struct{}

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	closeOnce sync.Once
	closeErr  error
}

// Serve starts a server on addr (use "127.0.0.1:0" for an ephemeral
// port) with default robustness settings.
func Serve(dir *core.Directory, addr string) (*Server, error) {
	return ServeWith(dir, addr, ServerConfig{})
}

// ServeWith starts a server with explicit timeouts and drain behavior.
func ServeWith(dir *core.Directory, addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		dir:   dir,
		ln:    ln,
		cfg:   cfg.withDefaults(),
		done:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, then drains in-flight connections for at most
// the configured grace period before force-closing the stragglers. It
// is idempotent and safe to call concurrently.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.done)
		s.closeErr = s.ln.Close()
		// Let in-flight requests finish, but bound idle connections:
		// an expiring read deadline unblocks their next Scan.
		s.mu.Lock()
		for c := range s.conns {
			_ = c.SetReadDeadline(time.Now().Add(s.cfg.Grace))
		}
		s.mu.Unlock()
		drained := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(drained)
		}()
		t := time.NewTimer(s.cfg.Grace + s.cfg.Grace/2 + 100*time.Millisecond)
		defer t.Stop()
		select {
		case <-drained:
		case <-t.C:
			s.mu.Lock()
			for c := range s.conns {
				_ = c.Close()
			}
			s.mu.Unlock()
			<-drained
		}
	})
	return s.closeErr
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				_ = conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), maxRequestBytes)
	enc := json.NewEncoder(conn)
	bad := 0
	for {
		select {
		case <-s.done:
			return // draining: don't extend the grace deadline
		default:
		}
		if s.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		if !sc.Scan() {
			// A scanner-level failure that is not a timeout or hangup —
			// e.g. a request over the buffer cap — is reported to the
			// client before closing, not silently dropped. The rest of
			// the oversized line is drained first: closing with unread
			// bytes in the receive queue would RST the connection and
			// destroy the reply in flight.
			if err := sc.Err(); err != nil && !isNetShutdown(err) {
				if s.reply(conn, enc, response{Err: "bad request: " + err.Error()}) {
					s.drainLine(conn)
				}
			}
			return
		}
		// recv anchors the queue-time half of the server-side split: the
		// request line is in hand, evaluation has not started.
		recv := time.Now()
		if len(strings.TrimSpace(string(sc.Bytes()))) == 0 {
			continue
		}
		var req request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			// One malformed line answers with an error but keeps the
			// (possibly pooled) connection alive; a stream of them
			// hangs up.
			bad++
			if !s.reply(conn, enc, response{Err: "bad request: " + err.Error()}) || bad >= s.cfg.MaxBadRequests {
				return
			}
			continue
		}
		bad = 0
		if !s.reply(conn, enc, s.serveOne(req, recv)) {
			return
		}
	}
}

// drainLine swallows the remainder of an oversized request line (up to
// a hard cap, under a deadline) so the subsequent close is a graceful
// FIN rather than an RST that could race ahead of the error reply.
func (s *Server) drainLine(conn net.Conn) {
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16*1024)
	var drained int64
	for drained < 16*maxRequestBytes {
		n, err := conn.Read(buf)
		for i := 0; i < n; i++ {
			if buf[i] == '\n' {
				return
			}
		}
		drained += int64(n)
		if err != nil {
			return
		}
	}
}

// reply writes one response under the write deadline; false means the
// connection is unusable.
func (s *Server) reply(conn net.Conn, enc *json.Encoder, res response) bool {
	if s.cfg.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	return enc.Encode(res) == nil
}

// isNetShutdown reports errors that need no client-visible reply: the
// peer went away or a deadline expired.
func isNetShutdown(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, net.ErrClosed)
}

func (s *Server) serveOne(req request, recv time.Time) response {
	start := time.Now()
	queue := start.Sub(recv)
	var res *core.Result
	var root *obs.Span
	var gen int64
	var err error
	// A query request is traced when the caller propagated a trace ID,
	// or the server itself observes every query (flight recorder /
	// statistics store). Mutations are never traced: they have no
	// operator tree.
	traced := req.Trace != "" || s.cfg.Flight != nil || s.dir.QueryStats() != nil
	ctx, cancel := budgetCtx(req)
	defer cancel()
	switch req.Kind {
	case "add", "del":
		traced = false
		gen, err = s.applyWrite(req)
	case "atomic":
		var q query.Query
		q, err = query.Parse(req.Query)
		if err == nil {
			if _, ok := q.(*query.Atomic); !ok {
				err = fmt.Errorf("dirserver: %q is not atomic", req.Query)
			}
		}
		if err == nil {
			if traced {
				res, root, err = s.dir.SearchQueryTraced(ctx, q)
			} else {
				res, err = s.dir.SearchQuery(q)
			}
		}
	case "query":
		var q query.Query
		q, err = query.Parse(req.Query)
		if err == nil {
			if traced {
				res, root, err = s.dir.SearchQueryTraced(ctx, q)
			} else {
				res, err = s.dir.SearchQuery(q)
			}
		}
	case "ldap":
		if traced {
			res, root, err = s.dir.SearchLDAPTraced(ctx, req.Query)
		} else {
			res, err = s.dir.SearchLDAP(req.Query)
		}
	default:
		traced = false
		err = fmt.Errorf("dirserver: unknown request kind %q", req.Kind)
	}
	dur := time.Since(start)
	var io int64
	var entries int
	if res != nil {
		io = res.IO.IO()
		entries = len(res.Entries)
		gen = res.Gen
	}
	if root != nil {
		// Stamp the subtree as this process's: Host marks the boundary
		// the I/O-conservation law splits on, ParentID the client-side
		// span the subtree hangs under once merged.
		root.Host = s.Addr()
		root.ParentID = req.Span
	}
	traceID := req.Trace
	if traced && traceID == "" {
		traceID = obs.NewTraceID() // locally originated: still findable in /debug/queries
	}
	if s.cfg.Metrics != nil || s.cfg.SlowLog != nil {
		s.cfg.Metrics.Observe(dur, io, int64(entries), err != nil)
		s.cfg.SlowLog.Record(req.Kind, req.Query, gen, traceID, dur, io, entries, err)
	}
	if err != nil {
		s.record(req, traced, traceID, gen, dur, io, 0, 0, err, root)
		out := response{Err: err.Error(), ServeUS: dur.Microseconds(), QueueUS: queue.Microseconds()}
		if req.Trace != "" {
			// A lost or failed evaluation still returns its partial span
			// subtree, so the merged tree stays well-formed.
			out.Trace = root
		}
		return out
	}
	if req.Kind == "add" || req.Kind == "del" {
		// A write acknowledgment: no entries, just the generation the
		// mutation produced (already durable if AfterUpdate says so).
		return response{Gen: gen}
	}
	// Echo the generation the evaluation actually ran against (carried
	// on the Result), not the directory's current generation: an Update
	// swapping the store mid-evaluation must not stamp old entries with
	// the new generation, or remote caches would pin stale answers
	// under a fresh token.
	out := response{
		Entries: make([]string, len(res.Entries)), Gen: res.Gen,
		ServeUS: dur.Microseconds(), QueueUS: queue.Microseconds(),
	}
	hash := fnv.New64a()
	for i, e := range res.Entries {
		block := ldif.MarshalEntry(e)
		out.Entries[i] = block
		_, _ = hash.Write([]byte(block))
	}
	s.record(req, traced, traceID, gen, dur, io, entries, hash.Sum64(), nil, root)
	if req.Trace != "" {
		out.Trace = root
	}
	return out
}

// budgetCtx derives the evaluation context from the request's remaining
// deadline budget, so a server abandons work the coordinator would
// discard anyway. The returned cancel must be called.
func budgetCtx(req request) (context.Context, context.CancelFunc) {
	if req.BudgetMS <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), time.Duration(req.BudgetMS)*time.Millisecond)
}

// record retains one served query in the flight recorder (no-op when
// none is configured). The normalized query text, generation, result
// hash and full span tree make a retained trace comparable across
// repeats: same query + same generation should mean same hash.
// Queries that fail before evaluation starts (parse or validation
// errors) are retained too — with no span tree — so ?errors=1 shows
// every rejected query, not just the ones that died mid-evaluation.
func (s *Server) record(req request, traced bool, traceID string, gen int64, dur time.Duration, io int64, entries int, hash uint64, err error, root *obs.Span) {
	if s.cfg.Flight == nil || !traced {
		return
	}
	rec := &obs.FlightRecord{
		TraceID: traceID,
		Kind:    req.Kind,
		Query:   req.Query,
		Gen:     gen,
		Dur:     dur,
		IO:      io,
		Entries: entries,
		Hash:    hash,
		Root:    root,
	}
	// Normalize the display text through a parse/print round trip
	// (case folding, whitespace) — but not query.Canonical, whose
	// reverse-DN keys embed NUL separators and are unreadable.
	if q, perr := query.Parse(req.Query); perr == nil {
		rec.Query = q.String()
	}
	if err != nil {
		rec.Err = err.Error()
	}
	s.cfg.Flight.Record(rec)
}

// applyWrite executes one "add" or "del" mutation and returns the
// generation it produced (under concurrent writers: a generation that
// includes it). Malformed input fails before Update so the directory
// never swaps; the AfterUpdate hook (durable checkpoint) runs before
// the acknowledgment, so a successful reply is a durability promise
// when the server is configured that way.
func (s *Server) applyWrite(req request) (int64, error) {
	if !s.cfg.Mutable {
		return 0, fmt.Errorf("dirserver: read-only server rejects kind %q", req.Kind)
	}
	// Writes go through the entry-level fast path: the directory forks
	// its page device copy-on-write instead of rebuilding it, and a
	// server running with delta checkpoints then persists just the
	// dirtied pages. Mutations the fast path cannot express fall back
	// to a full rebuild inside UpdateEntries — same answers, one
	// generation either way. Malformed input still fails before the
	// directory is touched, so it never swaps.
	var op store.EntryOp
	switch req.Kind {
	case "add":
		e, err := ldif.UnmarshalEntry(s.dir.Schema(), req.Query)
		if err != nil {
			return 0, fmt.Errorf("dirserver: add: %w", err)
		}
		op = store.EntryOp{Add: e}
	case "del":
		dn, err := model.ParseDN(req.Query)
		if err != nil {
			return 0, fmt.Errorf("dirserver: del: %w", err)
		}
		op = store.EntryOp{Remove: dn}
	}
	if err := s.dir.UpdateEntries(op); err != nil {
		return 0, fmt.Errorf("dirserver: %s: %w", req.Kind, err)
	}
	gen := s.dir.Generation()
	if s.cfg.AfterUpdate != nil {
		if err := s.cfg.AfterUpdate(); err != nil {
			return 0, fmt.Errorf("dirserver: update applied but not durable: %w", err)
		}
	}
	return gen, nil
}

// CoordinatorConfig tunes the coordinator's client and failover
// behavior; the zero value uses the ClientConfig and BreakerConfig
// defaults.
type CoordinatorConfig struct {
	Client  ClientConfig
	Breaker BreakerConfig
	// CacheBytes enables the remote-result cache when positive: answers
	// to remote atomics are kept within this byte budget, keyed by
	// (replica address, the store generation echoed in its reply,
	// canonical query text). A reply echoing a new generation makes
	// every older answer from that replica unreachable at once.
	CacheBytes int64
	// CacheTTL bounds how long a cached answer is served in place of a
	// round trip (default 1s when the cache is enabled). When every
	// replica of a zone is unreachable, generation-current answers of
	// any age are served instead — the cache masks the outage rather
	// than letting a flaky network take recently answered queries down
	// with it.
	CacheTTL time.Duration
}

// CoordinatorStats is a concurrency-safe snapshot of a coordinator's
// distributed-evaluation counters.
type CoordinatorStats struct {
	RemoteAtomics int64 // atomic sub-queries shipped to other servers
	LocalAtomics  int64 // delegated atomics that resolved to this server
	Retries       int64 // transport retries performed by the pooled client
	Failovers     int64 // atomics that fell over to a later replica
	BreakerTrips  int64 // breakers tripped open
	BreakerSkips  int64 // replicas skipped because their breaker was open
	CacheHits     int64 // remote atomics answered from the result cache
	CacheMasked   int64 // unreachable zones masked by a cached answer
}

// Coordinator evaluates full query trees the Section 8.3 way: atomic
// sub-queries owned by other servers are shipped to them; their sorted
// results are materialized locally and fed into this server's operator
// pipeline. Remote calls run under the caller's context through the
// pooled retrying Client, and per-address breakers steer around
// unhealthy replicas.
//
// Like core.Directory, one coordinator serializes pipeline evaluation
// internally — queries run one at a time so each windowed I/O delta
// belongs to one query (the pager ownership rule) — so Search is safe
// to call from many goroutines. Within one query, an engine built with
// Workers > 1 evaluates independent subtrees concurrently, and their
// atomic sub-queries fan out to replicas in parallel through this
// coordinator's resolver: the pooled client, breakers, result cache,
// and stats all carry their own synchronization, so concurrent resolver
// calls compose with the existing deadline and failover machinery
// unchanged (DESIGN.md §9). A coordinator wraps the directory's engine
// as built; directories mutated with Update need a fresh coordinator.
type Coordinator struct {
	dir      *core.Directory
	eng      *engine.Engine
	disk     *pager.Disk
	reg      *Registry
	selfAddr string
	client   *Client
	health   *health

	evalMu sync.Mutex // one pipeline evaluation at a time

	// Remote-result cache (nil unless CoordinatorConfig.CacheBytes > 0).
	// lastGen tracks the newest store generation each replica has echoed
	// in a successful reply; cache keys embed it, so updating the map is
	// the whole invalidation.
	rcache   *qcache.Cache
	cacheTTL time.Duration
	genMu    sync.Mutex
	lastGen  map[string]int64

	// statsMu guards stats — the single consistent read path for every
	// distributed-evaluation counter. Client retries and breaker trips
	// arrive here through the OnRetry/onTrip hooks, so one lock
	// acquisition in Stats observes a mutually consistent snapshot
	// (previously each field was a separate atomic read against live
	// counters, and a snapshot could pair a retry with a trip it
	// preceded).
	statsMu sync.Mutex
	stats   CoordinatorStats
}

// bump applies one counter mutation under the stats mutex.
func (c *Coordinator) bump(f func(*CoordinatorStats)) {
	c.statsMu.Lock()
	f(&c.stats)
	c.statsMu.Unlock()
}

// NewCoordinator wraps a local directory with default client and
// breaker settings. reg maps namespace subtrees to server addresses;
// selfAddr identifies the local server in reg.
func NewCoordinator(dir *core.Directory, reg *Registry, selfAddr string) *Coordinator {
	return NewCoordinatorWith(dir, reg, selfAddr, CoordinatorConfig{})
}

// NewCoordinatorWith wraps a local directory with explicit timeouts,
// retry policy, and breaker thresholds.
func NewCoordinatorWith(dir *core.Directory, reg *Registry, selfAddr string, cfg CoordinatorConfig) *Coordinator {
	c := &Coordinator{
		dir:      dir,
		eng:      dir.Engine(),
		disk:     dir.Disk(),
		reg:      reg,
		selfAddr: selfAddr,
	}
	cfg.Client.OnRetry = func() { c.bump(func(s *CoordinatorStats) { s.Retries++ }) }
	c.client = NewClient(dir.Schema(), cfg.Client)
	c.health = newHealth(cfg.Breaker)
	c.health.onTrip = func() { c.bump(func(s *CoordinatorStats) { s.BreakerTrips++ }) }
	if cfg.CacheBytes > 0 {
		c.rcache = qcache.New(cfg.CacheBytes)
		c.cacheTTL = cfg.CacheTTL
		if c.cacheTTL <= 0 {
			c.cacheTTL = time.Second
		}
		c.lastGen = make(map[string]int64)
	}
	c.eng.SetResolver(c.resolveAtomic)
	return c
}

// Close releases the coordinator's pooled connections.
func (c *Coordinator) Close() error { return c.client.Close() }

// Stats snapshots the coordinator's counters in one mutex acquisition:
// every field in the returned struct was observed at the same instant.
func (c *Coordinator) Stats() CoordinatorStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

// RegisterMetrics exposes the coordinator's counters (and, when the
// remote-result cache is enabled, the cache's) as pull-based gauges
// under the given name prefix, e.g. "dirkit_coord".
func (c *Coordinator) RegisterMetrics(reg *obs.Registry, prefix string) {
	gauge := func(name, help string, f func(*CoordinatorStats) int64) {
		reg.GaugeFunc(prefix+name, help, func() int64 {
			c.statsMu.Lock()
			defer c.statsMu.Unlock()
			return f(&c.stats)
		})
	}
	gauge("_remote_atomics", "atomic sub-queries shipped to other servers", func(s *CoordinatorStats) int64 { return s.RemoteAtomics })
	gauge("_local_atomics", "delegated atomics that resolved locally", func(s *CoordinatorStats) int64 { return s.LocalAtomics })
	gauge("_retries", "transport retries performed by the pooled client", func(s *CoordinatorStats) int64 { return s.Retries })
	gauge("_failovers", "atomics that fell over to a later replica", func(s *CoordinatorStats) int64 { return s.Failovers })
	gauge("_breaker_trips", "circuit breakers tripped open", func(s *CoordinatorStats) int64 { return s.BreakerTrips })
	gauge("_breaker_skips", "replicas skipped on an open breaker", func(s *CoordinatorStats) int64 { return s.BreakerSkips })
	gauge("_cache_hits", "remote atomics answered from the result cache", func(s *CoordinatorStats) int64 { return s.CacheHits })
	gauge("_cache_masked", "unreachable zones masked by a cached answer", func(s *CoordinatorStats) int64 { return s.CacheMasked })
	if c.rcache != nil {
		c.rcache.RegisterMetrics(reg, prefix+"_rcache")
	}
}

// CacheStats snapshots the remote-result cache's counters (the zero
// Stats when the cache is disabled).
func (c *Coordinator) CacheStats() qcache.Stats {
	if c.rcache == nil {
		return qcache.Stats{}
	}
	return c.rcache.Stats()
}

// RemoteAtomics reports how many atomic sub-queries were shipped to
// other servers since creation.
func (c *Coordinator) RemoteAtomics() int { return int(c.Stats().RemoteAtomics) }

// BreakerState reports addr's breaker state ("closed", "open",
// "half-open") for tools and tests.
func (c *Coordinator) BreakerState(addr string) string { return c.health.snapshot(addr) }

func (c *Coordinator) resolveAtomic(ctx context.Context, q *query.Atomic) (*plist.List, error) {
	tr := obs.FromContext(ctx) // nil (no-op) unless the caller traced
	addrs, ok := c.reg.LookupAll(q.Base)
	if !ok {
		return c.eng.Store().Eval(q)
	}
	for _, a := range addrs {
		if a == c.selfAddr {
			c.bump(func(s *CoordinatorStats) { s.LocalAtomics++ })
			tr.Annotate("resolve", "local")
			return c.eng.Store().Eval(q)
		}
	}
	c.bump(func(s *CoordinatorStats) { s.RemoteAtomics++ })

	var canon string
	if c.rcache != nil {
		canon = query.Canonical(q)
		// Fresh path: a recent generation-current answer from any
		// replica of the zone saves the round trip entirely.
		if entries, ok := c.cacheLookup(addrs, canon, true); ok {
			c.bump(func(s *CoordinatorStats) { s.CacheHits++ })
			tr.Annotate("resolve", "cache")
			return c.materialize(entries)
		}
	}

	// Health-aware footnote-4 failover: replicas whose breaker is open
	// are skipped in favor of later ones; if every breaker is open the
	// full list is tried anyway (a last resort beats failing fast on
	// stale health). A candidate let through as a half-open probe is
	// remembered: the probe is an extra attempt spent re-testing a
	// failed address, and counts as a retry when it completes.
	type candidate struct {
		addr  string
		probe bool
	}
	candidates := make([]candidate, 0, len(addrs))
	for _, addr := range addrs {
		if ok, probe := c.health.allow(addr); ok {
			candidates = append(candidates, candidate{addr: addr, probe: probe})
		} else {
			c.bump(func(s *CoordinatorStats) { s.BreakerSkips++ })
		}
	}
	if len(candidates) == 0 {
		for _, addr := range addrs {
			candidates = append(candidates, candidate{addr: addr})
		}
	}

	retriesBefore := c.client.retries.Load()
	var lastErr error
	for i, cand := range candidates {
		addr := cand.addr
		if i > 0 {
			c.bump(func(s *CoordinatorStats) { s.Failovers++ })
		}
		entries, gen, rt, err := c.callRemote(ctx, tr, addr, q)
		if err == nil {
			c.health.success(addr)
			if c.rcache != nil {
				c.cacheStore(addr, gen, canon, entries)
			}
			c.finishRemote(tr, addr, i, retriesBefore, cand.probe, rt)
			return c.materialize(entries)
		}
		if errors.Is(err, ErrRemote) {
			// The server answered with an error: it is healthy, and
			// failing over will not change the outcome.
			c.health.success(addr)
			c.finishRemote(tr, addr, i, retriesBefore, cand.probe, rt)
			return nil, err
		}
		c.health.failure(addr)
		lastErr = err
		if cerr := ctxExpired(ctx); cerr != nil {
			return nil, fmt.Errorf("dirserver: resolving %q: %w (last transport error: %v)", q.Base, cerr, err)
		}
	}
	// The whole zone is unreachable. A cached answer whose generation is
	// still current as far as this coordinator knows masks the outage —
	// staleness is bounded by the generation protocol, not wall clock.
	if c.rcache != nil {
		if entries, ok := c.cacheLookup(addrs, canon, false); ok {
			c.bump(func(s *CoordinatorStats) { s.CacheMasked++ })
			tr.Annotate("resolve", "cache-stale")
			return c.materialize(entries)
		}
	}
	return nil, fmt.Errorf("%w: all servers for %q unreachable: %v", ErrUnavailable, q.Base, lastErr)
}

// callRemote ships one atomic to addr. With a tracer on the context
// the exchange carries trace ID, issuing span, and deadline budget on
// the wire and brings back the server's span subtree; without one it
// is a plain CallWithGen and the RemoteTrace is nil.
func (c *Coordinator) callRemote(ctx context.Context, tr *obs.Tracer, addr string, q *query.Atomic) ([]*model.Entry, int64, *RemoteTrace, error) {
	if tr == nil {
		entries, gen, err := c.client.CallWithGen(ctx, addr, "atomic", q.String())
		return entries, gen, nil, err
	}
	return c.client.CallTraced(ctx, addr, "atomic", q.String(), tr.TraceID(), tr.CurrentID())
}

// finishRemote settles the accounting for a completed remote exchange
// (successful or healthy-ErrRemote): the half-open probe, if this was
// one, is counted as a retry in the coordinator stats AND in the span
// annotation — the two must never disagree — then the span is tagged
// with replica/failover/retries and the wire/serve/queue time split,
// and the server's reported subtree is grafted under the current span.
func (c *Coordinator) finishRemote(tr *obs.Tracer, addr string, failover int, retriesBefore int64, probe bool, rt *RemoteTrace) {
	var probeExtra int64
	if probe {
		c.bump(func(s *CoordinatorStats) { s.Retries++ })
		probeExtra = 1
	}
	if tr == nil {
		return
	}
	tr.Annotate("replica", addr)
	if failover > 0 {
		tr.Annotate("failover", strconv.Itoa(failover))
	}
	if d := c.client.retries.Load() - retriesBefore + probeExtra; d > 0 {
		tr.Annotate("retries", strconv.FormatInt(d, 10))
	}
	if rt == nil {
		return
	}
	tr.Annotate("wire_us", strconv.FormatInt(rt.Wire.Microseconds(), 10))
	tr.Annotate("serve_us", strconv.FormatInt(rt.Serve.Microseconds(), 10))
	tr.Annotate("queue_us", strconv.FormatInt(rt.Queue.Microseconds(), 10))
	if rt.Span != nil {
		if rt.Span.Host == "" {
			rt.Span.Host = addr
		}
		tr.Attach(rt.Span)
	}
}

// cachedAnswer is one remembered remote reply: the decoded entries and
// when they were stored (for the TTL-bounded fresh path).
type cachedAnswer struct {
	entries []*model.Entry
	stored  time.Time
}

func remoteCacheKey(addr string, gen int64, canon string) string {
	return fmt.Sprintf("%s|g%d|%s", addr, gen, canon)
}

// cacheLookup searches the zone's replicas for a cached answer to canon
// at each replica's last observed generation. freshOnly restricts to
// answers younger than the TTL (the round-trip-saving path); without it
// any generation-current answer qualifies (the outage-masking path).
func (c *Coordinator) cacheLookup(addrs []string, canon string, freshOnly bool) ([]*model.Entry, bool) {
	for _, addr := range addrs {
		c.genMu.Lock()
		gen, ok := c.lastGen[addr]
		c.genMu.Unlock()
		if !ok {
			continue
		}
		v, ok := c.rcache.Get(remoteCacheKey(addr, gen, canon))
		if !ok {
			continue
		}
		ans := v.(*cachedAnswer)
		if freshOnly && time.Since(ans.stored) > c.cacheTTL {
			continue
		}
		return ans.entries, true
	}
	return nil, false
}

// cacheStore remembers a successful reply and advances the replica's
// observed generation; if gen moved, every answer cached under the old
// generation stops matching immediately and ages out of the LRU.
func (c *Coordinator) cacheStore(addr string, gen int64, canon string, entries []*model.Entry) {
	c.genMu.Lock()
	c.lastGen[addr] = gen
	c.genMu.Unlock()
	c.rcache.Put(remoteCacheKey(addr, gen, canon), &cachedAnswer{entries: entries, stored: time.Now()}, entriesCost(entries))
}

// entriesCost approximates an answer's resident bytes by its LDIF size
// plus a fixed per-answer overhead.
func entriesCost(entries []*model.Entry) int64 {
	n := int64(64)
	for _, e := range entries {
		n += int64(len(ldif.MarshalEntry(e)))
	}
	return n
}

// materialize writes remote results to the local disk for the
// pipeline. Results arrive in reverse-DN order (every server's
// evaluation preserves it).
func (c *Coordinator) materialize(entries []*model.Entry) (*plist.List, error) {
	w := plist.NewWriter(c.disk)
	for _, e := range entries {
		if err := w.Append(plist.FromEntry(e)); err != nil {
			return nil, err
		}
	}
	return w.Close()
}

// Search evaluates a query string under ctx, distributing atomics as
// needed. The context's deadline bounds the whole evaluation,
// including every remote hop.
func (c *Coordinator) Search(ctx context.Context, text string) ([]*model.Entry, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	if err := query.Validate(c.dir.Schema(), q); err != nil {
		return nil, err
	}
	c.evalMu.Lock()
	defer c.evalMu.Unlock()
	l, err := c.eng.EvalContext(ctx, q)
	if err != nil {
		return nil, err
	}
	recs, err := plist.Drain(l)
	if err != nil {
		return nil, err
	}
	out := make([]*model.Entry, len(recs))
	for i, r := range recs {
		out[i] = r.Entry
	}
	return out, l.Free()
}

// SearchTraced is Search under a fresh 128-bit trace ID: every
// operator records a span, remote atomics propagate the trace context
// over the wire and graft the servers' reported subtrees back in, and
// the merged tree is returned beside the entries. On evaluation error
// the partial tree recorded so far is still returned, so a lost
// replica reply leaves a well-formed (if truncated) trace. The span
// tree's I/O deltas are windowed on the shared disk, exact under the
// coordinator's serialized evaluation (evalMu).
func (c *Coordinator) SearchTraced(ctx context.Context, text string) ([]*model.Entry, *obs.Span, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, nil, err
	}
	if err := query.Validate(c.dir.Schema(), q); err != nil {
		return nil, nil, err
	}
	c.evalMu.Lock()
	defer c.evalMu.Unlock()
	tr := obs.NewTracer(c.disk)
	tr.SetTraceID(obs.NewTraceID())
	// An attached statistics store sees the merged tree, remote
	// subtrees included — remote-answered atomics profile under the
	// "remote" class.
	if qs := c.dir.QueryStats(); qs != nil {
		defer func() { qs.Fold(tr.Root()) }()
	}
	ctx = obs.WithTracer(ctx, tr)
	l, err := c.eng.EvalContext(ctx, q)
	if err != nil {
		return nil, tr.Root(), err
	}
	recs, err := plist.Drain(l)
	if err != nil {
		return nil, tr.Root(), err
	}
	out := make([]*model.Entry, len(recs))
	for i, r := range recs {
		out[i] = r.Entry
	}
	return out, tr.Root(), l.Free()
}
