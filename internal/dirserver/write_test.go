package dirserver

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

const testEntryLDIF = "dn: uid=wtest, ou=userProfiles, dc=research, dc=att, dc=com\nobjectClass: inetOrgPerson\nuid: wtest\n"

func TestWritePathAddDelRoundTrip(t *testing.T) {
	dir, err := core.Open(workload.PaperInstance(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var acked int
	srv, err := ServeWith(dir, "127.0.0.1:0", ServerConfig{
		Mutable:     true,
		AfterUpdate: func() error { acked++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(dir.Schema(), ClientConfig{})
	defer cl.Close()
	ctx := context.Background()

	_, gen, err := cl.CallWithGen(ctx, srv.Addr(), "add", testEntryLDIF)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("add acked gen %d, want 2", gen)
	}
	if acked != 1 {
		t.Fatalf("AfterUpdate ran %d times, want 1", acked)
	}
	res, _, err := cl.CallWithGen(ctx, srv.Addr(), "query", "(dc=com ? sub ? uid=wtest)")
	if err != nil || len(res) != 1 {
		t.Fatalf("query after add: %v entries, %v", res, err)
	}
	_, gen, err = cl.CallWithGen(ctx, srv.Addr(), "del", "uid=wtest, ou=userProfiles, dc=research, dc=att, dc=com")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 {
		t.Fatalf("del acked gen %d, want 3", gen)
	}
	res, _, err = cl.CallWithGen(ctx, srv.Addr(), "query", "(dc=com ? sub ? uid=wtest)")
	if err != nil || len(res) != 0 {
		t.Fatalf("query after del: %v entries, %v", res, err)
	}
}

func TestWritePathRejectedOnReadOnlyServer(t *testing.T) {
	dir, err := core.Open(workload.PaperInstance(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(dir, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(dir.Schema(), ClientConfig{})
	defer cl.Close()

	_, _, err = cl.CallWithGen(context.Background(), srv.Addr(), "add", testEntryLDIF)
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("err = %v, want remote read-only rejection", err)
	}
	if dir.Generation() != 1 {
		t.Fatalf("read-only server mutated: gen %d", dir.Generation())
	}
}

func TestWritePathMalformedInputLeavesDirectoryUntouched(t *testing.T) {
	dir, err := core.Open(workload.PaperInstance(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeWith(dir, "127.0.0.1:0", ServerConfig{Mutable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(dir.Schema(), ClientConfig{})
	defer cl.Close()
	ctx := context.Background()

	cases := []struct{ kind, q string }{
		{"add", "not ldif at all"},
		{"add", "dn: uid=orphan, ou=nowhere, dc=example\nobjectClass: inetOrgPerson\n"}, // no parent
		{"del", "uid=missing, ou=userProfiles, dc=research, dc=att, dc=com"},
	}
	for _, tc := range cases {
		if _, _, err := cl.CallWithGen(ctx, srv.Addr(), tc.kind, tc.q); !errors.Is(err, ErrRemote) {
			t.Fatalf("%s %q: err = %v, want ErrRemote", tc.kind, tc.q, err)
		}
	}
	if dir.Generation() != 1 {
		t.Fatalf("failed writes advanced generation to %d", dir.Generation())
	}
}

func TestWritePathAfterUpdateFailureIsReported(t *testing.T) {
	dir, err := core.Open(workload.PaperInstance(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeWith(dir, "127.0.0.1:0", ServerConfig{
		Mutable:     true,
		AfterUpdate: func() error { return fmt.Errorf("disk on fire") },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(dir.Schema(), ClientConfig{})
	defer cl.Close()

	_, _, err = cl.CallWithGen(context.Background(), srv.Addr(), "add", testEntryLDIF)
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("err = %v, want not-durable rejection", err)
	}
}
