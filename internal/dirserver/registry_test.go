package dirserver

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/model"
)

// TestRegistryDeepestPrefixPrecedence pins down delegation precedence:
// the deepest registered zone wins regardless of registration order,
// and equal-depth zones keep first-registered precedence (stable
// sort).
func TestRegistryDeepestPrefixPrecedence(t *testing.T) {
	var r Registry
	// Register shallow-to-deep and deep-to-shallow interleaved.
	r.Register(model.MustParseDN("dc=research, dc=att, dc=com"), "MID")
	r.Register(model.MustParseDN("dc=com"), "TOP")
	r.Register(model.MustParseDN("ou=networkPolicies, dc=research, dc=att, dc=com"), "DEEP")
	r.Register(model.MustParseDN("dc=att, dc=com"), "ATT")

	cases := []struct {
		dn   string
		want string
	}{
		{"dc=com", "TOP"},
		{"dc=ibm, dc=com", "TOP"},
		{"dc=att, dc=com", "ATT"},
		{"ou=people, dc=att, dc=com", "ATT"},
		{"dc=research, dc=att, dc=com", "MID"},
		{"uid=j, dc=research, dc=att, dc=com", "MID"},
		{"ou=networkPolicies, dc=research, dc=att, dc=com", "DEEP"},
		{"TPName=x, ou=trafficProfile, ou=networkPolicies, dc=research, dc=att, dc=com", "DEEP"},
	}
	for _, c := range cases {
		got, ok := r.Lookup(model.MustParseDN(c.dn))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %q,%v want %q", c.dn, got, ok, c.want)
		}
	}
}

// TestRegistryLookupAllOrdering asserts LookupAll preserves replica
// order: primary first, then secondaries exactly as registered —
// that order IS the failover policy.
func TestRegistryLookupAllOrdering(t *testing.T) {
	var r Registry
	r.Register(model.MustParseDN("dc=com"), "primary", "sec1", "sec2", "sec3")
	addrs, ok := r.LookupAll(model.MustParseDN("dc=att, dc=com"))
	if !ok {
		t.Fatal("zone not found")
	}
	want := []string{"primary", "sec1", "sec2", "sec3"}
	if !reflect.DeepEqual(addrs, want) {
		t.Errorf("LookupAll = %v, want %v", addrs, want)
	}
	// An addr-less registration is a no-op, not an empty zone.
	r.Register(model.MustParseDN("dc=org"))
	if _, ok := r.LookupAll(model.MustParseDN("dc=org")); ok {
		t.Error("empty registration created a zone")
	}
}

// TestRegistryConcurrent hammers Register, Lookup, LookupAll, and
// Zones from many goroutines (run under -race).
func TestRegistryConcurrent(t *testing.T) {
	var r Registry
	r.Register(model.MustParseDN("dc=com"), "seed")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch i % 3 {
				case 0:
					dn := model.MustParseDN(fmt.Sprintf("dc=z%d-%d, dc=com", g, i))
					r.Register(dn, fmt.Sprintf("addr-%d-%d", g, i), "backup")
				case 1:
					if _, ok := r.Lookup(model.MustParseDN("dc=x, dc=com")); !ok {
						t.Error("dc=com zone lost")
						return
					}
				default:
					_, _ = r.LookupAll(model.MustParseDN("dc=att, dc=com"))
					_ = r.Zones()
				}
			}
		}(g)
	}
	wg.Wait()
	// Every registered zone must now resolve to its own address.
	for g := 0; g < 8; g++ {
		for i := 0; i < 50; i += 3 {
			dn := model.MustParseDN(fmt.Sprintf("dc=z%d-%d, dc=com", g, i))
			got, ok := r.Lookup(dn)
			if !ok || got != fmt.Sprintf("addr-%d-%d", g, i) {
				t.Fatalf("zone dc=z%d-%d lost after concurrent registration: %q,%v", g, i, got, ok)
			}
		}
	}
}
