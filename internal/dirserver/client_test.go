package dirserver

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestClientPoolsConnections(t *testing.T) {
	whole, _, _ := splitPaperDirectory(t)
	srv, err := ServeWith(whole, "127.0.0.1:0", ServerConfig{Grace: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(whole.Schema(), ClientConfig{})
	defer cl.Close()
	for i := 0; i < 5; i++ {
		entries, err := cl.Call(context.Background(), srv.Addr(), "query",
			"(dc=com ? sub ? objectClass=dcObject)")
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if len(entries) != 4 {
			t.Fatalf("call %d: %d entries", i, len(entries))
		}
	}
	st := cl.Stats()
	if st.Dials != 1 {
		t.Errorf("5 sequential calls dialed %d times, want 1 (pooling broken)", st.Dials)
	}
	if st.Reuses != 4 {
		t.Errorf("reuses = %d, want 4", st.Reuses)
	}
	if st.Retries != 0 {
		t.Errorf("retries = %d on a healthy server", st.Retries)
	}
}

// TestClientStalePooledConnRedials covers the idle-death path: the
// server closes a pooled connection (idle timeout), and the next call
// must transparently redial instead of failing.
func TestClientStalePooledConnRedials(t *testing.T) {
	whole, _, _ := splitPaperDirectory(t)
	srv, err := ServeWith(whole, "127.0.0.1:0", ServerConfig{
		IdleTimeout: 50 * time.Millisecond,
		Grace:       100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(whole.Schema(), ClientConfig{MaxRetries: -1}) // no retry budget: the redial must be free
	defer cl.Close()
	q := "(dc=com ? sub ? objectClass=dcObject)"
	if _, err := cl.Call(context.Background(), srv.Addr(), "query", q); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // server reaps the idle pooled conn
	entries, err := cl.Call(context.Background(), srv.Addr(), "query", q)
	if err != nil {
		t.Fatalf("call on stale pooled connection: %v", err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %d", len(entries))
	}
	if st := cl.Stats(); st.Dials != 2 {
		t.Errorf("dials = %d, want 2 (one fresh, one redial)", st.Dials)
	}
}

func TestClientRemoteErrorIsTerminal(t *testing.T) {
	whole, _, _ := splitPaperDirectory(t)
	srv, err := ServeWith(whole, "127.0.0.1:0", ServerConfig{Grace: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(whole.Schema(), ClientConfig{MaxRetries: 3})
	defer cl.Close()
	_, err = cl.Call(context.Background(), srv.Addr(), "query", "(((")
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
	if st := cl.Stats(); st.Retries != 0 {
		t.Errorf("a terminal remote error consumed %d retries", st.Retries)
	}
}

func TestClientRetriesExhaustToUnavailable(t *testing.T) {
	// An address nobody listens on: every attempt is a transport
	// failure, and the final error wraps ErrUnavailable.
	cl := NewClient(nil, ClientConfig{
		DialTimeout:    100 * time.Millisecond,
		RequestTimeout: 100 * time.Millisecond,
		MaxRetries:     2,
		BackoffBase:    time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
	})
	defer cl.Close()
	_, err := cl.Call(context.Background(), "127.0.0.1:1", "query", "(dc=com ? sub ? dc=*)")
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	if st := cl.Stats(); st.Retries != 2 {
		t.Errorf("retries = %d, want 2", st.Retries)
	}
}

func TestClientHonorsContextDeadline(t *testing.T) {
	cl := NewClient(nil, ClientConfig{
		DialTimeout:    2 * time.Second,
		RequestTimeout: 2 * time.Second,
		MaxRetries:     5,
		BackoffBase:    50 * time.Millisecond,
	})
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Call(ctx, "127.0.0.1:1", "query", "(dc=com ? sub ? dc=*)")
	if err == nil {
		t.Fatal("call to a dead address succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("want context.DeadlineExceeded in the chain, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("call overstayed its deadline by %v", elapsed-80*time.Millisecond)
	}
}

func TestClientClosedIsTerminal(t *testing.T) {
	cl := NewClient(nil, ClientConfig{})
	_ = cl.Close()
	if _, err := cl.Call(context.Background(), "127.0.0.1:1", "query", "x"); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("want ErrClientClosed, got %v", err)
	}
}

func TestClientBackoffGrowsAndCaps(t *testing.T) {
	cl := NewClient(nil, ClientConfig{BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond})
	prevMax := time.Duration(0)
	for n := 1; n <= 8; n++ {
		nominal := cl.cfg.BackoffBase << (n - 1)
		if nominal > cl.cfg.BackoffMax || nominal <= 0 {
			nominal = cl.cfg.BackoffMax
		}
		for i := 0; i < 20; i++ {
			d := cl.backoff(n)
			if d < nominal/2 || d >= nominal {
				t.Fatalf("backoff(%d) = %v outside [%v, %v)", n, d, nominal/2, nominal)
			}
			if d > prevMax {
				prevMax = d
			}
		}
	}
	if prevMax >= cl.cfg.BackoffMax {
		t.Errorf("jittered backoff %v reached the uncapped nominal", prevMax)
	}
}

// TestServerReportsOversizedRequest covers the scanner-error path: a
// request line over the 4 MiB cap must come back as a response{Err},
// not a silent hangup.
func TestServerReportsOversizedRequest(t *testing.T) {
	whole, _, _ := splitPaperDirectory(t)
	srv, err := ServeWith(whole, "127.0.0.1:0", ServerConfig{Grace: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	huge := make([]byte, maxRequestBytes+1024)
	for i := range huge {
		huge[i] = 'x'
	}
	cl := NewClient(whole.Schema(), ClientConfig{MaxRetries: -1, RequestTimeout: 5 * time.Second})
	defer cl.Close()
	_, err = cl.Call(context.Background(), srv.Addr(), "query", string(huge))
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("oversized request: want ErrRemote reply, got %v", err)
	}
}

// TestServerSurvivesMalformedLinesOnPooledConn asserts one bad line
// does not kill the connection: good requests keep working after it.
func TestServerSurvivesMalformedLinesOnPooledConn(t *testing.T) {
	whole, _, _ := splitPaperDirectory(t)
	srv, err := ServeWith(whole, "127.0.0.1:0", ServerConfig{Grace: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(whole.Schema(), ClientConfig{MaxRetries: -1})
	defer cl.Close()
	q := "(dc=com ? sub ? objectClass=dcObject)"
	// Interleave malformed "queries" (valid JSON requests carrying an
	// unparsable query — answered with response{Err}) with good ones on
	// the same pooled connection.
	for i := 0; i < 3; i++ {
		if _, err := cl.Call(context.Background(), srv.Addr(), "query", "((("); !errors.Is(err, ErrRemote) {
			t.Fatalf("round %d: want ErrRemote, got %v", i, err)
		}
		entries, err := cl.Call(context.Background(), srv.Addr(), "query", q)
		if err != nil {
			t.Fatalf("round %d: good query after bad: %v", i, err)
		}
		if len(entries) != 4 {
			t.Fatalf("round %d: %d entries", i, len(entries))
		}
	}
	if st := cl.Stats(); st.Dials != 1 {
		t.Errorf("dials = %d, want 1: error replies must not kill the pooled connection", st.Dials)
	}
}
