package dirserver

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/model"
)

func cachedCoordConfig(ttl time.Duration) CoordinatorConfig {
	cfg := fastCoordConfig()
	cfg.CacheBytes = 1 << 20
	cfg.CacheTTL = ttl
	return cfg
}

// TestCoordinatorCacheSavesRoundTrips: within the TTL, a repeated
// remote atomic is answered from the coordinator's cache without
// touching the network.
func TestCoordinatorCacheSavesRoundTrips(t *testing.T) {
	cl := newChaosClusterCfg(t, cachedCoordConfig(time.Minute))
	cl.assertCorrect(t, context.Background())
	calls := cl.coord.client.Stats().Calls
	if calls == 0 {
		t.Fatal("warm-up query made no remote calls")
	}
	cl.assertCorrect(t, context.Background())
	cl.assertCorrect(t, context.Background())
	if got := cl.coord.client.Stats().Calls; got != calls {
		t.Errorf("cached repeats still made %d remote calls", got-calls)
	}
	st := cl.coord.Stats()
	if st.CacheHits != 2 {
		t.Errorf("CacheHits = %d, want 2", st.CacheHits)
	}
	if cs := cl.coord.CacheStats(); cs.Entries == 0 || cs.Bytes == 0 {
		t.Errorf("cache claims no resident entries: %+v", cs)
	}
}

// TestCoordinatorCacheSharesEquivalentSpellings: semantically identical
// atomics (differing in whitespace and attribute case) share one cache
// slot via canonicalization.
func TestCoordinatorCacheSharesEquivalentSpellings(t *testing.T) {
	cl := newChaosClusterCfg(t, cachedCoordConfig(time.Minute))
	variant := "(OU=networkPolicies,    DC=research, dc=att, dc=com ? sub ?  objectclass=SLAPolicyRules)"
	cl.assertCorrect(t, context.Background())
	want := cl.wantPolicies(t)
	got, err := cl.coord.Search(context.Background(), variant)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("variant spelling: %d entries, want %d", len(got), len(want))
	}
	if st := cl.coord.Stats(); st.CacheHits != 1 {
		t.Errorf("variant spelling missed the cache: %+v", st)
	}
}

// TestChaosCacheMasksOutageAndGenerationDropsIt is the full lifecycle
// of the outage-masking path, against a zone whose only replica sits
// behind the fault proxy:
//
//  1. a warm answer outlives its TTL, the replica's network dies, and
//     the coordinator serves the cached answer instead of failing;
//  2. the breaker trips open and the cached answer keeps serving;
//  3. the network heals, the remote store takes an Update (generation
//     bump), and the next query learns the new generation and answer;
//  4. the network dies again and the masked answer is the NEW one —
//     the generation bump made every older cached answer unreachable.
func TestChaosCacheMasksOutageAndGenerationDropsIt(t *testing.T) {
	whole, upper, policies := splitPaperDirectory(t)
	grace := ServerConfig{Grace: 100 * time.Millisecond}
	priSrv, err := ServeWith(policies, "127.0.0.1:0", grace)
	if err != nil {
		t.Fatal(err)
	}
	defer priSrv.Close()
	localSrv, err := ServeWith(upper, "127.0.0.1:0", grace)
	if err != nil {
		t.Fatal(err)
	}
	defer localSrv.Close()
	proxy, err := faultnet.New(priSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	var reg Registry
	reg.Register(model.MustParseDN("dc=com"), localSrv.Addr())
	// The zone's only replica is the proxied one: no failover possible.
	reg.Register(model.MustParseDN("ou=networkPolicies, dc=research, dc=att, dc=com"), proxy.Addr())

	const ttl = 60 * time.Millisecond
	coord := NewCoordinatorWith(upper, &reg, localSrv.Addr(), cachedCoordConfig(ttl))
	defer coord.Close()

	search := func() ([]*model.Entry, error) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return coord.Search(ctx, polQuery)
	}
	want, err := whole.Search(polQuery)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Warm the cache, let the TTL lapse, kill the network.
	got, err := search()
	if err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	if len(got) != len(want.Entries) {
		t.Fatalf("warm-up: %d entries, want %d", len(got), len(want.Entries))
	}
	time.Sleep(2 * ttl)
	proxy.SetMode(faultnet.Refuse)

	got, err = search()
	if err != nil {
		t.Fatalf("outage was not masked by the cache: %v", err)
	}
	if len(got) != len(want.Entries) {
		t.Fatalf("masked answer: %d entries, want %d", len(got), len(want.Entries))
	}
	if st := coord.Stats(); st.CacheMasked == 0 {
		t.Fatalf("no CacheMasked recorded: %+v", st)
	}

	// 2. Keep querying until the breaker opens; the cache must still
	// answer with the breaker-open primary out of the picture.
	if _, err := search(); err != nil {
		t.Fatalf("masked serve during breaker warm-up: %v", err)
	}
	if got := coord.BreakerState(proxy.Addr()); got != "open" {
		t.Fatalf("primary breaker state = %s, want open", got)
	}
	got, err = search()
	if err != nil {
		t.Fatalf("breaker-open primary was not served from cache: %v", err)
	}
	if len(got) != len(want.Entries) {
		t.Fatalf("breaker-open masked answer: %d entries, want %d", len(got), len(want.Entries))
	}

	// 3. Heal, mutate the remote store (generation bump), wait out the
	// breaker cooldown and the TTL: the next query must fetch the new
	// answer and learn the new generation.
	proxy.SetMode(faultnet.Pass)
	newDN := "SLAPolicyName=chaosFresh, ou=SLAPolicyRules, ou=networkPolicies, dc=research, dc=att, dc=com"
	if err := policies.Update(func(in *model.Instance) error {
		e, err := model.NewEntryFromDN(in.Schema(), model.MustParseDN(newDN))
		if err != nil {
			return err
		}
		e.AddClass("SLAPolicyRules")
		e.Add("SLAPolicyScope", model.String("DataTraffic"))
		return in.Add(e)
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // > breaker cooldown and > TTL
	got, err = search()
	if err != nil {
		t.Fatalf("post-heal query: %v", err)
	}
	if len(got) != len(want.Entries)+1 {
		t.Fatalf("post-update answer: %d entries, want %d", len(got), len(want.Entries)+1)
	}

	// 4. Outage again: the masked answer must be the post-update one.
	// Serving the pre-update answer here would mean the generation bump
	// failed to invalidate.
	time.Sleep(2 * ttl)
	proxy.SetMode(faultnet.Refuse)
	masked := coord.Stats().CacheMasked
	got, err = search()
	if err != nil {
		t.Fatalf("second outage was not masked: %v", err)
	}
	if coord.Stats().CacheMasked == masked {
		t.Fatal("second outage did not use the masked path")
	}
	if len(got) != len(want.Entries)+1 {
		t.Fatalf("masked answer after generation bump: %d entries, want %d (stale generation served?)",
			len(got), len(want.Entries)+1)
	}
	found := false
	for _, e := range got {
		if strings.EqualFold(e.DN().String(), newDN) {
			found = true
		}
	}
	if !found {
		t.Errorf("masked answer is missing the post-update entry %s", newDN)
	}
}

// TestCoordinatorCacheDisabledByDefault: the zero config has no cache —
// every repeat pays a round trip and stats stay zero.
func TestCoordinatorCacheDisabledByDefault(t *testing.T) {
	cl := newChaosCluster(t)
	cl.assertCorrect(t, context.Background())
	cl.assertCorrect(t, context.Background())
	st := cl.coord.Stats()
	if st.CacheHits != 0 || st.CacheMasked != 0 {
		t.Errorf("cache activity without CacheBytes: %+v", st)
	}
	if got := cl.coord.client.Stats().Calls; got < 2 {
		t.Errorf("uncached repeats made only %d remote calls", got)
	}
	var zero = cl.coord.CacheStats()
	if zero.Entries != 0 || zero.MaxBytes != 0 {
		t.Errorf("CacheStats on a disabled cache: %+v", zero)
	}
}
