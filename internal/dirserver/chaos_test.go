package dirserver

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/model"
)

// fastCoordConfig shrinks every timeout so chaos scenarios resolve in
// tens of milliseconds instead of seconds.
func fastCoordConfig() CoordinatorConfig {
	return CoordinatorConfig{
		Client: ClientConfig{
			DialTimeout:    250 * time.Millisecond,
			RequestTimeout: 250 * time.Millisecond,
			MaxRetries:     1,
			BackoffBase:    5 * time.Millisecond,
			BackoffMax:     20 * time.Millisecond,
		},
		Breaker: BreakerConfig{Threshold: 2, Cooldown: 150 * time.Millisecond},
	}
}

// chaosCluster is the standing chaos topology: the policies subtree's
// primary replica sits behind a fault-injecting proxy, with a healthy
// secondary replica beside it.
type chaosCluster struct {
	whole    *core.Directory // centralized oracle
	coord    *Coordinator
	proxy    *faultnet.Proxy
	localSrv *Server
	priSrv   *Server // behind proxy
	secSrv   *Server

	closeOnce sync.Once
}

// shutdown tears the whole topology down; safe to call more than once
// (leak-checking tests call it explicitly before counting goroutines,
// and t.Cleanup calls it again).
func (cl *chaosCluster) shutdown() {
	cl.closeOnce.Do(func() {
		_ = cl.coord.Close()
		_ = cl.proxy.Close()
		_ = cl.localSrv.Close()
		_ = cl.priSrv.Close()
		_ = cl.secSrv.Close()
	})
}

const polQuery = "(ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"

func newChaosCluster(t *testing.T) *chaosCluster {
	return newChaosClusterCfg(t, fastCoordConfig())
}

func newChaosClusterCfg(t *testing.T, cfg CoordinatorConfig) *chaosCluster {
	t.Helper()
	whole, upper, policies := splitPaperDirectory(t)
	grace := ServerConfig{Grace: 100 * time.Millisecond}

	priSrv, err := ServeWith(policies, "127.0.0.1:0", grace)
	if err != nil {
		t.Fatal(err)
	}
	secIn := policies.Instance() // same subtree content, second replica process
	secDir, err := core.Open(secIn, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	secSrv, err := ServeWith(secDir, "127.0.0.1:0", grace)
	if err != nil {
		t.Fatal(err)
	}
	localSrv, err := ServeWith(upper, "127.0.0.1:0", grace)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := faultnet.New(priSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}

	var reg Registry
	reg.Register(model.MustParseDN("dc=com"), localSrv.Addr())
	reg.Register(model.MustParseDN("ou=networkPolicies, dc=research, dc=att, dc=com"),
		proxy.Addr(), secSrv.Addr()) // faulty primary, healthy secondary

	cl := &chaosCluster{
		whole:    whole,
		coord:    NewCoordinatorWith(upper, &reg, localSrv.Addr(), cfg),
		proxy:    proxy,
		localSrv: localSrv,
		priSrv:   priSrv,
		secSrv:   secSrv,
	}
	t.Cleanup(cl.shutdown)
	return cl
}

// wantPolicies returns the centralized answer for polQuery.
func (cl *chaosCluster) wantPolicies(t *testing.T) []string {
	t.Helper()
	res, err := cl.whole.Search(polQuery)
	if err != nil {
		t.Fatal(err)
	}
	return res.DNs()
}

// assertCorrect runs polQuery through the coordinator and requires the
// exact centralized answer in the exact (sorted) order — failover must
// never truncate or reorder.
func (cl *chaosCluster) assertCorrect(t *testing.T, ctx context.Context) {
	t.Helper()
	want := cl.wantPolicies(t)
	got, err := cl.coord.Search(ctx, polQuery)
	if err != nil {
		t.Fatalf("distributed query failed under fault %v: %v", cl.proxy.Mode(), err)
	}
	if len(got) != len(want) {
		t.Fatalf("fault %v: got %d entries, want %d (silent truncation?)", cl.proxy.Mode(), len(got), len(want))
	}
	for i := range got {
		if got[i].DN().String() != want[i] {
			t.Fatalf("fault %v: entry %d = %s, want %s", cl.proxy.Mode(), i, got[i].DN(), want[i])
		}
	}
}

// checkGoroutines asserts the goroutine count settles back to the
// baseline (plus slack for runtime background goroutines).
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Errorf("goroutine leak: %d before, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
}

func TestChaosPartitionFailsOver(t *testing.T) {
	before := runtime.NumGoroutine()
	cl := newChaosCluster(t)
	// Healthy first: primary (through the proxy) answers.
	cl.assertCorrect(t, context.Background())
	if got := cl.coord.Stats().Failovers; got != 0 {
		t.Fatalf("failovers before any fault: %d", got)
	}

	// Black-hole partition: dial succeeds, nothing ever answers. The
	// request deadline must expire and the secondary must serve the
	// exact centralized answer.
	cl.proxy.SetMode(faultnet.BlackHole)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cl.assertCorrect(t, ctx)
	if cl.coord.Stats().Failovers == 0 {
		t.Error("partitioned primary did not fail over to the secondary")
	}

	cl.shutdown()
	checkGoroutines(t, before)
}

func TestChaosRefuseFailsOver(t *testing.T) {
	cl := newChaosCluster(t)
	cl.proxy.SetMode(faultnet.Refuse)
	cl.assertCorrect(t, context.Background())
	if cl.coord.Stats().Failovers == 0 {
		t.Error("refused primary did not fail over")
	}
}

func TestChaosMidStreamResetFailsOver(t *testing.T) {
	cl := newChaosCluster(t)
	// Forward only the first 32 response bytes, then RST: the client
	// sees a truncated JSON response, which must never surface as a
	// short answer.
	cl.proxy.SetResetAfter(32)
	cl.proxy.SetMode(faultnet.Reset)
	cl.assertCorrect(t, context.Background())
	if cl.coord.Stats().Failovers == 0 {
		t.Error("mid-stream reset did not fail over")
	}
}

func TestChaosGarbledResponseFailsOver(t *testing.T) {
	cl := newChaosCluster(t)
	cl.proxy.SetMode(faultnet.Garble)
	cl.assertCorrect(t, context.Background())
	if cl.coord.Stats().Failovers == 0 {
		t.Error("garbled response did not fail over")
	}
}

func TestChaosLatency(t *testing.T) {
	cl := newChaosCluster(t)
	// Tolerable latency: still served (by the slow primary or, if a
	// deadline fires, the secondary) with the exact answer.
	cl.proxy.SetLatency(50 * time.Millisecond)
	cl.assertCorrect(t, context.Background())

	// Latency beyond the request timeout: the deadline must fire and
	// the secondary must take over.
	cl.proxy.SetLatency(600 * time.Millisecond)
	cl.assertCorrect(t, context.Background())
	if cl.coord.Stats().Failovers == 0 {
		t.Error("slow primary beyond the request deadline did not fail over")
	}
}

func TestChaosAllReplicasDownDeadline(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		_, upper, policies := splitPaperDirectory(t)
		grace := ServerConfig{Grace: 100 * time.Millisecond}
		priSrv, err := ServeWith(policies, "127.0.0.1:0", grace)
		if err != nil {
			t.Fatal(err)
		}
		defer priSrv.Close()
		localSrv, err := ServeWith(upper, "127.0.0.1:0", grace)
		if err != nil {
			t.Fatal(err)
		}
		defer localSrv.Close()
		proxy, err := faultnet.New(priSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer proxy.Close()
		proxy.SetMode(faultnet.BlackHole)

		var reg Registry
		reg.Register(model.MustParseDN("dc=com"), localSrv.Addr())
		// The only replica is the partitioned one.
		reg.Register(model.MustParseDN("ou=networkPolicies, dc=research, dc=att, dc=com"), proxy.Addr())

		coord := NewCoordinatorWith(upper, &reg, localSrv.Addr(), fastCoordConfig())
		defer coord.Close()

		timeout := 400 * time.Millisecond
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		start := time.Now()
		_, err = coord.Search(ctx, polQuery)
		elapsed := time.Since(start)
		if err == nil {
			t.Fatal("query with every replica partitioned succeeded")
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("want a context-deadline error, got: %v", err)
		}
		if elapsed > timeout+500*time.Millisecond {
			t.Errorf("query hung %v past its %v deadline", elapsed-timeout, timeout)
		}
	}()
	checkGoroutines(t, before)
}

func TestChaosBreakerTripsAndRecovers(t *testing.T) {
	cl := newChaosCluster(t)
	primary := cl.proxy.Addr()

	// Fail enough consecutive queries to trip the primary's breaker
	// (threshold 2, one retry per call).
	cl.proxy.SetMode(faultnet.Refuse)
	cl.assertCorrect(t, context.Background())
	cl.assertCorrect(t, context.Background())
	st := cl.coord.Stats()
	if st.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped: %+v", st)
	}
	if got := cl.coord.BreakerState(primary); got != "open" {
		t.Fatalf("primary breaker state = %s, want open", got)
	}

	// While open, queries must skip the primary entirely: correct
	// answers from the secondary with zero new dials at the proxy.
	dialsBefore := cl.proxy.Accepted()
	cl.assertCorrect(t, context.Background())
	cl.assertCorrect(t, context.Background())
	if got := cl.proxy.Accepted(); got != dialsBefore {
		t.Errorf("tripped primary still dialed: %d new connections", got-dialsBefore)
	}
	if cl.coord.Stats().BreakerSkips == 0 {
		t.Error("no breaker skips recorded while the primary was open")
	}

	// Heal the network, wait out the cooldown: the half-open probe
	// must succeed and close the breaker.
	cl.proxy.SetMode(faultnet.Pass)
	time.Sleep(200 * time.Millisecond) // > Cooldown
	cl.assertCorrect(t, context.Background())
	if got := cl.coord.BreakerState(primary); got != "closed" {
		t.Errorf("primary breaker state after recovery = %s, want closed", got)
	}
	if got := cl.proxy.Accepted(); got == dialsBefore {
		t.Error("recovered primary was never probed")
	}
}

// TestChaosConcurrentSearches issues many concurrent Coordinator
// searches (run under -race) while the primary's network flaps between
// healthy and refusing: every query must still return the exact
// centralized answer via primary or secondary.
func TestChaosConcurrentSearches(t *testing.T) {
	cl := newChaosCluster(t)
	want := cl.wantPolicies(t)
	localQuery := "(dc=com ? sub ? objectClass=TOPSSubscriber)"
	wantLocal, err := cl.whole.Search(localQuery)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const rounds = 4
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if (g+i)%2 == 0 {
					got, err := cl.coord.Search(context.Background(), polQuery)
					if err != nil {
						errc <- fmt.Errorf("goroutine %d round %d: %v", g, i, err)
						return
					}
					if len(got) != len(want) {
						errc <- fmt.Errorf("goroutine %d round %d: %d entries, want %d", g, i, len(got), len(want))
						return
					}
				} else {
					got, err := cl.coord.Search(context.Background(), localQuery)
					if err != nil {
						errc <- fmt.Errorf("goroutine %d round %d (local): %v", g, i, err)
						return
					}
					if len(got) != len(wantLocal.Entries) {
						errc <- fmt.Errorf("goroutine %d round %d (local): %d entries, want %d",
							g, i, len(got), len(wantLocal.Entries))
						return
					}
				}
				// Concurrent stats reads must be race-free too.
				_ = cl.coord.Stats()
			}
		}(g)
	}
	// Flap the primary's network while the queries run.
	flapDone := make(chan struct{})
	go func() {
		defer close(flapDone)
		for i := 0; i < 6; i++ {
			if i%2 == 0 {
				cl.proxy.SetMode(faultnet.Refuse)
			} else {
				cl.proxy.SetMode(faultnet.Pass)
			}
			time.Sleep(15 * time.Millisecond)
		}
		cl.proxy.SetMode(faultnet.Pass)
	}()
	wg.Wait()
	<-flapDone
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestChaosEveryLanguageLevel drives one query per language level
// (L0–L3) through a partitioned primary: each must return the exact
// centralized answer via the secondary.
func TestChaosEveryLanguageLevel(t *testing.T) {
	cl := newChaosCluster(t)
	cl.proxy.SetMode(faultnet.BlackHole)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	queries := []string{
		// L0: boolean over two remote atomics.
		`(| (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		    (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLADSAction))`,
		// L1: hierarchical ancestors across the partition.
		`(a (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=trafficProfile)
		    (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? ou=networkPolicies))`,
		// L2: aggregation over a remote atomic.
		`(g (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		    count(SLAPVPRef) > 1)`,
		// L3: DN-valued dereference, both sides remote.
		`(vd (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		     (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? destinationPort=25)
		     SLATPRef)`,
	}
	for _, qs := range queries {
		want, err := cl.whole.Search(qs)
		if err != nil {
			t.Fatalf("central %s: %v", qs, err)
		}
		got, err := cl.coord.Search(ctx, qs)
		if err != nil {
			t.Fatalf("distributed under partition %s: %v", qs, err)
		}
		if len(got) != len(want.Entries) {
			t.Fatalf("%s: %d entries under partition, want %d", qs, len(got), len(want.Entries))
		}
		for i := range got {
			if !got[i].DN().Equal(want.Entries[i].DN()) {
				t.Fatalf("%s: entry %d = %s, want %s", qs, i, got[i].DN(), want.Entries[i].DN())
			}
		}
	}
}
