package dirserver

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

// promValue extracts the value of a bare (unlabeled) sample from a
// Prometheus text exposition.
func promValue(t *testing.T, body, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			t.Fatalf("parsing %s: %v", line, err)
		}
		return int64(f)
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, body)
	return 0
}

// TestServerMetricsMatchWorkload is the acceptance check for the
// metrics surface: run a scripted workload against an instrumented
// server and assert the /metrics histogram counts equal the workload's
// composition exactly.
func TestServerMetricsMatchWorkload(t *testing.T) {
	whole, _, _ := splitPaperDirectory(t)
	reg := obs.NewRegistry()
	qm := obs.NewQueryMetrics(reg, "dirkit_server")
	var slow bytes.Buffer
	srv, err := ServeWith(whole, "127.0.0.1:0", ServerConfig{
		Metrics: qm,
		SlowLog: obs.NewSlowLog(&slow, 0, 0), // both thresholds zero: log everything
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	admin, err := obs.ServeAdmin("127.0.0.1:0", reg, func() any { return map[string]int{"zones": 1} })
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	// The scripted workload: 5 well-formed queries with known result
	// sizes, then 3 parse failures.
	okQueries := []string{
		"(dc=com ? sub ? objectClass=dcObject)",
		"(dc=com ? sub ? objectClass=TOPSSubscriber)",
		"(dc=com ? sub ? objectClass=dcObject)",
		"(dc=att, dc=com ? sub ? dc=*)",
		"(dc=com ? sub ? objectClass=QHP)",
	}
	cl := NewClient(whole.Schema(), ClientConfig{})
	defer cl.Close()
	ctx := context.Background()
	var totalEntries int64
	for _, q := range okQueries {
		entries, err := cl.Call(ctx, srv.Addr(), "query", q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		totalEntries += int64(len(entries))
	}
	badQueries := []string{"(((", ")", "(x ? sub"}
	for _, q := range badQueries {
		if _, err := cl.Call(ctx, srv.Addr(), "query", q); err == nil {
			t.Fatalf("%s: expected error", q)
		}
	}

	res, err := http.Get("http://" + admin.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	wantOK := int64(len(okQueries))
	wantBad := int64(len(badQueries))
	if got := promValue(t, text, "dirkit_server_queries_total"); got != wantOK+wantBad {
		t.Errorf("queries_total = %d, want %d", got, wantOK+wantBad)
	}
	if got := promValue(t, text, "dirkit_server_query_errors_total"); got != wantBad {
		t.Errorf("query_errors_total = %d, want %d", got, wantBad)
	}
	// Histograms observe successful queries only; every count must
	// equal the scripted success count, and the results histogram's sum
	// must equal the total entries returned.
	for _, h := range []string{
		"dirkit_server_query_latency_us_count",
		"dirkit_server_query_io_pages_count",
		"dirkit_server_query_results_count",
	} {
		if got := promValue(t, text, h); got != wantOK {
			t.Errorf("%s = %d, want %d", h, got, wantOK)
		}
	}
	if got := promValue(t, text, "dirkit_server_query_results_sum"); got != totalEntries {
		t.Errorf("query_results_sum = %d, want %d", got, totalEntries)
	}

	// The firehose slow log saw every request, errors included.
	lines := strings.Count(strings.TrimSpace(slow.String()), "\n") + 1
	if int64(lines) != wantOK+wantBad {
		t.Errorf("slow log lines = %d, want %d\n%s", lines, wantOK+wantBad, slow.String())
	}
	if !strings.Contains(slow.String(), `"err"`) {
		t.Error("slow log did not record the failed queries' errors")
	}

	// /statusz carries both the metric snapshot and the caller status.
	res, err = http.Get("http://" + admin.Addr() + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dirkit_server_queries_total", `"zones"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/statusz missing %q:\n%s", want, body)
		}
	}
}

// federatedPair starts upper+policies servers, registers both zones,
// and returns a coordinator on the upper server.
func federatedPair(t *testing.T, cfg CoordinatorConfig) (*Coordinator, func()) {
	t.Helper()
	_, upper, policies := splitPaperDirectory(t)
	upSrv, err := Serve(upper, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	polSrv, err := Serve(policies, "127.0.0.1:0")
	if err != nil {
		upSrv.Close()
		t.Fatal(err)
	}
	var reg Registry
	reg.Register(model.MustParseDN("dc=com"), upSrv.Addr())
	reg.Register(model.MustParseDN("ou=networkPolicies, dc=research, dc=att, dc=com"), polSrv.Addr())
	coord := NewCoordinatorWith(upper, &reg, upSrv.Addr(), cfg)
	return coord, func() {
		coord.Close()
		polSrv.Close()
		upSrv.Close()
	}
}

// TestCoordinatorStatsRace hammers Stats() from many goroutines while
// others run distributed searches: the single mutex-guarded read path
// must stay data-race-free (this test is the -race stress for the
// Stats refactor) and every snapshot must be internally consistent.
func TestCoordinatorStatsRace(t *testing.T) {
	coord, done := federatedPair(t, CoordinatorConfig{})
	defer done()

	const (
		searchers = 4
		readers   = 4
		rounds    = 25
	)
	queries := []string{
		"(dc=com ? sub ? objectClass=TOPSSubscriber)",
		"(ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)",
		`(| (dc=com ? sub ? objectClass=TOPSSubscriber)
		    (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLADSAction))`,
	}
	stop := make(chan struct{})
	var search, read sync.WaitGroup
	for i := 0; i < searchers; i++ {
		search.Add(1)
		go func(i int) {
			defer search.Done()
			for r := 0; r < rounds; r++ {
				if _, err := coord.Search(context.Background(), queries[(i+r)%len(queries)]); err != nil {
					t.Errorf("search: %v", err)
					return
				}
			}
		}(i)
	}
	for i := 0; i < readers; i++ {
		read.Add(1)
		go func() {
			defer read.Done()
			var last CoordinatorStats
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := coord.Stats()
				// Counters are monotone; a snapshot may never go
				// backwards relative to an earlier one.
				if s.RemoteAtomics < last.RemoteAtomics || s.LocalAtomics < last.LocalAtomics ||
					s.Retries < last.Retries || s.BreakerTrips < last.BreakerTrips {
					t.Errorf("stats went backwards: %+v then %+v", last, s)
					return
				}
				last = s
				_ = coord.RemoteAtomics()
			}
		}()
	}
	search.Wait()
	close(stop)
	read.Wait()

	s := coord.Stats()
	if s.RemoteAtomics == 0 {
		t.Error("no remote atomics recorded")
	}
	if s.LocalAtomics == 0 {
		t.Error("no local atomics recorded")
	}
}

// TestCoordinatorRegisterMetrics: the pull-based gauges report exactly
// what Stats() reports.
func TestCoordinatorRegisterMetrics(t *testing.T) {
	coord, done := federatedPair(t, CoordinatorConfig{CacheBytes: 1 << 20})
	defer done()

	if _, err := coord.Search(context.Background(),
		"(ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord.RegisterMetrics(reg, "dirkit_coord")
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	s := coord.Stats()
	if got := promValue(t, buf.String(), "dirkit_coord_remote_atomics"); got != s.RemoteAtomics {
		t.Errorf("gauge remote_atomics = %d, Stats says %d", got, s.RemoteAtomics)
	}
	if got := promValue(t, buf.String(), "dirkit_coord_local_atomics"); got != s.LocalAtomics {
		t.Errorf("gauge local_atomics = %d, Stats says %d", got, s.LocalAtomics)
	}
	// Cache gauges rode along because the remote-result cache is on.
	if !strings.Contains(buf.String(), "dirkit_coord_rcache_") {
		t.Errorf("remote-result cache gauges missing:\n%s", buf.String())
	}
}

// TestCoordinatorSpanAnnotations: a traced distributed search tags
// atomic spans with where each one resolved — the replica that
// answered remote atomics, "local" for delegated-but-local ones, and
// "cache" for round trips saved by the result cache.
func TestCoordinatorSpanAnnotations(t *testing.T) {
	coord, done := federatedPair(t, CoordinatorConfig{CacheBytes: 1 << 20, CacheTTL: time.Minute})
	defer done()

	q := `(| (dc=com ? sub ? objectClass=TOPSSubscriber)
	         (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLADSAction))`

	tr := obs.NewTracer(coord.dir.Disk())
	ctx := obs.WithTracer(context.Background(), tr)
	if _, err := coord.Search(ctx, q); err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if root == nil {
		t.Fatal("no span tree")
	}
	var local, replica int
	root.Walk(func(s *obs.Span) {
		if v, _ := s.TagValue("resolve"); v == "local" {
			local++
		}
		if v, _ := s.TagValue("replica"); v != "" {
			replica++
		}
	})
	if local != 1 || replica != 1 {
		var b strings.Builder
		root.Format(&b)
		t.Fatalf("local=%d replica=%d, want 1 and 1\n%s", local, replica, b.String())
	}

	// Second traced run: the remote atomic is answered from the cache.
	tr2 := obs.NewTracer(coord.dir.Disk())
	if _, err := coord.Search(obs.WithTracer(context.Background(), tr2), q); err != nil {
		t.Fatal(err)
	}
	cached := 0
	tr2.Root().Walk(func(s *obs.Span) {
		if v, _ := s.TagValue("resolve"); v == "cache" {
			cached++
		}
	})
	if cached != 1 {
		t.Fatalf("cache-resolved spans = %d, want 1", cached)
	}
	if s := coord.Stats(); s.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", s.CacheHits)
	}
}
