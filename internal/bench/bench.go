// Package bench implements the reproduction experiments E1–E16 and the
// ablations of DESIGN.md: each experiment exercises one quantitative or
// qualitative claim of "Querying Network Directories" (a theorem, an
// algorithm figure, or a worked example) and reports a table of
// measured page I/O. cmd/dirbench runs them all; the root bench_test.go
// wraps them as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pager"
	"repro/internal/plist"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/workload"
)

// Table is one experiment's report.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper artifact being reproduced
	Header []string
	Rows   [][]string
	Notes  []string
	// Latency holds the distribution of per-evaluation wall times
	// (microseconds) observed through MeasureIO while the experiment
	// ran: count, sum, and p50/p95/p99. Populated by RunSpec; nil when
	// the experiment was run directly or performed no measured
	// evaluations.
	Latency *obs.HistSnapshot `json:",omitempty"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table in aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "   reproduces: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, "   "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Slope fits log(y) = a + s*log(x) by least squares and returns s: ~1
// for linear scaling, ~2 for quadratic, slightly above 1 for N log N.
func Slope(xs, ys []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(math.Max(ys[i], 1))
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// Env is a prepared experiment environment: a directory plus direct
// access to its engine and disk.
type Env struct {
	Dir    *core.Directory
	Eng    *engine.Engine
	Disk   *pager.Disk
	Schema *model.Schema
}

// ForestEnv builds a random-forest directory of n entries.
func ForestEnv(n int, seed int64, pageSize int) *Env {
	in := workload.RandomForest(workload.ForestConfig{N: n, Seed: seed})
	return openEnv(in, pageSize)
}

// QoSEnv builds a QoS policy directory with the given total policies.
func QoSEnv(policies int, seed int64, pageSize int) *Env {
	domains := 1 + policies/100
	in := workload.GenQoS(workload.QoSConfig{
		Domains:           domains,
		PoliciesPerDomain: (policies + domains - 1) / domains,
		Seed:              seed,
	})
	return openEnv(in, pageSize)
}

// TOPSEnv builds a TOPS directory with the given subscriber count.
func TOPSEnv(subscribers int, seed int64, pageSize int) *Env {
	in := workload.GenTOPS(workload.TOPSConfig{Subscribers: subscribers, Seed: seed})
	return openEnv(in, pageSize)
}

func openEnv(in *model.Instance, pageSize int) *Env {
	dir, err := core.Open(in, core.Options{PageSize: pageSize})
	if err != nil {
		panic(err)
	}
	return &Env{Dir: dir, Eng: dir.Engine(), Disk: dir.Disk(), Schema: dir.Schema()}
}

// Lists evaluates atomic queries into operand lists (outside the
// measured section).
func (e *Env) Lists(atomics ...string) []*plist.List {
	out := make([]*plist.List, len(atomics))
	for i, a := range atomics {
		q := query.MustParse(a).(*query.Atomic)
		l, err := e.Eng.Store().Eval(q)
		if err != nil {
			panic(err)
		}
		out[i] = l
	}
	return out
}

// latHist, when non-nil, collects the wall time of every MeasureIO
// evaluation. RunSpec points it at a per-experiment histogram; the
// experiments run one at a time, so a package variable suffices.
var latHist *obs.Histogram

// MeasureIO runs fn and returns the page I/O it performed, recording
// fn's wall time in the current experiment's latency histogram.
func (e *Env) MeasureIO(fn func() error) int64 {
	before := e.Disk.Stats()
	start := time.Now()
	if err := fn(); err != nil {
		panic(err)
	}
	if latHist != nil {
		latHist.ObserveDuration(time.Since(start))
	}
	return e.Disk.Stats().Sub(before).IO()
}

// pagesOf sums list page counts.
func pagesOf(ls ...*plist.List) int {
	n := 0
	for _, l := range ls {
		n += l.Pages()
	}
	return n
}

// freeLists releases operand lists.
func freeLists(ls ...*plist.List) {
	for _, l := range ls {
		if l != nil {
			_ = l.Free()
		}
	}
}

// storeOptions exposes an unindexed store for E15.
func unindexedEnv(in *model.Instance, pageSize int) (*store.Store, *pager.Disk) {
	d := pager.NewDisk(pageSize)
	st, err := store.Build(d, in, store.Options{AttrIndex: false})
	if err != nil {
		panic(err)
	}
	return st, d
}
