package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// E18 measures the semantic query cache (DESIGN.md §7) on a skewed
// read-mostly workload — the shape Section 2's applications produce
// (provisioning and QoS lookups repeat a small set of hot queries). A
// Zipf-distributed stream over a fixed query pool runs against two
// identically seeded directories, one with the cache enabled, and the
// table reports total page I/O, mean latency, and the cache hit rate.

// cachePool builds a deterministic pool of distinct L0–L2 queries over
// the random forest's vocabulary.
func cachePool(size int) []string {
	tmpl := []func(i int) string{
		func(i int) string { return fmt.Sprintf("( ? sub ? tag=%c)", 'a'+i%3) },
		func(i int) string { return fmt.Sprintf("( ? sub ? val>=%d)", i%8) },
		func(i int) string {
			return fmt.Sprintf("(& ( ? sub ? tag=%c) ( ? sub ? val<%d))", 'a'+i%3, 1+i%7)
		},
		func(i int) string {
			return fmt.Sprintf("(d ( ? sub ? tag=%c) ( ? sub ? val>=%d))", 'a'+i%3, i%8)
		},
		func(i int) string {
			return fmt.Sprintf("(g ( ? sub ? tag=%c) count(val) >= %d)", 'a'+i%3, i%4)
		},
	}
	seen := make(map[string]bool)
	var pool []string
	for i := 0; len(pool) < size; i++ {
		q := tmpl[i%len(tmpl)](i / len(tmpl))
		if !seen[q] {
			seen[q] = true
			pool = append(pool, q)
		}
	}
	return pool
}

// zipfDraws samples ops pool indices from a Zipf distribution with
// skew s (s=1.4 is hot-set-dominated, the Section 2 access pattern).
func zipfDraws(ops, poolSize int, s float64) []int {
	z := rand.NewZipf(rand.New(rand.NewSource(7)), s, 1, uint64(poolSize-1))
	out := make([]int, ops)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

// runCacheWorkload replays the draw sequence and accumulates the
// engine-reported page I/O and wall-clock latency.
func runCacheWorkload(d *core.Directory, pool []string, draws []int) (io int64, elapsed time.Duration) {
	for _, idx := range draws {
		start := time.Now()
		res, err := d.Search(pool[idx])
		if err != nil {
			panic(err)
		}
		elapsed += time.Since(start)
		io += res.IO.IO()
	}
	return io, elapsed
}

// E18CacheZipf runs the Zipf workload against a plain and a cached
// directory of n entries. Zero arguments select defaults, so presets
// predating the experiment keep working.
func E18CacheZipf(n, ops int) *Table {
	if n <= 0 {
		n = 2000
	}
	if ops <= 0 {
		ops = 600
	}
	const (
		poolSize = 32
		skew     = 1.4
	)
	// Budget sized so the whole hot set stays resident: result lists
	// grow linearly with the directory, so a fixed budget would thrash
	// at large n and understate the cache.
	cacheBytes := int64(n) * 16 << 10
	pool := cachePool(poolSize)
	draws := zipfDraws(ops, poolSize, skew)

	open := func(budget int64) *core.Directory {
		in := workload.RandomForest(workload.ForestConfig{N: n, Seed: 11})
		d, err := core.Open(in, core.Options{CacheBytes: budget})
		if err != nil {
			panic(err)
		}
		return d
	}
	plain := open(0)
	cached := open(cacheBytes)

	pio, pdur := runCacheWorkload(plain, pool, draws)
	cio, cdur := runCacheWorkload(cached, pool, draws)
	st := cached.CacheStats()

	t := &Table{
		ID:     "E18",
		Title:  "semantic query cache on a Zipf workload",
		Claim:  "DESIGN.md §7: repeated queries cost zero page I/O until the store's generation moves",
		Header: []string{"config", "queries", "page I/O", "mean µs", "hit rate"},
	}
	meanUS := func(d time.Duration) float64 { return float64(d.Microseconds()) / float64(ops) }
	t.AddRow("plain", ops, pio, meanUS(pdur), "-")
	t.AddRow("cached", ops, cio, meanUS(cdur), fmt.Sprintf("%.2f", st.HitRate()))
	ioRatio := float64(pio) / float64(max(cio, 1))
	t.Notes = append(t.Notes,
		fmt.Sprintf("pool %d distinct L0–L2 queries, Zipf skew %.1f, cache budget %d bytes", poolSize, skew, cacheBytes),
		fmt.Sprintf("I/O ratio %.1fx, latency ratio %.1fx (plain/cached)",
			ioRatio, float64(pdur)/float64(max(cdur, 1))),
	)
	return t
}
