package bench

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/query"
)

// OperatorProfile runs a mixed workload covering every plan operator
// with tracing on and aggregates the spans by operator mnemonic: how
// often each operator ran, and the p50/p95 of its self page I/O and
// self wall time. This is the histogram view of what dirq -explain
// shows for one query — the shape of a whole workload's cost, operator
// by operator.
func OperatorProfile(n, rounds int) *Table {
	env := ForestEnv(n, 7, 0)
	// One query per language level, chosen so every operator appears:
	// the L0 booleans, the binary and ternary hierarchical selections,
	// aggregate selection, and reference chasing.
	queries := []string{
		`( ? sub ? tag=a)`,
		`(- ( ? sub ? tag=a) ( ? sub ? val<2))`,
		`(p ( ? sub ? tag=a) ( ? sub ? tag=b))`,
		`(a ( ? sub ? tag=a) ( ? sub ? tag=b))`,
		`(ac ( ? sub ? tag=a) ( ? sub ? tag=b) ( ? sub ? tag=c))`,
		`(c (& ( ? sub ? tag=a) ( ? sub ? val<5)) (| ( ? sub ? tag=b) ( ? sub ? tag=c)) count($2) > 0)`,
		`(dc (& ( ? sub ? tag=a) ( ? sub ? tag=a)) (d ( ? sub ? tag=b) ( ? sub ? val>=1)) ( ? sub ? tag=c) count($2) >= 1)`,
		`(vd (g ( ? sub ? tag=a) count(ref) >= 1) (d ( ? sub ? tag=b) ( ? sub ? val<6)) ref)`,
		`(dv ( ? sub ? tag=a) ( ? sub ? tag=b) ref count($2) >= 1)`,
	}
	type agg struct {
		io  *obs.Histogram
		dur *obs.Histogram
	}
	byOp := make(map[string]*agg)
	for r := 0; r < rounds; r++ {
		for _, qs := range queries {
			q := query.MustParse(qs)
			tr := obs.NewTracer(env.Disk)
			l, err := env.Eng.EvalContext(obs.WithTracer(context.Background(), tr), q)
			if err != nil {
				panic(err)
			}
			if err := l.Free(); err != nil {
				panic(err)
			}
			tr.Root().Walk(func(s *obs.Span) {
				a := byOp[s.Op]
				if a == nil {
					a = &agg{
						io:  obs.NewHistogram(s.Op+"_self_io", "self page I/O"),
						dur: obs.NewHistogram(s.Op+"_self_us", "self wall time (µs)"),
					}
					byOp[s.Op] = a
				}
				a.io.Observe(s.SelfIO().IO())
				a.dur.Observe(s.SelfDur().Microseconds())
			})
		}
	}
	ops := make([]string, 0, len(byOp))
	for op := range byOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)

	t := &Table{
		ID:     "OP",
		Title:  "per-operator execution profile",
		Claim:  "span-level cost attribution across a mixed L0–L3 workload",
		Header: []string{"op", "spans", "selfIO p50", "selfIO p95", "µs p50", "µs p95"},
	}
	for _, op := range ops {
		a := byOp[op]
		t.AddRow(op, a.io.Count(),
			a.io.Quantile(0.50), a.io.Quantile(0.95),
			a.dur.Quantile(0.50), a.dur.Quantile(0.95))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("forest N=%d, %d rounds over %d queries", n, rounds, len(queries)))
	return t
}
