package bench

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/model"
	"repro/internal/query"
)

// E11Hierarchy demonstrates Theorem 8.1's strict hierarchy
// LDAP ⊊ L0 ⊊ L1 ⊊ L2 ⊊ L3 with machine-checked witnesses: for each
// separation, a query in the stronger language whose answer provably
// cannot be produced by the weaker language on the witness data.
//
//   - LDAP ⊊ L0: an exhaustive certificate. Two entries are given
//     identical attribute sets, so no filter separates them; the
//     enumeration then shows no (base, scope, filter) triple produces the
//     L0 difference query's answer (Example 4.1's shape).
//   - L0 ⊊ L1: a two-instance certificate. The instances have identical
//     namespaces; every atomic query's answer restricted to the two
//     candidate entries is the same in both, so any boolean combination
//     treats them alike — but the children query's answers differ.
//   - L1 ⊊ L2: the instances are identical as sets of (attribute, value)
//     pairs and differ only in value multiplicities, which every
//     set-based L1 operator is blind to; count(val) sees them.
//   - L2 ⊊ L3: the referencing entry and its whole hierarchy context are
//     identical across the instances; only the attributes of a
//     hierarchy-unrelated referenced entry change, so no L2 operator can
//     carry the change to the referencing entry — vd can.
func E11Hierarchy() *Table {
	t := &Table{
		ID:     "E11",
		Title:  "Strict expressiveness hierarchy (Theorem 8.1)",
		Claim:  "LDAP < L0 < L1 < L2 < L3, each separation witnessed",
		Header: []string{"separation", "witness query language", "certificate", "verified"},
	}
	t.AddRow("LDAP < L0", "L0 (difference, Ex 4.1)", "exhaustive over base x scope x filter", verify(sepLDAPvsL0))
	t.AddRow("L0 < L1", "L1 (children, Ex 5.1)", "atomic-invariance across instance pair", verify(sepL0vsL1))
	t.AddRow("L1 < L2", "L2 (count, Ex 6.1/6.2)", "multiset-blindness across instance pair", verify(sepL1vsL2))
	t.AddRow("L2 < L3", "L3 (valueDN, Ex 7.1)", "hierarchy-locality across instance pair", verify(sepL2vsL3))
	return t
}

func verify(f func() error) string {
	if err := f(); err != nil {
		return "FAILED: " + err.Error()
	}
	return "ok"
}

// exprSchema is the minimal schema of the witness instances.
func exprSchema() *model.Schema {
	s := model.NewSchema()
	s.MustDefineAttr("dc", model.TypeString)
	s.MustDefineAttr("ou", model.TypeString)
	s.MustDefineAttr("cn", model.TypeString)
	s.MustDefineAttr("sn", model.TypeString)
	s.MustDefineAttr("val", model.TypeInt)
	s.MustDefineAttr("port", model.TypeInt)
	s.MustDefineAttr("ref", model.TypeDN)
	s.MustDefineClass("node", "dc", "ou", "cn", "sn", "val", "port", "ref")
	return s
}

func exprEntry(in *model.Instance, dn string, avs ...[2]string) {
	e, err := model.NewEntryFromDN(in.Schema(), model.MustParseDN(dn))
	if err != nil {
		panic(err)
	}
	e.AddClass("node")
	for _, av := range avs {
		t, _ := in.Schema().AttrType(av[0])
		v, err := model.ParseValue(t, av[1])
		if err != nil {
			panic(err)
		}
		e.Add(av[0], v)
	}
	in.MustAdd(e)
}

func answerKeys(dir *core.Directory, q string) []string {
	res, err := dir.Search(q)
	if err != nil {
		panic(err)
	}
	keys := make([]string, len(res.Entries))
	for i, e := range res.Entries {
		keys[i] = e.Key()
	}
	return keys
}

// sepLDAPvsL0: Example 4.1's shape with attribute-identical decoys. The
// target — everyone named jagadish under att except those under
// research — is the L0 difference query's answer. The certificate
// enumerates every possible LDAP answer: for each (base, scope), the
// achievable answers are exactly the unions of filter-equivalence
// classes intersected with the scope set; none equals the target.
func sepLDAPvsL0() error {
	in := model.NewInstance(exprSchema())
	exprEntry(in, "dc=att")
	exprEntry(in, "dc=research, dc=att")
	exprEntry(in, "ou=sales, dc=att")
	// x and y: jagadishes directly under att. z: deeper, under sales.
	// jr: under research. z and jr carry IDENTICAL attribute sets (same
	// RDN attr=value), so no filter whatsoever separates them.
	exprEntry(in, "cn=x, dc=att", [2]string{"sn", "jagadish"})
	exprEntry(in, "cn=y, dc=att", [2]string{"sn", "jagadish"})
	exprEntry(in, "cn=p, ou=sales, dc=att", [2]string{"sn", "jagadish"})
	exprEntry(in, "cn=p, dc=research, dc=att", [2]string{"sn", "jagadish"})
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		return err
	}

	target := answerKeys(dir, `(- (dc=att ? sub ? sn=jagadish) (dc=research, dc=att ? sub ? sn=jagadish))`)
	if len(target) != 3 {
		return fmt.Errorf("target should hold x, y and sales/p: got %d", len(target))
	}
	targetSet := toSet(target)

	// Filter-equivalence classes: entries with identical (attr, value)
	// SETS satisfy exactly the same filters (filters cannot see DNs or
	// multiplicity).
	classOf := map[string]string{}
	for _, e := range in.Entries() {
		sig := ""
		seen := map[string]bool{}
		for _, av := range e.Pairs() {
			k := av.Attr + "=" + av.Value.String()
			if !seen[k] {
				seen[k] = true
				sig += k + ";"
			}
		}
		classOf[e.Key()] = sig
	}

	// Every LDAP answer is scope(B) ∩ (union of classes). The target is
	// achievable iff within some scope set S ⊇ target, every class is
	// uniform (entirely in or out of the target) on S.
	var bases []model.DN
	bases = append(bases, nil)
	for _, e := range in.Entries() {
		bases = append(bases, e.DN())
	}
	for _, base := range bases {
		for _, sc := range []query.Scope{query.ScopeBase, query.ScopeOne, query.ScopeSub} {
			scope := scopeSet(in, base, sc)
			achievable := true
			for k := range targetSet {
				if !scope[k] {
					achievable = false // target outside the scope
					break
				}
			}
			if !achievable {
				continue
			}
			// Check class uniformity within the scope.
			classIn := map[string]int{} // class -> +target/-nontarget counts
			uniform := true
			for k := range scope {
				c := classOf[k]
				v := -1
				if targetSet[k] {
					v = 1
				}
				if prev, ok := classIn[c]; ok && prev != v {
					uniform = false
					break
				}
				classIn[c] = v
			}
			if uniform {
				return fmt.Errorf("LDAP expresses the target with base %q scope %v", base, sc)
			}
		}
	}
	return nil
}

// sepL0vsL1: two instances with identical namespaces where every atomic
// query's answer agrees on the candidate pair (x1, x2) across both
// instances — so every L0 boolean combination does too — while the
// children query separates them differently in each.
func sepL0vsL1() error {
	build := func(jagUnder string) *model.Instance {
		in := model.NewInstance(exprSchema())
		exprEntry(in, "dc=att")
		exprEntry(in, "ou=x1, dc=att")
		exprEntry(in, "ou=x2, dc=att")
		for _, ou := range []string{"x1", "x2"} {
			sn := "smith"
			if ou == jagUnder {
				sn = "jagadish"
			}
			exprEntry(in, fmt.Sprintf("cn=p, ou=%s, dc=att", ou), [2]string{"sn", sn})
		}
		return in
	}
	i1, i2 := build("x1"), build("x2")
	d1, err := core.Open(i1, core.Options{})
	if err != nil {
		return err
	}
	d2, err := core.Open(i2, core.Options{})
	if err != nil {
		return err
	}
	x1 := model.MustParseDN("ou=x1, dc=att").Key()
	x2 := model.MustParseDN("ou=x2, dc=att").Key()

	lq := `(c (dc=att ? sub ? ou=*) (dc=att ? sub ? sn=jagadish))`
	a1, a2 := toSet(answerKeys(d1, lq)), toSet(answerKeys(d2, lq))
	if !(a1[x1] && !a1[x2] && !a2[x1] && a2[x2]) {
		return fmt.Errorf("L1 witness answers wrong: %v / %v", a1, a2)
	}

	// Invariance certificate: for every atomic query (all bases x scopes
	// x atoms over the instances' vocabulary), the membership pattern of
	// (x1, x2) is the same in I1 and I2. Boolean operators compute
	// membership pointwise, so every L0 query inherits the invariance —
	// and no invariant query can answer {x1} on I1 and {x2} on I2.
	atoms := vocabularyAtoms(i1, i2)
	var bases []model.DN
	bases = append(bases, nil)
	for _, e := range i1.Entries() {
		bases = append(bases, e.DN())
	}
	for _, base := range bases {
		for _, sc := range []query.Scope{query.ScopeBase, query.ScopeOne, query.ScopeSub} {
			for _, atom := range atoms {
				q := &query.Atomic{Base: base, Scope: sc, Filter: atom}
				p1 := pairPattern(i1, q, x1, x2)
				p2 := pairPattern(i2, q, x1, x2)
				if p1 != p2 {
					return fmt.Errorf("invariance broken by %s", q)
				}
			}
		}
	}
	return nil
}

// sepL1vsL2: instances identical as sets of (attr, value) pairs,
// differing only in multiplicities. Every L1 operator works on entry
// sets and filter satisfaction, both multiplicity-blind, so all L1
// answers coincide on the two instances; count(val) differs.
func sepL1vsL2() error {
	build := func(manyOn string) *model.Instance {
		in := model.NewInstance(exprSchema())
		exprEntry(in, "dc=att")
		for _, cn := range []string{"x1", "x2"} {
			reps := 2
			if cn == manyOn {
				reps = 11
			}
			e, err := model.NewEntryFromDN(in.Schema(), model.MustParseDN(fmt.Sprintf("cn=%s, dc=att", cn)))
			if err != nil {
				panic(err)
			}
			e.AddClass("node")
			for i := 0; i < reps; i++ {
				e.Add("val", model.Int(1)) // identical value, multiset semantics
			}
			in.MustAdd(e)
		}
		return in
	}
	i1, i2 := build("x1"), build("x2")

	// Certificate: the instances are equal once multiplicities are
	// erased (same entries, same attribute-value SETS) — so every
	// set-based L0/L1 answer is literally equal on both.
	if err := equalModuloMultiplicity(i1, i2); err != nil {
		return err
	}

	d1, err := core.Open(i1, core.Options{})
	if err != nil {
		return err
	}
	d2, err := core.Open(i2, core.Options{})
	if err != nil {
		return err
	}
	lq := `(g (dc=att ? sub ? val=*) count(val) > 10)`
	a1, a2 := answerKeys(d1, lq), answerKeys(d2, lq)
	x1 := model.MustParseDN("cn=x1, dc=att").Key()
	x2 := model.MustParseDN("cn=x2, dc=att").Key()
	if !(len(a1) == 1 && a1[0] == x1 && len(a2) == 1 && a2[0] == x2) {
		return fmt.Errorf("L2 witness answers wrong: %v / %v", a1, a2)
	}
	return nil
}

// sepL2vsL3: the referencing policy p1 and its entire subtree/ancestor
// chain are identical across the instances; only the attributes of the
// hierarchy-unrelated referenced profiles change. Filters see only p1's
// own (unchanged) attributes; hierarchy operators see only p1's
// (unchanged) chain — so every L2 query keeps p1's membership invariant,
// while vd follows the reference and flips.
func sepL2vsL3() error {
	build := func(portOnX bool) *model.Instance {
		in := model.NewInstance(exprSchema())
		exprEntry(in, "dc=att")
		exprEntry(in, "ou=pol, dc=att")
		exprEntry(in, "ou=prof, dc=att")
		px, py := "80", "25"
		if portOnX {
			px, py = "25", "80"
		}
		exprEntry(in, "cn=X, ou=prof, dc=att", [2]string{"port", px})
		exprEntry(in, "cn=Y, ou=prof, dc=att", [2]string{"port", py})
		exprEntry(in, "cn=p1, ou=pol, dc=att", [2]string{"ref", "cn=X, ou=prof, dc=att"})
		return in
	}
	i1, i2 := build(true), build(false)

	// Certificate: p1's hierarchy context is identical across instances.
	p1 := model.MustParseDN("cn=p1, ou=pol, dc=att")
	for _, dn := range []string{"cn=p1, ou=pol, dc=att", "ou=pol, dc=att", "dc=att"} {
		e1, _ := i1.Get(model.MustParseDN(dn))
		e2, _ := i2.Get(model.MustParseDN(dn))
		if !e1.Equal(e2) {
			return fmt.Errorf("p1's chain differs at %s", dn)
		}
	}
	if len(i1.Descendants(p1)) != 0 || len(i2.Descendants(p1)) != 0 {
		return fmt.Errorf("p1 must be a leaf")
	}

	d1, err := core.Open(i1, core.Options{})
	if err != nil {
		return err
	}
	d2, err := core.Open(i2, core.Options{})
	if err != nil {
		return err
	}
	lq := `(vd (dc=att ? sub ? ref=*) (ou=prof, dc=att ? sub ? port=25) ref)`
	a1, a2 := answerKeys(d1, lq), answerKeys(d2, lq)
	if !(len(a1) == 1 && a1[0] == p1.Key() && len(a2) == 0) {
		return fmt.Errorf("L3 witness answers wrong: %v / %v", a1, a2)
	}
	return nil
}

func toSet(keys []string) map[string]bool {
	out := make(map[string]bool, len(keys))
	for _, k := range keys {
		out[k] = true
	}
	return out
}

// scopeSet returns the keys of the entries in scope(B).
func scopeSet(in *model.Instance, base model.DN, sc query.Scope) map[string]bool {
	out := map[string]bool{}
	k := base.Key()
	depth := base.Depth()
	in.Range(k, model.SubtreeHigh(k), func(e *model.Entry) bool {
		switch sc {
		case query.ScopeBase:
			if e.Key() != k {
				return true
			}
		case query.ScopeOne:
			if model.KeyDepth(e.Key())-depth > 1 {
				return true
			}
		}
		out[e.Key()] = true
		return true
	})
	return out
}

// vocabularyAtoms enumerates the atomic filters over both instances'
// (attribute, value) vocabulary plus presence tests.
func vocabularyAtoms(ins ...*model.Instance) []*filter.Atom {
	seen := map[string]bool{}
	var atoms []*filter.Atom
	add := func(a *filter.Atom) {
		if !seen[a.String()] {
			seen[a.String()] = true
			atoms = append(atoms, a)
		}
	}
	for _, in := range ins {
		for _, e := range in.Entries() {
			for _, av := range e.Pairs() {
				add(filter.Eq(av.Attr, av.Value.String()))
				add(filter.Present(av.Attr))
				if av.Value.Kind() == model.KindInt {
					add(filter.NewAtom(av.Attr, filter.OpLE, av.Value.String()))
					add(filter.NewAtom(av.Attr, filter.OpGE, av.Value.String()))
				}
			}
		}
	}
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].String() < atoms[j].String() })
	return atoms
}

// pairPattern evaluates the atomic query in-memory and returns the
// membership pattern of the two keys.
func pairPattern(in *model.Instance, q *query.Atomic, k1, k2 string) [2]bool {
	set := scopeSet(in, q.Base, q.Scope)
	pat := [2]bool{}
	for i, k := range []string{k1, k2} {
		if !set[k] {
			continue
		}
		e, _ := in.GetKey(k)
		pat[i] = q.Filter.Matches(in.Schema(), e)
	}
	return pat
}

// equalModuloMultiplicity checks the two instances have the same entries
// with the same attribute-value SETS.
func equalModuloMultiplicity(a, b *model.Instance) error {
	if a.Len() != b.Len() {
		return fmt.Errorf("sizes differ")
	}
	for _, ea := range a.Entries() {
		eb, ok := b.Get(ea.DN())
		if !ok {
			return fmt.Errorf("%s missing in second instance", ea.DN())
		}
		for _, e := range []struct{ x, y *model.Entry }{{ea, eb}, {eb, ea}} {
			for _, av := range e.x.Pairs() {
				if !e.y.HasPair(av.Attr, av.Value) {
					return fmt.Errorf("%s: pair %s=%s not shared", ea.DN(), av.Attr, av.Value)
				}
			}
		}
	}
	return nil
}
