package bench

import (
	"fmt"
	"io"

	"repro/internal/obs"
)

// Preset selects experiment sizes.
type Preset struct {
	Linear   []int // sizes for E1–E6 (entries)
	Super    []int // sizes for E7–E9
	Cross    []int // sizes for E10 (naive is quadratic: keep modest)
	AcSizes  []int // sizes for E12
	Dist     []int // subscriber counts for E14
	IndexN   int   // directory size for E15
	AppScale int   // scale for E16
	StackN   int   // chain length for ablation A1
	CacheN   int   // directory size for E18 (0 = default)
	CacheOps int   // Zipf draws for E18 (0 = default)
	VecN     []int // forest sizes for E22 (clustered embeddings)
	DeltaN   []int // directory sizes for E24 (incremental checkpoints)
}

// Quick is sized for CI and go test; Full for cmd/dirbench reports.
var (
	Quick = Preset{
		Linear:   []int{500, 1000, 2000, 4000},
		Super:    []int{500, 1000, 2000},
		Cross:    []int{200, 400, 800},
		AcSizes:  []int{500, 1000, 2000},
		Dist:     []int{20},
		IndexN:   400,
		AppScale: 60,
		StackN:   120,
		CacheN:   1500,
		CacheOps: 400,
		VecN:     []int{1500, 3000},
		DeltaN:   []int{1000, 3000},
	}
	Full = Preset{
		Linear:   []int{2000, 4000, 8000, 16000, 32000},
		Super:    []int{2000, 4000, 8000, 16000},
		Cross:    []int{250, 500, 1000, 2000},
		AcSizes:  []int{1000, 2000, 4000, 8000},
		Dist:     []int{40, 80},
		IndexN:   2000,
		AppScale: 150,
		StackN:   120,
		CacheN:   4000,
		CacheOps: 1200,
		VecN:     []int{4000, 8000, 16000},
		DeltaN:   []int{4000, 8000, 16000},
	}
)

// Spec names one experiment and how to run it at a preset.
type Spec struct {
	ID  string
	Run func(Preset) *Table
}

// Specs is the experiment registry in DESIGN.md order.
var Specs = []Spec{
	{"E1", func(p Preset) *Table { return E1Boolean(p.Linear) }},
	{"E2", func(p Preset) *Table { return E2HSPC(p.Linear) }},
	{"E3", func(p Preset) *Table { return E3HSAD(p.Linear) }},
	{"E4", func(p Preset) *Table { return E4HSADc(p.Linear) }},
	{"E5", func(p Preset) *Table { return E5SimpleAgg(p.Linear) }},
	{"E6", func(p Preset) *Table { return E6HSAgg(p.Linear) }},
	{"E7", func(p Preset) *Table { return E7ERDV(p.Super) }},
	{"E8", func(p Preset) *Table { return E8PipelineL2(p.Super) }},
	{"E9", func(p Preset) *Table { return E9PipelineL3(p.Super) }},
	{"E10", func(p Preset) *Table { return E10NaiveVsStack(p.Cross) }},
	{"E11", func(Preset) *Table { return E11Hierarchy() }},
	{"E12", func(p Preset) *Table { return E12AcEncodesP(p.AcSizes) }},
	{"E14", func(p Preset) *Table { return E14Distributed(p.Dist) }},
	{"E15", func(p Preset) *Table { return E15AtomicIndex(p.IndexN) }},
	{"E16", func(p Preset) *Table { return E16Apps(p.AppScale) }},
	{"E17", func(Preset) *Table { return E17Operators([]int{3, 4, 5, 6, 8}) }},
	{"E18", func(p Preset) *Table { return E18CacheZipf(p.CacheN, p.CacheOps) }},
	{"E19", func(p Preset) *Table { return E19Parallel(p.CacheN, p.CacheOps) }},
	{"E20", func(p Preset) *Table { return E20ConcurrentSearch(p.CacheN, p.CacheOps) }},
	{"E22", func(p Preset) *Table { return E22VectorScope(p.VecN) }},
	{"E23", func(p Preset) *Table { return E23AdaptivePlanner(p.IndexN) }},
	{"E24", func(p Preset) *Table { return E24DeltaCheckpoint(p.DeltaN) }},
	{"A1", func(p Preset) *Table { return AblationStackWindow(p.StackN, []int{2, 4, 16, 64}) }},
	{"A2", func(Preset) *Table { return AblationBlockSize(4000, []int{1024, 2048, 4096, 8192}) }},
	{"A3", func(Preset) *Table { return AblationResort(4000) }},
	{"A4", func(p Preset) *Table { return A4Planner(p.AppScale * 4) }},
}

// RunSpec runs one experiment with a latency histogram attached: every
// MeasureIO evaluation's wall time is collected, and the p50/p95/p99
// snapshot lands in the table (as a note for the text rendering, as
// the Latency field for -json consumers).
func RunSpec(s Spec, p Preset) *Table {
	h := obs.NewHistogram(s.ID+"_latency_us", "per-evaluation wall time (microseconds)")
	latHist = h
	t := s.Run(p)
	latHist = nil
	if h.Count() > 0 {
		snap := h.Snapshot()
		t.Latency = &snap
		t.Notes = append(t.Notes, fmt.Sprintf(
			"latency over %d evaluations: p50 %.0fµs, p95 %.0fµs, p99 %.0fµs",
			snap.Count, snap.P50, snap.P95, snap.P99))
	}
	return t
}

// All runs every experiment and ablation at the given preset.
func All(p Preset) []*Table {
	out := make([]*Table, len(Specs))
	for i, s := range Specs {
		out[i] = RunSpec(s, p)
	}
	return out
}

// FprintAll renders all tables.
func FprintAll(w io.Writer, tables []*Table) {
	for _, t := range tables {
		t.Fprint(w)
	}
}
