package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/qstats"
	"repro/internal/query"
	"repro/internal/workload"
)

// E23AdaptivePlanner runs the E15 crossover workload through the
// cost-based adaptive planner twice: cold (empty statistics store, the
// planner prices on catalog estimates alone) and warm (after the cold
// pass calibrated the store with each atomic's observed page I/O and
// cardinality). Reported per query: the answer size, evaluation page
// I/O and latency in both states, and the chosen access path cold→warm
// — a flip marks a query where calibration overruled the catalog. The
// experiment is self-checking: every cold and warm answer is compared
// byte-for-byte against a plain directory with no planner at all, so a
// cost-model regression fails the bench rather than skewing it.
func E23AdaptivePlanner(n int) *Table {
	t := &Table{
		ID:     "E23",
		Title:  "Adaptive planner: cold (empty qstats) vs warm (calibrated)",
		Claim:  "cost-based plans calibrated online; answers identical cold and warm",
		Header: []string{"filter", "|answer|", "IO cold", "IO warm", "path cold→warm", "lat cold→warm (µs)"},
	}
	in := workload.GenTOPS(workload.TOPSConfig{Subscribers: n, Seed: 13})
	dir, err := core.Open(in, core.Options{Adaptive: true})
	if err != nil {
		panic(err)
	}
	oracle, err := core.Open(in, core.Options{})
	if err != nil {
		panic(err)
	}
	qs := qstats.New()
	dir.SetQueryStats(qs)
	cases := []string{
		"(dc=com ? sub ? surName=jagadish)",
		"(dc=com ? sub ? surName=*adi*)",
		"(dc=com ? sub ? surName=jag*)",
		"(dc=com ? sub ? priority<=1)",
		"(dc=com ? sub ? CANumber=*)",
		"(dc=com ? sub ? objectClass=TOPSSubscriber)",
	}
	ctx := context.Background()
	flips := 0
	for _, qtext := range cases {
		q := query.MustParse(qtext)
		pathCold := atomPath(dir, qtext)
		start := time.Now()
		resCold, _, err := dir.SearchQueryTraced(ctx, q)
		if err != nil {
			panic(err)
		}
		latCold := time.Since(start)

		// The cold run folded its trace into qs; this plan is calibrated.
		pathWarm := atomPath(dir, qtext)
		start = time.Now()
		resWarm, _, err := dir.SearchQueryTraced(ctx, q)
		if err != nil {
			panic(err)
		}
		latWarm := time.Since(start)

		want, err := oracle.SearchQuery(q)
		if err != nil {
			panic(err)
		}
		checkSameAnswer(qtext+" (cold)", resCold.DNs(), want.DNs())
		checkSameAnswer(qtext+" (warm)", resWarm.DNs(), want.DNs())

		transition := pathCold
		if pathWarm != pathCold {
			transition = pathCold + "→" + pathWarm
			flips++
		}
		t.AddRow(query.MustParse(qtext).(*query.Atomic).Filter.String(), len(resWarm.Entries),
			resCold.IO.IO(), resWarm.IO.IO(), transition,
			fmt.Sprintf("%d→%d", latCold.Microseconds(), latWarm.Microseconds()))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("directory: %d entries; %d traces folded; %d path choices changed after calibration", dir.Count(), qs.Folded(), flips),
		"every cold and warm answer verified byte-identical to an unplanned directory (self-check panics on divergence)",
		"path flips cluster at the index/scan crossover, where catalog and observed costs sit within the log₂ histogram's bucket resolution — a flip there can go either way on I/O, but the answer never changes")
	return t
}

// atomPath reports the access path EXPLAIN would choose right now for
// the query's single atomic.
func atomPath(dir *core.Directory, qtext string) string {
	ex, err := dir.ExplainQuery(qtext)
	if err != nil {
		panic(err)
	}
	if len(ex.Atoms) != 1 {
		panic(fmt.Sprintf("%s: %d atoms, want 1", qtext, len(ex.Atoms)))
	}
	return ex.Atoms[0].Path
}

// checkSameAnswer panics when two answers differ — the bench's oracle
// guarantee enforcement.
func checkSameAnswer(label string, got, want []string) {
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		panic(fmt.Sprintf("E23 %s: adaptive answer diverges (%d vs %d entries)", label, len(got), len(want)))
	}
}
