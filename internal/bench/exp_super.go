package bench

import (
	"fmt"
	"time"

	"repro/internal/plist"
	"repro/internal/query"
)

// E7ERDV: the embedded-reference operators cost linear scans plus a
// sort of the LP pair list — Theorem 7.1's O(|L1|/B + (|L2|m/B)
// log(|L2|m/B)). The I/O-per-page ratio therefore grows slowly (log)
// with N instead of staying flat.
func E7ERDV(sizes []int) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "ComputeERAggDV / VD: sort-merge embedded references",
		Claim:  "Fig 3 + Theorem 7.1: linear + sort term",
		Header: []string{"policies", "in pages", "IO dv", "IO vd", "IO dv/page"},
	}
	var xs, ys []float64
	for _, n := range sizes {
		env := QoSEnv(n, 5, 0)
		ls := env.Lists(
			"(dc=att, dc=com ? sub ? objectClass=trafficProfile)",
			"(dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)")
		var out *plist.List
		ioDV := env.MeasureIO(func() error {
			var e error
			// dv: profiles referenced by some policy's SLATPRef.
			out, e = env.Eng.ComputeERAggDV(ls[0], ls[1], "SLATPRef", nil)
			return e
		})
		freeLists(out)
		ioVD := env.MeasureIO(func() error {
			var e error
			// vd: policies referencing some profile.
			out, e = env.Eng.ComputeERAggVD(ls[1], ls[0], "SLATPRef", nil)
			return e
		})
		freeLists(out)
		in := pagesOf(ls...)
		t.AddRow(n, in, ioDV, ioVD, float64(ioDV)/float64(in))
		xs = append(xs, float64(in))
		ys = append(ys, float64(ioDV))
		freeLists(ls...)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"log-log slope: %.2f (Theorem 7.1 predicts slightly above 1.0, far below 2.0)", Slope(xs, ys)))
	return t
}

// E8PipelineL2: whole L2 query trees evaluate in O(|Q| * |L|/B)
// (Theorem 8.3): I/O normalized by |Q| times the cumulative atomic
// output size stays bounded as both grow.
func E8PipelineL2(sizes []int) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "Pipelined evaluation of composed L2 queries",
		Claim:  "Theorem 8.3: O(|Q| * |L|/B) I/O, constant memory",
		Header: []string{"N", "|Q|", "atomic pages |L|/B", "IO", "IO/(|Q|*|L|/B)"},
	}
	queries := []string{
		`(c (& ( ? sub ? tag=a) ( ? sub ? val<5)) (| ( ? sub ? tag=b) ( ? sub ? tag=c)) count($2) > 0)`,
		`(g (a (- ( ? sub ? tag=a) ( ? sub ? val<2)) ( ? sub ? tag=b)) count(val) >= 1)`,
		`(dc (& ( ? sub ? tag=a) ( ? sub ? tag=a)) (d ( ? sub ? tag=b) ( ? sub ? val>=1)) ( ? sub ? tag=c) count($2) >= 1)`,
	}
	for _, n := range sizes {
		env := ForestEnv(n, 6, 0)
		for qi, qs := range queries {
			q := query.MustParse(qs)
			// Cumulative atomic output size |L|.
			atomPages := 0
			query.Walk(q, func(node query.Query) {
				if a, ok := node.(*query.Atomic); ok {
					l, err := env.Eng.Store().Eval(a)
					if err != nil {
						panic(err)
					}
					atomPages += l.Pages()
					freeLists(l)
				}
			})
			var out *plist.List
			io := env.MeasureIO(func() error {
				var e error
				out, e = env.Eng.Eval(q)
				return e
			})
			freeLists(out)
			sz := query.Size(q)
			t.AddRow(fmt.Sprintf("%d/q%d", n, qi+1), sz, atomPages, io,
				float64(io)/float64(sz*atomPages))
		}
	}
	t.Notes = append(t.Notes, "the normalized column is the constant of Theorem 8.3; it must not grow with N")
	return t
}

// E9PipelineL3: L3 trees pick up the sort term of Theorem 8.4.
func E9PipelineL3(sizes []int) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "Pipelined evaluation of composed L3 queries",
		Claim:  "Theorem 8.4: O(|Q| * (|L|/B) m log((|L|/B) m)) I/O",
		Header: []string{"N", "in pages", "IO", "IO/page"},
	}
	var xs, ys []float64
	qs := `(vd (g ( ? sub ? tag=a) count(ref) >= 1) (d ( ? sub ? tag=b) ( ? sub ? val<6)) ref)`
	for _, n := range sizes {
		env := ForestEnv(n, 7, 0)
		q := query.MustParse(qs)
		atomPages := 0
		query.Walk(q, func(node query.Query) {
			if a, ok := node.(*query.Atomic); ok {
				l, err := env.Eng.Store().Eval(a)
				if err != nil {
					panic(err)
				}
				atomPages += l.Pages()
				freeLists(l)
			}
		})
		var out *plist.List
		io := env.MeasureIO(func() error {
			var e error
			out, e = env.Eng.Eval(q)
			return e
		})
		freeLists(out)
		t.AddRow(n, atomPages, io, float64(io)/float64(atomPages))
		xs = append(xs, float64(atomPages))
		ys = append(ys, float64(io))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("log-log slope: %.2f (N log N: slightly above 1.0)", Slope(xs, ys)))
	return t
}

// E10NaiveVsStack: the crossover the paper motivates in Section 5.3 —
// the "straightforward way" is quadratic, the stack algorithm linear.
func E10NaiveVsStack(sizes []int) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "Naive quadratic vs stack-based hierarchical selection",
		Claim:  "Section 5.3: straightforward evaluation is quadratic; the stack algorithm is linear",
		Header: []string{"N", "in pages", "IO naive", "IO stack", "naive/stack", "t naive", "t stack"},
	}
	var xsN, ysN, xsS, ysS []float64
	for _, n := range sizes {
		env := ForestEnv(n, 8, 0)
		ls := env.Lists("( ? sub ? tag=a)", "( ? sub ? tag=b)")
		var out *plist.List
		t0 := time.Now()
		ioNaive := env.MeasureIO(func() error {
			var e error
			out, e = env.Eng.NaiveHier(query.OpAncestors, ls[0], ls[1], nil, nil)
			return e
		})
		dNaive := time.Since(t0)
		freeLists(out)
		t0 = time.Now()
		ioStack := env.MeasureIO(func() error {
			var e error
			out, e = env.Eng.ComputeHSAD(query.OpAncestors, ls[0], ls[1])
			return e
		})
		dStack := time.Since(t0)
		freeLists(out)
		in := pagesOf(ls...)
		t.AddRow(n, in, ioNaive, ioStack,
			float64(ioNaive)/float64(ioStack),
			dNaive.Round(time.Microsecond).String(),
			dStack.Round(time.Microsecond).String())
		xsN = append(xsN, float64(in))
		ysN = append(ysN, float64(ioNaive))
		xsS = append(xsS, float64(in))
		ysS = append(ysS, float64(ioStack))
		freeLists(ls...)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"log-log slopes: naive %.2f (quadratic = 2.0), stack %.2f (linear = 1.0)",
		Slope(xsN, ysN), Slope(xsS, ysS)))
	return t
}

// E12AcEncodesP: Theorem 8.2(d) shows ac can express p, but Section 8.1
// warns the encoding's third operand is the whole instance, making it
// "very expensive". Both forms return identical answers; the encoding's
// I/O grows with the instance, the native p only with its operands.
func E12AcEncodesP(sizes []int) *Table {
	t := &Table{
		ID:     "E12",
		Title:  "Expressing p through ac (whole-instance third operand)",
		Claim:  "Theorem 8.2(d) + the Section 8.1 cost remark",
		Header: []string{"N", "operand pages", "instance pages", "IO p", "IO ac-encoding", "ratio"},
	}
	for _, n := range sizes {
		env := ForestEnv(n, 9, 0)
		// Operands are pinned to fixed-size answer sets (exact names) so
		// the encoding's third operand — the whole instance — grows with
		// N while |L1| + |L2| stays constant.
		ls := env.Lists("( ? sub ? n=e3)", "( ? sub ? n=e7)", "( ? sub ? objectClass=*)")
		var pOut, acOut *plist.List
		ioP := env.MeasureIO(func() error {
			var e error
			pOut, e = env.Eng.ComputeHSPC(query.OpParents, ls[0], ls[1])
			return e
		})
		ioAC := env.MeasureIO(func() error {
			var e error
			acOut, e = env.Eng.ComputeHSADc(query.OpAncestorsC, ls[0], ls[1], ls[2])
			return e
		})
		// Same answers (Theorem 8.2(d)).
		pk, err := plist.Drain(pOut)
		if err != nil {
			panic(err)
		}
		ak, err := plist.Drain(acOut)
		if err != nil {
			panic(err)
		}
		if len(pk) != len(ak) {
			panic(fmt.Sprintf("E12: encoding disagrees: %d vs %d", len(pk), len(ak)))
		}
		for i := range pk {
			if pk[i].Key != ak[i].Key {
				panic("E12: encoding disagrees on an entry")
			}
		}
		t.AddRow(n, pagesOf(ls[0], ls[1]), ls[2].Pages(), ioP, ioAC,
			float64(ioAC)/float64(ioP))
		freeLists(pOut, acOut)
		freeLists(ls...)
	}
	t.Notes = append(t.Notes, "answers verified identical; the ratio grows with instance size / operand size")
	return t
}
