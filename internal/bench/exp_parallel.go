package bench

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ldif"
	"repro/internal/workload"
)

// E19 measures intra-query parallelism (DESIGN.md §9): wide L0 queries
// — eight independent atomic subtrees joined by the boolean operators —
// run against identically seeded directories whose engines differ only
// in Workers, and the table reports wall clock, speedup over the serial
// engine, and total page I/O per worker count. The experiment also
// asserts the §9 determinism claim: every worker count must produce
// byte-identical results (the run panics otherwise, and the table
// records the shared result hash).
//
// Wall-clock speedup requires hardware parallelism; the GOMAXPROCS note
// records how many CPUs the run actually had. On a single-CPU host the
// speedup column stays near 1.0 by construction.

// wideQuery builds the i-th eight-leaf query: atomics over the random
// forest's vocabulary, paired into four independent subtrees, joined by
// a rotating mix of |, & and d so every boolean operator participates.
func wideQuery(i int) string {
	leaf := func(j int) string {
		k := i + 3*j
		if k%2 == 0 {
			return fmt.Sprintf("( ? sub ? tag=%c)", 'a'+k%3)
		}
		return fmt.Sprintf("( ? sub ? val>=%d)", k%8)
	}
	ops := []string{"|", "&", "d"}
	pair := func(n int, a, b string) string {
		return fmt.Sprintf("(%s %s %s)", ops[(i+n)%len(ops)], a, b)
	}
	p0 := pair(0, leaf(0), leaf(1))
	p1 := pair(1, leaf(2), leaf(3))
	p2 := pair(2, leaf(4), leaf(5))
	p3 := pair(3, leaf(6), leaf(7))
	// The top join is always | so no subtree can annul the others and
	// every row hashes a non-trivial result.
	return fmt.Sprintf("(| (| %s %s) (| %s %s))", p0, p1, p2, p3)
}

// runParallelWorkload replays the query stream and returns the total
// page I/O, wall time, and an order-sensitive FNV hash of every result
// entry (the byte-identity witness).
func runParallelWorkload(d *core.Directory, queries []string, reps int) (io int64, elapsed time.Duration, hash uint64) {
	h := fnv.New64a()
	start := time.Now()
	for r := 0; r < reps; r++ {
		for _, q := range queries {
			res, err := d.Search(q)
			if err != nil {
				panic(err)
			}
			io += res.IO.IO()
			for _, e := range res.Entries {
				h.Write([]byte(ldif.MarshalEntry(e)))
				h.Write([]byte{0})
			}
		}
	}
	return io, time.Since(start), h.Sum64()
}

// E19Parallel runs the wide-query stream at Workers ∈ {1, 2, 4, 8} over
// a forest of n entries, ops total evaluations. Zero arguments select
// defaults, so presets predating the experiment keep working.
func E19Parallel(n, ops int) *Table {
	if n <= 0 {
		n = 2000
	}
	if ops <= 0 {
		ops = 200
	}
	const nQueries = 8
	queries := make([]string, nQueries)
	for i := range queries {
		queries[i] = wideQuery(i)
	}
	reps := ops / nQueries
	if reps < 1 {
		reps = 1
	}

	t := &Table{
		ID:     "E19",
		Title:  "intra-query parallelism: speedup vs workers",
		Claim:  "DESIGN.md §9: independent subtrees evaluate concurrently; results identical at any worker count",
		Header: []string{"workers", "queries", "page I/O", "wall ms", "speedup", "result hash"},
	}
	var base time.Duration
	var baseHash uint64
	for _, w := range []int{1, 2, 4, 8} {
		in := workload.RandomForest(workload.ForestConfig{N: n, Seed: 11})
		d, err := core.Open(in, core.Options{Engine: engine.Config{Workers: w}})
		if err != nil {
			panic(err)
		}
		io, dur, hash := runParallelWorkload(d, queries, reps)
		if w == 1 {
			base, baseHash = dur, hash
		} else if hash != baseHash {
			panic(fmt.Sprintf("bench: E19 results diverge at Workers=%d (hash %x != %x)", w, hash, baseHash))
		}
		t.AddRow(w, reps*nQueries, io, fmt.Sprintf("%.1f", float64(dur.Microseconds())/1e3),
			fmt.Sprintf("%.2fx", float64(base)/float64(max(dur, 1))),
			fmt.Sprintf("%016x", hash))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d distinct 8-leaf queries × %d reps, forest n=%d seed 11; results byte-identical across worker counts", nQueries, reps, n),
		fmt.Sprintf("GOMAXPROCS=%d — wall-clock speedup requires hardware parallelism", runtime.GOMAXPROCS(0)),
	)
	return t
}
