package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/apps/qos"
	"repro/internal/apps/tops"
	"repro/internal/core"
	"repro/internal/dirserver"
	"repro/internal/engine"
	"repro/internal/extsort"
	"repro/internal/model"
	"repro/internal/plist"
	"repro/internal/query"
	"repro/internal/workload"
)

// E14Distributed verifies the Section 8.3 strategy: splitting the
// namespace across servers and shipping atomic sub-queries yields the
// same answers as centralized evaluation, and only atomic results cross
// the wire.
func E14Distributed(subscribers []int) *Table {
	t := &Table{
		ID:     "E14",
		Title:  "Distributed evaluation across namespace-partitioned servers",
		Claim:  "Section 8.3: atomics shipped to owning servers, results merged centrally",
		Header: []string{"subscribers", "servers", "remote atomics", "entries shipped", "answers equal"},
	}
	for _, n := range subscribers {
		whole := workload.GenTOPS(workload.TOPSConfig{Subscribers: n, Seed: 12})
		s := whole.Schema()
		// Partition: subscribers with even index on server B, the rest
		// (upper levels + odd subscribers) on server A.
		aIn, bIn := model.NewInstance(s), model.NewInstance(s)
		for _, e := range whole.Entries() {
			target := aIn
			for _, rdn := range e.DN() {
				for _, ava := range rdn {
					if model.NormalizeAttr(ava.Attr) == "uid" && len(ava.Value) > 3 {
						var idx int
						fmt.Sscanf(ava.Value, "sub%d", &idx)
						if idx%2 == 0 {
							target = bIn
						}
					}
				}
			}
			target.MustAdd(e.Clone())
		}
		dirWhole, err := core.Open(whole, core.Options{})
		if err != nil {
			panic(err)
		}
		dirA, err := core.Open(aIn, core.Options{})
		if err != nil {
			panic(err)
		}
		dirB, err := core.Open(bIn, core.Options{})
		if err != nil {
			panic(err)
		}
		srvA, err := dirserver.Serve(dirA, "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		srvB, err := dirserver.Serve(dirB, "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		var reg dirserver.Registry
		reg.Register(model.MustParseDN("dc=com"), srvA.Addr())
		// Even subscribers are delegated individually — the DNS-style
		// subdomain split of Section 3.3.
		shipped := 0
		for i := 0; i < n; i += 2 {
			reg.Register(model.MustParseDN(fmt.Sprintf(
				"uid=sub%04d, ou=userProfiles, dc=research, dc=att, dc=com", i)), srvB.Addr())
		}
		coord := dirserver.NewCoordinator(dirA, &reg, srvA.Addr())
		queries := []string{
			fmt.Sprintf("(uid=sub%04d, ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=QHP)", 0),
			fmt.Sprintf(`(| (uid=sub0000, ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=callAppearance)
			               (uid=sub0001, ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=callAppearance))`),
			fmt.Sprintf(`(c (uid=sub0000, ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=QHP)
			                (uid=sub0000, ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=callAppearance)
			                count($2) >= 1)`),
		}
		equal := true
		for _, qs := range queries {
			want, err := dirWhole.Search(qs)
			if err != nil {
				panic(err)
			}
			got, err := coord.Search(context.Background(), qs)
			if err != nil {
				panic(err)
			}
			if len(got) != len(want.Entries) {
				equal = false
				continue
			}
			for i := range got {
				if !got[i].DN().Equal(want.Entries[i].DN()) {
					equal = false
				}
			}
			shipped += len(got)
		}
		t.AddRow(n, 2, coord.RemoteAtomics(), shipped, equal)
		_ = coord.Close()
		_ = srvA.Close()
		_ = srvB.Close()
	}
	return t
}

// E15AtomicIndex compares index-supported atomic evaluation against
// scope scans (the Section 4.1 assumption that atomic queries are
// efficiently index-supported).
func E15AtomicIndex(n int) *Table {
	t := &Table{
		ID:     "E15",
		Title:  "Atomic query evaluation: cost-based index/scan choice vs forced scans",
		Claim:  "Section 4.1: B+tree for int/dn filters, trie/suffix indexes for strings",
		Header: []string{"filter", "|answer|", "IO chosen plan", "IO forced scan", "ratio"},
	}
	in := workload.GenTOPS(workload.TOPSConfig{Subscribers: n, Seed: 13})
	env := openEnv(in, 0)
	stScan, dScan := unindexedEnv(in, 0)
	cases := []string{
		"(dc=com ? sub ? surName=jagadish)",
		"(dc=com ? sub ? surName=*adi*)",
		"(dc=com ? sub ? surName=jag*)",
		"(dc=com ? sub ? priority<=1)",
		"(dc=com ? sub ? CANumber=*)",
		"(dc=com ? sub ? objectClass=TOPSSubscriber)",
	}
	for _, qs := range cases {
		q := query.MustParse(qs).(*query.Atomic)
		var out *plist.List
		ioIdx := env.MeasureIO(func() error {
			var e error
			out, e = env.Eng.Store().Eval(q)
			return e
		})
		count := out.Count()
		freeLists(out)
		before := dScan.Stats()
		out, err := stScan.Eval(q)
		if err != nil {
			panic(err)
		}
		ioScan := dScan.Stats().Sub(before).IO()
		freeLists(out)
		t.AddRow(q.Filter.String(), count, ioIdx, ioScan, float64(ioScan)/float64(ioIdx))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("directory: %d entries, %d master pages", env.Dir.Count(), env.Eng.Store().MasterPages()))
	t.Notes = append(t.Notes,
		"the store picks index or scan per filter from its catalog statistics; ratio 1.00 means it correctly chose the scan")
	return t
}

// E16Apps measures the two motivating applications end to end:
// QoS enforcement lookups (Example 2.1) and TOPS call routing
// (Example 2.2).
func E16Apps(scale int) *Table {
	t := &Table{
		ID:     "E16",
		Title:  "DEN applications end-to-end",
		Claim:  "Examples 2.1 and 2.2 running on the directory",
		Header: []string{"app", "directory entries", "lookups", "avg IO/lookup", "avg latency"},
	}
	// QoS.
	qin := workload.GenQoS(workload.QoSConfig{Domains: 2, PoliciesPerDomain: scale, Seed: 14})
	qdir, err := core.Open(qin, core.Options{})
	if err != nil {
		panic(err)
	}
	lookups := 50
	before := qdir.Disk().Stats()
	t0 := time.Now()
	for i := 0; i < lookups; i++ {
		_, err := qos.Match(qdir, "dc=dom0, dc=att, dc=com", qos.Packet{
			SourceAddress:   fmt.Sprintf("204.%d.%d.9", i%32, (i*7)%32),
			SourcePort:      25,
			DestinationPort: 80,
			Time:            19980615120000,
			DayOfWeek:       int64(1 + i%7),
		})
		if err != nil {
			panic(err)
		}
	}
	qIO := qdir.Disk().Stats().Sub(before).IO()
	qDur := time.Since(t0)
	t.AddRow("QoS Match", qin.Len(), lookups, float64(qIO)/float64(lookups),
		(qDur / time.Duration(lookups)).Round(time.Microsecond).String())

	// TOPS.
	tin := workload.GenTOPS(workload.TOPSConfig{Subscribers: scale, Seed: 15})
	tdir, err := core.Open(tin, core.Options{})
	if err != nil {
		panic(err)
	}
	before = tdir.Disk().Stats()
	t0 = time.Now()
	routed := 0
	for i := 0; i < lookups; i++ {
		_, err := tops.Lookup(tdir, "ou=userProfiles, dc=research, dc=att, dc=com", tops.Call{
			CalleeUID: fmt.Sprintf("sub%04d", i%scale),
			Time:      900 + int64(i)%600,
			DayOfWeek: int64(1 + i%7),
		})
		if err == nil {
			routed++
		}
	}
	tIO := tdir.Disk().Stats().Sub(before).IO()
	tDur := time.Since(t0)
	t.AddRow("TOPS Lookup", tin.Len(), lookups, float64(tIO)/float64(lookups),
		(tDur / time.Duration(lookups)).Round(time.Microsecond).String())
	t.Notes = append(t.Notes, fmt.Sprintf("TOPS: %d/%d calls routed (others hit no matching QHP)", routed, lookups))
	return t
}

// AblationStackWindow sweeps the stack's resident window: the
// constant-memory claim of Theorem 8.3 — any constant window keeps the
// algorithm linear; smaller windows pay more spill I/O.
func AblationStackWindow(n int, windows []int) *Table {
	t := &Table{
		ID:     "A1",
		Title:  "Ablation: stack resident window",
		Claim:  "Theorem 5.1/8.3 proof: stack swap-out I/O stays linear for any constant window",
		Header: []string{"window pages", "IO(d)", "result size"},
	}
	// A deep chain drives the stack past any small window: entry i is the
	// child of entry i-1, so the stack holds the whole path. Depth is
	// capped so reverse-DN keys stay within the index's item bound.
	if n > 120 {
		n = 120
	}
	in := model.NewInstance(workload.ForestSchema())
	dn := model.DN{}
	for i := 0; i < n; i++ {
		dn = dn.Child(model.RDN{{Attr: "n", Value: fmt.Sprintf("c%d", i)}})
		e, err := model.NewEntryFromDN(in.Schema(), dn)
		if err != nil {
			panic(err)
		}
		e.AddClass("node")
		e.Add("tag", model.String(string(rune('a'+i%2))))
		in.MustAdd(e)
	}
	for _, w := range windows {
		dir, err := core.Open(in, core.Options{Engine: engine.Config{StackWindow: w}})
		if err != nil {
			panic(err)
		}
		env := &Env{Dir: dir, Eng: dir.Engine(), Disk: dir.Disk(), Schema: dir.Schema()}
		ls := env.Lists("( ? sub ? tag=a)", "( ? sub ? tag=b)")
		var out *plist.List
		io := env.MeasureIO(func() error {
			var e error
			out, e = env.Eng.ComputeHSAD(query.OpDescendants, ls[0], ls[1])
			return e
		})
		t.AddRow(w, io, out.Count())
		freeLists(out)
		freeLists(ls...)
	}
	return t
}

// AblationBlockSize sweeps the page size: the theorems' bounds are
// |L|/B, so doubling the blocking factor should roughly halve the I/O.
func AblationBlockSize(n int, pageSizes []int) *Table {
	t := &Table{
		ID:     "A2",
		Title:  "Ablation: blocking factor B (page size)",
		Claim:  "all bounds are O(|L|/B): I/O scales inversely with page size",
		Header: []string{"page size", "in pages", "IO(a)", "IO * pageSize"},
	}
	for _, ps := range pageSizes {
		env := ForestEnv(n, 17, ps)
		ls := env.Lists("( ? sub ? tag=a)", "( ? sub ? tag=b)")
		var out *plist.List
		io := env.MeasureIO(func() error {
			var e error
			out, e = env.Eng.ComputeHSAD(query.OpAncestors, ls[0], ls[1])
			return e
		})
		t.AddRow(ps, pagesOf(ls...), io, io*int64(ps))
		freeLists(out)
		freeLists(ls...)
	}
	t.Notes = append(t.Notes, "the IO * pageSize column (bytes moved) should stay roughly constant")
	return t
}

// AblationResort measures the sorted-invariant payoff of Section 8.2:
// because every operator emits reverse-key order, no intermediate sort
// is needed; forcing a re-sort after each operand shows what the
// invariant saves.
func AblationResort(n int) *Table {
	t := &Table{
		ID:     "A3",
		Title:  "Ablation: sorted-output invariant vs re-sorting operands",
		Claim:  "Section 8.2: \"no additional sorting of the result of an intermediate operator is necessary\"",
		Header: []string{"N", "IO pipelined", "IO with forced re-sorts", "overhead"},
	}
	env := ForestEnv(n, 18, 0)
	ls := env.Lists("( ? sub ? tag=a)", "( ? sub ? tag=b)", "( ? sub ? val<5)")
	// Pipelined: (a (& L1 L3) L2).
	var inter, out *plist.List
	ioPipe := env.MeasureIO(func() error {
		var e error
		inter, e = env.Eng.EvalBool(query.OpAnd, ls[0], ls[2])
		if e != nil {
			return e
		}
		out, e = env.Eng.ComputeHSAD(query.OpAncestors, inter, ls[1])
		return e
	})
	freeLists(inter, out)
	// Re-sorting variant: externally sort each intermediate before use,
	// as an engine without the invariant would.
	ioSort := env.MeasureIO(func() error {
		var e error
		inter, e = env.Eng.EvalBool(query.OpAnd, ls[0], ls[2])
		if e != nil {
			return e
		}
		sorted, e := extsort.Sort(env.Disk, inter.Reader(), extsort.Config{})
		if e != nil {
			return e
		}
		_ = inter.Free()
		out, e = env.Eng.ComputeHSAD(query.OpAncestors, sorted, ls[1])
		if e != nil {
			return e
		}
		return sorted.Free()
	})
	freeLists(out)
	freeLists(ls...)
	t.AddRow(n, ioPipe, ioSort, float64(ioSort)/float64(ioPipe))
	return t
}
