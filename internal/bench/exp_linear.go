package bench

import (
	"fmt"

	"repro/internal/plist"
	"repro/internal/query"
)

// E1Boolean verifies the Section 4.2 claim: the L0 boolean operators
// evaluate by a single linear list merge. Reported I/O per input+output
// page must stay constant as N grows.
func E1Boolean(sizes []int) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "Boolean operators by linear list merging",
		Claim:  "Section 4.2 / Fig 7: &, |, - computed in one merge scan",
		Header: []string{"N", "in pages", "IO(&)", "IO(|)", "IO(-)", "IO(&)/page"},
	}
	var xs, ys []float64
	for _, n := range sizes {
		env := ForestEnv(n, 1, 0)
		ls := env.Lists("( ? sub ? tag=a)", "( ? sub ? val<4)")
		var ios [3]int64
		for i, op := range []query.BoolOp{query.OpAnd, query.OpOr, query.OpDiff} {
			var out *plist.List
			ios[i] = env.MeasureIO(func() error {
				var err error
				out, err = env.Eng.EvalBool(op, ls[0], ls[1])
				return err
			})
			freeLists(out)
		}
		in := pagesOf(ls...)
		t.AddRow(n, in, ios[0], ios[1], ios[2], float64(ios[0])/float64(in))
		xs = append(xs, float64(in))
		ys = append(ys, float64(ios[0]))
		freeLists(ls...)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("log-log slope of IO(&) vs input pages: %.2f (linear = 1.0)", Slope(xs, ys)))
	return t
}

// hierTable runs one hierarchy operator across sizes and reports its
// I/O against the linear bound of Theorem 5.1.
func hierTable(id, title, claim string, op query.HierOp, ternary bool, sizes []int) *Table {
	t := &Table{
		ID: id, Title: title, Claim: claim,
		Header: []string{"N", "in pages", "|out|", "IO", "IO/page"},
	}
	var xs, ys []float64
	for _, n := range sizes {
		env := ForestEnv(n, 2, 0)
		atoms := []string{"( ? sub ? tag=a)", "( ? sub ? tag=b)"}
		if ternary {
			atoms = append(atoms, "( ? sub ? tag=c)")
		}
		ls := env.Lists(atoms...)
		var out *plist.List
		io := env.MeasureIO(func() error {
			var err error
			if ternary {
				out, err = env.Eng.ComputeHSADc(op, ls[0], ls[1], ls[2])
			} else if op == query.OpParents || op == query.OpChildren {
				out, err = env.Eng.ComputeHSPC(op, ls[0], ls[1])
			} else {
				out, err = env.Eng.ComputeHSAD(op, ls[0], ls[1])
			}
			return err
		})
		in := pagesOf(ls...)
		t.AddRow(n, in, out.Count(), io, float64(io)/float64(in))
		xs = append(xs, float64(in))
		ys = append(ys, float64(io))
		freeLists(out)
		freeLists(ls...)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("log-log slope: %.2f (Theorem 5.1 predicts 1.0)", Slope(xs, ys)))
	return t
}

// E2HSPC: Algorithm ComputeHSPC (Fig 2) has linear I/O.
func E2HSPC(sizes []int) *Table {
	return hierTable("E2", "ComputeHSPC: parents/children, stack-based",
		"Fig 2 + Theorem 5.1: O(|L1|/B + |L2|/B) I/O", query.OpChildren, false, sizes)
}

// E3HSAD: Algorithm ComputeHSAD (Fig 4) has linear I/O.
func E3HSAD(sizes []int) *Table {
	return hierTable("E3", "ComputeHSAD: ancestors/descendants, stack-based",
		"Fig 4 + Theorem 5.1: O(|L1|/B + |L2|/B) I/O", query.OpAncestors, false, sizes)
}

// E4HSADc: Algorithm ComputeHSADc (Fig 5) has linear I/O including the
// blocker list.
func E4HSADc(sizes []int) *Table {
	return hierTable("E4", "ComputeHSADc: path-constrained, stack-based",
		"Fig 5 + Theorem 5.1: O((|L1|+|L2|+|L3|)/B) I/O", query.OpDescendantsC, true, sizes)
}

// E5SimpleAgg: simple aggregate selection runs in at most two scans of
// its operand (Theorem 6.1), measured on the Example 6.1 query shape.
func E5SimpleAgg(sizes []int) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "Simple aggregate selection in <= 2 scans",
		Claim:  "Theorem 6.1 on the Example 6.1 query: count(SLAPVPRef) > 1",
		Header: []string{"policies", "L1 pages", "IO simple", "IO set-agg", "scans simple", "scans set-agg"},
	}
	for _, n := range sizes {
		env := QoSEnv(n, 3, 0)
		ls := env.Lists("(dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)")
		selSimple, err := query.ParseAggSel("count(SLAPVPRef) > 1")
		if err != nil {
			panic(err)
		}
		selSet, err := query.ParseAggSel("min(SLARulePriority) = min(min(SLARulePriority))")
		if err != nil {
			panic(err)
		}
		var out *plist.List
		io1 := env.MeasureIO(func() error {
			var e error
			out, e = env.Eng.EvalSimpleAgg(ls[0], selSimple)
			return e
		})
		outPages := out.Pages()
		freeLists(out)
		io2 := env.MeasureIO(func() error {
			var e error
			out, e = env.Eng.EvalSimpleAgg(ls[0], selSet)
			return e
		})
		out2Pages := out.Pages()
		freeLists(out)
		p := ls[0].Pages()
		t.AddRow(n, p, io1, io2,
			float64(io1-int64(outPages))/float64(p),
			float64(io2-int64(out2Pages))/float64(p))
		freeLists(ls...)
	}
	t.Notes = append(t.Notes,
		"scans = (IO - output pages) / L1 pages: ~1 for entry-local filters, ~2 when an entry-set aggregate forces the pre-pass")
	return t
}

// E6HSAgg: the aggregate-extended stack algorithms (Fig 6) stay linear,
// measured on the Example 6.2 shape (TOPS subscribers by QHP count) and
// the Fig 6 filter count($2)=max(count($2)).
func E6HSAgg(sizes []int) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "ComputeHSAgg: structural aggregate selection, stack-based",
		Claim:  "Fig 6 + Theorem 6.2: linear I/O for distributive/algebraic aggregates",
		Header: []string{"subscribers", "in pages", "IO count>k", "IO max(count)", "IO sum($2)", "IO/page"},
	}
	var xs, ys []float64
	for _, n := range sizes {
		env := TOPSEnv(n, 4, 0)
		ls := env.Lists(
			"(dc=com ? sub ? objectClass=TOPSSubscriber)",
			"(dc=com ? sub ? objectClass=QHP)")
		sels := []string{
			"count($2) > 2",
			"count($2) = max(count($2))",
			"sum($2.priority) >= 3",
		}
		var ios []int64
		for _, s := range sels {
			sel, err := query.ParseAggSel(s)
			if err != nil {
				panic(err)
			}
			var out *plist.List
			ios = append(ios, env.MeasureIO(func() error {
				var e error
				out, e = env.Eng.ComputeHSAgg(query.OpChildren, ls[0], ls[1], nil, sel)
				return e
			}))
			freeLists(out)
		}
		in := pagesOf(ls...)
		t.AddRow(n, in, ios[0], ios[1], ios[2], float64(ios[1])/float64(in))
		xs = append(xs, float64(in))
		ys = append(ys, float64(ios[1]))
		freeLists(ls...)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("log-log slope of IO(max(count)) vs pages: %.2f (Theorem 6.2 predicts 1.0)", Slope(xs, ys)))
	return t
}
