package bench

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ldif"
	"repro/internal/model"
	"repro/internal/workload"
)

// E20 measures the lock-free read path (DESIGN.md §10): the same query
// stream replayed by 1, 2, 4 and 8 reader goroutines, each batch run
// twice — against a quiescent directory and against one a background
// writer keeps rebuilding with Update. Because searches evaluate on
// per-query arenas against an immutable snapshot, reader counts must
// not change answers: every quiescent row carries the same FNV sum over
// all result entries as the serial row (the run panics otherwise).
// Rows with the updater running report the generations swapped under
// the readers' feet; their answers legitimately differ per generation,
// so the hash column records "-" and the consistency guarantee (each
// result matches the generation it reports) is asserted in the package
// tests instead.

// resultHash folds one search result into an order-insensitive sum:
// each evaluation contributes the FNV hash of its marshalled entries,
// and contributions add up, so any interleaving of the same multiset of
// (query, result) pairs produces the same total.
func resultHash(res *core.Result) uint64 {
	h := fnv.New64a()
	for _, e := range res.Entries {
		h.Write([]byte(ldif.MarshalEntry(e)))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// runConcurrentReaders replays stream across r goroutines (goroutine g
// takes indices g, g+r, g+2r, ... so the multiset of evaluated queries
// is identical for every r) and returns wall time and the summed result
// hash.
func runConcurrentReaders(d *core.Directory, stream []string, r int) (time.Duration, uint64) {
	var wg sync.WaitGroup
	var sum atomic.Uint64
	start := time.Now()
	for g := 0; g < r; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var local uint64
			for i := g; i < len(stream); i += r {
				res, err := d.Search(stream[i])
				if err != nil {
					panic(err)
				}
				local += resultHash(res)
			}
			sum.Add(local)
		}(g)
	}
	wg.Wait()
	return time.Since(start), sum.Load()
}

// E20ConcurrentSearch runs the wide-query stream of E19 at 1/2/4/8
// reader goroutines over a forest of n entries, ops evaluations per
// row, with and without a background updater. Zero arguments select
// defaults.
func E20ConcurrentSearch(n, ops int) *Table {
	if n <= 0 {
		n = 2000
	}
	if ops <= 0 {
		ops = 200
	}
	const nQueries = 8
	stream := make([]string, ops)
	for i := range stream {
		stream[i] = wideQuery(i % nQueries)
	}

	t := &Table{
		ID:     "E20",
		Title:  "lock-free concurrent reads: QPS vs reader goroutines, ± background updates",
		Claim:  "DESIGN.md §10: snapshot reads share no mutable state, so readers scale and answers never tear",
		Header: []string{"readers", "updater", "queries", "wall ms", "QPS", "speedup", "swaps", "result hash"},
	}
	for _, withUpdates := range []bool{false, true} {
		var base time.Duration
		var baseHash uint64
		for _, r := range []int{1, 2, 4, 8} {
			in := workload.RandomForest(workload.ForestConfig{N: n, Seed: 11})
			d, err := core.Open(in, core.Options{})
			if err != nil {
				panic(err)
			}
			startGen := d.Generation()

			stopUpd := make(chan struct{})
			updDone := make(chan struct{})
			if withUpdates {
				go func() {
					defer close(updDone)
					for i := 0; ; i++ {
						select {
						case <-stopUpd:
							return
						default:
						}
						err := d.Update(func(inst *model.Instance) error {
							if i%2 == 0 {
								e, err := model.NewEntryFromDN(inst.Schema(),
									model.MustParseDN(fmt.Sprintf("n=e20x%d", i)))
								if err != nil {
									return err
								}
								e.AddClass("node")
								return inst.Add(e)
							}
							inst.Remove(model.MustParseDN(fmt.Sprintf("n=e20x%d", i-1)))
							return nil
						})
						if err != nil {
							panic(err)
						}
					}
				}()
			} else {
				close(updDone)
			}

			dur, hash := runConcurrentReaders(d, stream, r)
			close(stopUpd)
			<-updDone
			swaps := d.Generation() - startGen

			mode, hashCol := "off", fmt.Sprintf("%016x", hash)
			if withUpdates {
				// Answers vary with the generation each search caught;
				// identity is asserted on the quiescent rows only.
				mode, hashCol = "on", "-"
			} else if r == 1 {
				base, baseHash = dur, hash
			} else if hash != baseHash {
				panic(fmt.Sprintf("bench: E20 results diverge at readers=%d (hash %x != %x)", r, hash, baseHash))
			}
			speedup := "-"
			if !withUpdates {
				speedup = fmt.Sprintf("%.2fx", float64(base)/float64(max(dur, 1)))
			}
			qps := float64(len(stream)) / max(dur.Seconds(), 1e-9)
			t.AddRow(r, mode, len(stream), fmt.Sprintf("%.1f", float64(dur.Microseconds())/1e3),
				fmt.Sprintf("%.0f", qps), speedup, swaps, hashCol)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d evaluations over %d distinct 8-leaf queries, forest n=%d seed 11; quiescent rows must hash identically", ops, nQueries, n),
		fmt.Sprintf("GOMAXPROCS=%d — QPS scaling requires hardware parallelism; swap column counts background rebuilds observed mid-run", runtime.GOMAXPROCS(0)),
	)
	return t
}
