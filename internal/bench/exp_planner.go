package bench

import (
	"fmt"

	"repro/internal/planner"
	"repro/internal/plist"
	"repro/internal/query"
	"repro/internal/workload"
)

// A4Planner measures the algebraic rewrites of internal/planner: for
// each rule, a query shape that triggers it, evaluated with and without
// optimization — answers verified identical, I/O compared.
func A4Planner(subscribers int) *Table {
	t := &Table{
		ID:     "A4",
		Title:  "Ablation: algebraic planner rewrites",
		Claim:  "answer-preserving rewrites (scope narrowing, disjointness, the reverse Section 8.1 identity)",
		Header: []string{"rule", "IO plain", "IO optimized", "saving"},
	}
	in := workload.GenTOPS(workload.TOPSConfig{Subscribers: subscribers, Seed: 19})
	env := openEnv(in, 0)
	strict := in.Validate(true) == nil

	cases := []struct {
		rule string
		q    string
	}{
		{"and-narrow-scope",
			`(& (uid=sub0000, ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=QHP)
			    (dc=com ? sub ? priority<=2))`},
		{"and-disjoint-empty",
			`(& (uid=sub0000, ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=QHP)
			    (uid=sub0001, ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=QHP))`},
		{"diff-disjoint-noop",
			`(- (uid=sub0000, ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=*)
			    (dc=ibm, dc=com ? sub ? objectClass=*))`},
		{"ac-all-to-p",
			`(ac (dc=com ? sub ? objectClass=QHP)
			     (dc=com ? sub ? objectClass=TOPSSubscriber)
			     ( ? sub ? objectClass=*))`},
	}
	for _, c := range cases {
		q := query.MustParse(c.q)
		res := planner.Optimize(q, planner.Info{StrictForest: strict})

		var plainOut, optOut *plist.List
		ioPlain := env.MeasureIO(func() error {
			var e error
			plainOut, e = env.Eng.Eval(q)
			return e
		})
		ioOpt := env.MeasureIO(func() error {
			var e error
			optOut, e = env.Eng.Eval(res.Query)
			return e
		})
		pk, err := plist.Drain(plainOut)
		if err != nil {
			panic(err)
		}
		ok, err := plist.Drain(optOut)
		if err != nil {
			panic(err)
		}
		if len(pk) != len(ok) {
			panic(fmt.Sprintf("A4 %s: rewrite changed answers (%d vs %d)", c.rule, len(pk), len(ok)))
		}
		for i := range pk {
			if pk[i].Key != ok[i].Key {
				panic("A4: rewrite changed an entry")
			}
		}
		freeLists(plainOut, optOut)
		t.AddRow(c.rule, ioPlain, ioOpt, float64(ioPlain)/float64(maxI64(ioOpt, 1)))
	}
	t.Notes = append(t.Notes, "answers verified identical for every rewrite")
	return t
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
