package bench

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

// The experiment suite is itself load-bearing (EXPERIMENTS.md is built
// from it), so the claims each table encodes are asserted here at small
// scale.

var tinyPreset = Preset{
	Linear:   []int{400, 1600},
	Super:    []int{400, 1600},
	Cross:    []int{150, 600},
	AcSizes:  []int{400, 1600},
	Dist:     []int{8},
	IndexN:   150,
	AppScale: 30,
	StackN:   120,
	CacheN:   800,
	CacheOps: 300,
}

func tableByID(t *testing.T, id string) *Table {
	t.Helper()
	for _, s := range Specs {
		if s.ID == id {
			return s.Run(tinyPreset)
		}
	}
	t.Fatalf("no spec %s", id)
	return nil
}

// firstFloatAfter extracts the first float literal following marker in
// s, e.g. the fitted slope out of a table note.
func firstFloatAfter(s, marker string) (float64, bool) {
	i := strings.Index(s, marker)
	if i < 0 {
		return 0, false
	}
	rest := s[i+len(marker):]
	start := strings.IndexAny(rest, "-0123456789")
	if start < 0 {
		return 0, false
	}
	end := start
	for end < len(rest) && strings.ContainsRune("-.0123456789", rune(rest[end])) {
		end++
	}
	v, err := strconv.ParseFloat(rest[start:end], 64)
	return v, err == nil
}

func noteSlope(t *testing.T, tab *Table) float64 {
	t.Helper()
	for _, n := range tab.Notes {
		if v, ok := firstFloatAfter(n, "slope"); ok {
			return v
		}
	}
	t.Fatalf("%s: no slope note in %v", tab.ID, tab.Notes)
	return 0
}

func TestLinearExperimentsStayLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E6"} {
		tab := tableByID(t, id)
		s := noteSlope(t, tab)
		if s < 0.7 || s > 1.45 {
			t.Errorf("%s: slope %.2f outside linear band", id, s)
		}
	}
}

func TestE7SubQuadratic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	tab := tableByID(t, "E7")
	s := noteSlope(t, tab)
	if s > 1.6 {
		t.Errorf("E7 slope %.2f looks quadratic", s)
	}
}

func TestE10NaiveIsQuadratic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	tab := tableByID(t, "E10")
	note := strings.Join(tab.Notes, " ")
	naive, ok1 := firstFloatAfter(note, "naive ")
	stack, ok2 := firstFloatAfter(note, "stack ")
	if !ok1 || !ok2 {
		t.Fatalf("notes: %v", tab.Notes)
	}
	if naive < 1.6 {
		t.Errorf("naive slope %.2f not quadratic-ish", naive)
	}
	if stack > 1.35 {
		t.Errorf("stack slope %.2f not linear-ish", stack)
	}
	if naive-stack < 0.5 {
		t.Errorf("separation too small: naive %.2f vs stack %.2f", naive, stack)
	}
}

func TestE17NestingLowerBound(t *testing.T) {
	// E17Operators panics if any nesting count deviates from d-1; running
	// it IS the assertion.
	tab := E17Operators([]int{3, 5, 7})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if !strings.HasPrefix(row[2], "c^") {
			t.Errorf("row %v lacks the working nesting", row)
		}
	}
}

func TestE11AllSeparationsVerified(t *testing.T) {
	tab := E11Hierarchy()
	for _, row := range tab.Rows {
		if row[len(row)-1] != "ok" {
			t.Errorf("separation %s: %s", row[0], row[len(row)-1])
		}
	}
	if len(tab.Rows) != 4 {
		t.Errorf("expected 4 separations, got %d", len(tab.Rows))
	}
}

func TestE14AnswersEqual(t *testing.T) {
	if testing.Short() {
		t.Skip("spins TCP servers")
	}
	tab := tableByID(t, "E14")
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("distributed answers diverged: %v", row)
		}
	}
}

// TestE18CacheCutsIO asserts the cache claim on page I/O, which is
// deterministic (latency ratios are reported but not asserted — CI
// timers are too noisy). With 400 Zipf draws over a 32-query pool, the
// cached run pays I/O only for first encounters, so the plain run must
// cost at least 5x more.
func TestE18CacheCutsIO(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	tab := tableByID(t, "E18")
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	var pio, cio float64
	if _, err := fmt.Sscanf(tab.Rows[0][2], "%g", &pio); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(tab.Rows[1][2], "%g", &cio); err != nil {
		t.Fatal(err)
	}
	if pio == 0 {
		t.Fatal("plain run reported zero page I/O")
	}
	if pio < 5*math.Max(cio, 1) {
		t.Errorf("cache saved too little I/O: plain %v vs cached %v", pio, cio)
	}
	var hitRate float64
	if _, err := fmt.Sscanf(tab.Rows[1][4], "%g", &hitRate); err != nil {
		t.Fatal(err)
	}
	if hitRate < 0.7 {
		t.Errorf("Zipf hit rate %.2f below expectation", hitRate)
	}
}

func TestSlopeFit(t *testing.T) {
	// Exact powers recover their exponents.
	xs := []float64{100, 200, 400, 800}
	lin := make([]float64, len(xs))
	quad := make([]float64, len(xs))
	for i, x := range xs {
		lin[i] = 3 * x
		quad[i] = 0.5 * x * x
	}
	if s := Slope(xs, lin); s < 0.99 || s > 1.01 {
		t.Errorf("linear slope = %f", s)
	}
	if s := Slope(xs, quad); s < 1.99 || s > 2.01 {
		t.Errorf("quadratic slope = %f", s)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Header: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== X: t", "a", "bb", "1", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

// TestE20ConcurrentIdentical asserts the §10 determinism claim at small
// scale: every quiescent reader count hashes identically to the serial
// run (divergence panics inside the experiment), the background-update
// rows complete without error, and the updater actually swapped
// generations under the readers.
func TestE20ConcurrentIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	// Run below even the tiny preset: the wide-query stream costs tens
	// of milliseconds per evaluation, and eight rows multiply it.
	tab := E20ConcurrentSearch(300, 48)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	hash := ""
	swapped := false
	for _, row := range tab.Rows {
		mode, h := row[1], row[7]
		swaps, _ := strconv.ParseInt(row[6], 10, 64)
		if mode == "off" {
			if hash == "" {
				hash = h
			} else if h != hash {
				t.Errorf("quiescent hash diverged: %s vs %s", h, hash)
			}
		} else if swaps > 0 {
			swapped = true
		}
	}
	if hash == "" {
		t.Error("no quiescent rows found")
	}
	if !swapped {
		t.Error("background updater never swapped a generation")
	}
}
