package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/store"
	"repro/internal/workload"
)

// E24DeltaCheckpoint measures the incremental-checkpoint path end to
// end: a one-entry write applied through the copy-on-write fast path
// (UpdateEntries) against the same write applied by full rebuild, and
// the bytes a checkpoint of that write costs as a page delta against
// the previous generation versus as a full image. Reported per
// directory size: both update latencies, the dirty page count out of
// the device total, and both checkpoint sizes with the shrink factor.
//
// The experiment is self-checking twice over: the shrink factor must
// reach 10× (the point of the feature), and the delta chain is
// recovered from disk after each run and its answers compared with the
// live directory's — a delta that shrinks by dropping state fails the
// bench rather than flattering it.
func E24DeltaCheckpoint(sizes []int) *Table {
	t := &Table{
		ID:     "E24",
		Title:  "Incremental checkpoints: one-entry write, page delta vs full image",
		Claim:  "entry-level writes dirty O(log N) pages; their checkpoints shrink >=10x",
		Header: []string{"entries", "update fast (µs)", "update rebuild (µs)", "dirty/total pages", "full ckpt (B)", "delta ckpt (B)", "shrink"},
	}
	for _, n := range sizes {
		in := workload.GenTOPS(workload.TOPSConfig{Subscribers: n, Seed: 13})
		dir, err := core.Open(in, core.Options{DeltaCheckpoints: true})
		if err != nil {
			panic(err)
		}
		tmp, err := os.MkdirTemp("", "bench-e24")
		if err != nil {
			panic(err)
		}
		fs, err := pager.DirFS(tmp)
		if err != nil {
			panic(err)
		}
		ds, err := durable.Open(fs, durable.Options{})
		if err != nil {
			panic(err)
		}

		if _, err := dir.Checkpoint(ds); err != nil {
			panic(err)
		}
		fullBytes := segSize(fs, 1)

		e, err := model.NewEntryFromDN(in.Schema(),
			model.MustParseDN("uid=delta-probe, ou=userProfiles, dc=research, dc=att, dc=com"))
		if err != nil {
			panic(err)
		}
		e.AddClass("inetOrgPerson")
		e.Add("surName", model.String("delta-probe"))
		start := time.Now()
		if err := dir.UpdateEntries(store.EntryOp{Add: e.Clone()}); err != nil {
			panic(err)
		}
		fastLat := time.Since(start)
		dirty, total := dir.Disk().DirtyCount(), dir.Disk().NumPages()

		if _, err := dir.Checkpoint(ds); err != nil {
			panic(err)
		}
		deltaBytes := segSize(fs, 2)
		shrink := float64(fullBytes) / float64(deltaBytes)
		if shrink < 10 {
			panic(fmt.Sprintf("bench: E24 delta shrink %.1fx < 10x at n=%d (full %d B, delta %d B)",
				shrink, n, fullBytes, deltaBytes))
		}

		// Recover the full-image + delta chain from disk and require the
		// same answers as the live directory.
		back, info, err := core.Recover(ds, core.Options{DeltaCheckpoints: true})
		if err != nil {
			panic(err)
		}
		if info.Gen != 2 || info.Skipped != 0 {
			panic(fmt.Sprintf("bench: E24 recovery landed at %+v, want gen 2", info))
		}
		for _, q := range []string{
			"(dc=com ? sub ? surName=delta-probe)",
			"(dc=com ? sub ? objectClass=TOPSSubscriber)",
		} {
			live, err := dir.Search(q)
			if err != nil {
				panic(err)
			}
			rec, err := back.Search(q)
			if err != nil {
				panic(err)
			}
			checkSameAnswer("E24 "+q, rec.DNs(), live.DNs())
		}

		// The same one-entry write through the rebuild path, for the
		// latency column (a fresh uid so the add is valid).
		e2, err := model.NewEntryFromDN(in.Schema(),
			model.MustParseDN("uid=rebuild-probe, ou=userProfiles, dc=research, dc=att, dc=com"))
		if err != nil {
			panic(err)
		}
		e2.AddClass("inetOrgPerson")
		e2.Add("surName", model.String("rebuild-probe"))
		start = time.Now()
		if err := dir.Update(func(in *model.Instance) error { return in.Add(e2) }); err != nil {
			panic(err)
		}
		rebuildLat := time.Since(start)

		t.AddRow(n, fastLat.Microseconds(), rebuildLat.Microseconds(),
			fmt.Sprintf("%d/%d", dirty, total), fullBytes, deltaBytes,
			fmt.Sprintf("%.0fx", shrink))
		os.RemoveAll(tmp)
	}
	t.Notes = append(t.Notes,
		"fast path: UpdateEntries forks the page device copy-on-write and rewrites the B-tree root-to-leaf paths the entry touches",
		"delta checkpoint carries only the dirtied pages against the previous retained generation (core snapshot delta format, DESIGN.md §15)",
		"self-check: shrink >= 10x enforced, and the full+delta chain is recovered from disk with answers compared to the live directory")
	return t
}

// segSize stats one committed generation's segment file.
func segSize(fs pager.FileSystem, gen int64) int64 {
	sz, err := fs.Size(fmt.Sprintf("seg-%016d.seg", gen))
	if err != nil {
		panic(fmt.Sprintf("bench: E24 segment for gen %d: %v", gen, err))
	}
	return sz
}
