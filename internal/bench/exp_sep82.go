package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

// E17Operators demonstrates the negative directions of Theorem 8.2 the
// only way they can be demonstrated on finite data: as query-size lower
// bounds over an instance family. On a chain of depth d, the single L1
// operator d(escendants) answers uniformly, while simulating it with
// the children operator requires exactly d-1 nested c's — so no fixed
// L0 + {c, p} query text works for every depth (Theorem 8.2(b); the
// a/d-from-c/p direction, 8.2(a), is symmetric with p-nests). The
// positive direction, 8.2(d), is verified in engine.TestTheorem82d and
// measured in E12.
func E17Operators(depths []int) *Table {
	t := &Table{
		ID:     "E17",
		Title:  "Operator separations as query-size lower bounds (Theorem 8.2)",
		Claim:  "simulating a/d with c/p needs depth-many operators; a/d need one",
		Header: []string{"chain depth d", "|d-query|", "c-nesting that works", "shallower nestings", "deeper nestings"},
	}
	for _, d := range depths {
		in := chain(d)
		dir, err := core.Open(in, core.Options{})
		if err != nil {
			panic(err)
		}
		rootSel := "( ? sub ? n=c0)"
		leafSel := fmt.Sprintf("( ? sub ? n=c%d)", d-1)

		// The L1 way: one operator, any depth.
		dAnswer := mustDNs(dir, fmt.Sprintf("(d %s %s)", rootSel, leafSel))
		if len(dAnswer) != 1 {
			panic(fmt.Sprintf("E17: d-query wrong on depth %d", d))
		}

		// The c-simulation: (c root (c ALL (c ALL ... leaf))) with k
		// total c operators reaches exactly the k-th ancestor.
		works := -1
		var shallower, deeper []string
		for k := 1; k <= d+1; k++ {
			ans := mustDNs(dir, cNest(rootSel, leafSel, k))
			switch {
			case len(ans) == 1 && k != d-1:
				panic(fmt.Sprintf("E17: c^%d unexpectedly answers on depth %d", k, d))
			case len(ans) == 1:
				works = k
			case k < d-1:
				shallower = append(shallower, fmt.Sprintf("c^%d=∅", k))
			default:
				deeper = append(deeper, fmt.Sprintf("c^%d=∅", k))
			}
		}
		if works != d-1 {
			panic(fmt.Sprintf("E17: depth %d needed c^%d", d, works))
		}
		t.AddRow(d, 1, fmt.Sprintf("c^%d", works),
			strings.Join(shallower, " "), strings.Join(deeper, " "))
	}
	t.Notes = append(t.Notes,
		"a fixed query has a fixed operator count, so no single L0+{c,p} text matches every row — the uniform separation of Theorem 8.2(b)")
	return t
}

// cNest builds (c root (c ALL (c ALL ... leaf))) with k c-operators.
func cNest(rootSel, leafSel string, k int) string {
	const all = "( ? sub ? objectClass=*)"
	q := leafSel
	for i := 0; i < k-1; i++ {
		q = fmt.Sprintf("(c %s %s)", all, q)
	}
	return fmt.Sprintf("(c %s %s)", rootSel, q)
}

// chain builds the depth-d path instance.
func chain(d int) *model.Instance {
	in := model.NewInstance(workload.ForestSchema())
	dn := model.DN{}
	for i := 0; i < d; i++ {
		dn = dn.Child(model.RDN{{Attr: "n", Value: fmt.Sprintf("c%d", i)}})
		e, err := model.NewEntryFromDN(in.Schema(), dn)
		if err != nil {
			panic(err)
		}
		e.AddClass("node")
		in.MustAdd(e)
	}
	return in
}

func mustDNs(dir *core.Directory, q string) []string {
	res, err := dir.Search(q)
	if err != nil {
		panic(err)
	}
	return res.DNs()
}
