package bench

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/plist"
	"repro/internal/query"
	"repro/internal/workload"
)

// E22 measures vector search under namespace scoping (DESIGN.md §12):
// because the flat vector index stores postings in reverse-DN key
// order, a subtree-scoped knn reads only the posting pages overlapping
// the scope's contiguous key range. The strawman it beats is the way a
// directory would bolt on a scope-oblivious vector store: search a
// global index for an oversampled top-k', then post-filter to the
// scope. The strawman reads the whole posting list regardless of scope
// and still misses scoped neighbors whenever the oversample is too
// small for an off-cluster query; the scoped search is exact by
// construction (recall@k = 1.0, enforced against the brute-force
// oracle).

const (
	e22Dim        = 8
	e22K          = 10
	e22Oversample = 4 // post-filter fetches oversample*k global winners
)

// e22Base is one scoped-search shape: a base DN and its entry count.
type e22Base struct {
	dn    model.DN
	count int
}

// e22Bases picks the most populous top-level subtree and the most
// populous depth-2 subtree inside it — a moderately and a highly
// selective scope.
func e22Bases(in *model.Instance) []e22Base {
	top := map[string]int{}
	second := map[string]int{}
	for _, e := range in.Entries() {
		dn := e.DN()
		top[dn[len(dn)-1].String()]++
		if len(dn) >= 2 {
			second[dn[len(dn)-2].String()+", "+dn[len(dn)-1].String()]++
		}
	}
	pick := func(m map[string]int) e22Base {
		var bestK string
		for k, n := range m {
			if n > m[bestK] {
				bestK = k
			}
		}
		return e22Base{dn: model.MustParseDN(bestK), count: m[bestK]}
	}
	t := pick(top)
	// Restrict the depth-2 pick to the chosen top-level subtree, so the
	// two rows nest.
	nested := map[string]int{}
	for k, n := range second {
		dn := model.MustParseDN(k)
		if t.dn.IsAncestorOf(dn) {
			nested[k] = n
		}
	}
	if len(nested) == 0 {
		return []e22Base{t}
	}
	return []e22Base{t, pick(nested)}
}

// e22Recall computes recall@k: the fraction of the exact scoped top-k
// present in got.
func e22Recall(exact []string, got map[string]bool) float64 {
	if len(exact) == 0 {
		return 1
	}
	hit := 0
	for _, k := range exact {
		if got[k] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// E22VectorScope runs the scoped-vs-postfiltered comparison over
// clustered-embedding forests of the given sizes.
func E22VectorScope(sizes []int) *Table {
	t := &Table{
		ID:     "E22",
		Title:  "scoped knn: subtree-filtered vector search vs post-filtering a global index",
		Claim:  "DESIGN.md §12: key-ordered postings make scoped knn read only the scope's pages, with exact answers",
		Header: []string{"n", "scope", "scope n", "query", "path", "scoped pages", "global pages", "ratio", "recall scoped", "recall postfilter"},
	}
	for _, n := range sizes {
		in := workload.RandomForest(workload.ForestConfig{N: n, Seed: 11, VecDim: e22Dim})
		env := openEnv(in, 2048)
		st := env.Eng.Store()
		ix := st.VectorIndex("emb")
		if ix == nil {
			panic("bench: E22 store has no vector index")
		}
		for _, b := range e22Bases(in) {
			baseKey := b.dn.Key()
			hi := model.SubtreeHigh(baseKey)
			// In-scope query: an embedding drawn from inside the scope,
			// the realistic "find similar entries near here" workload.
			// Off-cluster query: the origin, far from the scope's
			// centroid — the case where the post-filter strawman's global
			// winners all come from other subtrees.
			var inScope []float32
			in.Range(baseKey, hi, func(e *model.Entry) bool {
				if v, ok := e.First("emb"); ok {
					inScope = v.Vec()
					return false
				}
				return true
			})
			if inScope == nil {
				continue
			}
			for _, qc := range []struct {
				label string
				vec   []float32
			}{{"in-scope", inScope}, {"off-cluster", make([]float32, e22Dim)}} {
				qvec := qc.vec

				// Exact scoped answer (brute-force oracle) for recall.
				qtext := fmt.Sprintf("(%s ? sub ? knn(emb,%s,%d))", b.dn, model.FormatVector(qvec), e22K)
				q := query.MustParse(qtext).(*query.Atomic)
				oracleList, err := st.EvalScan(q)
				if err != nil {
					panic(err)
				}
				oracleRecs, err := plist.Drain(oracleList)
				if err != nil {
					panic(err)
				}
				exact := make([]string, len(oracleRecs))
				for i, r := range oracleRecs {
					exact[i] = r.Key
				}

				// Scoped search: fence-guided posting scan of [base, hi).
				var scopedMeter pager.Meter
				scoped, err := ix.Search(baseKey, hi, nil, qvec, e22K, &scopedMeter)
				if err != nil {
					panic(err)
				}
				scopedGot := map[string]bool{}
				for _, nb := range scoped {
					scopedGot[nb.Key] = true
				}
				scopedRecall := e22Recall(exact, scopedGot)
				if scopedRecall != 1 {
					panic(fmt.Sprintf("bench: E22 scoped knn recall %.2f != 1.0 at n=%d scope=%s", scopedRecall, n, b.dn))
				}

				// Post-filter strawman: global top-(oversample*k), filtered
				// to the scope afterwards.
				var globalMeter pager.Meter
				global, err := ix.Search("", "", nil, qvec, e22Oversample*e22K, &globalMeter)
				if err != nil {
					panic(err)
				}
				postGot := map[string]bool{}
				kept := 0
				for _, nb := range global {
					if nb.Key >= baseKey && (hi == "" || nb.Key < hi) && kept < e22K {
						postGot[nb.Key] = true
						kept++
					}
				}

				sp := scopedMeter.Stats().Reads
				gp := globalMeter.Stats().Reads
				ratio := "-"
				if sp > 0 {
					ratio = fmt.Sprintf("%.1fx", float64(gp)/float64(sp))
				}
				t.AddRow(n, fmt.Sprintf("depth %d", b.dn.Depth()), b.count, qc.label,
					st.ExplainAtomic(q).Path, sp, gp, ratio,
					fmt.Sprintf("%.2f", scopedRecall),
					fmt.Sprintf("%.2f", e22Recall(exact, postGot)))
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("k=%d, dim=%d, clustered per-subtree embeddings (seed 11); in-scope = query sampled inside the scope, off-cluster = origin query far from the scope's centroid", e22K, e22Dim),
		fmt.Sprintf("postfilter = global top-%d then scope filter: reads every posting page and still drops scoped neighbors when the cluster is off-query", e22Oversample*e22K),
		"scoped recall is asserted equal to 1.0 against the brute-force oracle (the run panics otherwise)",
	)
	return t
}
