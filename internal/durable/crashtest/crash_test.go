// Package crashtest is the end-to-end kill -9 harness for the durable
// persistence stack: a child dirserve process is fed a live write
// stream and killed at random points (some runs with storage fault
// injection underneath), then restarted. After every crash the
// recovered directory must sit at a generation no older than the last
// durably acknowledged write, and must answer L0–L3 queries
// byte-identically to a locally reconstructed directory at that
// generation. The data directory must also carry no *.tmp residue
// after boot.
//
// Iterations default to a quick smoke count; `make crash` raises them
// via DIRKIT_CRASH_ITERS for the full soak.
package crashtest

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"math/rand"

	"repro/internal/core"
	"repro/internal/dirserver"
	"repro/internal/ldif"
	"repro/internal/model"
	"repro/internal/workload"
)

var binPath string

func TestMain(m *testing.M) {
	tmp, err := os.MkdirTemp("", "crashtest")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(tmp, "dirserve")
	build := exec.Command("go", "build", "-o", binPath, "./cmd/dirserve")
	build.Dir = "../../.."
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building dirserve: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(tmp)
	os.Exit(code)
}

func iterations(t *testing.T) int {
	if s := os.Getenv("DIRKIT_CRASH_ITERS"); s != "" {
		var n int
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 1 {
			t.Fatalf("bad DIRKIT_CRASH_ITERS %q", s)
		}
		return n
	}
	if testing.Short() {
		return 3
	}
	return 6
}

// child is one dirserve process under test.
type child struct {
	cmd  *exec.Cmd
	addr string
	gen  int64 // generation it booted at (recovered, or 1 when seeded)
	skip int   // corrupt generations it rolled past during recovery
	out  strings.Builder
	done chan struct{}
}

// startChild boots dirserve on the shared data directory and waits for
// its listen line. faultProb > 0 wraps the child's durable store in the
// deterministic storage fault injector; delta switches the child to
// incremental page-delta checkpoints. Children restart on the same
// data directory with the flag alternating, so recovery is routinely
// asked to replay a mixed full-image/delta segment history.
func startChild(dataDir string, faultProb float64, seed int64, delta bool) (*child, error) {
	args := []string{
		"-gen", "paper", "-data", dataDir, "-mutable",
		"-checkpoint-every", "0", "-addr", "127.0.0.1:0",
		"-grace", "300ms",
	}
	if delta {
		args = append(args, "-delta-checkpoints")
	}
	if faultProb > 0 {
		args = append(args, "-fault-prob", fmt.Sprint(faultProb), "-fault-seed", fmt.Sprint(seed))
	}
	c := &child{cmd: exec.Command(binPath, args...), done: make(chan struct{})}
	stdout, err := c.cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	c.cmd.Stderr = &c.out
	if err := c.cmd.Start(); err != nil {
		return nil, err
	}
	c.gen = 1
	// Buffered so the scanner goroutine never drops the startup lines
	// while this loop is between receives; the non-blocking send is only
	// an overflow guard for chatty long-lived children.
	lines := make(chan string, 256)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			c.out.WriteString(sc.Text() + "\n")
			select {
			case lines <- sc.Text():
			default:
			}
		}
		close(c.done)
	}()
	deadline := time.After(20 * time.Second)
	for {
		select {
		case ln := <-lines:
			if strings.Contains(ln, "recovered generation") {
				fmt.Sscanf(ln, "dirserve: recovered generation %d", &c.gen)
				if i := strings.Index(ln, "(skipped "); i >= 0 {
					fmt.Sscanf(ln[i:], "(skipped %d corrupt)", &c.skip)
				}
			}
			if i := strings.Index(ln, " entries on "); i >= 0 {
				c.addr = strings.TrimSpace(ln[i+len(" entries on "):])
				return c, nil
			}
		case <-c.done:
			_ = c.cmd.Wait()
			return nil, fmt.Errorf("child exited before listening:\n%s", c.out.String())
		case <-deadline:
			c.kill()
			return nil, fmt.Errorf("child never listened:\n%s", c.out.String())
		}
	}
}

func (c *child) kill() {
	_ = c.cmd.Process.Kill()
	_ = c.cmd.Wait()
	<-c.done
}

// sigterm asks for a graceful shutdown and waits for the process to
// finish its drain + final checkpoint.
func (c *child) sigterm() error {
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	werr := c.cmd.Wait()
	<-c.done
	return werr
}

// entryLDIF is the deterministic write stream: the add that produces
// generation k inserts exactly this entry, so the state at generation g
// is the paper instance plus entries 2..g.
func entryLDIF(k int64) string {
	return fmt.Sprintf("dn: uid=crash-%06d, ou=userProfiles, dc=research, dc=att, dc=com\nobjectClass: inetOrgPerson\nuid: crash-%06d\n", k, k)
}

// expectedDirectory reconstructs, locally and from scratch, the exact
// directory a correct server must serve at generation gen.
func expectedDirectory(t *testing.T, gen int64) *core.Directory {
	t.Helper()
	in := workload.PaperInstance()
	for k := int64(2); k <= gen; k++ {
		e, err := ldif.UnmarshalEntry(in.Schema(), entryLDIF(k))
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// compareQueries runs the L0–L3 probe set against the child and against
// the locally reconstructed directory, demanding byte-identical LDIF.
var probeQueries = []string{
	"(dc=com ? sub ? objectClass=*)",                                    // whole tree
	"(ou=userProfiles, dc=research, dc=att, dc=com ? sub ? uid=crash*)", // the write stream
	"(dc=com ? sub ? surName=jagadish)",                                 // point lookup
	"(dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)",               // subtree filter
	"(g (dc=com ? sub ? dc=*) count($$) > 0)",                           // grouped L3
}

func compareQueries(t *testing.T, cl *dirserver.Client, addr string, want *core.Directory, gen int64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for _, q := range probeQueries {
		got, ggen, err := cl.CallWithGen(ctx, addr, "query", q)
		if err != nil {
			t.Fatalf("gen %d: %q: %v", gen, q, err)
		}
		if ggen != gen {
			t.Fatalf("%q answered at gen %d, recovered gen %d", q, ggen, gen)
		}
		res, err := want.Search(q)
		if err != nil {
			t.Fatalf("local %q: %v", q, err)
		}
		if g, w := marshalAll(got), marshalAll(res.Entries); g != w {
			t.Fatalf("gen %d: %q diverged after recovery:\n got: %s\nwant: %s", gen, q, g, w)
		}
	}
}

func marshalAll(entries []*model.Entry) string {
	var b strings.Builder
	for _, e := range entries {
		b.WriteString(ldif.MarshalEntry(e))
		b.WriteString("\n")
	}
	return b.String()
}

func assertNoTempFiles(t *testing.T, dataDir string) {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dataDir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) > 0 {
		t.Fatalf("orphaned temp files after boot: %v", m)
	}
}

// TestKillNineRecoversAckedState is the headline crash loop: stream
// writes, kill -9 mid-stream (alternate iterations also inject torn
// writes and fsync failures underneath, and alternate between
// full-image and incremental delta checkpoints), restart, and require
// the recovered server to be at least as new as the last acknowledged
// write and byte-identical to the reference reconstruction.
func TestKillNineRecoversAckedState(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	schema := workload.PaperInstance().Schema()
	cl := dirserver.NewClient(schema, dirserver.ClientConfig{})
	defer cl.Close()
	rng := rand.New(rand.NewSource(7))

	c, err := startChild(dataDir, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.kill)

	iters := iterations(t)
	for iter := 0; iter < iters; iter++ {
		var acked atomic.Int64
		acked.Store(c.gen) // the boot generation is durable by construction
		stop := make(chan struct{})
		writerDone := make(chan struct{})
		go func() {
			defer close(writerDone)
			ctx := context.Background()
			for k := c.gen + 1; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				_, gen, err := cl.CallWithGen(ctx, c.addr, "add", entryLDIF(k))
				if err != nil {
					return // killed mid-write, or an injected fault refused the ack
				}
				if gen != k {
					t.Errorf("add %d acked at gen %d", k, gen)
					return
				}
				acked.Store(k)
			}
		}()

		time.Sleep(time.Duration(20+rng.Intn(120)) * time.Millisecond)
		c.kill()
		close(stop)
		<-writerDone
		if t.Failed() {
			t.FailNow()
		}
		lastAcked := acked.Load()

		// Cycle the restart through the four checkpointing regimes:
		// full images, page deltas, deltas over injected faults, full
		// images over injected faults.
		faultProb := 0.0
		if iter%4 >= 2 {
			faultProb = 0.03
		}
		delta := iter%4 == 1 || iter%4 == 2
		c, err = startChild(dataDir, faultProb, int64(iter), delta)
		if err != nil && faultProb > 0 {
			// An injected fault broke the boot path itself (e.g. fsync of
			// the orphan sweep); a clean restart must always work.
			c, err = startChild(dataDir, 0, 0, delta)
		}
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.kill)

		if c.gen < lastAcked {
			t.Fatalf("iteration %d: recovered gen %d < last acked %d\n%s", iter, c.gen, lastAcked, c.out.String())
		}
		assertNoTempFiles(t, dataDir)
		want := expectedDirectory(t, c.gen)
		compareQueries(t, cl, c.addr, want, c.gen)
		t.Logf("iteration %d: acked %d, recovered gen %d (skipped %d corrupt)", iter, lastAcked, c.gen, c.skip)
	}
}

// TestGracefulShutdownCheckpointsInFlightWrites covers the SIGTERM
// path: writes racing the signal either complete (checkpointed, acked)
// or are cleanly excluded; the drain's final checkpoint persists the
// surviving generation and leaves no temp files behind.
func TestGracefulShutdownCheckpointsInFlightWrites(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	schema := workload.PaperInstance().Schema()
	cl := dirserver.NewClient(schema, dirserver.ClientConfig{})
	defer cl.Close()

	// The writer runs against a delta-checkpointing server; the final
	// drain checkpoint and the later full-image restart must agree.
	c, err := startChild(dataDir, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	var acked atomic.Int64
	acked.Store(c.gen)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		ctx := context.Background()
		for k := c.gen + 1; ; k++ {
			_, gen, err := cl.CallWithGen(ctx, c.addr, "add", entryLDIF(k))
			if err != nil {
				return // the drain excluded this write
			}
			if gen == k {
				acked.Store(k)
			}
		}
	}()
	time.Sleep(80 * time.Millisecond)
	if err := c.sigterm(); err != nil {
		t.Fatalf("graceful shutdown: %v\n%s", err, c.out.String())
	}
	<-writerDone
	if !strings.Contains(c.out.String(), "checkpointed generation") {
		t.Fatalf("no final checkpoint in output:\n%s", c.out.String())
	}
	assertNoTempFiles(t, dataDir)

	back, err := startChild(dataDir, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(back.kill)
	if back.gen < acked.Load() {
		t.Fatalf("recovered gen %d < acked %d after graceful shutdown", back.gen, acked.Load())
	}
	compareQueries(t, cl, back.addr, expectedDirectory(t, back.gen), back.gen)
}
