package durable

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/pager"
)

func newStore(t *testing.T, opts Options) (*Store, pager.FileSystem) {
	t.Helper()
	fs, err := pager.DirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, fs
}

func commitString(t *testing.T, s *Store, gen int64, payload string) {
	t.Helper()
	err := s.Commit(gen, func(w io.Writer) error {
		_, err := io.WriteString(w, payload)
		return err
	})
	if err != nil {
		t.Fatalf("commit gen %d: %v", gen, err)
	}
}

func TestCommitRecoverRoundTrip(t *testing.T) {
	s, fs := newStore(t, Options{})
	commitString(t, s, 1, "generation one")
	commitString(t, s, 2, "generation two")

	gen, payload, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || string(payload) != "generation two" {
		t.Fatalf("recovered gen %d %q", gen, payload)
	}

	// A reopened store (fresh process) recovers the same state.
	back, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen, payload, err = back.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || string(payload) != "generation two" {
		t.Fatalf("reopened store recovered gen %d %q", gen, payload)
	}
	if got := back.Generations(); fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("generations %v", got)
	}
}

func TestRecoverEmptyStore(t *testing.T) {
	s, _ := newStore(t, Options{})
	if _, _, err := s.Recover(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty store Recover = %v, want ErrEmpty", err)
	}
}

func TestKeepPrunesOldGenerations(t *testing.T) {
	s, fs := newStore(t, Options{Keep: 2})
	for g := int64(1); g <= 5; g++ {
		commitString(t, s, g, fmt.Sprintf("gen %d", g))
	}
	if got := s.Generations(); fmt.Sprint(got) != "[4 5]" {
		t.Fatalf("generations %v, want [4 5]", got)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, n := range names {
		if strings.HasSuffix(n, segSuffix) {
			segs++
		}
	}
	if segs != 2 {
		t.Fatalf("%d segment files on disk (%v), want 2", segs, names)
	}
	if s.Stats().Pruned != 3 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

func TestRecommitGenerationReplaces(t *testing.T) {
	s, _ := newStore(t, Options{})
	commitString(t, s, 3, "first lineage")
	commitString(t, s, 3, "second lineage")
	gen, payload, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 || string(payload) != "second lineage" {
		t.Fatalf("recovered gen %d %q", gen, payload)
	}
	if got := s.Generations(); fmt.Sprint(got) != "[3]" {
		t.Fatalf("generations %v", got)
	}
}

func TestOpenRemovesOrphanedTempFiles(t *testing.T) {
	fs, err := pager.DirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commitString(t, s, 1, "committed")
	// Simulate a crash mid-commit: a temp file that never got renamed.
	f, err := fs.Create(segName(2) + tmpSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("torn half-written segment"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats().OrphansRemoved != 1 {
		t.Fatalf("stats: %+v", back.Stats())
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, tmpSuffix) {
			t.Fatalf("orphan %s survived Open", n)
		}
	}
	gen, _, err := back.Recover()
	if err != nil || gen != 1 {
		t.Fatalf("recover after orphan cleanup: gen %d, %v", gen, err)
	}
}

func TestOpenSurvivesMissingManifest(t *testing.T) {
	s, fs := newStore(t, Options{})
	commitString(t, s, 1, "gen one")
	commitString(t, s, 2, "gen two")
	if err := fs.Remove(manifestName); err != nil {
		t.Fatal(err)
	}
	back, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen, payload, err := back.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || string(payload) != "gen two" {
		t.Fatalf("scan fallback recovered gen %d %q", gen, payload)
	}
}

func TestLoadUnknownGeneration(t *testing.T) {
	s, _ := newStore(t, Options{})
	commitString(t, s, 1, "x")
	if _, err := s.Load(9); err == nil {
		t.Fatal("Load(9) succeeded on a store holding only gen 1")
	}
}

func TestCommitSerializeErrorLeavesStoreUntouched(t *testing.T) {
	s, _ := newStore(t, Options{})
	commitString(t, s, 1, "good")
	boom := errors.New("boom")
	err := s.Commit(2, func(w io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	gen, payload, err := s.Recover()
	if err != nil || gen != 1 || string(payload) != "good" {
		t.Fatalf("after failed serialize: gen %d %q %v", gen, payload, err)
	}
}
