package durable

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pager"
)

// FuzzOpenEnvelope feeds arbitrary bytes through the envelope codec:
// it must never panic, and anything it accepts must round-trip — the
// returned payload resealed under the returned generation reproduces
// input bytes exactly (the envelope is a bijection on intact files).
func FuzzOpenEnvelope(f *testing.F) {
	f.Add(sealEnvelope(segMagic, 1, []byte("a directory image")))
	f.Add(sealEnvelope(segMagic, 0, nil))
	f.Add([]byte("DRBLSEG1 but then garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		gen, payload, err := openEnvelope(segMagic, data)
		if err != nil {
			return
		}
		if !bytes.Equal(sealEnvelope(segMagic, gen, payload), data) {
			t.Fatalf("accepted envelope does not re-seal to itself")
		}
	})
}

// FuzzManifest drops arbitrary bytes in as MANIFEST (plus one intact
// segment) and runs the full Open → Recover path. It must never panic,
// and whatever Recover serves must be bytes that were actually
// committed — a mangled manifest may at worst make recovery fail (an
// envelope-valid manifest can lie about the segment's checksum), never
// redirect it to corrupt or foreign data.
func FuzzManifest(f *testing.F) {
	valid, _ := json.Marshal(manifestBody{Generations: []segEntry{{Gen: 1, File: segName(1), Size: 40}}})
	f.Add(sealEnvelope(manMagic, 1, valid))
	f.Add(valid)
	f.Add([]byte("{"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		root := t.TempDir()
		fs, err := pager.DirFS(root)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(fs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		commitString(t, s, 1, "the intact generation")
		if err := os.WriteFile(filepath.Join(root, manifestName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		back, err := Open(fs, Options{})
		if err != nil {
			t.Fatalf("Open with fuzzed manifest: %v", err)
		}
		gen, payload, err := back.Recover()
		if err != nil {
			return // refusing to serve beats serving wrong bytes
		}
		if gen == 1 && string(payload) != "the intact generation" {
			t.Fatalf("fuzzed manifest changed gen 1's answer: %q", payload)
		}
	})
}
