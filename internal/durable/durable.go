// Package durable is the crash-safe on-disk snapshot store beneath
// core.Directory: a flat directory of generation-numbered,
// CRC32C-checksummed segment files plus a manifest, committed with the
// classic write-temp → fsync → atomic-rename → fsync-dir protocol and
// read back through a recovery ladder that falls generation-by-
// generation to the newest intact image.
//
// The store never overwrites committed bytes in place: a commit builds
// the whole segment beside the live files and becomes visible in one
// rename, so a crash — or any injected storage fault
// (internal/faultfs) — at any instruction boundary leaves either the
// previous committed state or the new one, never a mix. The last Keep
// generations are retained for rollback; everything older is pruned
// after the manifest that stops referencing it is durably committed.
//
// DESIGN.md §11 walks through the commit protocol and the recovery
// ladder; internal/durable/crashtest kill -9s a live server through
// this package ≥30 times and asserts every restart serves the last
// durably acknowledged generation byte-identically.
package durable

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pager"
)

// Store-level errors.
var (
	// ErrEmpty is returned by Recover when the store holds no segment
	// at all — a fresh data directory, not a corrupt one.
	ErrEmpty = errors.New("durable: no generations in store")
	// ErrNoIntactGeneration is returned by Recover when segments exist
	// but every one failed verification — the ladder ran out of rungs.
	ErrNoIntactGeneration = errors.New("durable: no intact generation")
)

// Options configures a Store.
type Options struct {
	// Keep is how many newest generations to retain for rollback
	// (default 3, minimum 1). Older segments are pruned once a manifest
	// that no longer references them is durably committed.
	Keep int
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Commits        int64 // successful Commit calls
	CommitBytes    int64 // payload bytes across successful commits
	BytesFsynced   int64 // bytes written and fsynced (segments + manifests)
	CorruptSkips   int64 // corrupt segments skipped by verification
	Recoveries     int64 // Recover calls that landed on an intact generation
	OrphansRemoved int64 // leftover *.tmp files removed at Open
	Pruned         int64 // old generation segments pruned
}

// segEntry is one manifest row: where a generation lives and what its
// intact form looks like (size and payload checksum, letting the
// ladder cross-check a segment against what the committer recorded).
type segEntry struct {
	Gen  int64  `json:"gen"`
	File string `json:"file"`
	Size int64  `json:"size"` // whole file: header + payload
	CRC  uint32 `json:"crc"`  // CRC32C of the payload
	// Base is the generation this segment is a page delta against; 0
	// marks a self-contained full image. Pruning retains the transitive
	// base closure of every kept segment, so an acknowledged delta's
	// recovery chain can never be pruned out from under it.
	Base int64 `json:"base,omitempty"`
}

// manifestBody is the manifest payload: the retained generations,
// ascending.
type manifestBody struct {
	Generations []segEntry `json:"generations"`
}

// Store is a crash-safe snapshot store over one pager.FileSystem. All
// methods are safe for concurrent use; commits serialize internally.
type Store struct {
	fs   pager.FileSystem
	keep int

	mu      sync.Mutex // guards entries, manSeq, and the commit protocol
	entries []segEntry // current manifest view, ascending by generation
	manSeq  uint64     // manifest sequence number (bumps per manifest write)

	commits, commitBytes, bytesFsynced atomic.Int64
	corruptSkips, recoveries           atomic.Int64
	orphansRemoved, pruned             atomic.Int64
	latency                            *obs.Histogram // nil unless RegisterMetrics ran
}

const (
	manifestName = "MANIFEST"
	tmpSuffix    = ".tmp"
	segSuffix    = ".seg"
)

func segName(gen int64) string { return fmt.Sprintf("seg-%016d%s", gen, segSuffix) }

// Open attaches a Store to fs, removing orphaned *.tmp files a crashed
// commit left behind (they were never renamed, so they are by
// definition uncommitted) and loading the manifest. A missing or
// corrupt manifest is not fatal: the view is rebuilt by scanning the
// segment files themselves, so losing the manifest costs nothing but
// the cross-check.
func Open(fs pager.FileSystem, opts Options) (*Store, error) {
	if opts.Keep <= 0 {
		opts.Keep = 3
	}
	s := &Store{fs: fs, keep: opts.Keep}
	names, err := fs.List()
	if err != nil {
		return nil, fmt.Errorf("durable: list store: %w", err)
	}
	cleaned := false
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			if err := fs.Remove(name); err == nil {
				s.orphansRemoved.Add(1)
				cleaned = true
			}
		}
	}
	if cleaned {
		_ = fs.SyncRoot() // make the cleanup durable; best-effort
	}
	if err := s.loadManifest(names); err != nil {
		return nil, err
	}
	return s, nil
}

// loadManifest reads MANIFEST if intact, else rebuilds the view from
// the segment files present in names.
func (s *Store) loadManifest(names []string) error {
	if buf, err := s.readFile(manifestName); err == nil {
		if seq, payload, err := openEnvelope(manMagic, buf); err == nil {
			var body manifestBody
			if json.Unmarshal(payload, &body) == nil {
				s.manSeq = seq
				s.entries = body.Generations
				sort.Slice(s.entries, func(i, j int) bool { return s.entries[i].Gen < s.entries[j].Gen })
				return nil
			}
		}
		// An unreadable manifest is itself a corruption the ladder
		// absorbs: fall through to the scan.
		s.corruptSkips.Add(1)
	}
	s.entries = nil
	for _, name := range names {
		if !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var gen int64
		if _, err := fmt.Sscanf(name, "seg-%d.seg", &gen); err != nil {
			continue
		}
		size, err := s.fs.Size(name)
		if err != nil {
			continue
		}
		// CRC 0 means "no manifest cross-check": verification then
		// relies on the envelope alone.
		s.entries = append(s.entries, segEntry{Gen: gen, File: name, Size: size})
	}
	sort.Slice(s.entries, func(i, j int) bool { return s.entries[i].Gen < s.entries[j].Gen })
	return nil
}

// Commit durably stores one generation: write serializes the payload.
// The protocol is write-temp → fsync → atomic-rename → fsync-dir for
// the segment, then the same four steps for the manifest that
// references it; only after both renames are durable are generations
// older than Keep pruned. An error anywhere leaves the store exactly
// as the previous commit left it — the temp file (removed best-effort,
// and at the latest by the next Open) is the only possible residue.
//
// Committing a generation that already exists replaces it: after a
// rollback recovery, the write path re-commits the recovered lineage
// over the abandoned one.
func (s *Store) Commit(gen int64, write func(w io.Writer) error) error {
	return s.commitEntry(gen, 0, write)
}

// CommitDelta durably stores one generation as a page delta against an
// already-retained base generation, under the same protocol and
// acknowledgment rules as Commit. The manifest records the dependency,
// and pruning keeps the transitive base closure of every retained
// segment, so the chain needed to replay an acknowledged delta is
// itself always retained.
func (s *Store) CommitDelta(gen, base int64, write func(w io.Writer) error) error {
	if base <= 0 || base >= gen {
		return fmt.Errorf("durable: delta gen %d has invalid base %d", gen, base)
	}
	s.mu.Lock()
	found := false
	for _, e := range s.entries {
		if e.Gen == base {
			found = true
			break
		}
	}
	s.mu.Unlock()
	if !found {
		return fmt.Errorf("durable: delta gen %d: base %d not in store", gen, base)
	}
	return s.commitEntry(gen, base, write)
}

func (s *Store) commitEntry(gen, base int64, write func(w io.Writer) error) error {
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return fmt.Errorf("durable: serialize gen %d: %w", gen, err)
	}
	payload := buf.Bytes()
	sealed := sealEnvelope(segMagic, uint64(gen), payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	name := segName(gen)
	if err := s.writeFileAtomic(name, sealed); err != nil {
		return fmt.Errorf("durable: commit gen %d: %w", gen, err)
	}

	entry := segEntry{Gen: gen, File: name, Size: int64(len(sealed)), CRC: payloadCRC(sealed), Base: base}
	next := make([]segEntry, 0, len(s.entries)+1)
	for _, e := range s.entries {
		if e.Gen != gen {
			next = append(next, e)
		}
	}
	next = append(next, entry)
	sort.Slice(next, func(i, j int) bool { return next[i].Gen < next[j].Gen })
	drop, next := planPrune(next, s.keep)
	if err := s.writeManifest(next); err != nil {
		// The segment file exists but the manifest still describes the
		// previous state; the commit is not acknowledged. Recovery may
		// legitimately find the segment by scan — it is a complete,
		// checksummed image — but nothing depends on it.
		return fmt.Errorf("durable: commit gen %d manifest: %w", gen, err)
	}
	s.entries = next
	// Prune only after the manifest stopped referencing the old
	// generations — and only after reading the on-disk manifest back to
	// confirm it really is the one that dropped them. A crash (or a
	// lying rename) between manifest write and prune then leaves stray
	// files, never a manifest pointing at removed segments.
	if len(drop) > 0 && s.verifyManifestDropped(drop) {
		for _, e := range drop {
			if s.fs.Remove(e.File) == nil {
				s.pruned.Add(1)
			}
		}
		_ = s.fs.SyncRoot()
	}
	s.commits.Add(1)
	s.commitBytes.Add(int64(len(payload)))
	if s.latency != nil {
		s.latency.ObserveDuration(time.Since(start))
	}
	return nil
}

// planPrune splits a candidate manifest view into the entries to drop
// and the entries to retain: the newest keep generations plus,
// transitively, every base a retained delta depends on. A base pinned
// by a retained delta survives even when it falls outside the keep
// window — dropping it would leave the delta unreplayable, i.e. fewer
// than keep recoverable generations.
func planPrune(entries []segEntry, keep int) (drop, next []segEntry) {
	if len(entries) <= keep {
		return nil, entries
	}
	byGen := make(map[int64]segEntry, len(entries))
	for _, e := range entries {
		byGen[e.Gen] = e
	}
	retain := make(map[int64]bool, keep)
	for _, e := range entries[len(entries)-keep:] {
		retain[e.Gen] = true
		for b := e.Base; b != 0; {
			be, ok := byGen[b]
			if !ok || retain[b] {
				break
			}
			retain[b] = true
			b = be.Base
		}
	}
	for _, e := range entries {
		if retain[e.Gen] {
			next = append(next, e)
		} else {
			drop = append(drop, e)
		}
	}
	return drop, next
}

// verifyManifestDropped re-reads MANIFEST from disk and reports whether
// it verifies intact and references none of the given entries. Callers
// must not remove segment files unless this holds.
func (s *Store) verifyManifestDropped(drop []segEntry) bool {
	buf, err := s.readFile(manifestName)
	if err != nil {
		return false
	}
	_, payload, err := openEnvelope(manMagic, buf)
	if err != nil {
		return false
	}
	var body manifestBody
	if json.Unmarshal(payload, &body) != nil {
		return false
	}
	listed := make(map[int64]bool, len(body.Generations))
	for _, e := range body.Generations {
		listed[e.Gen] = true
	}
	for _, e := range drop {
		if listed[e.Gen] {
			return false
		}
	}
	return true
}

// payloadCRC reads the payload checksum back out of a sealed envelope.
func payloadCRC(sealed []byte) uint32 {
	return uint32(sealed[24]) | uint32(sealed[25])<<8 | uint32(sealed[26])<<16 | uint32(sealed[27])<<24
}

// writeManifest durably replaces MANIFEST with the given view. The
// sequence number is monotonic even across failures: a failed write may
// still have renamed the new manifest into place (only its directory
// fsync broke), so reusing the sequence for different content would be
// ambiguous on disk.
func (s *Store) writeManifest(entries []segEntry) error {
	payload, err := json.Marshal(manifestBody{Generations: entries})
	if err != nil {
		return err
	}
	s.manSeq++
	return s.writeFileAtomic(manifestName, sealEnvelope(manMagic, s.manSeq, payload))
}

// writeFileAtomic runs the four-step commit for one file: the sealed
// bytes land in name+".tmp", are fsynced, renamed over name, and the
// directory is fsynced so the rename survives a crash. Any failure
// removes the temp file (best-effort) and reports which step broke.
func (s *Store) writeFileAtomic(name string, sealed []byte) error {
	tmp := name + tmpSuffix
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("create %s: %w", tmp, err)
	}
	if _, err := f.WriteAt(sealed, 0); err != nil {
		_ = f.Close()
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("close %s: %w", tmp, err)
	}
	if err := s.fs.Rename(tmp, name); err != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("rename %s: %w", tmp, err)
	}
	if err := s.fs.SyncRoot(); err != nil {
		// The rename happened but its durability is unknown: the caller
		// must not acknowledge. A subsequent crash legally shows either
		// state; both are complete images, so recovery stays sound.
		return fmt.Errorf("fsync dir after %s: %w", name, err)
	}
	s.bytesFsynced.Add(int64(len(sealed)))
	return nil
}

// readFile slurps one file through the FileSystem.
func (s *Store) readFile(name string) ([]byte, error) {
	size, err := s.fs.Size(name)
	if err != nil {
		return nil, err
	}
	f, err := s.fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && !(err == io.EOF && size == 0) {
		return nil, err
	}
	return buf, nil
}

// Generations lists the retained generations, ascending.
func (s *Store) Generations() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.Gen
	}
	return out
}

// Keep reports the retention window: how many newest generations the
// store keeps for rollback.
func (s *Store) Keep() int { return s.keep }

// BaseOf returns the base generation the given segment is a delta
// against (0 for a full image) and whether the generation is retained.
func (s *Store) BaseOf(gen int64) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.Gen == gen {
			return e.Base, true
		}
	}
	return 0, false
}

// DeltaChainLen reports how many delta segments the newest generation's
// recovery chain replays before reaching a full image (0 when the
// newest generation is itself a full image, or the store is empty).
// Checkpoint policies bound this to cap recovery work and delta pileup.
func (s *Store) DeltaChainLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == 0 {
		return 0
	}
	byGen := make(map[int64]segEntry, len(s.entries))
	for _, e := range s.entries {
		byGen[e.Gen] = e
	}
	n := 0
	for e := s.entries[len(s.entries)-1]; e.Base != 0 && n < len(s.entries); {
		n++
		b, ok := byGen[e.Base]
		if !ok {
			break
		}
		e = b
	}
	return n
}

// Newest returns the highest retained generation, or false when the
// store is empty.
func (s *Store) Newest() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == 0 {
		return 0, false
	}
	return s.entries[len(s.entries)-1].Gen, true
}

// Load reads and fully verifies one generation's payload: envelope
// header checksum, magic, generation number, length, payload checksum,
// and — when the manifest recorded one — the manifest's size and CRC
// cross-check. Every verification failure wraps ErrCorrupt.
func (s *Store) Load(gen int64) ([]byte, error) {
	s.mu.Lock()
	var entry *segEntry
	for i := range s.entries {
		if s.entries[i].Gen == gen {
			entry = &s.entries[i]
			break
		}
	}
	if entry == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("durable: generation %d not in store", gen)
	}
	e := *entry
	s.mu.Unlock()
	return s.loadEntry(e)
}

func (s *Store) loadEntry(e segEntry) ([]byte, error) {
	buf, err := s.readFile(e.File)
	if err != nil {
		return nil, fmt.Errorf("%w: gen %d unreadable: %v", ErrCorrupt, e.Gen, err)
	}
	if e.Size != 0 && int64(len(buf)) != e.Size {
		return nil, fmt.Errorf("%w: gen %d is %d bytes, manifest recorded %d", ErrCorrupt, e.Gen, len(buf), e.Size)
	}
	hgen, payload, err := openEnvelope(segMagic, buf)
	if err != nil {
		return nil, fmt.Errorf("gen %d: %w", e.Gen, err)
	}
	if int64(hgen) != e.Gen {
		return nil, fmt.Errorf("%w: file %s claims generation %d, expected %d", ErrCorrupt, e.File, hgen, e.Gen)
	}
	if e.CRC != 0 && payloadCRC(buf) != e.CRC {
		return nil, fmt.Errorf("%w: gen %d checksum differs from manifest", ErrCorrupt, e.Gen)
	}
	return payload, nil
}

// Recover walks the ladder: generations newest-first, returning the
// payload of the first one that verifies intact and pruning every
// corrupt newer segment from the store (their files are removed and
// the manifest rewritten, so the write path resumes cleanly from the
// recovered lineage). ErrEmpty means a fresh store; a non-nil
// ErrNoIntactGeneration means data existed and all of it failed
// verification.
func (s *Store) Recover() (int64, []byte, error) {
	s.mu.Lock()
	candidates := make([]segEntry, len(s.entries))
	copy(candidates, s.entries)
	s.mu.Unlock()
	if len(candidates) == 0 {
		return 0, nil, ErrEmpty
	}
	var corrupt []segEntry
	for i := len(candidates) - 1; i >= 0; i-- {
		e := candidates[i]
		payload, err := s.loadEntry(e)
		if err != nil {
			s.corruptSkips.Add(1)
			corrupt = append(corrupt, e)
			continue
		}
		if len(corrupt) > 0 {
			s.dropSegments(corrupt)
		}
		s.recoveries.Add(1)
		return e.Gen, payload, nil
	}
	return 0, nil, fmt.Errorf("%w: all %d generations failed verification", ErrNoIntactGeneration, len(candidates))
}

// Rollback drops every generation newer than gen: their files are
// removed and the manifest rewritten, so subsequent commits continue
// the lineage at gen. Recovery layers that verify more than the
// checksums (core.Recover decodes the whole image) use it to discard
// rungs the store's own ladder would have accepted.
func (s *Store) Rollback(gen int64) error {
	s.mu.Lock()
	var drop []segEntry
	for _, e := range s.entries {
		if e.Gen > gen {
			drop = append(drop, e)
		}
	}
	s.mu.Unlock()
	if len(drop) == 0 {
		return nil
	}
	s.dropSegments(drop)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.Gen > gen {
			return fmt.Errorf("durable: rollback to gen %d incomplete (gen %d still listed)", gen, e.Gen)
		}
	}
	return nil
}

// dropSegments removes the given (corrupt) segments and rewrites the
// manifest without them. Best-effort: a failure leaves the corrupt
// entries listed, and the next Recover skips them again.
func (s *Store) dropSegments(drop []segEntry) {
	dead := make(map[int64]bool, len(drop))
	for _, e := range drop {
		dead[e.Gen] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	next := make([]segEntry, 0, len(s.entries))
	for _, e := range s.entries {
		if !dead[e.Gen] {
			next = append(next, e)
		}
	}
	if err := s.writeManifest(next); err != nil {
		return
	}
	s.entries = next
	if !s.verifyManifestDropped(drop) {
		return // stray files are safe; a manifest needing them is not
	}
	for _, e := range drop {
		if s.fs.Remove(e.File) == nil {
			s.pruned.Add(1)
		}
	}
	_ = s.fs.SyncRoot()
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Commits:        s.commits.Load(),
		CommitBytes:    s.commitBytes.Load(),
		BytesFsynced:   s.bytesFsynced.Load(),
		CorruptSkips:   s.corruptSkips.Load(),
		Recoveries:     s.recoveries.Load(),
		OrphansRemoved: s.orphansRemoved.Load(),
		Pruned:         s.pruned.Load(),
	}
}

// RegisterMetrics exposes the store's counters on reg under the given
// prefix (e.g. "dirkit_durable"): commit count and latency histogram,
// payload and fsynced byte totals, corrupt-segment skips, recoveries,
// orphan cleanups, pruned segments, and the retained generation count.
func (s *Store) RegisterMetrics(reg *obs.Registry, prefix string) {
	s.latency = reg.Histogram(prefix+"_commit_latency_us", "per-checkpoint commit wall time (microseconds)")
	reg.GaugeFunc(prefix+"_commits", "successful durable commits", s.commits.Load)
	reg.GaugeFunc(prefix+"_commit_bytes", "payload bytes durably committed", s.commitBytes.Load)
	reg.GaugeFunc(prefix+"_fsynced_bytes", "bytes written and fsynced (segments + manifests)", s.bytesFsynced.Load)
	reg.GaugeFunc(prefix+"_corrupt_skips", "corrupt segments skipped by verification", s.corruptSkips.Load)
	reg.GaugeFunc(prefix+"_recoveries", "recoveries that landed on an intact generation", s.recoveries.Load)
	reg.GaugeFunc(prefix+"_orphans_removed", "orphaned temp files removed at open", s.orphansRemoved.Load)
	reg.GaugeFunc(prefix+"_pruned", "generation segments pruned", s.pruned.Load)
	reg.GaugeFunc(prefix+"_generations", "generations currently retained", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.entries))
	})
}
