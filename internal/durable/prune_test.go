package durable

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/pager"
)

// hookFS wraps a FileSystem and lets a test fail SyncRoot calls
// deterministically, keyed by the most recent successful rename — the
// point in the commit protocol the fsync is making durable.
type hookFS struct {
	pager.FileSystem
	lastRenamed string
	syncRootErr func(lastRenamed string) error
}

func (h *hookFS) Rename(oldname, newname string) error {
	err := h.FileSystem.Rename(oldname, newname)
	if err == nil {
		h.lastRenamed = newname
	}
	return err
}

func (h *hookFS) SyncRoot() error {
	if h.syncRootErr != nil {
		if err := h.syncRootErr(h.lastRenamed); err != nil {
			return err
		}
	}
	return h.FileSystem.SyncRoot()
}

// TestManifestFsyncFailureBlocksPrune pins the prune ordering: segment
// files may only be removed after the manifest that stops referencing
// them is verifiably durable. The directory fsync following the
// manifest rename fails deterministically, so the commit must error
// WITHOUT acknowledging — and, critically, without removing any
// segment file, because a crash could still surface the old manifest
// that references the generation prune would have deleted.
func TestManifestFsyncFailureBlocksPrune(t *testing.T) {
	inner, err := pager.DirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs := &hookFS{FileSystem: inner}
	s, err := Open(fs, Options{Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	commitString(t, s, 1, "one")
	commitString(t, s, 2, "two")

	fs.syncRootErr = func(last string) error {
		if last == manifestName {
			return errors.New("injected: dir fsync after manifest rename")
		}
		return nil
	}
	err = s.Commit(3, func(w io.Writer) error {
		_, err := io.WriteString(w, "three")
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("commit 3 = %v, want injected fsync failure", err)
	}
	fs.syncRootErr = nil

	// Nothing was pruned: every previously acknowledged segment — and
	// the unacknowledged gen 3 image — is still on disk.
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for gen := int64(1); gen <= 3; gen++ {
		if !have[segName(gen)] {
			t.Fatalf("segment %d removed during failed commit; files: %v", gen, names)
		}
	}
	// The in-memory view still acknowledges only gens 1..2.
	if gens := s.Generations(); fmt.Sprint(gens) != "[1 2]" {
		t.Fatalf("generations after failed commit = %v, want [1 2]", gens)
	}

	// A store reopened from this state recovers: whichever manifest the
	// "crash" exposed, its referenced segments all exist.
	s2, err := Open(inner, Options{Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	gen, payload, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if gen < 2 {
		t.Fatalf("recovered gen %d, want at least the acknowledged gen 2", gen)
	}
	if got := string(payload); got != "two" && got != "three" {
		t.Fatalf("recovered payload %q", got)
	}
}

// TestSegmentFsyncFailureKeepsManifest: the earlier fsync (of the
// segment temp file) failing must leave the manifest — and thus every
// acknowledged generation — untouched.
func TestSegmentFsyncFailureKeepsManifest(t *testing.T) {
	inner, err := pager.DirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs := &hookFS{FileSystem: inner}
	s, err := Open(fs, Options{Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	commitString(t, s, 1, "one")
	commitString(t, s, 2, "two")

	// The segment's rename lands, but the fsync making it durable
	// fails: commit must not proceed to the manifest.
	fs.syncRootErr = func(last string) error {
		if strings.HasSuffix(last, segSuffix) {
			return errors.New("injected: dir fsync after segment rename")
		}
		return nil
	}
	err = s.Commit(3, func(w io.Writer) error {
		_, err := io.WriteString(w, "three")
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("commit 3 = %v, want injected fsync failure", err)
	}
	fs.syncRootErr = nil
	if gens := s.Generations(); fmt.Sprint(gens) != "[1 2]" {
		t.Fatalf("generations = %v, want [1 2]", gens)
	}
	s2, err := Open(inner, Options{Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The manifest still lists 1 and 2; both must load.
	for gen := int64(1); gen <= 2; gen++ {
		if _, err := s2.Load(gen); err != nil {
			t.Fatalf("load gen %d after failed commit: %v", gen, err)
		}
	}
}

func gensOf(entries []segEntry) string {
	ids := make([]int64, len(entries))
	for i, e := range entries {
		ids[i] = e.Gen
	}
	return fmt.Sprint(ids)
}

// TestPlanPruneRetainsDeltaBases: the retention window is the newest
// keep generations plus the transitive base closure of every retained
// delta — a base outside the window survives as long as a retained
// delta needs it to replay.
func TestPlanPruneRetainsDeltaBases(t *testing.T) {
	seg := func(gen, base int64) segEntry {
		return segEntry{Gen: gen, File: segName(gen), Base: base}
	}
	cases := []struct {
		name    string
		entries []segEntry
		keep    int
		drop    string
		next    string
	}{
		{
			name:    "full-images-age-out",
			entries: []segEntry{seg(1, 0), seg(2, 0), seg(3, 0)},
			keep:    2,
			drop:    "[1]",
			next:    "[2 3]",
		},
		{
			name:    "chain-pins-transitive-bases",
			entries: []segEntry{seg(1, 0), seg(2, 1), seg(3, 2), seg(4, 3)},
			keep:    2,
			drop:    "[]",
			next:    "[1 2 3 4]",
		},
		{
			name:    "new-full-unpins-old-chain",
			entries: []segEntry{seg(1, 0), seg(2, 1), seg(3, 2), seg(4, 0), seg(5, 4), seg(6, 5)},
			keep:    3,
			drop:    "[1 2 3]",
			next:    "[4 5 6]",
		},
		{
			name:    "window-straddles-chain-boundary",
			entries: []segEntry{seg(1, 0), seg(2, 1), seg(3, 0), seg(4, 3)},
			keep:    2,
			drop:    "[1 2]",
			next:    "[3 4]",
		},
		{
			name:    "under-window-keeps-all",
			entries: []segEntry{seg(1, 0), seg(2, 1)},
			keep:    3,
			drop:    "[]",
			next:    "[1 2]",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			drop, next := planPrune(tc.entries, tc.keep)
			if gensOf(drop) != tc.drop || gensOf(next) != tc.next {
				t.Fatalf("planPrune = drop %s next %s, want drop %s next %s",
					gensOf(drop), gensOf(next), tc.drop, tc.next)
			}
		})
	}
}

// TestCommitDeltaValidation: a delta must name a strictly older base
// the store still retains.
func TestCommitDeltaValidation(t *testing.T) {
	s, _ := newStore(t, Options{})
	commitString(t, s, 1, "one")
	payload := func(w io.Writer) error {
		_, err := io.WriteString(w, "delta")
		return err
	}
	for _, tc := range []struct{ gen, base int64 }{
		{2, 0},  // zero base is a full image, not a delta
		{2, -1}, // negative base
		{2, 2},  // base not older than gen
		{2, 5},  // base newer than gen
		{3, 2},  // base not in the store
	} {
		if err := s.CommitDelta(tc.gen, tc.base, payload); err == nil {
			t.Fatalf("CommitDelta(%d, %d) accepted", tc.gen, tc.base)
		}
	}
	if err := s.CommitDelta(2, 1, payload); err != nil {
		t.Fatalf("valid delta rejected: %v", err)
	}
	if base, ok := s.BaseOf(2); !ok || base != 1 {
		t.Fatalf("BaseOf(2) = %d, %v", base, ok)
	}
}

// TestDeltaChainLen tracks the newest generation's replay depth.
func TestDeltaChainLen(t *testing.T) {
	s, _ := newStore(t, Options{Keep: 8})
	if n := s.DeltaChainLen(); n != 0 {
		t.Fatalf("empty store chain len %d", n)
	}
	deltaPayload := func(w io.Writer) error {
		_, err := io.WriteString(w, "x")
		return err
	}
	commitString(t, s, 1, "full")
	if n := s.DeltaChainLen(); n != 0 {
		t.Fatalf("after full image chain len %d", n)
	}
	for i := int64(2); i <= 4; i++ {
		if err := s.CommitDelta(i, i-1, deltaPayload); err != nil {
			t.Fatal(err)
		}
		if n := s.DeltaChainLen(); n != int(i-1) {
			t.Fatalf("after delta %d chain len %d, want %d", i, n, i-1)
		}
	}
	commitString(t, s, 5, "full again")
	if n := s.DeltaChainLen(); n != 0 {
		t.Fatalf("after new full image chain len %d", n)
	}
}
