package durable

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pager"
)

// flipByte XORs one byte of the named file in place — the bit-rot /
// torn-write aftermath the recovery ladder must detect.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += int64(len(buf))
	}
	if off < 0 || off >= int64(len(buf)) {
		t.Fatalf("offset %d out of range (%d bytes)", off, len(buf))
	}
	buf[off] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryLadderPerRegion corrupts one byte in each region of the
// newest segment — header magic, generation field, payload, payload
// checksum, header checksum — and in the manifest, and asserts Recover
// lands on the newest intact generation every time.
func TestRecoveryLadderPerRegion(t *testing.T) {
	cases := []struct {
		name   string
		file   func(newestSeg string) string // which file to corrupt
		offset int64                         // byte offset (negative = from end)
		// wantGen is the generation Recover must land on after the
		// corruption (the newest intact one).
		wantGen int64
	}{
		{"header-magic", func(seg string) string { return seg }, 0, 2},
		{"header-generation", func(seg string) string { return seg }, 8, 2},
		{"header-length", func(seg string) string { return seg }, 16, 2},
		{"payload-checksum", func(seg string) string { return seg }, 24, 2},
		{"header-checksum", func(seg string) string { return seg }, 28, 2},
		{"payload-first-byte", func(seg string) string { return seg }, headerSize, 2},
		{"payload-last-byte", func(seg string) string { return seg }, -1, 2},
		// Manifest corruption costs only the cross-check: the scan
		// fallback still finds the intact newest segment.
		{"manifest", func(string) string { return manifestName }, headerSize + 2, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := t.TempDir()
			fs, err := pager.DirFS(root)
			if err != nil {
				t.Fatal(err)
			}
			s, err := Open(fs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			commitString(t, s, 1, "payload of generation 1")
			commitString(t, s, 2, "payload of generation 2")
			commitString(t, s, 3, "payload of generation 3")

			flipByte(t, filepath.Join(root, tc.file(segName(3))), tc.offset)

			back, err := Open(fs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			gen, payload, err := back.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if gen != tc.wantGen {
				t.Fatalf("recovered gen %d, want %d", gen, tc.wantGen)
			}
			want := map[int64]string{2: "payload of generation 2", 3: "payload of generation 3"}[tc.wantGen]
			if string(payload) != want {
				t.Fatalf("recovered %q, want %q", payload, want)
			}
			if tc.wantGen == 2 && back.Stats().CorruptSkips == 0 {
				t.Fatal("expected a corrupt-segment skip to be counted")
			}
		})
	}
}

// TestRecoveryLadderTwoRungs corrupts the two newest generations and
// asserts the ladder descends to the third, then that the corrupt
// segments were dropped so the store resumes cleanly.
func TestRecoveryLadderTwoRungs(t *testing.T) {
	root := t.TempDir()
	fs, err := pager.DirFS(root)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(fs, Options{Keep: 4})
	if err != nil {
		t.Fatal(err)
	}
	for g := int64(1); g <= 4; g++ {
		commitString(t, s, g, string(rune('a'+g)))
	}
	flipByte(t, filepath.Join(root, segName(4)), headerSize)
	flipByte(t, filepath.Join(root, segName(3)), -1)

	back, err := Open(fs, Options{Keep: 4})
	if err != nil {
		t.Fatal(err)
	}
	gen, payload, err := back.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || string(payload) != string(rune('a'+2)) {
		t.Fatalf("recovered gen %d %q, want gen 2", gen, payload)
	}
	if skips := back.Stats().CorruptSkips; skips != 2 {
		t.Fatalf("corrupt skips = %d, want 2", skips)
	}
	// The corrupt rungs are gone: committing and recovering continues
	// from the recovered lineage.
	if got := back.Generations(); len(got) != 2 || got[1] != 2 {
		t.Fatalf("generations after rollback: %v, want [1 2]", got)
	}
	commitString(t, back, 3, "new lineage")
	gen, payload, err = back.Recover()
	if err != nil || gen != 3 || string(payload) != "new lineage" {
		t.Fatalf("post-rollback commit: gen %d %q %v", gen, payload, err)
	}
}

// TestAllGenerationsCorrupt asserts the ladder fails loudly — with
// ErrNoIntactGeneration, not a zero value — when nothing verifies.
func TestAllGenerationsCorrupt(t *testing.T) {
	root := t.TempDir()
	fs, err := pager.DirFS(root)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commitString(t, s, 1, "one")
	commitString(t, s, 2, "two")
	flipByte(t, filepath.Join(root, segName(1)), headerSize)
	flipByte(t, filepath.Join(root, segName(2)), headerSize)
	back, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := back.Recover(); !errors.Is(err, ErrNoIntactGeneration) {
		t.Fatalf("Recover = %v, want ErrNoIntactGeneration", err)
	}
}

// TestTruncatedSegment asserts a segment cut mid-payload (the torn tail
// a crash during the pre-rename write could leave if rename raced) is
// skipped as corrupt.
func TestTruncatedSegment(t *testing.T) {
	root := t.TempDir()
	fs, err := pager.DirFS(root)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commitString(t, s, 1, "intact")
	commitString(t, s, 2, "this payload will be truncated")
	path := filepath.Join(root, segName(2))
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	back, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen, payload, err := back.Recover()
	if err != nil || gen != 1 || string(payload) != "intact" {
		t.Fatalf("recovered gen %d %q %v, want gen 1", gen, payload, err)
	}
}

// TestEnvelopeErrorsWrapErrCorrupt pins the typed-error contract.
func TestEnvelopeErrorsWrapErrCorrupt(t *testing.T) {
	if _, _, err := openEnvelope(segMagic, []byte("short")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated header: %v", err)
	}
	sealed := sealEnvelope(segMagic, 7, []byte("payload"))
	sealed[headerSize] ^= 1
	if _, _, err := openEnvelope(segMagic, sealed); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload flip: %v", err)
	}
	good := sealEnvelope(manMagic, 7, []byte("payload"))
	if _, _, err := openEnvelope(segMagic, good); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("magic mismatch: %v", err)
	}
}
