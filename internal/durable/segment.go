package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Every file the store writes — generation segments and the manifest —
// is one envelope: a fixed 32-byte header followed by the payload. The
// header carries its own CRC32C so a torn header is distinguishable
// from a torn payload, and the payload CRC32C catches bit-rot anywhere
// in the body. CRC32C (Castagnoli) is the checksum storage systems use
// for exactly this job: hardware-accelerated and strong against the
// burst errors torn writes produce.
//
//	[0:8]   magic ("DRBLSEG1" segment / "DRBLMAN1" manifest)
//	[8:16]  generation (segment) or manifest sequence number, LE
//	[16:24] payload length in bytes, LE
//	[24:28] CRC32C(payload), LE
//	[28:32] CRC32C(header[0:28]), LE
const headerSize = 32

var (
	segMagic = [8]byte{'D', 'R', 'B', 'L', 'S', 'E', 'G', '1'}
	manMagic = [8]byte{'D', 'R', 'B', 'L', 'M', 'A', 'N', '1'}
)

// castagnoli is the CRC32C table shared by all checksum computations.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks an envelope that failed verification: truncated or
// overwritten header, magic mismatch, length disagreeing with the file
// size, or a checksum that does not match the bytes. Every corrupt
// segment the recovery ladder skips surfaces (wrapped) as this error.
var ErrCorrupt = errors.New("durable: corrupt envelope")

// sealEnvelope frames payload under the given magic and generation:
// header and payload in one contiguous buffer, checksums filled in.
func sealEnvelope(magic [8]byte, gen uint64, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	copy(buf[0:8], magic[:])
	binary.LittleEndian.PutUint64(buf[8:16], gen)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(len(payload)))
	binary.LittleEndian.PutUint32(buf[24:28], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(buf[28:32], crc32.Checksum(buf[0:28], castagnoli))
	copy(buf[headerSize:], payload)
	return buf
}

// openEnvelope verifies buf as one envelope under magic and returns the
// generation and payload. Every failure wraps ErrCorrupt with the
// region that failed, so corruption tests can assert where the ladder
// stopped trusting the file.
func openEnvelope(magic [8]byte, buf []byte) (gen uint64, payload []byte, err error) {
	if len(buf) < headerSize {
		return 0, nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(buf))
	}
	if crc32.Checksum(buf[0:28], castagnoli) != binary.LittleEndian.Uint32(buf[28:32]) {
		return 0, nil, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	if [8]byte(buf[0:8]) != magic {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[0:8])
	}
	gen = binary.LittleEndian.Uint64(buf[8:16])
	n := binary.LittleEndian.Uint64(buf[16:24])
	if n != uint64(len(buf)-headerSize) {
		return 0, nil, fmt.Errorf("%w: payload length %d, file carries %d", ErrCorrupt, n, len(buf)-headerSize)
	}
	payload = buf[headerSize:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[24:28]) {
		return 0, nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	return gen, payload, nil
}
