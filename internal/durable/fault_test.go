package durable

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/pager"
)

// TestCommitUnderFaultsNeverLosesAckedState soaks the commit protocol
// through the storage fault injector: torn writes, short writes, failed
// fsyncs, outright write errors. The invariant — the reason the
// protocol exists — is that after any mix of failed and successful
// commits, a clean reopen recovers a generation at least as new as the
// last acknowledged one, with byte-identical payload. Failed commits
// may or may not have reached disk; they only ever add newer intact
// states, never damage older ones.
func TestCommitUnderFaultsNeverLosesAckedState(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inner, err := pager.DirFS(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			ffs := faultfs.Wrap(inner, faultfs.Config{
				Seed:       seed,
				TornWrite:  0.12,
				ShortWrite: 0.08,
				SyncErr:    0.12,
				WriteErr:   0.08,
			})
			s, err := Open(ffs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			payloads := map[int64]string{}
			var lastAcked int64
			for gen := int64(1); gen <= 25; gen++ {
				p := fmt.Sprintf("state of generation %d", gen)
				payloads[gen] = p
				err := s.Commit(gen, func(w io.Writer) error {
					_, err := io.WriteString(w, p)
					return err
				})
				if err == nil {
					lastAcked = gen
				} else if !errors.Is(err, faultfs.ErrInjected) {
					t.Fatalf("gen %d: unexpected error kind: %v", gen, err)
				}
			}
			if lastAcked == 0 {
				t.Fatalf("seed %d acked nothing; fault rates too hot for the test to mean anything", seed)
			}
			// A crash-then-reboot: reopen through the clean filesystem.
			clean, err := Open(inner, Options{})
			if err != nil {
				t.Fatal(err)
			}
			gen, payload, err := clean.Recover()
			if err != nil {
				t.Fatalf("recover after faults: %v", err)
			}
			if gen < lastAcked {
				t.Fatalf("recovered gen %d older than last acked %d", gen, lastAcked)
			}
			if string(payload) != payloads[gen] {
				t.Fatalf("gen %d recovered %q, want %q", gen, payload, payloads[gen])
			}
		})
	}
}

// TestBitRotIsNeverServed commits through a media that silently flips
// one bit per write. Whatever Recover returns afterwards, it must be a
// payload we actually committed — rot is detected and skipped, never
// passed through.
func TestBitRotIsNeverServed(t *testing.T) {
	inner, err := pager.DirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(inner, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payloads := map[int64]string{}
	for gen := int64(1); gen <= 3; gen++ {
		payloads[gen] = fmt.Sprintf("clean generation %d", gen)
		commitString(t, s, gen, payloads[gen])
	}
	rotten := faultfs.Wrap(inner, faultfs.Config{Seed: 5, BitRot: 1})
	rs, err := Open(rotten, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payloads[4] = "rotten generation 4"
	// The rotten commit self-reports success; the corruption is silent.
	_ = rs.Commit(4, func(w io.Writer) error {
		_, err := io.WriteString(w, payloads[4])
		return err
	})

	clean, err := Open(inner, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen, payload, err := clean.Recover()
	if err != nil {
		t.Fatalf("recover after bit rot: %v", err)
	}
	if string(payload) != payloads[gen] {
		t.Fatalf("served corrupted bytes for gen %d: %q", gen, payload)
	}
	if gen < 3 {
		t.Fatalf("bit rot in gen 4 must not damage gens 1..3; recovered %d", gen)
	}
}

// TestENOSPCCommitFailsCleanly fills the disk budget mid-stream and
// asserts the over-budget commit errors without damaging prior state.
func TestENOSPCCommitFailsCleanly(t *testing.T) {
	inner, err := pager.DirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ffs := faultfs.Wrap(inner, faultfs.Config{ENOSPCAfter: 600})
	s, err := Open(ffs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commitString(t, s, 1, "fits")
	err = s.Commit(2, func(w io.Writer) error {
		_, err := w.Write(make([]byte, 4096))
		return err
	})
	if !errors.Is(err, faultfs.ErrNoSpace) {
		t.Fatalf("over-budget commit err = %v, want ErrNoSpace", err)
	}
	clean, err := Open(inner, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen, payload, err := clean.Recover()
	if err != nil || gen != 1 || string(payload) != "fits" {
		t.Fatalf("after ENOSPC: gen %d %q %v", gen, payload, err)
	}
}
