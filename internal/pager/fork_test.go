package pager

import (
	"bytes"
	"math/rand"
	"testing"
)

func fillPage(size int, b byte) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestForkIsolation(t *testing.T) {
	d := NewDisk(128)
	var ids []PageID
	for i := 0; i < 10; i++ {
		id, err := d.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Write(id, fillPage(128, byte(i))); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	f := d.Fork()
	// Overwrite half the pages and free one on the fork.
	for i := 0; i < 5; i++ {
		if err := f.Write(ids[i], fillPage(128, 0xAA)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Free(ids[9]); err != nil {
		t.Fatal(err)
	}
	nid, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Write(nid, fillPage(128, 0xBB)); err != nil {
		t.Fatal(err)
	}
	// Parent unchanged.
	buf := make([]byte, 128)
	for i, id := range ids {
		if err := d.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("parent page %d mutated: %x", id, buf[0])
		}
	}
	// Fork sees its own writes plus shared pages.
	for i := 0; i < 10; i++ {
		if i == 9 {
			continue
		}
		if err := f.Read(ids[i], buf); err != nil {
			t.Fatal(err)
		}
		want := byte(i)
		if i < 5 {
			want = 0xAA
		}
		if buf[0] != want {
			t.Fatalf("fork page %d = %x, want %x", ids[i], buf[0], want)
		}
	}
	dirty := f.Dirty()
	if len(dirty) == 0 {
		t.Fatal("fork reported no dirty pages")
	}
	want := map[PageID]bool{ids[0]: true, ids[1]: true, ids[2]: true, ids[3]: true, ids[4]: true, ids[9]: true, nid: true}
	if len(dirty) != len(want) {
		t.Fatalf("dirty = %v, want %v", dirty, want)
	}
	for _, id := range dirty {
		if !want[id] {
			t.Fatalf("unexpected dirty page %d", id)
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDisk(64)
	for i := 0; i < 40; i++ {
		id, err := d.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		p := make([]byte, 64)
		rng.Read(p)
		if err := d.Write(id, p); err != nil {
			t.Fatal(err)
		}
	}
	// Chain of two forks, as between checkpoints.
	f1 := d.Fork()
	for i := 0; i < 10; i++ {
		p := make([]byte, 64)
		rng.Read(p)
		if err := f1.Write(PageID(rng.Intn(40)+1), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := f1.Free(3); err != nil {
		t.Fatal(err)
	}
	f2 := f1.Fork()
	for i := 0; i < 5; i++ {
		id, err := f2.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		p := make([]byte, 64)
		rng.Read(p)
		if err := f2.Write(id, p); err != nil {
			t.Fatal(err)
		}
	}
	// Union of the chain's dirty sets, deduped and sorted — what a
	// delta checkpoint against d's image carries.
	union := map[PageID]struct{}{}
	for _, id := range f1.Dirty() {
		union[id] = struct{}{}
	}
	for _, id := range f2.Dirty() {
		union[id] = struct{}{}
	}
	dirty := make([]PageID, 0, len(union))
	for id := range union {
		dirty = append(dirty, id)
	}
	for i := range dirty {
		for j := i + 1; j < len(dirty); j++ {
			if dirty[j] < dirty[i] {
				dirty[i], dirty[j] = dirty[j], dirty[i]
			}
		}
	}
	var delta bytes.Buffer
	if _, err := f2.WriteDeltaTo(&delta, dirty); err != nil {
		t.Fatal(err)
	}
	// Reconstruct: full image of d, then apply the delta.
	var full bytes.Buffer
	if _, err := d.WriteTo(&full); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDisk(&full)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.ApplyDelta(bytes.NewReader(delta.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Byte-identical to a full image of f2.
	var wantImg, gotImg bytes.Buffer
	if _, err := f2.WriteTo(&wantImg); err != nil {
		t.Fatal(err)
	}
	if _, err := got.WriteTo(&gotImg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantImg.Bytes(), gotImg.Bytes()) {
		t.Fatal("delta-reconstructed disk is not byte-identical to the fork")
	}
}

func TestApplyDeltaRejectsCorrupt(t *testing.T) {
	d := NewDisk(64)
	id, _ := d.Alloc()
	_ = d.Write(id, fillPage(64, 1))
	f := d.Fork()
	_ = f.Write(id, fillPage(64, 2))
	var delta bytes.Buffer
	if _, err := f.WriteDeltaTo(&delta, f.Dirty()); err != nil {
		t.Fatal(err)
	}
	raw := delta.Bytes()
	cases := map[string][]byte{
		"truncated header": raw[:12],
		"bad magic":        append(append([]byte{}, "DIRKITXX"...), raw[8:]...),
		"truncated image":  raw[:len(raw)-5],
	}
	for name, b := range cases {
		base := NewDisk(64)
		bid, _ := base.Alloc()
		_ = base.Write(bid, fillPage(64, 1))
		if err := base.ApplyDelta(bytes.NewReader(b)); err == nil {
			t.Fatalf("%s: ApplyDelta accepted corrupt input", name)
		}
	}
	// Page-size mismatch.
	other := NewDisk(128)
	if err := other.ApplyDelta(bytes.NewReader(raw)); err == nil {
		t.Fatal("ApplyDelta accepted a delta with mismatched page size")
	}
}
