package pager

import (
	"sync"
	"testing"
)

// TestStatsDeltaOwnership asserts the two halves of the Stats
// ownership rule (see the Stats doc comment):
//
//  1. the global counters are exact under concurrency — G readers
//     sharing one Disk lose no updates;
//  2. a windowed delta taken while others use the Disk includes their
//     I/O too, so per-query deltas require serialized evaluation.
func TestStatsDeltaOwnership(t *testing.T) {
	const (
		goroutines = 8
		readsEach  = 500
	)
	d := NewDisk(512)
	id, err := d.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write(id, []byte("x")); err != nil {
		t.Fatal(err)
	}

	before := d.Stats()

	// One designated "measurer" takes a window delta around its own
	// reads while the other goroutines hammer the same disk.
	var windowDelta Stats
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 512)
			<-start
			if g == 0 {
				w0 := d.Stats()
				for i := 0; i < readsEach; i++ {
					if err := d.Read(id, buf); err != nil {
						t.Error(err)
						return
					}
				}
				windowDelta = d.Stats().Sub(w0)
				return
			}
			for i := 0; i < readsEach; i++ {
				if err := d.Read(id, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()

	// Half 1: no lost updates — the global delta is exactly the sum of
	// every goroutine's reads.
	total := d.Stats().Sub(before)
	if total.Reads != goroutines*readsEach {
		t.Fatalf("global reads delta = %d, want %d (counters lost updates)", total.Reads, goroutines*readsEach)
	}
	if total.Writes != 0 || total.Allocs != 0 || total.Frees != 0 {
		t.Fatalf("unexpected non-read activity: %v", total)
	}

	// Half 2: the measurer's window saw at least its own reads, and —
	// with 7 concurrent readers interleaving — almost certainly more.
	// The rule is that the window cannot be attributed to the measurer:
	// assert the lower bound (its own I/O is always included) and that
	// the window never exceeds the global total.
	if windowDelta.Reads < readsEach {
		t.Fatalf("window delta %d lost the measurer's own reads (want >= %d)", windowDelta.Reads, readsEach)
	}
	if windowDelta.Reads > total.Reads {
		t.Fatalf("window delta %d exceeds global delta %d", windowDelta.Reads, total.Reads)
	}

	// With the disk to itself, the same window is exact — the
	// serialized-evaluation discipline every per-query delta relies on.
	solo := d.Stats()
	buf := make([]byte, 512)
	for i := 0; i < readsEach; i++ {
		if err := d.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Stats().Sub(solo); got.Reads != readsEach {
		t.Fatalf("serialized window delta = %d, want exactly %d", got.Reads, readsEach)
	}
}
