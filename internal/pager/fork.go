package pager

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Fork support: a forked Disk shares the parent's page images
// copy-on-write, so an entry-level mutation touches O(log N) fresh
// pages instead of copying the device. The fork additionally records
// which pages it dirtied, which is exactly the page set a delta
// checkpoint (WriteDeltaTo) must carry against the parent's image.
//
// Safety model: forks rely on the same invariant the snapshot-swap
// core already enforces — a published store's Disk is never written
// again. The fork therefore reads shared page slices without taking
// the parent's lock, and a Write on a shared page installs a fresh
// private slice instead of zeroing the shared one in place.

// Fork returns a copy-on-write child of the device. The child sees the
// parent's current pages and free list; writes, allocations, and frees
// on the child never disturb the parent. The child tracks its dirty
// page set (see Dirty) from birth.
func (d *Disk) Fork() *Disk {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return &Disk{
		pageSize: d.pageSize,
		pages:    append([][]byte(nil), d.pages...),
		free:     append([]PageID(nil), d.free...),
		cowBase:  len(d.pages),
		owned:    make(map[PageID]bool),
		dirty:    make(map[PageID]struct{}),
	}
}

// isShared reports whether page id still aliases the parent's slice
// (fork-local bookkeeping; caller holds the write lock).
func (d *Disk) isShared(id PageID) bool {
	return d.owned != nil && int(id) < d.cowBase && !d.owned[id]
}

// markDirty records id in the fork's dirty set (no-op on a non-fork).
func (d *Disk) markDirty(id PageID) {
	if d.dirty != nil {
		d.dirty[id] = struct{}{}
	}
}

// Dirty returns the sorted set of pages this fork has written, allocated,
// or freed since Fork — the page set a delta against the parent must
// carry. Nil for a disk that is not a fork.
func (d *Disk) Dirty() []PageID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.dirty == nil {
		return nil
	}
	out := make([]PageID, 0, len(d.dirty))
	for id := range d.dirty {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirtyCount returns the size of the fork's dirty set (0 on a non-fork).
func (d *Disk) DirtyCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.dirty)
}

// delta format: magic, page size, slot count after the delta, the full
// free list (replaced wholesale — it is tiny), then the dirty pages as
// (id, presence, image) triples in ascending id order. Like WriteTo,
// delta I/O is backup traffic and is not counted in Stats.
var deltaMagic = [8]byte{'D', 'I', 'R', 'K', 'I', 'T', 'D', '2'}

// WriteDeltaTo serializes a page delta: the given dirty pages as this
// device currently holds them, plus the device's free list and slot
// count. Applying the delta (ApplyDelta) to a disk holding the
// pre-fork image reproduces this device exactly, provided dirty covers
// every page that differs — the union of Dirty() sets along the fork
// chain between the two images.
func (d *Disk) WriteDeltaTo(w io.Writer, dirty []PageID) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	bw := &countWriter{w: w}
	if _, err := bw.Write(deltaMagic[:]); err != nil {
		return bw.n, err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(d.pageSize))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(d.pages)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(d.free)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(dirty)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return bw.n, err
	}
	var id [4]byte
	for _, f := range d.free {
		binary.LittleEndian.PutUint32(id[:], uint32(f))
		if _, err := bw.Write(id[:]); err != nil {
			return bw.n, err
		}
	}
	for i, p := range dirty {
		if i > 0 && dirty[i-1] >= p {
			return bw.n, errors.New("pager: delta dirty set not strictly ascending")
		}
		if int(p) < 1 || int(p) >= len(d.pages) {
			return bw.n, fmt.Errorf("%w: %d", ErrBadPage, p)
		}
		binary.LittleEndian.PutUint32(id[:], uint32(p))
		if _, err := bw.Write(id[:]); err != nil {
			return bw.n, err
		}
		img := d.pages[p]
		if img == nil {
			if _, err := bw.Write([]byte{0}); err != nil {
				return bw.n, err
			}
			continue
		}
		if _, err := bw.Write([]byte{1}); err != nil {
			return bw.n, err
		}
		if _, err := bw.Write(img); err != nil {
			return bw.n, err
		}
	}
	return bw.n, nil
}

// ApplyDelta mutates d in place by applying a delta previously written
// with WriteDeltaTo: the slot count grows to the delta's, the free list
// is replaced, and each carried page image overwrites its slot. The
// same incremental-allocation discipline as ReadDisk applies — lying
// headers on truncated streams fail at the truncation point. The
// caller owns d exclusively (recovery replays deltas onto a private
// disk before anything is published).
func (d *Disk) ApplyDelta(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return err
	}
	if magic != deltaMagic {
		return errors.New("pager: not a disk delta")
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return err
	}
	pageSize := int(binary.LittleEndian.Uint32(hdr[0:]))
	nPages := int(binary.LittleEndian.Uint32(hdr[4:]))
	nFree := int(binary.LittleEndian.Uint32(hdr[8:]))
	nDirty := int(binary.LittleEndian.Uint32(hdr[12:]))
	if pageSize != d.pageSize {
		return fmt.Errorf("pager: delta page size %d != disk %d", pageSize, d.pageSize)
	}
	if nPages < len(d.pages) || nFree < 0 || nFree > nPages || nDirty < 0 || nDirty > nPages {
		return errors.New("pager: corrupt delta header")
	}
	var id [4]byte
	free := d.free[:0]
	for i := 0; i < nFree; i++ {
		if _, err := io.ReadFull(br, id[:]); err != nil {
			return fmt.Errorf("pager: truncated delta free list: %w", err)
		}
		f := PageID(binary.LittleEndian.Uint32(id[:]))
		if int(f) < 1 || int(f) >= nPages {
			return fmt.Errorf("pager: delta free-list page %d out of range", f)
		}
		free = append(free, f)
	}
	pages := d.pages
	prev := PageID(0)
	var present [1]byte
	for i := 0; i < nDirty; i++ {
		if _, err := io.ReadFull(br, id[:]); err != nil {
			return fmt.Errorf("pager: truncated delta page directory: %w", err)
		}
		p := PageID(binary.LittleEndian.Uint32(id[:]))
		if int(p) < 1 || int(p) >= nPages || (i > 0 && p <= prev) {
			return fmt.Errorf("pager: delta page id %d out of order or range", p)
		}
		prev = p
		if _, err := io.ReadFull(br, present[:]); err != nil {
			return fmt.Errorf("pager: truncated delta presence byte: %w", err)
		}
		for len(pages) <= int(p) {
			pages = append(pages, nil)
		}
		if present[0] == 0 {
			pages[p] = nil
			continue
		}
		img := make([]byte, pageSize)
		if _, err := io.ReadFull(br, img); err != nil {
			return fmt.Errorf("pager: truncated delta page image: %w", err)
		}
		pages[p] = img
	}
	for len(pages) < nPages {
		pages = append(pages, nil)
	}
	d.pages = pages
	d.free = free
	return nil
}
