package pager

import (
	"sync"
	"testing"
)

// TestReadHandleConcurrentExactness is the sharded-stats half of the
// ownership rule: any number of handles reading concurrently must lose
// no counts — the global Reads counter equals the exact number of page
// reads issued, and each handle's local Stats counts exactly its own.
func TestReadHandleConcurrentExactness(t *testing.T) {
	d := NewDisk(256)
	const nPages = 64
	ids := make([]PageID, nPages)
	for i := range ids {
		id, err := d.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Write(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	before := d.Stats()

	const (
		goroutines    = 16
		readsPerGoro  = 500
		expectedReads = goroutines * readsPerGoro
	)
	locals := make([]Stats, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := d.NewReadHandle()
			buf := make([]byte, d.PageSize())
			for i := 0; i < readsPerGoro; i++ {
				pi := (g*readsPerGoro + i) % nPages
				if err := h.Read(ids[pi], buf); err != nil {
					t.Errorf("goroutine %d read %d: %v", g, i, err)
					return
				}
				if buf[0] != byte(pi) {
					t.Errorf("goroutine %d: page %d content %d", g, pi, buf[0])
					return
				}
			}
			locals[g] = h.Stats()
		}(g)
	}
	wg.Wait()

	delta := d.Stats().Sub(before)
	if delta.Reads != expectedReads {
		t.Fatalf("global Reads delta = %d, want %d (counts lost or duplicated)", delta.Reads, expectedReads)
	}
	var localSum int64
	for g, s := range locals {
		if s.Reads != readsPerGoro {
			t.Fatalf("handle %d local Reads = %d, want %d", g, s.Reads, readsPerGoro)
		}
		localSum += s.Reads
	}
	if localSum != delta.Reads {
		t.Fatalf("local sum %d != global delta %d", localSum, delta.Reads)
	}
}

// TestReadHandleConcurrentWithWrites mixes concurrent handle reads with
// serialized writers: the write lock excludes readers while a page
// mutates, and every counter stays exact.
func TestReadHandleConcurrentWithWrites(t *testing.T) {
	d := NewDisk(256)
	const nPages = 16
	ids := make([]PageID, nPages)
	for i := range ids {
		id, err := d.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Write(id, []byte{1}); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	before := d.Stats()

	const (
		readers      = 8
		readsPerGoro = 300
		writes       = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := d.NewReadHandle()
			buf := make([]byte, d.PageSize())
			for i := 0; i < readsPerGoro; i++ {
				if err := h.Read(ids[(g+i)%nPages], buf); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if buf[0] == 0 {
					t.Errorf("read observed unwritten content")
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			if err := d.Write(ids[i%nPages], []byte{byte(1 + i%7)}); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	delta := d.Stats().Sub(before)
	if delta.Reads != readers*readsPerGoro {
		t.Fatalf("Reads delta = %d, want %d", delta.Reads, readers*readsPerGoro)
	}
	if delta.Writes != writes {
		t.Fatalf("Writes delta = %d, want %d", delta.Writes, writes)
	}
}

// TestPoolConcurrentGet exercises the buffer pool's internal lock: many
// goroutines pin, read, and unpin overlapping pages concurrently.
func TestPoolConcurrentGet(t *testing.T) {
	d := NewDisk(256)
	const nPages = 32
	ids := make([]PageID, nPages)
	for i := range ids {
		id, err := d.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Write(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	p := NewPool(d, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				pi := (g + i) % nPages
				f, err := p.Get(ids[pi])
				if err != nil {
					if err == ErrPoolFull {
						continue // transiently all pinned by peers
					}
					t.Errorf("get: %v", err)
					return
				}
				if f.Data[0] != byte(pi) {
					t.Errorf("frame %d content %d", pi, f.Data[0])
				}
				p.Unpin(f)
			}
		}(g)
	}
	wg.Wait()
}
