package pager

import (
	"errors"
	"io"
	"os"
	"testing"
)

func TestDirFSRoundTrip(t *testing.T) {
	fs, err := DirFS(t.TempDir() + "/data")
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("a.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello durable"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("a.tmp", "a.seg"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncRoot(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "a.seg" {
		t.Fatalf("List = %v, want [a.seg]", names)
	}
	if n, err := fs.Size("a.seg"); err != nil || n != int64(len("hello durable")) {
		t.Fatalf("Size = %d, %v", n, err)
	}
	r, err := fs.Open("a.seg")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 13)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "hello durable" {
		t.Fatalf("read back %q", buf)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("a.seg"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("a.seg"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Open after Remove: %v, want not-exist", err)
	}
}

func TestDirFSRenameIsReplace(t *testing.T) {
	fs, err := DirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	write := func(name, data string) {
		f, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte(data), 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("m", "old")
	write("m.tmp", "new!")
	if err := fs.Rename("m.tmp", "m"); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("m")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 4)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "new!" {
		t.Fatalf("rename did not replace: %q", buf)
	}
}
