package pager

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BlockFile is the surface of one on-disk file as durable storage sees
// it: positioned reads and writes, an explicit durability barrier
// (Sync), truncation, and close. *os.File satisfies it directly; the
// fault-injecting wrapper in internal/faultfs interposes on every
// method. Offsets are byte offsets — callers that want page-aligned
// traffic (internal/durable writes whole segments) impose their own
// framing on top.
type BlockFile interface {
	io.ReaderAt
	io.WriterAt
	// Sync flushes the file's dirty state to stable storage. Data
	// written but not Synced may vanish in a crash — the commit
	// protocols above this interface are built entirely out of the
	// write → Sync → rename → SyncRoot ordering.
	Sync() error
	// Truncate sets the file's size.
	Truncate(size int64) error
	// Close releases the file. Close does not imply Sync.
	Close() error
}

// FileSystem abstracts the directory-of-files operations a durable
// store's commit protocol needs: file creation and opening, the atomic
// rename that commits, removal, listing, sizing, and fsync of the
// containing directory (the step that makes a rename itself durable).
// All names are flat — no subdirectories — which keeps the fault
// surface enumerable.
type FileSystem interface {
	// Create makes (or truncates) the named file for writing.
	Create(name string) (BlockFile, error)
	// Open opens the named file for reading.
	Open(name string) (BlockFile, error)
	// Rename atomically replaces newname with oldname's file. On a
	// POSIX filesystem the replacement is all-or-nothing even across a
	// crash, once the directory is synced.
	Rename(oldname, newname string) error
	// Remove deletes the named file.
	Remove(name string) error
	// List returns the names of all files in the root, sorted.
	List() ([]string, error)
	// Size returns the named file's length in bytes.
	Size(name string) (int64, error)
	// SyncRoot fsyncs the root directory, making completed renames and
	// removals durable.
	SyncRoot() error
}

// dirFS is the production FileSystem: a flat directory of real files
// accessed through the os package.
type dirFS struct {
	root string
}

// DirFS returns the os-backed FileSystem rooted at dir, creating the
// directory if needed.
func DirFS(dir string) (FileSystem, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pager: create data dir: %w", err)
	}
	return &dirFS{root: dir}, nil
}

// path validates name as a flat file name — no separators, no "..", so
// a corrupt or hostile manifest can never direct the store outside its
// root — and joins it under the root.
func (fs *dirFS) path(name string) (string, error) {
	if name == "" || name == "." || name == ".." || strings.ContainsAny(name, `/\`) {
		return "", fmt.Errorf("pager: invalid file name %q", name)
	}
	return filepath.Join(fs.root, name), nil
}

func (fs *dirFS) Create(name string) (BlockFile, error) {
	p, err := fs.path(name)
	if err != nil {
		return nil, err
	}
	return os.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (fs *dirFS) Open(name string) (BlockFile, error) {
	p, err := fs.path(name)
	if err != nil {
		return nil, err
	}
	return os.Open(p)
}

func (fs *dirFS) Rename(oldname, newname string) error {
	po, err := fs.path(oldname)
	if err != nil {
		return err
	}
	pn, err := fs.path(newname)
	if err != nil {
		return err
	}
	return os.Rename(po, pn)
}

func (fs *dirFS) Remove(name string) error {
	p, err := fs.path(name)
	if err != nil {
		return err
	}
	return os.Remove(p)
}

func (fs *dirFS) List() ([]string, error) {
	ents, err := os.ReadDir(fs.root)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

func (fs *dirFS) Size(name string) (int64, error) {
	p, err := fs.path(name)
	if err != nil {
		return 0, err
	}
	st, err := os.Stat(p)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (fs *dirFS) SyncRoot() error {
	d, err := os.Open(fs.root)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
