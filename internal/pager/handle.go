package pager

// ReadHandle is a per-goroutine read path onto a Disk: it performs the
// same counted page reads as Disk.Read, but accumulates onto a shard
// assigned at creation (so a fleet of handles never contends on one
// counter word) and additionally keeps a handle-local Stats of the I/O
// performed through it.
//
// This is the concurrency contract the parallel evaluator relies on
// (DESIGN.md §9): every plist.Reader and plist.RandomReader owns one
// ReadHandle, readers are never shared between goroutines, and the
// Disk's global counters stay exact no matter how many handles read
// concurrently — each page access lands exactly one atomic increment.
// The handle-local Stats give per-worker accounting without windowed
// deltas, which the ownership rule (see Stats) forbids under
// concurrency.
//
// A ReadHandle itself must not be shared between goroutines without
// external synchronization: the local counter is a plain field.
type ReadHandle struct {
	d     *Disk
	shard *statsShard
	meter *Meter // optional per-query attribution sink
	local Stats
}

// NewReadHandle creates a read handle for this device. Handles are
// cheap; create one per reader (or per worker goroutine), not one per
// read.
func (d *Disk) NewReadHandle() *ReadHandle {
	i := d.nextHandle.Add(1)
	return &ReadHandle{d: d, shard: &d.shards[i&(statsShards-1)]}
}

// NewMeteredReadHandle is NewReadHandle with a per-query Meter attached:
// every read through the handle additionally lands one increment on m,
// attributing shared-device I/O to the query that owns the meter. A nil
// meter yields a plain handle.
func (d *Disk) NewMeteredReadHandle(m *Meter) *ReadHandle {
	h := d.NewReadHandle()
	h.meter = m
	return h
}

// Read copies page id into buf exactly like Disk.Read, counting the
// read both globally (on the handle's shard) and locally.
func (h *ReadHandle) Read(id PageID, buf []byte) error {
	if err := h.d.readCounted(id, buf, h.shard); err != nil {
		return err
	}
	h.local.Reads++
	if h.meter != nil {
		h.meter.reads.Add(1)
	}
	return nil
}

// Stats returns the I/O performed through this handle — exact without
// any serialization requirement, because only the owning goroutine
// touches it.
func (h *ReadHandle) Stats() Stats { return h.local }

// Disk returns the device this handle reads from.
func (h *ReadHandle) Disk() *Disk { return h.d }
