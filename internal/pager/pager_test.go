package pager

import (
	"bytes"
	"errors"
	"testing"
)

func TestDiskAllocReadWrite(t *testing.T) {
	d := NewDisk(128)
	id, err := d.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("page id 0 must never be allocated")
	}
	data := []byte("hello, directory")
	if err := d.Write(id, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := d.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:len(data)]) != string(data) {
		t.Fatalf("read back %q", buf[:len(data)])
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Allocs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiskErrors(t *testing.T) {
	d := NewDisk(64)
	buf := make([]byte, 64)
	if err := d.Read(0, buf); !errors.Is(err, ErrBadPage) {
		t.Errorf("read page 0: %v", err)
	}
	if err := d.Read(99, buf); !errors.Is(err, ErrBadPage) {
		t.Errorf("read unallocated: %v", err)
	}
	id, _ := d.Alloc()
	if err := d.Write(id, make([]byte, 65)); !errors.Is(err, ErrPageSize) {
		t.Errorf("oversized write: %v", err)
	}
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(PageID(50)); !errors.Is(err, ErrBadPage) {
		t.Errorf("free bad page: %v", err)
	}
}

func TestDiskFreeReuse(t *testing.T) {
	d := NewDisk(64)
	a, _ := d.Alloc()
	if err := d.Write(a, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := d.Alloc()
	if a != b {
		t.Fatalf("freed page not reused: %d vs %d", a, b)
	}
	buf := make([]byte, 64)
	if err := d.Read(b, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatal("reused page must read as zeroes")
	}
	if d.NumPages() != 1 {
		t.Fatalf("NumPages = %d", d.NumPages())
	}
}

func TestDiskWriteClearsStale(t *testing.T) {
	d := NewDisk(64)
	id, _ := d.Alloc()
	if err := d.Write(id, []byte("aaaaaaaa")); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(id, []byte("b")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := d.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 'b' || buf[1] != 0 {
		t.Fatalf("stale bytes survived rewrite: %q", buf[:8])
	}
}

func TestDiskFaultInjection(t *testing.T) {
	d := NewDisk(64)
	id, _ := d.Alloc()
	boom := errors.New("boom")
	d.SetFault(func(op string, _ PageID) error {
		if op == "write" {
			return boom
		}
		return nil
	})
	if err := d.Write(id, []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("fault not injected: %v", err)
	}
	d.SetFault(nil)
	if err := d.Write(id, []byte("x")); err != nil {
		t.Fatalf("fault not cleared: %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	d := NewDisk(64)
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, _ := d.Alloc()
		if err := d.Write(id, []byte{byte(i + 1), byte(i + 2)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// A freed page and a never-written page must survive the round trip.
	if err := d.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	unwritten, _ := d.Alloc() // reuses the freed slot, stays zeroed
	_ = unwritten

	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDisk(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.PageSize() != 64 || back.NumPages() != d.NumPages() {
		t.Fatalf("geometry lost: %d pages, size %d", back.NumPages(), back.PageSize())
	}
	pbuf := make([]byte, 64)
	for i, id := range ids {
		if i == 2 {
			continue
		}
		if err := back.Read(id, pbuf); err != nil {
			t.Fatal(err)
		}
		if pbuf[0] != byte(i+1) || pbuf[1] != byte(i+2) {
			t.Fatalf("page %d content lost", id)
		}
	}
	// Allocation continues correctly after restore.
	if _, err := back.Alloc(); err != nil {
		t.Fatal(err)
	}
}

func TestReadDiskRejectsGarbage(t *testing.T) {
	if _, err := ReadDisk(bytes.NewReader([]byte("bogus"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadDisk(bytes.NewReader([]byte("DIRKITD1trunc"))); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestStatsArithmetic(t *testing.T) {
	a := Stats{Reads: 5, Writes: 3, Allocs: 2, Frees: 1}
	b := Stats{Reads: 1, Writes: 1, Allocs: 1, Frees: 1}
	if got := a.Sub(b); got.Reads != 4 || got.Writes != 2 {
		t.Fatalf("Sub = %+v", got)
	}
	if got := a.Add(b); got.Reads != 6 || got.IO() != 10 {
		t.Fatalf("Add = %+v IO=%d", got, got.IO())
	}
}

func TestPoolHitsAndEviction(t *testing.T) {
	d := NewDisk(64)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, _ := d.Alloc()
		if err := d.Write(id, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	d.ResetStats()

	p := NewPool(d, 2)
	f, err := p.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f)
	// Hit: no extra read.
	f, err = p.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f)
	if st := d.Stats(); st.Reads != 1 {
		t.Fatalf("expected 1 read after hit, got %+v", st)
	}
	// Fill beyond capacity: evictions occur, unpinned pages drop.
	for _, id := range ids[1:] {
		f, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(f)
	}
	if p.Len() > 2 {
		t.Fatalf("pool over capacity: %d", p.Len())
	}
}

func TestPoolDirtyWriteback(t *testing.T) {
	d := NewDisk(64)
	p := NewPool(d, 1)
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID
	f.Data[0] = 42
	f.SetDirty()
	p.Unpin(f)
	// Force eviction by pulling in another page.
	g, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(g)
	buf := make([]byte, 64)
	if err := d.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 42 {
		t.Fatal("dirty page not written back on eviction")
	}
}

func TestPoolAllPinned(t *testing.T) {
	d := NewDisk(64)
	p := NewPool(d, 1)
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Unpin(f)
	if _, err := p.Alloc(); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("expected ErrPoolFull, got %v", err)
	}
}

func TestPoolFlush(t *testing.T) {
	d := NewDisk(64)
	p := NewPool(d, 4)
	f, _ := p.Alloc()
	f.Data[0] = 7
	f.SetDirty()
	p.Unpin(f)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := d.Read(f.ID, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Fatal("flush did not persist dirty frame")
	}
}
