package pager

import "sync/atomic"

// Meter is a concurrency-safe Stats sink: an atomic counter set that
// read paths (ReadHandle, Pool.GetMetered) add to as they touch pages
// of a shared device. It gives a single query exact I/O attribution on
// a disk other queries are reading concurrently — the case the
// windowed-delta ownership rule (see Stats) forbids.
type Meter struct {
	reads  atomic.Int64
	writes atomic.Int64
	allocs atomic.Int64
	frees  atomic.Int64
}

// Add accumulates s into the meter (nil-safe: a nil Meter discards).
func (m *Meter) Add(s Stats) {
	if m == nil {
		return
	}
	if s.Reads != 0 {
		m.reads.Add(s.Reads)
	}
	if s.Writes != 0 {
		m.writes.Add(s.Writes)
	}
	if s.Allocs != 0 {
		m.allocs.Add(s.Allocs)
	}
	if s.Frees != 0 {
		m.frees.Add(s.Frees)
	}
}

// Stats snapshots the meter (zero for a nil Meter).
func (m *Meter) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	return Stats{
		Reads:  m.reads.Load(),
		Writes: m.writes.Load(),
		Allocs: m.allocs.Load(),
		Frees:  m.frees.Load(),
	}
}

// Arena is the per-query evaluation workspace that makes lock-free
// concurrent reads possible: every page an evaluation writes
// (intermediate lists, spools, sort runs, stacks, annotation files,
// the result list) goes to a private scratch disk, and every page it
// reads from the shared base disk (master-list entries, index pages)
// is additionally counted on the arena's meter. The base disk is never
// written between store swaps, so any number of arenas evaluate
// concurrently, and each one's Stats are exact without any
// serialization — the per-query replacement for the windowed
// Disk.Stats deltas that required one-evaluation-at-a-time discipline.
type Arena struct {
	base    *Disk
	scratch *Disk
	meter   Meter
}

// NewArena creates a workspace over the shared base device. The scratch
// disk inherits the base's page size, so blocking-factor arithmetic
// (records per page) is identical wherever a list lands.
func NewArena(base *Disk) *Arena {
	return &Arena{base: base, scratch: NewDisk(base.PageSize())}
}

// Base returns the shared read-only device.
func (a *Arena) Base() *Disk { return a.base }

// Scratch returns the query-private device for intermediates and
// results.
func (a *Arena) Scratch() *Disk { return a.scratch }

// Meter returns the sink counting this arena's reads of the base disk.
func (a *Arena) Meter() *Meter { return &a.meter }

// Stats returns the total I/O this arena's evaluation performed:
// everything on the private scratch disk plus the metered reads of the
// shared base disk. Exact under any concurrency, because both halves
// are private to the arena.
func (a *Arena) Stats() Stats {
	return a.scratch.Stats().Add(a.meter.Stats())
}
