package pager

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// Frame is a buffered page held by a Pool. Callers pin a frame while
// using its Data and must Unpin it afterwards; SetDirty marks it for
// write-back on eviction or flush.
type Frame struct {
	ID    PageID
	Data  []byte
	pins  int
	dirty bool
	elem  *list.Element
}

// SetDirty marks the frame's contents as modified.
func (f *Frame) SetDirty() { f.dirty = true }

// Pool is a pinning LRU buffer pool over a Disk. Index structures
// (B+trees) use it so that hot interior pages cost no repeated I/O while
// leaf-level traffic is still counted faithfully.
//
// Pool bookkeeping (the frame map, LRU order, pin counts) is guarded by
// an internal mutex, so concurrent readers — the engine's parallel
// workers traversing one shared B+tree — are safe. Frame *contents* are
// not guarded: concurrent users may share frames read-only (which is
// how the read-optimized store uses its index pools after build), but
// writers that dirty frames must be serialized externally, exactly as
// build-then-query already does.
type Pool struct {
	disk   *Disk
	cap    int
	mu     sync.Mutex
	frames map[PageID]*Frame
	lru    *list.List // front = most recently used; holds unpinned and pinned alike
}

// ErrPoolFull is returned when every buffered frame is pinned and a new
// page must be brought in.
var ErrPoolFull = errors.New("pager: buffer pool exhausted (all frames pinned)")

// NewPool creates a pool of the given capacity (in pages) over disk.
func NewPool(disk *Disk, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{disk: disk, cap: capacity, frames: make(map[PageID]*Frame), lru: list.New()}
}

// Disk returns the underlying device.
func (p *Pool) Disk() *Disk { return p.disk }

// Get pins and returns the frame for page id, reading it from disk on a
// miss (evicting an unpinned frame if the pool is full).
func (p *Pool) Get(id PageID) (*Frame, error) {
	return p.GetMetered(id, nil)
}

// GetMetered is Get with per-query I/O attribution: a miss's disk read
// is additionally counted on m ("whoever misses pays" — hits cost no
// I/O and charge nobody, which is what makes pool hit rates visible in
// per-query meters). A nil meter behaves exactly like Get.
func (p *Pool) GetMetered(id PageID, m *Meter) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok {
		f.pins++
		p.lru.MoveToFront(f.elem)
		return f, nil
	}
	f, err := p.admit(id)
	if err != nil {
		return nil, err
	}
	if err := p.disk.Read(id, f.Data); err != nil {
		p.discard(f)
		return nil, err
	}
	m.Add(Stats{Reads: 1})
	return f, nil
}

// Alloc allocates a fresh page on disk and returns it pinned and dirty,
// without a disk read (its contents start zeroed).
func (p *Pool) Alloc() (*Frame, error) {
	id, err := p.disk.Alloc()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := p.admit(id)
	if err != nil {
		return nil, err
	}
	f.dirty = true
	return f, nil
}

func (p *Pool) admit(id PageID) (*Frame, error) {
	if len(p.frames) >= p.cap {
		if err := p.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &Frame{ID: id, Data: make([]byte, p.disk.PageSize()), pins: 1}
	f.elem = p.lru.PushFront(f)
	p.frames[id] = f
	return f, nil
}

func (p *Pool) evictOne() error {
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*Frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if err := p.disk.Write(f.ID, f.Data); err != nil {
				return err
			}
		}
		p.discard(f)
		return nil
	}
	return ErrPoolFull
}

func (p *Pool) discard(f *Frame) {
	p.lru.Remove(f.elem)
	delete(p.frames, f.ID)
}

// Unpin releases one pin on the frame.
func (p *Pool) Unpin(f *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("pager: unpin of unpinned frame %d", f.ID))
	}
	f.pins--
}

// Flush writes back every dirty frame (keeping them buffered).
func (p *Pool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.dirty {
			if err := p.disk.Write(f.ID, f.Data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// Len reports the number of buffered frames.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}
