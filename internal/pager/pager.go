// Package pager provides the simulated block device on which every
// disk-resident structure in this repository lives: paged lists, stacks,
// sort runs, B+trees, and the entry heap file.
//
// The theorems of "Querying Network Directories" are stated in counted
// page I/Os with blocking factor B (entries per page). Counting page
// reads and writes on this device therefore measures exactly the
// quantity the paper's proofs bound, independent of hardware. Pages are
// held in memory; the accounting, not the medium, is the point.
package pager

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// PageID identifies a page on a Disk. Zero is never a valid page.
type PageID uint32

// DefaultPageSize is the page size used when NewDisk is given size 0.
const DefaultPageSize = 4096

// Stats counts page-level I/O. The evaluation algorithms' complexity
// claims are verified against these counters.
//
// Ownership rule for delta accounting: the counters themselves are
// exact under concurrency (every operation increments under the Disk
// mutex — no updates are ever lost), but a windowed delta
// (Stats-before subtracted from Stats-after) attributes I/O to the
// measurer only if nothing else touches the Disk during the window.
// Readers that share a Disk see each other's page accesses in their
// deltas. Every per-query delta in this repository is therefore taken
// under serialized evaluation — core.Directory's mutex, the
// Coordinator's evalMu — and the obs tracer documents the same
// requirement. TestStatsDeltaOwnership asserts both halves of the
// rule.
type Stats struct {
	Reads  int64 // pages read
	Writes int64 // pages written
	Allocs int64 // pages allocated
	Frees  int64 // pages freed
}

// Add returns the component-wise sum of two Stats.
func (s Stats) Add(t Stats) Stats {
	return Stats{s.Reads + t.Reads, s.Writes + t.Writes, s.Allocs + t.Allocs, s.Frees + t.Frees}
}

// Sub returns the component-wise difference s - t.
func (s Stats) Sub(t Stats) Stats {
	return Stats{s.Reads - t.Reads, s.Writes - t.Writes, s.Allocs - t.Allocs, s.Frees - t.Frees}
}

// IO returns reads + writes, the quantity the paper's theorems bound.
func (s Stats) IO() int64 { return s.Reads + s.Writes }

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d allocs=%d frees=%d", s.Reads, s.Writes, s.Allocs, s.Frees)
}

// Disk is a simulated block device: fixed-size pages, explicit
// allocation, counted reads and writes. It is safe for concurrent use.
type Disk struct {
	mu       sync.Mutex
	pageSize int
	pages    [][]byte
	free     []PageID
	stats    Stats
	fault    func(op string, id PageID) error
}

// Disk-level errors.
var (
	ErrBadPage  = errors.New("pager: invalid page id")
	ErrPageSize = errors.New("pager: data exceeds page size")
)

// NewDisk creates a device with the given page size (DefaultPageSize if
// 0).
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Disk{pageSize: pageSize, pages: make([][]byte, 1)} // slot 0 unused
}

// PageSize returns the device's page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// SetFault installs a fault injector invoked before each operation
// ("read", "write", "alloc") with the page involved; a non-nil return is
// surfaced to the caller. Used by failure-injection tests.
func (d *Disk) SetFault(f func(op string, id PageID) error) {
	d.mu.Lock()
	d.fault = f
	d.mu.Unlock()
}

// Alloc reserves a fresh (zeroed) page.
func (d *Disk) Alloc() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fault != nil {
		if err := d.fault("alloc", 0); err != nil {
			return 0, err
		}
	}
	d.stats.Allocs++
	if n := len(d.free); n > 0 {
		id := d.free[n-1]
		d.free = d.free[:n-1]
		d.pages[id] = nil
		return id, nil
	}
	d.pages = append(d.pages, nil)
	return PageID(len(d.pages) - 1), nil
}

// Free releases a page for reuse.
func (d *Disk) Free(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) <= 0 || int(id) >= len(d.pages) {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	d.stats.Frees++
	d.pages[id] = nil
	d.free = append(d.free, id)
	return nil
}

// Read copies page id into buf (which must be at least PageSize long)
// and counts one page read. Unwritten pages read as zeroes.
func (d *Disk) Read(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) <= 0 || int(id) >= len(d.pages) {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	if d.fault != nil {
		if err := d.fault("read", id); err != nil {
			return err
		}
	}
	d.stats.Reads++
	p := d.pages[id]
	if p == nil {
		for i := 0; i < d.pageSize && i < len(buf); i++ {
			buf[i] = 0
		}
		return nil
	}
	copy(buf, p)
	return nil
}

// Write stores data (at most PageSize bytes) as the new content of page
// id and counts one page write.
func (d *Disk) Write(id PageID, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) <= 0 || int(id) >= len(d.pages) {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	if len(data) > d.pageSize {
		return fmt.Errorf("%w: %d > %d", ErrPageSize, len(data), d.pageSize)
	}
	if d.fault != nil {
		if err := d.fault("write", id); err != nil {
			return err
		}
	}
	d.stats.Writes++
	p := d.pages[id]
	if p == nil {
		p = make([]byte, d.pageSize)
		d.pages[id] = p
	} else {
		for i := range p {
			p[i] = 0
		}
	}
	copy(p, data)
	return nil
}

// Stats returns a snapshot of the I/O counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the I/O counters (page contents are unaffected).
func (d *Disk) ResetStats() {
	d.mu.Lock()
	d.stats = Stats{}
	d.mu.Unlock()
}

// NumPages returns the number of pages ever allocated and still live.
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages) - 1 - len(d.free)
}

// snapshot format: magic, page size, slot count, free-list, then one
// presence byte + page image per slot. Snapshot I/O is not counted in
// Stats — it is backup traffic, not query evaluation.
var snapshotMagic = [8]byte{'D', 'I', 'R', 'K', 'I', 'T', 'D', '1'}

// WriteTo serializes the whole device.
func (d *Disk) WriteTo(w io.Writer) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	bw := &countWriter{w: w}
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return bw.n, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(d.pageSize))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(d.pages)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(d.free)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return bw.n, err
	}
	var id [4]byte
	for _, f := range d.free {
		binary.LittleEndian.PutUint32(id[:], uint32(f))
		if _, err := bw.Write(id[:]); err != nil {
			return bw.n, err
		}
	}
	for _, p := range d.pages[1:] {
		if p == nil {
			if _, err := bw.Write([]byte{0}); err != nil {
				return bw.n, err
			}
			continue
		}
		if _, err := bw.Write([]byte{1}); err != nil {
			return bw.n, err
		}
		if _, err := bw.Write(p); err != nil {
			return bw.n, err
		}
	}
	return bw.n, nil
}

// ReadDisk deserializes a device previously written with WriteTo.
func ReadDisk(r io.Reader) (*Disk, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != snapshotMagic {
		return nil, errors.New("pager: not a disk snapshot")
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	d := NewDisk(int(binary.LittleEndian.Uint32(hdr[0:])))
	nPages := int(binary.LittleEndian.Uint32(hdr[4:]))
	nFree := int(binary.LittleEndian.Uint32(hdr[8:]))
	if nPages < 1 {
		return nil, errors.New("pager: corrupt snapshot header")
	}
	var id [4]byte
	for i := 0; i < nFree; i++ {
		if _, err := io.ReadFull(br, id[:]); err != nil {
			return nil, err
		}
		d.free = append(d.free, PageID(binary.LittleEndian.Uint32(id[:])))
	}
	d.pages = make([][]byte, nPages)
	var present [1]byte
	for i := 1; i < nPages; i++ {
		if _, err := io.ReadFull(br, present[:]); err != nil {
			return nil, err
		}
		if present[0] == 0 {
			continue
		}
		p := make([]byte, d.pageSize)
		if _, err := io.ReadFull(br, p); err != nil {
			return nil, err
		}
		d.pages[i] = p
	}
	return d, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
