// Package pager provides the simulated block device on which every
// disk-resident structure in this repository lives: paged lists, stacks,
// sort runs, B+trees, and the entry heap file.
//
// The theorems of "Querying Network Directories" are stated in counted
// page I/Os with blocking factor B (entries per page). Counting page
// reads and writes on this device therefore measures exactly the
// quantity the paper's proofs bound, independent of hardware. Pages are
// held in memory; the accounting, not the medium, is the point.
package pager

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// PageID identifies a page on a Disk. Zero is never a valid page.
type PageID uint32

// DefaultPageSize is the page size used when NewDisk is given size 0.
const DefaultPageSize = 4096

// Stats counts page-level I/O. The evaluation algorithms' complexity
// claims are verified against these counters.
//
// Ownership rule for delta accounting: the counters themselves are
// exact under concurrency (every operation lands one atomic increment
// on one of the device's stats shards — no updates are ever lost),
// but a windowed delta (Stats-before subtracted from Stats-after)
// attributes I/O to the measurer only if nothing else touches the
// Disk during the window. Readers that share a Disk see each other's
// page accesses in their deltas. Every per-query delta in this
// repository is therefore taken under serialized evaluation —
// core.Directory's mutex, the Coordinator's evalMu — and the obs
// tracer documents the same requirement. Intra-query parallelism
// (engine Workers > 1) does not violate the rule: the whole parallel
// evaluation happens inside one serialized window, so its delta still
// belongs to that one query. TestStatsDeltaOwnership asserts both
// halves of the rule.
type Stats struct {
	Reads  int64 // pages read
	Writes int64 // pages written
	Allocs int64 // pages allocated
	Frees  int64 // pages freed
}

// Add returns the component-wise sum of two Stats.
func (s Stats) Add(t Stats) Stats {
	return Stats{s.Reads + t.Reads, s.Writes + t.Writes, s.Allocs + t.Allocs, s.Frees + t.Frees}
}

// Sub returns the component-wise difference s - t.
func (s Stats) Sub(t Stats) Stats {
	return Stats{s.Reads - t.Reads, s.Writes - t.Writes, s.Allocs - t.Allocs, s.Frees - t.Frees}
}

// IO returns reads + writes, the quantity the paper's theorems bound.
func (s Stats) IO() int64 { return s.Reads + s.Writes }

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d allocs=%d frees=%d", s.Reads, s.Writes, s.Allocs, s.Frees)
}

// statsShards is the number of independent counter shards a Disk
// maintains. A power of two so shard selection is a mask.
const statsShards = 32

// statsShard is one cache-line-padded slice of the device's counters.
// Sharding keeps the hot concurrent-read path free of a single
// contended counter word; Stats sums the shards.
type statsShard struct {
	reads  atomic.Int64
	writes atomic.Int64
	allocs atomic.Int64
	frees  atomic.Int64
	_      [32]byte // pad to a cache line against false sharing
}

// Disk is a simulated block device: fixed-size pages, explicit
// allocation, counted reads and writes. It is safe for concurrent use:
// reads share a read lock (page contents are immutable while no write
// runs), structural mutations (Write, Alloc, Free) take the write
// lock, and the I/O counters are sharded atomics, so concurrent
// readers — the engine's parallel workers — never serialize on
// accounting.
type Disk struct {
	mu       sync.RWMutex
	pageSize int
	pages    [][]byte
	free     []PageID
	fault    func(op string, id PageID) error

	// Copy-on-write fork state (see fork.go). On a fork, page ids below
	// cowBase alias the parent's slices until first write (owned marks
	// the ones replaced), and dirty records every page the fork has
	// changed. All nil/zero on a directly constructed disk.
	cowBase int
	owned   map[PageID]bool
	dirty   map[PageID]struct{}

	shards     [statsShards]statsShard
	nextHandle atomic.Uint32
}

// Disk-level errors.
var (
	ErrBadPage  = errors.New("pager: invalid page id")
	ErrPageSize = errors.New("pager: data exceeds page size")
)

// NewDisk creates a device with the given page size (DefaultPageSize if
// 0).
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Disk{pageSize: pageSize, pages: make([][]byte, 1)} // slot 0 unused
}

// PageSize returns the device's page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// SetFault installs a fault injector invoked before each operation
// ("read", "write", "alloc") with the page involved; a non-nil return is
// surfaced to the caller. Used by failure-injection tests. An injector
// used together with parallel evaluation must itself be safe for
// concurrent calls (reads invoke it under the shared read lock).
func (d *Disk) SetFault(f func(op string, id PageID) error) {
	d.mu.Lock()
	d.fault = f
	d.mu.Unlock()
}

// shardFor picks the counter shard for direct (handle-less) operations:
// keyed by page id so concurrent readers of different pages touch
// different cache lines.
func (d *Disk) shardFor(id PageID) *statsShard {
	return &d.shards[uint32(id)&(statsShards-1)]
}

// Alloc reserves a fresh (zeroed) page.
func (d *Disk) Alloc() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fault != nil {
		if err := d.fault("alloc", 0); err != nil {
			return 0, err
		}
	}
	if n := len(d.free); n > 0 {
		id := d.free[n-1]
		d.free = d.free[:n-1]
		d.pages[id] = nil
		if d.owned != nil {
			d.owned[id] = true
		}
		d.markDirty(id)
		d.shardFor(id).allocs.Add(1)
		return id, nil
	}
	d.pages = append(d.pages, nil)
	id := PageID(len(d.pages) - 1)
	d.markDirty(id)
	d.shardFor(id).allocs.Add(1)
	return id, nil
}

// Free releases a page for reuse.
func (d *Disk) Free(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) <= 0 || int(id) >= len(d.pages) {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	d.shardFor(id).frees.Add(1)
	d.pages[id] = nil
	if d.owned != nil {
		d.owned[id] = true
	}
	d.markDirty(id)
	d.free = append(d.free, id)
	return nil
}

// Read copies page id into buf (which must be at least PageSize long)
// and counts one page read. Unwritten pages read as zeroes. Reads
// share the device's read lock, so any number may run concurrently.
func (d *Disk) Read(id PageID, buf []byte) error {
	return d.readCounted(id, buf, d.shardFor(id))
}

// readCounted is the shared read path: the page copy under the read
// lock, the accounting on the caller's shard.
func (d *Disk) readCounted(id PageID, buf []byte, sh *statsShard) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) <= 0 || int(id) >= len(d.pages) {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	if d.fault != nil {
		if err := d.fault("read", id); err != nil {
			return err
		}
	}
	sh.reads.Add(1)
	p := d.pages[id]
	if p == nil {
		for i := 0; i < d.pageSize && i < len(buf); i++ {
			buf[i] = 0
		}
		return nil
	}
	copy(buf, p)
	return nil
}

// Write stores data (at most PageSize bytes) as the new content of page
// id and counts one page write.
func (d *Disk) Write(id PageID, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) <= 0 || int(id) >= len(d.pages) {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	if len(data) > d.pageSize {
		return fmt.Errorf("%w: %d > %d", ErrPageSize, len(data), d.pageSize)
	}
	if d.fault != nil {
		if err := d.fault("write", id); err != nil {
			return err
		}
	}
	d.shardFor(id).writes.Add(1)
	d.markDirty(id)
	p := d.pages[id]
	if p == nil || d.isShared(id) {
		// A fork must not zero a page slice it still shares with its
		// parent — install a private copy instead.
		p = make([]byte, d.pageSize)
		d.pages[id] = p
		if d.owned != nil {
			d.owned[id] = true
		}
	} else {
		for i := range p {
			p[i] = 0
		}
	}
	copy(p, data)
	return nil
}

// Stats returns a snapshot of the I/O counters: the sum over all
// shards. Under quiescence (or serialized evaluation — see the
// ownership rule) the snapshot is exact; concurrent operations land in
// either the before or the after of a windowed delta, never nowhere.
// Code that needs per-query exactness on a concurrently shared disk
// should not take windowed deltas here at all — it should evaluate on
// an Arena, whose Stats are query-private by construction.
func (d *Disk) Stats() Stats {
	var s Stats
	for i := range d.shards {
		sh := &d.shards[i]
		s.Reads += sh.reads.Load()
		s.Writes += sh.writes.Load()
		s.Allocs += sh.allocs.Load()
		s.Frees += sh.frees.Load()
	}
	return s
}

// ResetStats zeroes the I/O counters (page contents are unaffected).
// Callers must ensure no operation is in flight, the same quiescence
// every windowed delta already requires.
func (d *Disk) ResetStats() {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.reads.Store(0)
		sh.writes.Store(0)
		sh.allocs.Store(0)
		sh.frees.Store(0)
	}
}

// NumPages returns the number of pages ever allocated and still live.
func (d *Disk) NumPages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages) - 1 - len(d.free)
}

// snapshot format: magic, page size, slot count, free-list, then one
// presence byte + page image per slot. Snapshot I/O is not counted in
// Stats — it is backup traffic, not query evaluation.
var snapshotMagic = [8]byte{'D', 'I', 'R', 'K', 'I', 'T', 'D', '1'}

// WriteTo serializes the whole device in canonical form: trailing free
// slots are trimmed from the slot count and dropped from the free list.
// Scratch allocations (query evaluation materializes temporary posting
// lists on the device and frees them) would otherwise leave a tail of
// free slots whose size depends on query history, making two disks with
// identical live contents serialize differently. Interior free slots
// are kept — their ids are pinned by the pages around them — but carry
// no image (freeing nils the page), so they cost one presence byte.
func (d *Disk) WriteTo(w io.Writer) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	freeSet := make(map[PageID]bool, len(d.free))
	for _, f := range d.free {
		freeSet[f] = true
	}
	nOut := len(d.pages)
	for nOut > 1 && freeSet[PageID(nOut-1)] {
		nOut--
	}
	free := make([]PageID, 0, len(d.free))
	for _, f := range d.free {
		if int(f) < nOut {
			free = append(free, f)
		}
	}
	bw := &countWriter{w: w}
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return bw.n, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(d.pageSize))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(nOut))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(free)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return bw.n, err
	}
	var id [4]byte
	for _, f := range free {
		binary.LittleEndian.PutUint32(id[:], uint32(f))
		if _, err := bw.Write(id[:]); err != nil {
			return bw.n, err
		}
	}
	for _, p := range d.pages[1:nOut] {
		if p == nil {
			if _, err := bw.Write([]byte{0}); err != nil {
				return bw.n, err
			}
			continue
		}
		if _, err := bw.Write([]byte{1}); err != nil {
			return bw.n, err
		}
		if _, err := bw.Write(p); err != nil {
			return bw.n, err
		}
	}
	return bw.n, nil
}

// ReadDisk deserializes a device previously written with WriteTo.
func ReadDisk(r io.Reader) (*Disk, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != snapshotMagic {
		return nil, errors.New("pager: not a disk snapshot")
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	pageSize := int(binary.LittleEndian.Uint32(hdr[0:]))
	if pageSize <= 0 || pageSize > 1<<24 {
		return nil, fmt.Errorf("pager: implausible page size %d", pageSize)
	}
	d := NewDisk(pageSize)
	nPages := int(binary.LittleEndian.Uint32(hdr[4:]))
	nFree := int(binary.LittleEndian.Uint32(hdr[8:]))
	if nPages < 1 || nFree < 0 || nFree > nPages {
		return nil, errors.New("pager: corrupt snapshot header")
	}
	// Declared counts are never trusted with an up-front allocation:
	// the slices grow as bytes actually arrive, so a lying header on a
	// truncated stream fails at the truncation point instead of
	// demanding gigabytes (core's FuzzOpenSnapshot feeds exactly such
	// headers through here).
	var id [4]byte
	for i := 0; i < nFree; i++ {
		if _, err := io.ReadFull(br, id[:]); err != nil {
			return nil, fmt.Errorf("pager: truncated free list: %w", err)
		}
		f := PageID(binary.LittleEndian.Uint32(id[:]))
		if int(f) < 1 || int(f) >= nPages {
			return nil, fmt.Errorf("pager: free-list page %d out of range", f)
		}
		d.free = append(d.free, f)
	}
	d.pages = d.pages[:1]
	var present [1]byte
	for i := 1; i < nPages; i++ {
		if _, err := io.ReadFull(br, present[:]); err != nil {
			return nil, fmt.Errorf("pager: truncated page directory: %w", err)
		}
		if present[0] == 0 {
			d.pages = append(d.pages, nil)
			continue
		}
		p := make([]byte, d.pageSize)
		if _, err := io.ReadFull(br, p); err != nil {
			return nil, fmt.Errorf("pager: truncated page image: %w", err)
		}
		d.pages = append(d.pages, p)
	}
	return d, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
