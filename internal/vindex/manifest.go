package vindex

import (
	"fmt"

	"repro/internal/pager"
	"repro/internal/plist"
)

// Manifest locates one index on a snapshotted disk: the posting list's
// pages plus the in-memory fence array. It embeds in the store manifest
// (JSON), so the vector index round-trips through the snapshot format —
// and hence through core.Checkpoint and core.Recover — exactly like the
// master list and the B+trees.
type Manifest struct {
	// Attr is the indexed attribute name.
	Attr string `json:"attr"`
	// Dim is the embedding dimension.
	Dim int `json:"dim"`
	// Pages lists the posting stream's pages in order.
	Pages []pager.PageID `json:"pages"`
	// Size is the posting stream's byte length.
	Size int64 `json:"size"`
	// Count is the number of postings.
	Count int64 `json:"count"`
	// FenceKeys holds the sparse fence keys, ascending.
	FenceKeys []string `json:"fenceKeys"`
	// FenceOffs holds the stream offset of each fenced posting.
	FenceOffs []int64 `json:"fenceOffs"`
}

// Manifest returns the index's snapshot manifest.
func (ix *Index) Manifest() Manifest {
	return Manifest{
		Attr:      ix.attr,
		Dim:       ix.dim,
		Pages:     ix.list.PageIDs(),
		Size:      ix.list.Size(),
		Count:     ix.list.Count(),
		FenceKeys: append([]string(nil), ix.fenceK...),
		FenceOffs: append([]int64(nil), ix.fenceO...),
	}
}

// Restore reattaches an index to a snapshotted disk from its manifest.
func Restore(disk *pager.Disk, m Manifest) (*Index, error) {
	if m.Dim <= 0 {
		return nil, fmt.Errorf("vindex: manifest for %q has dimension %d", m.Attr, m.Dim)
	}
	if len(m.FenceKeys) != len(m.FenceOffs) {
		return nil, fmt.Errorf("vindex: manifest for %q has %d fence keys but %d offsets",
			m.Attr, len(m.FenceKeys), len(m.FenceOffs))
	}
	return &Index{
		attr:   m.Attr,
		dim:    m.Dim,
		list:   plist.Restore(disk, m.Pages, m.Size, m.Count),
		fenceK: append([]string(nil), m.FenceKeys...),
		fenceO: append([]int64(nil), m.FenceOffs...),
	}, nil
}
