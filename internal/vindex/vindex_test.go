package vindex

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/pager"
)

// buildRandom builds an index over n synthetic postings with sortable
// keys k0000, k0001, ... and returns the postings for oracle checks.
func buildRandom(t *testing.T, disk *pager.Disk, n, dim int, seed int64) (*Index, []Posting) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := NewBuilder(disk, "emb", dim)
	var ps []Posting
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%04d", i)
		nv := 1
		if r.Intn(5) == 0 {
			nv = 2 // multi-valued attribute
		}
		vecs := make([][]float32, nv)
		for j := range vecs {
			v := make([]float32, dim)
			for d := range v {
				v[d] = float32(r.NormFloat64())
			}
			vecs[j] = v
		}
		ps = append(ps, Posting{Key: key, Off: int64(i * 100), Vecs: vecs})
		if err := b.Add(key, int64(i*100), vecs); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Close()
	if err != nil {
		t.Fatal(err)
	}
	return ix, ps
}

// naiveSearch is the obviously-correct oracle: filter, rank by
// (minimum distance, key), take k.
func naiveSearch(ps []Posting, lo, hi string, accept func(string) bool, q []float32, k int) []Neighbor {
	var all []Neighbor
	for _, p := range ps {
		if p.Key < lo || (hi != "" && p.Key >= hi) {
			continue
		}
		if accept != nil && !accept(p.Key) {
			continue
		}
		best := SquaredL2(p.Vecs[0], q)
		for _, v := range p.Vecs[1:] {
			if d := SquaredL2(v, q); d < best {
				best = d
			}
		}
		all = append(all, Neighbor{Key: p.Key, Off: p.Off, Dist: best})
	}
	sort.Slice(all, func(i, j int) bool { return worse(all[j], all[i]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestSearchMatchesOracle(t *testing.T) {
	disk := pager.NewDisk(512)
	ix, ps := buildRandom(t, disk, 300, 6, 1)
	r := rand.New(rand.NewSource(2))
	ranges := []struct{ lo, hi string }{
		{"", ""},           // everything
		{"k0050", "k0060"}, // one fence interval
		{"k0000", "k0001"}, // single posting
		{"k0123", "k0223"}, // mid-range, fence-unaligned
		{"k0299", ""},      // tail
		{"zzz", ""},        // empty
		{"k0100", "k0100"}, // empty half-open range
	}
	for _, k := range []int{1, 3, 17, 300, 1000} {
		for _, rng := range ranges {
			q := make([]float32, 6)
			for d := range q {
				q[d] = float32(r.NormFloat64())
			}
			got, err := ix.Search(rng.lo, rng.hi, nil, q, k, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveSearch(ps, rng.lo, rng.hi, nil, q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d range=%v: %d results, want %d", k, rng, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("k=%d range=%v result %d: %+v, want %+v", k, rng, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSearchAcceptFilter(t *testing.T) {
	disk := pager.NewDisk(512)
	ix, ps := buildRandom(t, disk, 200, 4, 3)
	accept := func(key string) bool { return strings.HasSuffix(key, "0") || strings.HasSuffix(key, "5") }
	q := []float32{0.1, -0.2, 0.3, -0.4}
	got, err := ix.Search("", "", accept, q, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveSearch(ps, "", "", accept, q, 7)
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSearchTieBreakByKey(t *testing.T) {
	disk := pager.NewDisk(512)
	b := NewBuilder(disk, "emb", 2)
	// All postings equidistant from the origin: ranking is purely by key.
	keys := []string{"a", "b", "c", "d", "e"}
	for i, k := range keys {
		if err := b.Add(k, int64(i), [][]float32{{1, 0}}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Close()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Search("", "", nil, []float32{0, 0}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Key != "a" || got[1].Key != "b" || got[2].Key != "c" {
		t.Fatalf("tie-break violated: %+v", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(pager.NewDisk(512), "emb", 3)
	if err := b.Add("b", 0, [][]float32{{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add("a", 1, [][]float32{{1, 2, 3}}); err == nil {
		t.Fatal("unsorted add accepted")
	}
	if _, err := b.Close(); err == nil {
		t.Fatal("Close after failed Add must fail")
	}

	b = NewBuilder(pager.NewDisk(512), "emb", 3)
	if err := b.Add("a", 0, [][]float32{{1, 2}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestSearchDimMismatch(t *testing.T) {
	disk := pager.NewDisk(512)
	ix, _ := buildRandom(t, disk, 10, 4, 5)
	if _, err := ix.Search("", "", nil, []float32{1, 2}, 3, nil); err == nil {
		t.Fatal("query dimension mismatch accepted")
	}
}

func TestSearchMetersIO(t *testing.T) {
	disk := pager.NewDisk(512)
	ix, _ := buildRandom(t, disk, 500, 8, 7)
	var m pager.Meter
	if _, err := ix.Search("", "", nil, make([]float32, 8), 5, &m); err != nil {
		t.Fatal(err)
	}
	full := m.Stats().Reads
	if full == 0 {
		t.Fatal("full-range search reported zero page reads")
	}
	var m2 pager.Meter
	if _, err := ix.Search("k0200", "k0216", nil, make([]float32, 8), 5, &m2); err != nil {
		t.Fatal(err)
	}
	if sub := m2.Stats().Reads; sub >= full {
		t.Fatalf("narrow range read %d pages, full range %d — fences not seeking", sub, full)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	disk := pager.NewDisk(512)
	ix, ps := buildRandom(t, disk, 120, 5, 9)
	m := ix.Manifest()
	back, err := Restore(disk, m)
	if err != nil {
		t.Fatal(err)
	}
	if back.Attr() != ix.Attr() || back.Dim() != ix.Dim() || back.Count() != ix.Count() || back.Bytes() != ix.Bytes() {
		t.Fatalf("restored index metadata differs: %+v vs original", m)
	}
	q := []float32{0.5, -0.5, 0.25, -0.25, 0}
	got, err := back.Search("k0010", "k0110", nil, q, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveSearch(ps, "k0010", "k0110", nil, q, 9)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored search result %d: %+v, want %+v", i, got[i], want[i])
		}
	}

	bad := m
	bad.Dim = 0
	if _, err := Restore(disk, bad); err == nil {
		t.Fatal("zero-dimension manifest accepted")
	}
	bad = m
	bad.FenceKeys = bad.FenceKeys[:1]
	if _, err := Restore(disk, bad); err == nil {
		t.Fatal("mismatched fence arrays accepted")
	}
}

func TestCollectorMatchesSort(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		k := 1 + r.Intn(20)
		var all []Neighbor
		c := NewCollector(k)
		for i := 0; i < n; i++ {
			// Coarse distances force plenty of ties.
			nb := Neighbor{Key: fmt.Sprintf("k%03d", r.Intn(500)), Dist: float64(r.Intn(4))}
			all = append(all, nb)
			c.Offer(nb)
		}
		sort.Slice(all, func(i, j int) bool { return worse(all[j], all[i]) })
		if len(all) > k {
			all = all[:k]
		}
		got := c.Sorted()
		if len(got) != len(all) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(all))
		}
		for i := range got {
			if got[i] != all[i] {
				t.Fatalf("trial %d result %d: %+v, want %+v", trial, i, got[i], all[i])
			}
		}
	}
}
